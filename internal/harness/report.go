package harness

import (
	"fmt"
	"io"
	"strings"

	"ptperf/internal/plot"
	"ptperf/internal/stats"
)

// table is a minimal aligned-column text table writer.
type table struct {
	header []string
	rows   [][]string
}

func newTable(header ...string) *table { return &table{header: header} }

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) write(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(widths) && i != len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		fmt.Fprintln(w, b.String())
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
}

// boxRow renders a stats.Box as table cells.
func boxRow(name string, b stats.Box) []string {
	return []string{
		name,
		fmt.Sprintf("%d", b.N),
		fmt.Sprintf("%.2f", b.Min),
		fmt.Sprintf("%.2f", b.Q1),
		fmt.Sprintf("%.2f", b.Median),
		fmt.Sprintf("%.2f", b.Q3),
		fmt.Sprintf("%.2f", b.Max),
		fmt.Sprintf("%.2f", b.Mean),
		fmt.Sprintf("%.2f", b.SD),
	}
}

var boxHeader = []string{"method", "n", "min", "q1", "median", "q3", "max", "mean", "sd"}

// writeBoxes prints one box-plot table (plus the ASCII figure when the
// runner plots).
func (r *Runner) writeBoxes(title string, rows []struct {
	Name string
	Box  stats.Box
}) {
	w := r.out
	fmt.Fprintf(w, "%s\n", title)
	t := newTable(boxHeader...)
	for _, row := range rows {
		t.add(boxRow(row.Name, row.Box)...)
	}
	t.write(w)
	fmt.Fprintln(w)
	if r.cfg.Plot {
		pb := make([]plot.Box, 0, len(rows))
		for _, row := range rows {
			pb = append(pb, plot.Box{Label: row.Name, Stats: row.Box})
		}
		plot.Boxes(w, title+" — box plot", pb, 64, false)
	}
}

// writeECDF prints an ECDF as decile rows (plus the ASCII curve when
// the runner plots).
func (r *Runner) writeECDF(title string, series map[string][]float64, order []string) {
	w := r.out
	fmt.Fprintf(w, "%s\n", title)
	head := []string{"method"}
	qs := []float64{0.1, 0.25, 0.5, 0.75, 0.8, 0.9, 0.95, 1.0}
	for _, q := range qs {
		head = append(head, fmt.Sprintf("p%02.0f", q*100))
	}
	t := newTable(head...)
	for _, name := range order {
		xs, ok := series[name]
		if !ok || len(xs) == 0 {
			continue
		}
		e := stats.NewECDF(xs)
		row := []string{name}
		for _, q := range qs {
			row = append(row, fmt.Sprintf("%.2f", e.InverseAt(q)))
		}
		t.add(row...)
	}
	t.write(w)
	fmt.Fprintln(w)
	if r.cfg.Plot {
		ps := make([]plot.Series, 0, len(order))
		for _, name := range order {
			if xs, ok := series[name]; ok && len(xs) > 0 {
				ps = append(ps, plot.Series{Label: name, Values: xs})
			}
		}
		plot.ECDF(w, title+" — ECDF", ps, 64, 12)
	}
}

// writePairedT prints the paper's t-test table layout: pair, CI bounds,
// t, P, mean difference.
func writePairedT(w io.Writer, title string, pairs []pairResult) {
	fmt.Fprintf(w, "%s\n", title)
	t := newTable("pair", "ci-lower", "ci-upper", "t-value", "p-value", "mean-diff")
	for _, p := range pairs {
		t.add(
			p.Name,
			fmt.Sprintf("%.3f", p.Res.CILower),
			fmt.Sprintf("%.3f", p.Res.CIUpper),
			fmt.Sprintf("%.2f", p.Res.T),
			pvalue(p.Res.P),
			fmt.Sprintf("%.3f", p.Res.MeanDiff),
		)
	}
	t.write(w)
	fmt.Fprintln(w)
}

// pairResult is one row of a t-test table.
type pairResult struct {
	Name string
	Res  stats.TTestResult
}

// pvalue renders like the paper: "<.001" below the threshold.
func pvalue(p float64) string {
	if p < 0.001 {
		return "<.001"
	}
	return fmt.Sprintf("%.3f", p)
}

// allPairs runs paired t-tests over every method pair of the dataset.
func allPairs(data map[string]*accessData, pick func(*accessData) []float64, order []string) []pairResult {
	var out []pairResult
	for i := 0; i < len(order); i++ {
		a, ok := data[order[i]]
		if !ok {
			continue
		}
		for j := i + 1; j < len(order); j++ {
			b, ok := data[order[j]]
			if !ok {
				continue
			}
			res, err := stats.PairedT(pick(a), pick(b))
			if err != nil {
				continue
			}
			out = append(out, pairResult{Name: a.Name + "-" + b.Name, Res: res})
		}
	}
	return out
}
