package harness

import (
	"fmt"
	"time"

	"ptperf/internal/fetch"
	"ptperf/internal/sim"
	"ptperf/internal/stats"
	"ptperf/internal/testbed"
	"ptperf/internal/tor"
)

// This file implements "-exp contention": the guard-contention sweep
// over the relay-overload scenario family. Each cell is one independent
// world task — the same seed for every cell, so topology, catalogs and
// relay draws are identical and the only difference between columns is
// the competitor load (and, for the baseline cell, the scheduler
// policy). It crosses the shared-guard methods {tor, obfs4, webtunnel}
// with {competitor load}, reporting download-time and TTFB boxes versus
// the uncontended baseline plus the guard's queueing-delay counters,
// and re-runs the heaviest level under the FIFO scheduler to show what
// EWMA priority buys.

// contentionCell is one (level, policy) world-task result.
type contentionCell struct {
	Level  testbed.ContentionLevel
	Policy string
	// Times / TTFBs are aligned per (site, repeat) across methods and
	// levels (failures recorded as the page timeout).
	Times, TTFBs map[string][]float64
	// Sched is the shared guard's scheduler snapshot at measurement end.
	Sched tor.SchedStats
}

// contentionSites bounds the per-level site sample, like the paper's
// five representative sites in the fixed-circuit experiments.
const contentionSites = 5

// contentionTask submits (once) one contention cell. All cells share
// one world seed; fifo selects the pre-KIST baseline scheduler.
func (r *Runner) contentionTask(li int, fifo bool) *sim.Future[any] {
	key := fmt.Sprintf("contention:%d", li)
	if fifo {
		key += ":fifo"
	}
	lv := testbed.ContentionLevels[li]
	opts := r.worldOptions(streamContention)
	if fifo {
		opts.SchedPolicy = tor.SchedFIFO
	}
	spec := r.cellSpec(
		fmt.Sprintf("level=%s", lv.Name),
		fmt.Sprintf("repeats=%d", r.cfg.Repeats),
	)
	return r.worldTask(key, opts, spec, jsonValue[*contentionCell](), func(w *testbed.World) (any, error) {
		rig, err := w.NewContentionRig(lv)
		if err != nil {
			return nil, err
		}
		clock := w.Net.Clock()
		rig.Start()
		clock.Sleep(lv.RampTime())

		// Pin middle and exit so every cell measures the identical
		// circuit; only the guard's contention varies.
		middle, mok := w.Dir.Lookup("middle-0")
		exit, eok := w.Dir.Lookup("exit-0")
		if !mok || !eok {
			return nil, fmt.Errorf("harness: consensus lacks middle-0/exit-0")
		}
		clients, err := rig.Clients(middle, exit)
		if err != nil {
			return nil, err
		}
		sites := r.sites(w)
		if len(sites) > contentionSites {
			sites = sites[:contentionSites]
		}
		cell := &contentionCell{
			Level:  lv,
			Policy: opts.SchedPolicy.String(),
			Times:  make(map[string][]float64),
			TTFBs:  make(map[string][]float64),
		}
		for _, method := range rig.Methods() {
			cl := clients[method]
			if err := cl.Preheat(); err != nil {
				return nil, fmt.Errorf("%s preheat: %w", method, err)
			}
			c := &fetch.Client{Net: w.Net, Dial: cl.Dial, Timeout: pageTimeout}
			for _, site := range sites {
				for rep := 0; rep < r.cfg.Repeats; rep++ {
					res := c.Get(w.Origin.Addr(), site.path, false)
					if res.Err != nil || !res.Complete() {
						cell.Times[method] = append(cell.Times[method], pageTimeout.Seconds())
						cell.TTFBs[method] = append(cell.TTFBs[method], pageTimeout.Seconds())
						continue
					}
					cell.Times[method] = append(cell.Times[method], seconds(res.Total))
					cell.TTFBs[method] = append(cell.TTFBs[method], seconds(res.TTFB))
				}
			}
			cl.Close()
		}
		// Stop before snapshotting: with the competitor circuits torn
		// down the guard's queues are drained, so the reported counters
		// satisfy queued == flushed + dropped.
		rig.Stop()
		cell.Sched = rig.GuardSched()
		return cell, nil
	})
}

// prefetchContention submits every level plus the FIFO baseline of the
// heaviest level.
func prefetchContention(r *Runner) {
	for li := range testbed.ContentionLevels {
		r.contentionTask(li, false)
	}
	r.contentionTask(len(testbed.ContentionLevels)-1, true)
}

// runContention renders the guard-contention sweep.
func (r *Runner) runContention() error {
	levels := testbed.ContentionLevels
	methods := []string{"tor", "obfs4", "webtunnel"}
	fmt.Fprintf(r.out, "Guard contention: %d methods × %d load levels over one shared guard (same world seed per cell)\n\n",
		len(methods), len(levels))
	prefetchContention(r)

	cells := make([]*contentionCell, len(levels))
	for li := range levels {
		v, err := r.contentionTask(li, false).Wait()
		if err != nil {
			return fmt.Errorf("contention %s: %w", levels[li].Name, err)
		}
		cells[li] = v.(*contentionCell)
	}
	vf, err := r.contentionTask(len(levels)-1, true).Wait()
	if err != nil {
		return fmt.Errorf("contention fifo baseline: %w", err)
	}
	fifo := vf.(*contentionCell)

	var timeRows, ttfbRows []struct {
		Name string
		Box  stats.Box
	}
	for _, cell := range cells {
		for _, m := range methods {
			label := fmt.Sprintf("%s@%s", m, cell.Level.Name)
			timeRows = append(timeRows, struct {
				Name string
				Box  stats.Box
			}{label, stats.Summarize(cell.Times[m])})
			ttfbRows = append(ttfbRows, struct {
				Name string
				Box  stats.Box
			}{label, stats.Summarize(cell.TTFBs[m])})
		}
	}
	r.writeBoxes("Download time under guard contention (s; failures count as the timeout)", timeRows)
	r.writeBoxes("Time to first byte under guard contention (s)", ttfbRows)

	t := newTable("level", "policy", "competitors", "cells-queued", "flushed", "dropped", "mean-queue-delay", "passes")
	addSched := func(cell *contentionCell) {
		st := cell.Sched
		t.add(cell.Level.Name, cell.Policy, fmt.Sprintf("%d", cell.Level.Competitors),
			fmt.Sprintf("%d", st.Queued), fmt.Sprintf("%d", st.Flushed), fmt.Sprintf("%d", st.Dropped),
			fmt.Sprintf("%.1fms", float64(st.MeanDelay())/float64(time.Millisecond)),
			fmt.Sprintf("%d", st.Passes))
	}
	for _, cell := range cells {
		addSched(cell)
	}
	addSched(fifo)
	fmt.Fprintln(r.out, "Shared-guard cell scheduler (queueing delay is what FCFS relays hid)")
	t.write(r.out)
	fmt.Fprintln(r.out)

	var pairs []pairResult
	base := cells[0]
	for _, cell := range cells[1:] {
		for _, m := range methods {
			res, err := stats.PairedT(cell.Times[m], base.Times[m])
			if err != nil {
				continue
			}
			pairs = append(pairs, pairResult{Name: fmt.Sprintf("%s@%s-idle", m, cell.Level.Name), Res: res})
		}
	}
	writePairedT(r.out, "Paired t-tests, download time per load level vs idle (positive mean-diff = contention slower)", pairs)

	top := cells[len(cells)-1]
	fmt.Fprintf(r.out, "EWMA vs FIFO at %q: mean guard queueing delay %.1fms vs %.1fms",
		top.Level.Name,
		float64(top.Sched.MeanDelay())/float64(time.Millisecond),
		float64(fifo.Sched.MeanDelay())/float64(time.Millisecond))
	for _, m := range methods {
		res, err := stats.PairedT(fifo.Times[m], top.Times[m])
		if err != nil {
			continue
		}
		fmt.Fprintf(r.out, "; %s fifo−ewma mean-diff %.2fs", m, res.MeanDiff)
	}
	fmt.Fprintln(r.out)
	fmt.Fprintln(r.out, "Expected: the measured (bursty) circuits pay queueing delay under FIFO that EWMA priority removes.")
	fmt.Fprintln(r.out)
	return nil
}
