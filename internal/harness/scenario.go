package harness

import (
	"fmt"
	"sort"

	"ptperf/internal/censor"
	"ptperf/internal/fetch"
	"ptperf/internal/sim"
	"ptperf/internal/stats"
	"ptperf/internal/testbed"
)

// This file implements the censor-scenario experiments: "scenario:<name>"
// runs one named interference scenario across the configured transports,
// and "sweep" crosses {transports} × {scenarios}, reporting per-scenario
// access-time boxes, reliability splits, censor interference counters,
// and paired t-tests against the clean baseline. Every scenario world is
// built from the same seed, so the only difference between columns is
// the interference itself — which is what makes the paired comparisons
// meaningful.
//
// Each scenario cell is one independent world task: the sweep submits
// every cell to the shard executor up front and joins them in canonical
// scenario order, so -jobs N runs the whole matrix N worlds at a time
// with byte-identical reports.

// scenarioResult holds one method's access outcomes under one scenario.
// Times is aligned by site index (failures recorded as the page
// timeout), keeping vectors pairable across scenarios and methods.
type scenarioResult struct {
	Name   string
	Times  []float64
	OK     int
	Failed int
}

// scenarioCell is one sweep cell's world-task result.
type scenarioCell struct {
	Data  map[string]*scenarioResult
	Stats censor.Stats
}

// sweepScenarios orders the sweep: the clean baseline first, then the
// built-in narrative order, then any extra registered scenarios.
func sweepScenarios() []string {
	order := []string{"clean", "throttle-surge", "lossy-path", "bridge-block", "snowflake-surge"}
	seen := make(map[string]bool, len(order))
	for _, n := range order {
		seen[n] = true
	}
	var extra []string
	for _, n := range censor.Names() {
		if !seen[n] {
			extra = append(extra, n)
		}
	}
	sort.Strings(extra)
	return append(order, extra...)
}

// scenarioOptions builds one scenario cell's world options. All
// scenarios share one world seed stream, so topology, catalogs and
// relay draws are identical across the sweep.
func (r *Runner) scenarioOptions(name string) testbed.Options {
	opts := r.worldOptions(streamScenario)
	opts.Scenario = name
	return opts
}

// scenarioAccess measures website access for every configured transport
// under one named scenario, over an already-built world.
func (r *Runner) scenarioAccess(w *testbed.World) (map[string]*scenarioResult, censor.Stats, error) {
	sites := r.sites(w)
	results, err := r.forEachMethod(w, r.cfg.Transports, func(method string) (any, error) {
		d, err := w.Deployment(method)
		if err != nil {
			return nil, err
		}
		// A failed preheat is not fatal: under endpoint blocking the
		// accesses themselves record the failure.
		_ = d.Preheat()
		c := &fetch.Client{Net: w.Net, Dial: d.Dial, Timeout: pageTimeout}
		res := &scenarioResult{Name: method}
		for _, site := range sites {
			got := c.Get(w.Origin.Addr(), site.path, false)
			if got.Err != nil || !got.Complete() {
				res.Times = append(res.Times, pageTimeout.Seconds())
				res.Failed++
				continue
			}
			res.Times = append(res.Times, seconds(got.Total))
			res.OK++
		}
		// Park the transport's tunnels (see measureAccess).
		d.FreshCircuit()
		return res, nil
	})
	if err != nil {
		return nil, censor.Stats{}, err
	}
	out := make(map[string]*scenarioResult, len(results))
	//simlint:allow maprange -- map-to-map copy under the same keys; per-key writes commute, and every reader orders methods explicitly before rendering.
	for method, v := range results {
		if v != nil {
			out[method] = v.(*scenarioResult)
		}
	}
	var st censor.Stats
	if w.Censor != nil {
		st = w.Censor.Stats()
	}
	return out, st, nil
}

// scenarioTask submits (once) the world task of one scenario cell.
func (r *Runner) scenarioTask(name string) *sim.Future[any] {
	spec := r.cellSpec(fmt.Sprintf("methods=%v", r.cfg.Transports))
	return r.worldTask("scenario:"+name, r.scenarioOptions(name), spec,
		jsonValue[*scenarioCell](),
		func(w *testbed.World) (any, error) {
			data, st, err := r.scenarioAccess(w)
			if err != nil {
				return nil, err
			}
			return &scenarioCell{Data: data, Stats: st}, nil
		})
}

// prefetchSweep submits every sweep cell.
func prefetchSweep(r *Runner) {
	for _, name := range sweepScenarios() {
		r.scenarioTask(name)
	}
}

// writeScenarioReport prints one scenario's boxes, reliability split and
// interference counters.
func (r *Runner) writeScenarioReport(name string, data map[string]*scenarioResult, st censor.Stats) {
	order := orderedMethods(r.cfg.Transports)
	var rows []struct {
		Name string
		Box  stats.Box
	}
	for _, m := range order {
		d, ok := data[m]
		if !ok {
			continue
		}
		rows = append(rows, struct {
			Name string
			Box  stats.Box
		}{m, stats.Summarize(d.Times)})
	}
	r.writeBoxes(fmt.Sprintf("Website access time under scenario %q (s; failures count as the %gs timeout)",
		name, pageTimeout.Seconds()), rows)

	t := newTable("method", "ok", "failed", "ok%")
	for _, m := range order {
		d, ok := data[m]
		if !ok {
			continue
		}
		total := d.OK + d.Failed
		if total == 0 {
			continue
		}
		t.add(m, fmt.Sprintf("%d", d.OK), fmt.Sprintf("%d", d.Failed),
			fmt.Sprintf("%.0f%%", 100*float64(d.OK)/float64(total)))
	}
	fmt.Fprintf(r.out, "Access reliability under %q\n", name)
	t.write(r.out)
	fmt.Fprintf(r.out, "censor: blocked-dials=%d flows-cut=%d resets=%d loss-events=%d throttled-segments=%d\n\n",
		st.BlockedDials, st.FlowsCut, st.Resets, st.LossEvents, st.ThrottledSegments)
}

// runScenario reproduces one named scenario across the configured
// transports.
func (r *Runner) runScenario(name string) error {
	if _, err := censor.Lookup(name); err != nil {
		return err
	}
	v, err := r.scenarioTask(name).Wait()
	if err != nil {
		return err
	}
	cell := v.(*scenarioCell)
	r.writeScenarioReport(name, cell.Data, cell.Stats)
	return nil
}

// runSweep crosses {transports} × {scenarios}: per-scenario reports plus
// paired t-tests of every transport against its clean baseline. All
// cells run concurrently on the shard executor; reports join in
// canonical scenario order.
func (r *Runner) runSweep() error {
	names := sweepScenarios()
	fmt.Fprintf(r.out, "Scenario sweep: %d transports × %d scenarios (same world seed per scenario)\n\n",
		len(r.cfg.Transports), len(names))
	prefetchSweep(r)
	all := make(map[string]map[string]*scenarioResult, len(names))
	for _, name := range names {
		v, err := r.scenarioTask(name).Wait()
		if err != nil {
			return fmt.Errorf("scenario %s: %w", name, err)
		}
		cell := v.(*scenarioCell)
		all[name] = cell.Data
		r.writeScenarioReport(name, cell.Data, cell.Stats)
	}

	clean, ok := all["clean"]
	if !ok {
		return nil
	}
	var pairs []pairResult
	for _, name := range names {
		if name == "clean" {
			continue
		}
		for _, m := range orderedMethods(r.cfg.Transports) {
			base, okB := clean[m]
			under, okU := all[name][m]
			if !okB || !okU {
				continue
			}
			res, err := stats.PairedT(under.Times, base.Times)
			if err != nil {
				continue
			}
			pairs = append(pairs, pairResult{Name: fmt.Sprintf("%s@%s-clean", m, name), Res: res})
		}
	}
	writePairedT(r.out, "Paired t-tests, access time per scenario vs clean (positive mean-diff = scenario slower)", pairs)
	return nil
}
