package harness

import (
	"bytes"
	"strings"
	"testing"
)

// contentionOutput runs the guard-contention sweep on a miniature
// campaign and returns the rendered report.
func contentionOutput(t *testing.T, seed int64, jobs int) string {
	t.Helper()
	cfg := Config{
		Seed:      seed,
		ByteScale: 0.05,
		Sites:     2,
		Repeats:   1,
		Jobs:      jobs,
		Plot:      false,
	}
	var buf bytes.Buffer
	r := New(cfg, &buf)
	if err := r.Run("contention"); err != nil {
		t.Fatalf("contention: %v", err)
	}
	return buf.String()
}

// TestContentionDeterminism extends the same-seed oracle to the
// contention sweep: the competitor fleet, the relay cell scheduler's
// passes, and the EWMA decay all run on the virtual clock, so the
// report must be a pure function of the seed.
func TestContentionDeterminism(t *testing.T) {
	a := contentionOutput(t, 5, 0)
	b := contentionOutput(t, 5, 0)
	if a != b {
		t.Fatalf("same seed produced different contention reports:\n--- first ---\n%s\n--- second ---\n%s", a, b)
	}
}

// TestContentionJobsEquivalence: each (level, policy) cell is an
// independent world task, so -jobs 1 and -jobs 4 must render identical
// bytes.
func TestContentionJobsEquivalence(t *testing.T) {
	seq := contentionOutput(t, 5, 1)
	par := contentionOutput(t, 5, 4)
	if seq != par {
		t.Fatalf("jobs=1 and jobs=4 produced different contention reports:\n--- jobs=1 ---\n%s\n--- jobs=4 ---\n%s", seq, par)
	}
}

// TestContentionReportShape sanity-checks the sweep's report: every
// level (plus the FIFO baseline row) appears, and the scheduler table
// is drained (queued == flushed + dropped is checked world-side; here
// we just require the rows rendered).
func TestContentionReportShape(t *testing.T) {
	out := contentionOutput(t, 5, 0)
	for _, want := range []string{
		"tor@idle", "tor@overload", "obfs4@overload", "webtunnel@overload",
		"mean-queue-delay", "fifo",
		"Paired t-tests, download time per load level vs idle",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("contention report lacks %q:\n%s", want, out)
		}
	}
}
