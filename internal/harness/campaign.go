package harness

import (
	"fmt"
	"time"

	"ptperf/internal/fetch"
	"ptperf/internal/pt"
	"ptperf/internal/sim"
	"ptperf/internal/testbed"
)

// accessData holds one method's aligned per-site measurements: index i
// of every slice refers to the same site, which is what makes paired
// t-tests across methods valid.
type accessData struct {
	// Name is the access method.
	Name string
	// Times are per-site mean access times (seconds).
	Times []float64
	// TTFBs are per-site mean times to first byte (seconds).
	TTFBs []float64
	// SpeedIndexes are per-site mean speed indexes (seconds; selenium
	// campaigns only).
	SpeedIndexes []float64
}

// pageTimeout mirrors the paper's 120 s page timeout.
const pageTimeout = 120 * time.Second

// fileTimeout mirrors the paper's 1200 s bulk timeout.
const fileTimeout = 1200 * time.Second

// curlTask submits (once) the curl website-access campaign world: every
// configured method over Tranco+CBL.
func (r *Runner) curlTask() *sim.Future[any] {
	return r.accessTask("curl", r.cfg.Transports, func(w *testbed.World, d *testbed.Deployment, site siteRef) (float64, float64, float64, error) {
		c := &fetch.Client{Net: w.Net, Dial: d.Dial, Timeout: pageTimeout}
		res := c.Get(w.Origin.Addr(), site.path, false)
		return seconds(res.Total), seconds(res.TTFB), 0, nil
	})
}

// curlData joins the curl campaign.
func (r *Runner) curlData() (map[string]*accessData, error) {
	v, err := r.curlTask().Wait()
	if err != nil {
		return nil, err
	}
	return v.(map[string]*accessData), nil
}

// seleniumMethods filters the configured transports down to the
// browser-capable subset: transports that cannot serve parallel streams
// (camoufler, §4.2) are excluded. Table 1's selenium and speed-index
// counts use the same subset.
func (r *Runner) seleniumMethods() []string {
	methods := make([]string, 0, len(r.cfg.Transports))
	for _, m := range r.cfg.Transports {
		if info, ok := pt.InfoFor(m); ok && !info.ParallelStreams {
			continue
		}
		methods = append(methods, m)
	}
	return methods
}

// seleniumTask submits (once) the browser campaign world; camoufler is
// excluded because it cannot serve parallel streams (§4.2).
func (r *Runner) seleniumTask() *sim.Future[any] {
	return r.accessTask("selenium", r.seleniumMethods(), func(w *testbed.World, d *testbed.Deployment, site siteRef) (float64, float64, float64, error) {
		c := &fetch.Client{Net: w.Net, Dial: d.Dial, Timeout: pageTimeout}
		pr := c.Browse(w.Origin.Addr(), site.path, fetch.DefaultBrowserConns)
		if !pr.OK {
			// Incomplete page loads count as the timeout, as selenium
			// reports them; a dead circuit is rebuilt for the next run.
			d.FreshCircuit()
			return pageTimeout.Seconds(), seconds(pr.TTFB), pageTimeout.Seconds(), nil
		}
		return seconds(pr.PageLoadTime), seconds(pr.TTFB), seconds(pr.SpeedIndex), nil
	})
}

// seleniumData joins the browser campaign.
func (r *Runner) seleniumData() (map[string]*accessData, error) {
	v, err := r.seleniumTask().Wait()
	if err != nil {
		return nil, err
	}
	return v.(map[string]*accessData), nil
}

// accessTask submits one access-campaign world task. All three paper
// campaigns build their world on streamCampaign, so curl, selenium and
// bulk downloads measure the same topology, relay draws and catalogs —
// they only differ in what the client does, exactly like the paper's
// campaigns running on one deployment.
func (r *Runner) accessTask(kind string, methods []string, measure func(*testbed.World, *testbed.Deployment, siteRef) (float64, float64, float64, error)) *sim.Future[any] {
	spec := r.cellSpec(
		fmt.Sprintf("methods=%v", methods),
		fmt.Sprintf("repeats=%d", r.cfg.Repeats),
	)
	return r.worldTask("access:"+kind, r.worldOptions(streamCampaign), spec,
		jsonValue[map[string]*accessData](),
		func(w *testbed.World) (any, error) {
			return r.measureAccess(w, methods, measure)
		})
}

// measureAccess runs one access campaign over an already-built world.
func (r *Runner) measureAccess(w *testbed.World, methods []string, measure func(*testbed.World, *testbed.Deployment, siteRef) (float64, float64, float64, error)) (map[string]*accessData, error) {
	sites := r.sites(w)
	results, err := r.forEachMethod(w, methods, func(name string) (any, error) {
		d, err := w.Deployment(name)
		if err != nil {
			return nil, err
		}
		if err := d.Preheat(); err != nil {
			return nil, fmt.Errorf("preheat: %w", err)
		}
		data := &accessData{Name: name}
		for si, site := range sites {
			// MaxCircuitDirtiness analog: rotate circuits every few
			// sites, as a real client browsing this long would.
			if si > 0 && si%8 == 0 {
				d.FreshCircuit()
				if err := d.Preheat(); err != nil {
					return nil, fmt.Errorf("circuit rotation: %w", err)
				}
			}
			var tSum, fSum, sSum float64
			n := 0
			for rep := 0; rep < r.cfg.Repeats; rep++ {
				total, ttfb, si, err := measure(w, d, site)
				if err != nil {
					continue
				}
				tSum += total
				fSum += ttfb
				sSum += si
				n++
			}
			if n == 0 {
				n = 1
				tSum = pageTimeout.Seconds()
				fSum = pageTimeout.Seconds()
			}
			data.Times = append(data.Times, tSum/float64(n))
			data.TTFBs = append(data.TTFBs, fSum/float64(n))
			data.SpeedIndexes = append(data.SpeedIndexes, sSum/float64(n))
		}
		// Park the transport when its campaign ends: polling tunnels
		// (dnstt, meek, camoufler) otherwise keep generating events
		// through every virtual second of the remaining methods'
		// campaigns, which dominates scheduler load.
		d.FreshCircuit()
		return data, nil
	})
	if err != nil {
		return nil, err
	}

	out := make(map[string]*accessData, len(results))
	//simlint:allow maprange -- map-to-map copy under the same keys; per-key writes commute, and every reader orders methods explicitly before rendering.
	for name, v := range results {
		if v != nil {
			out[name] = v.(*accessData)
		}
	}
	return out, nil
}

// fileAttempt is one bulk-download attempt.
type fileAttempt struct {
	// SizeBytes is the requested (scaled) file size.
	SizeBytes int
	// SizeMB is the paper-scale label (5/10/20/50/100).
	SizeMB int
	// Seconds is the attempt duration.
	Seconds float64
	// Fraction is the share of the file received.
	Fraction float64
	// Complete / Failed classify the attempt (else partial).
	Complete, Failed bool
}

// fileData holds one method's download attempts.
type fileData struct {
	Name     string
	Attempts []fileAttempt
}

// meanTime returns the mean duration of complete downloads of one size,
// and how many attempts completed.
func (fd *fileData) meanTime(sizeMB int) (float64, int) {
	var sum float64
	n := 0
	for _, a := range fd.Attempts {
		if a.SizeMB == sizeMB && a.Complete {
			sum += a.Seconds
			n++
		}
	}
	if n == 0 {
		return 0, 0
	}
	return sum / float64(n), n
}

// counts returns (complete, partial, failed) attempt counts.
func (fd *fileData) counts() (int, int, int) {
	var c, p, f int
	for _, a := range fd.Attempts {
		switch {
		case a.Complete:
			c++
		case a.Failed:
			f++
		default:
			p++
		}
	}
	return c, p, f
}

// fractions lists per-attempt downloaded fractions.
func (fd *fileData) fractions() []float64 {
	out := make([]float64, 0, len(fd.Attempts))
	for _, a := range fd.Attempts {
		out = append(out, a.Fraction)
	}
	return out
}

// filesTask submits (once) the bulk-download campaign world.
func (r *Runner) filesTask() *sim.Future[any] {
	spec := r.cellSpec(
		fmt.Sprintf("methods=%v", r.cfg.Transports),
		fmt.Sprintf("sizes=%v", r.cfg.FileSizesMB),
		fmt.Sprintf("attempts=%d", r.cfg.FileAttempts),
	)
	return r.worldTask("files", r.worldOptions(streamCampaign), spec,
		jsonValue[map[string]*fileData](),
		func(w *testbed.World) (any, error) {
			results, err := r.forEachMethodN(w, r.cfg.Transports, 1, func(name string) (any, error) {
				d, err := w.Deployment(name)
				if err != nil {
					return nil, err
				}
				if err := d.Preheat(); err != nil {
					return nil, err
				}
				c := &fetch.Client{Net: w.Net, Dial: d.Dial, Timeout: fileTimeout}
				data := &fileData{Name: name}
				for _, mb := range r.cfg.FileSizesMB {
					size := w.Bytes(mb << 20)
					for attempt := 0; attempt < r.cfg.FileAttempts; attempt++ {
						res := c.DownloadFile(w.Origin.Addr(), size)
						data.Attempts = append(data.Attempts, fileAttempt{
							SizeBytes: size,
							SizeMB:    mb,
							Seconds:   seconds(res.Total),
							Fraction:  res.Fraction(),
							Complete:  res.Complete(),
							Failed:    res.Failed(),
						})
						// A broken circuit (snowflake churn, meek budget) must
						// not poison subsequent attempts.
						if !res.Complete() {
							d.FreshCircuit()
							if err := d.Preheat(); err != nil {
								// The transport may be temporarily out of
								// capacity; subsequent dials retry anyway.
								continue
							}
						}
					}
				}
				// Park the transport's tunnels (see measureAccess).
				d.FreshCircuit()
				return data, nil
			})
			if err != nil {
				return nil, err
			}
			out := make(map[string]*fileData, len(results))
			//simlint:allow maprange -- map-to-map copy under the same keys; per-key writes commute, and every reader orders methods explicitly before rendering.
			for name, v := range results {
				if v != nil {
					out[name] = v.(*fileData)
				}
			}
			return out, nil
		})
}

// filesData joins the bulk-download campaign.
func (r *Runner) filesData() (map[string]*fileData, error) {
	v, err := r.filesTask().Wait()
	if err != nil {
		return nil, err
	}
	return v.(map[string]*fileData), nil
}
