package harness

import (
	"bytes"
	"strings"
	"testing"
)

// tinyConfig keeps harness tests fast.
func tinyConfig() Config {
	return Config{
		Seed:         2,
		ByteScale:    0.06,
		Sites:        3,
		Repeats:      1,
		FileAttempts: 1,
		FileSizesMB:  []int{5},
	}
}

func TestExperimentRegistry(t *testing.T) {
	exps := Experiments()
	paper := 0
	for _, e := range exps {
		if !e.Optional {
			paper++
		}
	}
	if paper != 20 {
		t.Fatalf("want 20 paper experiments, got %d", paper)
	}
	seen := map[string]bool{}
	for _, e := range exps {
		if e.ID == "" || e.Artifact == "" || e.run == nil {
			t.Fatalf("incomplete experiment %+v", e)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
	}
	for _, want := range []string{"fig2a", "fig5", "fig8", "fig9", "table10",
		"scenario:clean", "scenario:bridge-block", "sweep"} {
		if !seen[want] {
			t.Fatalf("missing experiment %s", want)
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	r := New(tinyConfig(), &bytes.Buffer{})
	if err := r.Run("fig99"); err == nil {
		t.Fatal("unknown experiment must error")
	}
}

func TestTable1(t *testing.T) {
	var buf bytes.Buffer
	r := New(tinyConfig(), &buf)
	if err := r.Run("table1"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Website Download (curl)") {
		t.Fatalf("missing overview rows:\n%s", out)
	}
}

func TestFig2aAndDependentTables(t *testing.T) {
	cfg := tinyConfig()
	// Keep the campaign small: three fast methods plus a slow one.
	cfg.Transports = []string{"tor", "obfs4", "webtunnel", "dnstt"}
	var buf bytes.Buffer
	r := New(cfg, &buf)
	if err := r.Run("fig2a"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, m := range cfg.Transports {
		if !strings.Contains(out, m) {
			t.Fatalf("fig2a output missing %s:\n%s", m, out)
		}
	}
	// The t-test table reuses the cached campaign: must be fast.
	buf.Reset()
	if err := r.Run("table3"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "tor-obfs4") {
		t.Fatalf("table3 missing pair rows:\n%s", buf.String())
	}
	buf.Reset()
	if err := r.Run("fig6"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "p50") {
		t.Fatalf("fig6 missing quantile columns:\n%s", buf.String())
	}
}

func TestFig5AndFig8ShareFileCampaign(t *testing.T) {
	cfg := tinyConfig()
	cfg.Transports = []string{"tor", "obfs4", "meek"}
	var buf bytes.Buffer
	r := New(cfg, &buf)
	if err := r.Run("fig5"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "5MB") {
		t.Fatalf("fig5 missing size column:\n%s", buf.String())
	}
	buf.Reset()
	if err := r.Run("fig8"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "complete") || !strings.Contains(out, "meek") {
		t.Fatalf("fig8 output wrong:\n%s", out)
	}
}

func TestFig10SnowflakeLoad(t *testing.T) {
	cfg := tinyConfig()
	var buf bytes.Buffer
	r := New(cfg, &buf)
	if err := r.Run("fig10"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "pre-September") || !strings.Contains(out, "post-September") {
		t.Fatalf("fig10 output wrong:\n%s", out)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Sites == 0 || c.Repeats == 0 || len(c.Transports) != 13 {
		t.Fatalf("defaults wrong: %+v", c)
	}
	if len(c.FileSizesMB) != 5 {
		t.Fatalf("file sizes: %v", c.FileSizesMB)
	}
	if c.Jobs < 1 {
		t.Fatalf("Jobs must default to GOMAXPROCS, got %d", c.Jobs)
	}
}

func TestOrderedMethods(t *testing.T) {
	got := orderedMethods([]string{"marionette", "tor", "obfs4"})
	if got[0] != "tor" || got[1] != "obfs4" || got[2] != "marionette" {
		t.Fatalf("order: %v", got)
	}
}

func TestTable2(t *testing.T) {
	var buf bytes.Buffer
	r := New(tinyConfig(), &buf)
	if err := r.Run("table2"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"obfs4", "covertcast", "12 of 28"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table2 missing %q:\n%s", want, out)
		}
	}
}

func TestMediumExperiment(t *testing.T) {
	cfg := tinyConfig()
	var buf bytes.Buffer
	r := New(cfg, &buf)
	if err := r.Run("medium"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "obfs4/wired") || !strings.Contains(out, "obfs4/wireless") {
		t.Fatalf("medium output wrong:\n%s", out)
	}
}

func TestPlotFlagAddsFigures(t *testing.T) {
	cfg := tinyConfig()
	cfg.Plot = true
	cfg.Transports = []string{"tor", "obfs4"}
	var buf bytes.Buffer
	r := New(cfg, &buf)
	if err := r.Run("fig2a"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "box plot") {
		t.Fatalf("plot output missing:\n%s", buf.String())
	}
}
