package harness

import (
	"fmt"
	"time"

	"ptperf/internal/faults"
	"ptperf/internal/fetch"
	"ptperf/internal/sim"
	"ptperf/internal/stats"
	"ptperf/internal/testbed"
	"ptperf/internal/tor"
)

// This file implements "-exp churn": the churn-resilience sweep over
// the relay-failure scenario family. Each cell is one independent world
// task on the same seed stream, so topology, catalogs and relay draws
// are identical across columns and the only difference is the fault
// plan (none at the baseline). It crosses the methods {tor, obfs4,
// webtunnel, snowflake} with {none, slow, fast} churn, every method
// running resumable bulk downloads concurrently on the world's clock
// while relays crash, links flap and descriptors churn underneath them,
// and reports download-time and TTFB distributions, success rates, and
// the per-method recovery-cost breakdown with paired t-tests against
// the fault-free baseline.

// churnMethods are the measured access methods: vanilla Tor plus one
// transport from each integration set that survives a mid-path failure
// differently (set-1 bridges keep their guard; snowflake's set-2 proxy
// re-splices).
var churnMethods = []string{"tor", "obfs4", "webtunnel", "snowflake"}

const (
	// churnFileMB is the per-download file size (paper-scale MB): big
	// enough that a download spans several fast-churn periods, so relay
	// crashes land mid-transfer instead of between attempts.
	churnFileMB = 50
	// churnAttempts is the number of resumable downloads per method.
	churnAttempts = 8
	// churnMaxResumes bounds extra transfer legs per download.
	churnMaxResumes = 8
	// churnThink is the idle gap between a method's downloads.
	churnThink = 2 * time.Second
	// churnFileTimeout bounds one resumed download end to end.
	churnFileTimeout = 600 * time.Second
	// churnHorizon bounds the fault plan; events past the campaign's
	// actual end stay parked on the clock and never fire.
	churnHorizon = 20 * time.Minute
)

// churnRetry is the recovery policy every Tor client of a churn world
// runs: more build attempts with exponential, jittered backoff (so a
// retry storm does not burn its whole budget inside one 10 s outage)
// and a bigger stream re-attach budget.
var churnRetry = tor.RetryPolicy{
	MaxBuildRetries:  4,
	MaxStreamRetries: 3,
	BackoffBase:      2 * time.Second,
}

// churnMethod is one method's measurements in one cell.
type churnMethod struct {
	// Times / TTFBs hold one sample per attempt (failures record the
	// file timeout, like the paper's reliability analysis).
	Times, TTFBs []float64
	// Attempts / Completed count downloads started and fully delivered.
	Attempts, Completed int
	// Resumes counts extra transfer legs across all attempts.
	Resumes int
	// Recovery is the method's client-side recovery-cost breakdown.
	Recovery tor.RecoveryStats
}

// churnCell is one churn-level world-task result.
type churnCell struct {
	Level   testbed.ChurnLevel
	Methods map[string]*churnMethod
	// Faults counts what the injector actually did in this world.
	Faults faults.Stats
}

// churnTask submits (once) one churn cell. All cells share one world
// seed; only the attached fault plan differs.
func (r *Runner) churnTask(li int) *sim.Future[any] {
	lv := testbed.ChurnLevels[li]
	opts := r.worldOptions(streamChurn)
	opts.Retry = churnRetry
	plan := testbed.ChurnPlanFor(lv, opts, churnHorizon)
	if !plan.Empty() {
		opts.FaultSpec = &plan
	}
	spec := r.cellSpec(
		fmt.Sprintf("level=%s", lv.Name),
		fmt.Sprintf("methods=%v attempts=%d fileMB=%d", churnMethods, churnAttempts, churnFileMB),
	)
	return r.worldTask(fmt.Sprintf("churn:%d", li), opts, spec, jsonValue[*churnCell](), func(w *testbed.World) (any, error) {
		size := w.Bytes(churnFileMB << 20)
		results, err := r.forEachMethod(w, churnMethods, func(name string) (any, error) {
			dep, err := w.Deployment(name)
			if err != nil {
				return nil, err
			}
			if err := dep.Preheat(); err != nil {
				return nil, fmt.Errorf("preheat: %w", err)
			}
			c := &fetch.Client{Net: w.Net, Dial: dep.Dial, Timeout: churnFileTimeout}
			m := &churnMethod{}
			for i := 0; i < churnAttempts; i++ {
				if i > 0 {
					w.Net.Clock().Sleep(churnThink)
					// Each attempt measures a cold path, like the bulk
					// campaign — and spreads fault exposure over circuits.
					dep.FreshCircuit()
				}
				res := c.DownloadFileResumed(w.Origin.Addr(), size, churnMaxResumes)
				m.Attempts++
				m.Resumes += res.Resumes
				if res.Complete() {
					m.Completed++
					m.Times = append(m.Times, seconds(res.Total))
					m.TTFBs = append(m.TTFBs, seconds(res.TTFB))
				} else {
					m.Times = append(m.Times, churnFileTimeout.Seconds())
					m.TTFBs = append(m.TTFBs, churnFileTimeout.Seconds())
				}
			}
			m.Recovery = dep.Recovery()
			return m, nil
		})
		if err != nil {
			return nil, err
		}
		cell := &churnCell{
			Level:   lv,
			Methods: make(map[string]*churnMethod, len(results)),
			Faults:  w.FaultStats(),
		}
		//simlint:allow maprange -- map-to-map copy under the same keys; per-key writes commute, and the churn report orders methods explicitly.
		for name, v := range results {
			cell.Methods[name] = v.(*churnMethod)
		}
		return cell, nil
	})
}

// prefetchChurn submits every churn level.
func prefetchChurn(r *Runner) {
	for li := range testbed.ChurnLevels {
		r.churnTask(li)
	}
}

// runChurn renders the churn-resilience sweep.
func (r *Runner) runChurn() error {
	levels := testbed.ChurnLevels
	fmt.Fprintf(r.out, "Relay churn: %d methods × %d failure rates, resumable %d MB downloads over a failing fleet (same world seed per cell)\n\n",
		len(churnMethods), len(levels), churnFileMB)
	prefetchChurn(r)

	cells := make([]*churnCell, len(levels))
	for li := range levels {
		v, err := r.churnTask(li).Wait()
		if err != nil {
			return fmt.Errorf("churn %s: %w", levels[li].Name, err)
		}
		cells[li] = v.(*churnCell)
	}

	var timeRows, ttfbRows []struct {
		Name string
		Box  stats.Box
	}
	for _, cell := range cells {
		for _, m := range churnMethods {
			label := fmt.Sprintf("%s@%s", m, cell.Level.Name)
			timeRows = append(timeRows, struct {
				Name string
				Box  stats.Box
			}{label, stats.Summarize(cell.Methods[m].Times)})
			ttfbRows = append(ttfbRows, struct {
				Name string
				Box  stats.Box
			}{label, stats.Summarize(cell.Methods[m].TTFBs)})
		}
	}
	r.writeBoxes("Download time under relay churn (s; failures count as the timeout)", timeRows)
	r.writeBoxes("Time to first byte under relay churn (s)", ttfbRows)

	t := newTable("level", "method", "attempts", "ok", "success", "resumes",
		"rebuilds", "build-timeouts", "stream-fails", "re-attaches", "abandoned", "probations")
	for _, cell := range cells {
		for _, m := range churnMethods {
			cm := cell.Methods[m]
			rec := cm.Recovery
			t.add(cell.Level.Name, m,
				fmt.Sprintf("%d", cm.Attempts), fmt.Sprintf("%d", cm.Completed),
				fmt.Sprintf("%.0f%%", 100*float64(cm.Completed)/float64(cm.Attempts)),
				fmt.Sprintf("%d", cm.Resumes),
				fmt.Sprintf("%d", rec.Rebuilds), fmt.Sprintf("%d", rec.BuildTimeouts),
				fmt.Sprintf("%d", rec.StreamFailures), fmt.Sprintf("%d", rec.ReAttaches),
				fmt.Sprintf("%d", rec.Abandoned), fmt.Sprintf("%d", rec.GuardProbations))
		}
	}
	fmt.Fprintln(r.out, "Recovery cost per method (client-side circuit rebuilds and stream re-attaches)")
	t.write(r.out)
	fmt.Fprintln(r.out)

	ft := newTable("level", "crashes", "restarts", "flaps-down", "flaps-up", "withdrawn", "rejoined", "skipped")
	for _, cell := range cells {
		st := cell.Faults
		ft.add(cell.Level.Name,
			fmt.Sprintf("%d", st.Crashes), fmt.Sprintf("%d", st.Restarts),
			fmt.Sprintf("%d", st.FlapsDown), fmt.Sprintf("%d", st.FlapsUp),
			fmt.Sprintf("%d", st.Withdrawn), fmt.Sprintf("%d", st.Rejoined),
			fmt.Sprintf("%d", st.Skipped))
	}
	fmt.Fprintln(r.out, "Fault injector transitions per level")
	ft.write(r.out)
	fmt.Fprintln(r.out)

	var pairs []pairResult
	base := cells[0]
	for _, cell := range cells[1:] {
		for _, m := range churnMethods {
			res, err := stats.PairedT(cell.Methods[m].Times, base.Methods[m].Times)
			if err != nil {
				continue
			}
			pairs = append(pairs, pairResult{Name: fmt.Sprintf("%s@%s-none", m, cell.Level.Name), Res: res})
		}
	}
	writePairedT(r.out, "Paired t-tests, download time per churn level vs fault-free (positive mean-diff = churn slower)", pairs)

	fmt.Fprintln(r.out, "Expected: downloads survive churn through resume legs and circuit rebuilds — success stays high while recovery counters, not failure rates, absorb the damage.")
	fmt.Fprintln(r.out)
	return nil
}
