package harness

import (
	"fmt"

	"ptperf/internal/censor"
	"ptperf/internal/fetch"
	"ptperf/internal/geo"
	"ptperf/internal/pt"
	"ptperf/internal/sim"
	"ptperf/internal/stats"
	"ptperf/internal/testbed"
	"ptperf/internal/tor"
)

// The experiments that build their own worlds are split in two: a
// *Task method submits the world task (build world, measure, return
// values) on the shard executor, and the run* method joins the future
// and renders the report. Prefetching submits every task before any
// render, so "-exp all" keeps all -jobs cores busy while reports still
// come out strictly in paper order.

// boxRows builds the standard per-method box table from a dataset.
func boxRows(data map[string]*accessData, pick func(*accessData) []float64, order []string) []struct {
	Name string
	Box  stats.Box
} {
	var rows []struct {
		Name string
		Box  stats.Box
	}
	for _, name := range order {
		d, ok := data[name]
		if !ok {
			continue
		}
		rows = append(rows, struct {
			Name string
			Box  stats.Box
		}{name, stats.Summarize(pick(d))})
	}
	return rows
}

func times(d *accessData) []float64   { return d.Times }
func ttfbs(d *accessData) []float64   { return d.TTFBs }
func speedIx(d *accessData) []float64 { return d.SpeedIndexes }

// runTable1 prints the campaign inventory in the shape of Table 1.
func (r *Runner) runTable1() error {
	c := r.cfg
	sites := 2 * c.Sites
	t := newTable("measurement type", "measurements", "target")
	methods := len(c.Transports)
	// The selenium rows count the browser-capable subset, not
	// methods-1: that shortcut assumed camoufler is always in the
	// configured set.
	selenium := len(r.seleniumMethods())
	t.add("Website Download (curl)", fmt.Sprintf("%d", sites*c.Repeats*methods), fmt.Sprintf("Tranco top-%d & CBL-%d", c.Sites, c.Sites))
	t.add("Website Download (selenium)", fmt.Sprintf("%d", sites*c.Repeats*selenium), fmt.Sprintf("Tranco top-%d & CBL-%d", c.Sites, c.Sites))
	t.add("File Downloads (curl)", fmt.Sprintf("%d", len(c.FileSizesMB)*c.FileAttempts*methods), fmt.Sprintf("%v MB", c.FileSizesMB))
	t.add("Speed Index", fmt.Sprintf("%d", sites*c.Repeats*selenium), fmt.Sprintf("Tranco top-%d", c.Sites))
	t.add("PT Overhead", fmt.Sprintf("%d", c.Sites*len(testbed.OverheadPTs)), fmt.Sprintf("Tranco top-%d", c.Sites))
	t.add("Location Variation", fmt.Sprintf("%d", 3*3*c.Sites*c.Repeats), "Tranco & CBL")
	t.write(r.out)
	return nil
}

// runTable2 prints the appendix's 28-candidate comparison.
func (r *Runner) runTable2() error {
	t := newTable("name", "status", "code", "functional", "integratable", "evaluated", "technology", "challenge")
	yn := func(b bool) string {
		if b {
			return "yes"
		}
		return "no"
	}
	for _, c := range pt.Candidates {
		t.add(c.Name, c.Status.String(), yn(c.CodeAvailable), yn(c.Functional),
			yn(c.Integratable), yn(c.Evaluated), c.Technology, c.Challenge)
	}
	t.write(r.out)
	fmt.Fprintf(r.out, "\n%d of %d candidates were functional, integratable and evaluated.\n",
		pt.EvaluatedCount(), len(pt.Candidates))
	return nil
}

// accessSamples measures plain curl access for every method of one
// world, returning per-method aligned sample vectors. Shared by the
// medium and location world tasks.
func (r *Runner) accessSamples(w *testbed.World, methods []string) (map[string][]float64, error) {
	sites := r.sites(w)
	if len(sites) > r.cfg.Sites {
		sites = sites[:r.cfg.Sites]
	}
	results, err := r.forEachMethod(w, methods, func(name string) (any, error) {
		d, err := w.Deployment(name)
		if err != nil {
			return nil, err
		}
		if err := d.Preheat(); err != nil {
			return nil, err
		}
		c := &fetch.Client{Net: w.Net, Dial: d.Dial, Timeout: pageTimeout}
		var xs []float64
		for _, site := range sites {
			res := c.Get(w.Origin.Addr(), site.path, false)
			xs = append(xs, seconds(res.Total))
		}
		return xs, nil
	})
	if err != nil {
		return nil, err
	}
	out := make(map[string][]float64, len(results))
	//simlint:allow maprange -- map-to-map copy under the same keys; per-key writes commute, and readers order methods explicitly before rendering.
	for name, v := range results {
		if xs, ok := v.([]float64); ok {
			out[name] = xs
		}
	}
	return out, nil
}

// mediumMethods and mediumKinds are the §4.7 grid; prefetchMedium and
// runMedium must iterate the same cells, so both loop over mediumKinds.
var (
	mediumMethods = []string{"tor", "obfs4", "meek", "dnstt", "cloak"}
	mediumKinds   = []geo.Medium{geo.Wired, geo.Wireless}
)

// mediumTask submits the §4.7 world for one access medium.
func (r *Runner) mediumTask(mi int, medium geo.Medium) *sim.Future[any] {
	opts := r.worldOptions(streamMedium, int64(mi))
	opts.Medium = medium
	opts.ClientLocation = geo.Toronto
	spec := r.cellSpec(fmt.Sprintf("methods=%v", mediumMethods))
	return r.worldTask("medium:"+medium.String(), opts, spec,
		jsonValue[map[string][]float64](),
		func(w *testbed.World) (any, error) {
			return r.accessSamples(w, mediumMethods)
		})
}

func prefetchMedium(r *Runner) {
	for mi, medium := range mediumKinds {
		r.mediumTask(mi, medium)
	}
}

// runMedium reproduces §4.7: the same website-access measurement over a
// wired and a wireless (campus WiFi) client, expecting no change in the
// between-transport trend.
func (r *Runner) runMedium() error {
	prefetchMedium(r) // both media in flight before the first join
	var rows []struct {
		Name string
		Box  stats.Box
	}
	for mi, medium := range mediumKinds {
		v, err := r.mediumTask(mi, medium).Wait()
		if err != nil {
			return err
		}
		samples := v.(map[string][]float64)
		for _, name := range mediumMethods {
			rows = append(rows, struct {
				Name string
				Box  stats.Box
			}{fmt.Sprintf("%s/%s", name, medium), stats.Summarize(samples[name])})
		}
	}
	r.writeBoxes("Website access time by access medium (s)", rows)
	fmt.Fprintln(r.out, "Expected: the between-transport ordering is unchanged by the medium (§4.7).")
	return nil
}

// runFig2a prints the curl website-access box plots.
func (r *Runner) runFig2a() error {
	data, err := r.curlData()
	if err != nil {
		return err
	}
	r.writeBoxes("Website access time via curl (seconds, per-site means over Tranco+CBL)",
		boxRows(data, times, orderedMethods(r.cfg.Transports)))
	return nil
}

// runFig2b prints the selenium page-load box plots.
func (r *Runner) runFig2b() error {
	data, err := r.seleniumData()
	if err != nil {
		return err
	}
	r.writeBoxes("Website access time via selenium (seconds; camoufler unsupported)",
		boxRows(data, times, orderedMethods(r.cfg.Transports)))
	// The headline §4.2.1 comparison: PTs whose bridge is the guard can
	// beat vanilla Tor.
	if tor, ok := data["tor"]; ok {
		for _, name := range []string{"obfs4", "webtunnel", "conjure"} {
			if d, ok := data[name]; ok {
				if res, err := stats.PairedT(tor.Times, d.Times); err == nil {
					fmt.Fprintf(r.out, "paired t (tor−%s): t=%.2f P=%s CI=[%.2f, %.2f] mean-diff=%.2f\n",
						name, res.T, pvalue(res.P), res.CILower, res.CIUpper, res.MeanDiff)
				}
			}
		}
		fmt.Fprintln(r.out)
	}
	return nil
}

// fixedCircuitSamples measures the rig's three methods over pinned
// circuits; aligned by (iteration, site).
func (r *Runner) fixedCircuitSamples(w *testbed.World, rig *testbed.FixedCircuitRig, iters int, pinPair bool) (map[string][]float64, error) {
	sites := r.sites(w)
	if len(sites) > 5 {
		sites = sites[:5] // the paper samples five representative sites
	}
	out := map[string][]float64{}
	for it := 0; it < iters; it++ {
		var m, e *tor.Descriptor
		if pinPair {
			m, e = rig.PickPair(it)
		}
		clients, err := rig.Clients(m, e)
		if err != nil {
			return nil, err
		}
		for _, method := range rig.Methods() {
			cl := clients[method]
			if err := cl.Preheat(); err != nil {
				return nil, fmt.Errorf("%s preheat: %w", method, err)
			}
			c := &fetch.Client{Net: w.Net, Dial: cl.Dial, Timeout: pageTimeout}
			for _, site := range sites {
				res := c.Get(w.Origin.Addr(), site.path, false)
				out[method] = append(out[method], seconds(res.Total))
			}
			cl.Close()
		}
	}
	return out, nil
}

// fixedCircuitData is the result of the fig3/fig4 world tasks.
type fixedCircuitData struct {
	Methods []string
	Samples map[string][]float64
}

// fixedCircuitTask submits a fixed-circuit rig world.
func (r *Runner) fixedCircuitTask(key string, stream int64, iters int, pinPair bool) *sim.Future[any] {
	spec := r.cellSpec(fmt.Sprintf("iters=%d pin=%v", iters, pinPair))
	return r.worldTask(key, r.worldOptions(stream), spec,
		jsonValue[*fixedCircuitData](),
		func(w *testbed.World) (any, error) {
			rig, err := w.NewFixedCircuitRig()
			if err != nil {
				return nil, err
			}
			samples, err := r.fixedCircuitSamples(w, rig, iters, pinPair)
			if err != nil {
				return nil, err
			}
			return &fixedCircuitData{Methods: rig.Methods(), Samples: samples}, nil
		})
}

func (r *Runner) fig3Task() *sim.Future[any] {
	iters := r.cfg.Repeats * 3
	if iters < 4 {
		iters = 4
	}
	return r.fixedCircuitTask("fig3", streamFig3, iters, true)
}

// runFig3 prints the fixed-circuit boxes (3a) and the ECDF of per-site
// absolute differences (3b).
func (r *Runner) runFig3() error {
	v, err := r.fig3Task().Wait()
	if err != nil {
		return err
	}
	fc := v.(*fixedCircuitData)
	samples := fc.Samples
	var rows []struct {
		Name string
		Box  stats.Box
	}
	for _, m := range fc.Methods {
		rows = append(rows, struct {
			Name string
			Box  stats.Box
		}{m, stats.Summarize(samples[m])})
	}
	r.writeBoxes("Fixed circuit (same guard/middle/exit) website access time (s)", rows)

	for _, m := range []string{"obfs4", "webtunnel"} {
		res, err := stats.PairedT(samples[m], samples["tor"])
		if err == nil {
			fmt.Fprintf(r.out, "paired t (%s−tor): t=%.2f P=%s CI=[%.2f, %.2f]\n", m, res.T, pvalue(res.P), res.CILower, res.CIUpper)
		}
	}
	diffs := map[string][]float64{
		"obfs4-vs-tor":     stats.AbsDiffs(samples["obfs4"], samples["tor"]),
		"webtunnel-vs-tor": stats.AbsDiffs(samples["webtunnel"], samples["tor"]),
	}
	r.writeECDF("\nECDF of |PT − Tor| per access (s)", diffs, []string{"obfs4-vs-tor", "webtunnel-vs-tor"})
	return nil
}

func (r *Runner) fig4Task() *sim.Future[any] {
	iters := r.cfg.Repeats * 2
	if iters < 3 {
		iters = 3
	}
	return r.fixedCircuitTask("fig4", streamFig4, iters, false)
}

// runFig4 prints the fixed-guard / variable middle+exit comparison.
func (r *Runner) runFig4() error {
	v, err := r.fig4Task().Wait()
	if err != nil {
		return err
	}
	samples := v.(*fixedCircuitData).Samples
	var rows []struct {
		Name string
		Box  stats.Box
	}
	for _, m := range []string{"tor", "obfs4"} {
		rows = append(rows, struct {
			Name string
			Box  stats.Box
		}{m, stats.Summarize(samples[m])})
	}
	r.writeBoxes("Fixed guard, Tor-selected middle/exit: website access time (s)", rows)
	return nil
}

// runFig5 prints mean download time per file size, excluding methods
// that completed a size fewer than two times (as the paper does).
func (r *Runner) runFig5() error {
	data, err := r.filesData()
	if err != nil {
		return err
	}
	head := []string{"method"}
	for _, mb := range r.cfg.FileSizesMB {
		head = append(head, fmt.Sprintf("%dMB", mb))
	}
	t := newTable(head...)
	for _, name := range orderedMethods(r.cfg.Transports) {
		fd, ok := data[name]
		if !ok {
			continue
		}
		row := []string{name}
		usable := false
		for _, mb := range r.cfg.FileSizesMB {
			mean, n := fd.meanTime(mb)
			if n >= 1 {
				row = append(row, fmt.Sprintf("%.1f", mean))
				if n >= 2 || r.cfg.FileAttempts < 2 {
					usable = true
				}
			} else {
				row = append(row, "-")
			}
		}
		if !usable {
			row = append(row[:1], "excluded (unreliable, see fig8)")
			t.add(row...)
			continue
		}
		t.add(row...)
	}
	fmt.Fprintln(r.out, "Mean complete-download time per file size (seconds)")
	t.write(r.out)
	fmt.Fprintln(r.out)
	return nil
}

// runFig6 prints the TTFB ECDF.
func (r *Runner) runFig6() error {
	data, err := r.curlData()
	if err != nil {
		return err
	}
	series := map[string][]float64{}
	//simlint:allow maprange -- map-to-map copy under the same keys; per-key writes commute, and writeECDF orders the series by cfg.Transports.
	for name, d := range data {
		series[name] = d.TTFBs
	}
	r.writeECDF("Time to first byte, ECDF quantiles (s)", series, orderedMethods(r.cfg.Transports))
	return nil
}

// fig7Methods and fig7Locations are the paper's §4.5 grid.
var (
	fig7Methods   = []string{"obfs4", "meek", "snowflake"}
	fig7Locations = []geo.Location{geo.Bangalore, geo.London, geo.Toronto}
)

// fig7Task submits the location world for one client city.
func (r *Runner) fig7Task(li int) *sim.Future[any] {
	loc := fig7Locations[li]
	opts := r.worldOptions(streamFig7, int64(li))
	opts.ClientLocation = loc
	spec := r.cellSpec(fmt.Sprintf("methods=%v", fig7Methods))
	return r.worldTask("fig7:"+loc.Short(), opts, spec,
		jsonValue[map[string][]float64](),
		func(w *testbed.World) (any, error) {
			return r.accessSamples(w, fig7Methods)
		})
}

func prefetchFig7(r *Runner) {
	for li := range fig7Locations {
		r.fig7Task(li)
	}
}

// runFig7 measures meek/obfs4/snowflake from the paper's three client
// cities — one independent world per city, all three in flight at once.
func (r *Runner) runFig7() error {
	prefetchFig7(r)
	var rows []struct {
		Name string
		Box  stats.Box
	}
	for li, loc := range fig7Locations {
		v, err := r.fig7Task(li).Wait()
		if err != nil {
			return err
		}
		samples := v.(map[string][]float64)
		for _, name := range fig7Methods {
			rows = append(rows, struct {
				Name string
				Box  stats.Box
			}{fmt.Sprintf("%s@%s", name, loc.Short()), stats.Summarize(samples[name])})
		}
	}
	r.writeBoxes("Website access time by client location (s)", rows)
	return nil
}

// runFig8 prints reliability: the complete/partial/failed split (8a)
// and the downloaded-fraction ECDF for the three unreliable PTs (8b).
func (r *Runner) runFig8() error {
	data, err := r.filesData()
	if err != nil {
		return err
	}
	t := newTable("method", "complete", "partial", "failed", "complete%")
	for _, name := range orderedMethods(r.cfg.Transports) {
		fd, ok := data[name]
		if !ok {
			continue
		}
		c, p, f := fd.counts()
		total := c + p + f
		if total == 0 {
			continue
		}
		t.add(name, fmt.Sprintf("%d", c), fmt.Sprintf("%d", p), fmt.Sprintf("%d", f),
			fmt.Sprintf("%.0f%%", 100*float64(c)/float64(total)))
	}
	fmt.Fprintln(r.out, "File-download reliability per method")
	t.write(r.out)
	fmt.Fprintln(r.out)

	series := map[string][]float64{}
	for _, name := range []string{"meek", "dnstt", "snowflake"} {
		if fd, ok := data[name]; ok {
			series[name] = fd.fractions()
		}
	}
	r.writeECDF("Downloaded fraction per attempt, ECDF quantiles", series, []string{"meek", "dnstt", "snowflake"})
	return nil
}

// fig9Task submits the pinned-circuit overhead world: per-transport
// time difference over an identical circuit.
func (r *Runner) fig9Task() *sim.Future[any] {
	spec := r.cellSpec(fmt.Sprintf("sites=%d", r.cfg.Sites))
	return r.worldTask("fig9", r.worldOptions(streamFig9), spec,
		jsonValue[map[string][]float64](),
		func(w *testbed.World) (any, error) {
			sites := r.sites(w)
			if len(sites) > r.cfg.Sites {
				sites = sites[:r.cfg.Sites]
			}
			results, err := r.forEachMethod(w, testbed.OverheadPTs, func(name string) (any, error) {
				rig, err := w.NewOverheadRig(name, int64(len(name))*13)
				if err != nil {
					return nil, err
				}
				var diffs []float64
				for _, site := range sites {
					torC := &fetch.Client{Net: w.Net, Dial: rig.TorDial, Timeout: pageTimeout}
					ptC := &fetch.Client{Net: w.Net, Dial: rig.PTDial, Timeout: pageTimeout}
					tTor := torC.Get(w.Origin.Addr(), site.path, false)
					tPT := ptC.Get(w.Origin.Addr(), site.path, false)
					diffs = append(diffs, seconds(tPT.Total)-seconds(tTor.Total))
				}
				return diffs, nil
			})
			if err != nil {
				return nil, err
			}
			out := make(map[string][]float64, len(results))
			//simlint:allow maprange -- map-to-map copy under the same keys; per-key writes commute, and readers order methods explicitly before rendering.
			for name, v := range results {
				if diffs, ok := v.([]float64); ok {
					out[name] = diffs
				}
			}
			return out, nil
		})
}

// runFig9 prints per-transport overhead over an identical pinned
// circuit: positive means the PT added time over vanilla Tor.
func (r *Runner) runFig9() error {
	v, err := r.fig9Task().Wait()
	if err != nil {
		return err
	}
	samples := v.(map[string][]float64)
	var rows []struct {
		Name string
		Box  stats.Box
	}
	for _, name := range testbed.OverheadPTs {
		rows = append(rows, struct {
			Name string
			Box  stats.Box
		}{name, stats.Summarize(samples[name])})
	}
	r.writeBoxes("PT − vanilla Tor time difference on an identical circuit (s)", rows)
	return nil
}

// snowflakeAccess measures snowflake website access in the current load
// state of its own world.
func (r *Runner) snowflakeAccess(w *testbed.World, nSites int) ([]float64, error) {
	d, err := w.Deployment("snowflake")
	if err != nil {
		return nil, err
	}
	d.FreshCircuit()
	// Under heavy churn a build can land on a dying volunteer; retry a
	// few times like a real client would.
	for attempt := 0; attempt < 5; attempt++ {
		if err = d.Preheat(); err == nil {
			break
		}
		d.FreshCircuit()
	}
	if err != nil {
		return nil, err
	}
	c := &fetch.Client{Net: w.Net, Dial: d.Dial, Timeout: pageTimeout}
	sites := r.sites(w)
	if len(sites) > nSites {
		sites = sites[:nSites]
	}
	var xs []float64
	for _, site := range sites {
		res := c.Get(w.Origin.Addr(), site.path, false)
		xs = append(xs, seconds(res.Total))
	}
	return xs, nil
}

// surgePhases is the §5.3 snowflake load timeline, owned by the censor
// scenario registry (the snowflake-surge scenario plays the same phases
// on the virtual clock; figures 10 and 12 step the same table).
var surgePhases = censor.SurgePhases

// manualLoadOptions is worldOptions for the figures that step load
// phases by hand (10 and 12): a scenario that carries its own phase
// timeline is dropped there, because the armed timers would override
// the manual SetLoad stepping mid-measurement.
func (r *Runner) manualLoadOptions(stream int64) testbed.Options {
	opts := r.worldOptions(stream)
	if opts.Scenario != "" {
		if sc, err := censor.Lookup(opts.Scenario); err == nil && len(sc.Phases) > 0 {
			opts.Scenario = ""
		}
	}
	return opts
}

// surgeAccess is the fig10 world-task result.
type surgeAccess struct {
	Pre, Post []float64
}

// fig10Task submits the §5.3 surge world: snowflake access before and
// after the September load step.
func (r *Runner) fig10Task() *sim.Future[any] {
	spec := r.cellSpec(fmt.Sprintf("sites=%d", r.cfg.Sites))
	return r.worldTask("fig10", r.manualLoadOptions(streamFig10), spec,
		jsonValue[*surgeAccess](),
		func(w *testbed.World) (any, error) {
			d, err := w.Deployment("snowflake")
			if err != nil {
				return nil, err
			}
			d.Snowflake().SetLoad(surgePhases[0].Util, surgePhases[0].Lifetime)
			pre, err := r.snowflakeAccess(w, r.cfg.Sites)
			if err != nil {
				return nil, err
			}
			d.Snowflake().SetLoad(surgePhases[1].Util, surgePhases[1].Lifetime)
			post, err := r.snowflakeAccess(w, r.cfg.Sites)
			if err != nil {
				return nil, err
			}
			return &surgeAccess{Pre: pre, Post: post}, nil
		})
}

// runFig10 prints the snowflake user-count timeline (10a, from the load
// model) and access time before/after the surge (10b).
func (r *Runner) runFig10() error {
	fmt.Fprintln(r.out, "Modeled snowflake daily users (relative load timeline)")
	t := newTable("period", "users", "proxy-utilization", "mean-proxy-lifetime")
	base := 20000.0
	for _, lv := range surgePhases {
		users := int(base * (1 + 6*lv.Util))
		t.add(lv.Label, fmt.Sprintf("%d", users), fmt.Sprintf("%.2f", lv.Util), lv.Lifetime.String())
	}
	t.write(r.out)
	fmt.Fprintln(r.out)

	v, err := r.fig10Task().Wait()
	if err != nil {
		return err
	}
	surge := v.(*surgeAccess)
	rows := []struct {
		Name string
		Box  stats.Box
	}{
		{"pre-September", stats.Summarize(surge.Pre)},
		{"post-September", stats.Summarize(surge.Post)},
	}
	r.writeBoxes("Snowflake website access time before/after the surge (s)", rows)
	if res, err := stats.PairedT(surge.Pre, surge.Post); err == nil {
		fmt.Fprintf(r.out, "paired t (pre−post): t=%.2f P=%s CI=[%.2f, %.2f] mean-diff=%.2f\n\n",
			res.T, pvalue(res.P), res.CILower, res.CIUpper, res.MeanDiff)
	}
	return nil
}

// runFig11 prints the browsertime speed-index boxes.
func (r *Runner) runFig11() error {
	data, err := r.seleniumData()
	if err != nil {
		return err
	}
	r.writeBoxes("Speed index (seconds; camoufler unsupported)",
		boxRows(data, speedIx, orderedMethods(r.cfg.Transports)))
	return nil
}

// labeledSamples is one labeled sample vector of a world-task result.
type labeledSamples struct {
	Label string
	Xs    []float64
}

// fig12Task submits the monthly-monitoring world: the surge phases
// stepped in sequence on one snowflake deployment.
func (r *Runner) fig12Task() *sim.Future[any] {
	spec := r.cellSpec(fmt.Sprintf("sites=%d", r.cfg.Sites))
	return r.worldTask("fig12", r.manualLoadOptions(streamFig12), spec,
		jsonValue[[]labeledSamples](),
		func(w *testbed.World) (any, error) {
			d, err := w.Deployment("snowflake")
			if err != nil {
				return nil, err
			}
			n := r.cfg.Sites / 2
			if n < 4 {
				n = 4
			}
			var series []labeledSamples
			for _, lv := range surgePhases {
				if lv.Label == "post-Sept-2022" {
					continue // fig12 shows pre + the monthly series
				}
				d.Snowflake().SetLoad(lv.Util, lv.Lifetime)
				xs, err := r.snowflakeAccess(w, n)
				if err != nil {
					return nil, err
				}
				series = append(series, labeledSamples{Label: lv.Label, Xs: xs})
			}
			return series, nil
		})
}

// runFig12 prints the post-September monthly monitoring boxes.
func (r *Runner) runFig12() error {
	v, err := r.fig12Task().Wait()
	if err != nil {
		return err
	}
	var rows []struct {
		Name string
		Box  stats.Box
	}
	for _, s := range v.([]labeledSamples) {
		rows = append(rows, struct {
			Name string
			Box  stats.Box
		}{s.Label, stats.Summarize(s.Xs)})
	}
	r.writeBoxes("Snowflake monthly website access time (s)", rows)
	return nil
}

// runTables34 prints the curl paired t-test table.
func (r *Runner) runTables34() error {
	data, err := r.curlData()
	if err != nil {
		return err
	}
	writePairedT(r.out, "Paired t-tests, website access via curl (all method pairs)",
		allPairs(data, times, orderedMethods(r.cfg.Transports)))
	return nil
}

// runTables56 prints the selenium paired t-test table.
func (r *Runner) runTables56() error {
	data, err := r.seleniumData()
	if err != nil {
		return err
	}
	writePairedT(r.out, "Paired t-tests, website access via selenium (all method pairs)",
		allPairs(data, times, orderedMethods(r.cfg.Transports)))
	return nil
}

// runTable7 prints the file-download paired t-test table, pairing
// attempts by (size, attempt index).
func (r *Runner) runTable7() error {
	data, err := r.filesData()
	if err != nil {
		return err
	}
	acc := map[string]*accessData{}
	//simlint:allow maprange -- per-key transform into a fresh map; keys are independent, so writes commute, and allPairs orders methods explicitly.
	for name, fd := range data {
		d := &accessData{Name: name}
		for _, a := range fd.Attempts {
			d.Times = append(d.Times, a.Seconds)
		}
		acc[name] = d
	}
	writePairedT(r.out, "Paired t-tests, file download times (attempts paired by size and index)",
		allPairs(acc, times, orderedMethods(r.cfg.Transports)))
	return nil
}

// runTables89 prints the speed-index paired t-test table.
func (r *Runner) runTables89() error {
	data, err := r.seleniumData()
	if err != nil {
		return err
	}
	writePairedT(r.out, "Paired t-tests, speed index (all method pairs)",
		allPairs(data, speedIx, orderedMethods(r.cfg.Transports)))
	return nil
}

// runTable10 prints the category-pair t-tests over the curl data.
func (r *Runner) runTable10() error {
	data, err := r.curlData()
	if err != nil {
		return err
	}
	cats := pt.ByCategory()
	catData := map[string]*accessData{}
	if d, ok := data["tor"]; ok {
		catData["Tor"] = d
	}
	//simlint:allow maprange -- per-category aggregation: each key writes only its own catData entry (members iterate a slice), so writes commute; allPairsNamed fixes the output order.
	for cat, members := range cats {
		agg := &accessData{Name: cat.String()}
		var n int
		for _, m := range members {
			d, ok := data[m]
			if !ok {
				continue
			}
			if agg.Times == nil {
				agg.Times = make([]float64, len(d.Times))
			}
			for i, v := range d.Times {
				agg.Times[i] += v
			}
			n++
		}
		if n == 0 {
			continue
		}
		for i := range agg.Times {
			agg.Times[i] /= float64(n)
		}
		catData[cat.String()] = agg
	}
	order := []string{"Tor", pt.ProxyLayer.String(), pt.Tunneling.String(), pt.Mimicry.String(), pt.FullyEncrypted.String()}
	writePairedT(r.out, "Paired t-tests, PT category pairs (curl access)",
		allPairsNamed(catData, order))
	return nil
}

// allPairsNamed is allPairs over explicitly named datasets.
func allPairsNamed(data map[string]*accessData, order []string) []pairResult {
	var out []pairResult
	for i := 0; i < len(order); i++ {
		a, ok := data[order[i]]
		if !ok {
			continue
		}
		for j := i + 1; j < len(order); j++ {
			b, ok := data[order[j]]
			if !ok {
				continue
			}
			res, err := stats.PairedT(a.Times, b.Times)
			if err != nil {
				continue
			}
			out = append(out, pairResult{Name: order[i] + "-" + order[j], Res: res})
		}
	}
	return out
}
