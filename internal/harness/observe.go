package harness

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"ptperf/internal/obs"
	"ptperf/internal/sim"
	"ptperf/internal/testbed"
)

// This file wires the observability layer (internal/obs) into the
// Runner: every world task goes through worldTask, which attaches a
// metric recorder when Config.MetricsInterval is set, consults the
// content-addressed result cache when EnableCache was called, and
// reports the cell's virtual-time horizon to the progress monitor.
//
// The cache contract: a cell's digest covers its key, its (defaulted)
// testbed.Options, a spec string naming exactly the harness knobs its
// measurement reads, and the code version. Specs are deliberately
// per-cell-kind — fig7's cells do not read Config.Repeats, so changing
// Repeats must invalidate fig3/fig4 but not fig7. Jobs and Plot are
// never in a spec: the first cannot change results (the determinism
// contract) and the second only affects rendering.

// decodeFunc decodes a cached cell value back into the concrete type
// the render paths type-assert on.
type decodeFunc func([]byte) (any, error)

// jsonValue builds the decoder for a cell kind whose result is T.
func jsonValue[T any]() decodeFunc {
	return func(b []byte) (any, error) {
		var v T
		if err := json.Unmarshal(b, &v); err != nil {
			return nil, err
		}
		return v, nil
	}
}

// EnableCache attaches a content-addressed result cache rooted at dir
// (created if needed). Call before submitting any task.
func (r *Runner) EnableCache(dir string) error {
	c, err := obs.OpenCache(dir)
	if err != nil {
		return err
	}
	r.cache = c
	return nil
}

// CacheStats reports this run's cache traffic (zero when no cache is
// attached).
func (r *Runner) CacheStats() obs.CacheStats {
	if r.cache == nil {
		return obs.CacheStats{}
	}
	return r.cache.Stats()
}

// cellSpec renders the campaign-input spec of one cell kind: the
// globally relevant knobs first (sampling interval changes the world's
// event stream; Sequential changes per-method concurrency), then the
// cell kind's own.
func (r *Runner) cellSpec(parts ...string) string {
	base := []string{
		fmt.Sprintf("metrics=%s", r.cfg.MetricsInterval),
		fmt.Sprintf("sequential=%v", r.cfg.Sequential),
	}
	return strings.Join(append(base, parts...), " ")
}

// worldTask submits (once) the keyed world cell: consult the cache,
// else build the world from opts, run measure over it, and store the
// result. The recorder is attached between world build and measure, so
// timelines cover exactly the measured campaign. measure's result must
// survive a JSON round trip unchanged (all cell types do) — that is
// what makes a cache hit render byte-identically.
func (r *Runner) worldTask(key string, opts testbed.Options, spec string, decode decodeFunc, measure func(*testbed.World) (any, error)) *sim.Future[any] {
	return r.task(key, func() (any, error) {
		var digest string
		if r.cache != nil {
			digest = obs.CellDigest(key, opts, spec)
			if e, ok := r.cache.Load(digest); ok {
				if v, err := decode(e.Value); err == nil {
					r.monitor.Cached(key)
					r.setTimeline(key, e.Timeline)
					return v, nil
				}
				// An undecodable entry (schema drift without a version
				// bump) falls through to recompute and overwrite.
			}
		}
		w, err := testbed.New(opts)
		if err != nil {
			return nil, err
		}
		clock := w.Net.Clock()
		r.monitor.Horizon(key, clock.Now)
		var rec *obs.Recorder
		if r.cfg.MetricsInterval > 0 {
			rec = obs.AttachWorld(w, r.cfg.MetricsInterval)
		}
		v, err := measure(w)
		if err != nil {
			return nil, err
		}
		var tl *obs.Timeline
		if rec != nil {
			tl = rec.Close()
			r.setTimeline(key, tl)
		}
		if r.cache != nil {
			raw, jerr := json.Marshal(v)
			if jerr != nil {
				return nil, fmt.Errorf("%s: cache encode: %w", key, jerr)
			}
			if serr := r.cache.Store(&obs.Entry{Key: key, Digest: digest, Value: raw, Timeline: tl}); serr != nil {
				return nil, fmt.Errorf("%s: %w", key, serr)
			}
		}
		return v, nil
	})
}

func (r *Runner) setTimeline(key string, tl *obs.Timeline) {
	if tl == nil {
		return
	}
	r.omu.Lock()
	r.timelines[key] = tl
	r.omu.Unlock()
}

// Timelines returns the recorded (or cache-restored) metric timelines
// in canonical cell-key order. Empty unless MetricsInterval is set.
func (r *Runner) Timelines() []obs.CellTimeline {
	r.omu.Lock()
	defer r.omu.Unlock()
	keys := make([]string, 0, len(r.timelines))
	for k := range r.timelines {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]obs.CellTimeline, 0, len(keys))
	for _, k := range keys {
		out = append(out, obs.CellTimeline{Cell: k, Timeline: r.timelines[k]})
	}
	return out
}

// Sections returns the experiment reports captured by Run, in run
// order.
func (r *Runner) Sections() []obs.Section {
	r.omu.Lock()
	defer r.omu.Unlock()
	return append([]obs.Section(nil), r.sections...)
}

// configSummary renders the campaign configuration lines the HTML
// report heads with.
func (r *Runner) configSummary() string {
	c := r.cfg
	return fmt.Sprintf(
		"seed=%d bytescale=%g sites=%d repeats=%d attempts=%d sizes=%v\ntransports=%s\nscenario=%q sequential=%v metrics-interval=%s",
		c.Seed, c.ByteScale, c.Sites, c.Repeats, c.FileAttempts, c.FileSizesMB,
		strings.Join(c.Transports, ","), c.Scenario, c.Sequential, c.MetricsInterval)
}

// WritePrometheus writes the run's metric timelines as Prometheus text
// exposition.
func (r *Runner) WritePrometheus(w io.Writer) {
	obs.WritePrometheus(w, r.Timelines())
}

// WriteArtifacts writes the run's export artifacts after Run returns:
// metricsDir (when non-empty) receives metrics.prom, reportPath (when
// non-empty) the self-contained HTML report. historyPath, when naming
// an existing JSONL benchmark-history file, adds the perf-trajectory
// section.
func (r *Runner) WriteArtifacts(metricsDir, reportPath, historyPath string) error {
	if metricsDir != "" {
		if err := os.MkdirAll(metricsDir, 0o755); err != nil {
			return fmt.Errorf("harness: metrics dir: %w", err)
		}
		var b bytes.Buffer
		r.WritePrometheus(&b)
		if err := os.WriteFile(filepath.Join(metricsDir, "metrics.prom"), b.Bytes(), 0o644); err != nil {
			return fmt.Errorf("harness: write metrics: %w", err)
		}
	}
	if reportPath != "" {
		rep := obs.HTMLReport{
			Title:    "PTPerf campaign report",
			Config:   r.configSummary(),
			Sections: r.Sections(),
			Cells:    r.Timelines(),
		}
		if historyPath != "" {
			if f, err := os.Open(historyPath); err == nil {
				rep.History = obs.ParseBenchHistory(f)
				f.Close()
			}
		}
		f, err := os.Create(reportPath)
		if err != nil {
			return fmt.Errorf("harness: write report: %w", err)
		}
		if err := obs.WriteHTML(f, rep); err != nil {
			f.Close()
			return fmt.Errorf("harness: write report: %w", err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("harness: write report: %w", err)
		}
	}
	return nil
}
