// Package harness runs the paper's experiments: it builds testbed
// worlds, drives the measurement campaigns (curl, selenium, speed index,
// bulk files, locations, load scenarios), applies the statistics, and
// prints each table and figure of the evaluation section.
package harness

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"ptperf/internal/censor"
	"ptperf/internal/netem"
	"ptperf/internal/pt"
	"ptperf/internal/testbed"
	"ptperf/internal/web"
)

// Config sizes a campaign. The zero value is a CI-friendly small run;
// the paper-scale campaign raises Sites/Repeats/FileAttempts.
type Config struct {
	// Seed drives the whole campaign deterministically.
	Seed int64
	// TimeScale is real seconds per virtual second.
	TimeScale float64
	// ByteScale scales sizes, rates and caps together (see testbed).
	ByteScale float64
	// Sites is the number of sites measured per catalog.
	Sites int
	// Repeats is accesses per site (the paper uses 5).
	Repeats int
	// FileAttempts is download attempts per file size (paper: 10–20).
	FileAttempts int
	// FileSizesMB selects which of Figure 5's sizes to run.
	FileSizesMB []int
	// Transports lists methods to evaluate; empty means all 12 + tor.
	Transports []string
	// Scenario names a censor scenario (internal/censor registry) that
	// every experiment's world is built under. Empty leaves the paper
	// experiments on unpoliced networks; the scenario:<name> and sweep
	// experiments select their scenarios themselves.
	Scenario string
	// Sequential disables the per-transport parallelism.
	Sequential bool
	// Plot adds ASCII box plots and ECDF curves under the tables,
	// mirroring the paper's figure shapes.
	Plot bool
}

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.TimeScale <= 0 {
		c.TimeScale = 0.004
	}
	if c.ByteScale <= 0 {
		c.ByteScale = 0.125
	}
	if c.Sites <= 0 {
		c.Sites = 12
	}
	if c.Repeats <= 0 {
		c.Repeats = 2
	}
	if c.FileAttempts <= 0 {
		c.FileAttempts = 2
	}
	if len(c.FileSizesMB) == 0 {
		c.FileSizesMB = web.FileSizesMB
	}
	if len(c.Transports) == 0 {
		c.Transports = append([]string{"tor"}, pt.Names()...)
	}
	return c
}

// Runner executes experiments and writes reports.
type Runner struct {
	cfg Config
	out io.Writer

	mu    sync.Mutex
	world *testbed.World
	cache map[string]any
}

// New creates a Runner writing its reports to out.
func New(cfg Config, out io.Writer) *Runner {
	return &Runner{cfg: cfg.withDefaults(), out: out, cache: make(map[string]any)}
}

// Config returns the effective (defaulted) configuration.
func (r *Runner) Config() Config { return r.cfg }

// Experiment describes one runnable artifact reproduction.
type Experiment struct {
	// ID is the CLI name (e.g. "fig2a").
	ID string
	// Artifact names the paper table/figure.
	Artifact string
	// Title is a one-line description.
	Title string
	// Optional experiments (the censor scenarios and the sweep) go
	// beyond the paper's artifacts and are excluded from "all".
	Optional bool
	run      func(*Runner) error
}

// Experiments lists every reproducible artifact in paper order, then
// the censor-scenario experiments.
func Experiments() []Experiment {
	exps := []Experiment{
		{ID: "table1", Artifact: "Table 1", Title: "measurement campaign overview", run: (*Runner).runTable1},
		{ID: "table2", Artifact: "Table 2", Title: "28 candidate transports at a glance", run: (*Runner).runTable2},
		{ID: "fig2a", Artifact: "Figure 2a", Title: "website access time, curl", run: (*Runner).runFig2a},
		{ID: "fig2b", Artifact: "Figure 2b", Title: "website access time, selenium", run: (*Runner).runFig2b},
		{ID: "fig3", Artifact: "Figure 3a/3b", Title: "fixed-circuit comparison and ECDF", run: (*Runner).runFig3},
		{ID: "fig4", Artifact: "Figure 4", Title: "fixed guard, variable middle/exit", run: (*Runner).runFig4},
		{ID: "fig5", Artifact: "Figure 5", Title: "file download time by size", run: (*Runner).runFig5},
		{ID: "fig6", Artifact: "Figure 6", Title: "time to first byte ECDF", run: (*Runner).runFig6},
		{ID: "fig7", Artifact: "Figure 7", Title: "client-location variation", run: (*Runner).runFig7},
		{ID: "fig8", Artifact: "Figure 8a/8b", Title: "download reliability", run: (*Runner).runFig8},
		{ID: "fig9", Artifact: "Figure 9", Title: "PT overhead vs vanilla Tor", run: (*Runner).runFig9},
		{ID: "fig10", Artifact: "Figure 10a/10b", Title: "snowflake under load", run: (*Runner).runFig10},
		{ID: "fig11", Artifact: "Figure 11", Title: "speed index", run: (*Runner).runFig11},
		{ID: "fig12", Artifact: "Figure 12", Title: "snowflake post-September months", run: (*Runner).runFig12},
		{ID: "medium", Artifact: "Section 4.7", Title: "wired vs wireless access medium", run: (*Runner).runMedium},
		{ID: "table3", Artifact: "Tables 3–4", Title: "paired t-tests, curl access", run: (*Runner).runTables34},
		{ID: "table5", Artifact: "Tables 5–6", Title: "paired t-tests, selenium access", run: (*Runner).runTables56},
		{ID: "table7", Artifact: "Table 7", Title: "paired t-tests, file download", run: (*Runner).runTable7},
		{ID: "table8", Artifact: "Tables 8–9", Title: "paired t-tests, speed index", run: (*Runner).runTables89},
		{ID: "table10", Artifact: "Table 10", Title: "paired t-tests, PT categories", run: (*Runner).runTable10},
	}
	for _, name := range censor.Names() {
		name := name
		sc, _ := censor.Lookup(name)
		exps = append(exps, Experiment{
			ID:       "scenario:" + name,
			Artifact: "Censor layer",
			Title:    sc.Description,
			Optional: true,
			run:      func(r *Runner) error { return r.runScenario(name) },
		})
	}
	exps = append(exps, Experiment{
		ID:       "sweep",
		Artifact: "Censor layer",
		Title:    "scenario sweep: {transports} × {scenarios} vs the clean baseline",
		Optional: true,
		run:      (*Runner).runSweep,
	})
	return exps
}

// Run executes one experiment by ID ("all" runs every paper artifact;
// the scenario experiments and the sweep run by explicit ID).
func (r *Runner) Run(id string) error {
	if id == "all" {
		for _, e := range Experiments() {
			if e.Optional {
				continue
			}
			if err := r.Run(e.ID); err != nil {
				return fmt.Errorf("%s: %w", e.ID, err)
			}
		}
		return nil
	}
	for _, e := range Experiments() {
		if e.ID == id {
			fmt.Fprintf(r.out, "\n=== %s — %s (%s) ===\n", e.ID, e.Title, e.Artifact)
			return e.run(r)
		}
	}
	return fmt.Errorf("harness: unknown experiment %q", id)
}

// World returns the shared default world (client in Toronto, wired).
func (r *Runner) World() (*testbed.World, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.world != nil {
		return r.world, nil
	}
	w, err := testbed.New(r.worldOptions(0))
	if err != nil {
		return nil, err
	}
	r.world = w
	return w, nil
}

func (r *Runner) worldOptions(extraSeed int64) testbed.Options {
	return testbed.Options{
		Seed:      r.cfg.Seed + extraSeed,
		TimeScale: r.cfg.TimeScale,
		ByteScale: r.cfg.ByteScale,
		TrancoN:   r.cfg.Sites,
		CBLN:      r.cfg.Sites,
		Scenario:  r.cfg.Scenario,
	}
}

// sites returns the measured site set: the first Sites entries of each
// catalog, Tranco first (order is what aligns paired samples).
type siteRef struct {
	list web.List
	path string
}

func (r *Runner) sites(w *testbed.World) []siteRef {
	var out []siteRef
	for i := 0; i < r.cfg.Sites && i < len(w.Tranco.Sites); i++ {
		out = append(out, siteRef{web.Tranco, w.Tranco.Sites[i].Path})
	}
	for i := 0; i < r.cfg.Sites && i < len(w.CBL.Sites); i++ {
		out = append(out, siteRef{web.CBL, w.CBL.Sites[i].Path})
	}
	return out
}

// forEachMethod runs fn for each configured method over world w, in
// parallel unless Sequential, and returns results keyed by method name.
// The per-method goroutines are simulation goroutines on w's scheduler,
// so they interleave deterministically at virtual-time waits.
func (r *Runner) forEachMethod(w *testbed.World, methods []string, fn func(name string) (any, error)) (map[string]any, error) {
	return r.forEachMethodN(w, methods, r.parallelism(), fn)
}

// forEachMethodN bounds the concurrency explicitly; bulk campaigns use a
// low bound so simultaneous downloads do not contend on the shared relay
// fleet in a way the paper's time-gapped measurements never did.
func (r *Runner) forEachMethodN(w *testbed.World, methods []string, limit int, fn func(name string) (any, error)) (map[string]any, error) {
	if r.cfg.Sequential || limit < 1 {
		limit = 1
	}
	clock := w.Net.Clock()
	out := make(map[string]any, len(methods))
	var mu sync.Mutex
	var firstErr error
	wg := netem.NewWaitGroup(clock)
	sem := netem.NewChan[struct{}](clock, limit)
	for _, name := range methods {
		name := name
		wg.Add(1)
		clock.Go(func() {
			defer wg.Done()
			sem.Send(struct{}{})
			defer sem.Recv()
			v, err := fn(name)
			mu.Lock()
			defer mu.Unlock()
			if err != nil && firstErr == nil {
				firstErr = fmt.Errorf("%s: %w", name, err)
			}
			out[name] = v
		})
	}
	wg.Wait()
	return out, firstErr
}

func (r *Runner) parallelism() int {
	if r.cfg.Sequential {
		return 1
	}
	return 16
}

// seconds converts a virtual duration to float seconds for stats.
func seconds(d time.Duration) float64 { return d.Seconds() }

// orderedMethods keeps report rows in category order: Tor first, then
// the paper's PT ordering.
func orderedMethods(methods []string) []string {
	rank := map[string]int{"tor": 0}
	for i, n := range pt.Names() {
		rank[n] = i + 1
	}
	out := append([]string(nil), methods...)
	sort.Slice(out, func(i, j int) bool { return rank[out[i]] < rank[out[j]] })
	return out
}
