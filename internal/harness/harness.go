// Package harness runs the paper's experiments: it builds testbed
// worlds, drives the measurement campaigns (curl, selenium, speed index,
// bulk files, locations, load scenarios), applies the statistics, and
// prints each table and figure of the evaluation section.
//
// Execution is sharded by world (see internal/sim): an experiment
// decomposes into independent world tasks — one per campaign world,
// per sweep scenario cell, per client location — submitted to a shard
// executor that runs up to Config.Jobs of them on real OS parallelism.
// Each task builds its own virtual clock, so intra-world behaviour is
// bit-identical to sequential execution, and reports are assembled in
// canonical order after join, never in completion order: the same seed
// produces byte-identical reports at any -jobs value.
package harness

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"ptperf/internal/censor"
	"ptperf/internal/netem"
	"ptperf/internal/obs"
	"ptperf/internal/pt"
	"ptperf/internal/sim"
	"ptperf/internal/testbed"
	"ptperf/internal/web"
)

// Config sizes a campaign. The zero value is a CI-friendly small run;
// the paper-scale campaign raises Sites/Repeats/FileAttempts.
type Config struct {
	// Seed drives the whole campaign deterministically.
	Seed int64
	// ByteScale scales sizes, rates and caps together (see testbed).
	ByteScale float64
	// Sites is the number of sites measured per catalog.
	Sites int
	// Repeats is accesses per site (the paper uses 5).
	Repeats int
	// FileAttempts is download attempts per file size (paper: 10–20).
	FileAttempts int
	// FileSizesMB selects which of Figure 5's sizes to run.
	FileSizesMB []int
	// Transports lists methods to evaluate; empty means all 12 + tor.
	Transports []string
	// Scenario names a censor scenario (internal/censor registry) that
	// every experiment's world is built under. Empty leaves the paper
	// experiments on unpoliced networks; the scenario:<name> and sweep
	// experiments select their scenarios themselves.
	Scenario string
	// Jobs bounds how many independent world tasks run concurrently on
	// OS threads (0 = runtime.GOMAXPROCS(0), 1 = fully sequential).
	// Reports are byte-identical for any value; Jobs trades memory for
	// wall-clock time only.
	Jobs int
	// Sequential disables the per-transport parallelism inside one
	// world (simulation goroutines on that world's clock). It does not
	// affect Jobs, which parallelizes across worlds.
	Sequential bool
	// Plot adds ASCII box plots and ECDF curves under the tables,
	// mirroring the paper's figure shapes.
	Plot bool
	// MetricsInterval enables per-cell metric timelines (internal/obs),
	// sampled every MetricsInterval of virtual time on each world's own
	// clock. Zero disables sampling entirely — the sampler's timer
	// interleaves with the campaign, so plain runs stay byte-identical
	// to pre-observability ones. The interval is part of every cache
	// digest.
	MetricsInterval time.Duration
	// Progress, when non-nil, receives a streaming per-cell status line
	// (cells queued/running/done, virtual-time horizon per running
	// cell). It is written from task goroutines in completion order —
	// point it at stderr, never at the report stream.
	Progress io.Writer
}

// DefaultMetricsInterval is the sampling interval campaign drivers use
// when metric export is requested without an explicit interval.
const DefaultMetricsInterval = obs.DefaultInterval

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.ByteScale <= 0 {
		c.ByteScale = 0.125
	}
	if c.Sites <= 0 {
		c.Sites = 12
	}
	if c.Repeats <= 0 {
		c.Repeats = 2
	}
	if c.FileAttempts <= 0 {
		c.FileAttempts = 2
	}
	if len(c.FileSizesMB) == 0 {
		c.FileSizesMB = web.FileSizesMB
	}
	if len(c.Transports) == 0 {
		c.Transports = append([]string{"tor"}, pt.Names()...)
	}
	if c.Jobs <= 0 {
		c.Jobs = runtime.GOMAXPROCS(0)
	}
	return c
}

// Runner executes experiments and writes reports.
type Runner struct {
	cfg     Config
	out     io.Writer
	exec    *sim.Executor
	monitor *sim.Monitor // nil unless Config.Progress is set
	cache   *obs.Cache   // nil unless EnableCache was called

	mu    sync.Mutex
	tasks map[string]*sim.Future[any]

	// omu guards the observability sinks: per-cell timelines and the
	// captured experiment sections the HTML report embeds.
	omu       sync.Mutex
	timelines map[string]*obs.Timeline
	sections  []obs.Section
}

// New creates a Runner writing its reports to out.
func New(cfg Config, out io.Writer) *Runner {
	c := cfg.withDefaults()
	r := &Runner{
		cfg:       c,
		out:       out,
		exec:      sim.NewExecutor(c.Jobs),
		tasks:     make(map[string]*sim.Future[any]),
		timelines: make(map[string]*obs.Timeline),
	}
	if c.Progress != nil {
		r.monitor = sim.NewMonitor(c.Progress)
	}
	return r
}

// Config returns the effective (defaulted) configuration.
func (r *Runner) Config() Config { return r.cfg }

// task submits (once) the keyed world task fn on the shard executor and
// returns its future; later calls with the same key return the same
// future. This is the Runner's memoization: experiments submit every
// world they need up front (prefetch), then join and render in
// canonical order, so reports never depend on completion order. Task
// bodies must follow the sim package's determinism contract — build
// their own world, return values, never write to r.out, and never wait
// on another task's future (a full executor would deadlock).
func (r *Runner) task(key string, fn func() (any, error)) *sim.Future[any] {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.tasks[key]; ok {
		return f
	}
	r.monitor.Register(key)
	f := sim.Submit(r.exec, func() (any, error) {
		r.monitor.Start(key)
		v, err := fn()
		r.monitor.Finish(key, err)
		return v, err
	})
	r.tasks[key] = f
	return f
}

// Experiment describes one runnable artifact reproduction.
type Experiment struct {
	// ID is the CLI name (e.g. "fig2a").
	ID string
	// Artifact names the paper table/figure.
	Artifact string
	// Title is a one-line description.
	Title string
	// Optional experiments (the censor scenarios and the sweep) go
	// beyond the paper's artifacts and are excluded from "all".
	Optional bool
	// prefetch submits the experiment's world tasks without waiting,
	// so "all" overlaps every experiment's simulation work across the
	// executor while still rendering in paper order.
	prefetch func(*Runner)
	run      func(*Runner) error
}

// Experiments lists every reproducible artifact in paper order, then
// the censor-scenario experiments.
func Experiments() []Experiment {
	exps := []Experiment{
		{ID: "table1", Artifact: "Table 1", Title: "measurement campaign overview", run: (*Runner).runTable1},
		{ID: "table2", Artifact: "Table 2", Title: "28 candidate transports at a glance", run: (*Runner).runTable2},
		{ID: "fig2a", Artifact: "Figure 2a", Title: "website access time, curl", prefetch: prefetchCurl, run: (*Runner).runFig2a},
		{ID: "fig2b", Artifact: "Figure 2b", Title: "website access time, selenium", prefetch: prefetchSelenium, run: (*Runner).runFig2b},
		{ID: "fig3", Artifact: "Figure 3a/3b", Title: "fixed-circuit comparison and ECDF", prefetch: func(r *Runner) { r.fig3Task() }, run: (*Runner).runFig3},
		{ID: "fig4", Artifact: "Figure 4", Title: "fixed guard, variable middle/exit", prefetch: func(r *Runner) { r.fig4Task() }, run: (*Runner).runFig4},
		{ID: "fig5", Artifact: "Figure 5", Title: "file download time by size", prefetch: prefetchFiles, run: (*Runner).runFig5},
		{ID: "fig6", Artifact: "Figure 6", Title: "time to first byte ECDF", prefetch: prefetchCurl, run: (*Runner).runFig6},
		{ID: "fig7", Artifact: "Figure 7", Title: "client-location variation", prefetch: prefetchFig7, run: (*Runner).runFig7},
		{ID: "fig8", Artifact: "Figure 8a/8b", Title: "download reliability", prefetch: prefetchFiles, run: (*Runner).runFig8},
		{ID: "fig9", Artifact: "Figure 9", Title: "PT overhead vs vanilla Tor", prefetch: func(r *Runner) { r.fig9Task() }, run: (*Runner).runFig9},
		{ID: "fig10", Artifact: "Figure 10a/10b", Title: "snowflake under load", prefetch: func(r *Runner) { r.fig10Task() }, run: (*Runner).runFig10},
		{ID: "fig11", Artifact: "Figure 11", Title: "speed index", prefetch: prefetchSelenium, run: (*Runner).runFig11},
		{ID: "fig12", Artifact: "Figure 12", Title: "snowflake post-September months", prefetch: func(r *Runner) { r.fig12Task() }, run: (*Runner).runFig12},
		{ID: "medium", Artifact: "Section 4.7", Title: "wired vs wireless access medium", prefetch: prefetchMedium, run: (*Runner).runMedium},
		{ID: "table3", Artifact: "Tables 3–4", Title: "paired t-tests, curl access", prefetch: prefetchCurl, run: (*Runner).runTables34},
		{ID: "table5", Artifact: "Tables 5–6", Title: "paired t-tests, selenium access", prefetch: prefetchSelenium, run: (*Runner).runTables56},
		{ID: "table7", Artifact: "Table 7", Title: "paired t-tests, file download", prefetch: prefetchFiles, run: (*Runner).runTable7},
		{ID: "table8", Artifact: "Tables 8–9", Title: "paired t-tests, speed index", prefetch: prefetchSelenium, run: (*Runner).runTables89},
		{ID: "table10", Artifact: "Table 10", Title: "paired t-tests, PT categories", prefetch: prefetchCurl, run: (*Runner).runTable10},
	}
	for _, name := range censor.Names() {
		name := name
		sc, _ := censor.Lookup(name)
		exps = append(exps, Experiment{
			ID:       "scenario:" + name,
			Artifact: "Censor layer",
			Title:    sc.Description,
			Optional: true,
			prefetch: func(r *Runner) { r.scenarioTask(name) },
			run:      func(r *Runner) error { return r.runScenario(name) },
		})
	}
	exps = append(exps, Experiment{
		ID:       "sweep",
		Artifact: "Censor layer",
		Title:    "scenario sweep: {transports} × {scenarios} vs the clean baseline",
		Optional: true,
		prefetch: prefetchSweep,
		run:      (*Runner).runSweep,
	})
	exps = append(exps, Experiment{
		ID:       "contention",
		Artifact: "Relay scheduler",
		Title:    "guard-contention sweep: {tor,obfs4,webtunnel} × {competitor load} + FIFO baseline",
		Optional: true,
		prefetch: prefetchContention,
		run:      (*Runner).runContention,
	})
	exps = append(exps, Experiment{
		ID:       "churn",
		Artifact: "Failure & recovery",
		Title:    "churn-resilience sweep: {tor,obfs4,webtunnel,snowflake} × {relay churn rate} vs the fault-free baseline",
		Optional: true,
		prefetch: prefetchChurn,
		run:      (*Runner).runChurn,
	})
	return exps
}

func prefetchCurl(r *Runner)     { r.curlTask() }
func prefetchSelenium(r *Runner) { r.seleniumTask() }
func prefetchFiles(r *Runner)    { r.filesTask() }

// Run executes one experiment by ID ("all" runs every paper artifact;
// the scenario experiments and the sweep run by explicit ID).
func (r *Runner) Run(id string) error {
	if id == "all" {
		exps := Experiments()
		// Submit every experiment's world tasks before rendering any:
		// the executor keeps all cores busy while the reports are
		// still written strictly in paper order.
		for _, e := range exps {
			if !e.Optional && e.prefetch != nil {
				e.prefetch(r)
			}
		}
		for _, e := range exps {
			if e.Optional {
				continue
			}
			if err := r.Run(e.ID); err != nil {
				return fmt.Errorf("%s: %w", e.ID, err)
			}
		}
		return nil
	}
	exps := Experiments()
	for _, e := range exps {
		if e.ID == id {
			// Tee the experiment's report into a section buffer so the
			// HTML artifact can embed it. Rendering is single-threaded
			// (tasks never write r.out), so swapping the writer is safe.
			var buf bytes.Buffer
			orig := r.out
			r.out = io.MultiWriter(orig, &buf)
			fmt.Fprintf(r.out, "\n=== %s — %s (%s) ===\n", e.ID, e.Title, e.Artifact)
			err := e.run(r)
			r.out = orig
			r.omu.Lock()
			r.sections = append(r.sections, obs.Section{ID: e.ID, Title: e.Title, Body: buf.String()})
			r.omu.Unlock()
			return err
		}
	}
	ids := make([]string, 0, len(exps))
	for _, e := range exps {
		ids = append(ids, e.ID)
	}
	return fmt.Errorf("harness: unknown experiment %q (have all, %s)", id, strings.Join(ids, ", "))
}

// Seed streams. Every world task derives its Options.Seed from
// sim.DeriveSeed(cfg.Seed, stream): distinct streams are statistically
// independent, equal streams rebuild identical worlds. The campaign
// worlds (curl, selenium, files) share streamCampaign so the three
// paper campaigns measure the same topology, and every sweep cell
// shares streamScenario so the only difference between scenario
// columns is the interference itself.
const (
	streamCampaign   = 0
	streamFig3       = 1000
	streamFig4       = 1100
	streamFig7       = 1200 // path element 2: location index
	streamFig9       = 2000
	streamFig10      = 3000
	streamFig12      = 3100
	streamMedium     = 4000 // path element 2: medium index
	streamScenario   = 5000
	streamContention = 6000 // one seed for every contention cell
	streamChurn      = 7000 // one seed for every churn cell
)

// worldOptions builds one world task's Options on the given seed
// stream. Per-cell indices (fig7's location, medium's access medium)
// go in as further path elements — never added into the stream id,
// which would reintroduce the additive collisions DeriveSeed removes.
func (r *Runner) worldOptions(stream ...int64) testbed.Options {
	return testbed.Options{
		Seed:      sim.DeriveSeed(r.cfg.Seed, stream...),
		ByteScale: r.cfg.ByteScale,
		TrancoN:   r.cfg.Sites,
		CBLN:      r.cfg.Sites,
		Scenario:  r.cfg.Scenario,
	}
}

// sites returns the measured site set: the first Sites entries of each
// catalog, Tranco first (order is what aligns paired samples).
type siteRef struct {
	list web.List
	path string
}

func (r *Runner) sites(w *testbed.World) []siteRef {
	var out []siteRef
	for i := 0; i < r.cfg.Sites && i < len(w.Tranco.Sites); i++ {
		out = append(out, siteRef{web.Tranco, w.Tranco.Sites[i].Path})
	}
	for i := 0; i < r.cfg.Sites && i < len(w.CBL.Sites); i++ {
		out = append(out, siteRef{web.CBL, w.CBL.Sites[i].Path})
	}
	return out
}

// forEachMethod runs fn for each configured method over world w, in
// parallel unless Sequential, and returns results keyed by method name.
// The per-method goroutines are simulation goroutines on w's scheduler,
// so they interleave deterministically at virtual-time waits.
func (r *Runner) forEachMethod(w *testbed.World, methods []string, fn func(name string) (any, error)) (map[string]any, error) {
	return r.forEachMethodN(w, methods, r.parallelism(), fn)
}

// forEachMethodN bounds the concurrency explicitly; bulk campaigns use a
// low bound so simultaneous downloads do not contend on the shared relay
// fleet in a way the paper's time-gapped measurements never did. All
// per-method errors are aggregated (errors.Join); failed methods leave
// no entry in the result map. Error order is deterministic: the
// per-method goroutines finish in virtual-time order.
func (r *Runner) forEachMethodN(w *testbed.World, methods []string, limit int, fn func(name string) (any, error)) (map[string]any, error) {
	if r.cfg.Sequential || limit < 1 {
		limit = 1
	}
	clock := w.Net.Clock()
	out := make(map[string]any, len(methods))
	var mu sync.Mutex
	var errs []error
	wg := netem.NewWaitGroup(clock)
	sem := netem.NewChan[struct{}](clock, limit)
	for _, name := range methods {
		name := name
		wg.Add(1)
		clock.Go(func() {
			defer wg.Done()
			sem.Send(struct{}{})
			defer sem.Recv()
			v, err := fn(name)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				errs = append(errs, fmt.Errorf("%s: %w", name, err))
				return
			}
			out[name] = v
		})
	}
	wg.Wait()
	return out, errors.Join(errs...)
}

func (r *Runner) parallelism() int {
	if r.cfg.Sequential {
		return 1
	}
	return 16
}

// seconds converts a virtual duration to float seconds for stats.
func seconds(d time.Duration) float64 { return d.Seconds() }

// orderedMethods keeps report rows in category order: Tor first, then
// the paper's PT ordering.
func orderedMethods(methods []string) []string {
	rank := map[string]int{"tor": 0}
	for i, n := range pt.Names() {
		rank[n] = i + 1
	}
	out := append([]string(nil), methods...)
	sort.Slice(out, func(i, j int) bool { return rank[out[i]] < rank[out[j]] })
	return out
}
