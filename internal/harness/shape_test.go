package harness

import (
	"io"
	"testing"

	"ptperf/internal/stats"
)

// TestPaperShapeHolds asserts the paper's qualitative findings on a
// small but statistically meaningful campaign. This is the regression
// guard for the reproduction itself: if a transport model drifts, this
// fails before EXPERIMENTS.md does.
func TestPaperShapeHolds(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign-scale test")
	}
	cfg := Config{
		Seed:         3,
		ByteScale:    0.1,
		Sites:        8,
		Repeats:      1,
		FileAttempts: 2,
		FileSizesMB:  []int{20, 50},
		Transports:   []string{"tor", "obfs4", "webtunnel", "dnstt", "camoufler", "marionette", "meek"},
	}
	r := New(cfg, io.Discard)

	curl, err := r.curlData()
	if err != nil {
		t.Fatal(err)
	}
	mean := func(name string) float64 { return stats.Mean(curl[name].Times) }

	// §4.2: marionette is the slowest PT by a wide margin.
	for _, other := range []string{"tor", "obfs4", "webtunnel", "dnstt", "camoufler"} {
		if mean("marionette") < 2*mean(other) {
			t.Errorf("marionette (%.2f) should dwarf %s (%.2f)", mean("marionette"), other, mean(other))
		}
	}
	// §4.2: tunneling PTs pay their carrier protocol: dnstt and
	// camoufler clearly slower than vanilla Tor.
	if mean("dnstt") < 1.2*mean("tor") {
		t.Errorf("dnstt (%.2f) should exceed tor (%.2f)", mean("dnstt"), mean("tor"))
	}
	if mean("camoufler") < 1.2*mean("tor") {
		t.Errorf("camoufler (%.2f) should exceed tor (%.2f)", mean("camoufler"), mean("tor"))
	}
	// §4.2: the fully-encrypted/tunneling leaders sit near vanilla Tor.
	for _, fast := range []string{"obfs4", "webtunnel"} {
		if mean(fast) > 1.5*mean("tor") {
			t.Errorf("%s (%.2f) should be near tor (%.2f)", fast, mean(fast), mean("tor"))
		}
	}

	// §4.6: meek cannot complete bulk downloads; obfs4 can.
	files, err := r.filesData()
	if err != nil {
		t.Fatal(err)
	}
	if c, _, _ := files["obfs4"].counts(); c == 0 {
		t.Error("obfs4 should complete bulk downloads")
	}
	// Across four attempts spanning 20–50 MB, meek's bridge budget
	// (median "3 MB") must cut at least one download.
	if c, p, f := files["meek"].counts(); p+f == 0 {
		t.Errorf("meek bulk downloads should be cut by the bridge budget (complete=%d)", c)
	}
	if c, p, f := files["marionette"].counts(); p+f == 0 {
		t.Errorf("marionette bulk downloads should time out (complete=%d)", c)
	}

	// §4.4: marionette/camoufler/meek have the worst TTFB tail.
	ttfbTor := stats.Quantile(curl["tor"].TTFBs, 0.8)
	ttfbCam := stats.Quantile(curl["camoufler"].TTFBs, 0.8)
	if ttfbCam <= ttfbTor {
		t.Errorf("camoufler p80 TTFB (%.2f) should exceed tor (%.2f)", ttfbCam, ttfbTor)
	}
}
