package harness

import (
	"io"
	"testing"

	"ptperf/internal/stats"
)

// TestPaperShapeHolds asserts the paper's qualitative findings on a
// small but statistically meaningful campaign. This is the regression
// guard for the reproduction itself: if a transport model drifts, this
// fails before EXPERIMENTS.md does.
//
// Every expectation is derived from the campaign's own report — ordinal
// relations on medians (robust to a single timeout draw, unlike the
// means this test used to compare) and counts taken from the recorded
// attempts — so a marginal seed-stream shift moves both sides of each
// comparison together instead of breaking a hard-coded constant.
func TestPaperShapeHolds(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign-scale test")
	}
	cfg := Config{
		Seed:         3,
		ByteScale:    0.1,
		Sites:        8,
		Repeats:      1,
		FileAttempts: 2,
		FileSizesMB:  []int{20, 50},
		Transports:   []string{"tor", "obfs4", "webtunnel", "dnstt", "camoufler", "marionette", "meek"},
	}
	r := New(cfg, io.Discard)

	curl, err := r.curlData()
	if err != nil {
		t.Fatal(err)
	}
	median := func(name string) float64 {
		d, ok := curl[name]
		if !ok || len(d.Times) == 0 {
			t.Fatalf("no curl data for %s", name)
		}
		return stats.Median(d.Times)
	}

	// §4.2: marionette is the slowest transport — strictly slower than
	// everything else measured, and dwarfing the fast group.
	for _, other := range []string{"tor", "obfs4", "webtunnel", "dnstt", "camoufler", "meek"} {
		if median("marionette") <= median(other) {
			t.Errorf("marionette (%.2f) should be slower than %s (%.2f)", median("marionette"), other, median(other))
		}
	}
	for _, fast := range []string{"tor", "obfs4", "webtunnel"} {
		if median("marionette") < 2*median(fast) {
			t.Errorf("marionette (%.2f) should dwarf %s (%.2f)", median("marionette"), fast, median(fast))
		}
	}
	// §4.2: tunneling PTs pay their carrier protocol: dnstt and
	// camoufler slower than vanilla Tor.
	for _, tunneled := range []string{"dnstt", "camoufler"} {
		if median(tunneled) <= median("tor") {
			t.Errorf("%s (%.2f) should exceed tor (%.2f)", tunneled, median(tunneled), median("tor"))
		}
	}
	// §4.2: the fully-encrypted/tunneling leaders sit near vanilla Tor.
	for _, fast := range []string{"obfs4", "webtunnel"} {
		if median(fast) > 1.5*median("tor") {
			t.Errorf("%s (%.2f) should be near tor (%.2f)", fast, median(fast), median("tor"))
		}
	}

	// §4.6: bulk-download reliability splits, from the recorded
	// attempts themselves.
	files, err := r.filesData()
	if err != nil {
		t.Fatal(err)
	}
	attempts := func(name string) (complete, unfinished int) {
		fd, ok := files[name]
		if !ok || len(fd.Attempts) == 0 {
			t.Fatalf("no file data for %s", name)
		}
		c, p, f := fd.counts()
		if c+p+f != len(fd.Attempts) {
			t.Fatalf("%s: counts %d+%d+%d disagree with %d attempts", name, c, p, f, len(fd.Attempts))
		}
		return c, p + f
	}
	// obfs4 completes bulk downloads.
	if c, _ := attempts("obfs4"); c == 0 {
		t.Error("obfs4 should complete bulk downloads")
	}
	// meek's bridge budget (median "3 MB") cuts downloads at these
	// sizes; marionette's automaton pacing times them out.
	if c, cut := attempts("meek"); cut == 0 {
		t.Errorf("meek bulk downloads should be cut by the bridge budget (complete=%d)", c)
	}
	if c, cut := attempts("marionette"); cut == 0 {
		t.Errorf("marionette bulk downloads should time out (complete=%d)", c)
	}

	// §4.4: marionette/camoufler/meek have the worst TTFB tail.
	ttfbTor := stats.Quantile(curl["tor"].TTFBs, 0.8)
	ttfbCam := stats.Quantile(curl["camoufler"].TTFBs, 0.8)
	if ttfbCam <= ttfbTor {
		t.Errorf("camoufler p80 TTFB (%.2f) should exceed tor (%.2f)", ttfbCam, ttfbTor)
	}
}
