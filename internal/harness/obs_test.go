package harness

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"time"

	"ptperf/internal/obs"
)

// obsConfig is the sweep config with metric sampling enabled.
func obsConfig(seed int64) Config {
	cfg := sweepConfig(seed)
	cfg.MetricsInterval = time.Second
	return cfg
}

// runWithMetrics runs the experiment and returns (report, prometheus).
func runWithMetrics(t *testing.T, cfg Config, exps ...string) (string, string, *Runner) {
	t.Helper()
	var buf bytes.Buffer
	r := New(cfg, &buf)
	for _, exp := range exps {
		if err := r.Run(exp); err != nil {
			t.Fatalf("%s: %v", exp, err)
		}
	}
	var prom bytes.Buffer
	r.WritePrometheus(&prom)
	return buf.String(), prom.String(), r
}

// TestMetricsDeterminism pins the tentpole's determinism contract: with
// sampling enabled, both the campaign report and the Prometheus dump
// are byte-identical across same-seed runs.
func TestMetricsDeterminism(t *testing.T) {
	repA, promA, _ := runWithMetrics(t, obsConfig(11), "fig4")
	repB, promB, _ := runWithMetrics(t, obsConfig(11), "fig4")
	if repA != repB {
		t.Fatalf("same seed produced different reports:\n--- first ---\n%s\n--- second ---\n%s", repA, repB)
	}
	if promA != promB {
		t.Fatalf("same seed produced different Prometheus dumps:\n--- first ---\n%s\n--- second ---\n%s", promA, promB)
	}
	if !strings.Contains(promA, `cell="fig4"`) {
		t.Fatalf("Prometheus dump lacks the fig4 cell:\n%s", promA)
	}
}

// TestMetricsJobsEquivalence extends the -jobs oracle to the metric
// layer: each recorder samples on its own world's clock, so running the
// fig7 cells one at a time or all at once must produce byte-identical
// timelines.
func TestMetricsJobsEquivalence(t *testing.T) {
	run := func(jobs int) (string, string) {
		cfg := obsConfig(11)
		cfg.Jobs = jobs
		rep, prom, _ := runWithMetrics(t, cfg, "fig7")
		return rep, prom
	}
	repSeq, promSeq := run(1)
	repPar, promPar := run(4)
	if repSeq != repPar {
		t.Fatalf("reports differ between jobs=1 and jobs=4:\n--- jobs=1 ---\n%s\n--- jobs=4 ---\n%s", repSeq, repPar)
	}
	if promSeq != promPar {
		t.Fatalf("Prometheus dumps differ between jobs=1 and jobs=4:\n--- jobs=1 ---\n%s\n--- jobs=4 ---\n%s", promSeq, promPar)
	}
}

// TestTimelinesRecorded checks the runner collects one timeline per
// world cell, in canonical order, with conserving totals.
func TestTimelinesRecorded(t *testing.T) {
	_, _, r := runWithMetrics(t, obsConfig(7), "fig7")
	tls := r.Timelines()
	if len(tls) != 3 {
		t.Fatalf("fig7 recorded %d timelines, want 3 (one per location)", len(tls))
	}
	for i := 1; i < len(tls); i++ {
		if tls[i-1].Cell >= tls[i].Cell {
			t.Fatalf("timelines out of canonical order: %q before %q", tls[i-1].Cell, tls[i].Cell)
		}
	}
	for _, ct := range tls {
		if ct.Timeline.Regressions != 0 {
			t.Errorf("%s: %d clamped regressions", ct.Cell, ct.Timeline.Regressions)
		}
		if len(ct.Timeline.Samples) == 0 {
			t.Errorf("%s: empty timeline", ct.Cell)
		}
	}
}

// cacheRun is one campaign against a shared cache directory.
func cacheRun(t *testing.T, cfg Config, dir string) (string, string, obs.CacheStats) {
	t.Helper()
	var buf bytes.Buffer
	r := New(cfg, &buf)
	if err := r.EnableCache(dir); err != nil {
		t.Fatalf("enable cache: %v", err)
	}
	for _, exp := range []string{"fig4", "fig7"} {
		if err := r.Run(exp); err != nil {
			t.Fatalf("%s: %v", exp, err)
		}
	}
	var prom bytes.Buffer
	r.WritePrometheus(&prom)
	return buf.String(), prom.String(), r.CacheStats()
}

// TestCacheSoundness is the incremental-execution acceptance test: a
// second identical run answers every cell from the cache and renders
// byte-identical artifacts, and mutating one knob invalidates exactly
// the cells whose measurement reads it (fig4 reads Repeats via its
// iteration count; fig7 does not).
func TestCacheSoundness(t *testing.T) {
	dir := t.TempDir()
	cfg := obsConfig(11)

	// fig4 is one cell, fig7 is three (one per client city).
	rep1, prom1, st1 := cacheRun(t, cfg, dir)
	if st1.Hits != 0 || st1.Misses != 4 || st1.Stores != 4 {
		t.Fatalf("cold run stats = %+v, want 0 hits / 4 misses / 4 stores", st1)
	}

	rep2, prom2, st2 := cacheRun(t, cfg, dir)
	if st2.Hits != 4 || st2.Misses != 0 || st2.Stores != 0 {
		t.Fatalf("warm run stats = %+v, want 4 hits / 0 misses / 0 stores", st2)
	}
	if rep1 != rep2 {
		t.Fatalf("cache hit rendered a different report:\n--- computed ---\n%s\n--- cached ---\n%s", rep1, rep2)
	}
	if prom1 != prom2 {
		t.Fatalf("cache hit rendered a different Prometheus dump:\n--- computed ---\n%s\n--- cached ---\n%s", prom1, prom2)
	}

	// Repeats feeds fig4's iteration count but none of fig7's inputs:
	// exactly one cell recomputes.
	mutated := cfg
	mutated.Repeats++
	_, _, st3 := cacheRun(t, mutated, dir)
	if st3.Hits != 3 || st3.Misses != 1 || st3.Stores != 1 {
		t.Fatalf("mutated run stats = %+v, want 3 hits / 1 miss / 1 store", st3)
	}
}

// TestCacheDisabledByDefault guards the default path: without
// EnableCache nothing touches the filesystem and stats stay zero.
func TestCacheDisabledByDefault(t *testing.T) {
	var buf bytes.Buffer
	r := New(obsConfig(3), &buf)
	if err := r.Run("fig4"); err != nil {
		t.Fatal(err)
	}
	if st := r.CacheStats(); st != (obs.CacheStats{}) {
		t.Fatalf("cache stats %+v without a cache", st)
	}
}

// TestProgressMonitor checks the live progress stream: every cell
// appears, transitions print lines, and cached cells are flagged.
func TestProgressMonitor(t *testing.T) {
	dir := t.TempDir()
	cfg := obsConfig(5)

	var progress bytes.Buffer
	cfg.Progress = &progress
	var buf bytes.Buffer
	r := New(cfg, &buf)
	if err := r.EnableCache(dir); err != nil {
		t.Fatal(err)
	}
	if err := r.Run("fig4"); err != nil {
		t.Fatal(err)
	}
	out := progress.String()
	if !strings.Contains(out, "[cells] 0/1 done, 1 running: fig4") {
		t.Errorf("progress stream lacks the running line:\n%s", out)
	}
	if !strings.Contains(out, "[cells] 1/1 done") {
		t.Errorf("progress stream lacks the completion line:\n%s", out)
	}

	// Warm rerun: the cell must be flagged as cached.
	progress.Reset()
	r2 := New(cfg, &buf)
	if err := r2.EnableCache(dir); err != nil {
		t.Fatal(err)
	}
	if err := r2.Run("fig4"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(progress.String(), "(1 cached)") {
		t.Errorf("cached rerun not flagged:\n%s", progress.String())
	}
}

// TestMonitorHorizonSafety exercises the cross-thread horizon reads
// under -race: parallel cells while the monitor formats status lines.
func TestMonitorHorizonSafety(t *testing.T) {
	cfg := obsConfig(9)
	cfg.Jobs = 4
	cfg.Progress = io.Discard
	var buf bytes.Buffer
	r := New(cfg, &buf)
	if err := r.Run("fig7"); err != nil {
		t.Fatal(err)
	}
}
