package harness

import (
	"bytes"
	"testing"
)

// campaignOutput runs a small but adversarial campaign — parallel curl
// accesses plus bulk downloads over transports with churn (snowflake),
// loss (camoufler) and budget cuts (meek, dnstt), plus the three-world
// location experiment — and returns the rendered reports. jobs bounds
// the shard executor (0 = all cores).
func campaignOutput(t *testing.T, seed int64, jobs int) string {
	t.Helper()
	cfg := Config{
		Seed:         seed,
		ByteScale:    0.06,
		Sites:        2,
		Repeats:      1,
		FileAttempts: 1,
		FileSizesMB:  []int{5},
		Transports:   []string{"tor", "obfs4", "meek", "dnstt", "snowflake", "camoufler"},
		Jobs:         jobs,
	}
	var buf bytes.Buffer
	r := New(cfg, &buf)
	for _, id := range []string{"table1", "fig2a", "fig5", "fig7"} {
		if err := r.Run(id); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
	}
	return buf.String()
}

// TestSameSeedProducesIdenticalReports is the regression oracle the
// discrete-event clock enables: the scheduler runs exactly one
// simulation goroutine at a time and orders every wake-up
// deterministically, so a campaign is a pure function of its seed. Any
// nondeterminism (map-ordered teardown, stray wall-clock reads, an
// unregistered goroutine racing the scheduler) breaks this test.
func TestSameSeedProducesIdenticalReports(t *testing.T) {
	a := campaignOutput(t, 1, 0)
	b := campaignOutput(t, 1, 0)
	if a != b {
		t.Fatalf("same seed produced different reports:\n--- first ---\n%s\n--- second ---\n%s", a, b)
	}
}

// TestDifferentSeedsDiffer guards the other direction: the seed must
// actually reach the simulation's random draws.
func TestDifferentSeedsDiffer(t *testing.T) {
	if campaignOutput(t, 1, 0) == campaignOutput(t, 2, 0) {
		t.Fatal("different seeds produced byte-identical reports")
	}
}

// TestJobsOneEqualsJobsN is the shard executor's determinism contract:
// every world task owns its clock and its seed stream, and reports are
// assembled in canonical order after join, so the parallelism level
// must be invisible in the bytes. -jobs 1 (fully sequential) and
// -jobs 4 (four worlds in flight) must render identical reports.
func TestJobsOneEqualsJobsN(t *testing.T) {
	seq := campaignOutput(t, 1, 1)
	par := campaignOutput(t, 1, 4)
	if seq != par {
		t.Fatalf("jobs=1 and jobs=4 produced different reports:\n--- jobs=1 ---\n%s\n--- jobs=4 ---\n%s", seq, par)
	}
}
