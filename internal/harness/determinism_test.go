package harness

import (
	"bytes"
	"testing"
)

// campaignOutput runs a small but adversarial campaign — parallel curl
// accesses plus bulk downloads over transports with churn (snowflake),
// loss (camoufler) and budget cuts (meek, dnstt) — and returns the
// rendered reports.
func campaignOutput(t *testing.T, seed int64) string {
	t.Helper()
	cfg := Config{
		Seed:         seed,
		ByteScale:    0.06,
		Sites:        2,
		Repeats:      1,
		FileAttempts: 1,
		FileSizesMB:  []int{5},
		Transports:   []string{"tor", "obfs4", "meek", "dnstt", "snowflake", "camoufler"},
	}
	var buf bytes.Buffer
	r := New(cfg, &buf)
	for _, id := range []string{"table1", "fig2a", "fig5"} {
		if err := r.Run(id); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
	}
	return buf.String()
}

// TestSameSeedProducesIdenticalReports is the regression oracle the
// discrete-event clock enables: the scheduler runs exactly one
// simulation goroutine at a time and orders every wake-up
// deterministically, so a campaign is a pure function of its seed. Any
// nondeterminism (map-ordered teardown, stray wall-clock reads, an
// unregistered goroutine racing the scheduler) breaks this test.
func TestSameSeedProducesIdenticalReports(t *testing.T) {
	a := campaignOutput(t, 1)
	b := campaignOutput(t, 1)
	if a != b {
		t.Fatalf("same seed produced different reports:\n--- first ---\n%s\n--- second ---\n%s", a, b)
	}
}

// TestDifferentSeedsDiffer guards the other direction: the seed must
// actually reach the simulation's random draws.
func TestDifferentSeedsDiffer(t *testing.T) {
	if campaignOutput(t, 1) == campaignOutput(t, 2) {
		t.Fatal("different seeds produced byte-identical reports")
	}
}
