package harness

import (
	"bytes"
	"io"
	"testing"

	"ptperf/internal/censor"
	"ptperf/internal/stats"
	"ptperf/internal/testbed"
)

// sweepConfig is a compact but adversarial sweep: a transport with a
// pinned bridge (obfs4), one with volunteer churn (snowflake), and
// vanilla tor with its guard failover.
func sweepConfig(seed int64) Config {
	return Config{
		Seed:        seed,
		ByteScale:   0.06,
		Sites:       3,
		Repeats:     1,
		FileSizesMB: []int{5},
		Transports:  []string{"tor", "obfs4", "snowflake"},
	}
}

// TestSweepDeterminism extends the same-seed oracle to the censor
// layer: scenario windows, throttles, loss draws, cutovers and load
// phases are all scheduled on the virtual clock, so a sweep is a pure
// function of its seed.
func TestSweepDeterminism(t *testing.T) {
	run := func() string {
		var buf bytes.Buffer
		r := New(sweepConfig(11), &buf)
		if err := r.Run("sweep"); err != nil {
			t.Fatalf("sweep: %v", err)
		}
		return buf.String()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed produced different sweep reports:\n--- first ---\n%s\n--- second ---\n%s", a, b)
	}
}

// TestSweepJobsEquivalence pins the acceptance contract of the shard
// executor on the sweep path: every scenario cell is an independent
// world task, so running the matrix one cell at a time (-jobs 1) and
// four cells at a time (-jobs 4) must produce byte-identical reports.
func TestSweepJobsEquivalence(t *testing.T) {
	run := func(jobs int) string {
		cfg := sweepConfig(11)
		cfg.Jobs = jobs
		var buf bytes.Buffer
		r := New(cfg, &buf)
		if err := r.Run("sweep"); err != nil {
			t.Fatalf("sweep (jobs=%d): %v", jobs, err)
		}
		return buf.String()
	}
	if seq, par := run(1), run(4); seq != par {
		t.Fatalf("sweep reports differ between jobs=1 and jobs=4:\n--- jobs=1 ---\n%s\n--- jobs=4 ---\n%s", seq, par)
	}
}

// TestScenariosShapeOutcomes asserts the acceptance behaviors: the
// throttle surge measurably degrades access time against the clean
// baseline, and bridge blocking produces failure accounting (blocked
// dials, failed accesses) while fronted transports keep working.
func TestScenariosShapeOutcomes(t *testing.T) {
	cfg := Config{
		Seed:        5,
		ByteScale:   0.06,
		Sites:       6,
		Repeats:     1,
		FileSizesMB: []int{5},
		Transports:  []string{"tor", "obfs4", "meek"},
	}
	r := New(cfg, io.Discard)

	measure := func(name string) (map[string]*scenarioResult, censor.Stats, error) {
		w, err := testbed.New(r.scenarioOptions(name))
		if err != nil {
			return nil, censor.Stats{}, err
		}
		return r.scenarioAccess(w)
	}

	clean, cleanStats, err := measure("clean")
	if err != nil {
		t.Fatalf("clean: %v", err)
	}
	if cleanStats.BlockedDials != 0 || cleanStats.ThrottledSegments != 0 {
		t.Fatalf("clean scenario applied interference: %+v", cleanStats)
	}
	for m, d := range clean {
		if d.Failed != 0 {
			t.Errorf("clean: %s had %d failed accesses", m, d.Failed)
		}
	}

	throttled, thStats, err := measure("throttle-surge")
	if err != nil {
		t.Fatalf("throttle-surge: %v", err)
	}
	if thStats.ThrottledSegments == 0 {
		t.Error("throttle-surge ran but throttled no segments")
	}
	degraded := 0
	for _, m := range cfg.Transports {
		if stats.Mean(throttled[m].Times) > stats.Mean(clean[m].Times) {
			degraded++
		}
	}
	if degraded == 0 {
		t.Error("throttle-surge degraded no transport vs clean")
	}

	blocked, blStats, err := measure("bridge-block")
	if err != nil {
		t.Fatalf("bridge-block: %v", err)
	}
	if blStats.BlockedDials == 0 {
		t.Error("bridge-block refused no dials")
	}
	if blocked["obfs4"].Failed == 0 {
		t.Error("bridge-block: obfs4's pinned bridge should fail once blocked")
	}
	// meek's CDN front stays reachable: domain fronting survives the
	// block while direct bridges die.
	if blocked["meek"].Failed != 0 {
		t.Errorf("bridge-block: meek should survive via its front, had %d failures", blocked["meek"].Failed)
	}
}
