// Package snowflake implements the WebRTC-volunteer-proxy transport. A
// client rendezvouses once through a domain-fronted broker, which hands
// it one of the currently alive volunteer proxies; tunnel traffic then
// flows client → volunteer proxy → bridge. The properties the paper
// measures are kept:
//
//   - rendezvous costs broker round trips plus matching delay,
//   - volunteer proxies are ephemeral: each has a random lifetime, and
//     when it disappears mid-transfer the tunnel breaks — the dominant
//     cause of snowflake's partial bulk downloads (§4.6),
//   - the proxy pool has finite capacity; the Iran-unrest load scenario
//     (§5.3) shrinks per-client capacity and proxy lifetimes, degrading
//     performance exactly as Figures 10 and 12 show.
//
// snowflake is an integration-set-2 transport.
package snowflake

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"

	"ptperf/internal/geo"
	"ptperf/internal/netem"
	"ptperf/internal/pt"
)

// Defaults for the pool model.
const (
	// DefaultProxies is the pool size.
	DefaultProxies = 6
	// DefaultProxyLifetime is the mean exponential proxy lifetime.
	DefaultProxyLifetime = 90 * time.Second
	// DefaultMatchDelay is the broker's matching time.
	DefaultMatchDelay = 600 * time.Millisecond
	// DefaultProxyUplink is a volunteer's home-connection uplink in
	// bytes per virtual second.
	DefaultProxyUplink = 3 << 20
)

// Config parameterizes the deployment.
type Config struct {
	// Proxies overrides DefaultProxies.
	Proxies int
	// ProxyLifetime overrides DefaultProxyLifetime (mean; exponential).
	// Negative disables churn.
	ProxyLifetime time.Duration
	// MatchDelay overrides DefaultMatchDelay.
	MatchDelay time.Duration
	// ProxyUplink overrides DefaultProxyUplink.
	ProxyUplink float64
	// ProxyUtilization is background load on volunteers ([0,1)); the
	// post-September scenario raises it.
	ProxyUtilization float64
	// Seed drives lifetimes and assignment.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Proxies <= 0 {
		c.Proxies = DefaultProxies
	}
	if c.ProxyLifetime == 0 {
		c.ProxyLifetime = DefaultProxyLifetime
	}
	if c.MatchDelay <= 0 {
		c.MatchDelay = DefaultMatchDelay
	}
	if c.ProxyUplink <= 0 {
		c.ProxyUplink = DefaultProxyUplink
	}
	return c
}

// Deployment is the running snowflake infrastructure.
type Deployment struct {
	cfg        Config
	net        *netem.Network
	brokerLn   *netem.Listener
	bridgeAddr string

	mu      sync.Mutex
	rng     *rand.Rand
	proxies []*proxy
	nextID  int
	closed  bool
}

// proxy is one volunteer.
type proxy struct {
	dep   *Deployment
	host  *netem.Host
	ln    *netem.Listener
	addr  string
	mu    sync.Mutex
	conns []interface{ Abort() }
	dead  bool
}

// Deploy launches the broker on brokerHost:brokerPort and the initial
// proxy pool; tunnelled flows are spliced to bridgeAddr... the target
// carried by each stream prologue (the guard the client Tor picked).
func Deploy(brokerHost *netem.Host, brokerPort int, cfg Config) (*Deployment, error) {
	cfg = cfg.withDefaults()
	ln, err := brokerHost.Listen(brokerPort)
	if err != nil {
		return nil, err
	}
	d := &Deployment{
		cfg:      cfg,
		net:      brokerHost.Network(),
		brokerLn: ln,
		rng:      rand.New(rand.NewSource(cfg.Seed + 5)),
	}
	for i := 0; i < cfg.Proxies; i++ {
		if err := d.spawnProxy(); err != nil {
			d.Close()
			return nil, err
		}
	}
	d.net.Go(d.serveBroker)
	return d, nil
}

// BrokerAddr is the rendezvous address clients contact (domain-fronted
// in reality).
func (d *Deployment) BrokerAddr() string { return d.brokerLn.Addr().String() }

// Close stops the deployment.
func (d *Deployment) Close() error {
	d.mu.Lock()
	d.closed = true
	proxies := append([]*proxy(nil), d.proxies...)
	d.mu.Unlock()
	for _, p := range proxies {
		p.kill()
	}
	return d.brokerLn.Close()
}

// SetLoad adjusts the pool to a new load scenario at runtime: higher
// utilization and shorter lifetimes for every current and future proxy.
func (d *Deployment) SetLoad(utilization float64, lifetime time.Duration) {
	d.mu.Lock()
	d.cfg.ProxyUtilization = utilization
	d.cfg.ProxyLifetime = lifetime
	proxies := append([]*proxy(nil), d.proxies...)
	d.mu.Unlock()
	for _, p := range proxies {
		p.host.Egress().Reload(d.cfg.ProxyUplink, utilization)
		p.host.Ingress().Reload(d.cfg.ProxyUplink, utilization)
	}
}

// spawnProxy brings one volunteer online and schedules its death.
func (d *Deployment) spawnProxy() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return errors.New("snowflake: deployment closed")
	}
	d.nextID++
	id := d.nextID
	cfg := d.cfg
	lifetime := time.Duration(-1)
	if cfg.ProxyLifetime > 0 {
		lifetime = time.Duration(d.rng.ExpFloat64() * float64(cfg.ProxyLifetime))
		if lifetime < 2*time.Second {
			lifetime = 2 * time.Second
		}
	}
	d.mu.Unlock()

	host, err := d.net.AddHost(netem.HostConfig{
		Name:        fmt.Sprintf("snowflake-proxy-%d", id),
		Location:    proxyLocation(id),
		UplinkBps:   cfg.ProxyUplink,
		DownlinkBps: cfg.ProxyUplink,
		Utilization: cfg.ProxyUtilization,
	})
	if err != nil {
		return err
	}
	ln, err := host.Listen(7000)
	if err != nil {
		return err
	}
	p := &proxy{dep: d, host: host, ln: ln, addr: ln.Addr().String()}
	d.mu.Lock()
	d.proxies = append(d.proxies, p)
	d.mu.Unlock()
	d.net.Go(p.serve)
	if lifetime > 0 {
		d.net.Go(func() {
			d.net.Clock().Sleep(lifetime)
			p.kill()
			// A replacement volunteer appears after a gap.
			d.net.Clock().Sleep(time.Duration(2+id%3) * time.Second)
			d.spawnProxy()
		})
	}
	return nil
}

// proxyLocation scatters volunteers over the model's cities.
func proxyLocation(id int) geo.Location {
	return geo.All[id%len(geo.All)]
}

// serve splices each accepted flow to the bridge address it announces.
func (p *proxy) serve() {
	for {
		c, err := p.ln.Accept()
		if err != nil {
			return
		}
		conn := c
		p.host.Network().Go(func() {
			c := conn
			bridgeAddr, err := readHello(c)
			if err != nil {
				c.Close()
				return
			}
			down, err := p.host.Dial(bridgeAddr)
			if err != nil {
				c.Close()
				return
			}
			p.track(c, down)
			pt.Splice(p.host.Network().Clock(), c, down)
		})
	}
}

func (p *proxy) track(conns ...net.Conn) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, c := range conns {
		if a, ok := c.(interface{ Abort() }); ok {
			p.conns = append(p.conns, a)
		}
	}
}

// kill takes the volunteer offline, aborting all flows mid-transfer.
func (p *proxy) kill() {
	p.mu.Lock()
	if p.dead {
		p.mu.Unlock()
		return
	}
	p.dead = true
	conns := p.conns
	p.conns = nil
	p.mu.Unlock()

	d := p.dep
	d.mu.Lock()
	for i, q := range d.proxies {
		if q == p {
			d.proxies = append(d.proxies[:i], d.proxies[i+1:]...)
			break
		}
	}
	d.mu.Unlock()

	p.ln.Close()
	for _, c := range conns {
		c.Abort()
	}
}

// serveBroker answers rendezvous requests with a proxy address.
func (d *Deployment) serveBroker() {
	for {
		c, err := d.brokerLn.Accept()
		if err != nil {
			return
		}
		conn := c
		d.net.Go(func() {
			c := conn
			defer c.Close()
			var req [1]byte
			if _, err := io.ReadFull(c, req[:]); err != nil {
				return
			}
			// Matching takes time; under load the queue is longer.
			d.net.Clock().Sleep(d.cfg.MatchDelay)
			d.mu.Lock()
			var addr string
			if len(d.proxies) > 0 {
				addr = d.proxies[d.rng.Intn(len(d.proxies))].addr
			}
			d.mu.Unlock()
			writeString(c, addr)
		})
	}
}

func writeString(w io.Writer, s string) error {
	buf := make([]byte, 2+len(s))
	binary.BigEndian.PutUint16(buf, uint16(len(s)))
	copy(buf[2:], s)
	_, err := w.Write(buf)
	return err
}

func readString(r io.Reader) (string, error) {
	var head [2]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		return "", err
	}
	buf := make([]byte, binary.BigEndian.Uint16(head[:]))
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

// hello carries the bridge address from client to proxy.
func writeHello(w io.Writer, bridgeAddr string) error { return writeString(w, bridgeAddr) }
func readHello(r io.Reader) (string, error)           { return readString(r) }

// Dialer is the snowflake client.
type Dialer struct {
	host       *netem.Host
	brokerAddr string
	bridgeAddr string
}

// NewDialer returns a snowflake client. bridgeAddr names the snowflake
// bridge (the PT server that splices to the guard in the prologue).
func NewDialer(host *netem.Host, brokerAddr, bridgeAddr string) *Dialer {
	return &Dialer{host: host, brokerAddr: brokerAddr, bridgeAddr: bridgeAddr}
}

// Dial implements pt.Dialer: rendezvous, connect to the volunteer, and
// announce the bridge.
func (d *Dialer) Dial(target string) (net.Conn, error) {
	b, err := d.host.Dial(d.brokerAddr)
	if err != nil {
		return nil, fmt.Errorf("snowflake: broker unreachable: %w", err)
	}
	if _, err := b.Write([]byte{0x01}); err != nil {
		b.Close()
		return nil, err
	}
	proxyAddr, err := readString(b)
	b.Close()
	if err != nil {
		return nil, fmt.Errorf("snowflake: rendezvous failed: %w", err)
	}
	if proxyAddr == "" {
		return nil, errors.New("snowflake: no volunteer proxies available")
	}
	conn, err := d.host.Dial(proxyAddr)
	if err != nil {
		return nil, fmt.Errorf("snowflake: volunteer gone: %w", err)
	}
	if err := writeHello(conn, d.bridgeAddr); err != nil {
		conn.Close()
		return nil, err
	}
	if err := pt.WriteTarget(conn, target); err != nil {
		conn.Close()
		return nil, err
	}
	return conn, nil
}

// StartBridge runs the snowflake bridge (PT server) on host:port.
func StartBridge(host *netem.Host, port int, handle pt.StreamHandler) (pt.Server, error) {
	return pt.ListenAndServe(host, port, nil, handle)
}
