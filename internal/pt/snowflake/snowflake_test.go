package snowflake

import (
	"bytes"
	"io"
	"net"
	"testing"
	"testing/quick"
	"time"

	"ptperf/internal/geo"
	"ptperf/internal/netem"
)

func TestStringFrameRoundTrip(t *testing.T) {
	f := func(s string) bool {
		if len(s) > 60000 {
			return true
		}
		var buf bytes.Buffer
		if err := writeString(&buf, s); err != nil {
			return false
		}
		got, err := readString(&buf)
		return err == nil && got == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Proxies != DefaultProxies || c.ProxyLifetime != DefaultProxyLifetime ||
		c.MatchDelay != DefaultMatchDelay || c.ProxyUplink != DefaultProxyUplink {
		t.Fatalf("defaults: %+v", c)
	}
	if c2 := (Config{ProxyLifetime: -1}).withDefaults(); c2.ProxyLifetime != -1 {
		t.Fatal("negative lifetime (no churn) must survive")
	}
}

func testNet(t *testing.T) (*netem.Network, *netem.Host, *netem.Host) {
	t.Helper()
	n := netem.New(netem.WithTimeScale(0.002), netem.WithSeed(31))
	client := n.MustAddHost(netem.HostConfig{Name: "client", Location: geo.Toronto})
	infra := n.MustAddHost(netem.HostConfig{Name: "infra", Location: geo.Frankfurt})
	return n, client, infra
}

func TestBrokerAssignsLiveProxy(t *testing.T) {
	n, client, infra := testNet(t)
	dep, err := Deploy(infra, 443, Config{Seed: 1, ProxyLifetime: -1, Proxies: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()

	bridgeHost := infra.Network().MustAddHost(netem.HostConfig{Name: "bridge", Location: geo.Frankfurt})
	bridge, err := StartBridge(bridgeHost, 7001, func(target string, conn net.Conn) {
		defer conn.Close()
		io.Copy(conn, conn)
	})
	if err != nil {
		t.Fatal(err)
	}
	defer bridge.Close()

	d := NewDialer(client, dep.BrokerAddr(), bridge.Addr())
	conn, err := d.Dial("guard-x:9001")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	msg := []byte("through a volunteer")
	n.Go(func() { conn.Write(msg) })
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(conn, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("round trip corrupted")
	}
}

func TestPoolSurvivesChurn(t *testing.T) {
	_, _, infra := testNet(t)
	dep, err := Deploy(infra, 443, Config{Seed: 2, Proxies: 3, ProxyLifetime: 3 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()
	// After several lifetimes replacements must have spawned, and the
	// pool must repeatedly be non-empty (transient empty windows are
	// legitimate when deaths cluster).
	clock := infra.Network().Clock()
	sawProxies := 0
	for i := 0; i < 20; i++ {
		clock.Sleep(time.Second)
		dep.mu.Lock()
		if len(dep.proxies) > 0 {
			sawProxies++
		}
		dep.mu.Unlock()
	}
	dep.mu.Lock()
	spawned := dep.nextID
	dep.mu.Unlock()
	if spawned <= 3 {
		t.Fatalf("no replacements spawned (nextID=%d)", spawned)
	}
	if sawProxies == 0 {
		t.Fatal("pool never recovered; respawn is broken")
	}
}

func TestSetLoadAdjustsProxies(t *testing.T) {
	_, _, infra := testNet(t)
	dep, err := Deploy(infra, 443, Config{Seed: 3, Proxies: 2, ProxyLifetime: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()
	dep.mu.Lock()
	p := dep.proxies[0]
	dep.mu.Unlock()
	before := p.host.Egress().Rate()
	dep.SetLoad(0.9, 10*time.Second)
	after := p.host.Egress().Rate()
	if after >= before {
		t.Fatalf("load must cut volunteer rate: %v -> %v", before, after)
	}
	if p.host.Egress().QueueDelay() == 0 {
		t.Fatal("loaded volunteers must queue")
	}
}
