package pt_test

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"testing"
	"time"

	"ptperf/internal/geo"
	"ptperf/internal/netem"
	"ptperf/internal/pt"
	"ptperf/internal/pt/camoufler"
	"ptperf/internal/pt/cloak"
	"ptperf/internal/pt/conjure"
	"ptperf/internal/pt/dnstt"
	"ptperf/internal/pt/marionette"
	"ptperf/internal/pt/meek"
	"ptperf/internal/pt/obfs4"
	"ptperf/internal/pt/psiphon"
	"ptperf/internal/pt/shadowsocks"
	"ptperf/internal/pt/snowflake"
	"ptperf/internal/pt/stegotorus"
	"ptperf/internal/pt/webtunnel"
)

// world is a tiny topology: client, pt-server and an echo destination.
type world struct {
	net    *netem.Network
	client *netem.Host
	server *netem.Host
	extra  *netem.Host
	extra2 *netem.Host
}

func newWorld(t *testing.T) *world { return newWorldScale(t, 0.002) }

// newTimingWorld is newWorld under the retired wall-clock substrate; on
// the discrete-event clock the distinction is gone, but timing tests
// keep using it to mark that they compare virtual durations.
func newTimingWorld(t *testing.T) *world { return newWorldScale(t, 0.03) }

func newWorldScale(t *testing.T, scale float64) *world {
	t.Helper()
	n := netem.New(netem.WithTimeScale(scale), netem.WithSeed(21))
	return &world{
		net:    n,
		client: n.MustAddHost(netem.HostConfig{Name: "client", Location: geo.London}),
		server: n.MustAddHost(netem.HostConfig{Name: "pt-server", Location: geo.Frankfurt}),
		extra:  n.MustAddHost(netem.HostConfig{Name: "extra", Location: geo.Frankfurt}),
		extra2: n.MustAddHost(netem.HostConfig{Name: "extra2", Location: geo.NewYork}),
	}
}

// echoHandler records the target and echoes bytes until EOF.
func echoHandler(t *testing.T, wantTarget string) pt.StreamHandler {
	return func(target string, conn net.Conn) {
		if target != wantTarget {
			t.Errorf("handler target = %q want %q", target, wantTarget)
		}
		defer conn.Close()
		io.Copy(conn, conn)
	}
}

// exerciseEcho drives a full bidirectional transfer through a dialer.
func exerciseEcho(t *testing.T, w *world, d pt.Dialer, payloadLen int) {
	t.Helper()
	conn, err := d.Dial("guard-0:9001")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	msg := bytes.Repeat([]byte("pluggable-transport-payload/"), payloadLen/28+1)[:payloadLen]
	done := netem.NewChan[error](w.net.Clock(), 1)
	w.net.Go(func() {
		_, err := conn.Write(msg)
		done.Send(err)
	})
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(conn, got); err != nil {
		t.Fatalf("read: %v", err)
	}
	if err, _ := done.Recv(); err != nil {
		t.Fatalf("write: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("payload corrupted through transport")
	}
}

func TestObfs4EndToEnd(t *testing.T) {
	w := newWorld(t)
	secret := []byte("bridge-line-secret")
	srv, err := obfs4.StartServer(w.server, 443, obfs4.Config{Secret: secret, Seed: 1}, echoHandler(t, "guard-0:9001"))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	d := obfs4.NewDialer(w.client, srv.Addr(), obfs4.Config{Secret: secret, Seed: 2})
	exerciseEcho(t, w, d, 60_000)
}

func TestObfs4RejectsWrongSecret(t *testing.T) {
	w := newWorld(t)
	srv, err := obfs4.StartServer(w.server, 443, obfs4.Config{Secret: []byte("right"), Seed: 1}, func(string, net.Conn) {
		t.Error("unauthorized client reached the handler")
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	d := obfs4.NewDialer(w.client, srv.Addr(), obfs4.Config{Secret: []byte("wrong"), Seed: 2})
	conn, err := d.Dial("guard-0:9001")
	if err == nil {
		// The server drops us during the handshake; the failure may
		// surface on first read instead of dial.
		conn.SetReadDeadline(w.net.VirtualDeadline(50 * time.Millisecond))
		buf := make([]byte, 1)
		if _, rerr := conn.Read(buf); rerr == nil {
			t.Fatal("probe with wrong secret should not produce data")
		}
		conn.Close()
	}
}

func TestShadowsocksEndToEnd(t *testing.T) {
	w := newWorld(t)
	psk := []byte("shadowsocks-psk")
	srv, err := shadowsocks.StartServer(w.server, 8388, shadowsocks.Config{PSK: psk, Seed: 1}, echoHandler(t, "guard-0:9001"))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	d := shadowsocks.NewDialer(w.client, srv.Addr(), shadowsocks.Config{PSK: psk, Seed: 2})
	exerciseEcho(t, w, d, 100_000)
}

func TestShadowsocksZeroRTTFasterThanObfs4(t *testing.T) {
	w := newTimingWorld(t)
	psk := []byte("k")
	ssrv, _ := shadowsocks.StartServer(w.server, 8388, shadowsocks.Config{PSK: psk}, echoHandler(t, "g:1"))
	defer ssrv.Close()
	osrv, _ := obfs4.StartServer(w.server, 443, obfs4.Config{Secret: psk}, echoHandler(t, "g:1"))
	defer osrv.Close()

	measure := func(d pt.Dialer) time.Duration {
		start := w.net.Now()
		conn, err := d.Dial("g:1")
		if err != nil {
			t.Fatal(err)
		}
		conn.Write([]byte{1})
		io.ReadFull(conn, make([]byte, 1))
		el := w.net.Since(start)
		conn.Close()
		return el
	}
	ss := measure(shadowsocks.NewDialer(w.client, ssrv.Addr(), shadowsocks.Config{PSK: psk}))
	ob := measure(obfs4.NewDialer(w.client, osrv.Addr(), obfs4.Config{Secret: psk}))
	if ss >= ob {
		t.Fatalf("zero-RTT shadowsocks (%v) should beat 1-RTT obfs4 (%v)", ss, ob)
	}
}

func TestWebtunnelEndToEnd(t *testing.T) {
	w := newWorld(t)
	key := []byte("webtunnel-session")
	srv, err := webtunnel.StartServer(w.server, 443, webtunnel.Config{SessionKey: key, SNI: "cdn.example", Seed: 1}, echoHandler(t, "guard-0:9001"))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	d := webtunnel.NewDialer(w.client, srv.Addr(), webtunnel.Config{SessionKey: key, SNI: "cdn.example", Seed: 2})
	exerciseEcho(t, w, d, 50_000)
}

func TestPsiphonEndToEnd(t *testing.T) {
	w := newWorld(t)
	hostKey := []byte("psiphon-host-key")
	srv, err := psiphon.StartServer(w.server, 22, psiphon.Config{HostKey: hostKey, Seed: 1}, echoHandler(t, "guard-0:9001"))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	d := psiphon.NewDialer(w.client, srv.Addr(), psiphon.Config{HostKey: hostKey, Seed: 2})
	exerciseEcho(t, w, d, 50_000)
}

func TestPsiphonRejectsWrongHostKey(t *testing.T) {
	w := newWorld(t)
	srv, err := psiphon.StartServer(w.server, 22, psiphon.Config{HostKey: []byte("right"), Seed: 1}, echoHandler(t, "x"))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	d := psiphon.NewDialer(w.client, srv.Addr(), psiphon.Config{HostKey: []byte("evil"), Seed: 2})
	if _, err := d.Dial("x"); err == nil {
		t.Fatal("MITM host key must be rejected")
	}
}

func TestCloakEndToEnd(t *testing.T) {
	w := newWorld(t)
	uid := []byte("cloak-uid")
	srv, err := cloak.StartServer(w.server, 443, cloak.Config{UID: uid, RedirAddr: "bing.com", Seed: 1}, echoHandler(t, "origin:80"))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	d := cloak.NewDialer(w.client, srv.Addr(), cloak.Config{UID: uid, RedirAddr: "bing.com", Seed: 2})
	conn, err := d.Dial("origin:80")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	msg := bytes.Repeat([]byte("zero-rtt"), 2000)
	w.net.Go(func() { conn.Write(msg) })
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(conn, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("cloak corrupted payload")
	}
}

func TestConjureEndToEnd(t *testing.T) {
	w := newWorld(t)
	secret := []byte("conjure-secret")
	bridge, err := conjure.StartBridge(w.server, 4443, conjure.Config{Secret: secret, Seed: 1}, echoHandler(t, "guard-0:9001"))
	if err != nil {
		t.Fatal(err)
	}
	defer bridge.Close()
	inf, err := conjure.StartInfra(w.extra, w.extra2, 53000, 443, conjure.Config{Secret: secret, Seed: 2}, bridge.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer inf.Close()
	d := conjure.NewDialer(w.client, inf.RegistrarAddr(), inf.PhantomAddr(), conjure.Config{Secret: secret, Seed: 3})
	exerciseEcho(t, w, d, 40_000)
}

func TestConjureUnregisteredFlowDropped(t *testing.T) {
	w := newWorld(t)
	secret := []byte("s")
	bridge, _ := conjure.StartBridge(w.server, 4443, conjure.Config{Secret: secret}, func(string, net.Conn) {
		t.Error("unregistered flow reached bridge")
	})
	defer bridge.Close()
	inf, err := conjure.StartInfra(w.extra, w.extra2, 53000, 443, conjure.Config{Secret: secret}, bridge.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer inf.Close()
	// Dial the phantom directly without registering.
	conn, err := w.client.Dial(inf.PhantomAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.Write(make([]byte, 32))
	conn.SetReadDeadline(w.net.VirtualDeadline(50 * time.Millisecond))
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Fatal("station must not answer unregistered flows")
	}
}

func TestDnsttEndToEnd(t *testing.T) {
	w := newWorld(t)
	srv, err := dnstt.StartServer(w.server, 5300, dnstt.Config{Seed: 1}, echoHandler(t, "guard-0:9001"))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	res, err := dnstt.StartResolver(w.extra, 443, dnstt.Config{Seed: 2}, srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer res.Close()
	d := dnstt.NewDialer(w.client, res.Addr(), dnstt.Config{Seed: 3})
	exerciseEcho(t, w, d, 20_000)
}

func TestDnsttRespCapLimitsThroughput(t *testing.T) {
	w := newTimingWorld(t)
	sink := func(target string, conn net.Conn) {
		defer conn.Close()
		conn.Write(make([]byte, 8<<10)) // 8 KiB downstream
		io.Copy(io.Discard, conn)
	}
	srv, _ := dnstt.StartServer(w.server, 5300, dnstt.Config{Seed: 1}, sink)
	defer srv.Close()
	res, _ := dnstt.StartResolver(w.extra, 443, dnstt.Config{Seed: 2}, srv.Addr())
	defer res.Close()

	d := dnstt.NewDialer(w.client, res.Addr(), dnstt.Config{Seed: 3})
	conn, err := d.Dial("g:1")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	start := w.net.Now()
	if _, err := io.ReadFull(conn, make([]byte, 8<<10)); err != nil {
		t.Fatal(err)
	}
	elapsed := w.net.Since(start)
	// 8 KiB needs ≥16 responses of ≤512 B; with 4 in-flight polls each
	// costing at least one client↔resolver↔server round trip, that is
	// ≥4 full RTT generations — far slower than one bulk response.
	rtt := geo.RTT(geo.London, geo.Frankfurt)
	if elapsed < rtt {
		t.Fatalf("dnstt moved 8 KiB in %v — response cap is not limiting", elapsed)
	}
}

func TestDnsttResolverBudgetThrottles(t *testing.T) {
	w := newWorld(t)
	blob := make([]byte, 64<<10)
	sink := func(target string, conn net.Conn) {
		defer conn.Close()
		conn.Write(blob)
		io.Copy(io.Discard, conn)
	}
	cfg := dnstt.Config{Seed: 1, BudgetMedian: 4 << 10}
	srv, _ := dnstt.StartServer(w.server, 5300, cfg, sink)
	defer srv.Close()
	res, _ := dnstt.StartResolver(w.extra, 443, cfg, srv.Addr())
	defer res.Close()

	d := dnstt.NewDialer(w.client, res.Addr(), cfg)
	conn, err := d.Dial("g:1")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetReadDeadline(w.net.VirtualDeadline(300 * time.Millisecond))
	got := 0
	buf := make([]byte, 4<<10)
	for {
		n, err := conn.Read(buf)
		got += n
		if err != nil {
			break
		}
	}
	if got >= len(blob) {
		t.Fatalf("throttled session still moved %d of %d bytes", got, len(blob))
	}
}

func TestMeekEndToEnd(t *testing.T) {
	w := newWorld(t)
	bridge, err := meek.StartBridge(w.server, 7002, meek.Config{Seed: 1, SessionBudgetMedian: -1}, echoHandler(t, "guard-0:9001"))
	if err != nil {
		t.Fatal(err)
	}
	defer bridge.Close()
	front, err := meek.StartFront(w.extra, 443, meek.Config{Seed: 2}, bridge.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer front.Close()
	d := meek.NewDialer(w.client, front.Addr(), meek.Config{Seed: 3})
	exerciseEcho(t, w, d, 30_000)
}

func TestMeekSessionBudgetCutsBulk(t *testing.T) {
	w := newWorld(t)
	blob := make([]byte, 1<<20)
	sink := func(target string, conn net.Conn) {
		defer conn.Close()
		conn.Write(blob)
	}
	// A tiny budget guarantees the cut.
	bridge, _ := meek.StartBridge(w.server, 7002, meek.Config{Seed: 9, SessionBudgetMedian: 64 << 10}, sink)
	defer bridge.Close()
	front, _ := meek.StartFront(w.extra, 443, meek.Config{Seed: 2}, bridge.Addr())
	defer front.Close()

	d := meek.NewDialer(w.client, front.Addr(), meek.Config{Seed: 3})
	conn, err := d.Dial("g:1")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	got := 0
	buf := make([]byte, 32<<10)
	for {
		n, err := conn.Read(buf)
		got += n
		if err != nil {
			break
		}
	}
	if got >= len(blob) {
		t.Fatalf("budgeted session still delivered %d of %d", got, len(blob))
	}
	if got == 0 {
		t.Fatal("some bytes should arrive before the cut")
	}
}

func TestSnowflakeEndToEnd(t *testing.T) {
	w := newWorld(t)
	bridge, err := snowflake.StartBridge(w.server, 7001, echoHandler(t, "guard-0:9001"))
	if err != nil {
		t.Fatal(err)
	}
	defer bridge.Close()
	dep, err := snowflake.Deploy(w.extra, 443, snowflake.Config{Seed: 4, ProxyLifetime: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()
	d := snowflake.NewDialer(w.client, dep.BrokerAddr(), bridge.Addr())
	exerciseEcho(t, w, d, 40_000)
}

func TestSnowflakeProxyChurnBreaksTransfer(t *testing.T) {
	w := newWorld(t)
	blob := make([]byte, 4<<20)
	sink := func(target string, conn net.Conn) {
		defer conn.Close()
		conn.Write(blob)
	}
	bridge, _ := snowflake.StartBridge(w.server, 7001, sink)
	defer bridge.Close()
	// Very short proxy lifetimes: transfers should break mid-flight.
	dep, err := snowflake.Deploy(w.extra, 443, snowflake.Config{
		Seed:          4,
		Proxies:       2,
		ProxyLifetime: 3 * time.Second,
		ProxyUplink:   256 << 10, // slow volunteers: the 4 MiB needs ~16 s
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()

	d := snowflake.NewDialer(w.client, dep.BrokerAddr(), bridge.Addr())
	conn, err := d.Dial("g:1")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	got := 0
	buf := make([]byte, 64<<10)
	for {
		n, err := conn.Read(buf)
		got += n
		if err != nil {
			break
		}
	}
	if got >= len(blob) {
		t.Fatalf("churn should break the transfer; got all %d bytes", got)
	}
}

func TestCamouflerEndToEnd(t *testing.T) {
	w := newWorld(t)
	im, err := camoufler.StartIMServer(w.extra, 5222, camoufler.Config{Seed: 5, LossProb: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer im.Close()
	proxy, err := camoufler.StartProxy(w.server, im.Addr(), "acct", camoufler.Config{Seed: 6, LossProb: -1}, echoHandler(t, "guard-0:9001"))
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	d := camoufler.NewDialer(w.client, im.Addr(), "acct", camoufler.Config{Seed: 7, LossProb: -1}, proxy)
	exerciseEcho(t, w, d, 20_000)
}

func TestCamouflerSingleStreamOnly(t *testing.T) {
	w := newWorld(t)
	im, _ := camoufler.StartIMServer(w.extra, 5222, camoufler.Config{Seed: 5, LossProb: -1})
	defer im.Close()
	hold := netem.NewChan[struct{}](w.net.Clock(), 1)
	proxy, _ := camoufler.StartProxy(w.server, im.Addr(), "acct", camoufler.Config{Seed: 6, LossProb: -1}, func(target string, conn net.Conn) {
		hold.Recv()
		conn.Close()
	})
	defer proxy.Close()
	d := camoufler.NewDialer(w.client, im.Addr(), "acct", camoufler.Config{Seed: 7, LossProb: -1}, proxy)
	c1, err := d.Dial("g:1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Dial("g:1"); err != camoufler.ErrBusy {
		t.Fatalf("second concurrent stream: want ErrBusy, got %v", err)
	}
	hold.Close()
	c1.Close()
	// After releasing, a new stream is possible.
	c2, err := d.Dial("g:1")
	if err != nil {
		t.Fatalf("sequential re-dial should work: %v", err)
	}
	c2.Close()
}

func TestCamouflerRateLimitPacesBulk(t *testing.T) {
	w := newTimingWorld(t)
	cfgFast := camoufler.Config{Seed: 5, LossProb: -1, RatePerSec: 1000}
	cfgSlow := camoufler.Config{Seed: 5, LossProb: -1, RatePerSec: 20}

	run := func(cfg camoufler.Config, port int) time.Duration {
		im, _ := camoufler.StartIMServer(w.extra, port, cfg)
		defer im.Close()
		blob := make([]byte, 256<<10)
		proxy, _ := camoufler.StartProxy(w.server, im.Addr(), fmt.Sprintf("a%d", port), cfg, func(target string, conn net.Conn) {
			defer conn.Close()
			conn.Write(blob)
		})
		defer proxy.Close()
		d := camoufler.NewDialer(w.client, im.Addr(), fmt.Sprintf("a%d", port), cfg, proxy)
		conn, err := d.Dial("g:1")
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		start := w.net.Now()
		if _, err := io.ReadFull(conn, make([]byte, len(blob))); err != nil {
			t.Fatal(err)
		}
		return w.net.Since(start)
	}
	fast := run(cfgFast, 5223)
	slow := run(cfgSlow, 5224)
	if slow < 2*fast {
		t.Fatalf("IM rate limit should dominate: slow=%v fast=%v", slow, fast)
	}
}

func TestStegotorusEndToEnd(t *testing.T) {
	w := newWorld(t)
	srv, err := stegotorus.StartServer(w.server, 8080, stegotorus.Config{Seed: 8}, echoHandler(t, "guard-0:9001"))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	d := stegotorus.NewDialer(w.client, srv.Addr(), stegotorus.Config{Seed: 9})
	exerciseEcho(t, w, d, 80_000)
}

func TestMarionetteEndToEnd(t *testing.T) {
	w := newWorld(t)
	srv, err := marionette.StartServer(w.server, 2121, marionette.FTP(), 10, echoHandler(t, "guard-0:9001"))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	d, err := marionette.NewDialer(w.client, srv.Addr(), marionette.FTP(), 11)
	if err != nil {
		t.Fatal(err)
	}
	exerciseEcho(t, w, d, 4_000)
}

func TestMarionetteModelValidate(t *testing.T) {
	bad := &marionette.Model{Start: "a", Data: "b", States: map[string][]marionette.Transition{
		"a": {{To: "missing", Weight: 1}},
	}}
	if err := bad.Validate(); err == nil {
		t.Fatal("undefined states must fail validation")
	}
	if err := marionette.FTP().Validate(); err != nil {
		t.Fatalf("bundled model invalid: %v", err)
	}
}

func TestMarionetteSlowerThanObfs4(t *testing.T) {
	w := newTimingWorld(t)
	secret := []byte("k")
	osrv, _ := obfs4.StartServer(w.server, 443, obfs4.Config{Secret: secret}, echoHandler(t, "g:1"))
	defer osrv.Close()
	msrv, _ := marionette.StartServer(w.server, 2121, marionette.FTP(), 12, echoHandler(t, "g:1"))
	defer msrv.Close()

	const payload = 16 << 10
	measure := func(d pt.Dialer) time.Duration {
		start := w.net.Now()
		conn, err := d.Dial("g:1")
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		msg := make([]byte, payload)
		w.net.Go(func() { conn.Write(msg) })
		if _, err := io.ReadFull(conn, make([]byte, payload)); err != nil {
			t.Fatal(err)
		}
		return w.net.Since(start)
	}
	od := obfs4.NewDialer(w.client, osrv.Addr(), obfs4.Config{Secret: secret})
	md, _ := marionette.NewDialer(w.client, msrv.Addr(), marionette.FTP(), 13)
	ot := measure(od)
	mt := measure(md)
	if mt < 4*ot {
		t.Fatalf("marionette (%v) should be ≫ slower than obfs4 (%v)", mt, ot)
	}
}

func TestInfosComplete(t *testing.T) {
	if len(pt.Infos) != 12 {
		t.Fatalf("the paper evaluates 12 PTs, Infos has %d", len(pt.Infos))
	}
	cats := pt.ByCategory()
	if len(cats[pt.ProxyLayer]) != 4 || len(cats[pt.Tunneling]) != 3 ||
		len(cats[pt.Mimicry]) != 3 || len(cats[pt.FullyEncrypted]) != 2 {
		t.Fatalf("category split wrong: %v", cats)
	}
	for _, name := range pt.Names() {
		info, ok := pt.InfoFor(name)
		if !ok || info.Name != name {
			t.Fatalf("InfoFor(%q) broken", name)
		}
	}
	if info, _ := pt.InfoFor("camoufler"); info.ParallelStreams {
		t.Fatal("camoufler must not claim parallel streams")
	}
	if _, ok := pt.InfoFor("nonesuch"); ok {
		t.Fatal("unknown transport should not resolve")
	}
}

func TestRecordConnRoundTrip(t *testing.T) {
	a, b := net.Pipe()
	ra, err := pt.NewRecordConn(a, pt.RecordConfig{Key: []byte("k"), IsClient: true, MaxPadding: 32, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rb, err := pt.NewRecordConn(b, pt.RecordConfig{Key: []byte("k"), IsClient: false, MaxPadding: 32, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	msg := bytes.Repeat([]byte("record"), 10000)
	go ra.Write(msg)
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(rb, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("record layer corrupted data")
	}
	// Wrong key must garble and fail structurally sooner or later.
	c, d := net.Pipe()
	rc, _ := pt.NewRecordConn(c, pt.RecordConfig{Key: []byte("k1"), IsClient: true})
	rd, _ := pt.NewRecordConn(d, pt.RecordConfig{Key: []byte("k2"), IsClient: false})
	go rc.Write(bytes.Repeat([]byte{0xAA}, 4096))
	buf := make([]byte, 4096)
	n, _ := io.ReadFull(rd, buf)
	if n > 0 && bytes.Equal(buf[:n], bytes.Repeat([]byte{0xAA}, n)) {
		t.Fatal("mismatched keys must not decrypt to plaintext")
	}
}

func TestTargetPrologue(t *testing.T) {
	var buf bytes.Buffer
	if err := pt.WriteTarget(&buf, "relay-3:9001"); err != nil {
		t.Fatal(err)
	}
	got, err := pt.ReadTarget(&buf)
	if err != nil || got != "relay-3:9001" {
		t.Fatalf("got %q err %v", got, err)
	}
	long := make([]byte, 300)
	if err := pt.WriteTarget(io.Discard, string(long)); err == nil {
		t.Fatal("overlong target must fail")
	}
}
