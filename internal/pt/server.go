package pt

import (
	"fmt"
	"net"

	"ptperf/internal/netem"
)

// ServerWrapper upgrades an accepted raw connection into the transport's
// obfuscated stream (server side of the handshake).
type ServerWrapper func(conn net.Conn) (net.Conn, error)

// ClientWrapper upgrades a dialed raw connection (client side).
type ClientWrapper func(conn net.Conn) (net.Conn, error)

// listenServer is the standard single-listener PT server.
type listenServer struct {
	ln   *netem.Listener
	addr string
}

// Addr implements Server.
func (s *listenServer) Addr() string { return s.addr }

// Close implements Server.
func (s *listenServer) Close() error { return s.ln.Close() }

// ListenAndServe runs the common PT server skeleton: accept, wrap,
// read the target prologue, hand off to the stream handler.
func ListenAndServe(host *netem.Host, port int, wrap ServerWrapper, handle StreamHandler) (Server, error) {
	ln, err := host.Listen(port)
	if err != nil {
		return nil, err
	}
	srv := &listenServer{ln: ln, addr: fmt.Sprintf("%s:%d", host.Name(), port)}
	clock := host.Network().Clock()
	clock.Go(func() {
		for {
			raw, err := ln.Accept()
			if err != nil {
				return
			}
			rawConn := raw
			clock.Go(func() {
				conn := rawConn
				if wrap != nil {
					var err error
					conn, err = wrap(rawConn)
					if err != nil {
						rawConn.Close()
						return
					}
				}
				target, err := ReadTarget(conn)
				if err != nil {
					conn.Close()
					return
				}
				handle(target, conn)
			})
		}
	})
	return srv, nil
}

// DialWrapped runs the common PT client skeleton: dial, wrap, send the
// target prologue.
func DialWrapped(host *netem.Host, addr string, wrap ClientWrapper, target string) (net.Conn, error) {
	raw, err := host.Dial(addr)
	if err != nil {
		return nil, err
	}
	conn := raw
	if wrap != nil {
		conn, err = wrap(raw)
		if err != nil {
			raw.Close()
			return nil, err
		}
	}
	if err := WriteTarget(conn, target); err != nil {
		conn.Close()
		return nil, err
	}
	return conn, nil
}

// ForwardTo returns a StreamHandler that dials the stream's target from
// fromHost and splices — the integration-set-2 server behaviour (the
// target names the guard the client's Tor selected).
func ForwardTo(fromHost *netem.Host) StreamHandler {
	clock := fromHost.Network().Clock()
	return func(target string, conn net.Conn) {
		down, err := fromHost.Dial(target)
		if err != nil {
			conn.Close()
			return
		}
		Splice(clock, conn, down)
	}
}

// HandleWithDialer returns a StreamHandler that opens the target through
// an arbitrary dialer and splices — the integration-set-3 server
// behaviour (the dialer is the co-located Tor client).
func HandleWithDialer(clock *netem.Clock, dial func(target string) (net.Conn, error)) StreamHandler {
	return func(target string, conn net.Conn) {
		up, err := dial(target)
		if err != nil {
			conn.Close()
			return
		}
		Splice(clock, conn, up)
	}
}
