package pt

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"

	"ptperf/internal/netem"
)

// MaxRecord is the largest payload carried in one framed record.
const MaxRecord = 16 << 10

// ErrRecordTooLarge reports an oversized inbound record.
var ErrRecordTooLarge = errors.New("pt: record exceeds maximum size")

// RecordConn wraps a net.Conn with a length-prefixed record layer,
// optional stream encryption and optional random padding — the common
// skeleton of obfs4, webtunnel, cloak and psiphon style transports.
type RecordConn struct {
	net.Conn
	// enc/dec are optional stream ciphers applied to record bodies.
	enc, dec cipher.Stream
	// header prepends extra fixed bytes before each record's length
	// (e.g. a TLS record type+version for mimicry).
	header []byte
	// maxPad adds 0..maxPad random padding bytes per record, declared
	// in the frame so the receiver can strip them (length obfuscation).
	maxPad int
	rng    *rand.Rand

	rmu     sync.Mutex
	pending []byte
	// rbuf is the reused record read buffer; pending aliases it, and it
	// is only overwritten once pending has drained.
	rbuf []byte
	wmu  sync.Mutex
}

// fullReader is the threshold-read fast path netem conns provide: fill
// p completely, parking once at the completing byte's arrival instead
// of waking for every segment of a multi-segment record.
type fullReader interface {
	ReadFull(p []byte) (int, error)
}

// readFull fills p from rc's inner conn, using the threshold path when
// available.
func (rc *RecordConn) readFull(p []byte) error {
	if fr, ok := rc.Conn.(fullReader); ok {
		n, err := fr.ReadFull(p)
		if err != nil && n < len(p) {
			if n > 0 && err == io.EOF {
				return io.ErrUnexpectedEOF
			}
			return err
		}
		return nil
	}
	_, err := io.ReadFull(rc.Conn, p)
	return err
}

// RecordConfig configures a RecordConn.
type RecordConfig struct {
	// Key enables AES-CTR record encryption when non-empty; both ends
	// derive directional keys from it.
	Key []byte
	// IsClient distinguishes the two key directions.
	IsClient bool
	// Header prepends these bytes to every record (mimicry cosmetics).
	Header []byte
	// MaxPadding adds up to this many random bytes per record.
	MaxPadding int
	// Seed drives padding draws.
	Seed int64
}

// NewRecordConn wraps conn.
func NewRecordConn(conn net.Conn, cfg RecordConfig) (*RecordConn, error) {
	rc := &RecordConn{
		Conn:   conn,
		header: append([]byte(nil), cfg.Header...),
		maxPad: cfg.MaxPadding,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
	}
	if len(cfg.Key) > 0 {
		mk := func(label string) (cipher.Stream, error) {
			sum := sha256.Sum256(append([]byte(label), cfg.Key...))
			block, err := aes.NewCipher(sum[:16])
			if err != nil {
				return nil, err
			}
			return cipher.NewCTR(block, sum[16:32]), nil
		}
		c2s, err := mk("client->server")
		if err != nil {
			return nil, err
		}
		s2c, err := mk("server->client")
		if err != nil {
			return nil, err
		}
		if cfg.IsClient {
			rc.enc, rc.dec = c2s, s2c
		} else {
			rc.enc, rc.dec = s2c, c2s
		}
	}
	return rc, nil
}

// Write frames p into records: header || len(2) || padLen(2) || body ||
// padding, with the body (and pad) optionally encrypted.
func (rc *RecordConn) Write(p []byte) (int, error) {
	rc.wmu.Lock()
	defer rc.wmu.Unlock()
	written := 0
	for len(p) > 0 {
		n := len(p)
		if n > MaxRecord {
			n = MaxRecord
		}
		pad := 0
		if rc.maxPad > 0 {
			pad = rc.rng.Intn(rc.maxPad + 1)
		}
		frame := make([]byte, len(rc.header)+4+n+pad)
		copy(frame, rc.header)
		binary.BigEndian.PutUint16(frame[len(rc.header):], uint16(n))
		binary.BigEndian.PutUint16(frame[len(rc.header)+2:], uint16(pad))
		body := frame[len(rc.header)+4:]
		copy(body, p[:n])
		for i := n; i < n+pad; i++ {
			body[i] = byte(rc.rng.Intn(256))
		}
		if rc.enc != nil {
			rc.enc.XORKeyStream(body, body)
		}
		if _, err := rc.Conn.Write(frame); err != nil {
			return written, err
		}
		written += n
		p = p[n:]
	}
	return written, nil
}

// Read unframes the next record, buffering any remainder.
func (rc *RecordConn) Read(p []byte) (int, error) {
	rc.rmu.Lock()
	defer rc.rmu.Unlock()
	for len(rc.pending) == 0 {
		headLen := len(rc.header) + 4
		if cap(rc.rbuf) < headLen {
			rc.rbuf = make([]byte, MaxRecord+headLen)
		}
		head := rc.rbuf[:headLen]
		if err := rc.readFull(head); err != nil {
			return 0, err
		}
		n := int(binary.BigEndian.Uint16(head[len(rc.header):]))
		pad := int(binary.BigEndian.Uint16(head[len(rc.header)+2:]))
		if n > MaxRecord {
			return 0, ErrRecordTooLarge
		}
		if cap(rc.rbuf) < n+pad {
			rc.rbuf = make([]byte, n+pad)
		}
		body := rc.rbuf[:n+pad]
		if err := rc.readFull(body); err != nil {
			return 0, err
		}
		if rc.dec != nil {
			rc.dec.XORKeyStream(body, body)
		}
		rc.pending = body[:n]
	}
	n := copy(p, rc.pending)
	rc.pending = rc.pending[n:]
	return n, nil
}

// WriteTarget sends the stream prologue naming the server-side target.
func WriteTarget(w io.Writer, target string) error {
	if len(target) > 255 {
		return fmt.Errorf("pt: target too long")
	}
	buf := make([]byte, 1+len(target))
	buf[0] = byte(len(target))
	copy(buf[1:], target)
	_, err := w.Write(buf)
	return err
}

// ReadTarget reads the stream prologue.
func ReadTarget(r io.Reader) (string, error) {
	var n [1]byte
	if _, err := io.ReadFull(r, n[:]); err != nil {
		return "", err
	}
	buf := make([]byte, n[0])
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

// Splice copies both directions between a and b and closes both when
// both directions finish. It is the standard PT-server forwarding loop;
// the pump goroutines are simulation goroutines on clock.
func Splice(clock *netem.Clock, a, b net.Conn) {
	wg := netem.NewWaitGroup(clock)
	cp := func(dst, src net.Conn) {
		defer wg.Done()
		buf := make([]byte, 32<<10)
		for {
			n, err := src.Read(buf)
			if n > 0 {
				if _, werr := dst.Write(buf[:n]); werr != nil {
					break
				}
			}
			if err != nil {
				break
			}
		}
		if cw, ok := dst.(interface{ CloseWrite() error }); ok {
			cw.CloseWrite()
		} else {
			dst.Close()
		}
	}
	wg.Add(2)
	clock.Go(func() { cp(a, b) })
	clock.Go(func() { cp(b, a) })
	wg.Wait()
	a.Close()
	b.Close()
}

// HalfCloser is implemented by conns supporting TCP-style half close.
type HalfCloser interface {
	CloseWrite() error
}

// CloseWrite forwards half-close through a RecordConn.
func (rc *RecordConn) CloseWrite() error {
	if hc, ok := rc.Conn.(HalfCloser); ok {
		return hc.CloseWrite()
	}
	return rc.Conn.Close()
}
