// Package cloak implements the mimicry transport that disguises traffic
// as regular browser TLS. Its distinctive property — kept here — is
// zero-round-trip authentication: the client's first flight is a
// ClientHello-shaped message whose "client random" steganographically
// authenticates the session, so application data flows immediately after
// the TCP dial, without waiting for any server response. This is why the
// paper finds cloak among the fastest transports despite being mimicry.
//
// cloak is an integration-set-3 transport: the PT server runs the Tor
// client, so the stream prologue carries the final destination.
package cloak

import (
	"crypto/hmac"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"

	"ptperf/internal/netem"
	"ptperf/internal/pt"
)

// clientHelloLen mirrors a typical browser ClientHello.
const clientHelloLen = 517

// ErrAuth reports a ClientHello whose steganographic random fails
// validation; real cloak silently proxies such clients to a decoy, we
// just refuse.
var ErrAuth = errors.New("cloak: steganographic authentication failed")

// Config carries the transport parameters.
type Config struct {
	// UID is the client's identity key from the cloak config.
	UID []byte
	// RedirAddr is the innocuous domain presented as SNI.
	RedirAddr string
	// Seed drives session randomness.
	Seed int64
}

var tlsAppHeader = []byte{0x17, 0x03, 0x03}

// buildClientHello assembles the mimicked first flight. Layout:
// type(1)‖ver(2)‖random(32)‖proof(32)‖sni-len(1)‖sni‖pad to 517.
func buildClientHello(cfg Config, rng *rand.Rand) ([]byte, []byte) {
	hello := make([]byte, clientHelloLen)
	hello[0], hello[1], hello[2] = 0x16, 0x03, 0x01
	random := hello[3:35]
	for i := range random {
		random[i] = byte(rng.Intn(256))
	}
	mac := hmac.New(sha256.New, cfg.UID)
	mac.Write(random)
	copy(hello[35:67], mac.Sum(nil))
	hello[67] = byte(len(cfg.RedirAddr))
	copy(hello[68:], cfg.RedirAddr)
	for i := 68 + len(cfg.RedirAddr); i < clientHelloLen; i++ {
		hello[i] = byte(rng.Intn(256))
	}
	return hello, append([]byte(nil), random...)
}

func sessionKey(uid, random []byte) []byte {
	h := sha256.New()
	h.Write(uid)
	h.Write(random)
	h.Write([]byte("cloak-session"))
	return h.Sum(nil)
}

// serverHelloLen is the fixed size of the mimicked ServerHello flight.
const serverHelloLen = 3 + 32 + 90

// shSkipper defers consuming the ServerHello to the first read, so the
// client can start sending immediately after its ClientHello (zero RTT)
// while still keeping the inbound record stream aligned.
type shSkipper struct {
	net.Conn
	once sync.Once
	err  error
}

func (s *shSkipper) Read(p []byte) (int, error) {
	s.once.Do(func() {
		buf := make([]byte, serverHelloLen)
		_, s.err = io.ReadFull(s.Conn, buf)
	})
	if s.err != nil {
		return 0, s.err
	}
	return s.Conn.Read(p)
}

// clientWrap sends the ClientHello and immediately layers the record
// conn on top — zero RTT.
func clientWrap(conn net.Conn, cfg Config, seed int64) (net.Conn, error) {
	rng := rand.New(rand.NewSource(seed))
	hello, random := buildClientHello(cfg, rng)
	if _, err := conn.Write(hello); err != nil {
		return nil, err
	}
	return pt.NewRecordConn(&shSkipper{Conn: conn}, pt.RecordConfig{
		Key:      sessionKey(cfg.UID, random),
		IsClient: true,
		Header:   tlsAppHeader,
		Seed:     seed + 1,
	})
}

// serverWrap validates the ClientHello, replies with a ServerHello
// asynchronously (the client does not wait for it) and layers records.
func serverWrap(conn net.Conn, cfg Config, seed int64) (net.Conn, error) {
	hello := make([]byte, clientHelloLen)
	if _, err := io.ReadFull(conn, hello); err != nil {
		return nil, err
	}
	if hello[0] != 0x16 {
		return nil, ErrAuth
	}
	random := hello[3:35]
	mac := hmac.New(sha256.New, cfg.UID)
	mac.Write(random)
	if !hmac.Equal(mac.Sum(nil), hello[35:67]) {
		return nil, ErrAuth
	}
	// ServerHello flight; the client does not wait for it before
	// sending data, preserving the zero-RTT property.
	rng := rand.New(rand.NewSource(seed))
	sh := make([]byte, serverHelloLen)
	sh[0], sh[1], sh[2] = 0x16, 0x03, 0x03
	for i := 3; i < len(sh); i++ {
		sh[i] = byte(rng.Intn(256))
	}
	if _, err := conn.Write(sh); err != nil {
		return nil, err
	}
	rc, err := pt.NewRecordConn(conn, pt.RecordConfig{
		Key:      sessionKey(cfg.UID, append([]byte(nil), random...)),
		IsClient: false,
		Header:   tlsAppHeader,
		Seed:     seed + 1,
	})
	if err != nil {
		return nil, err
	}
	return rc, nil
}

// StartServer runs a cloak server on host:port.
func StartServer(host *netem.Host, port int, cfg Config, handle pt.StreamHandler) (pt.Server, error) {
	if len(cfg.UID) == 0 {
		return nil, errors.New("cloak: server needs a client UID table")
	}
	var mu sync.Mutex
	seed := cfg.Seed
	return pt.ListenAndServe(host, port, func(conn net.Conn) (net.Conn, error) {
		mu.Lock()
		seed++
		s := seed
		mu.Unlock()
		return serverWrap(conn, cfg, s)
	}, handle)
}

// NewDialer returns the cloak client for a server at addr.
func NewDialer(host *netem.Host, addr string, cfg Config) pt.Dialer {
	var mu sync.Mutex
	seed := cfg.Seed + 49979687
	return pt.DialerFunc(func(target string) (net.Conn, error) {
		if len(cfg.UID) == 0 {
			return nil, errors.New("cloak: dialer needs a UID")
		}
		mu.Lock()
		seed++
		s := seed
		mu.Unlock()
		conn, err := pt.DialWrapped(host, addr, func(raw net.Conn) (net.Conn, error) {
			return clientWrap(raw, cfg, s)
		}, target)
		if err != nil {
			return nil, fmt.Errorf("cloak: %w", err)
		}
		return conn, nil
	})
}
