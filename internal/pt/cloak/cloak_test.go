package cloak

import (
	"bytes"
	"math/rand"
	"net"
	"testing"

	"ptperf/internal/geo"
	"ptperf/internal/netem"
)

// bufferedPair returns two connected conns with buffering (unlike
// net.Pipe), so a server can flush its ServerHello without a reader.
func bufferedPair(t *testing.T) (*netem.Network, net.Conn, net.Conn) {
	t.Helper()
	n := netem.New(netem.WithTimeScale(0.001), netem.WithSeed(9))
	a := n.MustAddHost(netem.HostConfig{Name: "a", Location: geo.London})
	b := n.MustAddHost(netem.HostConfig{Name: "b", Location: geo.London})
	ln, err := b.Listen(1)
	if err != nil {
		t.Fatal(err)
	}
	accepted := netem.NewChan[net.Conn](n.Clock(), 1)
	n.Go(func() {
		c, err := ln.Accept()
		if err == nil {
			accepted.Send(c)
		}
	})
	c, err := a.Dial("b:1")
	if err != nil {
		t.Fatal(err)
	}
	sc, _ := accepted.Recv()
	return n, c, sc
}

func TestClientHelloShape(t *testing.T) {
	cfg := Config{UID: []byte("uid"), RedirAddr: "bing.com"}
	rng := rand.New(rand.NewSource(1))
	hello, random := buildClientHello(cfg, rng)
	if len(hello) != clientHelloLen {
		t.Fatalf("ClientHello must be %d bytes (browser-shaped), got %d", clientHelloLen, len(hello))
	}
	if hello[0] != 0x16 || hello[1] != 0x03 {
		t.Fatal("record header not TLS-handshake-shaped")
	}
	if len(random) != 32 {
		t.Fatalf("client random must be 32 bytes, got %d", len(random))
	}
	if !bytes.Equal(hello[3:35], random) {
		t.Fatal("random not embedded at the TLS offset")
	}
}

func TestClientHelloAuthenticates(t *testing.T) {
	// The steganographic proof must validate for the right UID only.
	uid := []byte("the-uid")
	rng := rand.New(rand.NewSource(2))
	hello, _ := buildClientHello(Config{UID: uid, RedirAddr: "x.com"}, rng)

	n1, a, b := bufferedPair(t)
	defer a.Close()
	defer b.Close()
	n1.Go(func() { a.Write(hello) })
	if _, err := serverWrap(b, Config{UID: uid}, 3); err != nil {
		t.Fatalf("valid hello rejected: %v", err)
	}

	n2, c, d := bufferedPair(t)
	defer c.Close()
	defer d.Close()
	n2.Go(func() { c.Write(hello) })
	if _, err := serverWrap(d, Config{UID: []byte("other")}, 4); err != ErrAuth {
		t.Fatalf("wrong UID must fail auth, got %v", err)
	}
}

func TestZeroRTT(t *testing.T) {
	// The client must be able to finish its first Write before reading
	// anything from the server: that is cloak's zero-RTT property.
	nw, a, b := bufferedPair(t)
	defer a.Close()
	defer b.Close()

	serverGot := netem.NewChan[[]byte](nw.Clock(), 1)
	nw.Go(func() {
		sc, err := serverWrap(b, Config{UID: []byte("u")}, 5)
		if err != nil {
			serverGot.Send(nil)
			return
		}
		buf := make([]byte, 10)
		n, _ := sc.Read(buf)
		serverGot.Send(buf[:n])
	})

	cc, err := clientWrap(a, Config{UID: []byte("u")}, 6)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cc.Write([]byte("early-data")); err != nil {
		t.Fatal(err)
	}
	if got, _ := serverGot.Recv(); string(got) != "early-data" {
		t.Fatalf("server got %q", got)
	}
}

func TestSessionKeyBindsRandom(t *testing.T) {
	uid := []byte("u")
	if bytes.Equal(sessionKey(uid, []byte("r1")), sessionKey(uid, []byte("r2"))) {
		t.Fatal("session key must vary with the client random")
	}
}
