// Package shadowsocks implements the second fully-encrypted transport:
// a pre-shared-key AEAD proxy with no handshake round trip. Every wire
// byte after the initial salt is AES-GCM ciphertext, so the stream is
// uniformly random to an observer, and the absence of a negotiation
// round trip is why shadowsocks bootstraps faster than obfs4.
//
// shadowsocks is an integration-set-2 transport: its server splices to
// the guard named in the stream prologue.
package shadowsocks

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"

	"ptperf/internal/netem"
	"ptperf/internal/pt"
)

const (
	saltLen = 16
	tagLen  = 16
	// maxChunk matches the shadowsocks AEAD chunk limit (0x3FFF).
	maxChunk = 0x3fff
)

// ErrCipher reports AEAD authentication failure.
var ErrCipher = errors.New("shadowsocks: cipher authentication failed")

// Config carries the transport parameters.
type Config struct {
	// PSK is the pre-shared key.
	PSK []byte
	// Seed drives salt generation.
	Seed int64
}

// aeadConn implements the shadowsocks AEAD chunk stream over a net.Conn.
type aeadConn struct {
	net.Conn
	send, recv cipher.AEAD
	sendNonce  uint64
	recvNonce  uint64

	rmu     sync.Mutex
	wmu     sync.Mutex
	pending []byte
}

// subkey derives the session key for one direction from PSK and salt.
func subkey(psk, salt []byte, label string) (cipher.AEAD, error) {
	h := sha256.New()
	h.Write(psk)
	h.Write(salt)
	h.Write([]byte(label))
	key := h.Sum(nil)[:16]
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	return cipher.NewGCM(block)
}

func nonceBytes(n uint64) []byte {
	var b [12]byte
	binary.LittleEndian.PutUint64(b[:8], n)
	return b[:]
}

// Write seals [len|tag][payload|tag] chunks.
func (c *aeadConn) Write(p []byte) (int, error) {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	written := 0
	for len(p) > 0 {
		n := len(p)
		if n > maxChunk {
			n = maxChunk
		}
		var lenPlain [2]byte
		binary.BigEndian.PutUint16(lenPlain[:], uint16(n))
		out := make([]byte, 0, 2+tagLen+n+tagLen)
		out = c.send.Seal(out, nonceBytes(c.sendNonce), lenPlain[:], nil)
		c.sendNonce++
		out = c.send.Seal(out, nonceBytes(c.sendNonce), p[:n], nil)
		c.sendNonce++
		if _, err := c.Conn.Write(out); err != nil {
			return written, err
		}
		written += n
		p = p[n:]
	}
	return written, nil
}

// Read opens the next chunk.
func (c *aeadConn) Read(p []byte) (int, error) {
	c.rmu.Lock()
	defer c.rmu.Unlock()
	for len(c.pending) == 0 {
		sealedLen := make([]byte, 2+tagLen)
		if _, err := io.ReadFull(c.Conn, sealedLen); err != nil {
			return 0, err
		}
		lenPlain, err := c.recv.Open(nil, nonceBytes(c.recvNonce), sealedLen, nil)
		if err != nil {
			return 0, ErrCipher
		}
		c.recvNonce++
		n := int(binary.BigEndian.Uint16(lenPlain))
		sealed := make([]byte, n+tagLen)
		if _, err := io.ReadFull(c.Conn, sealed); err != nil {
			return 0, err
		}
		plain, err := c.recv.Open(nil, nonceBytes(c.recvNonce), sealed, nil)
		if err != nil {
			return 0, ErrCipher
		}
		c.recvNonce++
		c.pending = plain
	}
	n := copy(p, c.pending)
	c.pending = c.pending[n:]
	return n, nil
}

// CloseWrite forwards half close.
func (c *aeadConn) CloseWrite() error {
	if hc, ok := c.Conn.(pt.HalfCloser); ok {
		return hc.CloseWrite()
	}
	return c.Conn.Close()
}

// clientWrap sends the salt and builds the AEAD pair (zero RTT).
func clientWrap(conn net.Conn, cfg Config, seed int64) (net.Conn, error) {
	rng := rand.New(rand.NewSource(seed))
	salt := make([]byte, saltLen)
	for i := range salt {
		salt[i] = byte(rng.Intn(256))
	}
	if _, err := conn.Write(salt); err != nil {
		return nil, err
	}
	send, err := subkey(cfg.PSK, salt, "c2s")
	if err != nil {
		return nil, err
	}
	recv, err := subkey(cfg.PSK, salt, "s2c")
	if err != nil {
		return nil, err
	}
	return &aeadConn{Conn: conn, send: send, recv: recv}, nil
}

// serverWrap reads the salt and mirrors the AEAD pair.
func serverWrap(conn net.Conn, cfg Config) (net.Conn, error) {
	salt := make([]byte, saltLen)
	if _, err := io.ReadFull(conn, salt); err != nil {
		return nil, err
	}
	send, err := subkey(cfg.PSK, salt, "s2c")
	if err != nil {
		return nil, err
	}
	recv, err := subkey(cfg.PSK, salt, "c2s")
	if err != nil {
		return nil, err
	}
	return &aeadConn{Conn: conn, send: send, recv: recv}, nil
}

// StartServer runs a shadowsocks server on host:port.
func StartServer(host *netem.Host, port int, cfg Config, handle pt.StreamHandler) (pt.Server, error) {
	if len(cfg.PSK) == 0 {
		return nil, errors.New("shadowsocks: server needs a PSK")
	}
	return pt.ListenAndServe(host, port, func(conn net.Conn) (net.Conn, error) {
		return serverWrap(conn, cfg)
	}, handle)
}

// NewDialer returns the shadowsocks client for a server at addr.
func NewDialer(host *netem.Host, addr string, cfg Config) pt.Dialer {
	var mu sync.Mutex
	seed := cfg.Seed + 104729
	return pt.DialerFunc(func(target string) (net.Conn, error) {
		if len(cfg.PSK) == 0 {
			return nil, errors.New("shadowsocks: dialer needs a PSK")
		}
		mu.Lock()
		seed++
		s := seed
		mu.Unlock()
		conn, err := pt.DialWrapped(host, addr, func(raw net.Conn) (net.Conn, error) {
			return clientWrap(raw, cfg, s)
		}, target)
		if err != nil {
			return nil, fmt.Errorf("shadowsocks: %w", err)
		}
		return conn, nil
	})
}
