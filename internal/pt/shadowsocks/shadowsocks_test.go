package shadowsocks

import (
	"bytes"
	"io"
	"net"
	"testing"
	"testing/quick"
)

func pipePair(t *testing.T, psk []byte) (net.Conn, net.Conn) {
	t.Helper()
	a, b := net.Pipe()
	done := make(chan net.Conn, 1)
	go func() {
		s, err := serverWrap(b, Config{PSK: psk})
		if err != nil {
			done <- nil
			return
		}
		done <- s
	}()
	c, err := clientWrap(a, Config{PSK: psk}, 42)
	if err != nil {
		t.Fatal(err)
	}
	s := <-done
	if s == nil {
		t.Fatal("server wrap failed")
	}
	return c, s
}

func TestAEADRoundTrip(t *testing.T) {
	c, s := pipePair(t, []byte("psk"))
	f := func(payload []byte) bool {
		if len(payload) == 0 {
			return true
		}
		errc := make(chan error, 1)
		go func() {
			_, err := c.Write(payload)
			errc <- err
		}()
		got := make([]byte, len(payload))
		if _, err := io.ReadFull(s, got); err != nil {
			return false
		}
		if err := <-errc; err != nil {
			return false
		}
		return bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestLargeChunkSplit(t *testing.T) {
	c, s := pipePair(t, []byte("psk"))
	payload := make([]byte, maxChunk*2+17)
	for i := range payload {
		payload[i] = byte(i)
	}
	go c.Write(payload)
	got := make([]byte, len(payload))
	if _, err := io.ReadFull(s, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("multi-chunk payload corrupted")
	}
}

func TestTamperDetected(t *testing.T) {
	// client → a1/a2 → middlebox (flips one ciphertext bit) → b1/b2 → server
	a1, a2 := net.Pipe()
	b1, b2 := net.Pipe()
	go func() {
		buf := make([]byte, 4096)
		seen := 0
		for {
			n, err := a2.Read(buf)
			if n > 0 {
				// Flip a bit beyond the salt, inside the first chunk.
				if seen <= saltLen && seen+n > saltLen+3 {
					buf[saltLen+3-seen] ^= 0x01
				}
				seen += n
				if _, werr := b1.Write(buf[:n]); werr != nil {
					return
				}
			}
			if err != nil {
				b1.Close()
				return
			}
		}
	}()

	done := make(chan error, 1)
	go func() {
		s, err := serverWrap(b2, Config{PSK: []byte("k")})
		if err != nil {
			done <- err
			return
		}
		buf := make([]byte, 16)
		_, err = s.Read(buf)
		done <- err
	}()
	cConn, err := clientWrap(a1, Config{PSK: []byte("k")}, 1)
	if err != nil {
		t.Fatal(err)
	}
	go cConn.Write([]byte("hello world too long"))
	if err := <-done; err == nil {
		t.Fatal("tampered chunk must fail authentication")
	}
}

func TestWrongPSKFails(t *testing.T) {
	a, b := net.Pipe()
	done := make(chan error, 1)
	go func() {
		s, err := serverWrap(b, Config{PSK: []byte("server-key")})
		if err != nil {
			done <- err
			return
		}
		buf := make([]byte, 8)
		_, err = s.Read(buf)
		done <- err
	}()
	c, err := clientWrap(a, Config{PSK: []byte("client-key")}, 7)
	if err != nil {
		t.Fatal(err)
	}
	go c.Write([]byte("deadbeef")) // async: the server aborts mid-read
	if err := <-done; err == nil {
		t.Fatal("mismatched PSKs must not authenticate")
	}
	a.Close()
	b.Close()
}

func TestConfigValidation(t *testing.T) {
	if _, err := StartServer(nil, 0, Config{}, nil); err == nil {
		t.Fatal("server without PSK must fail")
	}
	d := NewDialer(nil, "x:1", Config{})
	if _, err := d.Dial("t:1"); err == nil {
		t.Fatal("dialer without PSK must fail")
	}
}
