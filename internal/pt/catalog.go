package pt

// This file reproduces the appendix's Table 2: the 28 circumvention
// systems the paper surveyed, of which only the 12 in Infos could be
// run and measured.

// AdoptionStatus is the paper's four-way grouping by Tor-project
// adoption.
type AdoptionStatus int

// Adoption categories of Table 2.
const (
	// Bundled transports ship in the Tor Browser.
	Bundled AdoptionStatus = iota
	// UnderDeployment transports are listed by the Tor project and in
	// testing.
	UnderDeployment
	// ListedUndeployed transports are listed but not deployed.
	ListedUndeployed
	// Unlisted transports are not under Tor-project consideration.
	Unlisted
)

func (s AdoptionStatus) String() string {
	switch s {
	case Bundled:
		return "bundled in Tor Browser"
	case UnderDeployment:
		return "listed, under deployment/testing"
	case ListedUndeployed:
		return "listed, undeployed"
	default:
		return "neither listed nor deployed"
	}
}

// Candidate is one row of Table 2.
type Candidate struct {
	// Name is the system's name.
	Name string
	// Status is the adoption grouping.
	Status AdoptionStatus
	// CodeAvailable reports public source availability.
	CodeAvailable bool
	// Functional reports whether the paper could run it.
	Functional bool
	// Integratable reports whether it could be wired into Tor.
	Integratable bool
	// Evaluated reports whether it is one of the 12 measured PTs.
	Evaluated bool
	// Challenge summarizes the implementation obstacle, if any.
	Challenge string
	// Technology is the underlying circumvention primitive.
	Technology string
}

// Candidates lists all 28 systems of Table 2 in the paper's order.
var Candidates = []Candidate{
	{"obfs4", Bundled, true, true, true, true, "none", "random obfuscation"},
	{"meek", Bundled, true, true, true, true, "requires CDN with domain fronting", "domain fronting"},
	{"snowflake", Bundled, true, true, true, true, "dependency on domain fronting", "WebRTC"},
	{"dnstt", UnderDeployment, true, true, true, true, "none", "DoH/DoT tunneling"},
	{"conjure", UnderDeployment, true, true, true, true, "needs ISP support", "decoy routing"},
	{"webtunnel", UnderDeployment, true, true, true, true, "none", "tunneling over HTTP"},
	{"torcloak", UnderDeployment, false, false, false, false, "code not public", "tunneling over WebRTC"},
	{"marionette", ListedUndeployed, true, true, true, true, "Python 2.7 dependencies", "traffic obfuscation"},
	{"shadowsocks", ListedUndeployed, true, true, true, true, "none", "traffic obfuscation"},
	{"stegotorus", ListedUndeployed, true, true, true, true, "none", "steganographic obfuscation"},
	{"psiphon", ListedUndeployed, true, true, true, true, "none", "proxy-based"},
	{"lampshade", ListedUndeployed, true, false, false, false, "no ready-to-deploy code", "obfuscated encryption"},
	{"cloak", Unlisted, true, true, true, true, "none", "traffic obfuscation"},
	{"camoufler", Unlisted, true, true, true, true, "dependency on IM accounts", "tunneling over IM"},
	{"massbrowser", Unlisted, true, true, true, false, "requires per-device invite code", "domain fronting + browser proxy"},
	{"protozoa", Unlisted, true, false, false, false, "code compilation issues", "tunneling over WebRTC"},
	{"stegozoa", Unlisted, true, false, false, false, "only text over sockets", "tunneling over WebRTC"},
	{"sweet", Unlisted, true, false, false, false, "dependency issues", "tunneling over email"},
	{"deltashaper", Unlisted, true, false, false, false, "requires unsupported Skype", "tunneling over video"},
	{"rook", Unlisted, true, true, false, false, "messaging only, no proxy", "hiding in game traffic"},
	{"facet", Unlisted, true, false, false, false, "requires unsupported Skype", "tunneling over video"},
	{"mailet", Unlisted, true, true, false, false, "Twitter only, no proxy", "tunneling over email"},
	{"minecruft-pt", Unlisted, true, false, false, false, "source-code issues", "hiding in game traffic"},
	{"cloudtransport", Unlisted, false, false, false, false, "code not public", "tunneling over cloud storage"},
	{"covertcast", Unlisted, false, false, false, false, "code not public", "tunneling over video streaming"},
	{"freewave", Unlisted, false, false, false, false, "code not public", "tunneling over VoIP"},
	{"balboa", Unlisted, false, false, false, false, "code not public", "traffic-model obfuscation"},
	{"domain-shadowing", Unlisted, false, false, false, false, "code not public", "domain shadowing"},
}

// EvaluatedCount reports how many candidates the paper measured.
func EvaluatedCount() int {
	n := 0
	for _, c := range Candidates {
		if c.Evaluated {
			n++
		}
	}
	return n
}
