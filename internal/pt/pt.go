// Package pt defines the pluggable-transport framework of the PTPerf
// reproduction: transport metadata (category, integration set,
// capabilities), the Dialer/Server contract every transport implements,
// and shared wire helpers (record framing, stream ciphers, target
// prologues, splicing).
//
// The twelve transports of the paper live in subpackages; each implements
// the same obfuscation idea and — crucially for performance fidelity —
// the same communication-primitive constraint the paper attributes its
// behaviour to (DNS response caps, IM rate limits, HTTP polling, proxy
// churn, automaton pacing, …).
package pt

import (
	"fmt"
	"net"
)

// Category is the paper's Section 2 taxonomy.
type Category int

// Transport categories.
const (
	// ProxyLayer transports add a proxy layer before Tor (meek,
	// psiphon, conjure, snowflake).
	ProxyLayer Category = iota
	// Tunneling transports encapsulate traffic in another application
	// protocol (dnstt, camoufler, webtunnel).
	Tunneling
	// Mimicry transports disguise traffic as another protocol (cloak,
	// stegotorus, marionette).
	Mimicry
	// FullyEncrypted transports present a uniformly random byte stream
	// (obfs4, shadowsocks).
	FullyEncrypted
)

func (c Category) String() string {
	switch c {
	case ProxyLayer:
		return "proxy-layer"
	case Tunneling:
		return "tunneling"
	case Mimicry:
		return "mimicry"
	case FullyEncrypted:
		return "fully-encrypted"
	default:
		return fmt.Sprintf("category(%d)", int(c))
	}
}

// Set is the paper's Section 4.1 integration taxonomy.
type Set int

// Integration sets.
const (
	// Set1 transports' servers double as the Tor guard (obfs4, meek,
	// conjure, webtunnel, dnstt — dnstt with an extra DoH hop).
	Set1 Set = 1
	// Set2 transports' servers forward to a separate guard chosen by
	// the client (shadowsocks, snowflake, camoufler, stegotorus,
	// psiphon).
	Set2 Set = 2
	// Set3 transports carry application traffic to a PT server that
	// runs the Tor client itself (marionette, cloak).
	Set3 Set = 3
)

// Info is static transport metadata.
type Info struct {
	// Name is the transport's lowercase name as used in the paper.
	Name string
	// Category is the Section 2 class.
	Category Category
	// Set is the Section 4.1 integration set.
	Set Set
	// ParallelStreams reports whether the transport supports several
	// concurrent streams (camoufler does not, which is why the paper
	// could not run selenium over it).
	ParallelStreams bool
	// Hops is the client→website hop count the paper states (3 or 4;
	// dnstt counts 4 due to the DoH resolver).
	Hops int
}

// Dialer opens obfuscated streams to a PT server. The target string is
// delivered to the server's StreamHandler: integration set 2 uses it to
// name the guard to splice to, set 3 the final destination; set 1
// ignores it.
type Dialer interface {
	// Dial opens one stream carrying target to the server.
	Dial(target string) (net.Conn, error)
}

// DialerFunc adapts a function to the Dialer interface.
type DialerFunc func(target string) (net.Conn, error)

// Dial implements Dialer.
func (f DialerFunc) Dial(target string) (net.Conn, error) { return f(target) }

// StreamHandler consumes one unwrapped stream on the server side. It
// owns conn and must close it.
type StreamHandler func(target string, conn net.Conn)

// Server is a running PT server.
type Server interface {
	// Addr returns the server's contact address "host:port".
	Addr() string
	// Close stops the server.
	Close() error
}

// Infos lists the twelve evaluated transports with the paper's metadata.
var Infos = []Info{
	{Name: "obfs4", Category: FullyEncrypted, Set: Set1, ParallelStreams: true, Hops: 3},
	{Name: "meek", Category: ProxyLayer, Set: Set1, ParallelStreams: true, Hops: 3},
	{Name: "conjure", Category: ProxyLayer, Set: Set1, ParallelStreams: true, Hops: 3},
	{Name: "webtunnel", Category: Tunneling, Set: Set1, ParallelStreams: true, Hops: 3},
	{Name: "dnstt", Category: Tunneling, Set: Set1, ParallelStreams: true, Hops: 4},
	{Name: "snowflake", Category: ProxyLayer, Set: Set2, ParallelStreams: true, Hops: 4},
	{Name: "psiphon", Category: ProxyLayer, Set: Set2, ParallelStreams: true, Hops: 4},
	{Name: "shadowsocks", Category: FullyEncrypted, Set: Set2, ParallelStreams: true, Hops: 4},
	{Name: "stegotorus", Category: Mimicry, Set: Set2, ParallelStreams: true, Hops: 4},
	{Name: "camoufler", Category: Tunneling, Set: Set2, ParallelStreams: false, Hops: 4},
	{Name: "cloak", Category: Mimicry, Set: Set3, ParallelStreams: true, Hops: 4},
	{Name: "marionette", Category: Mimicry, Set: Set3, ParallelStreams: true, Hops: 4},
}

// InfoFor returns the metadata for a transport name.
func InfoFor(name string) (Info, bool) {
	for _, i := range Infos {
		if i.Name == name {
			return i, true
		}
	}
	return Info{}, false
}

// Names returns the transport names in evaluation order.
func Names() []string {
	out := make([]string, len(Infos))
	for i, info := range Infos {
		out[i] = info.Name
	}
	return out
}

// ByCategory groups transport names by category.
func ByCategory() map[Category][]string {
	m := make(map[Category][]string)
	for _, i := range Infos {
		m[i.Category] = append(m[i.Category], i.Name)
	}
	return m
}
