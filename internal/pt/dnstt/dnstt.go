// Package dnstt implements the DNS-over-HTTPS tunneling transport. To a
// censor the client talks TLS to a public DoH resolver; in reality each
// DNS query's label bytes carry upstream tunnel data and each response
// carries downstream data. The constraints that the paper identifies as
// dnstt's bottleneck are implemented literally:
//
//   - upstream capacity is one query's worth of encoded labels (~110 B),
//   - downstream capacity is one DNS response, at most 512 B by default,
//   - the client keeps a bounded number of in-flight polls, so the
//     downstream rate is capped at inflight × respCap / RTT,
//   - the resolver rate-limits heavy sessions, which is what makes bulk
//     downloads unreliable (§4.6).
//
// dnstt is integration set 1 with an extra hop: client → recursive
// resolver → dnstt server (authoritative) → Tor, i.e. four hops total.
package dnstt

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net"
	"sync"
	"time"

	"ptperf/internal/netem"
	"ptperf/internal/pt"
)

// Defaults mirroring the real system.
const (
	// DefaultQueryCap is the upstream payload per query (encoded
	// labels of one DNS name).
	DefaultQueryCap = 110
	// DefaultRespCap is the downstream payload per response (the
	// paper's 512-byte DoH response limit).
	DefaultRespCap = 512
	// DefaultInflight is the client's maximum outstanding polls
	// (dnstt's turbotunnel layer keeps a deep window of queries).
	DefaultInflight = 16
	// DefaultBudgetMedian is the median of the lognormal per-session
	// downstream byte budget after which the resolver cuts the session
	// off. Web browsing rarely reaches it within one circuit's
	// lifetime (a cut just forces a fresh circuit), but bulk downloads
	// exhaust it mid-file — the paper's §4.6 failure mode.
	DefaultBudgetMedian = 6 << 20
	// DefaultStaleness is how long the tunnel server keeps a session
	// whose client has stopped querying before reaping it (mirroring
	// meek-server's 120 s). It must comfortably exceed both the
	// client's idle-poll ceiling (~1.5 s) and the worst queueing a live
	// client's queries can suffer behind a censor throttle backlog.
	DefaultStaleness = 120 * time.Second
)

// Config parameterizes the tunnel.
type Config struct {
	// QueryCap overrides DefaultQueryCap.
	QueryCap int
	// RespCap overrides DefaultRespCap.
	RespCap int
	// Inflight overrides DefaultInflight.
	Inflight int
	// BudgetMedian overrides DefaultBudgetMedian; 0 keeps the default,
	// negative disables throttling.
	BudgetMedian int64
	// ResolverDelay is the recursive resolver's per-query processing
	// time.
	ResolverDelay time.Duration
	// Staleness overrides DefaultStaleness.
	Staleness time.Duration
	// Seed drives identifiers and budget draws.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.QueryCap <= 0 {
		c.QueryCap = DefaultQueryCap
	}
	if c.RespCap <= 0 {
		c.RespCap = DefaultRespCap
	}
	if c.Inflight <= 0 {
		c.Inflight = DefaultInflight
	}
	if c.BudgetMedian == 0 {
		c.BudgetMedian = DefaultBudgetMedian
	}
	if c.ResolverDelay <= 0 {
		c.ResolverDelay = 4 * time.Millisecond
	}
	if c.Staleness <= 0 {
		c.Staleness = DefaultStaleness
	}
	return c
}

// Frame layout (shared by the resolver hop and the authoritative hop):
//
//	query:    [2B total len][8B session][4B qseq][data]
//	response: [2B total len][4B rseq][data]        (rseq 0xffffffff = empty poll answer)
const (
	sessionLen = 8
	emptyRseq  = 0xffffffff
	// emptyQseq marks data-less polls, which must not consume upstream
	// sequence numbers.
	emptyQseq = 0xffffffff
)

func writeFrame(w io.Writer, head []byte, data []byte) error {
	buf := make([]byte, 2+len(head)+len(data))
	binary.BigEndian.PutUint16(buf, uint16(len(head)+len(data)))
	copy(buf[2:], head)
	copy(buf[2+len(head):], data)
	_, err := w.Write(buf)
	return err
}

func readFrame(r io.Reader) ([]byte, error) {
	var lenBuf [2]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, err
	}
	n := int(binary.BigEndian.Uint16(lenBuf[:]))
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// Resolver is the recursive DoH resolver hop.
type Resolver struct {
	cfg        Config
	host       *netem.Host
	serverAddr string
	ln         *netem.Listener

	mu       sync.Mutex
	rng      *rand.Rand
	sessions map[string]*sessionMeter
}

// sessionMeter tracks a tunnel session's downstream volume against its
// drawn byte budget.
type sessionMeter struct {
	mu     sync.Mutex
	bytes  int64
	budget int64
}

// StartResolver runs a DoH resolver on host:port forwarding tunnel
// queries to the authoritative dnstt server at serverAddr.
func StartResolver(host *netem.Host, port int, cfg Config, serverAddr string) (*Resolver, error) {
	ln, err := host.Listen(port)
	if err != nil {
		return nil, err
	}
	r := &Resolver{
		cfg:        cfg.withDefaults(),
		host:       host,
		serverAddr: serverAddr,
		ln:         ln,
		rng:        rand.New(rand.NewSource(cfg.Seed + 29)),
		sessions:   make(map[string]*sessionMeter),
	}
	host.Network().Go(r.acceptLoop)
	return r, nil
}

// Addr returns the resolver's contact address.
func (r *Resolver) Addr() string { return r.ln.Addr().String() }

// Close stops the resolver.
func (r *Resolver) Close() error { return r.ln.Close() }

func (r *Resolver) acceptLoop() {
	for {
		c, err := r.ln.Accept()
		if err != nil {
			return
		}
		conn := c
		r.host.Network().Go(func() { r.serveConn(conn) })
	}
}

// meter returns the byte meter for a session, drawing its budget on
// first use.
func (r *Resolver) meter(id string) *sessionMeter {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.sessions[id]
	if m == nil {
		m = &sessionMeter{budget: 1 << 62}
		if r.cfg.BudgetMedian > 0 {
			b := int64(float64(r.cfg.BudgetMedian) * math.Exp(r.rng.NormFloat64()))
			if b < r.cfg.BudgetMedian/8 {
				b = r.cfg.BudgetMedian / 8
			}
			m.budget = b
		}
		r.sessions[id] = m
	}
	return m
}

// serveConn handles one client poll pipeline: query in, response out.
// Each pipeline holds its own upstream connection so the client's
// in-flight polls proceed in parallel, as independent DNS queries would.
func (r *Resolver) serveConn(c net.Conn) {
	defer c.Close()
	clock := r.host.Network().Clock()
	var up net.Conn
	defer func() {
		if up != nil {
			up.Close()
		}
	}()
	for {
		q, err := readFrame(c)
		if err != nil {
			return
		}
		if len(q) < sessionLen+4 {
			return
		}
		m := r.meter(string(q[:sessionLen]))
		// Recursive resolution work per query.
		clock.Sleep(r.cfg.ResolverDelay)

		m.mu.Lock()
		over := m.bytes > m.budget
		m.mu.Unlock()
		if over {
			// The resolver cuts the heavy session off: every pipeline
			// of the session dies, the tunnel collapses, and the
			// client has to build a fresh circuit (new session).
			return
		}
		if up == nil {
			up, err = r.host.Dial(r.serverAddr)
			if err != nil {
				return
			}
		}
		if err := writeFrame(up, nil, q); err != nil {
			return
		}
		resp, err := readFrame(up)
		if err != nil {
			return
		}
		m.mu.Lock()
		m.bytes += int64(len(resp))
		m.mu.Unlock()
		if _, err := c.Write(appendLen(resp)); err != nil {
			return
		}
	}
}

func appendLen(frame []byte) []byte {
	out := make([]byte, 2+len(frame))
	binary.BigEndian.PutUint16(out, uint16(len(frame)))
	copy(out[2:], frame)
	return out
}

// Server is the authoritative dnstt endpoint, co-located with the guard.
type Server struct {
	cfg    Config
	ln     *netem.Listener
	clock  *netem.Clock
	handle pt.StreamHandler

	mu       sync.Mutex
	sessions map[string]*serverSession
}

// StartServer runs the dnstt server on host:port.
func StartServer(host *netem.Host, port int, cfg Config, handle pt.StreamHandler) (*Server, error) {
	ln, err := host.Listen(port)
	if err != nil {
		return nil, err
	}
	s := &Server{cfg: cfg.withDefaults(), ln: ln, clock: host.Network().Clock(), handle: handle, sessions: make(map[string]*serverSession)}
	s.clock.Go(s.acceptLoop)
	return s, nil
}

// Addr returns the server's contact address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server.
func (s *Server) Close() error { return s.ln.Close() }

func (s *Server) acceptLoop() {
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return
		}
		conn := c
		s.clock.Go(func() { s.serveResolverConn(conn) })
	}
}

// serverSession reassembles one client's tunnel.
type serverSession struct {
	srv *Server

	mu      sync.Mutex
	cond    *netem.Cond
	upNext  uint32
	upHeld  map[uint32][]byte
	upBuf   []byte
	downBuf []byte
	rseq    uint32
	// lastSeen is the virtual time of the latest query; the reaper cuts
	// sessions whose client stopped querying.
	lastSeen time.Duration
	closed   bool
}

func (s *Server) session(id string) *serverSession {
	s.mu.Lock()
	defer s.mu.Unlock()
	if ss := s.sessions[id]; ss != nil {
		return ss
	}
	ss := &serverSession{srv: s, upHeld: make(map[uint32][]byte), lastSeen: s.clock.Now()}
	ss.cond = netem.NewCond(s.clock, &ss.mu)
	s.sessions[id] = ss
	// The handler sees an ordinary stream; dnstt framing hides behind it.
	s.clock.Go(func() {
		conn := &sessionConn{ss: ss}
		target, err := pt.ReadTarget(conn)
		if err != nil {
			conn.Close()
			return
		}
		s.handle(target, conn)
	})
	s.clock.Go(func() { s.reapWhenStale(ss) })
	return ss
}

// reapWhenStale cuts a session once its client has stopped querying for
// a full staleness window, like dnstt's turbotunnel sessions expiring.
// The EOF tears the spliced server-side chain down; without it a client
// that vanishes leaks the whole chain forever.
func (s *Server) reapWhenStale(ss *serverSession) {
	for {
		s.clock.Sleep(s.cfg.Staleness)
		ss.mu.Lock()
		if ss.closed {
			ss.mu.Unlock()
			return
		}
		if s.clock.Now()-ss.lastSeen >= s.cfg.Staleness {
			ss.closed = true
			ss.cond.Broadcast()
			ss.mu.Unlock()
			return
		}
		ss.mu.Unlock()
	}
}

// serveResolverConn processes the per-session query pipe from the
// resolver.
func (s *Server) serveResolverConn(c net.Conn) {
	defer c.Close()
	for {
		q, err := readFrame(c)
		if err != nil {
			return
		}
		if len(q) < sessionLen+4 {
			return
		}
		sid := string(q[:sessionLen])
		qseq := binary.BigEndian.Uint32(q[sessionLen : sessionLen+4])
		data := q[sessionLen+4:]
		ss := s.session(sid)
		ss.mu.Lock()
		ss.lastSeen = s.clock.Now()
		ss.mu.Unlock()
		ss.acceptUpstream(qseq, data)

		// Answer with up to RespCap downstream bytes.
		chunk, rseq := ss.takeDownstream(s.cfg.RespCap)
		head := make([]byte, 4)
		binary.BigEndian.PutUint32(head, rseq)
		if err := writeFrame(c, head, chunk); err != nil {
			return
		}
	}
}

// acceptUpstream reorders query payloads into the upstream byte stream.
func (ss *serverSession) acceptUpstream(qseq uint32, data []byte) {
	if qseq == emptyQseq {
		return
	}
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if ss.closed {
		// A straggler query after the session was reaped or closed:
		// nobody will ever read these buffers, so do not grow them.
		return
	}
	if len(data) > 0 {
		if qseq == ss.upNext {
			ss.upBuf = append(ss.upBuf, data...)
			ss.upNext++
			for {
				held, ok := ss.upHeld[ss.upNext]
				if !ok {
					break
				}
				delete(ss.upHeld, ss.upNext)
				ss.upBuf = append(ss.upBuf, held...)
				ss.upNext++
			}
			ss.cond.Broadcast()
		} else if qseq > ss.upNext {
			ss.upHeld[qseq] = append([]byte(nil), data...)
		}
	}
}

// takeDownstream pops at most capBytes from the downstream queue.
func (ss *serverSession) takeDownstream(capBytes int) ([]byte, uint32) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if len(ss.downBuf) == 0 {
		return nil, emptyRseq
	}
	n := len(ss.downBuf)
	if n > capBytes {
		n = capBytes
	}
	chunk := append([]byte(nil), ss.downBuf[:n]...)
	ss.downBuf = ss.downBuf[n:]
	rseq := ss.rseq
	ss.rseq++
	ss.cond.Broadcast()
	return chunk, rseq
}

// sessionConn is the handler-facing stream of one server session.
type sessionConn struct{ ss *serverSession }

// Read pulls reassembled upstream bytes.
func (c *sessionConn) Read(p []byte) (int, error) {
	ss := c.ss
	ss.mu.Lock()
	defer ss.mu.Unlock()
	for len(ss.upBuf) == 0 && !ss.closed {
		ss.cond.Wait()
	}
	if ss.closed {
		return 0, io.EOF
	}
	n := copy(p, ss.upBuf)
	ss.upBuf = ss.upBuf[n:]
	return n, nil
}

// Write queues downstream bytes, bounded so the tunnel applies
// backpressure at roughly one window of responses.
func (c *sessionConn) Write(p []byte) (int, error) {
	ss := c.ss
	maxQueue := 64 << 10
	written := 0
	ss.mu.Lock()
	defer ss.mu.Unlock()
	for len(p) > 0 {
		if ss.closed {
			return written, errors.New("dnstt: session closed")
		}
		for len(ss.downBuf) >= maxQueue && !ss.closed {
			ss.cond.Wait()
		}
		if ss.closed {
			return written, errors.New("dnstt: session closed")
		}
		room := maxQueue - len(ss.downBuf)
		n := len(p)
		if n > room {
			n = room
		}
		ss.downBuf = append(ss.downBuf, p[:n]...)
		written += n
		p = p[n:]
	}
	return written, nil
}

// Close marks the session dead.
func (c *sessionConn) Close() error {
	c.ss.mu.Lock()
	c.ss.closed = true
	c.ss.cond.Broadcast()
	c.ss.mu.Unlock()
	return nil
}

// LocalAddr implements net.Conn.
func (c *sessionConn) LocalAddr() net.Addr { return dnsAddr("dnstt-server") }

// RemoteAddr implements net.Conn.
func (c *sessionConn) RemoteAddr() net.Addr { return dnsAddr("dnstt-client") }

// SetDeadline implements net.Conn (unsupported; polls pace the tunnel).
func (c *sessionConn) SetDeadline(time.Time) error { return nil }

// SetReadDeadline implements net.Conn.
func (c *sessionConn) SetReadDeadline(time.Time) error { return nil }

// SetWriteDeadline implements net.Conn.
func (c *sessionConn) SetWriteDeadline(time.Time) error { return nil }

type dnsAddr string

func (dnsAddr) Network() string  { return "dns" }
func (a dnsAddr) String() string { return string(a) }

// Dialer is the dnstt client.
type Dialer struct {
	cfg          Config
	host         *netem.Host
	resolverAddr string

	mu   sync.Mutex
	next int64
}

// NewDialer returns a dnstt client that tunnels through the resolver.
func NewDialer(host *netem.Host, resolverAddr string, cfg Config) *Dialer {
	return &Dialer{cfg: cfg.withDefaults(), host: host, resolverAddr: resolverAddr, next: cfg.Seed}
}

// Dial implements pt.Dialer.
func (d *Dialer) Dial(target string) (net.Conn, error) {
	d.mu.Lock()
	d.next++
	sid := make([]byte, sessionLen)
	binary.BigEndian.PutUint64(sid, uint64(d.next)*2654435761)
	d.mu.Unlock()

	// Open the poll pipelines up front; each is one "DoH connection".
	conns := make([]net.Conn, 0, d.cfg.Inflight)
	for i := 0; i < d.cfg.Inflight; i++ {
		c, err := d.host.Dial(d.resolverAddr)
		if err != nil {
			for _, cc := range conns {
				cc.Close()
			}
			return nil, fmt.Errorf("dnstt: resolver unreachable: %w", err)
		}
		conns = append(conns, c)
	}
	t := &tunnelConn{
		cfg:   d.cfg,
		clock: d.host.Network().Clock(),
		sid:   sid,
		conns: conns,
		held:  make(map[uint32][]byte),
	}
	t.cond = netem.NewCond(t.clock, &t.mu)
	for _, c := range conns {
		conn := c
		t.clock.Go(func() { t.pollLoop(conn) })
	}
	if err := pt.WriteTarget(t, target); err != nil {
		t.Close()
		return nil, err
	}
	return t, nil
}

// tunnelConn is the client-side stream over the poll pipelines.
type tunnelConn struct {
	cfg   Config
	clock *netem.Clock
	sid   []byte
	conns []net.Conn

	mu      sync.Mutex
	cond    *netem.Cond
	upBuf   []byte
	qseq    uint32
	downBuf []byte
	rnext   uint32
	held    map[uint32][]byte
	closed  bool
	rdl     time.Time
}

// pollLoop drives one pipeline: send a query (data or empty poll), read
// the response, deliver, pace.
func (t *tunnelConn) pollLoop(c net.Conn) {
	defer c.Close()
	idlePoll := 50 * time.Millisecond
	for {
		data, qseq, hasData := t.takeUpstream()
		if t.isClosed() {
			return
		}
		head := make([]byte, sessionLen+4)
		copy(head, t.sid)
		binary.BigEndian.PutUint32(head[sessionLen:], qseq)
		if err := writeFrame(c, head, data); err != nil {
			t.fail()
			return
		}
		resp, err := readFrame(c)
		if err != nil {
			t.fail()
			return
		}
		if len(resp) < 4 {
			t.fail()
			return
		}
		rseq := binary.BigEndian.Uint32(resp[:4])
		gotData := rseq != emptyRseq && len(resp) > 4
		if gotData {
			t.acceptDownstream(rseq, resp[4:])
		}
		if !hasData && !gotData {
			// Idle: back off, like dnstt's poll pacing.
			t.clock.Sleep(idlePoll)
			if idlePoll < time.Second {
				idlePoll += idlePoll / 2
			}
		} else {
			idlePoll = 50 * time.Millisecond
		}
	}
}

// takeUpstream pops up to QueryCap pending upstream bytes.
func (t *tunnelConn) takeUpstream() ([]byte, uint32, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, 0, false
	}
	if len(t.upBuf) == 0 {
		return nil, emptyQseq, false
	}
	n := len(t.upBuf)
	if n > t.cfg.QueryCap {
		n = t.cfg.QueryCap
	}
	data := append([]byte(nil), t.upBuf[:n]...)
	t.upBuf = t.upBuf[n:]
	q := t.qseq
	t.qseq++
	t.cond.Broadcast()
	return data, q, true
}

// acceptDownstream reorders response payloads into the read buffer.
func (t *tunnelConn) acceptDownstream(rseq uint32, data []byte) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if rseq == t.rnext {
		t.downBuf = append(t.downBuf, data...)
		t.rnext++
		for {
			held, ok := t.held[t.rnext]
			if !ok {
				break
			}
			delete(t.held, t.rnext)
			t.downBuf = append(t.downBuf, held...)
			t.rnext++
		}
		t.cond.Broadcast()
	} else if rseq > t.rnext {
		t.held[rseq] = append([]byte(nil), data...)
	}
}

func (t *tunnelConn) isClosed() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.closed
}

func (t *tunnelConn) fail() {
	t.mu.Lock()
	t.closed = true
	t.cond.Broadcast()
	t.mu.Unlock()
}

// Read implements net.Conn.
func (t *tunnelConn) Read(p []byte) (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for len(t.downBuf) == 0 {
		if t.closed {
			return 0, io.EOF
		}
		if t.clock.Expired(t.rdl) {
			return 0, errTunnelTimeout
		}
		t.cond.WaitDeadline(t.rdl)
	}
	n := copy(p, t.downBuf)
	t.downBuf = t.downBuf[n:]
	return n, nil
}

// Write implements net.Conn: bytes queue for the poll loops, with a
// bounded buffer supplying backpressure.
func (t *tunnelConn) Write(p []byte) (int, error) {
	const maxQueue = 32 << 10
	written := 0
	t.mu.Lock()
	defer t.mu.Unlock()
	for len(p) > 0 {
		if t.closed {
			return written, errors.New("dnstt: tunnel closed")
		}
		for len(t.upBuf) >= maxQueue && !t.closed {
			t.cond.Wait()
		}
		if t.closed {
			return written, errors.New("dnstt: tunnel closed")
		}
		room := maxQueue - len(t.upBuf)
		n := len(p)
		if n > room {
			n = room
		}
		t.upBuf = append(t.upBuf, p[:n]...)
		written += n
		p = p[n:]
	}
	return written, nil
}

// Close implements net.Conn.
func (t *tunnelConn) Close() error {
	t.fail()
	return nil
}

// LocalAddr implements net.Conn.
func (t *tunnelConn) LocalAddr() net.Addr { return dnsAddr("dnstt-client") }

// RemoteAddr implements net.Conn.
func (t *tunnelConn) RemoteAddr() net.Addr { return dnsAddr("dnstt-tunnel") }

// SetDeadline implements net.Conn.
func (t *tunnelConn) SetDeadline(dl time.Time) error { return t.SetReadDeadline(dl) }

// SetReadDeadline implements net.Conn.
func (t *tunnelConn) SetReadDeadline(dl time.Time) error {
	t.mu.Lock()
	t.rdl = dl
	t.cond.Broadcast()
	t.mu.Unlock()
	return nil
}

// SetWriteDeadline implements net.Conn as a no-op.
func (t *tunnelConn) SetWriteDeadline(time.Time) error { return nil }

type tunnelTimeout struct{}

func (tunnelTimeout) Error() string   { return "dnstt: i/o timeout" }
func (tunnelTimeout) Timeout() bool   { return true }
func (tunnelTimeout) Temporary() bool { return true }

var errTunnelTimeout = tunnelTimeout{}
