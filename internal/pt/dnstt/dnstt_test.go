package dnstt

import (
	"bytes"
	"testing"
	"testing/quick"

	"ptperf/internal/netem"
)

func TestFrameRoundTrip(t *testing.T) {
	f := func(head, data []byte) bool {
		if len(head)+len(data) > 60000 {
			return true
		}
		var buf bytes.Buffer
		if err := writeFrame(&buf, head, data); err != nil {
			return false
		}
		got, err := readFrame(&buf)
		if err != nil {
			return false
		}
		want := append(append([]byte{}, head...), data...)
		return bytes.Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.QueryCap != DefaultQueryCap || c.RespCap != DefaultRespCap ||
		c.Inflight != DefaultInflight || c.BudgetMedian != DefaultBudgetMedian {
		t.Fatalf("defaults: %+v", c)
	}
	if c2 := (Config{BudgetMedian: -5}).withDefaults(); c2.BudgetMedian != -5 {
		t.Fatal("negative budget must survive defaulting")
	}
}

func TestServerSessionReassembly(t *testing.T) {
	ss := &serverSession{upHeld: make(map[uint32][]byte)}
	ss.cond = netem.NewCond(netem.NewClock(0), &ss.mu)
	ss.acceptUpstream(1, []byte("BB"))
	ss.acceptUpstream(0, []byte("AA"))
	ss.acceptUpstream(2, []byte("CC"))
	if string(ss.upBuf) != "AABBCC" {
		t.Fatalf("reassembly: %q", ss.upBuf)
	}
	// Empty-poll sentinel must not block the sequence.
	ss.acceptUpstream(emptyQseq, nil)
	ss.acceptUpstream(3, []byte("DD"))
	if string(ss.upBuf) != "AABBCCDD" {
		t.Fatalf("after empty poll: %q", ss.upBuf)
	}
}

func TestTakeDownstreamRespectsCap(t *testing.T) {
	ss := &serverSession{upHeld: make(map[uint32][]byte)}
	ss.cond = netem.NewCond(netem.NewClock(0), &ss.mu)
	ss.downBuf = bytes.Repeat([]byte{1}, 1500)
	chunk, rseq := ss.takeDownstream(512)
	if len(chunk) != 512 || rseq != 0 {
		t.Fatalf("chunk=%d rseq=%d", len(chunk), rseq)
	}
	chunk, rseq = ss.takeDownstream(512)
	if len(chunk) != 512 || rseq != 1 {
		t.Fatalf("second chunk=%d rseq=%d", len(chunk), rseq)
	}
	chunk, rseq = ss.takeDownstream(512)
	if len(chunk) != 476 || rseq != 2 {
		t.Fatalf("tail chunk=%d rseq=%d", len(chunk), rseq)
	}
	if chunk, rseq = ss.takeDownstream(512); chunk != nil || rseq != emptyRseq {
		t.Fatal("empty queue must answer the empty sentinel")
	}
}

func TestClientReorder(t *testing.T) {
	tc := &tunnelConn{held: make(map[uint32][]byte)}
	tc.cond = netem.NewCond(netem.NewClock(0), &tc.mu)
	tc.acceptDownstream(1, []byte("bb"))
	tc.acceptDownstream(0, []byte("aa"))
	if string(tc.downBuf) != "aabb" {
		t.Fatalf("reorder: %q", tc.downBuf)
	}
	tc.acceptDownstream(0, []byte("zz")) // stale duplicate ignored
	if string(tc.downBuf) != "aabb" {
		t.Fatalf("duplicate accepted: %q", tc.downBuf)
	}
}
