package marionette

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestFrameRoundTrip(t *testing.T) {
	f := func(cover string, payload []byte) bool {
		if len(cover) > 60000 || len(payload) > 60000 {
			return true
		}
		var buf bytes.Buffer
		if err := writeFrame(&buf, cover, payload); err != nil {
			return false
		}
		gotCover, gotPayload, fin, err := readFrame(&buf)
		if err != nil || fin {
			return false
		}
		return gotCover == cover && bytes.Equal(gotPayload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFinFrame(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFin(&buf); err != nil {
		t.Fatal(err)
	}
	cover, payload, fin, err := readFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !fin || payload != nil {
		t.Fatalf("fin=%v payload=%v", fin, payload)
	}
	if cover != "QUIT\r\n" {
		t.Fatalf("fin cover = %q", cover)
	}
}

func TestModelValidation(t *testing.T) {
	cases := map[string]*Model{
		"no start": {Data: "d", States: map[string][]Transition{"d": {{To: "d", Weight: 1}}}},
		"missing start state": {Start: "s", Data: "d", States: map[string][]Transition{
			"d": {{To: "d", Weight: 1}},
		}},
		"bad weight": {Start: "s", Data: "s", States: map[string][]Transition{
			"s": {{To: "s", Weight: 0}},
		}},
		"dangling target": {Start: "s", Data: "s", States: map[string][]Transition{
			"s": {{To: "nowhere", Weight: 1}},
		}},
	}
	for name, m := range cases {
		if err := m.Validate(); err == nil {
			t.Errorf("%s: expected validation failure", name)
		}
	}
	if err := FTP().Validate(); err != nil {
		t.Fatalf("FTP model invalid: %v", err)
	}
}

func TestFTPWithCapacity(t *testing.T) {
	m := FTPWithCapacity(64)
	found := false
	for _, tr := range m.States[m.Data] {
		if tr.Act.Capacity == 64 {
			found = true
		}
		if tr.Act.Capacity > 64 {
			t.Fatalf("capacity leak: %d", tr.Act.Capacity)
		}
	}
	if !found {
		t.Fatal("no data transition with the requested capacity")
	}
	if m2 := FTPWithCapacity(0); m2.States[m2.Data][0].Act.Capacity != DefaultCapacity {
		t.Fatal("zero capacity must fall back to the default")
	}
}

func TestPickRespectsWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ts := []Transition{
		{To: "a", Weight: 0.9},
		{To: "b", Weight: 0.1},
	}
	counts := map[string]int{}
	for i := 0; i < 5000; i++ {
		counts[pick(rng, ts).To]++
	}
	if counts["a"] < 5*counts["b"] {
		t.Fatalf("weighting off: %v", counts)
	}
}

func TestModelStationaryThroughputBound(t *testing.T) {
	// The FTP model's data loop can carry at most capacity bytes per
	// min-delay transition: verify the advertised pacing is what makes
	// marionette slow.
	m := FTP()
	var bestRate float64
	for _, tr := range m.States[m.Data] {
		if tr.Act.Capacity == 0 {
			continue
		}
		rate := float64(tr.Act.Capacity) / tr.MinDelay.Seconds()
		if rate > bestRate {
			bestRate = rate
		}
	}
	if bestRate > 64<<10 {
		t.Fatalf("data loop too fast (%.0f B/s) to reproduce the paper's marionette", bestRate)
	}
	if bestRate < 1<<10 {
		t.Fatalf("data loop too slow (%.0f B/s) to ever finish a page", bestRate)
	}
	_ = time.Second
}
