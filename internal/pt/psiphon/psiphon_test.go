package psiphon

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestPacketMACDeterministic(t *testing.T) {
	key := []byte("k")
	a := packetMAC(key, 1, []byte("payload"))
	b := packetMAC(key, 1, []byte("payload"))
	if !bytes.Equal(a, b) {
		t.Fatal("MAC must be deterministic")
	}
	if bytes.Equal(a, packetMAC(key, 2, []byte("payload"))) {
		t.Fatal("MAC must bind the sequence number")
	}
	if bytes.Equal(a, packetMAC([]byte("other"), 1, []byte("payload"))) {
		t.Fatal("MAC must bind the key")
	}
	if len(a) != macLen {
		t.Fatalf("MAC length %d", len(a))
	}
}

func TestDirectionKeysMirror(t *testing.T) {
	secret := []byte("shared")
	cs, cr := directionKeys(secret, true)
	ss, sr := directionKeys(secret, false)
	if !bytes.Equal(cs, sr) || !bytes.Equal(cr, ss) {
		t.Fatal("client send must equal server recv and vice versa")
	}
	if bytes.Equal(cs, cr) {
		t.Fatal("directions must use distinct keys")
	}
}

func TestDirectionKeysVaryWithSecret(t *testing.T) {
	f := func(a, b []byte) bool {
		if bytes.Equal(a, b) {
			return true
		}
		sa, _ := directionKeys(a, true)
		sb, _ := directionKeys(b, true)
		return !bytes.Equal(sa, sb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
