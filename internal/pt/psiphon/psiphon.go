// Package psiphon implements the proxy-layer transport built on an SSH
// tunnel: the client authenticates the server with a pre-shared host
// key, runs an SSH-style version and key exchange (two round trips), and
// then carries traffic in binary packets with per-packet MACs — the
// default psiphon configuration the paper evaluates.
//
// psiphon is an integration-set-2 transport.
package psiphon

import (
	"bytes"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"

	"ptperf/internal/netem"
	"ptperf/internal/pt"
)

const macLen = 16

// Errors reported by the handshake and packet layer.
var (
	// ErrVersion reports an unexpected protocol banner.
	ErrVersion = errors.New("psiphon: bad version banner")
	// ErrHostKey reports server authentication failure.
	ErrHostKey = errors.New("psiphon: host key mismatch")
	// ErrMAC reports packet integrity failure.
	ErrMAC = errors.New("psiphon: packet MAC mismatch")
)

var banner = []byte("SSH-2.0-PsiphonTunnel\r\n")

// Config carries the transport parameters.
type Config struct {
	// HostKey is the pre-shared server public key fingerprint.
	HostKey []byte
	// Seed drives key-exchange randomness.
	Seed int64
}

// packetConn frames payloads as [4B len][payload][16B MAC].
type packetConn struct {
	net.Conn
	sendKey, recvKey []byte
	sendSeq, recvSeq uint64

	rmu     sync.Mutex
	wmu     sync.Mutex
	pending []byte
}

func packetMAC(key []byte, seq uint64, payload []byte) []byte {
	mac := hmac.New(sha256.New, key)
	var s [8]byte
	binary.BigEndian.PutUint64(s[:], seq)
	mac.Write(s[:])
	mac.Write(payload)
	return mac.Sum(nil)[:macLen]
}

const maxPacket = 32 << 10

// Write implements net.Conn.
func (c *packetConn) Write(p []byte) (int, error) {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	written := 0
	for len(p) > 0 {
		n := len(p)
		if n > maxPacket {
			n = maxPacket
		}
		pkt := make([]byte, 4+n+macLen)
		binary.BigEndian.PutUint32(pkt, uint32(n))
		copy(pkt[4:], p[:n])
		copy(pkt[4+n:], packetMAC(c.sendKey, c.sendSeq, p[:n]))
		c.sendSeq++
		if _, err := c.Conn.Write(pkt); err != nil {
			return written, err
		}
		written += n
		p = p[n:]
	}
	return written, nil
}

// Read implements net.Conn.
func (c *packetConn) Read(p []byte) (int, error) {
	c.rmu.Lock()
	defer c.rmu.Unlock()
	for len(c.pending) == 0 {
		var head [4]byte
		if _, err := io.ReadFull(c.Conn, head[:]); err != nil {
			return 0, err
		}
		n := int(binary.BigEndian.Uint32(head[:]))
		if n > maxPacket {
			return 0, errors.New("psiphon: oversized packet")
		}
		body := make([]byte, n+macLen)
		if _, err := io.ReadFull(c.Conn, body); err != nil {
			return 0, err
		}
		want := packetMAC(c.recvKey, c.recvSeq, body[:n])
		if !hmac.Equal(want, body[n:]) {
			return 0, ErrMAC
		}
		c.recvSeq++
		c.pending = body[:n]
	}
	n := copy(p, c.pending)
	c.pending = c.pending[n:]
	return n, nil
}

// CloseWrite forwards half close.
func (c *packetConn) CloseWrite() error {
	if hc, ok := c.Conn.(pt.HalfCloser); ok {
		return hc.CloseWrite()
	}
	return c.Conn.Close()
}

func directionKeys(secret []byte, isClient bool) (send, recv []byte) {
	mk := func(label string) []byte {
		h := sha256.New()
		h.Write(secret)
		h.Write([]byte(label))
		return h.Sum(nil)
	}
	c2s, s2c := mk("c2s"), mk("s2c")
	if isClient {
		return c2s, s2c
	}
	return s2c, c2s
}

// clientWrap runs banner exchange + kex (2 RTTs).
func clientWrap(conn net.Conn, cfg Config, seed int64) (net.Conn, error) {
	rng := rand.New(rand.NewSource(seed))
	// RTT 1: version banners.
	if _, err := conn.Write(banner); err != nil {
		return nil, err
	}
	peer := make([]byte, len(banner))
	if _, err := io.ReadFull(conn, peer); err != nil {
		return nil, err
	}
	if !bytes.Equal(peer, banner) {
		return nil, ErrVersion
	}
	// RTT 2: kexinit + host key verification.
	kex := make([]byte, 64)
	for i := range kex {
		kex[i] = byte(rng.Intn(256))
	}
	if _, err := conn.Write(kex); err != nil {
		return nil, err
	}
	reply := make([]byte, 64+sha256.Size)
	if _, err := io.ReadFull(conn, reply); err != nil {
		return nil, err
	}
	serverKex := reply[:64]
	proof := reply[64:]
	mac := hmac.New(sha256.New, cfg.HostKey)
	mac.Write(kex)
	mac.Write(serverKex)
	if !hmac.Equal(mac.Sum(nil), proof) {
		return nil, ErrHostKey
	}
	secret := sha256.Sum256(append(append(append([]byte{}, cfg.HostKey...), kex...), serverKex...))
	send, recv := directionKeys(secret[:], true)
	return &packetConn{Conn: conn, sendKey: send, recvKey: recv}, nil
}

// serverWrap mirrors the client handshake.
func serverWrap(conn net.Conn, cfg Config, seed int64) (net.Conn, error) {
	rng := rand.New(rand.NewSource(seed))
	peer := make([]byte, len(banner))
	if _, err := io.ReadFull(conn, peer); err != nil {
		return nil, err
	}
	if !bytes.Equal(peer, banner) {
		return nil, ErrVersion
	}
	if _, err := conn.Write(banner); err != nil {
		return nil, err
	}
	kex := make([]byte, 64)
	if _, err := io.ReadFull(conn, kex); err != nil {
		return nil, err
	}
	serverKex := make([]byte, 64)
	for i := range serverKex {
		serverKex[i] = byte(rng.Intn(256))
	}
	mac := hmac.New(sha256.New, cfg.HostKey)
	mac.Write(kex)
	mac.Write(serverKex)
	reply := append(append([]byte{}, serverKex...), mac.Sum(nil)...)
	if _, err := conn.Write(reply); err != nil {
		return nil, err
	}
	secret := sha256.Sum256(append(append(append([]byte{}, cfg.HostKey...), kex...), serverKex...))
	send, recv := directionKeys(secret[:], false)
	return &packetConn{Conn: conn, sendKey: send, recvKey: recv}, nil
}

// StartServer runs a psiphon server on host:port.
func StartServer(host *netem.Host, port int, cfg Config, handle pt.StreamHandler) (pt.Server, error) {
	if len(cfg.HostKey) == 0 {
		return nil, errors.New("psiphon: server needs a host key")
	}
	var mu sync.Mutex
	seed := cfg.Seed
	return pt.ListenAndServe(host, port, func(conn net.Conn) (net.Conn, error) {
		mu.Lock()
		seed++
		s := seed
		mu.Unlock()
		return serverWrap(conn, cfg, s)
	}, handle)
}

// NewDialer returns the psiphon client for a server at addr.
func NewDialer(host *netem.Host, addr string, cfg Config) pt.Dialer {
	var mu sync.Mutex
	seed := cfg.Seed + 32452843
	return pt.DialerFunc(func(target string) (net.Conn, error) {
		if len(cfg.HostKey) == 0 {
			return nil, errors.New("psiphon: dialer needs a host key")
		}
		mu.Lock()
		seed++
		s := seed
		mu.Unlock()
		conn, err := pt.DialWrapped(host, addr, func(raw net.Conn) (net.Conn, error) {
			return clientWrap(raw, cfg, s)
		}, target)
		if err != nil {
			return nil, fmt.Errorf("psiphon: %w", err)
		}
		return conn, nil
	})
}
