package conjure

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"

	"ptperf/internal/geo"
	"ptperf/internal/netem"
)

func testNet(t *testing.T) (*netem.Host, *netem.Host, *netem.Host, *netem.Host) {
	t.Helper()
	n := netem.New(netem.WithTimeScale(0.002), netem.WithSeed(33))
	return n.MustAddHost(netem.HostConfig{Name: "client", Location: geo.Toronto}),
		n.MustAddHost(netem.HostConfig{Name: "registrar", Location: geo.Frankfurt}),
		n.MustAddHost(netem.HostConfig{Name: "station", Location: geo.Frankfurt}),
		n.MustAddHost(netem.HostConfig{Name: "bridge", Location: geo.Frankfurt})
}

func TestRegistrationIsSingleUse(t *testing.T) {
	client, reg, station, bridgeHost := testNet(t)
	secret := []byte("s")
	bridge, err := StartBridge(bridgeHost, 4443, Config{Secret: secret}, func(target string, conn net.Conn) {
		defer conn.Close()
		io.Copy(conn, conn)
	})
	if err != nil {
		t.Fatal(err)
	}
	defer bridge.Close()
	inf, err := StartInfra(reg, station, 53000, 443, Config{Secret: secret}, bridge.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer inf.Close()

	d := NewDialer(client, inf.RegistrarAddr(), inf.PhantomAddr(), Config{Secret: secret, Seed: 5})
	c1, err := d.Dial("t:1")
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()

	// Replaying the same nonce against the phantom must be ignored:
	// the station deleted the registration on first use. We simulate a
	// replay by dialing the phantom with a fresh, unregistered nonce.
	raw, err := client.Dial(inf.PhantomAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	raw.Write(make([]byte, nonceLen))
	raw.SetReadDeadline(client.Network().VirtualDeadline(30 * time.Millisecond))
	if _, err := raw.Read(make([]byte, 1)); err == nil {
		t.Fatal("unregistered phantom flow must get nothing")
	}
}

func TestBadRegistrationMACDropped(t *testing.T) {
	client, reg, station, bridgeHost := testNet(t)
	bridge, _ := StartBridge(bridgeHost, 4443, Config{Secret: []byte("s")}, func(string, net.Conn) {})
	defer bridge.Close()
	inf, err := StartInfra(reg, station, 53000, 443, Config{Secret: []byte("s")}, bridge.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer inf.Close()

	// A registrar client with the wrong secret never gets an ack.
	d := NewDialer(client, inf.RegistrarAddr(), inf.PhantomAddr(), Config{Secret: []byte("wrong"), Seed: 6})
	if _, err := d.Dial("t:1"); err == nil {
		t.Fatal("registration with wrong secret must fail")
	}
}

func TestSessionKeyDistinctPerNonce(t *testing.T) {
	s := []byte("secret")
	a := sessionKey(s, bytes.Repeat([]byte{1}, nonceLen))
	b := sessionKey(s, bytes.Repeat([]byte{2}, nonceLen))
	if bytes.Equal(a, b) {
		t.Fatal("session keys must differ per nonce")
	}
}

func TestInfraRequiresSecret(t *testing.T) {
	_, reg, station, _ := testNet(t)
	if _, err := StartInfra(reg, station, 53000, 443, Config{}, "x:1"); err == nil {
		t.Fatal("infra without secret must fail")
	}
}
