// Package conjure implements the refraction-networking transport: the
// client first registers a session with the conjure registrar, then
// connects to a phantom IP in the deploying ISP's unused address space.
// The ISP's station recognizes the registered flow and proxies it to the
// Tor bridge; a censor sees a TLS connection to an address that hosts
// nothing.
//
// The simulation keeps the measurable structure: one registration round
// trip, one phantom dial through the station (an extra forwarding point
// inside the ISP), and an encrypted session bound to the registration.
// conjure is an integration-set-1 transport (bridge = guard).
package conjure

import (
	"crypto/hmac"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"

	"ptperf/internal/netem"
	"ptperf/internal/pt"
)

const nonceLen = 32

// Errors reported by the conjure control plane.
var (
	// ErrNotRegistered means a phantom flow arrived with no matching
	// registration.
	ErrNotRegistered = errors.New("conjure: flow not registered")
	// ErrAuth reports a bad registration MAC.
	ErrAuth = errors.New("conjure: registration authentication failed")
)

// Config carries the transport parameters.
type Config struct {
	// Secret is the shared secret between clients and the station
	// (standing in for the station's public key).
	Secret []byte
	// Seed drives nonce generation.
	Seed int64
}

// Infra is the ISP-side deployment: registrar plus station.
type Infra struct {
	cfg        Config
	bridgeAddr string
	regHost    *netem.Host
	stationHst *netem.Host

	regLn     *netem.Listener
	phantomLn *netem.Listener

	mu         sync.Mutex
	registered map[[nonceLen]byte]bool
}

// StartInfra deploys the registrar on registrarHost:regPort and the
// station's phantom subnet on stationHost:phantomPort. Valid flows are
// proxied to bridgeAddr.
func StartInfra(registrarHost, stationHost *netem.Host, regPort, phantomPort int, cfg Config, bridgeAddr string) (*Infra, error) {
	if len(cfg.Secret) == 0 {
		return nil, errors.New("conjure: infra needs a secret")
	}
	regLn, err := registrarHost.Listen(regPort)
	if err != nil {
		return nil, err
	}
	phantomLn, err := stationHost.Listen(phantomPort)
	if err != nil {
		regLn.Close()
		return nil, err
	}
	inf := &Infra{
		cfg:        cfg,
		bridgeAddr: bridgeAddr,
		regHost:    registrarHost,
		stationHst: stationHost,
		regLn:      regLn,
		phantomLn:  phantomLn,
		registered: make(map[[nonceLen]byte]bool),
	}
	registrarHost.Network().Go(inf.serveRegistrar)
	stationHost.Network().Go(inf.serveStation)
	return inf, nil
}

// RegistrarAddr returns the registrar's contact address.
func (inf *Infra) RegistrarAddr() string { return inf.regLn.Addr().String() }

// PhantomAddr returns the phantom address clients dial.
func (inf *Infra) PhantomAddr() string { return inf.phantomLn.Addr().String() }

// Close stops the infrastructure.
func (inf *Infra) Close() error {
	inf.regLn.Close()
	return inf.phantomLn.Close()
}

func (inf *Infra) mac(nonce []byte) []byte {
	m := hmac.New(sha256.New, inf.cfg.Secret)
	m.Write(nonce)
	return m.Sum(nil)[:16]
}

// serveRegistrar accepts registrations: nonce ‖ MAC → ack.
func (inf *Infra) serveRegistrar() {
	for {
		c, err := inf.regLn.Accept()
		if err != nil {
			return
		}
		conn := c
		inf.regHost.Network().Go(func() {
			c := conn
			defer c.Close()
			msg := make([]byte, nonceLen+16)
			if _, err := io.ReadFull(c, msg); err != nil {
				return
			}
			var nonce [nonceLen]byte
			copy(nonce[:], msg[:nonceLen])
			if !hmac.Equal(inf.mac(nonce[:]), msg[nonceLen:]) {
				return // drop silently, like a real registrar
			}
			inf.mu.Lock()
			inf.registered[nonce] = true
			inf.mu.Unlock()
			c.Write([]byte{0x01}) // ack
		})
	}
}

// serveStation accepts phantom flows, validates their registration and
// splices them to the bridge.
func (inf *Infra) serveStation() {
	for {
		c, err := inf.phantomLn.Accept()
		if err != nil {
			return
		}
		conn := c
		inf.stationHst.Network().Go(func() {
			c := conn
			hello := make([]byte, nonceLen)
			if _, err := io.ReadFull(c, hello); err != nil {
				c.Close()
				return
			}
			var nonce [nonceLen]byte
			copy(nonce[:], hello)
			inf.mu.Lock()
			ok := inf.registered[nonce]
			delete(inf.registered, nonce)
			inf.mu.Unlock()
			if !ok {
				// Unregistered flows to phantom IPs look like scans;
				// the station lets them time out.
				c.Close()
				return
			}
			down, err := inf.stationHst.Dial(inf.bridgeAddr)
			if err != nil {
				c.Close()
				return
			}
			// Forward the nonce so the bridge can derive the session key.
			if _, err := down.Write(nonce[:]); err != nil {
				c.Close()
				down.Close()
				return
			}
			pt.Splice(inf.stationHst.Network().Clock(), c, down)
		})
	}
}

func sessionKey(secret, nonce []byte) []byte {
	h := sha256.New()
	h.Write(secret)
	h.Write(nonce)
	h.Write([]byte("conjure-session"))
	return h.Sum(nil)
}

// StartBridge runs the conjure bridge (the PT server proper, co-located
// with the guard) on host:port.
func StartBridge(host *netem.Host, port int, cfg Config, handle pt.StreamHandler) (pt.Server, error) {
	if len(cfg.Secret) == 0 {
		return nil, errors.New("conjure: bridge needs a secret")
	}
	var mu sync.Mutex
	seed := cfg.Seed
	return pt.ListenAndServe(host, port, func(conn net.Conn) (net.Conn, error) {
		nonce := make([]byte, nonceLen)
		if _, err := io.ReadFull(conn, nonce); err != nil {
			return nil, err
		}
		mu.Lock()
		seed++
		s := seed
		mu.Unlock()
		return pt.NewRecordConn(conn, pt.RecordConfig{
			Key:      sessionKey(cfg.Secret, nonce),
			IsClient: false,
			Header:   []byte{0x17, 0x03, 0x03},
			Seed:     s,
		})
	}, handle)
}

// Dialer is the conjure client.
type Dialer struct {
	host          *netem.Host
	registrarAddr string
	phantomAddr   string
	cfg           Config

	mu   sync.Mutex
	seed int64
}

// NewDialer returns a conjure client using the given infrastructure.
func NewDialer(host *netem.Host, registrarAddr, phantomAddr string, cfg Config) *Dialer {
	return &Dialer{
		host:          host,
		registrarAddr: registrarAddr,
		phantomAddr:   phantomAddr,
		cfg:           cfg,
		seed:          cfg.Seed + 86028157,
	}
}

// Dial implements pt.Dialer: register, dial the phantom, speak the
// encrypted session.
func (d *Dialer) Dial(target string) (net.Conn, error) {
	if len(d.cfg.Secret) == 0 {
		return nil, errors.New("conjure: dialer needs a secret")
	}
	d.mu.Lock()
	d.seed++
	s := d.seed
	d.mu.Unlock()
	rng := rand.New(rand.NewSource(s))
	nonce := make([]byte, nonceLen)
	for i := range nonce {
		nonce[i] = byte(rng.Intn(256))
	}
	mac := hmac.New(sha256.New, d.cfg.Secret)
	mac.Write(nonce)

	// Registration round trip.
	reg, err := d.host.Dial(d.registrarAddr)
	if err != nil {
		return nil, fmt.Errorf("conjure: registrar unreachable: %w", err)
	}
	msg := append(append([]byte{}, nonce...), mac.Sum(nil)[:16]...)
	if _, err := reg.Write(msg); err != nil {
		reg.Close()
		return nil, err
	}
	ack := make([]byte, 1)
	if _, err := io.ReadFull(reg, ack); err != nil {
		reg.Close()
		return nil, fmt.Errorf("conjure: registration rejected: %w", err)
	}
	reg.Close()

	// Phantom dial through the station.
	raw, err := d.host.Dial(d.phantomAddr)
	if err != nil {
		return nil, fmt.Errorf("conjure: phantom unreachable: %w", err)
	}
	if _, err := raw.Write(nonce); err != nil {
		raw.Close()
		return nil, err
	}
	conn, err := pt.NewRecordConn(raw, pt.RecordConfig{
		Key:      sessionKey(d.cfg.Secret, nonce),
		IsClient: true,
		Header:   []byte{0x17, 0x03, 0x03},
		Seed:     s + 1,
	})
	if err != nil {
		raw.Close()
		return nil, err
	}
	if err := pt.WriteTarget(conn, target); err != nil {
		conn.Close()
		return nil, err
	}
	return conn, nil
}
