// Package obfs4 implements the fully-encrypted transport of the paper:
// a scramblesuit descendant whose traffic is indistinguishable from a
// uniformly random byte stream. The simulation keeps obfs4's costs: a
// one-round-trip authenticated handshake with random padding (clients
// hold an out-of-band shared secret, defeating active probing) and a
// length-obfuscated encrypted record stream.
//
// obfs4 is an integration-set-1 transport: its server feeds the
// co-located guard relay directly.
package obfs4

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"

	"ptperf/internal/netem"
	"ptperf/internal/pt"
)

const (
	nonceLen = 32
	macLen   = 16
	// maxHandshakePad mirrors obfs4's randomized handshake length.
	maxHandshakePad = 1024
	// maxRecordPad is the per-record length obfuscation.
	maxRecordPad = 64
)

// ErrAuth reports a failed handshake MAC, i.e. an unauthorized client
// (obfs4's probing resistance).
var ErrAuth = errors.New("obfs4: handshake authentication failed")

// Config carries the transport parameters.
type Config struct {
	// Secret is the out-of-band shared secret from the bridge line.
	Secret []byte
	// Seed drives padding draws.
	Seed int64
}

// handshakeMsg is nonce ‖ MAC(secret, nonce‖role) ‖ padLen ‖ padding.
func writeHandshake(w io.Writer, secret []byte, role byte, rng *rand.Rand) ([]byte, error) {
	nonce := make([]byte, nonceLen)
	for i := range nonce {
		nonce[i] = byte(rng.Intn(256))
	}
	mac := hmac.New(sha256.New, secret)
	mac.Write(nonce)
	mac.Write([]byte{role})
	tag := mac.Sum(nil)[:macLen]

	pad := rng.Intn(maxHandshakePad + 1)
	msg := make([]byte, nonceLen+macLen+2+pad)
	copy(msg, nonce)
	copy(msg[nonceLen:], tag)
	binary.BigEndian.PutUint16(msg[nonceLen+macLen:], uint16(pad))
	for i := 0; i < pad; i++ {
		msg[nonceLen+macLen+2+i] = byte(rng.Intn(256))
	}
	if _, err := w.Write(msg); err != nil {
		return nil, err
	}
	return nonce, nil
}

func readHandshake(r io.Reader, secret []byte, role byte) ([]byte, error) {
	head := make([]byte, nonceLen+macLen+2)
	if _, err := io.ReadFull(r, head); err != nil {
		return nil, err
	}
	nonce := head[:nonceLen]
	mac := hmac.New(sha256.New, secret)
	mac.Write(nonce)
	mac.Write([]byte{role})
	want := mac.Sum(nil)[:macLen]
	if !hmac.Equal(want, head[nonceLen:nonceLen+macLen]) {
		return nil, ErrAuth
	}
	pad := int(binary.BigEndian.Uint16(head[nonceLen+macLen:]))
	if pad > maxHandshakePad {
		return nil, errors.New("obfs4: implausible padding")
	}
	if _, err := io.CopyN(io.Discard, r, int64(pad)); err != nil {
		return nil, err
	}
	return append([]byte(nil), nonce...), nil
}

func sessionKey(secret, clientNonce, serverNonce []byte) []byte {
	h := sha256.New()
	h.Write(secret)
	h.Write(clientNonce)
	h.Write(serverNonce)
	return h.Sum(nil)
}

// clientWrap performs the client handshake and returns the framed conn.
func clientWrap(conn net.Conn, cfg Config, seed int64) (net.Conn, error) {
	rng := rand.New(rand.NewSource(seed))
	nc, err := writeHandshake(conn, cfg.Secret, 'c', rng)
	if err != nil {
		return nil, err
	}
	ns, err := readHandshake(conn, cfg.Secret, 's')
	if err != nil {
		return nil, err
	}
	return pt.NewRecordConn(conn, pt.RecordConfig{
		Key:        sessionKey(cfg.Secret, nc, ns),
		IsClient:   true,
		MaxPadding: maxRecordPad,
		Seed:       seed + 1,
	})
}

// serverWrap performs the server handshake.
func serverWrap(conn net.Conn, cfg Config, seed int64) (net.Conn, error) {
	nc, err := readHandshake(conn, cfg.Secret, 'c')
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	ns, err := writeHandshake(conn, cfg.Secret, 's', rng)
	if err != nil {
		return nil, err
	}
	return pt.NewRecordConn(conn, pt.RecordConfig{
		Key:        sessionKey(cfg.Secret, nc, ns),
		IsClient:   false,
		MaxPadding: maxRecordPad,
		Seed:       seed + 1,
	})
}

// StartServer runs an obfs4 server on host:port, delivering unwrapped
// streams to handle.
func StartServer(host *netem.Host, port int, cfg Config, handle pt.StreamHandler) (pt.Server, error) {
	if len(cfg.Secret) == 0 {
		return nil, errors.New("obfs4: server needs a shared secret")
	}
	var mu sync.Mutex
	seed := cfg.Seed
	next := func() int64 {
		mu.Lock()
		defer mu.Unlock()
		seed++
		return seed
	}
	return pt.ListenAndServe(host, port, func(conn net.Conn) (net.Conn, error) {
		return serverWrap(conn, cfg, next())
	}, handle)
}

// NewDialer returns the obfs4 client for a bridge at addr.
func NewDialer(host *netem.Host, addr string, cfg Config) pt.Dialer {
	var mu sync.Mutex
	seed := cfg.Seed + 7919
	return pt.DialerFunc(func(target string) (net.Conn, error) {
		mu.Lock()
		seed++
		s := seed
		mu.Unlock()
		if len(cfg.Secret) == 0 {
			return nil, errors.New("obfs4: dialer needs a shared secret")
		}
		conn, err := pt.DialWrapped(host, addr, func(raw net.Conn) (net.Conn, error) {
			return clientWrap(raw, cfg, s)
		}, target)
		if err != nil {
			return nil, fmt.Errorf("obfs4: %w", err)
		}
		return conn, nil
	})
}
