package obfs4

import (
	"bytes"
	"math/rand"
	"net"
	"testing"
)

func TestHandshakeMessageRoundTrip(t *testing.T) {
	secret := []byte("bridge-secret")
	rng := rand.New(rand.NewSource(1))
	var buf bytes.Buffer
	sent, err := writeHandshake(&buf, secret, 'c', rng)
	if err != nil {
		t.Fatal(err)
	}
	got, err := readHandshake(&buf, secret, 'c')
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sent, got) {
		t.Fatal("nonce mismatch")
	}
}

func TestHandshakeRoleConfusionRejected(t *testing.T) {
	secret := []byte("s")
	rng := rand.New(rand.NewSource(2))
	var buf bytes.Buffer
	if _, err := writeHandshake(&buf, secret, 'c', rng); err != nil {
		t.Fatal(err)
	}
	// Reading a client message as a server message must fail: the MAC
	// binds the role, preventing reflection attacks.
	if _, err := readHandshake(&buf, secret, 's'); err != ErrAuth {
		t.Fatalf("want ErrAuth, got %v", err)
	}
}

func TestHandshakeWrongSecretRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var buf bytes.Buffer
	if _, err := writeHandshake(&buf, []byte("right"), 'c', rng); err != nil {
		t.Fatal(err)
	}
	if _, err := readHandshake(&buf, []byte("wrong"), 'c'); err != ErrAuth {
		t.Fatalf("want ErrAuth, got %v", err)
	}
}

func TestHandshakePaddingVaries(t *testing.T) {
	secret := []byte("s")
	rng := rand.New(rand.NewSource(4))
	sizes := map[int]bool{}
	for i := 0; i < 20; i++ {
		var buf bytes.Buffer
		if _, err := writeHandshake(&buf, secret, 'c', rng); err != nil {
			t.Fatal(err)
		}
		sizes[buf.Len()] = true
	}
	if len(sizes) < 5 {
		t.Fatalf("handshake length should be randomized, got %d distinct sizes", len(sizes))
	}
}

func TestSessionKeyBindsBothNonces(t *testing.T) {
	s := []byte("secret")
	a := sessionKey(s, []byte("n1"), []byte("n2"))
	b := sessionKey(s, []byte("n1"), []byte("n3"))
	c := sessionKey(s, []byte("n0"), []byte("n2"))
	if bytes.Equal(a, b) || bytes.Equal(a, c) {
		t.Fatal("session key must depend on both nonces")
	}
}

func TestWireIsNotPlaintext(t *testing.T) {
	// A fully-encrypted transport must not leak payload bytes.
	a, b := net.Pipe()
	captured := &bytes.Buffer{}
	tap, peer := net.Pipe()
	go func() {
		buf := make([]byte, 4096)
		for {
			n, err := tap.Read(buf)
			if n > 0 {
				captured.Write(buf[:n])
				b.Write(buf[:n])
			}
			if err != nil {
				return
			}
		}
	}()
	go pump(tap, b)

	secret := []byte("k")
	done := make(chan struct{})
	go func() {
		defer close(done)
		sc, err := serverWrap(a, Config{Secret: secret}, 9)
		if err != nil {
			return
		}
		buf := make([]byte, 32)
		sc.Read(buf)
	}()
	cc, err := clientWrap(peer, Config{Secret: secret}, 8)
	if err != nil {
		t.Fatal(err)
	}
	marker := []byte("THE-FORBIDDEN-PLAINTEXT-MARKER")
	cc.Write(marker)
	<-done
	if bytes.Contains(captured.Bytes(), marker) {
		t.Fatal("payload visible on the wire")
	}
}

// pump splices one direction between two conns.
func pump(dst, src net.Conn) {
	buf := make([]byte, 4096)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			if _, werr := dst.Write(buf[:n]); werr != nil {
				return
			}
		}
		if err != nil {
			return
		}
	}
}
