// Package meek implements the domain-fronted HTTP polling transport.
// The client sends HTTPS POSTs whose outer SNI names the CDN front
// domain while the request inside is routed to the meek bridge; tunnel
// bytes ride in POST bodies and responses. The cost structure the paper
// measures is kept:
//
//   - every byte pays a store-and-forward hop through the CDN front,
//   - the tunnel advances only at poll cadence — an idle client backs
//     off its polling, so TTFB and interactive latency are high,
//   - the public bridge is rate-limited by its maintainer, and
//   - long sessions exhaust a bridge byte budget and are cut, which is
//     why the paper could almost never pull a complete bulk file
//     through meek (§4.6).
//
// meek is an integration-set-1 transport (bridge = guard).
package meek

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net"
	"sync"
	"time"

	"ptperf/internal/netem"
	"ptperf/internal/pt"
)

// Defaults for the polling and policy model.
const (
	// DefaultChunk is the maximum body per POST or response.
	DefaultChunk = 64 << 10
	// DefaultMinPoll is the immediate re-poll interval when the tunnel
	// is active.
	DefaultMinPoll = 20 * time.Millisecond
	// DefaultMaxPoll is the idle back-off ceiling.
	DefaultMaxPoll = 5 * time.Second
	// DefaultFrontDelay is the CDN's per-request processing time.
	DefaultFrontDelay = 15 * time.Millisecond
	// DefaultBridgeRate is the bridge maintainer's rate limit in bytes
	// per virtual second.
	DefaultBridgeRate = 1 << 20
	// DefaultSessionBudgetMedian is the median of the lognormal bridge
	// byte budget after which a session is cut.
	DefaultSessionBudgetMedian = 3 << 20
	// DefaultStaleness is how long the bridge keeps a session that has
	// stopped polling before reaping it — meek-server's 120 s session
	// staleness. It must comfortably exceed not just MaxPoll but the
	// worst queueing a live client's polls can suffer behind a censor
	// throttle backlog, or working-but-throttled tunnels get reaped
	// mid-transfer.
	DefaultStaleness = 120 * time.Second
)

// Config parameterizes meek.
type Config struct {
	// Chunk overrides DefaultChunk.
	Chunk int
	// MinPoll / MaxPoll override the polling cadence.
	MinPoll, MaxPoll time.Duration
	// FrontDelay overrides DefaultFrontDelay.
	FrontDelay time.Duration
	// BridgeRate overrides DefaultBridgeRate (bytes per virtual second).
	BridgeRate float64
	// SessionBudgetMedian overrides DefaultSessionBudgetMedian;
	// negative disables the budget.
	SessionBudgetMedian int64
	// Staleness overrides DefaultStaleness.
	Staleness time.Duration
	// Seed drives randomized budgets.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Chunk <= 0 {
		c.Chunk = DefaultChunk
	}
	if c.MinPoll <= 0 {
		c.MinPoll = DefaultMinPoll
	}
	if c.MaxPoll <= 0 {
		c.MaxPoll = DefaultMaxPoll
	}
	if c.FrontDelay <= 0 {
		c.FrontDelay = DefaultFrontDelay
	}
	if c.BridgeRate <= 0 {
		c.BridgeRate = DefaultBridgeRate
	}
	if c.SessionBudgetMedian == 0 {
		c.SessionBudgetMedian = DefaultSessionBudgetMedian
	}
	if c.Staleness <= 0 {
		c.Staleness = DefaultStaleness
	}
	return c
}

// Poll frame between client and front, and front and bridge:
//
//	request:  [8B session][4B len][body]
//	response: [1B status][4B len][body]      status 0 = OK, 1 = session gone
const (
	statusOK   = 0
	statusGone = 1
)

func writePoll(w io.Writer, sid uint64, body []byte) error {
	buf := make([]byte, 12+len(body))
	binary.BigEndian.PutUint64(buf, sid)
	binary.BigEndian.PutUint32(buf[8:], uint32(len(body)))
	copy(buf[12:], body)
	_, err := w.Write(buf)
	return err
}

func readPoll(r io.Reader) (uint64, []byte, error) {
	var head [12]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		return 0, nil, err
	}
	sid := binary.BigEndian.Uint64(head[:8])
	n := binary.BigEndian.Uint32(head[8:])
	if n > 1<<24 {
		return 0, nil, errors.New("meek: oversized poll")
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, err
	}
	return sid, body, nil
}

func writeReply(w io.Writer, status byte, body []byte) error {
	buf := make([]byte, 5+len(body))
	buf[0] = status
	binary.BigEndian.PutUint32(buf[1:], uint32(len(body)))
	copy(buf[5:], body)
	_, err := w.Write(buf)
	return err
}

func readReply(r io.Reader) (byte, []byte, error) {
	var head [5]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(head[1:])
	if n > 1<<24 {
		return 0, nil, errors.New("meek: oversized reply")
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, err
	}
	return head[0], body, nil
}

// Front is the CDN edge: it terminates client TLS and forwards each
// request to the bridge, adding its processing delay.
type Front struct {
	cfg        Config
	host       *netem.Host
	bridgeAddr string
	ln         *netem.Listener
}

// StartFront runs the CDN front on host:port, forwarding to bridgeAddr.
func StartFront(host *netem.Host, port int, cfg Config, bridgeAddr string) (*Front, error) {
	ln, err := host.Listen(port)
	if err != nil {
		return nil, err
	}
	f := &Front{cfg: cfg.withDefaults(), host: host, bridgeAddr: bridgeAddr, ln: ln}
	host.Network().Go(f.acceptLoop)
	return f, nil
}

// Addr returns the front's contact address (what the censor sees).
func (f *Front) Addr() string { return f.ln.Addr().String() }

// Close stops the front.
func (f *Front) Close() error { return f.ln.Close() }

func (f *Front) acceptLoop() {
	for {
		c, err := f.ln.Accept()
		if err != nil {
			return
		}
		conn := c
		f.host.Network().Go(func() { f.serveConn(conn) })
	}
}

// serveConn relays one client's polling connection; the front keeps a
// matching upstream connection to the bridge.
func (f *Front) serveConn(c net.Conn) {
	defer c.Close()
	clock := f.host.Network().Clock()
	up, err := f.host.Dial(f.bridgeAddr)
	if err != nil {
		return
	}
	defer up.Close()
	for {
		sid, body, err := readPoll(c)
		if err != nil {
			return
		}
		clock.Sleep(f.cfg.FrontDelay)
		if err := writePoll(up, sid, body); err != nil {
			return
		}
		status, reply, err := readReply(up)
		if err != nil {
			return
		}
		if err := writeReply(c, status, reply); err != nil {
			return
		}
	}
}

// Bridge is the meek server co-located with the guard.
type Bridge struct {
	cfg    Config
	host   *netem.Host
	ln     *netem.Listener
	handle pt.StreamHandler

	mu       sync.Mutex
	rng      *rand.Rand
	sessions map[uint64]*bridgeSession
	// rateFree is the virtual time the shared rate limiter frees up.
	rateFree time.Duration
}

type bridgeSession struct {
	mu      sync.Mutex
	cond    *netem.Cond
	upBuf   []byte
	downBuf []byte
	budget  int64
	served  int64
	// lastSeen is the virtual time of the session's latest poll; the
	// reaper cuts sessions whose client stopped polling.
	lastSeen time.Duration
	closed   bool
	gone     bool
}

// StartBridge runs the meek bridge on host:port.
func StartBridge(host *netem.Host, port int, cfg Config, handle pt.StreamHandler) (*Bridge, error) {
	ln, err := host.Listen(port)
	if err != nil {
		return nil, err
	}
	b := &Bridge{
		cfg:      cfg.withDefaults(),
		host:     host,
		ln:       ln,
		handle:   handle,
		rng:      rand.New(rand.NewSource(cfg.Seed + 3)),
		sessions: make(map[uint64]*bridgeSession),
	}
	host.Network().Go(b.acceptLoop)
	return b, nil
}

// Addr returns the bridge's contact address.
func (b *Bridge) Addr() string { return b.ln.Addr().String() }

// Close stops the bridge.
func (b *Bridge) Close() error { return b.ln.Close() }

func (b *Bridge) acceptLoop() {
	for {
		c, err := b.ln.Accept()
		if err != nil {
			return
		}
		conn := c
		b.host.Network().Go(func() { b.serveFrontConn(conn) })
	}
}

// session fetches or creates the session state.
func (b *Bridge) session(sid uint64) *bridgeSession {
	b.mu.Lock()
	defer b.mu.Unlock()
	if s := b.sessions[sid]; s != nil {
		return s
	}
	clock := b.host.Network().Clock()
	s := &bridgeSession{budget: b.drawBudget(), lastSeen: clock.Now()}
	s.cond = netem.NewCond(clock, &s.mu)
	b.sessions[sid] = s
	b.host.Network().Go(func() {
		conn := &bridgeConn{s: s}
		target, err := pt.ReadTarget(conn)
		if err != nil {
			conn.Close()
			return
		}
		b.handle(target, conn)
	})
	b.host.Network().Go(func() { b.reapWhenStale(s) })
	return s
}

// reapWhenStale cuts the session once its client has stopped polling
// for a full staleness window, like meek-server expiring an abandoned
// session. Marking it closed sends EOF into the handler's stream, which
// tears the spliced Tor chain down; without this a client that vanishes
// (crash, censor cut, parked circuit) leaks the whole server-side
// circuit forever.
func (b *Bridge) reapWhenStale(s *bridgeSession) {
	clock := b.host.Network().Clock()
	for {
		clock.Sleep(b.cfg.Staleness)
		s.mu.Lock()
		if s.closed || s.gone {
			s.mu.Unlock()
			return
		}
		if clock.Now()-s.lastSeen >= b.cfg.Staleness {
			s.closed = true
			s.gone = true
			s.cond.Broadcast()
			s.mu.Unlock()
			return
		}
		s.mu.Unlock()
	}
}

// drawBudget samples the lognormal session byte budget.
func (b *Bridge) drawBudget() int64 {
	if b.cfg.SessionBudgetMedian < 0 {
		return 1 << 62
	}
	v := float64(b.cfg.SessionBudgetMedian) * math.Exp(b.rng.NormFloat64()*1.2)
	if v < 64<<10 {
		v = 64 << 10
	}
	return int64(v)
}

// reserveRate charges n bytes against the bridge-wide rate limit and
// returns how long the caller must wait.
func (b *Bridge) reserveRate(now time.Duration, n int) time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.rateFree < now {
		b.rateFree = now
	}
	wait := b.rateFree - now
	b.rateFree += time.Duration(float64(n) / b.cfg.BridgeRate * float64(time.Second))
	return wait
}

// serveFrontConn processes polls arriving from the front.
func (b *Bridge) serveFrontConn(c net.Conn) {
	defer c.Close()
	clock := b.host.Network().Clock()
	for {
		sid, body, err := readPoll(c)
		if err != nil {
			return
		}
		s := b.session(sid)

		s.mu.Lock()
		s.lastSeen = clock.Now()
		gone := s.gone
		if !gone {
			if len(body) > 0 {
				s.upBuf = append(s.upBuf, body...)
				s.cond.Broadcast()
			}
			s.served += int64(len(body))
		}
		s.mu.Unlock()
		if gone {
			if err := writeReply(c, statusGone, nil); err != nil {
				return
			}
			continue
		}

		// Assemble the downstream chunk.
		s.mu.Lock()
		n := len(s.downBuf)
		if n > b.cfg.Chunk {
			n = b.cfg.Chunk
		}
		chunk := append([]byte(nil), s.downBuf[:n]...)
		s.downBuf = s.downBuf[n:]
		s.served += int64(n)
		overBudget := s.served > s.budget
		if overBudget {
			s.gone = true
			s.closed = true
		}
		s.cond.Broadcast()
		s.mu.Unlock()

		// Maintainer's rate limit applies to tunnelled bytes.
		if wait := b.reserveRate(clock.Now(), len(chunk)); wait > 0 {
			clock.Sleep(wait)
		}
		// The chunk that crossed the budget still ships; the session is
		// gone from the next poll on.
		if err := writeReply(c, statusOK, chunk); err != nil {
			return
		}
	}
}

// bridgeConn is the handler-facing stream of one bridge session.
type bridgeConn struct{ s *bridgeSession }

// Read pulls upstream bytes.
func (c *bridgeConn) Read(p []byte) (int, error) {
	s := c.s
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.upBuf) == 0 && !s.closed {
		s.cond.Wait()
	}
	if len(s.upBuf) == 0 && s.closed {
		return 0, io.EOF
	}
	n := copy(p, s.upBuf)
	s.upBuf = s.upBuf[n:]
	return n, nil
}

// Write queues downstream bytes with bounded buffering.
func (c *bridgeConn) Write(p []byte) (int, error) {
	s := c.s
	const maxQueue = 256 << 10
	written := 0
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(p) > 0 {
		for len(s.downBuf) >= maxQueue && !s.closed {
			s.cond.Wait()
		}
		if s.closed {
			return written, errors.New("meek: session closed by bridge")
		}
		room := maxQueue - len(s.downBuf)
		n := len(p)
		if n > room {
			n = room
		}
		s.downBuf = append(s.downBuf, p[:n]...)
		written += n
		p = p[n:]
	}
	return written, nil
}

// Close marks the session finished.
func (c *bridgeConn) Close() error {
	c.s.mu.Lock()
	c.s.closed = true
	c.s.cond.Broadcast()
	c.s.mu.Unlock()
	return nil
}

// LocalAddr implements net.Conn.
func (c *bridgeConn) LocalAddr() net.Addr { return meekAddr("meek-bridge") }

// RemoteAddr implements net.Conn.
func (c *bridgeConn) RemoteAddr() net.Addr { return meekAddr("meek-client") }

// SetDeadline implements net.Conn as a no-op (polling paces the tunnel).
func (c *bridgeConn) SetDeadline(time.Time) error { return nil }

// SetReadDeadline implements net.Conn.
func (c *bridgeConn) SetReadDeadline(time.Time) error { return nil }

// SetWriteDeadline implements net.Conn.
func (c *bridgeConn) SetWriteDeadline(time.Time) error { return nil }

type meekAddr string

func (meekAddr) Network() string  { return "meek" }
func (a meekAddr) String() string { return string(a) }

// Dialer is the meek client.
type Dialer struct {
	cfg       Config
	host      *netem.Host
	frontAddr string

	mu   sync.Mutex
	next uint64
}

// NewDialer returns a meek client that polls through the front.
func NewDialer(host *netem.Host, frontAddr string, cfg Config) *Dialer {
	return &Dialer{cfg: cfg.withDefaults(), host: host, frontAddr: frontAddr, next: uint64(cfg.Seed)*2654435761 + 1}
}

// Dial implements pt.Dialer.
func (d *Dialer) Dial(target string) (net.Conn, error) {
	d.mu.Lock()
	d.next++
	sid := d.next
	d.mu.Unlock()

	conn, err := d.host.Dial(d.frontAddr)
	if err != nil {
		return nil, fmt.Errorf("meek: front unreachable: %w", err)
	}
	t := &pollConn{
		cfg:   d.cfg,
		clock: d.host.Network().Clock(),
		sid:   sid,
		conn:  conn,
	}
	t.cond = netem.NewCond(t.clock, &t.mu)
	d.host.Network().Go(t.pollLoop)
	if err := pt.WriteTarget(t, target); err != nil {
		t.Close()
		return nil, err
	}
	return t, nil
}

// pollConn is the client-side tunnel endpoint.
type pollConn struct {
	cfg   Config
	clock *netem.Clock
	sid   uint64
	conn  net.Conn

	mu      sync.Mutex
	cond    *netem.Cond
	upBuf   []byte
	downBuf []byte
	closed  bool
	gone    bool
	rdl     time.Time
}

// pollLoop runs the HTTP polling cycle.
func (t *pollConn) pollLoop() {
	defer t.conn.Close()
	interval := t.cfg.MinPoll
	for {
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			return
		}
		n := len(t.upBuf)
		if n > t.cfg.Chunk {
			n = t.cfg.Chunk
		}
		body := append([]byte(nil), t.upBuf[:n]...)
		t.upBuf = t.upBuf[n:]
		t.cond.Broadcast()
		t.mu.Unlock()

		if err := writePoll(t.conn, t.sid, body); err != nil {
			t.fail(false)
			return
		}
		status, reply, err := readReply(t.conn)
		if err != nil {
			t.fail(false)
			return
		}
		if status == statusGone {
			t.fail(true)
			return
		}
		if len(reply) > 0 {
			t.mu.Lock()
			t.downBuf = append(t.downBuf, reply...)
			t.cond.Broadcast()
			t.mu.Unlock()
		}
		if len(body) == 0 && len(reply) == 0 {
			t.clock.Sleep(interval)
			interval = interval * 3 / 2
			if interval > t.cfg.MaxPoll {
				interval = t.cfg.MaxPoll
			}
		} else {
			interval = t.cfg.MinPoll
		}
	}
}

func (t *pollConn) fail(gone bool) {
	t.mu.Lock()
	t.closed = true
	t.gone = gone
	t.cond.Broadcast()
	t.mu.Unlock()
}

// Read implements net.Conn.
func (t *pollConn) Read(p []byte) (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for len(t.downBuf) == 0 {
		if t.closed {
			return 0, io.EOF
		}
		if t.clock.Expired(t.rdl) {
			return 0, errMeekTimeout
		}
		t.cond.WaitDeadline(t.rdl)
	}
	n := copy(p, t.downBuf)
	t.downBuf = t.downBuf[n:]
	return n, nil
}

// Write implements net.Conn with a bounded upstream queue.
func (t *pollConn) Write(p []byte) (int, error) {
	const maxQueue = 256 << 10
	written := 0
	t.mu.Lock()
	defer t.mu.Unlock()
	for len(p) > 0 {
		if t.closed {
			return written, errors.New("meek: tunnel closed")
		}
		for len(t.upBuf) >= maxQueue && !t.closed {
			t.cond.Wait()
		}
		if t.closed {
			return written, errors.New("meek: tunnel closed")
		}
		room := maxQueue - len(t.upBuf)
		n := len(p)
		if n > room {
			n = room
		}
		t.upBuf = append(t.upBuf, p[:n]...)
		written += n
		p = p[n:]
	}
	return written, nil
}

// Close implements net.Conn.
func (t *pollConn) Close() error {
	t.fail(false)
	return nil
}

// LocalAddr implements net.Conn.
func (t *pollConn) LocalAddr() net.Addr { return meekAddr("meek-client") }

// RemoteAddr implements net.Conn.
func (t *pollConn) RemoteAddr() net.Addr { return meekAddr("meek-tunnel") }

// SetDeadline implements net.Conn.
func (t *pollConn) SetDeadline(dl time.Time) error { return t.SetReadDeadline(dl) }

// SetReadDeadline implements net.Conn.
func (t *pollConn) SetReadDeadline(dl time.Time) error {
	t.mu.Lock()
	t.rdl = dl
	t.cond.Broadcast()
	t.mu.Unlock()
	return nil
}

// SetWriteDeadline implements net.Conn as a no-op.
func (t *pollConn) SetWriteDeadline(time.Time) error { return nil }

type meekTimeout struct{}

func (meekTimeout) Error() string   { return "meek: i/o timeout" }
func (meekTimeout) Timeout() bool   { return true }
func (meekTimeout) Temporary() bool { return true }

var errMeekTimeout = meekTimeout{}
