package meek

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPollFrameRoundTrip(t *testing.T) {
	f := func(sid uint64, body []byte) bool {
		var buf bytes.Buffer
		if err := writePoll(&buf, sid, body); err != nil {
			return false
		}
		gotSid, gotBody, err := readPoll(&buf)
		if err != nil {
			return false
		}
		return gotSid == sid && bytes.Equal(gotBody, body)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestReplyFrameRoundTrip(t *testing.T) {
	f := func(status byte, body []byte) bool {
		var buf bytes.Buffer
		if err := writeReply(&buf, status, body); err != nil {
			return false
		}
		gotStatus, gotBody, err := readReply(&buf)
		if err != nil {
			return false
		}
		return gotStatus == status && bytes.Equal(gotBody, body)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestReadPollRejectsOversized(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0, 0, 0, 0, 0, 0, 0, 1}) // sid
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF}) // absurd length
	if _, _, err := readPoll(&buf); err == nil {
		t.Fatal("oversized poll must be rejected")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Chunk != DefaultChunk || c.MinPoll != DefaultMinPoll ||
		c.BridgeRate != DefaultBridgeRate || c.SessionBudgetMedian != DefaultSessionBudgetMedian {
		t.Fatalf("defaults: %+v", c)
	}
	// Negative budget disables the cut.
	c2 := Config{SessionBudgetMedian: -1}.withDefaults()
	if c2.SessionBudgetMedian != -1 {
		t.Fatal("negative budget must survive defaulting")
	}
}

func TestDrawBudgetRespectsDisable(t *testing.T) {
	b := &Bridge{cfg: Config{SessionBudgetMedian: -1}.withDefaults(), rng: rand.New(rand.NewSource(1))}
	if got := b.drawBudget(); got < 1<<60 {
		t.Fatalf("disabled budget should be effectively infinite, got %d", got)
	}
	b2 := &Bridge{cfg: Config{SessionBudgetMedian: 1 << 20}.withDefaults(), rng: rand.New(rand.NewSource(2))}
	for i := 0; i < 100; i++ {
		if got := b2.drawBudget(); got < 64<<10 {
			t.Fatalf("budget draw below floor: %d", got)
		}
	}
}
