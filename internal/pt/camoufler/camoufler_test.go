package camoufler

import (
	"bytes"
	"errors"
	"net"
	"testing"
	"testing/quick"
	"time"

	"ptperf/internal/netem"
)

func TestMessageFrameRoundTrip(t *testing.T) {
	f := func(to string, seq uint64, payload []byte) bool {
		if len(to) > 255 || len(to)+len(payload) > 60000 {
			return true
		}
		var buf bytes.Buffer
		if err := writeMessage(&buf, to, seq, payload); err != nil {
			return false
		}
		gotTo, gotSeq, gotPayload, err := readMessage(&buf)
		if err != nil {
			return false
		}
		return gotTo == to && gotSeq == seq && bytes.Equal(gotPayload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMessageFrameRejectsOverlongAccount(t *testing.T) {
	var buf bytes.Buffer
	long := string(make([]byte, 300))
	if err := writeMessage(&buf, long, 1, nil); err == nil {
		t.Fatal("overlong account name must fail")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.MessageCap != DefaultMessageCap || c.RatePerSec != DefaultRatePerSec ||
		c.DeliveryDelay != DefaultDeliveryDelay || c.LossProb != DefaultLossProb {
		t.Fatalf("defaults: %+v", c)
	}
	if c2 := (Config{LossProb: -1}).withDefaults(); c2.LossProb != 0 {
		t.Fatal("negative loss must disable loss")
	}
}

func TestIMConnReordersBySeq(t *testing.T) {
	// Feed messages out of order through a scripted conn.
	script := &scriptConn{}
	var msgs bytes.Buffer
	writeMessage(&msgs, "me", 2, []byte("BB"))
	writeMessage(&msgs, "me", 1, []byte("AA"))
	writeMessage(&msgs, "me", 3, []byte("CC"))
	script.in = msgs.Bytes()

	ic := newIMConn(netem.NewClock(0), script, "me", "peer", 1024)
	got := make([]byte, 6)
	total := 0
	for total < 6 {
		n, err := ic.Read(got[total:])
		if err != nil {
			t.Fatal(err)
		}
		total += n
	}
	if string(got) != "AABBCC" {
		t.Fatalf("got %q", got)
	}
}

func TestIMConnLostMessageStalls(t *testing.T) {
	script := &scriptConn{}
	var msgs bytes.Buffer
	writeMessage(&msgs, "me", 1, []byte("AA"))
	// seq 2 lost.
	writeMessage(&msgs, "me", 3, []byte("CC"))
	script.in = msgs.Bytes()

	ic := newIMConn(netem.NewClock(0), script, "me", "peer", 1024)
	buf := make([]byte, 8)
	n, err := ic.Read(buf)
	if err != nil || string(buf[:n]) != "AA" {
		t.Fatalf("first read: %q %v", buf[:n], err)
	}
	// The stream must deliver nothing further: the gap never fills and
	// the conn eventually EOFs when the script runs dry.
	n, err = ic.Read(buf)
	if n != 0 || err == nil {
		t.Fatalf("gap should stall the stream, got %q err=%v", buf[:n], err)
	}
}

// scriptConn replays canned bytes then EOFs; writes are discarded.
type scriptConn struct {
	in  []byte
	pos int
}

func (s *scriptConn) Read(p []byte) (int, error) {
	if s.pos >= len(s.in) {
		return 0, errScriptDone
	}
	n := copy(p, s.in[s.pos:])
	s.pos += n
	return n, nil
}

func (s *scriptConn) Write(p []byte) (int, error) { return len(p), nil }
func (s *scriptConn) Close() error                { return nil }
func (s *scriptConn) LocalAddr() net.Addr         { return scriptAddr{} }
func (s *scriptConn) RemoteAddr() net.Addr        { return scriptAddr{} }
func (s *scriptConn) SetDeadline(time.Time) error { return nil }
func (s *scriptConn) SetReadDeadline(t time.Time) error {
	return nil
}
func (s *scriptConn) SetWriteDeadline(time.Time) error { return nil }

type scriptAddr struct{}

func (scriptAddr) Network() string { return "script" }
func (scriptAddr) String() string  { return "script" }

var errScriptDone = errors.New("script exhausted")
