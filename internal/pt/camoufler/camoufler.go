// Package camoufler implements the IM-app tunneling transport: censored
// bytes travel as instant messages between the client's IM account and a
// proxy-side account, relayed by the IM provider's servers. The censor
// sees only end-to-end-encrypted IM traffic.
//
// The performance-defining constraints from the paper are implemented
// literally:
//
//   - content is chunked into IM messages of bounded size,
//   - the provider rate-limits messages per account (the API limits the
//     paper blames for camoufler's 12.8 s web and 173 s/50 MB results),
//   - each message pays a server-side delivery latency,
//   - a small per-message loss probability models dropped messages: with
//     no retransmission the tunnel stalls, the paper's ~10% outright
//     failures,
//   - only one stream can use the account pair at a time, which is why
//     the paper could not evaluate camoufler under selenium.
//
// camoufler is an integration-set-2 transport.
package camoufler

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sort"
	"sync"
	"time"

	"ptperf/internal/netem"
	"ptperf/internal/pt"
)

// Defaults tuned to public IM API limits: messages deliver with high
// latency (IM servers fan out through their own infrastructure) but the
// API sustains a moderate message rate, so camoufler's bulk throughput
// is tolerable while its interactive latency is poor — exactly the
// paper's finding (12.8 s web access yet 173 s for a 50 MB file).
const (
	// DefaultMessageCap is the payload per IM message.
	DefaultMessageCap = 4 << 10
	// DefaultRatePerSec is the per-account message rate limit.
	DefaultRatePerSec = 64
	// DefaultDeliveryDelay is the provider's per-message delivery
	// latency (pipelined, FIFO).
	DefaultDeliveryDelay = 600 * time.Millisecond
	// DefaultLossProb is the chance one message never arrives.
	DefaultLossProb = 0.0006
)

// Config parameterizes the tunnel.
type Config struct {
	// MessageCap overrides DefaultMessageCap.
	MessageCap int
	// RatePerSec overrides DefaultRatePerSec.
	RatePerSec float64
	// DeliveryDelay overrides DefaultDeliveryDelay.
	DeliveryDelay time.Duration
	// LossProb overrides DefaultLossProb (negative disables loss).
	LossProb float64
	// Seed drives loss draws.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.MessageCap <= 0 {
		c.MessageCap = DefaultMessageCap
	}
	if c.RatePerSec <= 0 {
		c.RatePerSec = DefaultRatePerSec
	}
	if c.DeliveryDelay <= 0 {
		c.DeliveryDelay = DefaultDeliveryDelay
	}
	if c.LossProb == 0 {
		c.LossProb = DefaultLossProb
	}
	if c.LossProb < 0 {
		c.LossProb = 0
	}
	return c
}

// Message frame on IM-server connections:
//
//	[2B total len][1B to-len][to][8B seq][payload]
func writeMessage(w io.Writer, to string, seq uint64, payload []byte) error {
	if len(to) > 255 {
		return errors.New("camoufler: account name too long")
	}
	buf := make([]byte, 2+1+len(to)+8+len(payload))
	binary.BigEndian.PutUint16(buf, uint16(1+len(to)+8+len(payload)))
	buf[2] = byte(len(to))
	copy(buf[3:], to)
	binary.BigEndian.PutUint64(buf[3+len(to):], seq)
	copy(buf[3+len(to)+8:], payload)
	_, err := w.Write(buf)
	return err
}

func readMessage(r io.Reader) (to string, seq uint64, payload []byte, err error) {
	var lenBuf [2]byte
	if _, err = io.ReadFull(r, lenBuf[:]); err != nil {
		return
	}
	n := int(binary.BigEndian.Uint16(lenBuf[:]))
	buf := make([]byte, n)
	if _, err = io.ReadFull(r, buf); err != nil {
		return
	}
	if n < 9 {
		err = errors.New("camoufler: short message")
		return
	}
	toLen := int(buf[0])
	if 1+toLen+8 > n {
		err = errors.New("camoufler: malformed message")
		return
	}
	to = string(buf[1 : 1+toLen])
	seq = binary.BigEndian.Uint64(buf[1+toLen : 1+toLen+8])
	payload = buf[1+toLen+8:]
	return
}

// IMServer is the instant-messaging provider: accounts connect, send
// rate-limited messages, and receive messages addressed to them.
type IMServer struct {
	cfg Config
	ln  *netem.Listener
	net *netem.Network

	mu       sync.Mutex
	accounts map[string]*account
	rng      *rand.Rand
}

type account struct {
	conn net.Conn
	wmu  sync.Mutex
	// sendFree enforces the per-account API rate limit (virtual time
	// at which the account may send its next message).
	sendFree time.Duration
	// deliver is the inbound queue: messages wait out the provider's
	// delivery latency here, pipelined but FIFO.
	deliver *netem.Chan[delivery]
	// contacts are accounts this one exchanged messages with; they get
	// an unavailable-presence notification when it disconnects.
	// Guarded by the server mutex.
	contacts map[string]bool
}

// delivery is one queued message with its delivery due time.
type delivery struct {
	from    string
	seq     uint64
	payload []byte
	at      time.Duration
	stop    bool
}

// presenceGoneSeq marks an unavailable-presence notification from the
// provider. Data messages use seq ≥ 1 and the login frame seq 0, so the
// value can never collide with a tunnel sequence number.
const presenceGoneSeq = ^uint64(0)

// StartIMServer runs the provider on host:port.
func StartIMServer(host *netem.Host, port int, cfg Config) (*IMServer, error) {
	ln, err := host.Listen(port)
	if err != nil {
		return nil, err
	}
	s := &IMServer{
		cfg:      cfg.withDefaults(),
		ln:       ln,
		net:      host.Network(),
		accounts: make(map[string]*account),
		rng:      rand.New(rand.NewSource(cfg.Seed + 2)),
	}
	host.Network().Go(s.acceptLoop)
	return s, nil
}

// Addr returns the provider's contact address.
func (s *IMServer) Addr() string { return s.ln.Addr().String() }

// Close stops the provider.
func (s *IMServer) Close() error { return s.ln.Close() }

func (s *IMServer) acceptLoop() {
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return
		}
		conn := c
		s.net.Go(func() { s.serveConn(conn) })
	}
}

// serveConn handles one logged-in account: the first message names the
// account ("login"), subsequent frames are relayed.
func (s *IMServer) serveConn(c net.Conn) {
	name, _, _, err := readMessage(c)
	if err != nil {
		c.Close()
		return
	}
	clock := s.net.Clock()
	acct := &account{conn: c, deliver: netem.NewChan[delivery](clock, 512), contacts: make(map[string]bool)}
	clock.Go(func() {
		// Pipelined FIFO delivery: each message waits out its due time.
		for {
			d, ok := acct.deliver.Recv()
			if !ok || d.stop {
				return
			}
			clock.SleepUntil(d.at)
			acct.wmu.Lock()
			err := writeMessage(acct.conn, d.from, d.seq, d.payload)
			acct.wmu.Unlock()
			if err != nil {
				return
			}
		}
	})
	s.mu.Lock()
	s.accounts[name] = acct
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		if s.accounts[name] == acct {
			delete(s.accounts, name)
		}
		// Unavailable presence: contacts still online learn the account
		// went away, like an XMPP roster update — without it the proxy
		// side of an abandoned session waits for messages forever.
		contacts := make([]string, 0, len(acct.contacts))
		for peer := range acct.contacts {
			contacts = append(contacts, peer)
		}
		sort.Strings(contacts) // map order must not reach the scheduler
		peers := make([]*account, 0, len(contacts))
		for _, peer := range contacts {
			if dst := s.accounts[peer]; dst != nil {
				peers = append(peers, dst)
			}
		}
		now := clock.Now()
		s.mu.Unlock()
		for _, dst := range peers {
			dst.deliver.TrySend(delivery{from: name, seq: presenceGoneSeq, at: now + s.cfg.DeliveryDelay})
		}
		// Stop the delivery goroutine; late producers' TrySends fall
		// into the buffer or are dropped.
		acct.deliver.TrySend(delivery{stop: true})
		c.Close()
	}()

	perMsg := time.Duration(float64(time.Second) / s.cfg.RatePerSec)
	for {
		to, seq, payload, err := readMessage(c)
		if err != nil {
			return
		}
		// API rate limit: the sender's next slot.
		s.mu.Lock()
		now := clock.Now()
		if acct.sendFree < now {
			acct.sendFree = now
		}
		wait := acct.sendFree - now
		acct.sendFree += perMsg
		dropped := s.cfg.LossProb > 0 && s.rng.Float64() < s.cfg.LossProb
		dst := s.accounts[to]
		if dst != nil {
			acct.contacts[to] = true
			dst.contacts[name] = true
		}
		s.mu.Unlock()

		if wait > 0 {
			clock.Sleep(wait)
		}
		if dropped || dst == nil {
			continue
		}
		d := delivery{from: name, seq: seq, at: clock.Now() + s.cfg.DeliveryDelay}
		d.payload = append([]byte(nil), payload...)
		// Queue overflow behaves like a dropped message.
		dst.deliver.TrySend(d)
	}
}

// imConn is one end of the IM tunnel: a net.Conn whose bytes travel as
// messages between two accounts.
type imConn struct {
	cap     int
	self    string
	peer    string
	clock   *netem.Clock
	conn    net.Conn // to the IM server
	wmu     sync.Mutex
	sendSeq uint64

	mu      sync.Mutex
	cond    *netem.Cond
	recvBuf []byte
	rnext   uint64
	held    map[uint64][]byte
	closed  bool
	rdl     time.Time
	onClose func()
}

func newIMConn(clock *netem.Clock, conn net.Conn, self, peer string, capBytes int) *imConn {
	// Data messages carry seq ≥ 1 (seq 0 is the login frame).
	ic := &imConn{cap: capBytes, self: self, peer: peer, clock: clock, conn: conn, held: make(map[uint64][]byte), rnext: 1}
	ic.cond = netem.NewCond(clock, &ic.mu)
	clock.Go(ic.recvLoop)
	return ic
}

// login announces the account to the provider.
func (ic *imConn) login() error {
	ic.wmu.Lock()
	defer ic.wmu.Unlock()
	return writeMessage(ic.conn, ic.self, 0, nil)
}

func (ic *imConn) recvLoop() {
	for {
		from, seq, payload, err := readMessage(ic.conn)
		if err != nil {
			ic.mu.Lock()
			ic.closed = true
			ic.cond.Broadcast()
			ic.mu.Unlock()
			return
		}
		if seq == presenceGoneSeq {
			if from != ic.peer {
				continue
			}
			// The peer account logged off: the tunnel is over.
			ic.mu.Lock()
			ic.closed = true
			ic.cond.Broadcast()
			ic.mu.Unlock()
			return
		}
		ic.mu.Lock()
		if seq == ic.rnext {
			ic.recvBuf = append(ic.recvBuf, payload...)
			ic.rnext++
			for {
				held, ok := ic.held[ic.rnext]
				if !ok {
					break
				}
				delete(ic.held, ic.rnext)
				ic.recvBuf = append(ic.recvBuf, held...)
				ic.rnext++
			}
			ic.cond.Broadcast()
		} else if seq > ic.rnext {
			// Out-of-order delivery; a lost message leaves a
			// permanent gap and the stream stalls (no retransmit).
			ic.held[seq] = append([]byte(nil), payload...)
		}
		ic.mu.Unlock()
	}
}

// Read implements net.Conn.
func (ic *imConn) Read(p []byte) (int, error) {
	ic.mu.Lock()
	defer ic.mu.Unlock()
	for len(ic.recvBuf) == 0 {
		if ic.closed {
			return 0, io.EOF
		}
		if ic.clock.Expired(ic.rdl) {
			return 0, errIMTimeout
		}
		ic.cond.WaitDeadline(ic.rdl)
	}
	n := copy(p, ic.recvBuf)
	ic.recvBuf = ic.recvBuf[n:]
	return n, nil
}

// Write implements net.Conn: chunk into messages.
func (ic *imConn) Write(p []byte) (int, error) {
	ic.wmu.Lock()
	defer ic.wmu.Unlock()
	written := 0
	for len(p) > 0 {
		n := len(p)
		if n > ic.cap {
			n = ic.cap
		}
		ic.sendSeq++
		if err := writeMessage(ic.conn, ic.peer, ic.sendSeq, p[:n]); err != nil {
			return written, err
		}
		written += n
		p = p[n:]
	}
	return written, nil
}

// Close implements net.Conn.
func (ic *imConn) Close() error {
	ic.mu.Lock()
	wasClosed := ic.closed
	ic.closed = true
	ic.cond.Broadcast()
	onClose := ic.onClose
	ic.onClose = nil
	ic.mu.Unlock()
	if !wasClosed && onClose != nil {
		onClose()
	}
	return ic.conn.Close()
}

// LocalAddr implements net.Conn.
func (ic *imConn) LocalAddr() net.Addr { return imAddr(ic.self) }

// RemoteAddr implements net.Conn.
func (ic *imConn) RemoteAddr() net.Addr { return imAddr(ic.peer) }

// SetDeadline implements net.Conn.
func (ic *imConn) SetDeadline(t time.Time) error { return ic.SetReadDeadline(t) }

// SetReadDeadline implements net.Conn.
func (ic *imConn) SetReadDeadline(t time.Time) error {
	ic.mu.Lock()
	ic.rdl = t
	ic.cond.Broadcast()
	ic.mu.Unlock()
	return nil
}

// SetWriteDeadline implements net.Conn as a no-op.
func (ic *imConn) SetWriteDeadline(time.Time) error { return nil }

type imAddr string

func (imAddr) Network() string  { return "im" }
func (a imAddr) String() string { return string(a) }

type imTimeout struct{}

func (imTimeout) Error() string   { return "camoufler: i/o timeout" }
func (imTimeout) Timeout() bool   { return true }
func (imTimeout) Temporary() bool { return true }

var errIMTimeout = imTimeout{}

// Proxy is the uncensored-side camoufler endpoint: it logs into the
// proxy account and serves each client session.
type Proxy struct {
	cfg    Config
	host   *netem.Host
	imAddr string
	acct   string
	handle pt.StreamHandler

	mu     sync.Mutex
	closed bool
	conns  []net.Conn
}

// StartProxy launches the proxy side. Each client session uses a fresh
// account pair "<base>-cN" / "<base>-pN"; the proxy pre-registers its
// account when the client announces the session (first message on the
// control account).
//
// For simulation simplicity the proxy listens on a family of accounts:
// clients derive the pair from their session number.
func StartProxy(host *netem.Host, imServerAddr, accountBase string, cfg Config, handle pt.StreamHandler) (*Proxy, error) {
	p := &Proxy{
		cfg:    cfg.withDefaults(),
		host:   host,
		imAddr: imServerAddr,
		acct:   accountBase,
		handle: handle,
	}
	return p, nil
}

// serveSession logs the proxy account for session n in and handles it.
func (p *Proxy) serveSession(n uint64) error {
	conn, err := p.host.Dial(p.imAddr)
	if err != nil {
		return err
	}
	self := fmt.Sprintf("%s-p%d", p.acct, n)
	peer := fmt.Sprintf("%s-c%d", p.acct, n)
	ic := newIMConn(p.host.Network().Clock(), conn, self, peer, p.cfg.MessageCap)
	if err := ic.login(); err != nil {
		ic.Close()
		return err
	}
	p.mu.Lock()
	p.conns = append(p.conns, ic)
	p.mu.Unlock()
	p.host.Network().Go(func() {
		target, err := pt.ReadTarget(ic)
		if err != nil {
			ic.Close()
			return
		}
		p.handle(target, ic)
	})
	return nil
}

// Close shuts down proxy-side sessions.
func (p *Proxy) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.closed = true
	for _, c := range p.conns {
		c.Close()
	}
	return nil
}

// Dialer is the camoufler client. It admits a single concurrent stream:
// concurrent Dial calls fail, mirroring the paper's observation that
// camoufler cannot serve selenium's parallel requests.
type Dialer struct {
	cfg    Config
	host   *netem.Host
	imAddr string
	acct   string
	proxy  *Proxy

	mu      sync.Mutex
	session uint64
	active  bool
}

// ErrBusy reports a second concurrent stream on the account pair.
var ErrBusy = errors.New("camoufler: account pair already carries a stream")

// NewDialer returns the camoufler client bound to the proxy deployment.
func NewDialer(host *netem.Host, imServerAddr, accountBase string, cfg Config, proxy *Proxy) *Dialer {
	return &Dialer{
		cfg:    cfg.withDefaults(),
		host:   host,
		imAddr: imServerAddr,
		acct:   accountBase,
		proxy:  proxy,
	}
}

// Dial implements pt.Dialer.
func (d *Dialer) Dial(target string) (net.Conn, error) {
	d.mu.Lock()
	if d.active {
		d.mu.Unlock()
		return nil, ErrBusy
	}
	d.active = true
	d.session++
	n := d.session
	d.mu.Unlock()

	release := func() {
		d.mu.Lock()
		d.active = false
		d.mu.Unlock()
	}

	// The proxy side brings its account online for this session.
	if err := d.proxy.serveSession(n); err != nil {
		release()
		return nil, err
	}
	conn, err := d.host.Dial(d.imAddr)
	if err != nil {
		release()
		return nil, err
	}
	self := fmt.Sprintf("%s-c%d", d.acct, n)
	peer := fmt.Sprintf("%s-p%d", d.acct, n)
	ic := newIMConn(d.host.Network().Clock(), conn, self, peer, d.cfg.MessageCap)
	ic.onClose = release
	if err := ic.login(); err != nil {
		ic.Close()
		return nil, err
	}
	if err := pt.WriteTarget(ic, target); err != nil {
		ic.Close()
		return nil, err
	}
	return ic, nil
}
