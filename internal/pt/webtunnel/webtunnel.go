// Package webtunnel implements the HTTPT-style tunneling transport: the
// client completes a TLS-looking handshake with an innocuous web server
// (so a censor sees an ordinary HTTPS connection to an unblocked
// domain), then upgrades the connection into a Tor tunnel. The cost
// model follows the real webtunnel: two handshake round trips (TLS) plus
// one upgrade round trip, then a thin record layer — which is why the
// paper finds webtunnel among the fastest tunneling PTs.
//
// webtunnel is an integration-set-1 transport.
package webtunnel

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"

	"ptperf/internal/netem"
	"ptperf/internal/pt"
)

// tlsRecordHeader mimics TLS application-data record headers.
var tlsRecordHeader = []byte{0x17, 0x03, 0x03}

// Config carries the transport parameters.
type Config struct {
	// SessionKey is the pre-agreed secret from the bridge line; it
	// stands in for the TLS-derived keys.
	SessionKey []byte
	// SNI is the innocuous domain presented in the ClientHello.
	SNI string
	// Seed drives handshake randomness.
	Seed int64
}

// ErrHandshake reports a malformed upgrade exchange.
var ErrHandshake = errors.New("webtunnel: handshake failed")

// clientWrap performs ClientHello/ServerHello+Finished (2 RTT) and the
// HTTP upgrade (1 RTT folded into the Finished flight).
func clientWrap(conn net.Conn, cfg Config, seed int64) (net.Conn, error) {
	rng := rand.New(rand.NewSource(seed))
	hello := make([]byte, 0, 280)
	hello = append(hello, 0x16, 0x03, 0x01) // handshake record
	random := make([]byte, 32)
	for i := range random {
		random[i] = byte(rng.Intn(256))
	}
	hello = append(hello, random...)
	hello = append(hello, byte(len(cfg.SNI)))
	hello = append(hello, cfg.SNI...)
	if _, err := conn.Write(hello); err != nil {
		return nil, err
	}
	// ServerHello + certificate blob.
	sh := make([]byte, 3+32+2)
	if _, err := io.ReadFull(conn, sh); err != nil {
		return nil, err
	}
	if sh[0] != 0x16 {
		return nil, ErrHandshake
	}
	certLen := int(sh[len(sh)-2])<<8 | int(sh[len(sh)-1])
	if _, err := io.CopyN(io.Discard, conn, int64(certLen)); err != nil {
		return nil, err
	}
	// Finished + upgrade request.
	if _, err := conn.Write([]byte("GET /tunnel HTTP/1.1\r\nUpgrade: websocket\r\n\r\n")); err != nil {
		return nil, err
	}
	resp := make([]byte, len(upgradeResponse))
	if _, err := io.ReadFull(conn, resp); err != nil {
		return nil, err
	}
	if !bytes.Equal(resp, upgradeResponse) {
		return nil, ErrHandshake
	}
	return pt.NewRecordConn(conn, pt.RecordConfig{
		Key:      cfg.SessionKey,
		IsClient: true,
		Header:   tlsRecordHeader,
		Seed:     seed + 1,
	})
}

var upgradeResponse = []byte("HTTP/1.1 101 Switching Protocols\r\n\r\n")

// serverWrap mirrors the handshake.
func serverWrap(conn net.Conn, cfg Config, seed int64) (net.Conn, error) {
	rng := rand.New(rand.NewSource(seed))
	head := make([]byte, 3+32+1)
	if _, err := io.ReadFull(conn, head); err != nil {
		return nil, err
	}
	if head[0] != 0x16 {
		return nil, ErrHandshake
	}
	sniLen := int(head[len(head)-1])
	if _, err := io.CopyN(io.Discard, conn, int64(sniLen)); err != nil {
		return nil, err
	}
	// ServerHello with a certificate-sized blob (~1.2 KB like a real
	// leaf certificate chain element).
	certLen := 1100 + rng.Intn(300)
	sh := make([]byte, 3+32+2+certLen)
	sh[0], sh[1], sh[2] = 0x16, 0x03, 0x03
	for i := 3; i < 3+32; i++ {
		sh[i] = byte(rng.Intn(256))
	}
	sh[3+32] = byte(certLen >> 8)
	sh[3+33] = byte(certLen)
	for i := 3 + 34; i < len(sh); i++ {
		sh[i] = byte(rng.Intn(256))
	}
	if _, err := conn.Write(sh); err != nil {
		return nil, err
	}
	// Read the upgrade request up to its terminator.
	req := make([]byte, 0, 128)
	one := make([]byte, 1)
	for !bytes.HasSuffix(req, []byte("\r\n\r\n")) {
		if _, err := io.ReadFull(conn, one); err != nil {
			return nil, err
		}
		req = append(req, one[0])
		if len(req) > 4096 {
			return nil, ErrHandshake
		}
	}
	if !bytes.HasPrefix(req, []byte("GET /tunnel")) {
		return nil, ErrHandshake
	}
	if _, err := conn.Write(upgradeResponse); err != nil {
		return nil, err
	}
	return pt.NewRecordConn(conn, pt.RecordConfig{
		Key:      cfg.SessionKey,
		IsClient: false,
		Header:   tlsRecordHeader,
		Seed:     seed + 1,
	})
}

// StartServer runs a webtunnel server on host:port.
func StartServer(host *netem.Host, port int, cfg Config, handle pt.StreamHandler) (pt.Server, error) {
	if len(cfg.SessionKey) == 0 {
		return nil, errors.New("webtunnel: server needs a session key")
	}
	var mu sync.Mutex
	seed := cfg.Seed
	return pt.ListenAndServe(host, port, func(conn net.Conn) (net.Conn, error) {
		mu.Lock()
		seed++
		s := seed
		mu.Unlock()
		return serverWrap(conn, cfg, s)
	}, handle)
}

// NewDialer returns the webtunnel client for a bridge at addr.
func NewDialer(host *netem.Host, addr string, cfg Config) pt.Dialer {
	var mu sync.Mutex
	seed := cfg.Seed + 15485863
	return pt.DialerFunc(func(target string) (net.Conn, error) {
		if len(cfg.SessionKey) == 0 {
			return nil, errors.New("webtunnel: dialer needs a session key")
		}
		mu.Lock()
		seed++
		s := seed
		mu.Unlock()
		conn, err := pt.DialWrapped(host, addr, func(raw net.Conn) (net.Conn, error) {
			return clientWrap(raw, cfg, s)
		}, target)
		if err != nil {
			return nil, fmt.Errorf("webtunnel: %w", err)
		}
		return conn, nil
	})
}
