package webtunnel

import (
	"bytes"
	"net"
	"testing"

	"ptperf/internal/geo"
	"ptperf/internal/netem"
)

func bufferedPair(t *testing.T) (*netem.Network, net.Conn, net.Conn) {
	t.Helper()
	n := netem.New(netem.WithTimeScale(0.001), netem.WithSeed(11))
	a := n.MustAddHost(netem.HostConfig{Name: "a", Location: geo.London})
	b := n.MustAddHost(netem.HostConfig{Name: "b", Location: geo.London})
	ln, err := b.Listen(1)
	if err != nil {
		t.Fatal(err)
	}
	accepted := netem.NewChan[net.Conn](n.Clock(), 1)
	n.Go(func() {
		c, err := ln.Accept()
		if err == nil {
			accepted.Send(c)
		}
	})
	c, err := a.Dial("b:1")
	if err != nil {
		t.Fatal(err)
	}
	sc, _ := accepted.Recv()
	return n, c, sc
}

func TestHandshakeAndRecords(t *testing.T) {
	cfg := Config{SessionKey: []byte("k"), SNI: "static.example", Seed: 1}
	n, a, b := bufferedPair(t)
	type res struct {
		conn net.Conn
		err  error
	}
	sc := netem.NewChan[res](n.Clock(), 1)
	n.Go(func() {
		c, err := serverWrap(b, cfg, 2)
		sc.Send(res{c, err})
	})
	cc, err := clientWrap(a, cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	srv, _ := sc.Recv()
	if srv.err != nil {
		t.Fatal(srv.err)
	}
	msg := bytes.Repeat([]byte("https-tunnel"), 2000)
	n.Go(func() { cc.Write(msg) })
	got := make([]byte, len(msg))
	readFull(t, srv.conn, got)
	if !bytes.Equal(got, msg) {
		t.Fatal("tunnel corrupted payload")
	}
}

func TestServerRejectsNonTunnelRequest(t *testing.T) {
	cfg := Config{SessionKey: []byte("k"), SNI: "x", Seed: 4}
	n, a, b := bufferedPair(t)
	errc := netem.NewChan[error](n.Clock(), 1)
	n.Go(func() {
		_, err := serverWrap(b, cfg, 5)
		errc.Send(err)
	})
	// Speak the TLS-ish prologue but then request the wrong path, like
	// an ordinary HTTPS client hitting the innocuous site.
	a.Write(append([]byte{0x16, 0x03, 0x01}, make([]byte, 32+1)...))
	// Consume the ServerHello so the server can progress.
	n.Go(func() {
		buf := make([]byte, 4096)
		for {
			if _, err := a.Read(buf); err != nil {
				return
			}
		}
	})
	a.Write([]byte("GET /index.html HTTP/1.1\r\n\r\n"))
	if err, _ := errc.Recv(); err != ErrHandshake {
		t.Fatalf("want ErrHandshake, got %v", err)
	}
}

func readFull(t *testing.T, c net.Conn, buf []byte) {
	t.Helper()
	total := 0
	for total < len(buf) {
		n, err := c.Read(buf[total:])
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		total += n
	}
}
