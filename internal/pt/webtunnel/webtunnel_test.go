package webtunnel

import (
	"bytes"
	"net"
	"testing"

	"ptperf/internal/geo"
	"ptperf/internal/netem"
)

func bufferedPair(t *testing.T) (net.Conn, net.Conn) {
	t.Helper()
	n := netem.New(netem.WithTimeScale(0.001), netem.WithSeed(11))
	a := n.MustAddHost(netem.HostConfig{Name: "a", Location: geo.London})
	b := n.MustAddHost(netem.HostConfig{Name: "b", Location: geo.London})
	ln, err := b.Listen(1)
	if err != nil {
		t.Fatal(err)
	}
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	c, err := a.Dial("b:1")
	if err != nil {
		t.Fatal(err)
	}
	return c, <-accepted
}

func TestHandshakeAndRecords(t *testing.T) {
	cfg := Config{SessionKey: []byte("k"), SNI: "static.example", Seed: 1}
	a, b := bufferedPair(t)
	type res struct {
		conn net.Conn
		err  error
	}
	sc := make(chan res, 1)
	go func() {
		c, err := serverWrap(b, cfg, 2)
		sc <- res{c, err}
	}()
	cc, err := clientWrap(a, cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	srv := <-sc
	if srv.err != nil {
		t.Fatal(srv.err)
	}
	msg := bytes.Repeat([]byte("https-tunnel"), 2000)
	go cc.Write(msg)
	got := make([]byte, len(msg))
	readFull(t, srv.conn, got)
	if !bytes.Equal(got, msg) {
		t.Fatal("tunnel corrupted payload")
	}
}

func TestServerRejectsNonTunnelRequest(t *testing.T) {
	cfg := Config{SessionKey: []byte("k"), SNI: "x", Seed: 4}
	a, b := bufferedPair(t)
	errc := make(chan error, 1)
	go func() {
		_, err := serverWrap(b, cfg, 5)
		errc <- err
	}()
	// Speak the TLS-ish prologue but then request the wrong path, like
	// an ordinary HTTPS client hitting the innocuous site.
	a.Write(append([]byte{0x16, 0x03, 0x01}, make([]byte, 32+1)...))
	// Consume the ServerHello so the server can progress.
	go func() {
		buf := make([]byte, 4096)
		for {
			if _, err := a.Read(buf); err != nil {
				return
			}
		}
	}()
	a.Write([]byte("GET /index.html HTTP/1.1\r\n\r\n"))
	if err := <-errc; err != ErrHandshake {
		t.Fatalf("want ErrHandshake, got %v", err)
	}
}

func readFull(t *testing.T, c net.Conn, buf []byte) {
	t.Helper()
	total := 0
	for total < len(buf) {
		n, err := c.Read(buf[total:])
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		total += n
	}
}
