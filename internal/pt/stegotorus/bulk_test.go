package stegotorus

import (
	"bytes"
	"io"
	"net"
	"testing"

	"ptperf/internal/geo"
	"ptperf/internal/netem"
	"ptperf/internal/pt"
)

// TestBulkOverManyConns reproduces the ablation setup: a large one-way
// transfer spliced through the server with several fan-out conns.
func TestBulkOverManyConns(t *testing.T) {
	for _, conns := range []int{1, 2, 4, 8} {
		conns := conns
		t.Run(string(rune('0'+conns)), func(t *testing.T) {
			n := netem.New(netem.WithTimeScale(0.001), netem.WithSeed(int64(conns)))
			client := n.MustAddHost(netem.HostConfig{Name: "client", Location: geo.Toronto})
			server := n.MustAddHost(netem.HostConfig{Name: "server", Location: geo.Frankfurt})
			sink := n.MustAddHost(netem.HostConfig{Name: "sink", Location: geo.NewYork})

			blob := bytes.Repeat([]byte("bulk-data!"), 26<<10) // 260 KB
			ln, err := sink.Listen(80)
			if err != nil {
				t.Fatal(err)
			}
			n.Go(func() {
				c, err := ln.Accept()
				if err != nil {
					return
				}
				defer c.Close()
				// Consume the request line, then stream the blob.
				buf := make([]byte, 64)
				c.Read(buf)
				c.Write(blob)
				if cw, ok := c.(interface{ CloseWrite() error }); ok {
					cw.CloseWrite()
				}
			})

			cfg := Config{Seed: int64(conns), Conns: conns}
			srv, err := StartServer(server, 8080, cfg, pt.ForwardTo(server))
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close()
			d := NewDialer(client, srv.Addr(), cfg)
			conn, err := d.Dial("sink:80")
			if err != nil {
				t.Fatal(err)
			}
			defer conn.Close()
			if _, err := conn.Write([]byte("GET\n")); err != nil {
				t.Fatal(err)
			}
			got := make([]byte, len(blob))
			if _, err := io.ReadFull(conn, got); err != nil {
				t.Fatalf("conns=%d: %v", conns, err)
			}
			if !bytes.Equal(got, blob) {
				t.Fatalf("conns=%d corrupted", conns)
			}
			var _ net.Conn = conn
		})
	}
}
