// Package stegotorus implements the camouflage-proxy transport: a
// "chopper" splits the Tor stream into variable-sized blocks, sends them
// (re-orderable) over several parallel TCP connections, and hides each
// block inside innocuous HTTP cover traffic. The receiving side
// reassembles blocks by sequence number.
//
// Performance-relevant properties kept from the real system: the
// fan-out over k connections, per-block HTTP-steg encoding overhead
// (base64 plus headers), and the chopper's variable block sizes.
//
// stegotorus is an integration-set-2 transport.
package stegotorus

import (
	"bufio"
	"bytes"
	"encoding/base64"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"strconv"
	"sync"
	"time"

	"ptperf/internal/netem"
	"ptperf/internal/pt"
)

// chopConn provides TCP-style half close via CloseWrite, which pt.Splice
// prefers over a hard Close; this is what lets a bulk response drain
// across all fan-out conns after the origin finishes.
var _ pt.HalfCloser = (*chopConn)(nil)

// Defaults for the chopper.
const (
	// DefaultConns is the chopper's connection fan-out.
	DefaultConns = 4
	// DefaultMinBlock / DefaultMaxBlock bound chopper block sizes.
	DefaultMinBlock = 128
	DefaultMaxBlock = 2048
)

// Config parameterizes the transport.
type Config struct {
	// Conns overrides DefaultConns.
	Conns int
	// MinBlock / MaxBlock override the chopper block bounds.
	MinBlock, MaxBlock int
	// Seed drives block-size draws.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Conns <= 0 {
		c.Conns = DefaultConns
	}
	if c.MinBlock <= 0 {
		c.MinBlock = DefaultMinBlock
	}
	if c.MaxBlock < c.MinBlock {
		c.MaxBlock = DefaultMaxBlock
	}
	return c
}

// Block header inside the cover payload: [8B session][8B seq][4B len].
const blockHeader = 20

// finLen marks an end-of-stream block: its seq field carries the total
// number of data blocks sent, so the receiver can declare EOF only once
// every block (possibly arriving out of order on other conns) is in.
const finLen = 0xffffffff

// encodeCover wraps an encoded block in an HTTP request-shaped cover.
func encodeCover(w *bufio.Writer, block []byte) error {
	payload := base64.StdEncoding.EncodeToString(block)
	if _, err := fmt.Fprintf(w, "POST /images/upload HTTP/1.1\r\nHost: pics.example\r\nContent-Type: image/jpeg\r\nContent-Length: %d\r\n\r\n%s", len(payload), payload); err != nil {
		return err
	}
	return w.Flush()
}

// decodeCover strips the HTTP cover and recovers the block.
func decodeCover(r *bufio.Reader) ([]byte, error) {
	line, err := r.ReadString('\n')
	if err != nil {
		return nil, err
	}
	if !bytes.HasPrefix([]byte(line), []byte("POST /images/upload")) {
		return nil, errors.New("stegotorus: unexpected cover request")
	}
	var contentLen int
	for {
		h, err := r.ReadString('\n')
		if err != nil {
			return nil, err
		}
		h = string(bytes.TrimSpace([]byte(h)))
		if h == "" {
			break
		}
		if rest, ok := cutPrefixFold(h, "content-length:"); ok {
			contentLen, err = strconv.Atoi(string(bytes.TrimSpace([]byte(rest))))
			if err != nil {
				return nil, err
			}
		}
	}
	payload := make([]byte, contentLen)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return base64.StdEncoding.DecodeString(string(payload))
}

func cutPrefixFold(s, prefix string) (string, bool) {
	if len(s) < len(prefix) {
		return "", false
	}
	for i := 0; i < len(prefix); i++ {
		a, b := s[i], prefix[i]
		if 'A' <= a && a <= 'Z' {
			a += 'a' - 'A'
		}
		if 'A' <= b && b <= 'Z' {
			b += 'a' - 'A'
		}
		if a != b {
			return "", false
		}
	}
	return s[len(prefix):], true
}

// session reassembles one direction of a chopped stream.
type session struct {
	clock *netem.Clock
	mu    sync.Mutex
	cond  *netem.Cond
	next  uint64
	held  map[uint64][]byte
	buf   []byte
	// closed is the hard teardown (error or local close).
	closed bool
	// finSeq+1 is stored in fin when the peer's FIN announced the total
	// block count; 0 means no FIN yet.
	fin uint64
	rdl time.Time
}

func newSession(clock *netem.Clock) *session {
	s := &session{clock: clock, held: make(map[uint64][]byte)}
	s.cond = netem.NewCond(clock, &s.mu)
	return s
}

// accept delivers one block.
func (s *session) accept(seq uint64, data []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if seq == s.next {
		s.buf = append(s.buf, data...)
		s.next++
		for {
			held, ok := s.held[s.next]
			if !ok {
				break
			}
			delete(s.held, s.next)
			s.buf = append(s.buf, held...)
			s.next++
		}
		s.cond.Broadcast()
	} else if seq > s.next {
		s.held[seq] = append([]byte(nil), data...)
	}
}

func (s *session) close() {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

// setFin records the peer's announced total block count.
func (s *session) setFin(total uint64) {
	s.mu.Lock()
	s.fin = total + 1
	s.cond.Broadcast()
	s.mu.Unlock()
}

// finished reports whether every announced block has been delivered.
func (s *session) finishedLocked() bool {
	return s.fin > 0 && s.next >= s.fin-1
}

// read pulls reassembled bytes.
func (s *session) read(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.buf) == 0 {
		if s.closed || s.finishedLocked() {
			return 0, io.EOF
		}
		if s.clock.Expired(s.rdl) {
			return 0, errStegTimeout
		}
		s.cond.WaitDeadline(s.rdl)
	}
	n := copy(p, s.buf)
	s.buf = s.buf[n:]
	return n, nil
}

// chopConn is one endpoint of the chopped stream: it writes blocks
// round-robin over the fan-out conns and reads from the session.
type chopConn struct {
	cfg   Config
	sid   uint64
	conns []net.Conn
	wbufs []*bufio.Writer
	recv  *session

	wmu     sync.Mutex
	sendSeq uint64
	rrIndex int
	rng     *rand.Rand
	closed  bool
	wdone   bool

	readersMu sync.Mutex
	readers   int
}

func newChopConn(clock *netem.Clock, cfg Config, sid uint64, conns []net.Conn, seed int64) *chopConn {
	c := &chopConn{
		cfg:     cfg,
		sid:     sid,
		conns:   conns,
		recv:    newSession(clock),
		rng:     rand.New(rand.NewSource(seed)),
		readers: len(conns),
	}
	for _, conn := range conns {
		conn := conn
		c.wbufs = append(c.wbufs, bufio.NewWriterSize(conn, 8<<10))
		clock.Go(func() { c.readLoop(conn) })
	}
	return c
}

// readLoop decodes covers from one fan-out conn. A clean EOF on one conn
// does not kill the session — blocks may still be in flight on the
// others; the session ends when the FIN accounting completes or every
// reader is gone.
func (c *chopConn) readLoop(conn net.Conn) {
	defer func() {
		c.readersMu.Lock()
		c.readers--
		last := c.readers == 0
		c.readersMu.Unlock()
		if last {
			c.recv.close()
		}
	}()
	br := bufio.NewReaderSize(conn, 8<<10)
	for {
		block, err := decodeCover(br)
		if err != nil {
			return
		}
		if len(block) < blockHeader {
			return
		}
		seq := binary.BigEndian.Uint64(block[8:16])
		n := binary.BigEndian.Uint32(block[16:20])
		if n == finLen {
			c.recv.setFin(seq)
			continue
		}
		if int(n)+blockHeader > len(block) {
			return
		}
		c.recv.accept(seq, block[blockHeader:blockHeader+int(n)])
	}
}

// CloseWrite flushes a FIN block announcing the total block count, so
// the peer can drain every fan-out conn before reporting EOF.
func (c *chopConn) CloseWrite() error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if c.closed || c.wdone {
		return nil
	}
	c.wdone = true
	fin := make([]byte, blockHeader)
	binary.BigEndian.PutUint64(fin[0:8], c.sid)
	binary.BigEndian.PutUint64(fin[8:16], c.sendSeq)
	binary.BigEndian.PutUint32(fin[16:20], finLen)
	// Every conn carries the FIN: whichever the receiver reads first
	// sets the accounting, and per-conn half-close lets readers drain.
	var firstErr error
	for i := range c.conns {
		if err := encodeCover(c.wbufs[i], fin); err != nil && firstErr == nil {
			firstErr = err
		}
		if hc, ok := c.conns[i].(pt.HalfCloser); ok {
			hc.CloseWrite()
		}
	}
	return firstErr
}

// Write chops p into blocks and spreads them over the conns.
func (c *chopConn) Write(p []byte) (int, error) {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if c.closed || c.wdone {
		return 0, errors.New("stegotorus: closed")
	}
	written := 0
	for len(p) > 0 {
		size := c.cfg.MinBlock
		if c.cfg.MaxBlock > c.cfg.MinBlock {
			size += c.rng.Intn(c.cfg.MaxBlock - c.cfg.MinBlock)
		}
		if size > len(p) {
			size = len(p)
		}
		block := make([]byte, blockHeader+size)
		binary.BigEndian.PutUint64(block[0:8], c.sid)
		binary.BigEndian.PutUint64(block[8:16], c.sendSeq)
		binary.BigEndian.PutUint32(block[16:20], uint32(size))
		copy(block[blockHeader:], p[:size])
		c.sendSeq++

		idx := c.rrIndex % len(c.conns)
		c.rrIndex++
		if err := encodeCover(c.wbufs[idx], block); err != nil {
			return written, err
		}
		written += size
		p = p[size:]
	}
	return written, nil
}

// Read implements net.Conn.
func (c *chopConn) Read(p []byte) (int, error) { return c.recv.read(p) }

// Close implements net.Conn.
func (c *chopConn) Close() error {
	c.wmu.Lock()
	c.closed = true
	c.wmu.Unlock()
	c.recv.close()
	for _, conn := range c.conns {
		conn.Close()
	}
	return nil
}

// LocalAddr implements net.Conn.
func (c *chopConn) LocalAddr() net.Addr { return stegAddr("stegotorus") }

// RemoteAddr implements net.Conn.
func (c *chopConn) RemoteAddr() net.Addr { return stegAddr("stegotorus-peer") }

// SetDeadline implements net.Conn.
func (c *chopConn) SetDeadline(t time.Time) error { return c.SetReadDeadline(t) }

// SetReadDeadline implements net.Conn.
func (c *chopConn) SetReadDeadline(t time.Time) error {
	c.recv.mu.Lock()
	c.recv.rdl = t
	c.recv.cond.Broadcast()
	c.recv.mu.Unlock()
	return nil
}

// SetWriteDeadline implements net.Conn as a no-op.
func (c *chopConn) SetWriteDeadline(time.Time) error { return nil }

type stegAddr string

func (stegAddr) Network() string  { return "steg" }
func (a stegAddr) String() string { return string(a) }

type stegTimeout struct{}

func (stegTimeout) Error() string   { return "stegotorus: i/o timeout" }
func (stegTimeout) Timeout() bool   { return true }
func (stegTimeout) Temporary() bool { return true }

var errStegTimeout = stegTimeout{}

// Server is the stegotorus server.
type Server struct {
	cfg    Config
	ln     *netem.Listener
	clock  *netem.Clock
	handle pt.StreamHandler

	mu       sync.Mutex
	pending  map[uint64]*pendingSession
	nextSeed int64
}

// pendingSession gathers a session's fan-out conns until all arrive.
type pendingSession struct {
	conns []net.Conn
	want  int
}

// StartServer runs a stegotorus server on host:port.
func StartServer(host *netem.Host, port int, cfg Config, handle pt.StreamHandler) (*Server, error) {
	ln, err := host.Listen(port)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:      cfg.withDefaults(),
		ln:       ln,
		clock:    host.Network().Clock(),
		handle:   handle,
		pending:  make(map[uint64]*pendingSession),
		nextSeed: cfg.Seed + 11,
	}
	s.clock.Go(s.acceptLoop)
	return s, nil
}

// Addr returns the server's contact address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server.
func (s *Server) Close() error { return s.ln.Close() }

// Connection preamble: [8B session][1B index][1B total].
func (s *Server) acceptLoop() {
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return
		}
		conn := c
		s.clock.Go(func() {
			c := conn
			var pre [10]byte
			if _, err := io.ReadFull(c, pre[:]); err != nil {
				c.Close()
				return
			}
			sid := binary.BigEndian.Uint64(pre[:8])
			total := int(pre[9])
			if total <= 0 || total > 16 {
				c.Close()
				return
			}
			s.mu.Lock()
			ps := s.pending[sid]
			if ps == nil {
				ps = &pendingSession{want: total}
				s.pending[sid] = ps
			}
			ps.conns = append(ps.conns, c)
			ready := len(ps.conns) == ps.want
			var conns []net.Conn
			if ready {
				conns = ps.conns
				delete(s.pending, sid)
				s.nextSeed++
			}
			seed := s.nextSeed
			s.mu.Unlock()
			if !ready {
				return
			}
			cc := newChopConn(s.clock, s.cfg, sid, conns, seed)
			target, err := pt.ReadTarget(cc)
			if err != nil {
				cc.Close()
				return
			}
			s.handle(target, cc)
		})
	}
}

// Dialer is the stegotorus client.
type Dialer struct {
	cfg  Config
	host *netem.Host
	addr string

	mu   sync.Mutex
	next uint64
}

// NewDialer returns a stegotorus client for a server at addr.
func NewDialer(host *netem.Host, addr string, cfg Config) *Dialer {
	return &Dialer{cfg: cfg.withDefaults(), host: host, addr: addr, next: uint64(cfg.Seed)*0x9e3779b9 + 7}
}

// Dial implements pt.Dialer: open the fan-out, announce the session on
// every conn, then chop.
func (d *Dialer) Dial(target string) (net.Conn, error) {
	d.mu.Lock()
	d.next++
	sid := d.next
	seed := int64(d.next) + d.cfg.Seed
	d.mu.Unlock()

	conns := make([]net.Conn, 0, d.cfg.Conns)
	for i := 0; i < d.cfg.Conns; i++ {
		c, err := d.host.Dial(d.addr)
		if err != nil {
			for _, cc := range conns {
				cc.Close()
			}
			return nil, fmt.Errorf("stegotorus: %w", err)
		}
		var pre [10]byte
		binary.BigEndian.PutUint64(pre[:8], sid)
		pre[8] = byte(i)
		pre[9] = byte(d.cfg.Conns)
		if _, err := c.Write(pre[:]); err != nil {
			c.Close()
			for _, cc := range conns {
				cc.Close()
			}
			return nil, err
		}
		conns = append(conns, c)
	}
	cc := newChopConn(d.host.Network().Clock(), d.cfg, sid, conns, seed)
	if err := pt.WriteTarget(cc, target); err != nil {
		cc.Close()
		return nil, err
	}
	return cc, nil
}
