package stegotorus

import (
	"bufio"
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"ptperf/internal/netem"
)

func TestCoverCodecRoundTrip(t *testing.T) {
	f := func(block []byte) bool {
		var buf bytes.Buffer
		w := bufio.NewWriter(&buf)
		if err := encodeCover(w, block); err != nil {
			return false
		}
		got, err := decodeCover(bufio.NewReader(&buf))
		if err != nil {
			return false
		}
		return bytes.Equal(got, block)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestCoverLooksLikeHTTP(t *testing.T) {
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	if err := encodeCover(w, []byte("secret tor cell")); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if !strings.HasPrefix(text, "POST /images/upload HTTP/1.1\r\n") {
		t.Fatalf("cover not HTTP-shaped: %q", text[:40])
	}
	if strings.Contains(text, "secret tor cell") {
		t.Fatal("payload leaked in cleartext")
	}
	if !strings.Contains(text, "Content-Length:") {
		t.Fatal("cover lacks Content-Length")
	}
}

func TestDecodeCoverRejectsGarbage(t *testing.T) {
	if _, err := decodeCover(bufio.NewReader(strings.NewReader("GET / HTTP/1.1\r\n\r\n"))); err == nil {
		t.Fatal("non-cover request must be rejected")
	}
}

func TestSessionReorders(t *testing.T) {
	s := newSession(netem.NewClock(0))
	s.accept(2, []byte("cc"))
	s.accept(0, []byte("aa"))
	s.accept(1, []byte("bb"))
	buf := make([]byte, 6)
	n, err := s.read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf[:n]) != "aabbcc" {
		t.Fatalf("got %q", buf[:n])
	}
}

func TestSessionDuplicateIgnored(t *testing.T) {
	s := newSession(netem.NewClock(0))
	s.accept(0, []byte("x"))
	s.accept(0, []byte("y")) // duplicate seq: ignored
	buf := make([]byte, 4)
	n, _ := s.read(buf)
	if string(buf[:n]) != "x" {
		t.Fatalf("got %q", buf[:n])
	}
}

func TestSessionCloseDrainsThenEOF(t *testing.T) {
	s := newSession(netem.NewClock(0))
	s.accept(0, []byte("tail"))
	s.close()
	buf := make([]byte, 8)
	n, err := s.read(buf)
	if err != nil || string(buf[:n]) != "tail" {
		t.Fatalf("drain failed: %q %v", buf[:n], err)
	}
	if _, err := s.read(buf); err == nil {
		t.Fatal("want EOF after drain")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Conns != DefaultConns || c.MinBlock != DefaultMinBlock || c.MaxBlock != DefaultMaxBlock {
		t.Fatalf("defaults: %+v", c)
	}
	c2 := Config{MinBlock: 500, MaxBlock: 100}.withDefaults()
	if c2.MaxBlock < c2.MinBlock {
		t.Fatal("max must not stay below min")
	}
}

func TestCutPrefixFold(t *testing.T) {
	if rest, ok := cutPrefixFold("Content-Length: 42", "content-length:"); !ok || strings.TrimSpace(rest) != "42" {
		t.Fatalf("fold failed: %q %v", rest, ok)
	}
	if _, ok := cutPrefixFold("Host: x", "content-length:"); ok {
		t.Fatal("wrong header matched")
	}
}
