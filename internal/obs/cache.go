package obs

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime/debug"
	"sync"

	"ptperf/internal/testbed"
)

// This file is the content-addressed world-result cache. A cell's cache
// key digests everything its result is a function of: the cell key, the
// fully-defaulted testbed.Options (scenario and fault specs included —
// they are plain value trees, so encoding/json renders them
// canonically), a campaign-spec string naming the harness knobs the
// cell's measurement reads (sites, repeats, method list, sampling
// interval, ...), and the code version. Equal digest ⇒ byte-identical
// result, because worlds are deterministic functions of exactly those
// inputs — the determinism tests are what make this cache sound.
//
// Entries are JSON files named <digest>.json under the cache directory,
// written atomically (temp file + rename) so a killed run never leaves
// a torn entry. The value is the cell's result re-encoded as JSON; the
// harness registers a decoder per cell kind and the determinism
// contract plus Go's canonical float formatting guarantee a decoded
// value renders byte-identically to a computed one.

// CacheVersion invalidates every cache entry when the measurement
// semantics change. It is combined with the module's VCS revision when
// the binary carries one; bump it when making changes that alter
// results without a revision change being visible (e.g. `go test` in a
// dirty tree).
const CacheVersion = "ptperf-cache-v1"

// codeVersion returns the cache's code-version component.
func codeVersion() string {
	v := CacheVersion
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" {
				v += "+" + s.Value
			}
			if s.Key == "vcs.modified" && s.Value == "true" {
				v += "+dirty"
			}
		}
	}
	return v
}

// CellDigest returns the content address of one world-cell computation:
// sha256 over the canonical JSON of (version, cell key, campaign spec,
// fully-defaulted options). opts is digested after defaulting so two
// spellings of the same world share an entry.
func CellDigest(key string, opts testbed.Options, spec string) string {
	fp := struct {
		Version string
		Key     string
		Spec    string
		Opts    testbed.Options
	}{codeVersion(), key, spec, opts.WithDefaults()}
	b, err := json.Marshal(fp)
	if err != nil {
		// Options is a plain value tree; a marshal failure is a
		// programming error in this package, not an input condition.
		panic(fmt.Sprintf("obs: cell digest marshal: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// Entry is one cached cell: the result value (as JSON) plus the metric
// timeline recorded while computing it (nil when metrics were off).
type Entry struct {
	// Key is the cell key, stored for humans inspecting the cache.
	Key string
	// Digest is the entry's content address (redundant with the file
	// name; Load cross-checks it).
	Digest string
	// Value is the cell result, JSON-encoded.
	Value json.RawMessage
	// Timeline is the cell's metric timeline, if one was recorded.
	Timeline *Timeline
}

// CacheStats counts one run's cache traffic.
type CacheStats struct {
	// Hits counts cells answered from the cache.
	Hits int
	// Misses counts lookups that found no (valid) entry.
	Misses int
	// Stores counts entries written.
	Stores int
}

// Cache is a content-addressed store of world-cell results under one
// directory. Methods are safe for concurrent use from world tasks.
type Cache struct {
	dir string

	mu    sync.Mutex
	stats CacheStats
}

// OpenCache opens (creating if needed) a cache directory.
func OpenCache(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("obs: open cache: %w", err)
	}
	return &Cache{dir: dir}, nil
}

// Dir returns the cache directory.
func (c *Cache) Dir() string { return c.dir }

// Stats returns the traffic counters so far.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

func (c *Cache) path(digest string) string {
	return filepath.Join(c.dir, digest+".json")
}

// Load fetches the entry at digest. A missing, unreadable or
// digest-mismatched entry is a miss (corrupt entries are treated as
// absent, never fatal).
func (c *Cache) Load(digest string) (*Entry, bool) {
	count := func(hit bool) {
		c.mu.Lock()
		if hit {
			c.stats.Hits++
		} else {
			c.stats.Misses++
		}
		c.mu.Unlock()
	}
	data, err := os.ReadFile(c.path(digest))
	if err != nil {
		count(false)
		return nil, false
	}
	var e Entry
	if err := json.Unmarshal(data, &e); err != nil || e.Digest != digest {
		count(false)
		return nil, false
	}
	count(true)
	return &e, true
}

// Store writes the entry at its digest, atomically (temp file in the
// cache directory, then rename).
func (c *Cache) Store(e *Entry) error {
	data, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("obs: cache store %s: %w", e.Key, err)
	}
	tmp, err := os.CreateTemp(c.dir, "tmp-*")
	if err != nil {
		return fmt.Errorf("obs: cache store %s: %w", e.Key, err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("obs: cache store %s: %w", e.Key, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("obs: cache store %s: %w", e.Key, err)
	}
	if err := os.Rename(tmp.Name(), c.path(e.Digest)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("obs: cache store %s: %w", e.Key, err)
	}
	c.mu.Lock()
	c.stats.Stores++
	c.mu.Unlock()
	return nil
}
