package obs

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"ptperf/internal/testbed"
)

func testOpts() testbed.Options {
	return testbed.Options{Seed: 3, ByteScale: 0.06, TrancoN: 2, CBLN: 2}
}

// TestCellDigest pins the digest contract: stable across calls,
// default-insensitive (two spellings of the same world share an entry),
// and sensitive to every input component.
func TestCellDigest(t *testing.T) {
	opts := testOpts()
	d := CellDigest("cell", opts, "spec")
	if d != CellDigest("cell", opts, "spec") {
		t.Fatal("digest unstable across calls")
	}
	if d != CellDigest("cell", opts.WithDefaults(), "spec") {
		t.Fatal("defaulted and raw options digest differently")
	}
	if d == CellDigest("other", opts, "spec") {
		t.Fatal("digest insensitive to cell key")
	}
	if d == CellDigest("cell", opts, "spec2") {
		t.Fatal("digest insensitive to campaign spec")
	}
	mutated := opts
	mutated.TrancoN = 3
	if d == CellDigest("cell", mutated, "spec") {
		t.Fatal("digest insensitive to world options")
	}
	mutated = opts
	mutated.Scenario = "lossy-path"
	if d == CellDigest("cell", mutated, "spec") {
		t.Fatal("digest insensitive to censor scenario")
	}
}

// TestCacheRoundTrip stores an entry and loads it back bit-identically,
// checking the traffic counters along the way.
func TestCacheRoundTrip(t *testing.T) {
	c, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	digest := CellDigest("cell", testOpts(), "spec")
	if _, ok := c.Load(digest); ok {
		t.Fatal("empty cache reported a hit")
	}
	tl := &Timeline{Interval: time.Second, Samples: []Sample{{T: time.Second}}}
	val := json.RawMessage(`{"x":1.5}`)
	if err := c.Store(&Entry{Key: "cell", Digest: digest, Value: val, Timeline: tl}); err != nil {
		t.Fatalf("store: %v", err)
	}
	e, ok := c.Load(digest)
	if !ok {
		t.Fatal("stored entry missed")
	}
	if string(e.Value) != string(val) || e.Key != "cell" {
		t.Fatalf("entry round-trip mangled: %+v", e)
	}
	if e.Timeline == nil || len(e.Timeline.Samples) != 1 || e.Timeline.Samples[0].T != time.Second {
		t.Fatalf("timeline round-trip mangled: %+v", e.Timeline)
	}
	if st := c.Stats(); st != (CacheStats{Hits: 1, Misses: 1, Stores: 1}) {
		t.Fatalf("stats = %+v, want 1/1/1", st)
	}
}

// TestCacheCorruptEntry requires corrupt or mismatched entries to read
// as misses, never as errors.
func TestCacheCorruptEntry(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	digest := CellDigest("cell", testOpts(), "spec")
	if err := os.WriteFile(filepath.Join(dir, digest+".json"), []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Load(digest); ok {
		t.Fatal("corrupt entry loaded as a hit")
	}
	// An entry whose recorded digest disagrees with its address is
	// likewise a miss (a mis-filed or tampered entry must recompute).
	b, _ := json.Marshal(&Entry{Key: "cell", Digest: "bogus", Value: json.RawMessage(`1`)})
	if err := os.WriteFile(filepath.Join(dir, digest+".json"), b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Load(digest); ok {
		t.Fatal("digest-mismatched entry loaded as a hit")
	}
}
