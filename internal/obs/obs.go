// Package obs is the campaign observability layer: it turns the counter
// surfaces the simulator already keeps — netem's link accounting,
// censor verdicts, the relay cell scheduler, client recovery — into
// deterministic per-virtual-second timelines, and exports them as
// Prometheus text exposition and a self-contained HTML report. On the
// same plumbing it provides content-addressed caching of world-cell
// results, so repeated campaigns recompute only cells whose inputs
// changed.
//
// A Recorder attaches to one world and samples on the world's own
// virtual clock: the sampler is a simulation goroutine waking every
// Interval of virtual time, so samples land at exact virtual instants,
// interleave deterministically with the campaign, and are byte-identical
// across runs and across -jobs values. Attaching a recorder does add a
// timer to the world's event stream — same-instant tie-breaks can
// shift — so the harness only attaches recorders when metrics are
// requested and folds the sampling interval into every cache digest:
// a cached cell is only reused for the identical instrumentation.
//
// Each sample stores interval deltas (via netem.AcctSnapshot.Sub), not
// cumulative values: deltas sum exactly back to the final snapshot,
// which is the timeline-conservation invariant the simulation-torture
// suite (internal/simtest) checks on every fuzzed world. Samples in
// which nothing moved are elided — virtual drains cost nothing to skip
// — and elision is value-driven, so it never breaks determinism.
package obs

import (
	"sync"
	"time"

	"ptperf/internal/censor"
	"ptperf/internal/netem"
	"ptperf/internal/testbed"
	"ptperf/internal/tor"
)

// DefaultInterval is the sampling cadence used when a caller enables
// metrics without choosing one: one virtual second, the resolution the
// paper's timeline figures use.
const DefaultInterval = time.Second

// Sources names the counter surfaces a Recorder samples. Clock and Acct
// are required; the rest are optional and sampled when non-nil. The
// closures are invoked from the sampler's simulation goroutine (the
// world is otherwise parked at that instant), so they may touch world
// state freely but must be deterministic.
type Sources struct {
	// Clock is the world's virtual clock; the sampler runs on it.
	Clock *netem.Clock
	// Acct is the world's link-layer accounting.
	Acct *netem.Acct
	// Censor reports the adversary's verdict counters.
	Censor func() censor.Stats
	// Relays lists the world's relays; re-queried every sample so
	// relays started mid-campaign (shared-hop guards, PT bridges)
	// appear from their first live interval.
	Relays func() []*tor.Relay
	// Recovery reports per-method client recovery counters; re-queried
	// every sample so lazily built deployments appear once built.
	Recovery func() []MethodRecovery
}

// MethodRecovery is one access method's cumulative recovery counters at
// a sample instant.
type MethodRecovery struct {
	Method string
	Stats  tor.RecoveryStats
}

// Recorder samples one world's counters into a Timeline. Create with
// Attach (or AttachWorld), stop with Close.
type Recorder struct {
	src      Sources
	interval time.Duration

	mu     sync.Mutex
	closed bool
	lastT  time.Duration
	prev   prevState
	tl     *Timeline
}

// prevState holds the previous sample's cumulative counters, the
// baseline the next sample's deltas subtract from.
type prevState struct {
	acct     netem.AcctSnapshot
	censor   censor.Stats
	relays   map[string]tor.SchedStats
	recovery map[string]tor.RecoveryStats
}

// Attach starts sampling src every interval of virtual time and returns
// the recorder. Call from the world's driver goroutine (it spawns the
// sampler via Clock.Go). interval <= 0 uses DefaultInterval.
func Attach(src Sources, interval time.Duration) *Recorder {
	if interval <= 0 {
		interval = DefaultInterval
	}
	r := &Recorder{
		src:      src,
		interval: interval,
		lastT:    -1,
		prev: prevState{
			relays:   make(map[string]tor.SchedStats),
			recovery: make(map[string]tor.RecoveryStats),
		},
		tl: &Timeline{Interval: interval},
	}
	src.Clock.Go(r.loop)
	return r
}

// AttachWorld wires a Recorder to a testbed world's standard surfaces:
// link accounting, the censor (when attached), every relay ever started
// (re-queried per sample), and each built deployment's recovery
// counters.
func AttachWorld(w *testbed.World, interval time.Duration) *Recorder {
	src := Sources{
		Clock:  w.Net.Clock(),
		Acct:   w.Net.Acct(),
		Relays: w.Relays,
		Recovery: func() []MethodRecovery {
			deps := w.BuiltDeployments()
			out := make([]MethodRecovery, 0, len(deps))
			for _, d := range deps {
				out = append(out, MethodRecovery{Method: d.Name, Stats: d.Recovery()})
			}
			return out
		},
	}
	if w.Censor != nil {
		src.Censor = w.Censor.Stats
	}
	return Attach(src, interval)
}

// loop is the sampler: a simulation goroutine waking every interval of
// virtual time. After Close it exits on its next wake; a world that is
// simply abandoned leaves it parked on a timer, which is harmless.
func (r *Recorder) loop() {
	for {
		r.src.Clock.Sleep(r.interval)
		r.mu.Lock()
		if r.closed {
			r.mu.Unlock()
			return
		}
		r.sampleLocked()
		r.mu.Unlock()
	}
}

// Close takes a final sample at the current virtual instant (unless one
// was already taken there), stops the sampler, and returns the finished
// timeline. Call from the world's driver at a quiescent point; after
// Close the timeline is immutable.
func (r *Recorder) Close() *Timeline {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.closed {
		r.sampleLocked()
		r.closed = true
		r.tl.Final = r.prev.acct
	}
	return r.tl
}

// sampleLocked appends one sample of interval deltas at the current
// virtual instant. Samples in which no counter moved are elided, but
// the baselines still advance, so elision never loses a delta.
func (r *Recorder) sampleLocked() {
	now := r.src.Clock.Now()
	if now == r.lastT {
		return
	}
	r.lastT = now

	s := Sample{T: now}
	acct := r.src.Acct.Snapshot()
	var reg int
	s.Acct, reg = acct.Sub(r.prev.acct)
	r.tl.Regressions += reg
	// A zero delta with an unchanged gauge is an uneventful interval.
	interesting := s.Acct != (netem.AcctSnapshot{BytesBuffered: r.prev.acct.BytesBuffered})
	r.prev.acct = acct

	if r.src.Censor != nil {
		cur := r.src.Censor()
		s.Censor = censor.Stats{
			BlockedDials:      clampInt(cur.BlockedDials-r.prev.censor.BlockedDials, &r.tl.Regressions),
			FlowsCut:          clampInt(cur.FlowsCut-r.prev.censor.FlowsCut, &r.tl.Regressions),
			Resets:            clampInt(cur.Resets-r.prev.censor.Resets, &r.tl.Regressions),
			LossEvents:        clampInt(cur.LossEvents-r.prev.censor.LossEvents, &r.tl.Regressions),
			ThrottledSegments: clampInt(cur.ThrottledSegments-r.prev.censor.ThrottledSegments, &r.tl.Regressions),
		}
		if s.Censor != (censor.Stats{}) {
			interesting = true
		}
		r.prev.censor = cur
	}

	if r.src.Relays != nil {
		for _, relay := range r.src.Relays() {
			name := relay.Name()
			cur := relay.SchedStats()
			old := r.prev.relays[name]
			p := RelayPoint{
				Relay:   name,
				Pending: cur.Pending,
				Queued:  clamp64(cur.Queued-old.Queued, &r.tl.Regressions),
				Flushed: clamp64(cur.Flushed-old.Flushed, &r.tl.Regressions),
				Dropped: clamp64(cur.Dropped-old.Dropped, &r.tl.Regressions),
				Delay:   time.Duration(clamp64(int64(cur.DelaySum-old.DelaySum), &r.tl.Regressions)),
			}
			r.prev.relays[name] = cur
			// A relay with no queue movement and an empty queue
			// contributes nothing to any series.
			if p.Pending != 0 || p.Queued != 0 || p.Flushed != 0 || p.Dropped != 0 || p.Delay != 0 {
				s.Relays = append(s.Relays, p)
				interesting = true
			}
		}
	}

	if r.src.Recovery != nil {
		for _, mr := range r.src.Recovery() {
			old := r.prev.recovery[mr.Method]
			cur := mr.Stats
			p := RecoveryPoint{
				Method:          mr.Method,
				Rebuilds:        clamp64(cur.Rebuilds-old.Rebuilds, &r.tl.Regressions),
				BuildTimeouts:   clamp64(cur.BuildTimeouts-old.BuildTimeouts, &r.tl.Regressions),
				StreamFailures:  clamp64(cur.StreamFailures-old.StreamFailures, &r.tl.Regressions),
				ReAttaches:      clamp64(cur.ReAttaches-old.ReAttaches, &r.tl.Regressions),
				Abandoned:       clamp64(cur.Abandoned-old.Abandoned, &r.tl.Regressions),
				GuardProbations: clamp64(cur.GuardProbations-old.GuardProbations, &r.tl.Regressions),
			}
			r.prev.recovery[mr.Method] = cur
			if p != (RecoveryPoint{Method: mr.Method}) {
				s.Recovery = append(s.Recovery, p)
				interesting = true
			}
		}
	}

	if interesting {
		r.tl.Samples = append(r.tl.Samples, s)
	}
}

// clampInt clamps a negative int delta to zero, counting the regression.
func clampInt(d int, regressions *int) int {
	if d < 0 {
		*regressions++
		return 0
	}
	return d
}

// clamp64 clamps a negative int64 delta to zero, counting the
// regression.
func clamp64(d int64, regressions *int) int64 {
	if d < 0 {
		*regressions++
		return 0
	}
	return d
}
