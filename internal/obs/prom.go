package obs

import (
	"fmt"
	"io"
	"sort"
	"time"

	"ptperf/internal/censor"
	"ptperf/internal/netem"
)

// This file renders timelines as Prometheus text exposition (version
// 0.0.4): "# HELP"/"# TYPE" headers followed by sample lines with
// millisecond timestamps of VIRTUAL time. The output is deterministic —
// cells in caller order, relays and methods sorted, fixed number
// formats — so a byte-compare of two dumps is a valid determinism
// check, and the cache can treat the rendering as canonical. Counter
// series are cumulative (re-summed from the stored interval deltas);
// a point is emitted only when the value changed since the previous
// emitted point, plus always at the final sample, which keeps long
// drains from bloating the dump.

// acctCounters maps metric names to AcctSnapshot delta fields, in
// output order.
var acctCounters = []struct {
	name, help string
	field      func(netem.AcctSnapshot) int64
}{
	{"ptperf_dials_total", "Connection attempts that reached policy/establishment.", func(a netem.AcctSnapshot) int64 { return a.Dials }},
	{"ptperf_dials_refused_total", "Dials refused by the installed censor policy.", func(a netem.AcctSnapshot) int64 { return a.DialsRefused }},
	{"ptperf_conns_opened_total", "Established conn endpoints (two per flow).", func(a netem.AcctSnapshot) int64 { return a.ConnsOpened }},
	{"ptperf_conns_closed_total", "Conn endpoints closed or aborted.", func(a netem.AcctSnapshot) int64 { return a.ConnsClosed }},
	{"ptperf_segments_sent_total", "Segments accepted into pipes.", func(a netem.AcctSnapshot) int64 { return a.SegmentsSent }},
	{"ptperf_segments_filtered_total", "Policy FilterSegment consultations.", func(a netem.AcctSnapshot) int64 { return a.SegmentsFiltered }},
	{"ptperf_bytes_sent_total", "Payload bytes accepted into pipes.", func(a netem.AcctSnapshot) int64 { return a.BytesSent }},
	{"ptperf_bytes_delivered_total", "Payload bytes read out of pipes.", func(a netem.AcctSnapshot) int64 { return a.BytesDelivered }},
	{"ptperf_bytes_dropped_total", "Buffered bytes discarded by reader closes.", func(a netem.AcctSnapshot) int64 { return a.BytesDropped }},
	{"ptperf_cells_queued_total", "Relay cells accepted into per-circuit queues.", func(a netem.AcctSnapshot) int64 { return a.CellsQueued }},
	{"ptperf_cells_flushed_total", "Queued relay cells written to links.", func(a netem.AcctSnapshot) int64 { return a.CellsFlushed }},
	{"ptperf_cells_dropped_total", "Queued relay cells discarded at teardown.", func(a netem.AcctSnapshot) int64 { return a.CellsDropped }},
}

// censorCounters maps metric names to censor.Stats delta fields.
var censorCounters = []struct {
	name, help string
	field      func(censor.Stats) int64
}{
	{"ptperf_censor_blocked_dials_total", "Dials refused by Block rules.", func(s censor.Stats) int64 { return int64(s.BlockedDials) }},
	{"ptperf_censor_flows_cut_total", "Established flows torn down by rule activation.", func(s censor.Stats) int64 { return int64(s.FlowsCut) }},
	{"ptperf_censor_resets_total", "Injected mid-flight RSTs.", func(s censor.Stats) int64 { return int64(s.Resets) }},
	{"ptperf_censor_loss_events_total", "Induced per-segment loss events.", func(s censor.Stats) int64 { return int64(s.LossEvents) }},
	{"ptperf_censor_throttled_segments_total", "Segments serialized through a throttle.", func(s censor.Stats) int64 { return int64(s.ThrottledSegments) }},
}

// relayCounters maps metric names to RelayPoint delta fields.
var relayCounters = []struct {
	name, help string
	field      func(RelayPoint) int64
}{
	{"ptperf_relay_cells_queued_total", "Cells accepted into this relay's circuit queues.", func(p RelayPoint) int64 { return p.Queued }},
	{"ptperf_relay_cells_flushed_total", "Cells this relay's scheduler wrote to links.", func(p RelayPoint) int64 { return p.Flushed }},
	{"ptperf_relay_cells_dropped_total", "Cells this relay dropped at circuit teardown.", func(p RelayPoint) int64 { return p.Dropped }},
}

// recoveryCounters maps metric names to RecoveryPoint delta fields.
var recoveryCounters = []struct {
	name, help string
	field      func(RecoveryPoint) int64
}{
	{"ptperf_recovery_rebuilds_total", "Circuit-build attempts after a failed one.", func(p RecoveryPoint) int64 { return p.Rebuilds }},
	{"ptperf_recovery_build_timeouts_total", "Circuit builds that hit the build timeout.", func(p RecoveryPoint) int64 { return p.BuildTimeouts }},
	{"ptperf_recovery_stream_failures_total", "Stream opens that failed on a circuit.", func(p RecoveryPoint) int64 { return p.StreamFailures }},
	{"ptperf_recovery_reattaches_total", "Streams re-attached to a fresh circuit.", func(p RecoveryPoint) int64 { return p.ReAttaches }},
	{"ptperf_recovery_abandoned_total", "Streams given up after exhausting retries.", func(p RecoveryPoint) int64 { return p.Abandoned }},
	{"ptperf_recovery_guard_probations_total", "Guard-failure probation sentences.", func(p RecoveryPoint) int64 { return p.GuardProbations }},
}

// WritePrometheus renders the cells' timelines as Prometheus text
// exposition in the order given. Cells with nil or empty timelines are
// skipped silently.
func WritePrometheus(w io.Writer, cells []CellTimeline) {
	ms := func(t time.Duration) int64 { return int64(t / time.Millisecond) }

	// emit writes one counter series for one cell: cumulative values at
	// each change point, plus the final sample.
	emit := func(name, labels string, tl *Timeline, delta func(Sample) int64) {
		var cum, lastWritten int64
		wrote := false
		for i, s := range tl.Samples {
			cum += delta(s)
			final := i == len(tl.Samples)-1
			if !wrote || cum != lastWritten || final {
				fmt.Fprintf(w, "%s{%s} %d %d\n", name, labels, cum, ms(s.T))
				lastWritten, wrote = cum, true
			}
		}
	}

	header := func(name, help, typ string) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	}

	live := make([]CellTimeline, 0, len(cells))
	for _, c := range cells {
		if c.Timeline != nil && len(c.Timeline.Samples) > 0 {
			live = append(live, c)
		}
	}
	if len(live) == 0 {
		return
	}

	for _, m := range acctCounters {
		m := m
		header(m.name, m.help, "counter")
		for _, c := range live {
			emit(m.name, fmt.Sprintf("cell=%q", c.Cell), c.Timeline, func(s Sample) int64 { return m.field(s.Acct) })
		}
	}

	header("ptperf_bytes_buffered", "Bytes in flight in live pipes (gauge).", "gauge")
	for _, c := range live {
		labels := fmt.Sprintf("cell=%q", c.Cell)
		var last int64
		wrote := false
		for i, s := range c.Timeline.Samples {
			v := s.Acct.BytesBuffered
			final := i == len(c.Timeline.Samples)-1
			if !wrote || v != last || final {
				fmt.Fprintf(w, "ptperf_bytes_buffered{%s} %d %d\n", labels, v, ms(s.T))
				last, wrote = v, true
			}
		}
	}

	for _, m := range censorCounters {
		m := m
		header(m.name, m.help, "counter")
		for _, c := range live {
			emit(m.name, fmt.Sprintf("cell=%q", c.Cell), c.Timeline, func(s Sample) int64 { return m.field(s.Censor) })
		}
	}

	// Per-relay series: collect each cell's relay names (sorted) and
	// emit one series per (cell, relay).
	relayNames := func(tl *Timeline) []string {
		seen := make(map[string]bool)
		var names []string
		for _, s := range tl.Samples {
			for _, p := range s.Relays {
				if !seen[p.Relay] {
					seen[p.Relay] = true
					names = append(names, p.Relay)
				}
			}
		}
		sort.Strings(names)
		return names
	}
	relayPoint := func(s Sample, name string) (RelayPoint, bool) {
		for _, p := range s.Relays {
			if p.Relay == name {
				return p, true
			}
		}
		return RelayPoint{}, false
	}
	for _, m := range relayCounters {
		m := m
		header(m.name, m.help, "counter")
		for _, c := range live {
			for _, name := range relayNames(c.Timeline) {
				name := name
				emit(m.name, fmt.Sprintf("cell=%q,relay=%q", c.Cell, name), c.Timeline, func(s Sample) int64 {
					p, _ := relayPoint(s, name)
					return m.field(p)
				})
			}
		}
	}
	header("ptperf_relay_queue_delay_seconds_total", "Queueing delay accumulated by flushed cells.", "counter")
	for _, c := range live {
		for _, name := range relayNames(c.Timeline) {
			var cum time.Duration
			var lastWritten string
			for i, s := range c.Timeline.Samples {
				if p, ok := relayPoint(s, name); ok {
					cum += p.Delay
				}
				v := fmt.Sprintf("%.6f", cum.Seconds())
				final := i == len(c.Timeline.Samples)-1
				if lastWritten == "" || v != lastWritten || final {
					fmt.Fprintf(w, "ptperf_relay_queue_delay_seconds_total{cell=%q,relay=%q} %s %d\n", c.Cell, name, v, ms(s.T))
					lastWritten = v
				}
			}
		}
	}
	header("ptperf_relay_sched_pending", "Cells sitting in this relay's circuit queues (gauge).", "gauge")
	for _, c := range live {
		for _, name := range relayNames(c.Timeline) {
			var last int64
			wrote := false
			for i, s := range c.Timeline.Samples {
				p, _ := relayPoint(s, name)
				final := i == len(c.Timeline.Samples)-1
				if !wrote || p.Pending != last || final {
					fmt.Fprintf(w, "ptperf_relay_sched_pending{cell=%q,relay=%q} %d %d\n", c.Cell, name, p.Pending, ms(s.T))
					last, wrote = p.Pending, true
				}
			}
		}
	}

	// Per-method recovery series.
	methodNames := func(tl *Timeline) []string {
		seen := make(map[string]bool)
		var names []string
		for _, s := range tl.Samples {
			for _, p := range s.Recovery {
				if !seen[p.Method] {
					seen[p.Method] = true
					names = append(names, p.Method)
				}
			}
		}
		sort.Strings(names)
		return names
	}
	for _, m := range recoveryCounters {
		m := m
		header(m.name, m.help, "counter")
		for _, c := range live {
			for _, name := range methodNames(c.Timeline) {
				name := name
				emit(m.name, fmt.Sprintf("cell=%q,method=%q", c.Cell, name), c.Timeline, func(s Sample) int64 {
					for _, p := range s.Recovery {
						if p.Method == name {
							return m.field(p)
						}
					}
					return 0
				})
			}
		}
	}
}
