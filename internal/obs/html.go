package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"html"
	"io"
	"sort"
	"strings"
	"time"

	"ptperf/internal/plot"
)

// This file renders the self-contained HTML report artifact: the
// campaign's experiment reports verbatim (the boxes/ECDF renderings of
// internal/harness/report.go, in <pre> blocks), per-cell metric
// timelines as inline SVG sparklines, and — when a benchmark history
// file is present — the repository's perf trajectory across CI runs.
// The rendering is deterministic: no wall-clock timestamps, cells and
// series in canonical order, fixed number formats. Byte-comparing two
// reports is therefore a valid cache-soundness check.

// Section is one experiment's captured text report.
type Section struct {
	// ID is the experiment id ("fig2a", "sweep", ...).
	ID string
	// Title is the experiment's one-line description.
	Title string
	// Body is the text report as the terminal would have shown it.
	Body string
}

// HistoryEntry is one benchmark run in the committed perf-history file
// (one JSON object per line).
type HistoryEntry struct {
	// Label names the run (a commit hash in CI, "local" otherwise).
	Label string `json:"label"`
	// NS maps benchmark name to ns/op.
	NS map[string]float64 `json:"ns"`
}

// ParseBenchHistory reads a JSONL perf-history stream; unparseable
// lines are skipped (the file is append-only across CI runs and must
// tolerate a torn tail).
func ParseBenchHistory(r io.Reader) []HistoryEntry {
	var out []HistoryEntry
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var e HistoryEntry
		if err := json.Unmarshal([]byte(line), &e); err != nil || len(e.NS) == 0 {
			continue
		}
		out = append(out, e)
	}
	return out
}

// HTMLReport is everything the report artifact renders.
type HTMLReport struct {
	// Title heads the document.
	Title string
	// Config is a short text summary of the campaign configuration.
	Config string
	// Sections are the experiment reports, in run order.
	Sections []Section
	// Cells are the metric timelines, in canonical cell order.
	Cells []CellTimeline
	// History is the perf trajectory, oldest first.
	History []HistoryEntry
}

// seriesRow is one sparkline row of a cell's timeline table.
type seriesRow struct {
	Label  string
	Values []float64
	Total  float64
}

// timelineSeries derives the sparkline series shown per cell, bucketing
// the (possibly sparse) samples into at most buckets intervals across
// the timeline's horizon.
func timelineSeries(tl *Timeline, buckets int) []seriesRow {
	horizon := tl.Horizon()
	if horizon <= 0 || len(tl.Samples) == 0 {
		return nil
	}
	n := int(horizon/tl.Interval) + 1
	if n > buckets {
		n = buckets
	}
	if n < 1 {
		n = 1
	}
	bucketOf := func(t time.Duration) int {
		i := int(int64(t) * int64(n) / (int64(horizon) + 1))
		if i < 0 {
			i = 0
		}
		if i >= n {
			i = n - 1
		}
		return i
	}
	mk := func(label string, val func(Sample) float64) seriesRow {
		s := seriesRow{Label: label, Values: make([]float64, n)}
		for _, sm := range tl.Samples {
			v := val(sm)
			s.Values[bucketOf(sm.T)] += v
			s.Total += v
		}
		return s
	}
	return []seriesRow{
		mk("bytes delivered", func(s Sample) float64 { return float64(s.Acct.BytesDelivered) }),
		mk("relay cells flushed", func(s Sample) float64 { return float64(s.Acct.CellsFlushed) }),
		mk("dials", func(s Sample) float64 { return float64(s.Acct.Dials) }),
		mk("censor interference", func(s Sample) float64 {
			c := s.Censor
			return float64(c.BlockedDials + c.FlowsCut + c.Resets + c.LossEvents + c.ThrottledSegments)
		}),
		mk("recovery events", func(s Sample) float64 {
			var t int64
			for _, p := range s.Recovery {
				t += p.Rebuilds + p.BuildTimeouts + p.StreamFailures + p.ReAttaches + p.Abandoned + p.GuardProbations
			}
			return float64(t)
		}),
	}
}

// WriteHTML renders the report artifact.
func WriteHTML(w io.Writer, rep HTMLReport) error {
	bw := bufio.NewWriter(w)
	title := rep.Title
	if title == "" {
		title = "PTPerf campaign report"
	}
	esc := html.EscapeString
	fmt.Fprintf(bw, `<!DOCTYPE html>
<html lang="en"><head><meta charset="utf-8"><title>%s</title>
<style>
body { font-family: system-ui, sans-serif; margin: 2em auto; max-width: 72em; color: #222; }
pre { background: #f6f6f6; padding: 1em; overflow-x: auto; font-size: 12px; line-height: 1.3; }
h2 { border-bottom: 1px solid #ddd; padding-bottom: .2em; margin-top: 2em; }
table.metrics { border-collapse: collapse; margin: .5em 0 1.5em; }
table.metrics td, table.metrics th { padding: .2em .8em; border-bottom: 1px solid #eee; text-align: left; font-size: 13px; }
td.num { text-align: right; font-variant-numeric: tabular-nums; }
.cellkey { font-family: monospace; }
</style></head><body>
`, esc(title))
	fmt.Fprintf(bw, "<h1>%s</h1>\n", esc(title))
	if rep.Config != "" {
		fmt.Fprintf(bw, "<pre>%s</pre>\n", esc(rep.Config))
	}

	if len(rep.Cells) > 0 {
		fmt.Fprintf(bw, "<h2>Metric timelines</h2>\n")
		fmt.Fprintf(bw, "<p>Per-cell virtual-time series sampled every interval on the world's own clock; sparklines bucket the horizon into ≤120 intervals.</p>\n")
		for _, c := range rep.Cells {
			if c.Timeline == nil || len(c.Timeline.Samples) == 0 {
				continue
			}
			tl := c.Timeline
			fmt.Fprintf(bw, "<h3 class=\"cellkey\">%s</h3>\n", esc(c.Cell))
			fmt.Fprintf(bw, "<p>interval %s · horizon %s · %d samples · digest <code>%s</code></p>\n",
				esc(tl.Interval.String()), esc(tl.Horizon().String()), len(tl.Samples), esc(tl.Digest()))
			fmt.Fprintf(bw, "<table class=\"metrics\">\n<tr><th>series</th><th>timeline</th><th>total</th></tr>\n")
			for _, s := range timelineSeries(tl, 120) {
				fmt.Fprintf(bw, "<tr><td>%s</td><td>%s</td><td class=\"num\">%.0f</td></tr>\n",
					esc(s.Label), plot.SparkSVG(s.Values, 360, 32), s.Total)
			}
			fmt.Fprintf(bw, "</table>\n")
		}
	}

	for _, s := range rep.Sections {
		fmt.Fprintf(bw, "<h2 id=%q>%s — %s</h2>\n<pre>%s</pre>\n", esc(s.ID), esc(s.ID), esc(s.Title), esc(s.Body))
	}

	if len(rep.History) > 0 {
		fmt.Fprintf(bw, "<h2>Perf trajectory</h2>\n")
		fmt.Fprintf(bw, "<p>ns/op per benchmark across the committed history (%d runs, oldest first; lower is better).</p>\n", len(rep.History))
		names := make(map[string]bool)
		for _, e := range rep.History {
			//simlint:allow maprange -- set insertion only; the union is order-independent and the keys are sorted below before rendering.
			for n := range e.NS {
				names[n] = true
			}
		}
		ordered := make([]string, 0, len(names))
		for n := range names {
			ordered = append(ordered, n)
		}
		sort.Strings(ordered)
		fmt.Fprintf(bw, "<table class=\"metrics\">\n<tr><th>benchmark</th><th>trajectory</th><th>first</th><th>last</th></tr>\n")
		for _, name := range ordered {
			var vals []float64
			for _, e := range rep.History {
				if v, ok := e.NS[name]; ok {
					vals = append(vals, v)
				}
			}
			if len(vals) == 0 {
				continue
			}
			fmt.Fprintf(bw, "<tr><td>%s</td><td>%s</td><td class=\"num\">%.0f</td><td class=\"num\">%.0f</td></tr>\n",
				esc(name), plot.SparkSVG(vals, 360, 32), vals[0], vals[len(vals)-1])
		}
		fmt.Fprintf(bw, "</table>\n")
		last := rep.History[len(rep.History)-1]
		fmt.Fprintf(bw, "<p>latest run: <code>%s</code></p>\n", esc(last.Label))
	}

	fmt.Fprintf(bw, "</body></html>\n")
	return bw.Flush()
}
