package obs

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
	"time"

	"ptperf/internal/fetch"
	"ptperf/internal/netem"
	"ptperf/internal/testbed"
)

// runWorld builds a small world, runs a short curl campaign over it
// with a recorder attached, and returns the finished timeline plus the
// accounting snapshot taken at the same quiescent instant.
func runWorld(t *testing.T, seed int64) (*Timeline, netem.AcctSnapshot) {
	t.Helper()
	w, err := testbed.New(testbed.Options{
		Seed:      seed,
		ByteScale: 0.06,
		TrancoN:   2,
		CBLN:      2,
	})
	if err != nil {
		t.Fatalf("build world: %v", err)
	}
	rec := AttachWorld(w, time.Second)
	for _, method := range []string{"tor", "obfs4"} {
		d, err := w.Deployment(method)
		if err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		if err := d.Preheat(); err != nil {
			t.Fatalf("%s preheat: %v", method, err)
		}
		c := &fetch.Client{Net: w.Net, Dial: d.Dial, Timeout: 120 * time.Second}
		for _, site := range w.Tranco.Sites {
			c.Get(w.Origin.Addr(), site.Path, false)
		}
		d.FreshCircuit()
	}
	w.Net.Clock().Sleep(300 * time.Second)
	snap := w.Net.Acct().Snapshot()
	return rec.Close(), snap
}

// TestRecorderConservation is the package-level statement of the
// timeline contract: re-summing the interval deltas reconstructs the
// final snapshot exactly, with zero clamped regressions.
func TestRecorderConservation(t *testing.T) {
	tl, snap := runWorld(t, 7)
	if len(tl.Samples) == 0 {
		t.Fatal("campaign produced no samples")
	}
	if tl.Regressions != 0 {
		t.Fatalf("%d clamped regressions while sampling monotone counters", tl.Regressions)
	}
	if got := tl.AcctTotals(); got != snap {
		t.Fatalf("timeline totals diverge from final snapshot:\n  totals   %+v\n  snapshot %+v", got, snap)
	}
	if tl.Final != snap {
		t.Fatalf("Final snapshot mismatch:\n  final    %+v\n  snapshot %+v", tl.Final, snap)
	}
	if h := tl.Horizon(); h <= 0 {
		t.Fatalf("non-positive horizon %v", h)
	}
}

// TestRecorderDeterminism requires byte-identical Prometheus renderings
// from two runs of the same seed — the sampler is a simulation
// goroutine on the virtual clock, so its samples are part of the
// deterministic event order.
func TestRecorderDeterminism(t *testing.T) {
	render := func() string {
		tl, _ := runWorld(t, 11)
		var b bytes.Buffer
		WritePrometheus(&b, []CellTimeline{{Cell: "world", Timeline: tl}})
		return b.String()
	}
	a, b := render(), render()
	if a != b {
		t.Fatalf("same seed rendered different Prometheus dumps:\n--- first ---\n%s\n--- second ---\n%s", a, b)
	}
}

// TestPrometheusShape pins the exposition-format essentials: HELP/TYPE
// headers, cell labels, cumulative counters ending at the timeline
// totals, and millisecond virtual timestamps.
func TestPrometheusShape(t *testing.T) {
	tl, snap := runWorld(t, 3)
	var b bytes.Buffer
	WritePrometheus(&b, []CellTimeline{{Cell: "world", Timeline: tl}})
	out := b.String()

	for _, want := range []string{
		"# TYPE ptperf_bytes_delivered_total counter",
		"# TYPE ptperf_bytes_buffered gauge",
		`cell="world"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition lacks %q", want)
		}
	}
	// The last ptperf_bytes_delivered_total line must carry the final
	// cumulative value (deltas re-summed).
	var last string
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "ptperf_bytes_delivered_total") {
			last = line
		}
	}
	if last == "" {
		t.Fatal("no ptperf_bytes_delivered_total samples")
	}
	fields := strings.Fields(last)
	if len(fields) != 3 {
		t.Fatalf("sample line %q: want `name value timestamp`", last)
	}
	if got := fields[1]; got != strconv.FormatInt(snap.BytesDelivered, 10) {
		t.Errorf("final cumulative bytes delivered = %s, want %d", got, snap.BytesDelivered)
	}
	if ms := int64(tl.Horizon() / time.Millisecond); fields[2] != strconv.FormatInt(ms, 10) {
		t.Errorf("final timestamp = %s, want %d (horizon ms)", fields[2], ms)
	}
}

// TestEmptyTimelines verifies nil/empty timelines render nothing but
// headers stay absent too (no metric families without samples).
func TestEmptyTimelines(t *testing.T) {
	var b bytes.Buffer
	WritePrometheus(&b, []CellTimeline{{Cell: "empty", Timeline: nil}, {Cell: "zero", Timeline: &Timeline{}}})
	if got := b.String(); strings.Contains(got, "ptperf_") {
		t.Fatalf("empty timelines produced samples:\n%s", got)
	}
}

// TestParseBenchHistory checks the JSONL parser skips bad lines.
func TestParseBenchHistory(t *testing.T) {
	in := `{"label":"a","ns":{"BenchmarkX":100}}
not json
{"label":"bad"}

{"label":"b","ns":{"BenchmarkX":90,"BenchmarkY":5}}
`
	got := ParseBenchHistory(strings.NewReader(in))
	if len(got) != 2 || got[0].Label != "a" || got[1].Label != "b" {
		t.Fatalf("parsed %+v, want entries a and b", got)
	}
	if got[1].NS["BenchmarkY"] != 5 {
		t.Fatalf("entry b = %+v", got[1])
	}
}

// TestWriteHTMLDeterministic renders the same report twice and requires
// identical bytes (no wall-clock state), and spot-checks the structure.
func TestWriteHTMLDeterministic(t *testing.T) {
	tl, _ := runWorld(t, 5)
	rep := HTMLReport{
		Title:    "test report",
		Config:   "seed=5",
		Sections: []Section{{ID: "fig2a", Title: "Access", Body: "tor 1.0 <ok>"}},
		Cells:    []CellTimeline{{Cell: "world", Timeline: tl}},
		History: []HistoryEntry{
			{Label: "r1", NS: map[string]float64{"BenchmarkSweep": 200}},
			{Label: "r2", NS: map[string]float64{"BenchmarkSweep": 150}},
		},
	}
	render := func() string {
		var b bytes.Buffer
		if err := WriteHTML(&b, rep); err != nil {
			t.Fatalf("WriteHTML: %v", err)
		}
		return b.String()
	}
	a, b := render(), render()
	if a != b {
		t.Fatal("same report rendered differently twice")
	}
	for _, want := range []string{
		"test report", "fig2a", "&lt;ok&gt;", "<svg", "BenchmarkSweep", "world",
	} {
		if !strings.Contains(a, want) {
			t.Errorf("report lacks %q", want)
		}
	}
}
