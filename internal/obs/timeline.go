package obs

import (
	"crypto/sha256"
	"encoding/hex"
	"strings"
	"time"

	"ptperf/internal/censor"
	"ptperf/internal/netem"
)

// Timeline is one world-cell's sampled metric series. All fields are
// exported and JSON-round-trippable: timelines travel through the
// content-addressed cache next to the cell's result value.
type Timeline struct {
	// Interval is the sampling cadence (virtual time).
	Interval time.Duration
	// Samples holds the non-empty samples in virtual-time order.
	Samples []Sample
	// Regressions counts clamped negative deltas observed while
	// sampling. Counters are monotone, so any non-zero value is a bug
	// in the sampled surface (the timeline-conservation invariant
	// fails the world on it).
	Regressions int
	// Final is the cumulative accounting snapshot at Close — the value
	// the samples' deltas must sum back to.
	Final netem.AcctSnapshot
}

// Sample is one sampling instant's interval deltas.
type Sample struct {
	// T is the virtual instant the sample was taken.
	T time.Duration
	// Acct holds the interval's accounting deltas; its BytesBuffered
	// field is the gauge value at T, not a delta.
	Acct netem.AcctSnapshot
	// Censor holds the interval's censor verdict deltas.
	Censor censor.Stats
	// Relays holds per-relay scheduler movement (only relays that
	// moved or hold queued cells).
	Relays []RelayPoint
	// Recovery holds per-method recovery deltas (only methods that
	// recovered something this interval).
	Recovery []RecoveryPoint
}

// RelayPoint is one relay's scheduler activity in one interval.
type RelayPoint struct {
	// Relay is the relay's directory nickname.
	Relay string
	// Pending is the queue depth (cells) at the sample instant — a
	// gauge, not a delta.
	Pending int64
	// Queued, Flushed, Dropped are interval deltas of the scheduler's
	// cell counters.
	Queued, Flushed, Dropped int64
	// Delay is the interval's added queueing-delay sum.
	Delay time.Duration
}

// RecoveryPoint is one method's recovery activity in one interval.
type RecoveryPoint struct {
	// Method is "tor" or a transport name.
	Method string
	// The remaining fields are interval deltas of tor.RecoveryStats.
	Rebuilds        int64
	BuildTimeouts   int64
	StreamFailures  int64
	ReAttaches      int64
	Abandoned       int64
	GuardProbations int64
}

// CellTimeline pairs a world-cell key with its timeline; the export
// writers take cells in canonical (caller-sorted) order.
type CellTimeline struct {
	Cell     string
	Timeline *Timeline
}

// AcctTotals sums every sample's accounting deltas. For a timeline
// recorded against monotone counters the result equals Final (and the
// world's own final snapshot) — the conservation property the simtest
// invariant checks. The BytesBuffered gauge takes the last sample's
// value.
func (t *Timeline) AcctTotals() netem.AcctSnapshot {
	var sum netem.AcctSnapshot
	for _, s := range t.Samples {
		sum = sum.Add(s.Acct)
	}
	return sum
}

// Horizon is the virtual time of the last sample (0 when empty).
func (t *Timeline) Horizon() time.Duration {
	if len(t.Samples) == 0 {
		return 0
	}
	return t.Samples[len(t.Samples)-1].T
}

// Digest is a short content hash of the timeline's canonical Prometheus
// rendering — the comparand determinism tests and the fuzz report use.
func (t *Timeline) Digest() string {
	var b strings.Builder
	WritePrometheus(&b, []CellTimeline{{Cell: "digest", Timeline: t}})
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:8])
}
