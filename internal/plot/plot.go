// Package plot renders the paper's figure types as ASCII: horizontal
// box plots (Figures 2, 3a, 5, 7, 10b, 11, 12) and ECDF step curves
// (Figures 3b, 6, 8b). The harness attaches these under the numeric
// tables when plotting is enabled, so the reproduction emits figure-
// shaped artifacts, not just numbers.
package plot

import (
	"fmt"
	"io"
	"math"
	"strings"

	"ptperf/internal/stats"
)

// Box renders one labelled box-and-whisker row.
type Box struct {
	// Label names the row.
	Label string
	// Stats is the five-number summary to draw.
	Stats stats.Box
}

// Boxes draws horizontal box plots on a shared axis.
//
//	tor    |----[==|==]-------|        1.2/2.0/3.4
//
// Whiskers span min..max, the box Q1..Q3, the pipe the median.
func Boxes(w io.Writer, title string, rows []Box, width int, logScale bool) {
	if width <= 0 {
		width = 60
	}
	if len(rows) == 0 {
		return
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	labelW := 0
	for _, r := range rows {
		if r.Stats.N == 0 {
			continue
		}
		lo = math.Min(lo, r.Stats.Min)
		hi = math.Max(hi, r.Stats.Max)
		if len(r.Label) > labelW {
			labelW = len(r.Label)
		}
	}
	if math.IsInf(lo, 1) || hi <= lo {
		return
	}
	x := func(v float64) int {
		f := project(v, lo, hi, logScale)
		col := int(f * float64(width-1))
		if col < 0 {
			col = 0
		}
		if col >= width {
			col = width - 1
		}
		return col
	}

	fmt.Fprintln(w, title)
	for _, r := range rows {
		if r.Stats.N == 0 {
			fmt.Fprintf(w, "%-*s  (no data)\n", labelW, r.Label)
			continue
		}
		line := make([]byte, width)
		for i := range line {
			line[i] = ' '
		}
		span(line, x(r.Stats.Min), x(r.Stats.Q1), '-')
		span(line, x(r.Stats.Q3), x(r.Stats.Max), '-')
		span(line, x(r.Stats.Q1), x(r.Stats.Q3), '=')
		line[x(r.Stats.Min)] = '|'
		line[x(r.Stats.Max)] = '|'
		line[x(r.Stats.Q1)] = '['
		line[x(r.Stats.Q3)] = ']'
		line[x(r.Stats.Median)] = '#'
		fmt.Fprintf(w, "%-*s  %s  %.2f/%.2f/%.2f\n", labelW, r.Label, line, r.Stats.Q1, r.Stats.Median, r.Stats.Q3)
	}
	axis := fmt.Sprintf("%-*s  %-*.2f%*.2f", labelW, "", width/2, lo, width-width/2, hi)
	if logScale {
		axis += "  (log scale)"
	}
	fmt.Fprintln(w, axis)
	fmt.Fprintln(w)
}

func span(line []byte, a, b int, ch byte) {
	if a > b {
		a, b = b, a
	}
	for i := a; i <= b && i < len(line); i++ {
		line[i] = ch
	}
}

// project maps v in [lo,hi] to [0,1], optionally logarithmically.
func project(v, lo, hi float64, logScale bool) float64 {
	if logScale && lo > 0 {
		return (math.Log(v) - math.Log(lo)) / (math.Log(hi) - math.Log(lo))
	}
	return (v - lo) / (hi - lo)
}

// Series is one ECDF curve.
type Series struct {
	// Label names the curve (a letter tags it in the grid).
	Label string
	// Values is the sample.
	Values []float64
}

// ECDF draws step curves on a character grid: x is the value axis, y is
// cumulative probability 0..1.
func ECDF(w io.Writer, title string, series []Series, width, height int) {
	if width <= 0 {
		width = 64
	}
	if height <= 0 {
		height = 12
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	valid := 0
	for _, s := range series {
		for _, v := range s.Values {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		if len(s.Values) > 0 {
			valid++
		}
	}
	if valid == 0 || hi <= lo {
		return
	}
	grid := make([][]byte, height)
	for y := range grid {
		grid[y] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		if len(s.Values) == 0 {
			continue
		}
		mark := byte('a' + si%26)
		e := stats.NewECDF(s.Values)
		for col := 0; col < width; col++ {
			v := lo + (hi-lo)*float64(col)/float64(width-1)
			p := e.At(v)
			row := height - 1 - int(p*float64(height-1))
			grid[row][col] = mark
		}
	}
	fmt.Fprintln(w, title)
	for y, row := range grid {
		p := 1 - float64(y)/float64(height-1)
		fmt.Fprintf(w, "%4.2f |%s\n", p, string(row))
	}
	fmt.Fprintf(w, "     +%s\n", strings.Repeat("-", width))
	fmt.Fprintf(w, "      %-*.2f%*.2f\n", width/2, lo, width-width/2, hi)
	for si, s := range series {
		fmt.Fprintf(w, "      %c = %s\n", 'a'+si%26, s.Label)
	}
	fmt.Fprintln(w)
}
