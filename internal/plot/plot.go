// Package plot renders the paper's figure types as ASCII: horizontal
// box plots (Figures 2, 3a, 5, 7, 10b, 11, 12) and ECDF step curves
// (Figures 3b, 6, 8b). The harness attaches these under the numeric
// tables when plotting is enabled, so the reproduction emits figure-
// shaped artifacts, not just numbers.
package plot

import (
	"fmt"
	"io"
	"math"
	"strings"

	"ptperf/internal/stats"
)

// Box renders one labelled box-and-whisker row.
type Box struct {
	// Label names the row.
	Label string
	// Stats is the five-number summary to draw.
	Stats stats.Box
}

// Boxes draws horizontal box plots on a shared axis.
//
//	tor    |----[==|==]-------|        1.2/2.0/3.4
//
// Whiskers span min..max, the box Q1..Q3, the pipe the median.
func Boxes(w io.Writer, title string, rows []Box, width int, logScale bool) {
	if width <= 0 {
		width = 60
	}
	if len(rows) == 0 {
		return
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	labelW := 0
	for _, r := range rows {
		if r.Stats.N == 0 {
			continue
		}
		lo = math.Min(lo, r.Stats.Min)
		hi = math.Max(hi, r.Stats.Max)
		if len(r.Label) > labelW {
			labelW = len(r.Label)
		}
	}
	if math.IsInf(lo, 1) || hi <= lo {
		return
	}
	x := func(v float64) int {
		f := project(v, lo, hi, logScale)
		col := int(f * float64(width-1))
		if col < 0 {
			col = 0
		}
		if col >= width {
			col = width - 1
		}
		return col
	}

	fmt.Fprintln(w, title)
	for _, r := range rows {
		if r.Stats.N == 0 {
			fmt.Fprintf(w, "%-*s  (no data)\n", labelW, r.Label)
			continue
		}
		line := make([]byte, width)
		for i := range line {
			line[i] = ' '
		}
		span(line, x(r.Stats.Min), x(r.Stats.Q1), '-')
		span(line, x(r.Stats.Q3), x(r.Stats.Max), '-')
		span(line, x(r.Stats.Q1), x(r.Stats.Q3), '=')
		line[x(r.Stats.Min)] = '|'
		line[x(r.Stats.Max)] = '|'
		line[x(r.Stats.Q1)] = '['
		line[x(r.Stats.Q3)] = ']'
		line[x(r.Stats.Median)] = '#'
		fmt.Fprintf(w, "%-*s  %s  %.2f/%.2f/%.2f\n", labelW, r.Label, line, r.Stats.Q1, r.Stats.Median, r.Stats.Q3)
	}
	axis := fmt.Sprintf("%-*s  %-*.2f%*.2f", labelW, "", width/2, lo, width-width/2, hi)
	if logScale {
		axis += "  (log scale)"
	}
	fmt.Fprintln(w, axis)
	fmt.Fprintln(w)
}

func span(line []byte, a, b int, ch byte) {
	if a > b {
		a, b = b, a
	}
	for i := a; i <= b && i < len(line); i++ {
		line[i] = ch
	}
}

// project maps v in [lo,hi] to [0,1], optionally logarithmically.
func project(v, lo, hi float64, logScale bool) float64 {
	if logScale && lo > 0 {
		return (math.Log(v) - math.Log(lo)) / (math.Log(hi) - math.Log(lo))
	}
	return (v - lo) / (hi - lo)
}

// Series is one ECDF curve.
type Series struct {
	// Label names the curve (a letter tags it in the grid).
	Label string
	// Values is the sample.
	Values []float64
}

// ECDF draws step curves on a character grid: x is the value axis, y is
// cumulative probability 0..1.
func ECDF(w io.Writer, title string, series []Series, width, height int) {
	if width <= 0 {
		width = 64
	}
	if height <= 0 {
		height = 12
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	valid := 0
	for _, s := range series {
		for _, v := range s.Values {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		if len(s.Values) > 0 {
			valid++
		}
	}
	if valid == 0 || hi <= lo {
		return
	}
	grid := make([][]byte, height)
	for y := range grid {
		grid[y] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		if len(s.Values) == 0 {
			continue
		}
		mark := byte('a' + si%26)
		e := stats.NewECDF(s.Values)
		for col := 0; col < width; col++ {
			v := lo + (hi-lo)*float64(col)/float64(width-1)
			p := e.At(v)
			row := height - 1 - int(p*float64(height-1))
			grid[row][col] = mark
		}
	}
	fmt.Fprintln(w, title)
	for y, row := range grid {
		p := 1 - float64(y)/float64(height-1)
		fmt.Fprintf(w, "%4.2f |%s\n", p, string(row))
	}
	fmt.Fprintf(w, "     +%s\n", strings.Repeat("-", width))
	fmt.Fprintf(w, "      %-*.2f%*.2f\n", width/2, lo, width-width/2, hi)
	for si, s := range series {
		fmt.Fprintf(w, "      %c = %s\n", 'a'+si%26, s.Label)
	}
	fmt.Fprintln(w)
}

// sparkRunes are the eight block levels of an ASCII sparkline.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Spark renders values as a unicode block sparkline, one rune per
// value, scaled to the series' own min..max (a flat series renders as
// its lowest block). Empty input renders empty.
func Spark(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range values {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	var b strings.Builder
	for _, v := range values {
		i := 0
		if hi > lo {
			i = int((v - lo) / (hi - lo) * float64(len(sparkRunes)-1))
			if i < 0 {
				i = 0
			}
			if i >= len(sparkRunes) {
				i = len(sparkRunes) - 1
			}
		}
		b.WriteRune(sparkRunes[i])
	}
	return b.String()
}

// SparkSVG renders values as a self-contained inline SVG polyline
// sparkline of the given pixel size — the HTML report's timeline glyph.
// Coordinates use one decimal, so the output is deterministic
// byte-for-byte. Empty input renders an empty SVG frame.
func SparkSVG(values []float64, width, height int) string {
	if width <= 0 {
		width = 240
	}
	if height <= 0 {
		height = 36
	}
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`, width, height, width, height)
	if len(values) > 0 {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, v := range values {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		const pad = 2.0
		y := func(v float64) float64 {
			if hi <= lo {
				return float64(height) / 2
			}
			return pad + (1-(v-lo)/(hi-lo))*(float64(height)-2*pad)
		}
		x := func(i int) float64 {
			if len(values) == 1 {
				return float64(width) / 2
			}
			return pad + float64(i)/float64(len(values)-1)*(float64(width)-2*pad)
		}
		b.WriteString(`<polyline fill="none" stroke="#36c" stroke-width="1.5" points="`)
		for i, v := range values {
			if i > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%.1f,%.1f", x(i), y(v))
		}
		b.WriteString(`"/>`)
	}
	b.WriteString(`</svg>`)
	return b.String()
}
