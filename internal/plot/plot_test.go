package plot

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"ptperf/internal/stats"
)

func sample(rng *rand.Rand, mean float64, n int) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = mean + rng.NormFloat64()
	}
	return xs
}

func TestBoxesRendering(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var buf bytes.Buffer
	rows := []Box{
		{Label: "tor", Stats: stats.Summarize(sample(rng, 5, 50))},
		{Label: "marionette", Stats: stats.Summarize(sample(rng, 25, 50))},
	}
	Boxes(&buf, "access time", rows, 60, false)
	out := buf.String()
	for _, want := range []string{"tor", "marionette", "#", "[", "]"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	// The slow method's median marker must sit to the right of the
	// fast method's.
	lines := strings.Split(out, "\n")
	fast := strings.Index(lines[1], "#")
	slow := strings.Index(lines[2], "#")
	if slow <= fast {
		t.Fatalf("marionette median (%d) should plot right of tor (%d)\n%s", slow, fast, out)
	}
}

func TestBoxesEmptyAndDegenerate(t *testing.T) {
	var buf bytes.Buffer
	Boxes(&buf, "x", nil, 40, false)
	if buf.Len() != 0 {
		t.Fatal("no rows should render nothing")
	}
	Boxes(&buf, "x", []Box{{Label: "a"}}, 40, false)
	if buf.Len() != 0 {
		t.Fatal("all-empty rows should render nothing")
	}
}

func TestBoxesNeverPanics(t *testing.T) {
	f := func(vals []float64, logScale bool) bool {
		clean := make([]float64, 0, len(vals))
		for _, v := range vals {
			if v == v && v > -1e12 && v < 1e12 { // drop NaN/huge
				clean = append(clean, v)
			}
		}
		if len(clean) == 0 {
			return true
		}
		var buf bytes.Buffer
		Boxes(&buf, "t", []Box{{Label: "x", Stats: stats.Summarize(clean)}}, 30, logScale)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestECDFRendering(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var buf bytes.Buffer
	ECDF(&buf, "ttfb", []Series{
		{Label: "fast", Values: sample(rng, 2, 80)},
		{Label: "slow", Values: sample(rng, 8, 80)},
	}, 50, 10)
	out := buf.String()
	if !strings.Contains(out, "a = fast") || !strings.Contains(out, "b = slow") {
		t.Fatalf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "1.00 |") || !strings.Contains(out, "0.00 |") {
		t.Fatalf("probability axis missing:\n%s", out)
	}
	// The fast curve must reach the top (p=1) earlier (left of) slow.
	topLine := strings.Split(out, "\n")[1]
	firstA := strings.Index(topLine, "a")
	firstB := strings.Index(topLine, "b")
	if firstA == -1 || (firstB != -1 && firstA > firstB) {
		t.Fatalf("fast curve should saturate first:\n%s", out)
	}
}

func TestECDFEmpty(t *testing.T) {
	var buf bytes.Buffer
	ECDF(&buf, "x", nil, 40, 10)
	ECDF(&buf, "x", []Series{{Label: "e"}}, 40, 10)
	if buf.Len() != 0 {
		t.Fatal("empty series should render nothing")
	}
}

func TestProject(t *testing.T) {
	if p := project(5, 0, 10, false); p != 0.5 {
		t.Fatalf("linear midpoint: %v", p)
	}
	if p := project(10, 1, 100, true); p < 0.49 || p > 0.51 {
		t.Fatalf("log midpoint: %v", p)
	}
}

func TestSpark(t *testing.T) {
	if got := Spark(nil); got != "" {
		t.Fatalf("empty input rendered %q", got)
	}
	if got := Spark([]float64{1, 1, 1}); got != "▁▁▁" {
		t.Fatalf("flat series = %q, want lowest blocks", got)
	}
	got := Spark([]float64{0, 1, 2, 3})
	if got != "▁▃▅█" {
		t.Fatalf("ramp = %q", got)
	}
}

func TestSparkSVG(t *testing.T) {
	empty := SparkSVG(nil, 100, 20)
	if !strings.HasPrefix(empty, "<svg") || strings.Contains(empty, "polyline") {
		t.Fatalf("empty input should render a bare frame, got %q", empty)
	}
	got := SparkSVG([]float64{1, 5, 2}, 100, 20)
	if !strings.Contains(got, `width="100"`) || !strings.Contains(got, "<polyline") {
		t.Fatalf("svg = %q", got)
	}
	if got != SparkSVG([]float64{1, 5, 2}, 100, 20) {
		t.Fatal("SparkSVG not deterministic")
	}
	// One coordinate pair per value.
	points := strings.Split(strings.Split(strings.Split(got, `points="`)[1], `"`)[0], " ")
	if len(points) != 3 {
		t.Fatalf("%d points, want 3: %q", len(points), got)
	}
}
