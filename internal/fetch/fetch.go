// Package fetch implements the client side of PTPerf's measurements: a
// curl-like single-resource fetcher with TTFB capture, a selenium-like
// browser emulator that loads a page's sub-resources over parallel
// connections, and a browsertime-like speed-index integrator.
//
// All timing is reported in virtual durations from the netem clock, so
// results are directly comparable to the paper's seconds.
package fetch

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"time"

	"ptperf/internal/netem"
	"ptperf/internal/web"
)

// Dialer opens a connection to an origin ("host:port"). Measurements
// plug a direct dialer, a SOCKS-through-Tor dialer, or a PT dialer here.
type Dialer func(target string) (net.Conn, error)

// DefaultTimeout mirrors the paper's 120 s page-load timeout.
const DefaultTimeout = 120 * time.Second

// FileTimeout mirrors the paper's 1200 s bulk-download timeout.
const FileTimeout = 1200 * time.Second

// Client issues measured requests.
type Client struct {
	// Net supplies the virtual clock.
	Net *netem.Network
	// Dial opens connections to the origin.
	Dial Dialer
	// Timeout bounds one request in virtual time (DefaultTimeout if 0).
	Timeout time.Duration
}

// Result is the outcome of one measured transfer.
type Result struct {
	// Status is the HTTP status (0 if none was received).
	Status int
	// TTFB is the virtual time from request start to the first response
	// byte.
	TTFB time.Duration
	// Total is the virtual time from request start to completion or
	// failure.
	Total time.Duration
	// BytesWanted is the declared content length (-1 if unknown).
	BytesWanted int64
	// BytesGot counts body bytes actually received.
	BytesGot int64
	// Body holds the body when capture was requested.
	Body []byte
	// Resumes counts extra transfer legs used by a resumed download
	// (zero for plain Gets).
	Resumes int
	// Err is the transport error, if any.
	Err error
}

// Complete reports whether the full declared body arrived.
func (r Result) Complete() bool {
	return r.Err == nil && r.Status == 200 && r.BytesWanted >= 0 && r.BytesGot >= r.BytesWanted
}

// Failed reports whether nothing at all was downloaded.
func (r Result) Failed() bool { return r.BytesGot == 0 && !r.Complete() }

// Partial reports whether some but not all content arrived.
func (r Result) Partial() bool { return !r.Complete() && !r.Failed() }

// Fraction is the downloaded share of the declared size in [0,1].
func (r Result) Fraction() float64 {
	if r.BytesWanted <= 0 {
		if r.Complete() {
			return 1
		}
		return 0
	}
	f := float64(r.BytesGot) / float64(r.BytesWanted)
	if f > 1 {
		f = 1
	}
	return f
}

func (c *Client) timeout() time.Duration {
	if c.Timeout > 0 {
		return c.Timeout
	}
	return DefaultTimeout
}

// Get fetches origin+path once over a fresh connection (Connection:
// close), like the paper's curl invocation. keepBody captures the body
// for manifest parsing.
func (c *Client) Get(origin, path string, keepBody bool) Result {
	start := c.Net.Now()
	return c.get(origin, path, keepBody, start, c.Net.VirtualDeadline(c.timeout()))
}

// get is Get with the transfer's start mark and absolute deadline
// supplied by the caller, so a resumed download's legs share one clock.
func (c *Client) get(origin, path string, keepBody bool, start time.Duration, deadline time.Time) Result {
	res := Result{BytesWanted: -1}

	conn, err := c.Dial(origin)
	if err != nil {
		res.Err = err
		res.Total = c.Net.Since(start)
		return res
	}
	defer conn.Close()
	conn.SetDeadline(deadline)

	if err := web.WriteRequest(conn, path, true); err != nil {
		res.Err = err
		res.Total = c.Net.Since(start)
		return res
	}

	// TTFB: time of the first byte of the response.
	br := bufio.NewReaderSize(&firstByteReader{
		r: conn,
		onFirst: func() {
			res.TTFB = c.Net.Since(start)
		},
	}, 32<<10)
	resp, err := web.ReadResponse(br)
	if err != nil {
		res.Err = err
		res.Total = c.Net.Since(start)
		return res
	}
	res.Status = resp.Status
	res.BytesWanted = resp.ContentLength

	var sink io.Writer = countWriter{&res.BytesGot}
	var bodyBuf *[]byte
	if keepBody {
		buf := make([]byte, 0, int(min64(resp.ContentLength, 1<<20)))
		bodyBuf = &buf
		sink = io.MultiWriter(sink, sliceWriter{bodyBuf})
	}
	_, err = copyBody(sink, br, conn, resp.ContentLength)
	if err == nil && res.BytesGot < resp.ContentLength {
		err = io.ErrUnexpectedEOF
	}
	res.Err = err
	res.Total = c.Net.Since(start)
	if bodyBuf != nil {
		res.Body = *bodyBuf
	}
	return res
}

// DownloadFile fetches a bulk file of sizeBytes from the origin's file
// host, reporting completeness for the reliability analysis (§4.6).
func (c *Client) DownloadFile(origin string, sizeBytes int) Result {
	return c.Get(origin, web.FilePath(sizeBytes), false)
}

// DownloadFileResumed is DownloadFile with mid-transfer recovery: when
// a leg dies partway (a crashed relay, a flapped link), it re-dials —
// through the same Dialer, which for Tor clients means a fresh circuit —
// and requests the remainder via the origin's ?from= offset, up to
// maxResumes extra legs, all under one shared timeout. The aggregate
// Result keeps the first leg's TTFB and Status, sums BytesGot across
// legs, and counts the extra legs in Resumes.
func (c *Client) DownloadFileResumed(origin string, sizeBytes, maxResumes int) Result {
	start := c.Net.Now()
	deadline := c.Net.VirtualDeadline(c.timeout())
	out := Result{BytesWanted: int64(sizeBytes)}
	for {
		path := web.FilePath(sizeBytes)
		if out.BytesGot > 0 {
			path = fmt.Sprintf("%s?from=%d", path, out.BytesGot)
		}
		leg := c.get(origin, path, false, start, deadline)
		if out.TTFB == 0 {
			out.TTFB = leg.TTFB
		}
		if out.Status == 0 {
			out.Status = leg.Status
		}
		out.BytesGot += leg.BytesGot
		out.Err = leg.Err
		out.Total = c.Net.Since(start)
		if leg.Err == nil && leg.Status == 200 && leg.BytesWanted >= 0 && leg.BytesGot >= leg.BytesWanted {
			return out // this leg delivered the remainder
		}
		if out.Resumes >= maxResumes || c.Net.Since(start) >= c.timeout() {
			return out
		}
		out.Resumes++
	}
}

// fetchOn issues one keep-alive GET over an existing connection,
// returning body bytes received. Used by the browser's worker conns.
func fetchOn(conn net.Conn, br *bufio.Reader, path string) (int64, error) {
	if err := web.WriteRequest(conn, path, false); err != nil {
		return 0, err
	}
	resp, err := web.ReadResponse(br)
	if err != nil {
		return 0, err
	}
	if resp.Status != 200 {
		return 0, fmt.Errorf("fetch: status %d for %s", resp.Status, path)
	}
	var got int64
	_, err = copyBody(countWriter{&got}, br, conn, resp.ContentLength)
	if err == nil && got < resp.ContentLength {
		err = io.ErrUnexpectedEOF
	}
	return got, err
}

// fullReader is the threshold-read interface tor streams provide: fill
// p completely, parking until enough bytes have accumulated rather than
// waking for every arriving cell.
type fullReader interface {
	ReadFull(p []byte) (int, error)
}

// bodyChunk sizes the threshold reads of copyBody.
const bodyChunk = 64 << 10

// copyBody drains a response body of n bytes: whatever ReadResponse
// left buffered in br first, then the remainder from conn. When conn
// supports threshold reads, the bulk is pulled in large chunks so the
// reader parks once per chunk instead of once per arriving cell; the
// last byte is still consumed at its arrival instant, so TTLB and
// timeout behavior match the eager copy exactly. Early end-of-stream
// returns a short count with nil error, like io.Copy; callers detect
// the short body from the count.
func copyBody(dst io.Writer, br *bufio.Reader, conn net.Conn, n int64) (int64, error) {
	fr, ok := conn.(fullReader)
	if !ok {
		return io.Copy(dst, io.LimitReader(br, n))
	}
	var written int64
	if b := int64(br.Buffered()); b > 0 {
		m, err := io.Copy(dst, io.LimitReader(br, min64(b, n)))
		written += m
		if err != nil || written >= n {
			return written, err
		}
	}
	buf := make([]byte, bodyChunk)
	for written < n {
		chunk := n - written
		if chunk > bodyChunk {
			chunk = bodyChunk
		}
		m, err := fr.ReadFull(buf[:chunk])
		if m > 0 {
			wm, werr := dst.Write(buf[:m])
			written += int64(wm)
			if werr != nil {
				return written, werr
			}
		}
		if err != nil {
			if err == io.EOF {
				err = nil
			}
			return written, err
		}
	}
	return written, nil
}

// firstByteReader invokes onFirst once, at the first successful read.
type firstByteReader struct {
	r       io.Reader
	onFirst func()
	fired   bool
}

func (f *firstByteReader) Read(p []byte) (int, error) {
	n, err := f.r.Read(p)
	if n > 0 && !f.fired {
		f.fired = true
		if f.onFirst != nil {
			f.onFirst()
		}
	}
	return n, err
}

type countWriter struct{ n *int64 }

func (c countWriter) Write(p []byte) (int, error) {
	*c.n += int64(len(p))
	return len(p), nil
}

type sliceWriter struct{ buf *[]byte }

func (s sliceWriter) Write(p []byte) (int, error) {
	*s.buf = append(*s.buf, p...)
	return len(p), nil
}

func min64(a, b int64) int64 {
	if a < 0 {
		return b
	}
	if a < b {
		return a
	}
	return b
}
