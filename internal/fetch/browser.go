package fetch

import (
	"bufio"
	"errors"
	"sort"
	"time"

	"ptperf/internal/netem"
	"ptperf/internal/web"
)

// DefaultBrowserConns mirrors a browser's per-origin connection pool.
const DefaultBrowserConns = 6

// LoadEvent records one resource becoming visually complete.
type LoadEvent struct {
	// At is the virtual time of completion, relative to navigation
	// start.
	At time.Duration
	// Weight is the resource's visual-completeness share.
	Weight float64
}

// PageResult is the outcome of a browser page load.
type PageResult struct {
	// OK reports whether the base document and all resources loaded.
	OK bool
	// TTFB is the base document's time to first byte.
	TTFB time.Duration
	// PageLoadTime is navigation start to last resource complete — the
	// selenium metric of Figure 2b.
	PageLoadTime time.Duration
	// SpeedIndex is the browsertime metric of Figure 11.
	SpeedIndex time.Duration
	// Bytes is the total payload transferred.
	Bytes int64
	// ResourcesLoaded / ResourcesTotal count sub-resource outcomes.
	ResourcesLoaded, ResourcesTotal int
	// Err is the first error observed, if any.
	Err error
}

// Browse emulates the paper's selenium access: fetch the default page,
// parse its resource references, then load every resource over up to
// maxConns parallel keep-alive connections. maxConns ≤ 0 selects
// DefaultBrowserConns.
func (c *Client) Browse(origin, path string, maxConns int) PageResult {
	if maxConns <= 0 {
		maxConns = DefaultBrowserConns
	}
	start := c.Net.Now()
	deadline := c.Net.VirtualDeadline(c.timeout())

	page := c.Get(origin, path, true)
	pr := PageResult{TTFB: page.TTFB, Bytes: page.BytesGot, Err: page.Err}
	if !page.Complete() {
		pr.PageLoadTime = page.Total
		if pr.Err == nil {
			pr.Err = errors.New("fetch: base document incomplete")
		}
		return pr
	}
	baseWeight, resources, ok := web.ParseManifest(page.Body)
	if !ok {
		pr.Err = errors.New("fetch: page has no manifest")
		pr.PageLoadTime = page.Total
		return pr
	}
	events := []LoadEvent{{At: page.Total, Weight: baseWeight}}
	pr.ResourcesTotal = len(resources)

	if len(resources) > 0 {
		if maxConns > len(resources) {
			maxConns = len(resources)
		}
		type done struct {
			ev    LoadEvent
			bytes int64
			err   error
		}
		// queue and results never block: queue is pre-filled and closed
		// before the workers start, and results has room for every
		// resource. Plain channels are therefore safe under the
		// discrete-event scheduler; the workers themselves are
		// simulation goroutines.
		queue := make(chan web.Resource, len(resources))
		for _, r := range resources {
			queue <- r
		}
		close(queue)
		results := make(chan done, len(resources))

		wg := netem.NewWaitGroup(c.Net.Clock())
		for w := 0; w < maxConns; w++ {
			wg.Add(1)
			c.Net.Go(func() {
				defer wg.Done()
				conn, err := c.Dial(origin)
				if err != nil {
					for r := range queue {
						results <- done{err: err, ev: LoadEvent{Weight: r.VisualWeight}}
					}
					return
				}
				defer conn.Close()
				conn.SetDeadline(deadline)
				br := bufio.NewReaderSize(conn, 32<<10)
				for r := range queue {
					n, err := fetchOn(conn, br, r.Path)
					at := c.Net.Since(start)
					results <- done{
						ev:    LoadEvent{At: at, Weight: r.VisualWeight},
						bytes: n,
						err:   err,
					}
					if err != nil {
						// The connection is poisoned; fail remaining work.
						for r2 := range queue {
							results <- done{err: err, ev: LoadEvent{Weight: r2.VisualWeight}}
						}
						return
					}
				}
			})
		}
		wg.Wait()
		close(results)
		for d := range results {
			pr.Bytes += d.bytes
			if d.err != nil {
				if pr.Err == nil {
					pr.Err = d.err
				}
				continue
			}
			pr.ResourcesLoaded++
			events = append(events, d.ev)
		}
	}

	pr.PageLoadTime = maxEventTime(events)
	pr.SpeedIndex = SpeedIndex(events)
	pr.OK = pr.Err == nil && pr.ResourcesLoaded == pr.ResourcesTotal
	return pr
}

func maxEventTime(events []LoadEvent) time.Duration {
	var m time.Duration
	for _, e := range events {
		if e.At > m {
			m = e.At
		}
	}
	return m
}

// SpeedIndex integrates visual incompleteness over time, following the
// Lighthouse definition SI = ∫ (1 − completeness(t)) dt. Completeness
// jumps by each event's weight at its completion time; weights are
// normalized over the events actually observed.
func SpeedIndex(events []LoadEvent) time.Duration {
	if len(events) == 0 {
		return 0
	}
	evs := append([]LoadEvent(nil), events...)
	sort.Slice(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
	var total float64
	for _, e := range evs {
		total += e.Weight
	}
	if total <= 0 {
		return maxEventTime(evs)
	}
	var si float64
	var completeness float64
	var prev time.Duration
	for _, e := range evs {
		si += (1 - completeness) * float64(e.At-prev)
		completeness += e.Weight / total
		prev = e.At
	}
	return time.Duration(si)
}
