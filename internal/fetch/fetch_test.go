package fetch

import (
	"io"
	"net"
	"testing"
	"testing/quick"
	"time"

	"ptperf/internal/geo"
	"ptperf/internal/netem"
	"ptperf/internal/web"
)

func testSetup(t *testing.T) (*netem.Network, *Client, *web.Origin, *web.Catalog) {
	t.Helper()
	// Scale 0.01 keeps goroutine-wakeup noise (~tens of µs real) well
	// below the modeled RTTs, so latency-sensitive assertions hold.
	n := netem.New(netem.WithTimeScale(0.01), netem.WithSeed(4))
	server := n.MustAddHost(netem.HostConfig{Name: "origin", Location: geo.Frankfurt})
	clientHost := n.MustAddHost(netem.HostConfig{Name: "client", Location: geo.London})
	cat := web.GenerateCatalog(web.Tranco, 4, 1, 0.1)
	o, err := web.StartOrigin(server, 80, cat)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { o.Close() })
	c := &Client{Net: n, Dial: func(target string) (net.Conn, error) { return clientHost.Dial(target) }}
	return n, c, o, cat
}

func TestGetCompletes(t *testing.T) {
	_, c, o, cat := testSetup(t)
	site := &cat.Sites[0]
	res := c.Get(o.Addr(), site.Path, false)
	if !res.Complete() {
		t.Fatalf("incomplete: %+v", res)
	}
	if res.BytesGot < int64(site.PageBytes) {
		t.Fatalf("got %d bytes, want >= %d", res.BytesGot, site.PageBytes)
	}
	if res.TTFB <= 0 || res.TTFB > res.Total {
		t.Fatalf("TTFB %v vs total %v", res.TTFB, res.Total)
	}
	if res.Fraction() != 1 {
		t.Fatalf("fraction %v", res.Fraction())
	}
}

func TestGetTTFBReflectsLatency(t *testing.T) {
	_, c, o, cat := testSetup(t)
	res := c.Get(o.Addr(), cat.Sites[0].Path, false)
	rtt := geo.RTT(geo.London, geo.Frankfurt)
	// TTFB ≥ dial RTT + request/response RTT.
	if res.TTFB < 2*rtt-rtt/2 {
		t.Fatalf("TTFB %v implausibly small vs RTT %v", res.TTFB, rtt)
	}
}

func TestGet404(t *testing.T) {
	_, c, o, _ := testSetup(t)
	res := c.Get(o.Addr(), "/nothing", false)
	if res.Status != 404 || res.Complete() {
		t.Fatalf("res = %+v", res)
	}
}

func TestGetDialFailure(t *testing.T) {
	_, c, _, _ := testSetup(t)
	res := c.Get("nowhere:80", "/x", false)
	if res.Err == nil || !res.Failed() {
		t.Fatalf("res = %+v", res)
	}
}

func TestDownloadFile(t *testing.T) {
	_, c, o, _ := testSetup(t)
	res := c.DownloadFile(o.Addr(), 50_000)
	if !res.Complete() || res.BytesGot != 50_000 {
		t.Fatalf("res = %+v", res)
	}
}

func TestTimeoutYieldsPartial(t *testing.T) {
	n := netem.New(netem.WithTimeScale(0.001), netem.WithSeed(4))
	// A slow origin link so the download cannot finish in time.
	server := n.MustAddHost(netem.HostConfig{Name: "origin", Location: geo.Frankfurt, UplinkBps: 50 << 10})
	clientHost := n.MustAddHost(netem.HostConfig{Name: "client", Location: geo.London})
	o, err := web.StartOrigin(server, 80)
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()
	c := &Client{
		Net:     n,
		Dial:    func(target string) (net.Conn, error) { return clientHost.Dial(target) },
		Timeout: 3 * time.Second, // virtual
	}
	res := c.DownloadFile(o.Addr(), 1<<20) // 1 MiB at 50 KB/s needs ~20 s
	if res.Complete() {
		t.Fatalf("download should have timed out: %+v", res)
	}
	if !res.Partial() {
		t.Fatalf("expected partial download, got %+v (got=%d)", res, res.BytesGot)
	}
	if f := res.Fraction(); f <= 0 || f >= 1 {
		t.Fatalf("fraction %v out of (0,1)", f)
	}
}

// cutConn fails reads after a byte budget — a stand-in for a circuit
// dying mid-transfer.
type cutConn struct {
	net.Conn
	remaining int
}

func (c *cutConn) Read(p []byte) (int, error) {
	if c.remaining <= 0 {
		c.Conn.Close()
		return 0, io.ErrUnexpectedEOF
	}
	if len(p) > c.remaining {
		p = p[:c.remaining]
	}
	n, err := c.Conn.Read(p)
	c.remaining -= n
	return n, err
}

// TestDownloadFileResumed kills the first leg partway and checks the
// client finishes the file via ?from= legs: full byte count, one resume
// counted, first-leg TTFB preserved.
func TestDownloadFileResumed(t *testing.T) {
	n := netem.New(netem.WithTimeScale(0.01), netem.WithSeed(4))
	server := n.MustAddHost(netem.HostConfig{Name: "origin", Location: geo.Frankfurt})
	clientHost := n.MustAddHost(netem.HostConfig{Name: "client", Location: geo.London})
	o, err := web.StartOrigin(server, 80)
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()

	legs := 0
	c := &Client{Net: n, Dial: func(target string) (net.Conn, error) {
		conn, err := clientHost.Dial(target)
		if err != nil {
			return nil, err
		}
		legs++
		if legs == 1 {
			// First leg dies after ~20 KB (headers included).
			return &cutConn{Conn: conn, remaining: 20_000}, nil
		}
		return conn, nil
	}}

	res := c.DownloadFileResumed(o.Addr(), 50_000, 4)
	if !res.Complete() || res.BytesGot != 50_000 {
		t.Fatalf("resumed download incomplete: %+v", res)
	}
	if res.Resumes != 1 || legs != 2 {
		t.Fatalf("resumes=%d legs=%d, want 1 resume over 2 legs", res.Resumes, legs)
	}
	if res.TTFB <= 0 || res.TTFB > res.Total {
		t.Fatalf("TTFB %v vs total %v", res.TTFB, res.Total)
	}
}

// TestDownloadFileResumedGivesUp: a dialer that always cuts exhausts
// maxResumes and reports a partial, failed transfer — never a hang.
func TestDownloadFileResumedGivesUp(t *testing.T) {
	n := netem.New(netem.WithTimeScale(0.01), netem.WithSeed(4))
	server := n.MustAddHost(netem.HostConfig{Name: "origin", Location: geo.Frankfurt})
	clientHost := n.MustAddHost(netem.HostConfig{Name: "client", Location: geo.London})
	o, err := web.StartOrigin(server, 80)
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()

	c := &Client{Net: n, Dial: func(target string) (net.Conn, error) {
		conn, err := clientHost.Dial(target)
		if err != nil {
			return nil, err
		}
		return &cutConn{Conn: conn, remaining: 5_000}, nil
	}}
	res := c.DownloadFileResumed(o.Addr(), 1_000_000, 3)
	if res.Complete() {
		t.Fatalf("always-cut download reported complete: %+v", res)
	}
	if res.Resumes != 3 {
		t.Fatalf("resumes = %d, want the cap 3", res.Resumes)
	}
	if res.BytesGot <= 0 || res.BytesGot >= 1_000_000 {
		t.Fatalf("BytesGot = %d, want a partial count", res.BytesGot)
	}
}

func TestBrowseLoadsAllResources(t *testing.T) {
	_, c, o, cat := testSetup(t)
	site := &cat.Sites[1]
	pr := c.Browse(o.Addr(), site.Path, 6)
	if !pr.OK {
		t.Fatalf("browse failed: %+v", pr)
	}
	if pr.ResourcesLoaded != len(site.Resources) {
		t.Fatalf("loaded %d of %d", pr.ResourcesLoaded, len(site.Resources))
	}
	if pr.PageLoadTime <= 0 || pr.SpeedIndex <= 0 {
		t.Fatal("missing metrics")
	}
	if pr.SpeedIndex > pr.PageLoadTime {
		t.Fatalf("speed index %v exceeds PLT %v", pr.SpeedIndex, pr.PageLoadTime)
	}
	curl := c.Get(o.Addr(), site.Path, false)
	if pr.PageLoadTime <= curl.Total {
		t.Fatalf("browser PLT %v should exceed curl time %v", pr.PageLoadTime, curl.Total)
	}
}

func TestBrowseParallelismHelps(t *testing.T) {
	_, c, o, cat := testSetup(t)
	// Pick the site with the most resources for a clear effect.
	best := 0
	for i := range cat.Sites {
		if len(cat.Sites[i].Resources) > len(cat.Sites[best].Resources) {
			best = i
		}
	}
	site := &cat.Sites[best]
	serial := c.Browse(o.Addr(), site.Path, 1)
	parallel := c.Browse(o.Addr(), site.Path, 6)
	if !serial.OK || !parallel.OK {
		t.Fatalf("serial=%+v parallel=%+v", serial.Err, parallel.Err)
	}
	if parallel.PageLoadTime >= serial.PageLoadTime {
		t.Fatalf("6 conns (%v) should beat 1 conn (%v)", parallel.PageLoadTime, serial.PageLoadTime)
	}
}

func TestSpeedIndexProperties(t *testing.T) {
	// SI of a single event equals its time; SI is bounded by PLT; SI is
	// monotone when mass shifts earlier.
	one := []LoadEvent{{At: 3 * time.Second, Weight: 1}}
	if got := SpeedIndex(one); got != 3*time.Second {
		t.Fatalf("single event SI = %v", got)
	}
	early := []LoadEvent{{At: time.Second, Weight: 0.9}, {At: 10 * time.Second, Weight: 0.1}}
	late := []LoadEvent{{At: time.Second, Weight: 0.1}, {At: 10 * time.Second, Weight: 0.9}}
	if SpeedIndex(early) >= SpeedIndex(late) {
		t.Fatal("earlier visual mass must lower SI")
	}

	f := func(times []uint32, weights []uint8) bool {
		n := len(times)
		if len(weights) < n {
			n = len(weights)
		}
		if n == 0 {
			return true
		}
		evs := make([]LoadEvent, n)
		var plt time.Duration
		for i := 0; i < n; i++ {
			at := time.Duration(times[i]%100_000) * time.Millisecond
			evs[i] = LoadEvent{At: at, Weight: float64(weights[i]%100) + 1}
			if at > plt {
				plt = at
			}
		}
		si := SpeedIndex(evs)
		return si >= 0 && si <= plt
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSpeedIndexEmpty(t *testing.T) {
	if SpeedIndex(nil) != 0 {
		t.Fatal("empty events should yield 0")
	}
}

func TestResultClassificationInvariants(t *testing.T) {
	// Exactly one of Complete/Partial/Failed holds for any outcome.
	f := func(status uint8, wanted, got int64) bool {
		r := Result{
			Status:      int(status),
			BytesWanted: wanted % 1e9,
			BytesGot:    got % 1e9,
		}
		if r.BytesWanted < 0 {
			r.BytesWanted = -r.BytesWanted
		}
		if r.BytesGot < 0 {
			r.BytesGot = -r.BytesGot
		}
		states := 0
		if r.Complete() {
			states++
		}
		if r.Partial() {
			states++
		}
		if r.Failed() {
			states++
		}
		if states != 1 {
			return false
		}
		fr := r.Fraction()
		return fr >= 0 && fr <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestFractionOfCompleteIsOne(t *testing.T) {
	r := Result{Status: 200, BytesWanted: 100, BytesGot: 100}
	if !r.Complete() || r.Fraction() != 1 {
		t.Fatalf("complete result misclassified: %+v", r)
	}
	zero := Result{Status: 200, BytesWanted: 0, BytesGot: 0}
	if !zero.Complete() {
		t.Fatal("empty body with 200 is a complete fetch")
	}
}
