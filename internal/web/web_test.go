package web

import (
	"bufio"
	"bytes"
	"io"
	"strings"
	"testing"
	"testing/quick"

	"ptperf/internal/geo"
	"ptperf/internal/netem"
)

func TestCatalogDeterministic(t *testing.T) {
	a := GenerateCatalog(Tranco, 50, 7, 1)
	b := GenerateCatalog(Tranco, 50, 7, 1)
	if len(a.Sites) != 50 || len(b.Sites) != 50 {
		t.Fatal("wrong size")
	}
	for i := range a.Sites {
		if a.Sites[i].PageBytes != b.Sites[i].PageBytes ||
			len(a.Sites[i].Resources) != len(b.Sites[i].Resources) {
			t.Fatalf("site %d differs between identical seeds", i)
		}
	}
	c := GenerateCatalog(Tranco, 50, 8, 1)
	same := 0
	for i := range a.Sites {
		if a.Sites[i].PageBytes == c.Sites[i].PageBytes {
			same++
		}
	}
	if same == 50 {
		t.Fatal("different seeds produced identical catalog")
	}
}

func TestCatalogByteScale(t *testing.T) {
	full := GenerateCatalog(CBL, 20, 3, 1)
	scaled := GenerateCatalog(CBL, 20, 3, 0.25)
	var fullSum, scaledSum int
	for i := range full.Sites {
		fullSum += full.Sites[i].TotalBytes()
		scaledSum += scaled.Sites[i].TotalBytes()
	}
	ratio := float64(scaledSum) / float64(fullSum)
	if ratio < 0.15 || ratio > 0.4 {
		t.Fatalf("byteScale 0.25 produced ratio %.2f", ratio)
	}
}

func TestCatalogWeightsNormalized(t *testing.T) {
	cat := GenerateCatalog(Tranco, 30, 1, 1)
	for _, s := range cat.Sites {
		sum := s.BaseVisualWeight
		for _, r := range s.Resources {
			sum += r.VisualWeight
		}
		if sum < 0.98 || sum > 1.02 {
			t.Fatalf("site %d weights sum to %.3f", s.ID, sum)
		}
	}
}

func TestManifestRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		cat := GenerateCatalog(Tranco, 1, seed, 1)
		site := &cat.Sites[0]
		m := BuildManifest(site)
		base, res, ok := ParseManifest(m)
		if !ok || len(res) != len(site.Resources) {
			return false
		}
		if base < site.BaseVisualWeight-0.001 || base > site.BaseVisualWeight+0.001 {
			return false
		}
		for i := range res {
			if res[i].Path != site.Resources[i].Path || res[i].Bytes != site.Resources[i].Bytes {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestParseManifestRejectsGarbage(t *testing.T) {
	for _, body := range []string{"", "hello", "ptperf-page resources=nope", "ptperf-page resources=3 base-weight-ppm=5\nonly-one-line"} {
		if _, _, ok := ParseManifest([]byte(body)); ok {
			t.Errorf("garbage %q parsed", body)
		}
	}
}

func TestHTTPRequestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteRequest(&buf, "/site/tranco/3", true); err != nil {
		t.Fatal(err)
	}
	req, err := ReadRequest(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if req.Method != "GET" || req.Path != "/site/tranco/3" || !req.Close {
		t.Fatalf("req = %+v", req)
	}
}

func TestHTTPResponseRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := writeResponseHeader(&buf, 200, 1234); err != nil {
		t.Fatal(err)
	}
	resp, err := ReadResponse(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 200 || resp.ContentLength != 1234 {
		t.Fatalf("resp = %+v", resp)
	}
}

func TestHTTPMalformed(t *testing.T) {
	if _, err := ReadRequest(bufio.NewReader(strings.NewReader("BOGUS\r\n\r\n"))); err == nil {
		t.Fatal("malformed request accepted")
	}
	if _, err := ReadResponse(bufio.NewReader(strings.NewReader("NOT-HTTP 200\r\n\r\n"))); err == nil {
		t.Fatal("malformed response accepted")
	}
}

func newOrigin(t *testing.T) (*netem.Network, *netem.Host, *Origin) {
	t.Helper()
	n := netem.New(netem.WithTimeScale(0.001), netem.WithSeed(2))
	server := n.MustAddHost(netem.HostConfig{Name: "origin", Location: geo.NewYork})
	client := n.MustAddHost(netem.HostConfig{Name: "client", Location: geo.Toronto})
	cat := GenerateCatalog(Tranco, 5, 1, 0.25)
	o, err := StartOrigin(server, 80, cat)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { o.Close() })
	return n, client, o
}

func get(t *testing.T, client *netem.Host, origin *Origin, path string) (int, []byte) {
	t.Helper()
	conn, err := client.Dial(origin.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := WriteRequest(conn, path, true); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(conn)
	resp, err := ReadResponse(br)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(io.LimitReader(br, resp.ContentLength))
	if err != nil {
		t.Fatal(err)
	}
	return resp.Status, body
}

func TestOriginServesPage(t *testing.T) {
	_, client, o := newOrigin(t)
	status, body := get(t, client, o, "/site/tranco/0")
	if status != 200 {
		t.Fatalf("status %d", status)
	}
	base, res, ok := ParseManifest(body)
	if !ok || base <= 0 || len(res) == 0 {
		t.Fatal("page should start with a parsable manifest")
	}
	status, body = get(t, client, o, res[0].Path)
	if status != 200 || len(body) != res[0].Bytes {
		t.Fatalf("resource fetch: status=%d len=%d want %d", status, len(body), res[0].Bytes)
	}
}

func TestOriginServesFiles(t *testing.T) {
	_, client, o := newOrigin(t)
	status, body := get(t, client, o, FilePath(10_000))
	if status != 200 || len(body) != 10_000 {
		t.Fatalf("file: status=%d len=%d", status, len(body))
	}
}

// TestOriginServesFileTail covers the resume form: ?from=<off> serves
// exactly the remainder, the boundary offsets behave, and malformed or
// out-of-range offsets 404 rather than serving a wrong-length body.
func TestOriginServesFileTail(t *testing.T) {
	_, client, o := newOrigin(t)
	status, tail := get(t, client, o, FilePath(10_000)+"?from=9000")
	if status != 200 || len(tail) != 1000 {
		t.Fatalf("tail: status=%d len=%d, want 200/1000", status, len(tail))
	}
	status, body := get(t, client, o, FilePath(10_000)+"?from=0")
	if status != 200 || len(body) != 10_000 {
		t.Fatalf("from=0: status=%d len=%d", status, len(body))
	}
	status, body = get(t, client, o, FilePath(10_000)+"?from=10000")
	if status != 200 || len(body) != 0 {
		t.Fatalf("from=size: status=%d len=%d, want empty 200", status, len(body))
	}
	for _, p := range []string{"?from=10001", "?from=-1", "?from=abc", "?offset=5"} {
		if status, _ := get(t, client, o, FilePath(10_000)+p); status != 404 {
			t.Errorf("query %q: status %d, want 404", p, status)
		}
	}
}

func TestOrigin404s(t *testing.T) {
	_, client, o := newOrigin(t)
	for _, p := range []string{"/site/tranco/999", "/site/bogus/0", "/res/tranco/0/999", "/file/abc", "/nothing", "/site/tranco/0/extra"} {
		if status, _ := get(t, client, o, p); status != 404 {
			t.Errorf("path %s: status %d, want 404", p, status)
		}
	}
}

func TestOriginKeepAlive(t *testing.T) {
	_, client, o := newOrigin(t)
	conn, err := client.Dial(o.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)
	for i := 0; i < 3; i++ {
		if err := WriteRequest(conn, FilePath(500), false); err != nil {
			t.Fatal(err)
		}
		resp, err := ReadResponse(br)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if _, err := io.CopyN(io.Discard, br, resp.ContentLength); err != nil {
			t.Fatal(err)
		}
	}
}
