// Package web provides the destination side of the PTPerf measurements:
// deterministic synthetic website catalogs standing in for the Tranco
// top-1k and the Citizen-Lab/Berkman blocked list (CBL-1k), a minimal
// HTTP/1.1 origin server, and a bulk-file host for the 5–100 MB download
// experiments.
package web

import (
	"fmt"
	"math"
	"math/rand"
)

// List names the two website populations of the paper.
type List string

// The two site lists used throughout the paper.
const (
	// Tranco is the popular-websites list (Tranco top-1k).
	Tranco List = "tranco"
	// CBL is the blocked-websites list (Citizen Lab + Berkman 1k).
	CBL List = "cbl"
)

// Resource is one sub-resource referenced by a page (script, image, …).
type Resource struct {
	// Path is the origin-relative path of the resource.
	Path string
	// Bytes is the body size.
	Bytes int
	// VisualWeight is the resource's share of the page's visual
	// completeness, used by the speed-index metric. Weights of a page
	// (including the base document) sum to 1.
	VisualWeight float64
}

// Site is one synthetic website.
type Site struct {
	// ID indexes the site within its list.
	ID int
	// List is the population this site belongs to.
	List List
	// Path is the origin-relative path of the default page.
	Path string
	// PageBytes is the size of the default page body.
	PageBytes int
	// BaseVisualWeight is the default document's own share of visual
	// completeness.
	BaseVisualWeight float64
	// Resources are the page's sub-resources, fetched by the browser
	// emulator but not by the curl-style fetcher.
	Resources []Resource
}

// TotalBytes is the full page weight (default page plus resources).
func (s *Site) TotalBytes() int {
	n := s.PageBytes
	for _, r := range s.Resources {
		n += r.Bytes
	}
	return n
}

// Catalog is a generated website population.
type Catalog struct {
	// List identifies the population.
	List List
	// Sites are the generated sites, indexed by ID.
	Sites []Site
}

// lognormal draws a log-normally distributed value with the given median
// and shape, clamped to [lo, hi].
func lognormal(rng *rand.Rand, median, sigma, lo, hi float64) float64 {
	v := median * math.Exp(rng.NormFloat64()*sigma)
	if v < lo {
		v = lo
	}
	if v > hi {
		v = hi
	}
	return v
}

// GenerateCatalog builds a deterministic catalog of n sites. Page and
// resource sizes follow heavy-tailed (log-normal) distributions tuned to
// published web-measurement medians: default documents of a few tens of
// KB, pages of 10–60 sub-resources totalling ~1–2 MB. byteScale scales
// every size (see DESIGN.md: the simulation scales sizes and rates
// together, which preserves durations).
func GenerateCatalog(list List, n int, seed int64, byteScale float64) *Catalog {
	if byteScale <= 0 {
		byteScale = 1
	}
	rng := rand.New(rand.NewSource(seed ^ int64(len(list))<<32 + 0x9e3779b9))
	cat := &Catalog{List: list, Sites: make([]Site, n)}
	for i := 0; i < n; i++ {
		pageBytes := int(lognormal(rng, 38<<10, 0.9, 2<<10, 1<<20) * byteScale)
		nres := int(lognormal(rng, 22, 0.7, 3, 120))
		site := Site{
			ID:        i,
			List:      list,
			Path:      fmt.Sprintf("/site/%s/%d", list, i),
			PageBytes: clampMin(pageBytes, 64),
		}
		weights := make([]float64, nres+1)
		var wsum float64
		for k := range weights {
			weights[k] = 0.2 + rng.Float64()
			wsum += weights[k]
		}
		site.BaseVisualWeight = weights[0] / wsum * 1.5 // the document skeleton matters more
		rest := 1 - site.BaseVisualWeight
		var restSum float64
		for k := 1; k < len(weights); k++ {
			restSum += weights[k]
		}
		for k := 0; k < nres; k++ {
			resBytes := int(lognormal(rng, 14<<10, 1.1, 200, 800<<10) * byteScale)
			site.Resources = append(site.Resources, Resource{
				Path:         fmt.Sprintf("/res/%s/%d/%d", list, i, k),
				Bytes:        clampMin(resBytes, 32),
				VisualWeight: rest * weights[k+1] / restSum,
			})
		}
		cat.Sites[i] = site
	}
	return cat
}

func clampMin(v, lo int) int {
	if v < lo {
		return lo
	}
	return v
}

// FileSizesMB are the bulk-download sizes of Figure 5.
var FileSizesMB = []int{5, 10, 20, 50, 100}

// FilePath returns the origin path serving sizeBytes of body.
func FilePath(sizeBytes int) string { return fmt.Sprintf("/file/%d", sizeBytes) }
