package web

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
)

// The origin speaks a deliberately small HTTP/1.1 subset: GET with
// Content-Length responses and connection keep-alive. Hand-rolling it
// (rather than net/http) keeps byte-level control over when the first
// body byte leaves the server, which the TTFB metric depends on.

// Request is a parsed HTTP request line.
type Request struct {
	// Method is the HTTP method (only GET is served).
	Method string
	// Path is the origin-relative request path.
	Path string
	// Close reports whether the client asked for Connection: close.
	Close bool
}

// ReadRequest parses one request from r.
func ReadRequest(r *bufio.Reader) (*Request, error) {
	line, err := r.ReadString('\n')
	if err != nil {
		return nil, err
	}
	parts := strings.Fields(strings.TrimSpace(line))
	if len(parts) != 3 || !strings.HasPrefix(parts[2], "HTTP/1.") {
		return nil, fmt.Errorf("web: malformed request line %q", strings.TrimSpace(line))
	}
	req := &Request{Method: parts[0], Path: parts[1]}
	for {
		h, err := r.ReadString('\n')
		if err != nil {
			return nil, err
		}
		h = strings.TrimSpace(h)
		if h == "" {
			return req, nil
		}
		if k, v, ok := strings.Cut(h, ":"); ok {
			if strings.EqualFold(strings.TrimSpace(k), "Connection") &&
				strings.EqualFold(strings.TrimSpace(v), "close") {
				req.Close = true
			}
		}
	}
}

// WriteRequest emits a GET for path.
func WriteRequest(w io.Writer, path string, close bool) error {
	conn := "keep-alive"
	if close {
		conn = "close"
	}
	_, err := fmt.Fprintf(w, "GET %s HTTP/1.1\r\nHost: origin\r\nConnection: %s\r\n\r\n", path, conn)
	return err
}

// Response is a parsed response header.
type Response struct {
	// Status is the HTTP status code.
	Status int
	// ContentLength is the declared body size.
	ContentLength int64
}

// ReadResponse parses status line and headers; the body remains on r.
func ReadResponse(r *bufio.Reader) (*Response, error) {
	line, err := r.ReadString('\n')
	if err != nil {
		return nil, err
	}
	parts := strings.SplitN(strings.TrimSpace(line), " ", 3)
	if len(parts) < 2 || !strings.HasPrefix(parts[0], "HTTP/1.") {
		return nil, fmt.Errorf("web: malformed status line %q", strings.TrimSpace(line))
	}
	status, err := strconv.Atoi(parts[1])
	if err != nil {
		return nil, fmt.Errorf("web: bad status %q", parts[1])
	}
	resp := &Response{Status: status, ContentLength: -1}
	for {
		h, err := r.ReadString('\n')
		if err != nil {
			return nil, err
		}
		h = strings.TrimSpace(h)
		if h == "" {
			return resp, nil
		}
		if k, v, ok := strings.Cut(h, ":"); ok {
			if strings.EqualFold(strings.TrimSpace(k), "Content-Length") {
				n, err := strconv.ParseInt(strings.TrimSpace(v), 10, 64)
				if err != nil {
					return nil, fmt.Errorf("web: bad content-length %q", v)
				}
				resp.ContentLength = n
			}
		}
	}
}

// writeResponseHeader emits the status line and headers for a body of n
// bytes.
func writeResponseHeader(w io.Writer, status int, n int64) error {
	text := "OK"
	if status == 404 {
		text = "Not Found"
	}
	_, err := fmt.Fprintf(w, "HTTP/1.1 %d %s\r\nContent-Length: %d\r\n\r\n", status, text, n)
	return err
}

// bodyPattern is a shared 64 KiB block used to synthesize bodies without
// allocating per request.
var bodyPattern = func() []byte {
	b := make([]byte, 64<<10)
	for i := range b {
		b[i] = byte('a' + i%26)
	}
	return b
}()

// writeBody streams n pattern bytes after the given prefix.
func writeBody(w io.Writer, prefix []byte, n int) error {
	if len(prefix) > n {
		prefix = prefix[:n]
	}
	if len(prefix) > 0 {
		if _, err := w.Write(prefix); err != nil {
			return err
		}
		n -= len(prefix)
	}
	for n > 0 {
		chunk := bodyPattern
		if n < len(chunk) {
			chunk = chunk[:n]
		}
		if _, err := w.Write(chunk); err != nil {
			return err
		}
		n -= len(chunk)
	}
	return nil
}

// proxyHalfClose is a helper for conn types supporting CloseWrite.
func proxyHalfClose(c net.Conn) {
	if cw, ok := c.(interface{ CloseWrite() error }); ok {
		cw.CloseWrite()
		return
	}
	c.Close()
}
