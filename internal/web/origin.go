package web

import (
	"bufio"
	"fmt"
	"net"
	"strconv"
	"strings"

	"ptperf/internal/netem"
)

// Origin serves the catalogs and bulk files over the minimal HTTP/1.1
// subset. One origin stands in for the paper's "uncensored Internet".
type Origin struct {
	ln       *netem.Listener
	clock    *netem.Clock
	catalogs map[List]*Catalog
	addr     string
}

// StartOrigin launches the origin on host:port.
func StartOrigin(host *netem.Host, port int, catalogs ...*Catalog) (*Origin, error) {
	ln, err := host.Listen(port)
	if err != nil {
		return nil, err
	}
	o := &Origin{
		ln:       ln,
		clock:    host.Network().Clock(),
		catalogs: make(map[List]*Catalog),
		addr:     fmt.Sprintf("%s:%d", host.Name(), port),
	}
	for _, c := range catalogs {
		o.catalogs[c.List] = c
	}
	o.clock.Go(o.acceptLoop)
	return o, nil
}

// Addr returns the origin's "host:port".
func (o *Origin) Addr() string { return o.addr }

// Close stops the origin.
func (o *Origin) Close() error { return o.ln.Close() }

func (o *Origin) acceptLoop() {
	for {
		c, err := o.ln.Accept()
		if err != nil {
			return
		}
		conn := c
		o.clock.Go(func() { o.serveConn(conn) })
	}
}

func (o *Origin) serveConn(conn net.Conn) {
	defer conn.Close()
	r := bufio.NewReaderSize(conn, 4<<10)
	w := bufio.NewWriterSize(conn, 32<<10)
	for {
		req, err := ReadRequest(r)
		if err != nil {
			return
		}
		if err := o.serveRequest(w, req); err != nil {
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
		if req.Close {
			return
		}
	}
}

// serveRequest routes one GET.
func (o *Origin) serveRequest(w *bufio.Writer, req *Request) error {
	if req.Method != "GET" {
		return writeResponseHeader(w, 404, 0)
	}
	switch {
	case strings.HasPrefix(req.Path, "/site/"):
		return o.servePage(w, req.Path)
	case strings.HasPrefix(req.Path, "/res/"):
		return o.serveResource(w, req.Path)
	case strings.HasPrefix(req.Path, "/file/"):
		return o.serveFile(w, req.Path)
	default:
		return writeResponseHeader(w, 404, 0)
	}
}

// lookupSite resolves "/site/<list>/<id>" or "/res/<list>/<id>/<k>".
func (o *Origin) lookupSite(list, id string) *Site {
	cat := o.catalogs[List(list)]
	if cat == nil {
		return nil
	}
	n, err := strconv.Atoi(id)
	if err != nil || n < 0 || n >= len(cat.Sites) {
		return nil
	}
	return &cat.Sites[n]
}

// servePage writes the default document. Its body begins with a resource
// manifest — the simulation's stand-in for HTML references — followed by
// filler up to the page size:
//
//	ptperf-page resources=<n>
//	<path> <bytes> <weight-ppm>
//	...
func (o *Origin) servePage(w *bufio.Writer, path string) error {
	parts := strings.Split(strings.TrimPrefix(path, "/site/"), "/")
	if len(parts) != 2 {
		return writeResponseHeader(w, 404, 0)
	}
	site := o.lookupSite(parts[0], parts[1])
	if site == nil {
		return writeResponseHeader(w, 404, 0)
	}
	manifest := BuildManifest(site)
	n := site.PageBytes
	if len(manifest) > n {
		n = len(manifest)
	}
	if err := writeResponseHeader(w, 200, int64(n)); err != nil {
		return err
	}
	return writeBody(w, manifest, n)
}

func (o *Origin) serveResource(w *bufio.Writer, path string) error {
	parts := strings.Split(strings.TrimPrefix(path, "/res/"), "/")
	if len(parts) != 3 {
		return writeResponseHeader(w, 404, 0)
	}
	site := o.lookupSite(parts[0], parts[1])
	if site == nil {
		return writeResponseHeader(w, 404, 0)
	}
	k, err := strconv.Atoi(parts[2])
	if err != nil || k < 0 || k >= len(site.Resources) {
		return writeResponseHeader(w, 404, 0)
	}
	res := site.Resources[k]
	if err := writeResponseHeader(w, 200, int64(res.Bytes)); err != nil {
		return err
	}
	return writeBody(w, nil, res.Bytes)
}

// serveFile serves "/file/<n>" (n pattern bytes) or "/file/<n>?from=<off>"
// (the remainder from byte off — the resume form clients use to finish a
// download interrupted by a mid-circuit failure).
func (o *Origin) serveFile(w *bufio.Writer, path string) error {
	spec, query, _ := strings.Cut(strings.TrimPrefix(path, "/file/"), "?")
	n, err := strconv.Atoi(spec)
	if err != nil || n < 0 || n > 1<<31 {
		return writeResponseHeader(w, 404, 0)
	}
	from := 0
	if query != "" {
		v, ok := strings.CutPrefix(query, "from=")
		if !ok {
			return writeResponseHeader(w, 404, 0)
		}
		from, err = strconv.Atoi(v)
		if err != nil || from < 0 || from > n {
			return writeResponseHeader(w, 404, 0)
		}
	}
	if err := writeResponseHeader(w, 200, int64(n-from)); err != nil {
		return err
	}
	return writeBody(w, nil, n-from)
}

// BuildManifest renders the machine-readable resource list embedded at
// the top of a default page.
func BuildManifest(site *Site) []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "ptperf-page resources=%d base-weight-ppm=%d\n",
		len(site.Resources), int(site.BaseVisualWeight*1e6))
	for _, r := range site.Resources {
		fmt.Fprintf(&b, "%s %d %d\n", r.Path, r.Bytes, int(r.VisualWeight*1e6))
	}
	return []byte(b.String())
}

// ParseManifest recovers the resource list from a page body prefix.
func ParseManifest(body []byte) (base float64, res []Resource, ok bool) {
	lines := strings.Split(string(body), "\n")
	if len(lines) == 0 || !strings.HasPrefix(lines[0], "ptperf-page ") {
		return 0, nil, false
	}
	var nres, basePPM int
	if _, err := fmt.Sscanf(lines[0], "ptperf-page resources=%d base-weight-ppm=%d", &nres, &basePPM); err != nil {
		return 0, nil, false
	}
	if nres+1 > len(lines) {
		return 0, nil, false
	}
	for i := 1; i <= nres; i++ {
		var r Resource
		var ppm int
		if _, err := fmt.Sscanf(lines[i], "%s %d %d", &r.Path, &r.Bytes, &ppm); err != nil {
			return 0, nil, false
		}
		r.VisualWeight = float64(ppm) / 1e6
		res = append(res, r)
	}
	return float64(basePPM) / 1e6, res, true
}
