// Package censor is the programmable adversary and network-weather
// subsystem: a deterministic middlebox that sits on netem paths (via
// netem.Policy) and applies scenario-driven interference — bandwidth
// throttling, added loss and jitter, injected connection resets,
// endpoint blocking with client failover, and time-windowed events —
// all on the virtual clock, so same-seed runs stay byte-identical.
//
// A Scenario names an interference timeline (see the registry in
// scenario.go); Attach compiles it against one network. The testbed
// wires scenarios through testbed.Options.Scenario and the harness
// crosses them with transports in the scenario-sweep experiments.
package censor

import (
	"errors"
	"math/rand"
	"sync"
	"time"

	"ptperf/internal/netem"
)

// ErrBlocked is returned to dialers refused by an active Block rule.
var ErrBlocked = errors.New("censor: connection blocked")

// Stats counts the interference a censor has applied. All counters are
// deterministic functions of the campaign seed.
type Stats struct {
	// BlockedDials counts dials refused by Block rules.
	BlockedDials int
	// FlowsCut counts established flows torn down when a Block rule
	// activated.
	FlowsCut int
	// Resets counts injected mid-flight RSTs.
	Resets int
	// LossEvents counts induced per-segment loss events.
	LossEvents int
	// ThrottledSegments counts segments serialized through a throttle.
	ThrottledSegments int
}

// statsFault, when non-nil, mutates every Stats snapshot before it is
// returned. It exists solely so the simulation-torture suite
// (internal/simtest) can prove its invariant checkers catch a
// miscounting censor: production code must never set it.
var statsFault func(*Stats)

// SetStatsFault installs (or, with nil, removes) the test-only counter
// fault. Set it before any concurrent worlds start and remove it after
// they finish; the hook itself is not synchronized.
func SetStatsFault(f func(*Stats)) { statsFault = f }

// Censor applies one scenario to one network. It implements
// netem.Policy; construct it with Attach.
type Censor struct {
	net       *netem.Network
	clock     *netem.Clock
	sc        Scenario
	rateScale float64
	// shapers[i] is the shared throttle bottleneck of sc.Events[i]
	// (nil for non-throttle rules).
	shapers []*netem.Bucket

	mu    sync.Mutex
	rng   *rand.Rand
	conns []*netem.Conn
	stats Stats
}

// Attach compiles a scenario against a network and installs it as the
// network's policy. rateScale multiplies rule rates (the testbed passes
// its ByteScale so throttles shrink with every other byte quantity);
// values <= 0 mean 1. Event windows are armed on the network's virtual
// clock; call Attach before the campaign starts measuring.
func Attach(n *netem.Network, sc Scenario, seed int64, rateScale float64) *Censor {
	if rateScale <= 0 {
		rateScale = 1
	}
	c := &Censor{
		net:       n,
		clock:     n.Clock(),
		sc:        sc,
		rateScale: rateScale,
		rng:       rand.New(rand.NewSource(seed*7919 + 31)),
	}
	c.shapers = make([]*netem.Bucket, len(sc.Events))
	for i, ev := range sc.Events {
		if ev.Rule.RateBps > 0 {
			c.shapers[i] = netem.NewBucket(ev.Rule.RateBps*rateScale, 0)
		}
	}
	n.SetPolicy(c)
	// Arm the cutovers: a Block rule activating mid-run tears existing
	// matched flows down at its window start, like a censor flushing
	// state into an access link.
	for _, ev := range sc.Events {
		if ev.Rule.Block && ev.At > 0 {
			ev := ev
			n.Go(func() {
				c.clock.SleepUntil(ev.At)
				c.cut(ev.Rule.Match)
			})
		}
	}
	return c
}

// Scenario returns the attached scenario.
func (c *Censor) Scenario() Scenario { return c.sc }

// Stats returns a snapshot of the interference counters.
func (c *Censor) Stats() Stats {
	c.mu.Lock()
	s := c.stats
	c.mu.Unlock()
	if statsFault != nil {
		statsFault(&s)
	}
	return s
}

// BindLoad connects the endpoint-weather timeline to a pool controller
// (the snowflake deployment's SetLoad). The phase active now is applied
// immediately; future phases are armed on the virtual clock.
func (c *Censor) BindLoad(fn func(LoadPhase)) {
	if fn == nil || len(c.sc.Phases) == 0 {
		return
	}
	now := c.clock.Now()
	cur := -1
	for i, ph := range c.sc.Phases {
		if ph.At <= now {
			cur = i
			continue
		}
		ph := ph
		c.net.Go(func() {
			c.clock.SleepUntil(ph.At)
			fn(ph)
		})
	}
	if cur >= 0 {
		fn(c.sc.Phases[cur])
	}
}

// cut aborts every live flow crossing the match.
func (c *Censor) cut(m Match) {
	c.mu.Lock()
	var victims []*netem.Conn
	for _, conn := range c.conns {
		if conn.Closed() {
			continue
		}
		if m.Hit(conn.LocalAddr().String(), conn.RemoteAddr().String()) {
			victims = append(victims, conn)
		}
	}
	c.stats.FlowsCut += len(victims)
	c.mu.Unlock()
	for _, conn := range victims {
		conn.Abort()
	}
}

// FilterDial implements netem.Policy: active Block rules refuse new
// matched connections.
func (c *Censor) FilterDial(src, dst string) error {
	now := c.clock.Now()
	for _, ev := range c.sc.Events {
		if ev.Rule.Block && ev.active(now) && ev.Rule.Match.Hit(src, dst) {
			c.mu.Lock()
			c.stats.BlockedDials++
			c.mu.Unlock()
			return ErrBlocked
		}
	}
	return nil
}

// ConnOpened implements netem.Policy: it registers live flows so a
// Block activation can cut them. A conn whose handshake straddled a
// Block activation — FilterDial passed before At, establishment
// finished after — is aborted here instead of escaping the block. The
// registry prunes itself once closed conns dominate.
func (c *Censor) ConnOpened(conn *netem.Conn) {
	now := c.clock.Now()
	for _, ev := range c.sc.Events {
		if ev.Rule.Block && ev.active(now) &&
			ev.Rule.Match.Hit(conn.LocalAddr().String(), conn.RemoteAddr().String()) {
			conn.Abort()
			c.mu.Lock()
			c.stats.FlowsCut++
			c.mu.Unlock()
			return
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.conns) >= 64 && len(c.conns)%64 == 0 {
		live := c.conns[:0]
		for _, cn := range c.conns {
			if !cn.Closed() {
				live = append(live, cn)
			}
		}
		for i := len(live); i < len(c.conns); i++ {
			c.conns[i] = nil
		}
		c.conns = live
	}
	c.conns = append(c.conns, conn)
}

// FilterSegment implements netem.Policy: it applies every active
// matching rule to the segment — reset first, then throttling, fixed
// delay, jitter and loss penalties accumulated into one verdict.
func (c *Censor) FilterSegment(f netem.Flow, n int) netem.Verdict {
	now := c.clock.Now()
	var v netem.Verdict
	for i, ev := range c.sc.Events {
		r := &c.sc.Events[i].Rule
		if !ev.active(now) || !r.Match.Hit(f.Src, f.Dst) {
			continue
		}
		if r.Block {
			// Backstop for any matched flow still alive inside a block
			// window: the censor RSTs its traffic on sight.
			c.mu.Lock()
			c.stats.Resets++
			c.mu.Unlock()
			return netem.Verdict{Action: netem.Reset}
		}
		if r.ResetProb > 0 {
			c.mu.Lock()
			hit := c.rng.Float64() < r.ResetProb
			if hit {
				c.stats.Resets++
			}
			c.mu.Unlock()
			if hit {
				return netem.Verdict{Action: netem.Reset}
			}
		}
		if sh := c.shapers[i]; sh != nil && v.Shaper == nil {
			v.Shaper = sh
			c.mu.Lock()
			c.stats.ThrottledSegments++
			c.mu.Unlock()
		}
		v.Extra += r.ExtraDelay
		if r.Jitter > 0 {
			c.mu.Lock()
			v.Extra += time.Duration(c.rng.Int63n(int64(r.Jitter)))
			c.mu.Unlock()
		}
		if r.Loss > 0 {
			c.mu.Lock()
			if c.rng.Float64() < r.Loss {
				pen := r.LossPenalty
				if pen <= 0 {
					pen = 250 * time.Millisecond
				}
				v.Extra += pen
				c.stats.LossEvents++
			}
			c.mu.Unlock()
		}
	}
	if v.Extra > 0 || v.Shaper != nil {
		v.Action = netem.Impair
	}
	return v
}
