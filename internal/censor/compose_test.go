package censor

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"ptperf/internal/netem"
)

// TestComposeSplicesEventsAndPhases checks the combinator's contract:
// events concatenate in input order, phases come from the first input
// that has any.
func TestComposeSplicesEventsAndPhases(t *testing.T) {
	throttle, _ := Lookup("throttle-surge")
	lossy, _ := Lookup("lossy-path")
	surge, _ := Lookup("snowflake-surge")

	sc := Compose("combo", "test combo", throttle, surge, lossy)
	if sc.Name != "combo" {
		t.Errorf("name = %q", sc.Name)
	}
	wantEvents := len(throttle.Events) + len(surge.Events) + len(lossy.Events)
	if len(sc.Events) != wantEvents {
		t.Errorf("events = %d, want %d", len(sc.Events), wantEvents)
	}
	if sc.Events[0].Rule.Name != throttle.Events[0].Rule.Name {
		t.Errorf("event order not preserved: first is %q", sc.Events[0].Rule.Name)
	}
	if len(sc.Phases) != len(surge.Phases) {
		t.Errorf("phases = %d, want the surge's %d", len(sc.Phases), len(surge.Phases))
	}
	// A second phase-bearing input must not splice a conflicting pool
	// timeline.
	again := Compose("combo2", "", surge, surge)
	if len(again.Phases) != len(surge.Phases) {
		t.Errorf("double-surge phases = %d, want %d", len(again.Phases), len(surge.Phases))
	}
}

// TestBuiltinScenariosWithinPaperBounds pins the registry to the
// paper-scale envelope: a future scenario with a dial-up throttle or a
// 50% reset rate should fail here, not surprise the fuzzer.
func TestBuiltinScenariosWithinPaperBounds(t *testing.T) {
	b := PaperBounds()
	for _, name := range Names() {
		sc, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := b.Validate(sc); err != nil {
			t.Errorf("built-in scenario %s: %v", name, err)
		}
	}
}

// TestRandomScenarioWithinBounds draws many scenarios and checks every
// one stays inside the paper-scale envelope and reproduces from its
// seed.
func TestRandomScenarioWithinBounds(t *testing.T) {
	b := PaperBounds()
	for seed := int64(0); seed < 200; seed++ {
		sc := RandomScenario(seed, b)
		if err := b.Validate(sc); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		again := RandomScenario(seed, b)
		if len(again.Events) != len(sc.Events) || again.Name != sc.Name {
			t.Fatalf("seed %d not reproducible: %d vs %d events", seed, len(sc.Events), len(again.Events))
		}
		if !reflect.DeepEqual(sc, again) {
			t.Fatalf("seed %d not reproducible:\n%+v\nvs\n%+v", seed, sc, again)
		}
	}
}

// TestRandomScenarioDiversity guards the generator against collapsing:
// across a modest seed range it must produce throttles, loss, resets,
// blocks and composed base scenarios.
func TestRandomScenarioDiversity(t *testing.T) {
	b := PaperBounds()
	var throttles, losses, resets, blocks, phases int
	for seed := int64(0); seed < 300; seed++ {
		sc := RandomScenario(seed, b)
		for _, ev := range sc.Events {
			switch {
			case ev.Rule.RateBps > 0:
				throttles++
			case ev.Rule.Loss > 0:
				losses++
			case ev.Rule.ResetProb > 0:
				resets++
			case ev.Rule.Block:
				blocks++
			}
		}
		if len(sc.Phases) > 0 {
			phases++
		}
	}
	for name, n := range map[string]int{
		"throttle": throttles, "loss": losses, "reset": resets,
		"block": blocks, "phases": phases,
	} {
		if n == 0 {
			t.Errorf("300 seeds produced no %s rules", name)
		}
	}
}

// TestValidateRejectsOutOfBounds checks each bound actually rejects.
func TestValidateRejectsOutOfBounds(t *testing.T) {
	b := PaperBounds()
	cases := []struct {
		label string
		ev    Event
	}{
		{"rate below floor", Event{Rule: Rule{RateBps: 1024}}},
		{"rate above ceiling", Event{Rule: Rule{RateBps: 64 << 20}}},
		{"loss above cap", Event{Rule: Rule{Loss: 0.5}}},
		{"reset above cap", Event{Rule: Rule{ResetProb: 0.2}}},
		{"activation beyond horizon", Event{At: 10 * time.Minute}},
		{"negative duration", Event{Duration: -time.Second}},
		{"jitter above cap", Event{Rule: Rule{Jitter: time.Second}}},
		{"delay above cap", Event{Rule: Rule{ExtraDelay: time.Second}}},
	}
	for _, c := range cases {
		sc := Scenario{Name: "bad", Events: []Event{c.ev}}
		if err := b.Validate(sc); err == nil {
			t.Errorf("%s: validated", c.label)
		}
	}
	if err := b.Validate(Scenario{Name: "bad-phase", Phases: []LoadPhase{{Util: 1.5}}}); err == nil {
		t.Error("phase utilization 1.5 validated")
	}
}

// TestRandomScenarioWindowsOnVirtualClock attaches a generated
// time-windowed rule to a bare network and checks activation follows
// the network's virtual clock, not wall time: before At the rule is
// inert, at At it bites.
func TestRandomScenarioWindowsOnVirtualClock(t *testing.T) {
	// A hand-rolled windowed block keeps the check exact; RandomScenario
	// windows run through the identical Event.active path, which
	// TestRandomScenarioWithinBounds pins to the same envelope.
	sc := Scenario{
		Name: "windowed",
		Events: []Event{{
			At:       5 * time.Second,
			Duration: 5 * time.Second,
			Rule:     Rule{Name: "win", Match: Match{Via: "client"}, Block: true},
		}},
	}
	if err := PaperBounds().Validate(sc); err != nil {
		t.Fatal(err)
	}
	n := netem.New(netem.WithSeed(5))
	client := n.MustAddHost(netem.HostConfig{Name: "client"})
	server := n.MustAddHost(netem.HostConfig{Name: "server"})
	l, err := server.Listen(80)
	if err != nil {
		t.Fatal(err)
	}
	n.Go(func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			c.Close()
		}
	})
	censor := Attach(n, sc, 1, 1)

	if _, err := client.Dial("server:80"); err != nil {
		t.Fatalf("dial before window: %v", err)
	}
	n.Clock().SleepUntil(6 * time.Second)
	if _, err := client.Dial("server:80"); err == nil || !strings.Contains(err.Error(), "blocked") {
		t.Fatalf("dial inside window: err = %v, want blocked", err)
	}
	n.Clock().SleepUntil(11 * time.Second)
	if _, err := client.Dial("server:80"); err != nil {
		t.Fatalf("dial after window: %v", err)
	}
	if st := censor.Stats(); st.BlockedDials != 1 {
		t.Errorf("blocked dials = %d, want 1", st.BlockedDials)
	}
	l.Close()
}
