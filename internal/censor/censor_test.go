package censor

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"

	"ptperf/internal/geo"
	"ptperf/internal/netem"
)

// testNet builds a two-host network with scenario sc attached.
func testNet(t *testing.T, sc Scenario) (*netem.Network, *Censor, *netem.Host, *netem.Host) {
	t.Helper()
	n := netem.New(netem.WithSeed(7))
	a := n.MustAddHost(netem.HostConfig{Name: "a", Location: geo.London})
	b := n.MustAddHost(netem.HostConfig{Name: "b", Location: geo.Frankfurt})
	c := Attach(n, sc, 7, 1)
	return n, c, a, b
}

// transfer sends size bytes from a to b:80 and returns the virtual time
// at which the last byte arrived at the receiver.
func transfer(t *testing.T, n *netem.Network, a, b *netem.Host, size int) time.Duration {
	t.Helper()
	ln, err := b.Listen(80)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := netem.NewChan[time.Duration](n.Clock(), 1)
	n.Go(func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		got, _ := io.Copy(io.Discard, c)
		if int(got) != size {
			t.Errorf("receiver got %d of %d bytes", got, size)
		}
		done.Send(n.Now())
	})
	c, err := a.Dial("b:80")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := n.Now()
	if _, err := c.Write(bytes.Repeat([]byte{0xCC}, size)); err != nil {
		t.Fatal(err)
	}
	c.(*netem.Conn).CloseWrite()
	at, ok := done.Recv()
	if !ok {
		t.Fatal("receiver never finished")
	}
	return at - start
}

func TestThrottlePrimitiveBoundsRate(t *testing.T) {
	const size = 2 << 20
	n, _, a, b := testNet(t, Scenario{Name: "t0"})
	base := transfer(t, n, a, b, size)

	sc := Scenario{Name: "t1", Events: []Event{{Rule: Rule{
		Name: "throttle", Match: Match{Via: "a"}, RateBps: 1 << 20,
	}}}}
	n2, c2, a2, b2 := testNet(t, sc)
	slow := transfer(t, n2, a2, b2, size)

	if base > time.Second {
		t.Fatalf("baseline transfer unexpectedly slow: %v", base)
	}
	// 2 MB through a 1 MB/s throttle needs ≥ 2 virtual seconds.
	if slow < 1500*time.Millisecond {
		t.Fatalf("throttled transfer too fast: %v (baseline %v)", slow, base)
	}
	if c2.Stats().ThrottledSegments == 0 {
		t.Fatal("throttle applied but no segments counted")
	}
}

func TestLossPrimitiveAddsPenalty(t *testing.T) {
	const size = 64 << 10
	n, _, a, b := testNet(t, Scenario{Name: "l0"})
	base := transfer(t, n, a, b, size)

	sc := Scenario{Name: "l1", Events: []Event{{Rule: Rule{
		Name: "loss", Match: Match{Via: "a"}, Loss: 1, LossPenalty: time.Second,
	}}}}
	n2, c2, a2, b2 := testNet(t, sc)
	slow := transfer(t, n2, a2, b2, size)

	if slow < base+900*time.Millisecond {
		t.Fatalf("loss penalty not charged: base %v, lossy %v", base, slow)
	}
	if c2.Stats().LossEvents == 0 {
		t.Fatal("loss applied but no events counted")
	}
}

func TestResetPrimitiveTearsConnection(t *testing.T) {
	sc := Scenario{Name: "r1", Events: []Event{{Rule: Rule{
		Name: "rst", Match: Match{Hosts: []string{"b"}}, ResetProb: 1,
	}}}}
	n, c, a, b := testNet(t, sc)
	ln, err := b.Listen(80)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	n.Go(func() {
		cn, err := ln.Accept()
		if err != nil {
			return
		}
		io.Copy(io.Discard, cn)
		cn.Close()
	})
	conn, err := a.Dial("b:80")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("hello")); !errors.Is(err, netem.ErrReset) {
		t.Fatalf("want ErrReset, got %v", err)
	}
	if c.Stats().Resets == 0 {
		t.Fatal("reset fired but not counted")
	}
}

func TestBlockWindowRefusesAndCuts(t *testing.T) {
	sc := Scenario{Name: "b1", Events: []Event{{
		At: 5 * time.Second,
		Rule: Rule{
			Name: "block", Match: Match{Via: "a", Hosts: []string{"b"}}, Block: true,
		},
	}}}
	n, c, a, b := testNet(t, sc)
	ln, err := b.Listen(80)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	n.Go(func() {
		for {
			cn, err := ln.Accept()
			if err != nil {
				return
			}
			n.Go(func() {
				io.Copy(io.Discard, cn)
				cn.Close()
			})
		}
	})

	// Before the window: dialing works and the flow stays up.
	conn, err := a.Dial("b:80")
	if err != nil {
		t.Fatalf("pre-window dial failed: %v", err)
	}
	if _, err := conn.Write([]byte("pre")); err != nil {
		t.Fatalf("pre-window write failed: %v", err)
	}

	// Cross the activation: the live flow is cut and new dials refuse.
	n.Clock().SleepUntil(6 * time.Second)
	if _, err := conn.Write(bytes.Repeat([]byte("x"), 4096)); err == nil {
		t.Fatal("write on a cut flow succeeded")
	}
	if _, err := a.Dial("b:80"); !errors.Is(err, ErrBlocked) {
		t.Fatalf("in-window dial: want ErrBlocked, got %v", err)
	}
	st := c.Stats()
	if st.BlockedDials != 1 || st.FlowsCut != 1 {
		t.Fatalf("stats = %+v, want 1 blocked dial and 1 cut flow", st)
	}

	// An unmatched destination is unaffected.
	if _, err := a.Dial("a:81"); err == nil {
		t.Fatal("expected refused (no listener), not blocked")
	} else if errors.Is(err, ErrBlocked) {
		t.Fatal("censor blocked an unmatched endpoint")
	}
}

func TestThrottleWindowEnds(t *testing.T) {
	sc := Scenario{Name: "w1", Events: []Event{{
		At:       0,
		Duration: 2 * time.Second,
		Rule: Rule{
			Name: "burst", Match: Match{Via: "a"}, RateBps: 256 << 10,
		},
	}}}
	n, _, a, b := testNet(t, sc)
	in := transfer(t, n, a, b, 512<<10) // 512 KB at 256 KB/s ≥ 2s
	if in < 1500*time.Millisecond {
		t.Fatalf("in-window transfer not throttled: %v", in)
	}
	n.Clock().SleepUntil(10 * time.Second)
	ln, _ := b.Listen(81)
	defer ln.Close()
	out := transferOn(t, n, a, "b:81", ln, 512<<10)
	if out > time.Second {
		t.Fatalf("post-window transfer still throttled: %v", out)
	}
}

// transferOn is transfer against an explicit listener/address.
func transferOn(t *testing.T, n *netem.Network, a *netem.Host, addr string, ln *netem.Listener, size int) time.Duration {
	t.Helper()
	done := netem.NewChan[time.Duration](n.Clock(), 1)
	n.Go(func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		io.Copy(io.Discard, c)
		done.Send(n.Now())
	})
	c, err := a.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := n.Now()
	if _, err := c.Write(bytes.Repeat([]byte{0xAB}, size)); err != nil {
		t.Fatal(err)
	}
	c.(*netem.Conn).CloseWrite()
	at, ok := done.Recv()
	if !ok {
		t.Fatal("receiver never finished")
	}
	return at - start
}

func TestMatchSemantics(t *testing.T) {
	cases := []struct {
		m        Match
		src, dst string
		want     bool
	}{
		{Match{}, "a:1", "b:2", true},
		{Match{Via: "client"}, "client:40001", "bridge:443", true},
		{Match{Via: "client"}, "bridge:443", "client:40001", true},
		{Match{Via: "client"}, "relay:9001", "bridge:443", false},
		{Match{Via: "client", Hosts: []string{"obfs4-bridge-*"}}, "client:1", "obfs4-bridge-3:443", true},
		{Match{Via: "client", Hosts: []string{"obfs4-bridge-*"}}, "client:1", "meek-bridge-3:443", false},
		{Match{Via: "client", Port: 443}, "client:1", "bridge:443", true},
		{Match{Via: "client", Port: 443}, "client:1", "bridge:80", false},
		{Match{Hosts: []string{"guard-0"}}, "guard-0:9001", "client:5", true},
		{Match{Hosts: []string{"*-bridge-*"}}, "client:1", "obfs4-bridge-3:443", true},
		{Match{Hosts: []string{"*-bridge-*"}}, "client:1", "cdn-front-2:443", false},
		{Match{Hosts: []string{"guard-0"}}, "client:1", "guard-01:9001", false},
	}
	for i, tc := range cases {
		if got := tc.m.Hit(tc.src, tc.dst); got != tc.want {
			t.Errorf("case %d: Hit(%q,%q) = %v, want %v", i, tc.src, tc.dst, got, tc.want)
		}
	}
}

func TestBindLoadPlaysPhases(t *testing.T) {
	sc := Scenario{Name: "p1", Phases: []LoadPhase{
		{At: 0, Label: "calm", Util: 0.1, Lifetime: 300 * time.Second},
		{At: 3 * time.Second, Label: "surge", Util: 0.8, Lifetime: 25 * time.Second},
	}}
	n, c, _, _ := testNet(t, sc)
	var seen []string
	c.BindLoad(func(p LoadPhase) { seen = append(seen, p.Label) })
	if len(seen) != 1 || seen[0] != "calm" {
		t.Fatalf("immediate phase = %v, want [calm]", seen)
	}
	n.Clock().SleepUntil(4 * time.Second)
	if len(seen) != 2 || seen[1] != "surge" {
		t.Fatalf("phases after window = %v, want [calm surge]", seen)
	}
}

func TestSameSeedSameInterference(t *testing.T) {
	run := func() time.Duration {
		sc, err := Lookup("lossy-path")
		if err != nil {
			t.Fatal(err)
		}
		n := netem.New(netem.WithSeed(9))
		a := n.MustAddHost(netem.HostConfig{Name: "client", Location: geo.Toronto})
		b := n.MustAddHost(netem.HostConfig{Name: "b", Location: geo.NewYork})
		Attach(n, sc, 9, 1)
		return transfer(t, n, a, b, 256<<10)
	}
	if x, y := run(), run(); x != y {
		t.Fatalf("same seed, different transfer times: %v vs %v", x, y)
	}
}

func TestRegistryBuiltins(t *testing.T) {
	for _, name := range []string{"clean", "throttle-surge", "lossy-path", "bridge-block", "snowflake-surge"} {
		if _, err := Lookup(name); err != nil {
			t.Errorf("builtin %q missing: %v", name, err)
		}
	}
	if _, err := Lookup("no-such-scenario"); err == nil {
		t.Error("unknown scenario lookup succeeded")
	}
	sf, _ := Lookup("snowflake-surge")
	if len(sf.Phases) != len(SurgePhases) {
		t.Errorf("snowflake-surge has %d phases, want %d", len(sf.Phases), len(SurgePhases))
	}
}
