package censor

import (
	"fmt"
	"math/rand"
	"time"
)

// This file provides the scenario combinators the simulation-torture
// suite (internal/simtest) builds randomized worlds from: Compose
// splices existing scenarios into one timeline, RandomScenario draws a
// fresh composed scenario from a seeded stream, and Bounds states the
// paper-scale envelope every generated rule must stay inside — so a
// fuzzed world is adversarial but never physically implausible (a
// throttle below dial-up, a 90% reset rate) in a way the paper's
// campaigns could not encounter.

// Compose splices scenarios into one named timeline: the events of every
// input concatenate in order, and the phases come from the first input
// that has any (two endpoint-weather timelines cannot drive one proxy
// pool, so later phase sets are ignored).
func Compose(name, description string, scs ...Scenario) Scenario {
	out := Scenario{Name: name, Description: description}
	for _, sc := range scs {
		out.Events = append(out.Events, sc.Events...)
		if len(out.Phases) == 0 {
			out.Phases = append(out.Phases, sc.Phases...)
		}
	}
	return out
}

// Bounds is the envelope generated rules must stay inside. The zero
// value is invalid; use PaperBounds.
type Bounds struct {
	// RateBps bounds throttle capacities [min, max] (paper-scale bytes
	// per virtual second, before ByteScale).
	RateBps [2]float64
	// MaxExtraDelay bounds fixed added latency per rule.
	MaxExtraDelay time.Duration
	// MaxJitter bounds per-segment random extra latency.
	MaxJitter time.Duration
	// MaxLoss bounds added per-segment loss probability.
	MaxLoss float64
	// MaxResetProb bounds injected-RST probability.
	MaxResetProb float64
	// MaxAt bounds rule activation instants.
	MaxAt time.Duration
	// MaxDuration bounds finite rule windows (0 windows — "rest of the
	// run" — are always allowed).
	MaxDuration time.Duration
	// MaxEvents bounds a scenario's total rule count.
	MaxEvents int
}

// PaperBounds returns the envelope of the paper's measurement
// conditions: throttles between dial-up-like 256 KB/s and the 8 MB/s
// where they stop binding, loss under 8%, resets under 3% (GFW-style
// injection observed in the wild stays in low single digits), and
// windows inside the first simulated minute — the horizon the built-in
// scenarios use.
func PaperBounds() Bounds {
	return Bounds{
		RateBps:       [2]float64{256 << 10, 8 << 20},
		MaxExtraDelay: 200 * time.Millisecond,
		MaxJitter:     100 * time.Millisecond,
		MaxLoss:       0.08,
		MaxResetProb:  0.03,
		MaxAt:         60 * time.Second,
		MaxDuration:   60 * time.Second,
		MaxEvents:     12,
	}
}

// Validate checks every event of a scenario against the bounds. The
// built-in registry scenarios satisfy PaperBounds, and RandomScenario
// only emits scenarios that do; the fuzzer's invariant suite re-checks
// both claims on every generated world.
func (b Bounds) Validate(sc Scenario) error {
	if b.MaxEvents > 0 && len(sc.Events) > b.MaxEvents {
		return fmt.Errorf("censor: scenario %q has %d events, bound is %d", sc.Name, len(sc.Events), b.MaxEvents)
	}
	for i, ev := range sc.Events {
		r := ev.Rule
		where := fmt.Sprintf("censor: scenario %q event %d (%s)", sc.Name, i, r.Name)
		if ev.At < 0 || ev.At > b.MaxAt {
			return fmt.Errorf("%s: activation %v outside [0, %v]", where, ev.At, b.MaxAt)
		}
		if ev.Duration < 0 || ev.Duration > b.MaxDuration {
			return fmt.Errorf("%s: duration %v outside [0, %v]", where, ev.Duration, b.MaxDuration)
		}
		if r.RateBps != 0 && (r.RateBps < b.RateBps[0] || r.RateBps > b.RateBps[1]) {
			return fmt.Errorf("%s: rate %.0f B/s outside [%.0f, %.0f]", where, r.RateBps, b.RateBps[0], b.RateBps[1])
		}
		if r.ExtraDelay < 0 || r.ExtraDelay > b.MaxExtraDelay {
			return fmt.Errorf("%s: extra delay %v outside [0, %v]", where, r.ExtraDelay, b.MaxExtraDelay)
		}
		if r.Jitter < 0 || r.Jitter > b.MaxJitter {
			return fmt.Errorf("%s: jitter %v outside [0, %v]", where, r.Jitter, b.MaxJitter)
		}
		if r.Loss < 0 || r.Loss > b.MaxLoss {
			return fmt.Errorf("%s: loss %.3f outside [0, %.3f]", where, r.Loss, b.MaxLoss)
		}
		if r.ResetProb < 0 || r.ResetProb > b.MaxResetProb {
			return fmt.Errorf("%s: reset prob %.3f outside [0, %.3f]", where, r.ResetProb, b.MaxResetProb)
		}
	}
	for i, ph := range sc.Phases {
		if ph.At < 0 {
			return fmt.Errorf("censor: scenario %q phase %d (%s): negative activation %v", sc.Name, i, ph.Label, ph.At)
		}
		if ph.Util < 0 || ph.Util > 1 {
			return fmt.Errorf("censor: scenario %q phase %d (%s): utilization %.3f outside [0, 1]", sc.Name, i, ph.Label, ph.Util)
		}
	}
	return nil
}

// randomBaseNames are the registry scenarios RandomScenario may splice
// in. The list is fixed (not read from the registry) so a generated
// scenario depends only on its seed, never on what other packages have
// registered in the process.
var randomBaseNames = []string{
	"clean", "throttle-surge", "lossy-path", "bridge-block",
	"snowflake-surge", "rst-injection", "evening-congestion",
	"origin-throttle",
}

// randomHostPatterns are the endpoint globs random rules aim at: the
// client's whole access link, the web origin, PT bridge and server
// fleets, snowflake volunteers, or the volunteer guard fleet.
var randomHostPatterns = [][]string{
	nil,
	{"origin*"},
	{"*-bridge-*", "*-server-*"},
	{"snowflake-proxy-*"},
	{"guard-*"},
}

// RandomScenario draws a composed scenario from the seeded stream:
// zero to two registry scenarios spliced together plus zero to three
// randomized throttle / loss / delay / RST / block rules, every knob
// uniform inside the bounds. Equal seeds always produce the identical
// scenario; the result always passes b.Validate (composition is capped
// at MaxEvents).
func RandomScenario(seed int64, b Bounds) Scenario {
	rng := rand.New(rand.NewSource(seed))
	sc := Scenario{
		Name:        fmt.Sprintf("random-%x", uint64(seed)),
		Description: "randomized composed scenario (simulation torture)",
	}

	// Splice registered base scenarios.
	for _, k := range rng.Perm(len(randomBaseNames))[:rng.Intn(3)] {
		base, err := Lookup(randomBaseNames[k])
		if err != nil {
			continue
		}
		sc = Compose(sc.Name, sc.Description, sc, base)
	}

	// Add fresh randomized rules.
	dur := func(max time.Duration) time.Duration {
		if max <= 0 {
			return 0
		}
		return time.Duration(rng.Int63n(int64(max) + 1))
	}
	for i, n := 0, rng.Intn(4); i < n; i++ {
		ev := Event{At: dur(b.MaxAt)}
		// Half the windows are finite, half run to the end of the world.
		if rng.Intn(2) == 0 {
			ev.Duration = dur(b.MaxDuration)
		}
		r := Rule{
			Name:  fmt.Sprintf("random-rule-%d", i),
			Match: Match{Via: client, Hosts: randomHostPatterns[rng.Intn(len(randomHostPatterns))]},
		}
		switch rng.Intn(5) {
		case 0:
			r.RateBps = b.RateBps[0] + rng.Float64()*(b.RateBps[1]-b.RateBps[0])
			r.ExtraDelay = dur(b.MaxExtraDelay)
		case 1:
			r.Loss = rng.Float64() * b.MaxLoss
			r.Jitter = dur(b.MaxJitter)
		case 2:
			r.ExtraDelay = dur(b.MaxExtraDelay)
			r.Jitter = dur(b.MaxJitter)
		case 3:
			r.ResetProb = rng.Float64() * b.MaxResetProb
		case 4:
			r.Block = true
		}
		ev.Rule = r
		sc.Events = append(sc.Events, ev)
	}
	if b.MaxEvents > 0 && len(sc.Events) > b.MaxEvents {
		sc.Events = sc.Events[:b.MaxEvents]
	}
	return sc
}
