package censor

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Match selects flows by endpoint. A flow matches when the censor's
// vantage (Via) covers one of its ends and the far end hits the
// Hosts/Port pattern.
type Match struct {
	// Via is the vantage endpoint's host glob — the access link the
	// censor sits on, typically the measured client. "" or "*" puts
	// the censor on every path of the network.
	Via string
	// Hosts are far-endpoint host globs ("obfs4-bridge-*"); empty
	// matches any far endpoint. Only a trailing "*" wildcard is
	// supported.
	Hosts []string
	// Port restricts the far endpoint's port (0 = any).
	Port int
}

// globMatch matches s against a pattern where "*" matches any (possibly
// empty) run of characters; "" and "*" match everything.
func globMatch(pattern, s string) bool {
	if pattern == "" || pattern == "*" {
		return true
	}
	parts := strings.Split(pattern, "*")
	if len(parts) == 1 {
		return pattern == s
	}
	first, last := parts[0], parts[len(parts)-1]
	if len(s) < len(first)+len(last) ||
		!strings.HasPrefix(s, first) || !strings.HasSuffix(s, last) {
		return false
	}
	s = s[len(first) : len(s)-len(last)]
	for _, part := range parts[1 : len(parts)-1] {
		if part == "" {
			continue
		}
		j := strings.Index(s, part)
		if j < 0 {
			return false
		}
		s = s[j+len(part):]
	}
	return true
}

// splitHostPort splits "host:port" leniently; port is -1 when absent.
func splitHostPort(ep string) (string, int) {
	i := strings.LastIndexByte(ep, ':')
	if i < 0 {
		return ep, -1
	}
	port := 0
	for _, c := range ep[i+1:] {
		if c < '0' || c > '9' {
			return ep, -1
		}
		port = port*10 + int(c-'0')
	}
	return ep[:i], port
}

// farMatch checks the far endpoint against Hosts and Port.
func (m Match) farMatch(host string, port int) bool {
	if m.Port != 0 && port != m.Port {
		return false
	}
	if len(m.Hosts) == 0 {
		return true
	}
	for _, pat := range m.Hosts {
		if globMatch(pat, host) {
			return true
		}
	}
	return false
}

// Hit reports whether a flow from src to dst (both "host:port", or bare
// host names) crosses this match.
func (m Match) Hit(src, dst string) bool {
	sh, _ := splitHostPort(src)
	dh, dp := splitHostPort(dst)
	if m.Via == "" || m.Via == "*" {
		_, sp := splitHostPort(src)
		return m.farMatch(dh, dp) || m.farMatch(sh, sp)
	}
	if globMatch(m.Via, sh) {
		return m.farMatch(dh, dp)
	}
	if globMatch(m.Via, dh) {
		_, sp := splitHostPort(src)
		return m.farMatch(sh, sp)
	}
	return false
}

// Rule is one programmable impairment applied to matched flows. The
// zero value of every knob means "off", so a rule states only the
// interference it adds.
type Rule struct {
	// Name labels the rule in reports.
	Name string
	// Match selects the flows the rule applies to.
	Match Match
	// RateBps throttles matched flows through one shared bottleneck
	// of this capacity (bytes per virtual second, before the world's
	// byte scaling). All matched flows contend for it.
	RateBps float64
	// ExtraDelay is fixed added one-way latency per segment.
	ExtraDelay time.Duration
	// Jitter is the max uniform extra latency drawn per segment.
	Jitter time.Duration
	// Loss is an added per-segment loss-event probability; each event
	// charges LossPenalty (≈ a retransmission timeout).
	Loss float64
	// LossPenalty defaults to 250ms when Loss > 0.
	LossPenalty time.Duration
	// ResetProb is a per-segment probability of an injected RST that
	// tears the connection down mid-flight.
	ResetProb float64
	// Block refuses new matched dials while active and cuts existing
	// matched flows at activation.
	Block bool
}

// Event places a rule on the scenario timeline.
type Event struct {
	// At is the activation instant in virtual time.
	At time.Duration
	// Duration bounds the active window; 0 keeps the rule active for
	// the rest of the run.
	Duration time.Duration
	// Rule is the interference applied while active.
	Rule Rule
}

// active reports whether the event's window covers virtual time now.
func (e Event) active(now time.Duration) bool {
	return now >= e.At && (e.Duration <= 0 || now < e.At+e.Duration)
}

// LoadPhase is one period of endpoint "weather": background utilization
// and mean lifetime of the snowflake volunteer pool. Phases model the
// §5.3 surge timeline, which is interference at the endpoint population
// rather than on the path.
type LoadPhase struct {
	// At is when the phase begins (timeline mode; ignored when the
	// harness steps phases manually).
	At time.Duration
	// Label names the period in reports.
	Label string
	// Util is the background utilization of volunteer proxies.
	Util float64
	// Lifetime is the mean exponential proxy lifetime.
	Lifetime time.Duration
}

// Scenario is a named interference timeline: path events plus endpoint
// load phases.
type Scenario struct {
	// Name is the registry key ("clean", "throttle-surge", ...).
	Name string
	// Description is a one-line summary for listings.
	Description string
	// Events are the path-interference timeline.
	Events []Event
	// Phases are the endpoint-pool weather timeline (snowflake).
	Phases []LoadPhase
}

var (
	regMu    sync.Mutex
	registry = map[string]Scenario{}
)

// Register adds (or replaces) a scenario in the registry.
func Register(s Scenario) {
	if s.Name == "" {
		panic("censor: scenario needs a name")
	}
	regMu.Lock()
	registry[s.Name] = s
	regMu.Unlock()
}

// Lookup returns the named scenario.
func Lookup(name string) (Scenario, error) {
	regMu.Lock()
	s, ok := registry[name]
	regMu.Unlock()
	if !ok {
		return Scenario{}, fmt.Errorf("censor: unknown scenario %q (have %s)", name, strings.Join(Names(), ", "))
	}
	return s, nil
}

// Names lists registered scenarios, sorted.
func Names() []string {
	regMu.Lock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	regMu.Unlock()
	sort.Strings(out)
	return out
}

// client is the measured client's host name in testbed worlds; the
// built-in scenarios place the censor on its access link.
const client = "client"

// SurgePhases is the §5.3 snowflake load timeline: background
// utilization of volunteer proxies and their mean lifetime per period.
// Figures 10 and 12 step through it; the snowflake-surge scenario plays
// it on the virtual clock.
// The At instants compress months into a campaign-sized timeline: the
// surge lands early enough that even a small sweep measures mostly
// post-surge weather, as the paper's post-September campaigns did.
var SurgePhases = []LoadPhase{
	{At: 0, Label: "pre-Sept-2022", Util: 0.1, Lifetime: 300 * time.Second},
	{At: 10 * time.Second, Label: "post-Sept-2022", Util: 0.8, Lifetime: 25 * time.Second},
	{At: 60 * time.Second, Label: "Nov-2022", Util: 0.82, Lifetime: 25 * time.Second},
	{At: 110 * time.Second, Label: "Dec-2022", Util: 0.78, Lifetime: 30 * time.Second},
	{At: 160 * time.Second, Label: "Jan-2023", Util: 0.8, Lifetime: 28 * time.Second},
	{At: 210 * time.Second, Label: "Feb-2023", Util: 0.76, Lifetime: 30 * time.Second},
	{At: 260 * time.Second, Label: "Mar-2023", Util: 0.75, Lifetime: 32 * time.Second},
}

func init() {
	Register(Scenario{
		Name:        "clean",
		Description: "no interference: the baseline every scenario is compared against",
	})
	Register(Scenario{
		Name:        "throttle-surge",
		Description: "client access link throttled to ~1.5 MB/s with congestion delay from t=5s on",
		Events: []Event{{
			At: 5 * time.Second,
			Rule: Rule{
				Name:       "access-throttle",
				Match:      Match{Via: client},
				RateBps:    1.5 * (1 << 20),
				ExtraDelay: 30 * time.Millisecond,
			},
		}},
	})
	Register(Scenario{
		Name:        "lossy-path",
		Description: "adverse path: 3% added loss and 25ms jitter on all client traffic",
		Events: []Event{{
			Rule: Rule{
				Name:        "path-loss",
				Match:       Match{Via: client},
				Loss:        0.03,
				LossPenalty: 250 * time.Millisecond,
				Jitter:      25 * time.Millisecond,
			},
		}},
	})
	Register(Scenario{
		Name: "bridge-block",
		Description: "PT bridges, proxy servers, snowflake volunteers and two guards " +
			"blocked from t=10s; fronted/tunneled rendezvous points stay reachable",
		Events: []Event{{
			At: 10 * time.Second,
			Rule: Rule{
				Name: "endpoint-block",
				Match: Match{
					Via: client,
					Hosts: []string{
						"*-bridge-*", "*-server-*", "snowflake-proxy-*",
						"guard-0", "guard-1",
					},
				},
				Block: true,
			},
		}},
	})
	Register(Scenario{
		Name:        "snowflake-surge",
		Description: "the §5.3 volunteer-pool collapse: utilization and churn follow the Sept-2022 surge timeline",
		Phases:      SurgePhases,
	})
	Register(Scenario{
		Name:        "rst-injection",
		Description: "GFW-style tear-down: 2% per-segment injected RSTs on client flows from t=2s",
		Events: []Event{{
			At: 2 * time.Second,
			Rule: Rule{
				Name:      "rst-inject",
				Match:     Match{Via: client},
				ResetProb: 0.02,
			},
		}},
	})
	Register(Scenario{
		Name: "evening-congestion",
		Description: "two rush-hour windows: the access link drops to ~2 MB/s with 40ms jitter, " +
			"clears, then congests again",
		Events: []Event{
			{
				At:       4 * time.Second,
				Duration: 10 * time.Second,
				Rule: Rule{
					Name:    "rush-1",
					Match:   Match{Via: client},
					RateBps: 2 * (1 << 20),
					Jitter:  40 * time.Millisecond,
				},
			},
			{
				At:       24 * time.Second,
				Duration: 14 * time.Second,
				Rule: Rule{
					Name:    "rush-2",
					Match:   Match{Via: client},
					RateBps: 2 * (1 << 20),
					Jitter:  40 * time.Millisecond,
				},
			},
		},
	})
	Register(Scenario{
		Name: "origin-throttle",
		Description: "destination-side interference: every path to the web origin squeezed " +
			"through one ~3 MB/s bottleneck with 20ms added delay",
		Events: []Event{{
			Rule: Rule{
				Name:       "origin-squeeze",
				Match:      Match{Via: "*", Hosts: []string{"origin*"}},
				RateBps:    3 * (1 << 20),
				ExtraDelay: 20 * time.Millisecond,
			},
		}},
	})
}
