// Package stats implements the statistical machinery the paper uses to
// report results: means and standard deviations, paired Student t-tests
// with exact p-values (Tables 3–10), 95% confidence intervals, empirical
// CDFs (Figures 3b, 6, 8b) and five-number box-plot summaries
// (Figures 2, 3a, 5, 7, 10b, 11, 12).
package stats

import (
	"errors"
	"math"
	"sort"
)

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n-1)
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Median returns the sample median (the 0.5 quantile).
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Quantile returns the q-th quantile (q in [0,1]) with linear
// interpolation between order statistics.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Box is a five-number summary plus mean and SD, the contents of one box
// in the paper's box plots.
type Box struct {
	// N is the sample count.
	N int
	// Min and Max are the extreme observations.
	Min, Max float64
	// Q1, Median, Q3 are the quartiles.
	Q1, Median, Q3 float64
	// Mean and SD summarize the distribution's moments.
	Mean, SD float64
}

// Summarize computes a Box for the sample.
func Summarize(xs []float64) Box {
	if len(xs) == 0 {
		return Box{}
	}
	return Box{
		N:      len(xs),
		Min:    Quantile(xs, 0),
		Q1:     Quantile(xs, 0.25),
		Median: Quantile(xs, 0.5),
		Q3:     Quantile(xs, 0.75),
		Max:    Quantile(xs, 1),
		Mean:   Mean(xs),
		SD:     StdDev(xs),
	}
}

// ECDF is an empirical cumulative distribution function.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF over the sample.
func NewECDF(xs []float64) *ECDF {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return &ECDF{sorted: s}
}

// At returns P(X ≤ x).
func (e *ECDF) At(x float64) float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(e.sorted, x)
	for i < len(e.sorted) && e.sorted[i] <= x {
		i++
	}
	return float64(i) / float64(len(e.sorted))
}

// InverseAt returns the smallest x with P(X ≤ x) ≥ p.
func (e *ECDF) InverseAt(p float64) float64 {
	if len(e.sorted) == 0 {
		return math.NaN()
	}
	idx := int(math.Ceil(p*float64(len(e.sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(e.sorted) {
		idx = len(e.sorted) - 1
	}
	return e.sorted[idx]
}

// Points renders the ECDF as (x, P(X≤x)) steps, for report plotting.
func (e *ECDF) Points() ([]float64, []float64) {
	xs := append([]float64(nil), e.sorted...)
	ps := make([]float64, len(xs))
	for i := range xs {
		ps[i] = float64(i+1) / float64(len(xs))
	}
	return xs, ps
}

// TTestResult reports a paired t-test the way the paper's tables do.
type TTestResult struct {
	// N is the number of pairs.
	N int
	// MeanDiff is mean(x−y).
	MeanDiff float64
	// T is the t statistic.
	T float64
	// P is the two-sided p-value.
	P float64
	// CILower and CIUpper bound the 95% confidence interval of the mean
	// difference.
	CILower, CIUpper float64
	// DF is the degrees of freedom.
	DF int
}

// Significant reports whether P < 0.05, the paper's threshold.
func (r TTestResult) Significant() bool { return r.P < 0.05 }

// ErrTooFewPairs is returned when fewer than two pairs are supplied.
var ErrTooFewPairs = errors.New("stats: paired t-test needs at least 2 pairs")

// PairedT runs a paired Student t-test on equal-length samples.
func PairedT(x, y []float64) (TTestResult, error) {
	if len(x) != len(y) {
		return TTestResult{}, errors.New("stats: paired samples must have equal length")
	}
	n := len(x)
	if n < 2 {
		return TTestResult{}, ErrTooFewPairs
	}
	d := make([]float64, n)
	for i := range x {
		d[i] = x[i] - y[i]
	}
	mean := Mean(d)
	sd := StdDev(d)
	df := n - 1
	res := TTestResult{N: n, MeanDiff: mean, DF: df}
	if sd == 0 {
		// Degenerate: identical differences.
		if mean == 0 {
			res.P = 1
		} else {
			res.T = math.Inf(sign(mean))
			res.P = 0
		}
		res.CILower, res.CIUpper = mean, mean
		return res, nil
	}
	se := sd / math.Sqrt(float64(n))
	res.T = mean / se
	res.P = 2 * (1 - TCDF(math.Abs(res.T), float64(df)))
	tcrit := TQuantile(0.975, float64(df))
	res.CILower = mean - tcrit*se
	res.CIUpper = mean + tcrit*se
	return res, nil
}

func sign(x float64) int {
	if x < 0 {
		return -1
	}
	return 1
}

// TCDF returns P(T ≤ t) for Student's t with ν degrees of freedom.
func TCDF(t, nu float64) float64 {
	if math.IsInf(t, 1) {
		return 1
	}
	if math.IsInf(t, -1) {
		return 0
	}
	x := nu / (nu + t*t)
	ib := RegIncBeta(nu/2, 0.5, x)
	if t >= 0 {
		return 1 - 0.5*ib
	}
	return 0.5 * ib
}

// TQuantile returns the p-th quantile of Student's t with ν degrees of
// freedom, by bisection on TCDF.
func TQuantile(p, nu float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	lo, hi := -1e6, 1e6
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if TCDF(mid, nu) < p {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo < 1e-10 {
			break
		}
	}
	return (lo + hi) / 2
}

// RegIncBeta computes the regularized incomplete beta function I_x(a,b)
// via the continued-fraction expansion (Numerical Recipes §6.4, modified
// Lentz's method).
func RegIncBeta(a, b, x float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	lbeta, _ := math.Lgamma(a + b)
	la, _ := math.Lgamma(a)
	lb, _ := math.Lgamma(b)
	front := math.Exp(lbeta - la - lb + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

// betaCF evaluates the continued fraction for RegIncBeta.
func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-14
		fpmin   = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		m2 := float64(2 * m)
		aa := float64(m) * (b - float64(m)) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + float64(m)) * (qab + float64(m)) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// AbsDiffs returns |x[i]−y[i]| pairs, the quantity of Figure 3b.
func AbsDiffs(x, y []float64) []float64 {
	n := len(x)
	if len(y) < n {
		n = len(y)
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = math.Abs(x[i] - y[i])
	}
	return out
}
