package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); !approx(m, 5, 1e-12) {
		t.Fatalf("mean = %v", m)
	}
	if v := Variance(xs); !approx(v, 32.0/7, 1e-12) {
		t.Fatalf("variance = %v", v)
	}
	if Mean(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Fatal("degenerate cases")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := map[float64]float64{0: 1, 0.25: 2, 0.5: 3, 0.75: 4, 1: 5}
	for q, want := range cases {
		if got := Quantile(xs, q); !approx(got, want, 1e-12) {
			t.Fatalf("q=%v got %v want %v", q, got, want)
		}
	}
	if got := Quantile([]float64{1, 2}, 0.5); !approx(got, 1.5, 1e-12) {
		t.Fatalf("interpolation: %v", got)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("empty quantile should be NaN")
	}
}

func TestSummarizeOrdering(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, math.Mod(x, 1e6))
			}
		}
		if len(xs) == 0 {
			return true
		}
		b := Summarize(xs)
		return b.Min <= b.Q1 && b.Q1 <= b.Median && b.Median <= b.Q3 && b.Q3 <= b.Max &&
			b.Mean >= b.Min && b.Mean <= b.Max && b.N == len(xs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestECDFMonotoneAndBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = rng.NormFloat64() * 10
	}
	e := NewECDF(xs)
	prev := 0.0
	for x := -40.0; x <= 40; x += 0.5 {
		p := e.At(x)
		if p < prev || p < 0 || p > 1 {
			t.Fatalf("ECDF not monotone at %v: %v < %v", x, p, prev)
		}
		prev = p
	}
	if e.At(math.Inf(1)) != 1 || e.At(math.Inf(-1)) != 0 {
		t.Fatal("ECDF bounds")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if e.At(sorted[len(sorted)-1]) != 1 {
		t.Fatal("ECDF at max must be 1")
	}
}

func TestECDFInverse(t *testing.T) {
	e := NewECDF([]float64{1, 2, 3, 4})
	if got := e.InverseAt(0.5); got != 2 {
		t.Fatalf("inverse(0.5) = %v", got)
	}
	if got := e.InverseAt(1); got != 4 {
		t.Fatalf("inverse(1) = %v", got)
	}
	xs, ps := e.Points()
	if len(xs) != 4 || ps[3] != 1 {
		t.Fatal("points broken")
	}
}

func TestRegIncBetaKnownValues(t *testing.T) {
	// I_x(1,1) = x.
	for _, x := range []float64{0, 0.25, 0.5, 0.75, 1} {
		if got := RegIncBeta(1, 1, x); !approx(got, x, 1e-10) {
			t.Fatalf("I_%v(1,1) = %v", x, got)
		}
	}
	// I_x(2,2) = x²(3−2x).
	for _, x := range []float64{0.1, 0.3, 0.7, 0.9} {
		want := x * x * (3 - 2*x)
		if got := RegIncBeta(2, 2, x); !approx(got, want, 1e-10) {
			t.Fatalf("I_%v(2,2) = %v want %v", x, got, want)
		}
	}
}

func TestTCDFKnownValues(t *testing.T) {
	// With ν=1 (Cauchy): CDF(1) = 0.75, CDF(0) = 0.5.
	if got := TCDF(0, 5); !approx(got, 0.5, 1e-12) {
		t.Fatalf("TCDF(0) = %v", got)
	}
	if got := TCDF(1, 1); !approx(got, 0.75, 1e-8) {
		t.Fatalf("TCDF(1;1) = %v", got)
	}
	// Large ν approaches the normal: CDF(1.96; 1e6) ≈ 0.975.
	if got := TCDF(1.96, 1e6); !approx(got, 0.975, 1e-3) {
		t.Fatalf("TCDF(1.96;1e6) = %v", got)
	}
	// Symmetry.
	for _, tv := range []float64{0.3, 1.1, 2.7} {
		if got := TCDF(tv, 7) + TCDF(-tv, 7); !approx(got, 1, 1e-10) {
			t.Fatalf("symmetry broken at %v: %v", tv, got)
		}
	}
}

func TestTQuantileInvertsTCDF(t *testing.T) {
	for _, nu := range []float64{2, 5, 30, 200} {
		for _, p := range []float64{0.05, 0.5, 0.9, 0.975} {
			q := TQuantile(p, nu)
			if got := TCDF(q, nu); !approx(got, p, 1e-6) {
				t.Fatalf("ν=%v p=%v: TCDF(TQuantile)=%v", nu, p, got)
			}
		}
	}
	// Classic table value: t_{0.975, 10} ≈ 2.228.
	if q := TQuantile(0.975, 10); !approx(q, 2.228, 0.002) {
		t.Fatalf("t_{0.975,10} = %v", q)
	}
}

func TestPairedTIdenticalSamples(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	res, err := PairedT(x, x)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanDiff != 0 || res.P != 1 {
		t.Fatalf("res = %+v", res)
	}
}

func TestPairedTDetectsShift(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 100
	x := make([]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		base := rng.NormFloat64()
		x[i] = base + 1.0 // constant shift of +1
		y[i] = base + rng.NormFloat64()*0.1
	}
	res, err := PairedT(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Significant() {
		t.Fatalf("shift not detected: %+v", res)
	}
	if res.MeanDiff < 0.8 || res.MeanDiff > 1.2 {
		t.Fatalf("mean diff %v", res.MeanDiff)
	}
	if res.CILower > 1 || res.CIUpper < 1 {
		t.Fatalf("CI [%v,%v] should cover 1", res.CILower, res.CIUpper)
	}
	if res.T < 0 {
		t.Fatal("t should be positive for x>y")
	}
}

func TestPairedTNoEffect(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	rejections := 0
	const trials = 200
	for trial := 0; trial < trials; trial++ {
		n := 30
		x := make([]float64, n)
		y := make([]float64, n)
		for i := 0; i < n; i++ {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
		}
		res, err := PairedT(x, y)
		if err != nil {
			t.Fatal(err)
		}
		if res.Significant() {
			rejections++
		}
	}
	// Under H0 the rejection rate should be about 5%.
	if rejections > trials/5 {
		t.Fatalf("false-positive rate too high: %d/%d", rejections, trials)
	}
}

func TestPairedTAntisymmetry(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20
		x := make([]float64, n)
		y := make([]float64, n)
		for i := 0; i < n; i++ {
			x[i] = rng.Float64() * 10
			y[i] = rng.Float64() * 10
		}
		a, err1 := PairedT(x, y)
		b, err2 := PairedT(y, x)
		if err1 != nil || err2 != nil {
			return false
		}
		return approx(a.MeanDiff, -b.MeanDiff, 1e-9) &&
			approx(a.T, -b.T, 1e-9) &&
			approx(a.P, b.P, 1e-9) &&
			approx(a.CILower, -b.CIUpper, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPairedTErrors(t *testing.T) {
	if _, err := PairedT([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch should fail")
	}
	if _, err := PairedT([]float64{1}, []float64{2}); err != ErrTooFewPairs {
		t.Fatalf("want ErrTooFewPairs, got %v", err)
	}
}

func TestAbsDiffs(t *testing.T) {
	got := AbsDiffs([]float64{1, 5, 2}, []float64{4, 3, 2})
	want := []float64{3, 2, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v", got)
		}
	}
}

func TestCIAlwaysContainsMeanDiff(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(40)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()*5 + 2
			y[i] = rng.NormFloat64() * 3
		}
		res, err := PairedT(x, y)
		if err != nil {
			return false
		}
		return res.CILower <= res.MeanDiff && res.MeanDiff <= res.CIUpper
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTCDFMonotone(t *testing.T) {
	for _, nu := range []float64{1, 3, 10, 100} {
		prev := -1.0
		for tv := -8.0; tv <= 8.0; tv += 0.25 {
			p := TCDF(tv, nu)
			if p < prev || p < 0 || p > 1 {
				t.Fatalf("TCDF not monotone at t=%v ν=%v: %v < %v", tv, nu, p, prev)
			}
			prev = p
		}
	}
}

func TestPairedTPValueInUnitInterval(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(20)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.Float64() * 100
			y[i] = rng.Float64() * 100
		}
		res, err := PairedT(x, y)
		if err != nil {
			return false
		}
		return res.P >= 0 && res.P <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSummarizeSingleton(t *testing.T) {
	b := Summarize([]float64{7})
	if b.Min != 7 || b.Max != 7 || b.Median != 7 || b.Mean != 7 || b.N != 1 || b.SD != 0 {
		t.Fatalf("singleton summary: %+v", b)
	}
}
