package sim

// Seed streams. Every world task derives its world seed from the
// campaign seed plus a stream path via DeriveSeed. The old additive
// derivation (Seed + extraSeed) collided trivially: campaign seed 1 at
// stream 1000 produced the same world as campaign seed 1001 at stream
// 0, so neighbouring campaign seeds silently shared worlds across
// experiments. splitmix64's finalizer decorrelates every (seed, path)
// pair instead.

// splitmix64Gamma is the Weyl-sequence increment of splitmix64.
const splitmix64Gamma = 0x9e3779b97f4a7c15

// mix64 is the splitmix64 output finalizer: a bijective avalanche over
// 64 bits, so distinct inputs never collide and near-equal inputs
// produce uncorrelated outputs.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// DeriveSeed derives the seed of one task stream from a root seed and a
// stream path (experiment id, cell index, repeat, ...). Equal
// (root, path) pairs always derive the same seed; any change to the
// root or any path element yields an independent stream. The result is
// never 0, so it survives "0 means default" seed plumbing.
func DeriveSeed(root int64, path ...int64) int64 {
	x := mix64(uint64(root) + splitmix64Gamma)
	for _, p := range path {
		x = mix64(x + uint64(p)*splitmix64Gamma + splitmix64Gamma)
	}
	if x == 0 {
		x = splitmix64Gamma
	}
	return int64(x)
}
