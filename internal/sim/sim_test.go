package sim

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestSubmitReturnsResults(t *testing.T) {
	e := NewExecutor(4)
	var fs []*Future[int]
	for i := 0; i < 32; i++ {
		i := i
		fs = append(fs, Submit(e, func() (int, error) { return i * i, nil }))
	}
	for i, f := range fs {
		v, err := f.Wait()
		if err != nil || v != i*i {
			t.Fatalf("task %d: got (%d, %v), want (%d, nil)", i, v, err, i*i)
		}
	}
}

func TestJobsBoundIsRespected(t *testing.T) {
	const jobs = 3
	e := NewExecutor(jobs)
	if e.Jobs() != jobs {
		t.Fatalf("Jobs() = %d, want %d", e.Jobs(), jobs)
	}
	var running, peak atomic.Int32
	var fs []*Future[struct{}]
	for i := 0; i < 24; i++ {
		fs = append(fs, Submit(e, func() (struct{}, error) {
			n := running.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			//simlint:allow wallclock -- the sim executor runs on the wall clock by design; this sleep widens the concurrency-peak measurement window.
			time.Sleep(time.Millisecond)
			running.Add(-1)
			return struct{}{}, nil
		}))
	}
	for _, f := range fs {
		if _, err := f.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	if p := peak.Load(); p > jobs {
		t.Fatalf("observed %d concurrent tasks, bound is %d", p, jobs)
	}
}

func TestDefaultJobsIsPositive(t *testing.T) {
	if e := NewExecutor(0); e.Jobs() < 1 {
		t.Fatalf("default executor has %d jobs", e.Jobs())
	}
}

func TestErrorsPropagate(t *testing.T) {
	e := NewExecutor(1)
	boom := errors.New("boom")
	f := Submit(e, func() (int, error) { return 0, boom })
	if err := f.Err(); !errors.Is(err, boom) {
		t.Fatalf("Err() = %v, want %v", err, boom)
	}
}

func TestPanicBecomesError(t *testing.T) {
	e := NewExecutor(1)
	f := Submit(e, func() (int, error) { panic("kaput") })
	if _, err := f.Wait(); err == nil {
		t.Fatal("panicking task returned nil error")
	}
	// The executor slot must have been released.
	if v, err := Submit(e, func() (int, error) { return 7, nil }).Wait(); err != nil || v != 7 {
		t.Fatalf("executor dead after panic: (%d, %v)", v, err)
	}
}

func TestWaitIsRepeatable(t *testing.T) {
	e := NewExecutor(2)
	f := Submit(e, func() (string, error) { return "x", nil })
	for i := 0; i < 3; i++ {
		if v, err := f.Wait(); v != "x" || err != nil {
			t.Fatalf("Wait #%d: (%q, %v)", i, v, err)
		}
	}
}

// TestDeriveSeedStreams pins the properties worldOptions relies on:
// stability, sensitivity to root and path, and — unlike the retired
// additive derivation — no collisions between neighbouring campaign
// seeds and experiment streams.
func TestDeriveSeedStreams(t *testing.T) {
	if DeriveSeed(1, 5) != DeriveSeed(1, 5) {
		t.Fatal("DeriveSeed is not stable")
	}
	seen := map[int64][2]int64{}
	for root := int64(1); root <= 64; root++ {
		for stream := int64(0); stream <= 64; stream++ {
			s := DeriveSeed(root, stream)
			if s == 0 {
				t.Fatalf("DeriveSeed(%d, %d) = 0", root, stream)
			}
			if prev, dup := seen[s]; dup {
				t.Fatalf("collision: (%d,%d) and (%d,%d) both derive %d",
					prev[0], prev[1], root, stream, s)
			}
			seen[s] = [2]int64{root, stream}
		}
	}
	// The additive scheme this replaces collided exactly here:
	// 1+1000 == 1001+0.
	if DeriveSeed(1, 1000) == DeriveSeed(1001, 0) {
		t.Fatal("additive-style collision survived the rework")
	}
	if DeriveSeed(3) == DeriveSeed(3, 0) {
		t.Fatal("empty path must differ from path {0}")
	}
}
