package sim

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"
)

// TestMonitorNilSafe requires every method to be a no-op on a nil
// monitor — callers wire progress only when requested.
func TestMonitorNilSafe(t *testing.T) {
	var m *Monitor
	m.Register("a")
	m.Start("a")
	m.Horizon("a", func() time.Duration { return 0 })
	m.Cached("a")
	m.Finish("a", nil)
	if got := m.Line(); got != "" {
		t.Fatalf("nil monitor line = %q", got)
	}
}

// TestMonitorLifecycle walks one campaign's transitions through the
// status line.
func TestMonitorLifecycle(t *testing.T) {
	var out bytes.Buffer
	m := NewMonitor(&out)
	m.Register("fig4")
	m.Register("fig7:lon")
	m.Register("fig7:tor")

	if got := m.Line(); got != "[cells] 0/3 done, 3 queued" {
		t.Fatalf("queued line = %q", got)
	}

	m.Start("fig4")
	m.Horizon("fig4", func() time.Duration { return 90 * time.Second })
	if got := m.Line(); got != "[cells] 0/3 done, 1 running: fig4@1m30s, 2 queued" {
		t.Fatalf("running line = %q", got)
	}

	m.Start("fig7:lon")
	m.Cached("fig7:lon")
	m.Finish("fig7:lon", nil)
	m.Finish("fig4", nil)
	m.Start("fig7:tor")
	m.Finish("fig7:tor", errors.New("boom"))
	if got := m.Line(); got != "[cells] 3/3 done (1 cached) (1 failed)" {
		t.Fatalf("final line = %q", got)
	}

	// Every transition printed a line to the writer.
	if lines := strings.Count(out.String(), "\n"); lines != 6 {
		t.Fatalf("printed %d lines, want 6 (one per transition)", lines)
	}
}

// TestMonitorRunningBound caps the named running cells and counts the
// overflow.
func TestMonitorRunningBound(t *testing.T) {
	m := NewMonitor(nil)
	for _, k := range []string{"f", "e", "d", "c", "b", "a"} {
		m.Register(k)
		m.Start(k)
	}
	got := m.Line()
	want := "[cells] 0/6 done, 6 running: a b c d +2 more"
	if got != want {
		t.Fatalf("line = %q, want %q", got, want)
	}
}

// TestMonitorImplicitRegister keeps unregistered keys from being
// silently dropped.
func TestMonitorImplicitRegister(t *testing.T) {
	m := NewMonitor(nil)
	m.Start("ghost")
	m.Finish("ghost", nil)
	if got := m.Line(); got != "[cells] 1/1 done" {
		t.Fatalf("line = %q", got)
	}
}
