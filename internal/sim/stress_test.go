package sim_test

import (
	"fmt"
	"strings"
	"testing"

	"ptperf/internal/fetch"
	"ptperf/internal/sim"
	"ptperf/internal/testbed"
)

// worldSignature builds one full testbed world on its own seed stream,
// drives a small measurement through two transports, and renders every
// virtual-time observation into a string. Any cross-world interference
// — a shared RNG draw, a leaked scheduler wake-up, a reused buffer read
// before overwrite — shifts an arrival time somewhere and changes the
// signature.
func worldSignature(root int64, stream int64) (string, error) {
	w, err := testbed.New(testbed.Options{
		Seed:      sim.DeriveSeed(root, stream),
		ByteScale: 0.06,
		TrancoN:   3,
		CBLN:      3,
	})
	if err != nil {
		return "", err
	}
	var b strings.Builder
	for _, method := range []string{"tor", "obfs4"} {
		d, err := w.Deployment(method)
		if err != nil {
			return "", err
		}
		if err := d.Preheat(); err != nil {
			return "", fmt.Errorf("%s preheat: %w", method, err)
		}
		c := &fetch.Client{Net: w.Net, Dial: d.Dial}
		for _, site := range w.Tranco.Sites {
			res := c.Get(w.Origin.Addr(), site.Path, false)
			fmt.Fprintf(&b, "%s %s total=%v ttfb=%v bytes=%d\n",
				method, site.Path, res.Total, res.TTFB, res.BytesGot)
		}
		d.FreshCircuit()
	}
	return b.String(), nil
}

// TestConcurrentWorldsMatchSequential is the shard-isolation stress
// test: N independent worlds driven concurrently (each task goroutine
// is its own world's scheduler driver) must report byte-for-byte what
// the same worlds report when run one at a time. Run it with -race to
// also catch cross-world shared mutable state in netem/testbed (the
// waiter and segment pools, package vars).
func TestConcurrentWorldsMatchSequential(t *testing.T) {
	const worlds = 6
	sequential := make([]string, worlds)
	for i := range sequential {
		sig, err := worldSignature(1, int64(i))
		if err != nil {
			t.Fatalf("sequential world %d: %v", i, err)
		}
		sequential[i] = sig
	}
	// Distinct streams must actually produce distinct worlds, or the
	// comparison below proves nothing.
	for i := 1; i < worlds; i++ {
		if sequential[i] == sequential[0] {
			t.Fatalf("worlds 0 and %d have identical signatures; seed streams broken", i)
		}
	}

	e := sim.NewExecutor(worlds) // all in flight at once
	futures := make([]*sim.Future[string], worlds)
	for i := range futures {
		i := i
		futures[i] = sim.Submit(e, func() (string, error) {
			return worldSignature(1, int64(i))
		})
	}
	for i, f := range futures {
		sig, err := f.Wait()
		if err != nil {
			t.Fatalf("concurrent world %d: %v", i, err)
		}
		if sig != sequential[i] {
			t.Errorf("world %d diverged under concurrency:\n--- sequential ---\n%s--- concurrent ---\n%s",
				i, sequential[i], sig)
		}
	}
}
