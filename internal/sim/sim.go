// Package sim is the multi-world shard executor: it runs independent
// simulated worlds — "world tasks" — on real OS parallelism while
// keeping every world deterministic.
//
// The discrete-event scheduler (internal/netem) runs exactly one
// simulation goroutine per world at a time, which is what makes a world
// a pure function of its seed. That single-token discipline is
// per-clock, not global: two worlds share no scheduler state, so a
// campaign decomposed into independent worlds — one per sweep scenario
// cell, per experiment world, per repeat — can run them all
// concurrently without loosening any intra-world ordering. The executor
// bounds how many run at once (normally runtime.GOMAXPROCS(0)) and
// hands each task's result back through a Future.
//
// The determinism contract a task must satisfy:
//
//   - it builds its own netem.Network (the task goroutine becomes that
//     world's driver) and never touches another task's world;
//   - it is a pure function of its inputs — no wall-clock reads, no
//     global mutable state, no writes to shared sinks (report writers,
//     counters) — returning a value instead of emitting output;
//   - its seed comes from DeriveSeed, so neighbouring tasks draw from
//     statistically independent streams.
//
// Under that contract, results are independent of execution order, and
// a caller that joins futures in canonical task order produces
// byte-identical reports at any parallelism. The harness's
// determinism tests (-jobs 1 vs -jobs N) enforce exactly this.
package sim

import (
	"fmt"
	"runtime"
	"runtime/debug"
)

// Executor bounds how many world tasks run concurrently. Tasks beyond
// the bound queue; each admitted task runs on its own OS goroutine,
// unregistered with any virtual clock — the world the task builds
// registers the task goroutine as its driver.
type Executor struct {
	sem chan struct{}
}

// NewExecutor returns an executor running up to jobs world tasks at
// once; jobs < 1 means runtime.GOMAXPROCS(0). jobs == 1 reproduces
// fully sequential execution (and, under the task contract, identical
// results to any other value).
func NewExecutor(jobs int) *Executor {
	if jobs < 1 {
		jobs = runtime.GOMAXPROCS(0)
	}
	return &Executor{sem: make(chan struct{}, jobs)}
}

// Jobs reports the executor's concurrency bound.
func (e *Executor) Jobs() int { return cap(e.sem) }

// Future is the join handle of one submitted world task. Wait may be
// called any number of times from any goroutine.
type Future[T any] struct {
	done chan struct{}
	val  T
	err  error
}

// Wait blocks until the task finishes and returns its result. The
// caller must not hold an executor slot (i.e. must not be inside
// another task of the same executor) or a full executor deadlocks.
func (f *Future[T]) Wait() (T, error) {
	<-f.done
	return f.val, f.err
}

// Err waits for the task and returns only its error.
func (f *Future[T]) Err() error {
	<-f.done
	return f.err
}

// Submit schedules fn as a world task and returns its future
// immediately. fn must follow the package-level task contract. A panic
// on the task goroutine is captured as the future's error (panics on
// simulation goroutines the task spawns still crash the process, as
// they would sequentially).
func Submit[T any](e *Executor, fn func() (T, error)) *Future[T] {
	f := &Future[T]{done: make(chan struct{})}
	go func() {
		defer close(f.done)
		e.sem <- struct{}{}
		defer func() { <-e.sem }()
		defer func() {
			if p := recover(); p != nil {
				f.err = fmt.Errorf("sim: world task panic: %v\n%s", p, debug.Stack())
			}
		}()
		f.val, f.err = fn()
	}()
	return f
}
