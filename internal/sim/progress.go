package sim

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Monitor streams per-cell progress for a campaign's world tasks: how
// many cells are queued, running, done (and of those, answered from
// cache or failed), and each running cell's virtual-time horizon. The
// harness registers every task key and reports transitions; the monitor
// prints one status line per transition to its writer (normally
// stderr), so progress never touches the deterministic report stream.
//
// A nil *Monitor is valid and ignores every call — callers wire the
// monitor only when progress output is wanted.
type Monitor struct {
	mu    sync.Mutex
	out   io.Writer
	order []string
	cells map[string]*cellState
}

type cellState struct {
	state   cellPhase
	cached  bool
	failed  bool
	horizon func() time.Duration
}

type cellPhase int

const (
	cellQueued cellPhase = iota
	cellRunning
	cellDone
)

// NewMonitor returns a monitor writing status lines to out.
func NewMonitor(out io.Writer) *Monitor {
	return &Monitor{out: out, cells: make(map[string]*cellState)}
}

// Register adds a cell in the queued state (idempotent).
func (m *Monitor) Register(key string) {
	if m == nil {
		return
	}
	m.mu.Lock()
	if _, ok := m.cells[key]; !ok {
		m.cells[key] = &cellState{}
		m.order = append(m.order, key)
	}
	m.mu.Unlock()
}

// Start marks a cell running and prints the status line.
func (m *Monitor) Start(key string) {
	m.transition(key, func(c *cellState) { c.state = cellRunning })
}

// Horizon attaches a cell's virtual-clock reader, shown while the cell
// runs. fn is called from the monitor's printing goroutine; clock reads
// must therefore be safe cross-thread (netem's Clock.Now is).
func (m *Monitor) Horizon(key string, fn func() time.Duration) {
	if m == nil {
		return
	}
	m.mu.Lock()
	if c, ok := m.cells[key]; ok {
		c.horizon = fn
	}
	m.mu.Unlock()
}

// Cached marks a cell as answered from the result cache; the following
// Finish counts it under "cached".
func (m *Monitor) Cached(key string) {
	if m == nil {
		return
	}
	m.mu.Lock()
	if c, ok := m.cells[key]; ok {
		c.cached = true
	}
	m.mu.Unlock()
}

// Finish marks a cell done (err != nil counts it failed) and prints the
// status line.
func (m *Monitor) Finish(key string, err error) {
	m.transition(key, func(c *cellState) {
		c.state = cellDone
		c.failed = err != nil
		c.horizon = nil
	})
}

func (m *Monitor) transition(key string, apply func(*cellState)) {
	if m == nil {
		return
	}
	m.mu.Lock()
	c, ok := m.cells[key]
	if !ok {
		// Transitions on unregistered keys register implicitly so the
		// monitor never silently drops a cell.
		c = &cellState{}
		m.cells[key] = c
		m.order = append(m.order, key)
	}
	apply(c)
	line := m.lineLocked()
	out := m.out
	m.mu.Unlock()
	if out != nil {
		fmt.Fprintln(out, line)
	}
}

// Line returns the current status line (for tests and pull-style UIs).
func (m *Monitor) Line() string {
	if m == nil {
		return ""
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lineLocked()
}

// maxShownRunning bounds how many running cells a status line names.
const maxShownRunning = 4

func (m *Monitor) lineLocked() string {
	total := len(m.order)
	var done, cached, failed int
	var running []string
	for _, key := range m.order {
		c := m.cells[key]
		switch c.state {
		case cellDone:
			done++
			if c.cached {
				cached++
			}
			if c.failed {
				failed++
			}
		case cellRunning:
			label := key
			if c.horizon != nil {
				label += "@" + c.horizon().Truncate(time.Second).String()
			}
			running = append(running, label)
		}
	}
	sort.Strings(running)
	var b strings.Builder
	fmt.Fprintf(&b, "[cells] %d/%d done", done, total)
	if cached > 0 {
		fmt.Fprintf(&b, " (%d cached)", cached)
	}
	if failed > 0 {
		fmt.Fprintf(&b, " (%d failed)", failed)
	}
	if n := len(running); n > 0 {
		shown := running
		if len(shown) > maxShownRunning {
			shown = shown[:maxShownRunning]
		}
		fmt.Fprintf(&b, ", %d running: %s", n, strings.Join(shown, " "))
		if n > len(shown) {
			fmt.Fprintf(&b, " +%d more", n-len(shown))
		}
	}
	if queued := total - done - len(running); queued > 0 {
		fmt.Fprintf(&b, ", %d queued", queued)
	}
	return b.String()
}
