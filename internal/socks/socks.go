// Package socks implements the subset of SOCKS5 (RFC 1928) that Tor
// clients expose and PTPerf's fetchers consume: no authentication,
// CONNECT-only, domain-name addressing. It runs over any net.Conn, which
// in this repository means netem virtual connections.
package socks

import (
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
)

// Protocol constants from RFC 1928.
const (
	version5     = 0x05
	authNone     = 0x00
	cmdConnect   = 0x01
	atypDomain   = 0x03
	replyOK      = 0x00
	replyFailure = 0x01
	replyRefused = 0x05
)

// Errors returned by the client handshake.
var (
	// ErrVersion indicates the peer spoke something other than SOCKS5.
	ErrVersion = errors.New("socks: unsupported version")
	// ErrRefused indicates the proxy rejected the CONNECT.
	ErrRefused = errors.New("socks: connection refused by proxy")
)

// ClientHandshake performs the SOCKS5 negotiation for target ("host:port")
// over an established conn to the proxy. On success the conn carries the
// proxied stream.
func ClientHandshake(conn net.Conn, target string) error {
	host, portStr, ok := strings.Cut(target, ":")
	if !ok || host == "" {
		return fmt.Errorf("socks: bad target %q", target)
	}
	port, err := strconv.Atoi(portStr)
	if err != nil || port < 0 || port > 0xffff {
		return fmt.Errorf("socks: bad port in %q", target)
	}
	if len(host) > 255 {
		return fmt.Errorf("socks: hostname too long")
	}

	// Greeting: version 5, one method (no auth).
	if _, err := conn.Write([]byte{version5, 1, authNone}); err != nil {
		return err
	}
	var resp [2]byte
	if _, err := io.ReadFull(conn, resp[:]); err != nil {
		return err
	}
	if resp[0] != version5 {
		return ErrVersion
	}
	if resp[1] != authNone {
		return errors.New("socks: no acceptable auth method")
	}

	// CONNECT request with a domain-name address.
	req := make([]byte, 0, 7+len(host))
	req = append(req, version5, cmdConnect, 0x00, atypDomain, byte(len(host)))
	req = append(req, host...)
	req = append(req, byte(port>>8), byte(port))
	if _, err := conn.Write(req); err != nil {
		return err
	}

	var head [4]byte
	if _, err := io.ReadFull(conn, head[:]); err != nil {
		return err
	}
	if head[0] != version5 {
		return ErrVersion
	}
	if head[1] != replyOK {
		return fmt.Errorf("%w (code %d)", ErrRefused, head[1])
	}
	// Consume the bound address.
	switch head[3] {
	case atypDomain:
		var n [1]byte
		if _, err := io.ReadFull(conn, n[:]); err != nil {
			return err
		}
		if _, err := io.CopyN(io.Discard, conn, int64(n[0])+2); err != nil {
			return err
		}
	case 0x01: // IPv4
		if _, err := io.CopyN(io.Discard, conn, 6); err != nil {
			return err
		}
	case 0x04: // IPv6
		if _, err := io.CopyN(io.Discard, conn, 18); err != nil {
			return err
		}
	default:
		return fmt.Errorf("socks: bad bound address type %d", head[3])
	}
	return nil
}

// Request is a parsed inbound CONNECT.
type Request struct {
	// Target is the requested destination as "host:port".
	Target string
	conn   net.Conn
}

// Grant accepts the CONNECT; the caller then proxies Request.Conn().
func (r *Request) Grant() error {
	return writeReply(r.conn, replyOK)
}

// Deny rejects the CONNECT and closes the conn.
func (r *Request) Deny() error {
	defer r.conn.Close()
	return writeReply(r.conn, replyRefused)
}

// Conn returns the underlying connection carrying the proxied stream.
func (r *Request) Conn() net.Conn { return r.conn }

func writeReply(w io.Writer, code byte) error {
	// Bound address: domain "", port 0.
	_, err := w.Write([]byte{version5, code, 0x00, atypDomain, 0, 0, 0})
	return err
}

// ServerHandshake reads the SOCKS5 negotiation from an inbound conn and
// returns the CONNECT request. The caller must Grant or Deny it.
func ServerHandshake(conn net.Conn) (*Request, error) {
	var head [2]byte
	if _, err := io.ReadFull(conn, head[:]); err != nil {
		return nil, err
	}
	if head[0] != version5 {
		return nil, ErrVersion
	}
	methods := make([]byte, head[1])
	if _, err := io.ReadFull(conn, methods); err != nil {
		return nil, err
	}
	hasNone := false
	for _, m := range methods {
		if m == authNone {
			hasNone = true
		}
	}
	if !hasNone {
		conn.Write([]byte{version5, 0xff})
		return nil, errors.New("socks: client offers no acceptable method")
	}
	if _, err := conn.Write([]byte{version5, authNone}); err != nil {
		return nil, err
	}

	var req [4]byte
	if _, err := io.ReadFull(conn, req[:]); err != nil {
		return nil, err
	}
	if req[0] != version5 {
		return nil, ErrVersion
	}
	if req[1] != cmdConnect {
		// Command not supported; the caller closes the conn.
		return nil, fmt.Errorf("socks: unsupported command %d", req[1])
	}
	var host string
	switch req[3] {
	case atypDomain:
		var n [1]byte
		if _, err := io.ReadFull(conn, n[:]); err != nil {
			return nil, err
		}
		b := make([]byte, n[0])
		if _, err := io.ReadFull(conn, b); err != nil {
			return nil, err
		}
		host = string(b)
	case 0x01:
		var b [4]byte
		if _, err := io.ReadFull(conn, b[:]); err != nil {
			return nil, err
		}
		host = net.IP(b[:]).String()
	default:
		return nil, fmt.Errorf("socks: unsupported address type %d", req[3])
	}
	var pb [2]byte
	if _, err := io.ReadFull(conn, pb[:]); err != nil {
		return nil, err
	}
	port := int(pb[0])<<8 | int(pb[1])
	return &Request{Target: fmt.Sprintf("%s:%d", host, port), conn: conn}, nil
}

// Spawner starts simulation goroutines; *netem.Clock satisfies it. The
// indirection keeps this package free of a netem dependency.
type Spawner interface {
	Go(fn func())
}

// Serve runs a SOCKS5 accept loop on l, invoking handle for each granted
// CONNECT in its own simulation goroutine spawned via sp. handle
// receives the target and the client conn and owns the conn's lifetime.
// Serve returns when l closes.
func Serve(sp Spawner, l net.Listener, handle func(target string, conn net.Conn)) error {
	for {
		c, err := l.Accept()
		if err != nil {
			return err
		}
		conn := c
		sp.Go(func() {
			req, err := ServerHandshake(conn)
			if err != nil {
				conn.Close()
				return
			}
			if err := req.Grant(); err != nil {
				conn.Close()
				return
			}
			handle(req.Target, conn)
		})
	}
}
