package socks

import (
	"bytes"
	"io"
	"net"
	"strings"
	"testing"
	"testing/quick"
)

func pair() (net.Conn, net.Conn) { return net.Pipe() }

func TestHandshakeRoundTrip(t *testing.T) {
	c, s := pair()
	done := make(chan error, 1)
	go func() {
		req, err := ServerHandshake(s)
		if err != nil {
			done <- err
			return
		}
		if req.Target != "example.org:80" {
			t.Errorf("target = %q", req.Target)
		}
		done <- req.Grant()
	}()
	if err := ClientHandshake(c, "example.org:80"); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// The conn now carries the stream transparently.
	go s.Write([]byte("hello"))
	buf := make([]byte, 5)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "hello" {
		t.Fatalf("payload = %q", buf)
	}
}

func TestDeny(t *testing.T) {
	c, s := pair()
	go func() {
		req, err := ServerHandshake(s)
		if err != nil {
			return
		}
		req.Deny()
	}()
	err := ClientHandshake(c, "blocked.example:443")
	if err == nil || !strings.Contains(err.Error(), "refused") {
		t.Fatalf("want refusal, got %v", err)
	}
}

func TestBadTargets(t *testing.T) {
	for _, target := range []string{"", "nohost", "host:notaport", "host:70000", strings.Repeat("x", 300) + ":80"} {
		c, _ := pair()
		if err := ClientHandshake(c, target); err == nil {
			t.Errorf("target %q should fail", target)
		}
		c.Close()
	}
}

func TestServerRejectsWrongVersion(t *testing.T) {
	c, s := pair()
	go c.Write([]byte{0x04, 0x01})
	if _, err := ServerHandshake(s); err != ErrVersion {
		t.Fatalf("want ErrVersion, got %v", err)
	}
}

func TestServerRejectsBind(t *testing.T) {
	c, s := pair()
	defer c.Close()
	defer s.Close()
	go func() {
		c.Write([]byte{0x05, 0x01, 0x00})
		var resp [2]byte
		io.ReadFull(c, resp[:])
		// BIND command header; body may never be consumed.
		c.Write([]byte{0x05, 0x02, 0x00, 0x03})
	}()
	if _, err := ServerHandshake(s); err == nil {
		t.Fatal("BIND should be rejected")
	}
}

func TestHandshakePropertyAnyHostPort(t *testing.T) {
	f := func(hostRaw []byte, port uint16) bool {
		host := sanitizeHost(hostRaw)
		if host == "" {
			return true
		}
		c, s := pair()
		defer c.Close()
		defer s.Close()
		want := host + ":" + itoa(int(port))
		errc := make(chan error, 1)
		gotc := make(chan string, 1)
		go func() {
			req, err := ServerHandshake(s)
			if err != nil {
				errc <- err
				return
			}
			gotc <- req.Target
			errc <- req.Grant()
		}()
		if err := ClientHandshake(c, want); err != nil {
			return false
		}
		if got := <-gotc; got != want {
			return false
		}
		return <-errc == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func sanitizeHost(raw []byte) string {
	var b bytes.Buffer
	for _, c := range raw {
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9', c == '-', c == '.':
			b.WriteByte(c)
		}
		if b.Len() >= 200 {
			break
		}
	}
	return b.String()
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var d []byte
	for n > 0 {
		d = append([]byte{byte('0' + n%10)}, d...)
		n /= 10
	}
	return string(d)
}
