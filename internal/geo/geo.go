// Package geo models the geographic layout of the PTPerf measurement
// campaign: six cities on three continents, the propagation delay between
// them, and the access-medium profiles (wired Ethernet vs. campus WiFi)
// used in Section 4.7 of the paper.
//
// All delays are virtual durations; internal/netem scales them to real
// time with its TimeScale.
package geo

import (
	"fmt"
	"time"
)

// Location is one of the client/server cities used in the paper (Fig. 1).
type Location int

const (
	// NewYork is a North American server location.
	NewYork Location = iota
	// Toronto is a North American client location.
	Toronto
	// London is a European client location.
	London
	// Frankfurt is a European server location.
	Frankfurt
	// Bangalore is an Asian client location.
	Bangalore
	// Singapore is an Asian server location.
	Singapore
	numLocations
)

// Clients and Servers mirror the 3×3 client/server grid of Section 4.5.
var (
	Clients = []Location{Bangalore, London, Toronto}
	Servers = []Location{Singapore, Frankfurt, NewYork}
)

// All lists every modeled location.
var All = []Location{NewYork, Toronto, London, Frankfurt, Bangalore, Singapore}

var names = [...]string{"new-york", "toronto", "london", "frankfurt", "bangalore", "singapore"}

// Short abbreviations as used in the paper's Figure 7.
var shorts = [...]string{"NYC", "TORO", "LON", "FRA", "BLR", "SGP"}

func (l Location) String() string {
	if l < 0 || l >= numLocations {
		return fmt.Sprintf("location(%d)", int(l))
	}
	return names[l]
}

// Short returns the paper's abbreviation for the location (e.g. "BLR").
func (l Location) Short() string {
	if l < 0 || l >= numLocations {
		return "???"
	}
	return shorts[l]
}

// ParseLocation resolves a name or abbreviation to a Location.
func ParseLocation(s string) (Location, error) {
	for i, n := range names {
		if n == s || shorts[i] == s {
			return Location(i), nil
		}
	}
	return 0, fmt.Errorf("geo: unknown location %q", s)
}

// rttMS holds round-trip times in milliseconds between city pairs. The
// values follow typical public inter-datacenter measurements: intra-region
// links are 10–30 ms, transatlantic ~75–90 ms, Europe–Asia ~130–180 ms,
// NA–Asia ~200–230 ms.
var rttMS = [numLocations][numLocations]float64{
	//             NYC  TORO LON  FRA  BLR  SGP
	NewYork:   {2, 12, 75, 85, 210, 230},
	Toronto:   {12, 2, 85, 95, 220, 225},
	London:    {75, 85, 2, 14, 130, 170},
	Frankfurt: {85, 95, 14, 2, 125, 160},
	Bangalore: {210, 220, 130, 125, 2, 35},
	Singapore: {230, 225, 170, 160, 35, 2},
}

// RTT returns the base round-trip time between two locations.
func RTT(a, b Location) time.Duration {
	return time.Duration(rttMS[a][b] * float64(time.Millisecond))
}

// Medium describes the client's access medium (Section 4.7).
type Medium int

const (
	// Wired is the default Ethernet access used for most experiments.
	Wired Medium = iota
	// Wireless is the campus-WiFi access of Section 4.7: a small extra
	// latency, more jitter and a low loss rate, but an uncongested AP.
	Wireless
)

func (m Medium) String() string {
	if m == Wireless {
		return "wireless"
	}
	return "wired"
}

// Profile describes the shaping parameters a medium adds on the client's
// first (access) link.
type Profile struct {
	// ExtraLatency is added one-way on top of the propagation delay.
	ExtraLatency time.Duration
	// Jitter is the maximum random extra delay per segment.
	Jitter time.Duration
	// Loss is the per-segment probability of a loss event. A loss does
	// not drop data in the simulation; it charges the segment one
	// retransmission timeout (modeled as an extra RTT).
	Loss float64
}

// MediumProfile returns the shaping profile for a medium.
func MediumProfile(m Medium) Profile {
	switch m {
	case Wireless:
		return Profile{ExtraLatency: 3 * time.Millisecond, Jitter: 6 * time.Millisecond, Loss: 0.004}
	default:
		return Profile{Jitter: time.Millisecond}
	}
}
