package geo

import (
	"testing"
	"testing/quick"
	"time"
)

func TestRTTSymmetric(t *testing.T) {
	for _, a := range All {
		for _, b := range All {
			if RTT(a, b) != RTT(b, a) {
				t.Fatalf("RTT(%v,%v) asymmetric", a, b)
			}
		}
	}
}

func TestRTTPositiveAndLocalSmall(t *testing.T) {
	for _, a := range All {
		if RTT(a, a) <= 0 || RTT(a, a) > 5*time.Millisecond {
			t.Fatalf("local RTT of %v = %v", a, RTT(a, a))
		}
		for _, b := range All {
			if a != b && RTT(a, b) < 10*time.Millisecond {
				t.Fatalf("inter-city RTT %v-%v too small: %v", a, b, RTT(a, b))
			}
		}
	}
}

func TestIntercontinentalOrdering(t *testing.T) {
	// Asia–NA must exceed intra-Europe.
	if RTT(Bangalore, NewYork) <= RTT(London, Frankfurt) {
		t.Fatal("continental ordering violated")
	}
	if RTT(Toronto, NewYork) >= RTT(Toronto, Singapore) {
		t.Fatal("NA-local should beat NA-Asia")
	}
}

func TestParseLocation(t *testing.T) {
	for _, l := range All {
		got, err := ParseLocation(l.String())
		if err != nil || got != l {
			t.Fatalf("parse %q: %v %v", l.String(), got, err)
		}
		got, err = ParseLocation(l.Short())
		if err != nil || got != l {
			t.Fatalf("parse short %q: %v %v", l.Short(), got, err)
		}
	}
	if _, err := ParseLocation("atlantis"); err == nil {
		t.Fatal("unknown location must fail")
	}
}

func TestStringsTotal(t *testing.T) {
	f := func(raw int8) bool {
		l := Location(raw)
		return l.String() != "" && l.Short() != ""
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMediumProfiles(t *testing.T) {
	wired := MediumProfile(Wired)
	wireless := MediumProfile(Wireless)
	if wireless.Loss <= wired.Loss {
		t.Fatal("wireless must be lossier than wired")
	}
	if wireless.Jitter <= wired.Jitter {
		t.Fatal("wireless must be jitterier than wired")
	}
	if Wired.String() == Wireless.String() {
		t.Fatal("medium strings must differ")
	}
}

func TestClientServerGrid(t *testing.T) {
	if len(Clients) != 3 || len(Servers) != 3 {
		t.Fatal("the paper's 3x3 grid needs 3 client and 3 server cities")
	}
	for _, c := range Clients {
		for _, s := range Servers {
			if c == s {
				t.Fatalf("client and server city overlap: %v", c)
			}
		}
	}
}
