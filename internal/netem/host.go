package netem

import (
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"ptperf/internal/geo"
)

// HostConfig describes a virtual machine attached to the network.
type HostConfig struct {
	// Name is the unique DNS-like name of the host.
	Name string
	// Location places the host in one of the six modeled cities.
	Location geo.Location
	// Medium is the access medium (wired unless stated otherwise).
	Medium geo.Medium
	// UplinkBps / DownlinkBps are link capacities in bytes per virtual
	// second. Zero means a fast default (100 MB/s).
	UplinkBps   float64
	DownlinkBps float64
	// Utilization in [0,1) is the share of link capacity consumed by
	// background traffic (other users of a relay, CDN tenants, …).
	Utilization float64
}

// Host is a named machine on the virtual network.
type Host struct {
	net     *Network
	name    string
	loc     geo.Location
	medium  geo.Medium
	egress  *Bucket
	ingress *Bucket

	mu        sync.Mutex
	listeners map[int]*Listener
	nextPort  int
	down      bool
}

// Name returns the host name.
func (h *Host) Name() string { return h.name }

// Location returns the host's city.
func (h *Host) Location() geo.Location { return h.loc }

// Egress exposes the shared uplink bucket (load scenarios adjust it).
func (h *Host) Egress() *Bucket { return h.egress }

// Ingress exposes the shared downlink bucket.
func (h *Host) Ingress() *Bucket { return h.ingress }

// Network returns the network the host is attached to.
func (h *Host) Network() *Network { return h.net }

// SetLinkDown marks the host's access link administratively down (a
// modeled flap window, distinct from censor policy). While down, new
// dials from or to the host fail immediately with an unreachable error —
// like the no-such-host path, no accounting counters move. Conns already
// established are unaffected; a fault injector that wants them dead
// aborts them explicitly (Network.AbortHostConns).
func (h *Host) SetLinkDown(down bool) {
	h.mu.Lock()
	h.down = down
	h.mu.Unlock()
}

// LinkDown reports whether the host's access link is currently down.
func (h *Host) LinkDown() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.down
}

// Listener accepts virtual connections on one host port.
type Listener struct {
	host *Host
	port int

	mu     sync.Mutex
	queue  *Chan[*Conn]
	closed bool
}

// Listen opens a listener on the given port (0 picks an ephemeral port).
func (h *Host) Listen(port int) (*Listener, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if port == 0 {
		h.nextPort++
		port = 40000 + h.nextPort
	}
	if _, busy := h.listeners[port]; busy {
		return nil, fmt.Errorf("netem: %s port %d already in use", h.name, port)
	}
	l := &Listener{host: h, port: port, queue: NewChan[*Conn](h.net.clock, 128)}
	h.listeners[port] = l
	return l, nil
}

// Accept parks until the next inbound connection arrives.
func (l *Listener) Accept() (net.Conn, error) {
	c, ok := l.queue.Recv()
	if !ok {
		return nil, ErrClosed
	}
	return c, nil
}

// Close stops the listener.
func (l *Listener) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	l.host.mu.Lock()
	delete(l.host.listeners, l.port)
	l.host.mu.Unlock()
	l.queue.Close()
	return nil
}

// Addr returns the listener's address ("host:port").
func (l *Listener) Addr() net.Addr {
	return Addr{host: fmt.Sprintf("%s:%d", l.host.name, l.port)}
}

// deliver hands an inbound conn to the accept queue.
func (l *Listener) deliver(c *Conn) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if !l.queue.TrySend(c) {
		return fmt.Errorf("netem: accept backlog full on %s:%d", l.host.name, l.port)
	}
	return nil
}

// Dial opens a shaped connection from this host to "host:port". It costs
// one round trip (the transport handshake) on the virtual clock.
func (h *Host) Dial(address string) (net.Conn, error) {
	hostName, portStr, ok := strings.Cut(address, ":")
	if !ok {
		return nil, fmt.Errorf("netem: bad address %q", address)
	}
	port, err := strconv.Atoi(portStr)
	if err != nil {
		return nil, fmt.Errorf("netem: bad port in %q", address)
	}
	peer := h.net.host(hostName)
	if peer == nil {
		return nil, fmt.Errorf("netem: no such host %q", hostName)
	}
	// Link-down failures resolve before any accounting, like the
	// no-such-host path: the SYN never makes it onto a pipe.
	if h.LinkDown() {
		return nil, fmt.Errorf("netem: link down on %s", h.name)
	}
	if peer.LinkDown() {
		return nil, fmt.Errorf("netem: host %q unreachable (link down)", hostName)
	}
	peer.mu.Lock()
	l := peer.listeners[port]
	peer.mu.Unlock()
	if l == nil {
		return nil, fmt.Errorf("netem: connection refused: %s", address)
	}

	localAddr := Addr{host: fmt.Sprintf("%s:%d", h.name, h.ephemeral())}
	remoteAddr := Addr{host: address}
	out, in := h.net.shapes(h, peer)
	rtt := out.delay + in.delay
	if pol := h.net.policy.get(); pol != nil {
		if err := pol.FilterDial(h.name, address); err != nil {
			// A censored dial still costs a round trip: the SYN travels
			// to the interception point and the injected refusal (or
			// the black-holed SYN's RST) travels back.
			h.net.acct.addDial(true)
			h.net.clock.Sleep(rtt)
			return nil, err
		}
	}
	h.net.acct.addDial(false)
	seed := h.net.nextSeed()
	cc, sc := newConnPair(h.net, localAddr, remoteAddr, out, in, seed)

	// Deliver the server side after one one-way delay (the SYN), then
	// return to the dialer after the full handshake round trip. The SYN
	// is a pure data-plane event — deliver (TrySend) and Abort never
	// park — so it runs as an inline clock event instead of costing a
	// goroutine spawn per dial.
	clk := h.net.clock
	clk.EventAt(clk.Now()+out.delay, func() {
		if err := l.deliver(sc); err != nil {
			// Abort both endpoints: the server side was never accepted,
			// and leaving it half-open would count as a live flow in
			// the accounting forever.
			sc.Abort()
			cc.Abort()
		}
	})
	h.net.clock.Sleep(rtt)
	if pol := h.net.policy.get(); pol != nil {
		pol.ConnOpened(cc)
	}
	return cc, nil
}

// DialTimeout is Dial bounded by a virtual timeout.
func (h *Host) DialTimeout(address string, vtimeout time.Duration) (net.Conn, error) {
	type res struct {
		c   net.Conn
		err error
	}
	clock := h.net.clock
	ch := NewChan[res](clock, 1)
	clock.Go(func() {
		c, err := h.Dial(address)
		ch.Send(res{c, err})
	})
	r, ok, timedOut := ch.RecvTimeout(vtimeout)
	if timedOut {
		// Reap the late connection when the dial eventually resolves.
		clock.Go(func() {
			if late, ok := ch.Recv(); ok && late.c != nil {
				late.c.Close()
			}
		})
		return nil, ErrTimeout
	}
	if !ok {
		return nil, ErrClosed
	}
	return r.c, r.err
}

func (h *Host) ephemeral() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.nextPort++
	return 40000 + h.nextPort
}
