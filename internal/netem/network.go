package netem

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ptperf/internal/geo"
)

// defaultLinkBps is the link capacity assumed when a HostConfig leaves it
// zero: 100 MB/s, i.e. effectively unconstrained compared to relays.
const defaultLinkBps = 100 << 20

// Network is the virtual internet: a set of hosts plus the shared clock.
type Network struct {
	clock *Clock
	seed  int64

	mu    sync.Mutex
	hosts map[string]*Host

	connSeq atomic.Int64
	policy  policyHolder
	acct    Acct
}

// Option configures a Network.
type Option func(*options)

type options struct {
	scale float64
	seed  int64
}

// WithTimeScale is a compatibility no-op. The retired wall-clock
// implementation slept scale real seconds per virtual second; the
// discrete-event scheduler always runs at CPU speed.
func WithTimeScale(scale float64) Option { return func(o *options) { o.scale = scale } }

// WithSeed sets the base RNG seed for jitter/loss draws.
func WithSeed(seed int64) Option { return func(o *options) { o.seed = seed } }

// New creates an empty network. The calling goroutine is registered as
// the network's driver; see Clock.Go for spawning further simulation
// goroutines.
func New(opts ...Option) *Network {
	o := options{seed: 1}
	for _, f := range opts {
		f(&o)
	}
	return &Network{
		clock: NewClock(o.scale),
		seed:  o.seed,
		hosts: make(map[string]*Host),
	}
}

// Clock returns the shared virtual clock.
func (n *Network) Clock() *Clock { return n.clock }

// Now returns the current virtual time.
func (n *Network) Now() time.Duration { return n.clock.Now() }

// Since returns the virtual time elapsed since a mark from Now.
func (n *Network) Since(mark time.Duration) time.Duration { return n.clock.Now() - mark }

// VirtualDeadline converts a virtual timeout into the time.Time
// encoding (relative to Epoch) usable with net.Conn deadlines.
func (n *Network) VirtualDeadline(v time.Duration) time.Time {
	return n.clock.VirtualDeadline(v)
}

// Go spawns fn as a simulation goroutine on this network's scheduler.
func (n *Network) Go(fn func()) { n.clock.Go(fn) }

// AddHost attaches a host to the network.
func (n *Network) AddHost(cfg HostConfig) (*Host, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("netem: host needs a name")
	}
	up, down := cfg.UplinkBps, cfg.DownlinkBps
	if up <= 0 {
		up = defaultLinkBps
	}
	if down <= 0 {
		down = defaultLinkBps
	}
	h := &Host{
		net:       n,
		name:      cfg.Name,
		loc:       cfg.Location,
		medium:    cfg.Medium,
		egress:    NewBucket(up, cfg.Utilization),
		ingress:   NewBucket(down, cfg.Utilization),
		listeners: make(map[int]*Listener),
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, dup := n.hosts[cfg.Name]; dup {
		return nil, fmt.Errorf("netem: duplicate host %q", cfg.Name)
	}
	n.hosts[cfg.Name] = h
	return h, nil
}

// MustAddHost is AddHost that panics on configuration errors; topology
// construction is programmer-controlled so errors are bugs.
func (n *Network) MustAddHost(cfg HostConfig) *Host {
	h, err := n.AddHost(cfg)
	if err != nil {
		panic(err)
	}
	return h
}

// Host looks up a host by name, or nil.
func (n *Network) Host(name string) *Host { return n.host(name) }

// AbortHostConns aborts every open conn touching the named host; fault
// injection uses it as the blast radius of a crash or link cut.
func (n *Network) AbortHostConns(host string) int {
	return n.acct.AbortHostConns(host)
}

func (n *Network) host(name string) *Host {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.hosts[name]
}

func (n *Network) nextSeed() int64 {
	return n.seed*1e9 + n.connSeq.Add(2)
}

// shapes computes the per-direction shaping for a conn between two hosts:
// propagation is half the city-pair RTT; each endpoint's medium profile
// contributes latency, jitter and loss; loss events are charged one RTT.
func (n *Network) shapes(a, b *Host) (aOut, bOut shape) {
	rtt := geo.RTT(a.loc, b.loc)
	pa := geo.MediumProfile(a.medium)
	pb := geo.MediumProfile(b.medium)
	owd := rtt/2 + pa.ExtraLatency + pb.ExtraLatency
	jitter := pa.Jitter + pb.Jitter
	loss := pa.Loss + pb.Loss
	pen := rtt + 20*time.Millisecond
	aOut = shape{egress: a.egress, ingress: b.ingress, delay: owd, jitter: jitter, loss: loss, lossPen: pen}
	bOut = shape{egress: b.egress, ingress: a.ingress, delay: owd, jitter: jitter, loss: loss, lossPen: pen}
	return aOut, bOut
}
