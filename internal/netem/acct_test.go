package netem

import (
	"io"
	"testing"
)

// TestAcctByteConservation drives a transfer (including an aborted one,
// which drops buffered bytes) and checks the conservation equation the
// simulation-torture suite audits every fuzzed world with.
func TestAcctByteConservation(t *testing.T) {
	n := New(WithSeed(3))
	a := n.MustAddHost(HostConfig{Name: "a"})
	b := n.MustAddHost(HostConfig{Name: "b"})
	l, err := b.Listen(80)
	if err != nil {
		t.Fatal(err)
	}

	const msg = 64 << 10
	n.Go(func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			n.Go(func() {
				// First conn: echo everything. Later conns: read a
				// little, then abort mid-stream to strand buffered
				// bytes on both pipes.
				buf := make([]byte, 4096)
				nr, _ := c.Read(buf)
				c.Write(buf[:nr])
				if _, err := io.ReadFull(c, make([]byte, msg-nr)); err == nil {
					c.Close()
				}
			})
		}
	})

	// A clean round trip.
	c1, err := a.Dial("b:80")
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, msg)
	if _, err := c1.Write(payload); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(c1, make([]byte, 4096)); err != nil {
		t.Fatal(err)
	}
	c1.Close()

	// An aborted transfer: bytes in flight when the dialer aborts must
	// show up as dropped, not vanish.
	c2, err := a.Dial("b:80")
	if err != nil {
		t.Fatal(err)
	}
	c2.Write(payload)
	c2.(*Conn).Abort()

	// Quiesce: let the acceptor goroutines observe the close.
	n.Clock().Sleep(5e9)
	l.Close()
	n.Clock().Sleep(1e9)

	s := n.Acct().Snapshot()
	if err := s.ConservationErr(); err != nil {
		t.Fatalf("conservation: %v (snapshot %+v)", err, s)
	}
	if s.Dials != 2 || s.DialsRefused != 0 {
		t.Errorf("dials = %d (refused %d), want 2 (0)", s.Dials, s.DialsRefused)
	}
	if s.ConnsOpened != 4 {
		t.Errorf("conns opened = %d, want 4 endpoints", s.ConnsOpened)
	}
	if s.BytesSent == 0 || s.BytesDelivered == 0 {
		t.Errorf("no bytes accounted: %+v", s)
	}
	if s.BytesDropped == 0 {
		t.Errorf("aborted transfer should strand dropped bytes: %+v", s)
	}
}

// TestAcctSegmentsFiltered checks that the policy-consultation counter
// bounds every per-segment censor counter: it only moves when a policy
// is installed.
func TestAcctSegmentsFiltered(t *testing.T) {
	n := New(WithSeed(4))
	a := n.MustAddHost(HostConfig{Name: "a"})
	b := n.MustAddHost(HostConfig{Name: "b"})
	l, _ := b.Listen(80)
	n.Go(func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		io.Copy(io.Discard, c)
	})
	c, err := a.Dial("b:80")
	if err != nil {
		t.Fatal(err)
	}
	c.Write(make([]byte, 1024))
	if got := n.Acct().Snapshot().SegmentsFiltered; got != 0 {
		t.Errorf("segments filtered without a policy: %d", got)
	}
	n.SetPolicy(passPolicy{})
	c.Write(make([]byte, 1024))
	if got := n.Acct().Snapshot().SegmentsFiltered; got != 1 {
		t.Errorf("segments filtered = %d, want 1", got)
	}
	c.Close()
}

// TestWriteBudget checks the writable-budget probe: a fresh conn offers
// the full receive window, a backlogged one shrinks toward zero, reads
// reopen it, and a closed conn reports zero.
func TestWriteBudget(t *testing.T) {
	n := New(WithSeed(5))
	a := n.MustAddHost(HostConfig{Name: "a"})
	b := n.MustAddHost(HostConfig{Name: "b"})
	l, _ := b.Listen(80)
	accepted := NewChan[*Conn](n.Clock(), 1)
	n.Go(func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		accepted.Send(c.(*Conn))
	})
	cn, err := a.Dial("b:80")
	if err != nil {
		t.Fatal(err)
	}
	c := cn.(*Conn)
	full := c.WriteBudget()
	if full <= 0 {
		t.Fatalf("fresh conn budget = %d, want > 0", full)
	}

	// Fill the pipe without reading: the budget must shrink by exactly
	// the buffered bytes.
	const chunk = 48 << 10
	if _, err := c.Write(make([]byte, chunk)); err != nil {
		t.Fatal(err)
	}
	if got := c.WriteBudget(); got != full-chunk {
		t.Fatalf("budget after %d buffered = %d, want %d", chunk, got, full-chunk)
	}

	// A write within the probed budget must not park: it returns with
	// virtual time unchanged (pacing is carried by arrival times, not by
	// parking the writer).
	before := n.Clock().Now()
	if _, err := c.Write(make([]byte, full-chunk)); err != nil {
		t.Fatal(err)
	}
	if now := n.Clock().Now(); now != before {
		t.Fatalf("write within budget parked: %v -> %v", before, now)
	}
	if got := c.WriteBudget(); got != 0 {
		t.Fatalf("budget at full window = %d, want 0", got)
	}

	// Draining the peer reopens the budget.
	srv, _ := accepted.Recv()
	if _, err := io.ReadFull(srv, make([]byte, full)); err != nil {
		t.Fatal(err)
	}
	if got := c.WriteBudget(); got != full {
		t.Fatalf("budget after drain = %d, want %d", got, full)
	}

	c.Close()
	if got := c.WriteBudget(); got != 0 {
		t.Fatalf("closed conn budget = %d, want 0", got)
	}
	srv.Close()
	l.Close()
}

// TestCellConservation exercises the relay-cell counters' audit: the
// equation holds only when every queued cell was flushed or dropped.
func TestCellConservation(t *testing.T) {
	var a Acct
	a.AddCellsQueued(5)
	a.AddCellsFlushed(3)
	if err := a.Snapshot().CellConservationErr(); err == nil {
		t.Fatal("2 cells in flight must violate drained-point conservation")
	}
	a.AddCellsDropped(2)
	if err := a.Snapshot().CellConservationErr(); err != nil {
		t.Fatalf("balanced counters rejected: %v", err)
	}
}

type passPolicy struct{}

func (passPolicy) FilterDial(src, dst string) error    { return nil }
func (passPolicy) ConnOpened(*Conn)                    {}
func (passPolicy) FilterSegment(f Flow, n int) Verdict { return Verdict{} }

// TestAcctSnapshotSub pins the delta helper's contract: forward deltas
// are exact with zero regressions, swapped snapshots clamp every
// regressed counter to zero and count each one, and the BytesBuffered
// gauge passes through unclamped and uncounted.
func TestAcctSnapshotSub(t *testing.T) {
	prev := AcctSnapshot{Dials: 2, BytesSent: 100, BytesDelivered: 90, BytesBuffered: 7, CellsQueued: 5}
	cur := AcctSnapshot{Dials: 5, BytesSent: 250, BytesDelivered: 240, BytesBuffered: 3, CellsQueued: 9}

	d, reg := cur.Sub(prev)
	if reg != 0 {
		t.Fatalf("forward Sub counted %d regressions, want 0", reg)
	}
	want := AcctSnapshot{Dials: 3, BytesSent: 150, BytesDelivered: 150, BytesBuffered: 3, CellsQueued: 4}
	if d != want {
		t.Fatalf("forward Sub = %+v, want %+v", d, want)
	}

	// Swapped: the four advanced counters regress and clamp; the gauge
	// (which legitimately moved 3→7 backwards in time) never counts.
	d, reg = prev.Sub(cur)
	if reg != 4 {
		t.Fatalf("swapped Sub counted %d regressions, want 4", reg)
	}
	if d.Dials != 0 || d.BytesSent != 0 || d.BytesDelivered != 0 || d.CellsQueued != 0 {
		t.Fatalf("swapped Sub left a negative-able counter unclamped: %+v", d)
	}
	if d.BytesBuffered != 7 {
		t.Fatalf("swapped Sub gauge = %d, want prev's value 7", d.BytesBuffered)
	}

	// Add is Sub's inverse over a series of interval snapshots.
	sum := prev.Add(want)
	if sum.Dials != cur.Dials || sum.BytesSent != cur.BytesSent || sum.BytesBuffered != cur.BytesBuffered {
		t.Fatalf("prev.Add(delta) = %+v, want cur %+v", sum, cur)
	}
}

// TestAcctSubConcurrentMonotone hammers an Acct from many goroutines
// while a sampler takes successive snapshots and subtracts them: with
// every counter monotone, no pair of ordered snapshots may ever produce
// a clamped (regressed) field — the guarantee the per-interval metric
// timelines rely on.
func TestAcctSubConcurrentMonotone(t *testing.T) {
	var a Acct
	stop := make(chan struct{})
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for {
				select {
				case <-stop:
					return
				default:
				}
				a.addDial(false)
				a.addSent(64)
				a.addDelivered(64)
				a.AddCellsQueued(2)
				a.AddCellsFlushed(1)
				a.AddCellsDropped(1)
			}
		}()
	}

	prev := a.Snapshot()
	var total AcctSnapshot
	for i := 0; i < 200; i++ {
		cur := a.Snapshot()
		d, reg := cur.Sub(prev)
		if reg != 0 {
			t.Fatalf("snapshot %d: Sub of ordered snapshots regressed %d fields (prev=%+v cur=%+v)", i, reg, prev, cur)
		}
		total = total.Add(d)
		prev = cur
	}
	close(stop)
	for g := 0; g < 4; g++ {
		<-done
	}
	// The interval sum reconstructs the last cumulative snapshot.
	if total.BytesSent != prev.BytesSent || total.CellsQueued != prev.CellsQueued || total.Dials != prev.Dials {
		t.Fatalf("interval sum %+v does not reconstruct final snapshot %+v", total, prev)
	}
}
