// Package netem provides the virtual network substrate for the PTPerf
// simulation: named hosts placed in geographic locations, listeners and
// dialers producing net.Conn values whose delivery is shaped by
// propagation latency, token-bucket bandwidth (shared per host, which is
// what models relay load), jitter and loss.
//
// All protocol stacks in this repository (Tor, the twelve pluggable
// transports, the web origin) run unmodified on top of these conns.
//
// Time is virtual: every latency and rate in the simulation is expressed
// in virtual seconds, and the substrate sleeps TimeScale real seconds per
// virtual second. Measurements read the virtual clock, so reported
// durations are comparable to the paper's wall-clock seconds while the
// whole campaign executes quickly.
package netem

import (
	"runtime"
	"sync/atomic"
	"time"
)

// DefaultTimeScale is the default real-seconds-per-virtual-second factor.
// 0.01 runs the simulation 100x faster than real time while keeping the
// smallest shaped delays (a few virtual milliseconds) well above the
// scheduler's sleep granularity.
const DefaultTimeScale = 0.01

// Clock converts between virtual and real time for one Network.
type Clock struct {
	scale   float64 // real seconds per virtual second
	start   time.Time
	monoOff atomic.Int64 // virtual nanoseconds added by AdvanceBy (tests)
}

// NewClock returns a clock running at the given scale. A non-positive
// scale falls back to DefaultTimeScale.
func NewClock(scale float64) *Clock {
	if scale <= 0 {
		scale = DefaultTimeScale
	}
	return &Clock{scale: scale, start: time.Now()}
}

// Scale reports the real-seconds-per-virtual-second factor.
func (c *Clock) Scale() float64 { return c.scale }

// Now returns the current virtual time as an offset from clock start.
func (c *Clock) Now() time.Duration {
	real := time.Since(c.start)
	return time.Duration(float64(real)/c.scale) + time.Duration(c.monoOff.Load())
}

// Sleep pauses the calling goroutine for a virtual duration.
func (c *Clock) Sleep(v time.Duration) {
	if v <= 0 {
		return
	}
	sleepReal(c.real(v))
}

// SleepUntil pauses until the virtual clock reaches vt.
func (c *Clock) SleepUntil(vt time.Duration) {
	for {
		d := vt - c.Now()
		if d <= 0 {
			return
		}
		sleepReal(c.real(d))
	}
}

// spinThreshold is the real duration below which we busy-wait instead of
// calling time.Sleep. The OS sleep granularity (~50–100 µs) would
// otherwise translate into large virtual-time noise at small TimeScales.
const spinThreshold = 150 * time.Microsecond

// sleepReal pauses for a real duration with microsecond-level accuracy:
// coarse time.Sleep for the bulk, then a Gosched spin for the remainder.
func sleepReal(d time.Duration) {
	if d <= 0 {
		return
	}
	deadline := time.Now().Add(d)
	if d > spinThreshold {
		time.Sleep(d - spinThreshold)
	}
	for time.Now().Before(deadline) {
		runtime.Gosched()
	}
}

// AdvanceBy shifts the virtual clock forward without sleeping. It exists
// for tests that want to expire deadlines instantly.
func (c *Clock) AdvanceBy(v time.Duration) {
	c.monoOff.Add(int64(v))
}

// real converts a virtual duration to the real sleeping time.
func (c *Clock) real(v time.Duration) time.Duration {
	r := time.Duration(float64(v) * c.scale)
	if r < time.Microsecond && v > 0 {
		r = time.Microsecond
	}
	return r
}

// Timer returns a channel that fires after a virtual duration. The timer
// is not reusable; it exists for select-based timeouts in protocol code.
func (c *Clock) Timer(v time.Duration) <-chan time.Time {
	return time.After(c.real(v))
}
