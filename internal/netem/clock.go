// Package netem provides the virtual network substrate for the PTPerf
// simulation: named hosts placed in geographic locations, listeners and
// dialers producing net.Conn values whose delivery is shaped by
// propagation latency, token-bucket bandwidth (shared per host, which is
// what models relay load), jitter and loss.
//
// All protocol stacks in this repository (Tor, the twelve pluggable
// transports, the web origin) run unmodified on top of these conns.
//
// Time is virtual and discrete-event: every latency and rate in the
// simulation is expressed in virtual seconds, but no goroutine ever
// sleeps in real time. The Clock keeps a min-heap of pending virtual
// timers and a registry of simulation goroutines; when every registered
// goroutine is parked in a scheduler wait, the clock jumps to the
// earliest timer and wakes its owner. Campaigns therefore execute at CPU
// speed, reported durations carry no OS-scheduler noise, and identical
// seeds produce bit-identical results. See DESIGN.md for the
// architecture and the rules simulation code must follow (spawn via
// Clock.Go, block only in scheduler-aware primitives).
package netem
