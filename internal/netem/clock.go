// Package netem provides the virtual network substrate for the PTPerf
// simulation: named hosts placed in geographic locations, listeners and
// dialers producing net.Conn values whose delivery is shaped by
// propagation latency, token-bucket bandwidth (shared per host, which is
// what models relay load), jitter and loss.
//
// All protocol stacks in this repository (Tor, the twelve pluggable
// transports, the web origin) run unmodified on top of these conns.
//
// Time is virtual and discrete-event: every latency and rate in the
// simulation is expressed in virtual seconds, but no goroutine ever
// sleeps in real time. The Clock keeps a min-heap of pending virtual
// timers and a registry of simulation goroutines; when every registered
// goroutine is parked in a scheduler wait, the clock jumps to the
// earliest timer and wakes its owner. Campaigns therefore execute at CPU
// speed, reported durations carry no OS-scheduler noise, and identical
// seeds produce bit-identical results.
//
// Pure data-plane consumers need not be goroutines at all: Clock.EventAt
// runs a callback inline on the dispatching goroutine at a virtual
// instant, Conn.SetReadSink delivers each arrived segment to an inline
// callback at exactly its arrival time, and Conn.ReadFull parks a
// record-structured reader once per request instead of once per segment.
// Event callbacks must never park — they use the non-parking primitives
// (TryWriteOwned, Chan.TrySend, Clock.Go, further EventAt arms).
// See DESIGN.md ("Inline event execution") for the architecture and the
// rules simulation code must follow (spawn via Clock.Go, block only in
// scheduler-aware primitives). These rules are machine-checked:
// tools/simlint runs in CI as a go vet tool and rejects wall-clock
// reads, raw go statements, unseeded randomness and parking calls
// reachable from event callbacks — see DESIGN.md ("Static enforcement
// of the determinism contract").
package netem
