package netem

import (
	"io"
	"testing"

	"ptperf/internal/geo"
)

// TestLinkDownBlocksNewDialsOnly pins the flap semantics the fault
// injector relies on: while a host's link is down, new dials in either
// direction fail immediately and move no accounting (the censor's
// blocked-dial cross-check depends on that), but conns already
// established keep working until someone aborts them explicitly.
func TestLinkDownBlocksNewDialsOnly(t *testing.T) {
	n := New(WithTimeScale(0.001), WithSeed(3))
	a := n.MustAddHost(HostConfig{Name: "a", Location: geo.Frankfurt})
	b := n.MustAddHost(HostConfig{Name: "b", Location: geo.London})
	ln, err := b.Listen(80)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	n.Go(func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			conn := c
			n.Go(func() { defer conn.Close(); io.Copy(conn, conn) })
		}
	})

	pre, err := a.Dial("b:80")
	if err != nil {
		t.Fatal(err)
	}
	defer pre.Close()

	b.SetLinkDown(true)
	if !b.LinkDown() {
		t.Fatal("LinkDown not reported")
	}
	snap := n.Acct().Snapshot()
	if _, err := a.Dial("b:80"); err == nil {
		t.Fatal("dial to a downed host succeeded")
	}
	if _, err := b.Dial("a:1"); err == nil {
		t.Fatal("dial from a downed host succeeded")
	}
	post := n.Acct().Snapshot()
	if post.Dials != snap.Dials || post.DialsRefused != snap.DialsRefused {
		t.Fatalf("link-down dials moved accounting: dials %d→%d refused %d→%d",
			snap.Dials, post.Dials, snap.DialsRefused, post.DialsRefused)
	}

	// The established conn is unaffected by the administrative state.
	if _, err := pre.Write([]byte("hi")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 2)
	if _, err := io.ReadFull(pre, buf); err != nil || string(buf) != "hi" {
		t.Fatalf("established conn broken by flap: %v %q", err, buf)
	}

	b.SetLinkDown(false)
	c2, err := a.Dial("b:80")
	if err != nil {
		t.Fatalf("dial after link-up: %v", err)
	}
	c2.Close()
}
