package netem

import (
	"bytes"
	"io"
	"sync"
	"testing"
	"time"
)

// TestPopZeroLengthBuf pins the io.Reader contract for zero-length
// reads: (0, nil) immediately, with any queued segment left untouched.
// The retired implementation fell through the copy loop and returned
// (0, nil) while silently keeping the segment queued *after* charging
// the window accounting for it.
func TestPopZeroLengthBuf(t *testing.T) {
	clock := NewClock(0)
	p := newPipe(clock, 0, nil)
	data, base, pool := getSegBuf([]byte("abc"))
	if err := p.push(data, base, pool, 0, time.Time{}); err != nil {
		t.Fatal(err)
	}
	if n, err := p.pop(nil, time.Time{}); n != 0 || err != nil {
		t.Fatalf("pop(nil) = (%d, %v), want (0, nil)", n, err)
	}
	if n, err := p.pop([]byte{}, time.Time{}); n != 0 || err != nil {
		t.Fatalf("pop(empty) = (%d, %v), want (0, nil)", n, err)
	}
	if n, err := p.popFull(nil, time.Time{}); n != 0 || err != nil {
		t.Fatalf("popFull(nil) = (%d, %v), want (0, nil)", n, err)
	}
	buf := make([]byte, 8)
	n, err := p.pop(buf, time.Time{})
	if err != nil || string(buf[:n]) != "abc" {
		t.Fatalf("pop after zero-length reads = (%q, %v), want (\"abc\", nil)", buf[:n], err)
	}
}

// TestGetSegBufOversized pins the oversized-payload fallback: anything
// larger than segmentSize gets a plain allocation instead of slicing
// the pooled segmentSize array out of bounds (which panicked).
func TestGetSegBufOversized(t *testing.T) {
	p := bytes.Repeat([]byte{0xAB}, segmentSize+1)
	data, base, pool := getSegBuf(p)
	if base != nil || pool != nil {
		t.Fatalf("oversized payload should not be pooled (base=%v pool=%v)", base, pool)
	}
	if !bytes.Equal(data, p) {
		t.Fatal("oversized payload not copied intact")
	}

	// Size classes: small frames and bulk segments draw pooled arrays.
	small, sbase, spool := getSegBuf(make([]byte, 512))
	if spool != &smallBufPool || sbase == nil || len(small) != 512 {
		t.Fatal("512-byte frame should draw from smallBufPool")
	}
	putSegBuf(spool, sbase)
	bulk, bbase, bpool := getSegBuf(make([]byte, segmentSize))
	if bpool != &segBufPool || bbase == nil || len(bulk) != segmentSize {
		t.Fatal("segmentSize payload should draw from segBufPool")
	}
	putSegBuf(bpool, bbase)
}

// TestWriteOwnedOversized checks the zero-copy write's oversized
// fallback end to end: a WriteOwned larger than one segment is chunked
// through the regular Write path and arrives intact.
func TestWriteOwnedOversized(t *testing.T) {
	n, a, b := testNetwork(t)
	l, err := b.Listen(80)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	msg := bytes.Repeat([]byte("oversize-"), 8<<10) // 72K, several segments
	n.Go(func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		payload := append([]byte(nil), msg...)
		if err := c.(*Conn).WriteOwned(payload, &payload, nil); err != nil {
			t.Error(err)
		}
		c.(*Conn).CloseWrite()
	})

	c, err := a.Dial("b:80")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	got, err := io.ReadAll(c)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("oversized WriteOwned mismatch: got %d bytes want %d", len(got), len(msg))
	}
}

// TestReadFull exercises the threshold-read contract: exactly len(p)
// bytes with a nil error, a short count only alongside io.EOF, and
// ErrTimeout on an expired deadline.
func TestReadFull(t *testing.T) {
	n, a, b := testNetwork(t)
	l, err := b.Listen(80)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	msg := bytes.Repeat([]byte("full-read-"), 5000) // 50K, multi-segment
	n.Go(func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		c.Write(msg)
		c.(*Conn).CloseWrite()
	})

	c, err := a.Dial("b:80")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cc := c.(*Conn)

	// Exact fill across several segments, in two requests.
	half := len(msg) / 2
	buf := make([]byte, len(msg))
	if rn, err := cc.ReadFull(buf[:half]); rn != half || err != nil {
		t.Fatalf("ReadFull(first half) = (%d, %v), want (%d, nil)", rn, err, half)
	}
	if rn, err := cc.ReadFull(buf[half:]); rn != len(msg)-half || err != nil {
		t.Fatalf("ReadFull(second half) = (%d, %v), want (%d, nil)", rn, err, len(msg)-half)
	}
	if !bytes.Equal(buf, msg) {
		t.Fatal("ReadFull payload mismatch")
	}

	// Past end of stream: zero bytes, io.EOF.
	if rn, err := cc.ReadFull(make([]byte, 10)); rn != 0 || err != io.EOF {
		t.Fatalf("ReadFull past EOF = (%d, %v), want (0, EOF)", rn, err)
	}
}

// TestReadFullShortEOF checks that a request larger than the remaining
// stream drains what arrived and reports io.EOF with the short count.
func TestReadFullShortEOF(t *testing.T) {
	n, a, b := testNetwork(t)
	l, err := b.Listen(80)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	n.Go(func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		c.Write([]byte("short"))
		c.(*Conn).CloseWrite()
	})

	c, err := a.Dial("b:80")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	buf := make([]byte, 64)
	rn, err := c.(*Conn).ReadFull(buf)
	if rn != 5 || err != io.EOF || string(buf[:rn]) != "short" {
		t.Fatalf("ReadFull on short stream = (%q, %v), want (\"short\", EOF)", buf[:rn], err)
	}
}

// TestReadFullTimeout checks the deadline path: an unsatisfiable request
// returns what arrived (here nothing) with a timeout error.
func TestReadFullTimeout(t *testing.T) {
	n, a, b := testNetwork(t)
	l, err := b.Listen(80)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	n.Go(func() {
		c, _ := l.Accept()
		if c != nil {
			defer c.Close()
			// Hold the conn open without writing past the deadline.
			c.Read(make([]byte, 1))
		}
	})

	c, err := a.Dial("b:80")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetReadDeadline(n.VirtualDeadline(20 * time.Millisecond))
	rn, err := c.(*Conn).ReadFull(make([]byte, 16))
	ne, ok := err.(interface{ Timeout() bool })
	if rn != 0 || !ok || !ne.Timeout() {
		t.Fatalf("ReadFull past deadline = (%d, %v), want (0, timeout)", rn, err)
	}
}

// TestReadFullTimingMatchesEagerRead runs the same transfer through an
// eager Read loop and through ReadFull on identically-seeded networks:
// the bytes and the virtual completion instant must agree, because a
// threshold reader's last byte completes at exactly the instant an
// eager reader would have consumed it.
func TestReadFullTimingMatchesEagerRead(t *testing.T) {
	msg := bytes.Repeat([]byte("equivalence-"), 8000) // 96K, below the window bound

	run := func(full bool) ([]byte, time.Duration) {
		n, a, b := testNetwork(t)
		l, err := b.Listen(80)
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		n.Go(func() {
			c, err := l.Accept()
			if err != nil {
				return
			}
			defer c.Close()
			c.Write(msg)
			c.(*Conn).CloseWrite()
		})
		c, err := a.Dial("b:80")
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		var got []byte
		if full {
			got = make([]byte, len(msg))
			if _, err := c.(*Conn).ReadFull(got); err != nil {
				t.Fatal(err)
			}
		} else {
			got, err = io.ReadAll(c)
			if err != nil {
				t.Fatal(err)
			}
		}
		return got, n.Now()
	}

	eager, eagerDone := run(false)
	full, fullDone := run(true)
	if !bytes.Equal(eager, full) {
		t.Fatal("eager and threshold reads returned different bytes")
	}
	if eagerDone != fullDone {
		t.Fatalf("completion time diverged: eager %v, threshold %v", eagerDone, fullDone)
	}
}

// TestReadSinkDeliversAll checks inline delivery: every written byte
// reaches the sink in order with its pooled buffer, and the terminal
// callback reports io.EOF exactly once after the stream drains.
func TestReadSinkDeliversAll(t *testing.T) {
	n, a, b := testNetwork(t)
	l, err := b.Listen(80)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	msg := bytes.Repeat([]byte("sink-payload-"), 4000) // 52K, multi-segment
	var got []byte
	var terms []error
	wg := NewWaitGroup(n.clock)
	wg.Add(1)
	n.Go(func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		c.(*Conn).SetReadSink(func(data []byte, base *[]byte, pool *sync.Pool, err error) {
			if err != nil {
				terms = append(terms, err)
				wg.Done()
				return
			}
			got = append(got, data...)
			putSegBuf(pool, base)
		})
	})

	c, err := a.Dial("b:80")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write(msg); err != nil {
		t.Fatal(err)
	}
	c.(*Conn).CloseWrite()
	wg.Wait()

	if !bytes.Equal(got, msg) {
		t.Fatalf("sink received %d bytes, want %d", len(got), len(msg))
	}
	if len(terms) != 1 || terms[0] != io.EOF {
		t.Fatalf("terminal callbacks = %v, want exactly one io.EOF", terms)
	}
}

// TestReadAfterSinkPanics pins the mutual exclusion of sink mode and
// Read: mixing them would silently race over the same segments.
func TestReadAfterSinkPanics(t *testing.T) {
	n, a, b := testNetwork(t)
	l, err := b.Listen(80)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	n.Go(func() {
		c, _ := l.Accept()
		if c != nil {
			c.Write([]byte("x"))
		}
	})
	c, err := a.Dial("b:80")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.(*Conn).SetReadSink(func(data []byte, base *[]byte, pool *sync.Pool, err error) {
		putSegBuf(pool, base)
	})
	defer func() {
		if recover() == nil {
			t.Fatal("Read after SetReadSink should panic")
		}
	}()
	c.Read(make([]byte, 1))
}
