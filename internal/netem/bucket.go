package netem

import (
	"sync"
	"time"
)

// Bucket is a token-bucket rate limiter on the virtual clock. Buckets are
// shared: every conn leaving a host reserves transmission time on the
// host's egress bucket, so concurrent flows through the same host contend
// for its capacity. This is the mechanism that reproduces the paper's
// central observation that a loaded first hop (volunteer guard) dominates
// download time while an idle PT bridge does not.
type Bucket struct {
	mu sync.Mutex
	// rate is the effective data rate in bytes per virtual second.
	rate float64
	// free is the virtual time at which the link becomes idle.
	free time.Duration
	// queueDelay is the M/M/1-style queueing latency a segment pays on
	// a loaded link: util/(1−util) × a base service time. This is the
	// latency half of relay load — the bandwidth half is the rate
	// reduction — and is what makes a saturated volunteer guard slower
	// than an idle PT bridge even for small transfers (§4.2.1).
	queueDelay time.Duration
}

// queueBase is the nominal per-segment service time scaled by the load
// factor util/(1−util).
const queueBase = 20 * time.Millisecond

// maxQueueDelay caps the modeled queueing latency.
const maxQueueDelay = 150 * time.Millisecond

// NewBucket returns a bucket with the given capacity in bytes per virtual
// second, reduced by the background utilization factor in [0,1). The
// utilization models traffic from other network users (e.g. regular Tor
// clients on a volunteer guard) that our flows must share the link with.
func NewBucket(capacity float64, utilization float64) *Bucket {
	if utilization < 0 {
		utilization = 0
	}
	if utilization > 0.97 {
		utilization = 0.97
	}
	eff := capacity * (1 - utilization)
	if eff < 1 {
		eff = 1
	}
	qd := time.Duration(float64(queueBase) * utilization / (1 - utilization))
	if qd > maxQueueDelay {
		qd = maxQueueDelay
	}
	return &Bucket{rate: eff, queueDelay: qd}
}

// QueueDelay reports the per-segment queueing latency of the link.
func (b *Bucket) QueueDelay() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.queueDelay
}

// Rate reports the effective rate in bytes per virtual second.
func (b *Bucket) Rate() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.rate
}

// SetRate changes the effective rate. Used by load scenarios (e.g. the
// post-September snowflake surge).
func (b *Bucket) SetRate(rate float64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if rate < 1 {
		rate = 1
	}
	b.rate = rate
}

// Reload reconfigures capacity and utilization together, recomputing
// both the effective rate and the queueing latency.
func (b *Bucket) Reload(capacity, utilization float64) {
	if utilization < 0 {
		utilization = 0
	}
	if utilization > 0.97 {
		utilization = 0.97
	}
	eff := capacity * (1 - utilization)
	if eff < 1 {
		eff = 1
	}
	qd := time.Duration(float64(queueBase) * utilization / (1 - utilization))
	if qd > maxQueueDelay {
		qd = maxQueueDelay
	}
	b.mu.Lock()
	b.rate = eff
	b.queueDelay = qd
	b.mu.Unlock()
}

// Reserve books n bytes of transmission starting no earlier than now and
// returns the virtual time at which the last byte has been serialized.
func (b *Bucket) Reserve(now time.Duration, n int) time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	start := now
	if b.free > start {
		start = b.free
	}
	if n <= 0 {
		// A zero-byte reservation transmits nothing but still queues
		// behind the link's backlog: returning `now` would let it
		// finish before segments reserved earlier, breaking arrival
		// monotonicity (TestBucketMonotonic's 0x0 draws).
		return start
	}
	tx := time.Duration(float64(n) / b.rate * float64(time.Second))
	b.free = start + tx
	return b.free
}

// Unlimited returns a bucket that never delays.
func Unlimited() *Bucket { return &Bucket{rate: 1e15} }
