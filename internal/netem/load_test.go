package netem

import (
	"io"
	"testing"
	"time"

	"ptperf/internal/geo"
)

func TestQueueDelayGrowsWithUtilization(t *testing.T) {
	idle := NewBucket(1<<20, 0.05)
	busy := NewBucket(1<<20, 0.8)
	if busy.QueueDelay() <= idle.QueueDelay() {
		t.Fatalf("busy link must queue more: %v vs %v", busy.QueueDelay(), idle.QueueDelay())
	}
	if sat := NewBucket(1<<20, 0.999); sat.QueueDelay() > maxQueueDelay {
		t.Fatalf("queue delay must be capped, got %v", sat.QueueDelay())
	}
	if NewBucket(1<<20, 0).QueueDelay() != 0 {
		t.Fatal("idle link must not queue")
	}
}

func TestReloadRecomputesBoth(t *testing.T) {
	b := NewBucket(1<<20, 0.1)
	r0, q0 := b.Rate(), b.QueueDelay()
	b.Reload(1<<20, 0.85)
	if b.Rate() >= r0 {
		t.Fatal("reload to higher utilization must cut the rate")
	}
	if b.QueueDelay() <= q0 {
		t.Fatal("reload to higher utilization must add queueing")
	}
}

// TestLoadedHopSlowsSmallTransfers verifies the §4.2.1 mechanism: even
// a latency-bound (small) transfer pays for a saturated first hop.
func TestLoadedHopSlowsSmallTransfers(t *testing.T) {
	run := func(util float64) time.Duration {
		n := New(WithTimeScale(0.005), WithSeed(17))
		src := n.MustAddHost(HostConfig{Name: "src", Location: geo.London})
		relay := n.MustAddHost(HostConfig{Name: "relay", Location: geo.Frankfurt, Utilization: util, UplinkBps: 8 << 20, DownlinkBps: 8 << 20})
		dst := n.MustAddHost(HostConfig{Name: "dst", Location: geo.NewYork})

		dl, _ := dst.Listen(80)
		n.Go(func() {
			c, err := dl.Accept()
			if err != nil {
				return
			}
			defer c.Close()
			io.Copy(c, c)
		})
		rl, _ := relay.Listen(81)
		n.Go(func() {
			c, err := rl.Accept()
			if err != nil {
				return
			}
			down, err := relay.Dial("dst:80")
			if err != nil {
				c.Close()
				return
			}
			n.Go(func() { io.Copy(down, c) })
			io.Copy(c, down)
		})

		conn, err := src.Dial("relay:81")
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		start := n.Now()
		conn.Write([]byte("tiny request"))
		if _, err := io.ReadFull(conn, make([]byte, 12)); err != nil {
			t.Fatal(err)
		}
		return n.Since(start)
	}
	idle := run(0.05)
	busy := run(0.85)
	if busy <= idle {
		t.Fatalf("saturated relay (%v) must be slower than idle (%v) even for tiny transfers", busy, idle)
	}
}

func TestWirelessMediumAddsJitterAndLoss(t *testing.T) {
	// Repeated small round trips over WiFi should show more variance
	// than over Ethernet.
	measure := func(medium geo.Medium) (mean, max time.Duration) {
		n := New(WithTimeScale(0.005), WithSeed(23))
		a := n.MustAddHost(HostConfig{Name: "a", Location: geo.Toronto, Medium: medium})
		b := n.MustAddHost(HostConfig{Name: "b", Location: geo.NewYork})
		l, _ := b.Listen(80)
		n.Go(func() {
			c, err := l.Accept()
			if err != nil {
				return
			}
			defer c.Close()
			io.Copy(c, c)
		})
		conn, err := a.Dial("b:80")
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		var total time.Duration
		const rounds = 40
		for i := 0; i < rounds; i++ {
			start := n.Now()
			conn.Write([]byte{1})
			if _, err := io.ReadFull(conn, make([]byte, 1)); err != nil {
				t.Fatal(err)
			}
			rt := n.Since(start)
			total += rt
			if rt > max {
				max = rt
			}
		}
		return total / rounds, max
	}
	wiredMean, _ := measure(geo.Wired)
	wirelessMean, wirelessMax := measure(geo.Wireless)
	if wirelessMean <= wiredMean {
		t.Fatalf("wireless mean (%v) should exceed wired (%v)", wirelessMean, wiredMean)
	}
	rtt := geo.RTT(geo.Toronto, geo.NewYork)
	if wirelessMax < rtt+geo.MediumProfile(geo.Wireless).ExtraLatency {
		t.Fatalf("wireless max RTT %v implausibly small", wirelessMax)
	}
}
