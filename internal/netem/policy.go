package netem

import (
	"sync"
	"time"
)

// This file is the path-interception hook the censor subsystem plugs
// into (internal/censor). A Policy is a programmable middlebox sitting
// on every link of the network: it can refuse new connections, observe
// conn establishment, and shape, drop or reset individual segments in
// flight. The network consults it synchronously from simulation
// goroutines, so a deterministic policy keeps the whole simulation
// deterministic.

// Flow identifies one direction of a conn to a Policy: the sending and
// receiving endpoints as "host:port" strings.
type Flow struct {
	// Src is the sending endpoint.
	Src string
	// Dst is the receiving endpoint.
	Dst string
}

// Action is a policy's verdict on one in-flight segment.
type Action int

const (
	// Pass delivers the segment unimpaired.
	Pass Action = iota
	// Impair delivers the segment with Verdict.Extra added latency
	// and/or serialized through Verdict.Shaper (throttling, induced
	// loss modeled as retransmit penalties).
	Impair
	// Reset tears the connection down mid-flight, like an injected
	// RST: the write fails with ErrReset and the peer's reads error.
	Reset
)

// Verdict is the outcome of filtering one segment.
type Verdict struct {
	// Action selects what happens to the segment.
	Action Action
	// Extra is added one-way latency (congestion queueing, loss
	// penalties, jitter) charged on top of the link's own shaping.
	Extra time.Duration
	// Shaper, when non-nil, is an additional shared bottleneck the
	// segment must serialize through (a censor's throttle box).
	// Flows matched by the same rule contend for it.
	Shaper *Bucket
}

// Policy intercepts traffic at the link layer. Implementations must be
// deterministic functions of virtual time and their own seeded state:
// they are called from simulation goroutines in scheduler order.
type Policy interface {
	// FilterDial is consulted before a new connection from src (a host
	// name) to dst ("host:port") is established. A non-nil error
	// refuses the connection; the dialer observes the failure after
	// one round trip, like a censor's injected RST or a black-holed
	// SYN resolving.
	FilterDial(src, dst string) error
	// ConnOpened reports a successfully established connection (the
	// dialer side). Policies use it to track live flows so that a
	// rule activating later can tear existing matched flows down.
	ConnOpened(c *Conn)
	// FilterSegment is consulted for every segment entering the
	// network, with its flow and payload length.
	FilterSegment(f Flow, n int) Verdict
}

// policyHolder stores the network's installed policy behind a mutex;
// installation happens during world construction, lookups on every
// dial and segment.
type policyHolder struct {
	mu  sync.Mutex
	pol Policy
}

func (ph *policyHolder) get() Policy {
	ph.mu.Lock()
	defer ph.mu.Unlock()
	return ph.pol
}

func (ph *policyHolder) set(p Policy) {
	ph.mu.Lock()
	ph.pol = p
	ph.mu.Unlock()
}

// SetPolicy installs (or, with nil, removes) the network's middlebox
// policy. At most one policy is active; internal/censor composes its
// rule set behind a single Policy.
func (n *Network) SetPolicy(p Policy) { n.policy.set(p) }

// Policy returns the installed middlebox policy, or nil.
func (n *Network) Policy() Policy { return n.policy.get() }
