package netem

import (
	"errors"
	"io"
	"sync"
	"time"
)

// Shaping errors surfaced through net.Conn operations.
var (
	// ErrClosed is returned for operations on a closed conn.
	ErrClosed = errors.New("netem: use of closed connection")
	// ErrReset is returned when writing to a conn whose peer has closed.
	ErrReset = errors.New("netem: connection reset by peer")
	// ErrTimeout is returned when a deadline expires. It satisfies
	// net.Error with Timeout() == true via timeoutError.
	ErrTimeout = &timeoutError{}
)

type timeoutError struct{}

func (*timeoutError) Error() string   { return "netem: i/o timeout" }
func (*timeoutError) Timeout() bool   { return true }
func (*timeoutError) Temporary() bool { return true }

// seg is one shaped segment in flight: its payload and the virtual time at
// which the last byte arrives at the receiver.
type seg struct {
	data []byte
	at   time.Duration
}

// pipe is one direction of a shaped duplex connection.
type pipe struct {
	clock *Clock

	mu       sync.Mutex
	cond     *sync.Cond
	segs     []seg
	buffered int  // bytes queued and not yet read
	maxBuf   int  // receive-window bound for backpressure
	wclosed  bool // writer has closed; reader drains then sees EOF
	rclosed  bool // reader has closed; writes fail
	werr     error
}

func newPipe(clock *Clock, maxBuf int) *pipe {
	if maxBuf <= 0 {
		maxBuf = 256 << 10
	}
	p := &pipe{clock: clock, maxBuf: maxBuf}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// push enqueues a shaped segment, blocking while the receive window is
// full. It returns an error if either side has closed.
func (p *pipe) push(data []byte, arrival time.Duration, deadline time.Time) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for p.buffered+len(data) > p.maxBuf && !p.rclosed && !p.wclosed {
		if expired(deadline) {
			return ErrTimeout
		}
		p.waitLocked(deadline)
	}
	if p.wclosed {
		return ErrClosed
	}
	if p.rclosed {
		return ErrReset
	}
	p.segs = append(p.segs, seg{data: data, at: arrival})
	p.buffered += len(data)
	p.cond.Broadcast()
	return nil
}

// pop reads up to len(buf) bytes that have "arrived" on the virtual clock,
// sleeping through propagation delay as needed.
func (p *pipe) pop(buf []byte, deadline time.Time) (int, error) {
	p.mu.Lock()
	for {
		if p.rclosed {
			p.mu.Unlock()
			return 0, ErrClosed
		}
		if len(p.segs) > 0 {
			break
		}
		if p.wclosed {
			p.mu.Unlock()
			return 0, io.EOF
		}
		if expired(deadline) {
			p.mu.Unlock()
			return 0, ErrTimeout
		}
		p.waitLocked(deadline)
	}
	s := &p.segs[0]
	at := s.at
	p.mu.Unlock()

	// Wait for the segment to propagate, bounded by the deadline.
	if wait := at - p.clock.Now(); wait > 0 {
		if !deadline.IsZero() {
			realAt := time.Now().Add(p.clock.real(wait))
			if realAt.After(deadline) {
				time.Sleep(time.Until(deadline))
				return 0, ErrTimeout
			}
		}
		p.clock.SleepUntil(at)
	}

	p.mu.Lock()
	defer p.mu.Unlock()
	if p.rclosed {
		return 0, ErrClosed
	}
	if len(p.segs) == 0 {
		if p.wclosed {
			return 0, io.EOF
		}
		return 0, nil
	}
	s = &p.segs[0]
	n := copy(buf, s.data)
	if n == len(s.data) {
		p.segs = p.segs[1:]
	} else {
		s.data = s.data[n:]
	}
	p.buffered -= n
	p.cond.Broadcast()
	return n, nil
}

// closeWrite marks the writer side closed; the reader drains then gets EOF.
func (p *pipe) closeWrite() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.wclosed = true
	p.cond.Broadcast()
}

// closeRead marks the reader side closed; pending data is dropped and
// subsequent writes fail with ErrReset.
func (p *pipe) closeRead() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.rclosed = true
	p.segs = nil
	p.buffered = 0
	p.cond.Broadcast()
}

// waitLocked waits on the pipe condition, honouring an optional deadline
// by scheduling a broadcast wakeup.
func (p *pipe) waitLocked(deadline time.Time) {
	if deadline.IsZero() {
		p.cond.Wait()
		return
	}
	stop := time.AfterFunc(time.Until(deadline), func() {
		p.mu.Lock()
		p.cond.Broadcast()
		p.mu.Unlock()
	})
	p.cond.Wait()
	stop.Stop()
}

func expired(deadline time.Time) bool {
	return !deadline.IsZero() && !time.Now().Before(deadline)
}
