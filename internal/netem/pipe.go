package netem

import (
	"errors"
	"io"
	"sync"
	"time"
)

// Shaping errors surfaced through net.Conn operations.
var (
	// ErrClosed is returned for operations on a closed conn.
	ErrClosed = errors.New("netem: use of closed connection")
	// ErrReset is returned when writing to a conn whose peer has closed.
	ErrReset = errors.New("netem: connection reset by peer")
	// ErrTimeout is returned when a deadline expires. It satisfies
	// net.Error with Timeout() == true via timeoutError.
	ErrTimeout = &timeoutError{}
)

type timeoutError struct{}

func (*timeoutError) Error() string   { return "netem: i/o timeout" }
func (*timeoutError) Timeout() bool   { return true }
func (*timeoutError) Temporary() bool { return true }

// seg is one shaped segment in flight: its payload and the virtual time at
// which the last byte arrives at the receiver. base retains the pooled
// backing array while data shrinks across partial reads.
type seg struct {
	data []byte
	base *[]byte
	at   time.Duration
}

// segBufPool recycles segment backing arrays; segment copies are the
// simulation's dominant allocation.
var segBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, segmentSize)
		return &b
	},
}

// getSegBuf returns a buffer holding a copy of p: tiny frames get a
// plain allocation (cheaper than pool churn), bulk segments a pooled
// backing array.
func getSegBuf(p []byte) ([]byte, *[]byte) {
	if len(p) <= 1024 {
		data := make([]byte, len(p))
		copy(data, p)
		return data, nil
	}
	base := segBufPool.Get().(*[]byte)
	data := (*base)[:len(p)]
	copy(data, p)
	return data, base
}

func putSegBuf(base *[]byte) {
	if base != nil {
		segBufPool.Put(base)
	}
}

// pipe is one direction of a shaped duplex connection. All waits go
// through the scheduler cond, so a blocked reader or writer releases its
// run token and virtual time can advance to the segment arrivals and
// deadlines it is waiting for.
type pipe struct {
	clock *Clock
	acct  *Acct // network accounting, nil for pipes outside a network

	mu       sync.Mutex
	cond     *Cond
	segs     []seg
	buffered int  // bytes queued and not yet read
	maxBuf   int  // receive-window bound for backpressure
	wclosed  bool // writer has closed; reader drains then sees EOF
	rclosed  bool // reader has closed; writes fail
}

func newPipe(clock *Clock, maxBuf int, acct *Acct) *pipe {
	if maxBuf <= 0 {
		maxBuf = 256 << 10
	}
	p := &pipe{clock: clock, acct: acct, maxBuf: maxBuf}
	p.cond = NewCond(clock, &p.mu)
	acct.registerPipe(p)
	return p
}

// deadlineVT decodes a conn deadline, mapping "none" to noDeadline.
func deadlineVT(t time.Time) time.Duration {
	if vt, ok := DeadlineVT(t); ok {
		return vt
	}
	return noDeadline
}

func vtExpired(c *Clock, vt time.Duration) bool {
	return vt != noDeadline && c.Now() >= vt
}

// push enqueues a shaped segment, parking while the receive window is
// full. It returns an error if either side has closed.
func (p *pipe) push(data []byte, base *[]byte, arrival time.Duration, deadline time.Time) error {
	vt := deadlineVT(deadline)
	p.mu.Lock()
	defer p.mu.Unlock()
	for p.buffered+len(data) > p.maxBuf && !p.rclosed && !p.wclosed {
		if vtExpired(p.clock, vt) {
			putSegBuf(base)
			return ErrTimeout
		}
		p.cond.WaitVT(vt)
	}
	if p.wclosed {
		putSegBuf(base)
		return ErrClosed
	}
	if p.rclosed {
		putSegBuf(base)
		return ErrReset
	}
	p.segs = append(p.segs, seg{data: data, base: base, at: arrival})
	p.buffered += len(data)
	p.acct.addSent(len(data))
	// Wake a parked reader at the segment's arrival, not now: waking it
	// at push time would only make it re-park until the data has
	// propagated.
	p.cond.WakeAt(arrival)
	return nil
}

// pop reads up to len(buf) bytes that have "arrived" on the virtual
// clock, parking through propagation delay as needed. Unlike the retired
// wall-clock implementation it never returns (0, nil): it loops back to
// waiting until data, EOF, close or a deadline resolves the read.
func (p *pipe) pop(buf []byte, deadline time.Time) (int, error) {
	vt := deadlineVT(deadline)
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if p.rclosed {
			return 0, ErrClosed
		}
		if len(p.segs) > 0 {
			s := &p.segs[0]
			now := p.clock.Now()
			if s.at <= now {
				n := copy(buf, s.data)
				if n == len(s.data) {
					putSegBuf(s.base)
					p.segs = p.segs[1:]
				} else {
					s.data = s.data[n:]
				}
				p.buffered -= n
				p.acct.addDelivered(n)
				p.cond.Broadcast()
				return n, nil
			}
			if vtExpired(p.clock, vt) {
				return 0, ErrTimeout
			}
			// Park until the segment's arrival or the deadline,
			// whichever is earlier; a broadcast (new segment, close)
			// re-evaluates.
			wake := s.at
			if vt != noDeadline && vt < wake {
				wake = vt
			}
			p.cond.WaitVT(wake)
			continue
		}
		if p.wclosed {
			return 0, io.EOF
		}
		if vtExpired(p.clock, vt) {
			return 0, ErrTimeout
		}
		p.cond.WaitVT(vt)
	}
}

// freeSpace reports how many more payload bytes push would accept
// without parking on the receive-window bound; 0 once either side has
// closed. The conn layer exposes it as the write-budget probe.
func (p *pipe) freeSpace() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.rclosed || p.wclosed {
		return 0
	}
	if free := p.maxBuf - p.buffered; free > 0 {
		return free
	}
	return 0
}

// readerClosed reports whether the reader side has closed (the pipe's
// buffered count is zero forever); the accounting registry prunes on it.
func (p *pipe) readerClosed() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.rclosed
}

// closeWrite marks the writer side closed; the reader drains then gets EOF.
func (p *pipe) closeWrite() {
	p.mu.Lock()
	p.wclosed = true
	p.mu.Unlock()
	p.cond.Broadcast()
}

// closeRead marks the reader side closed; pending data is dropped and
// subsequent writes fail with ErrReset.
func (p *pipe) closeRead() {
	p.mu.Lock()
	p.rclosed = true
	for i := range p.segs {
		putSegBuf(p.segs[i].base)
	}
	p.segs = nil
	p.acct.addDropped(p.buffered)
	p.buffered = 0
	p.mu.Unlock()
	p.cond.Broadcast()
}
