package netem

import (
	"errors"
	"io"
	"sync"
	"time"
)

// Shaping errors surfaced through net.Conn operations.
var (
	// ErrClosed is returned for operations on a closed conn.
	ErrClosed = errors.New("netem: use of closed connection")
	// ErrReset is returned when writing to a conn whose peer has closed.
	ErrReset = errors.New("netem: connection reset by peer")
	// ErrTimeout is returned when a deadline expires. It satisfies
	// net.Error with Timeout() == true via timeoutError.
	ErrTimeout = &timeoutError{}
)

type timeoutError struct{}

func (*timeoutError) Error() string   { return "netem: i/o timeout" }
func (*timeoutError) Timeout() bool   { return true }
func (*timeoutError) Temporary() bool { return true }

// seg is one shaped segment in flight: its payload and the virtual time
// at which the last byte arrives at the receiver. base retains the
// backing array while data shrinks across partial reads; pool is the
// pool base returns to once fully consumed (nil for plain GC-owned
// allocations). Carrying the origin pool in the segment is what makes
// zero-copy handoff safe: a caller can push a buffer drawn from its own
// pool (e.g. the tor layer's 512-byte cell pool) and the pipe recycles
// it to the right place instead of poisoning the 16K segment pool with
// short arrays.
type seg struct {
	data []byte
	base *[]byte
	pool *sync.Pool
	at   time.Duration
}

// segBufPool recycles bulk segment backing arrays; segment copies are
// the simulation's dominant allocation.
var segBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, segmentSize)
		return &b
	},
}

// smallBufSize bounds the small-frame pool class: cells, handshakes and
// acks all fit, and a 2× size overhead on a transient buffer is cheaper
// than a GC allocation per frame.
const smallBufSize = 1024

// smallBufPool recycles small-frame backing arrays (protocol cells are
// the hot case: a contention sweep pushes hundreds of thousands of
// 512-byte frames).
var smallBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, smallBufSize)
		return &b
	},
}

// getSegBuf returns a buffer holding a copy of p: small frames and bulk
// segments draw from their size-class pools; anything larger than
// segmentSize falls back to a plain allocation (slicing the pooled
// segmentSize array used to panic with slice bounds out of range).
func getSegBuf(p []byte) (data []byte, base *[]byte, pool *sync.Pool) {
	switch {
	case len(p) <= smallBufSize:
		pool = &smallBufPool
	case len(p) <= segmentSize:
		pool = &segBufPool
	default:
		data = make([]byte, len(p))
		copy(data, p)
		return data, nil, nil
	}
	base = pool.Get().(*[]byte)
	data = (*base)[:len(p)]
	copy(data, p)
	return data, base, pool
}

func putSegBuf(pool *sync.Pool, base *[]byte) {
	if base != nil && pool != nil {
		pool.Put(base)
	}
}

// ReadSink is an inline segment consumer registered with
// Conn.SetReadSink. Each arrived segment is delivered exactly at its
// arrival instant on the clock's event dispatcher, with ownership of
// the backing array (recycle base into pool when both are non-nil).
// After the terminal call — data nil and err non-nil (io.EOF once
// drained, ErrClosed on reset/close) — no further calls are made.
//
// Sink callbacks run as inline clock events and must never park; use
// the non-parking primitives (TrySend, TryWriteOwned, Clock.Go,
// EventAt) and hand parking work to a goroutine.
type ReadSink func(data []byte, base *[]byte, pool *sync.Pool, err error)

// pipe is one direction of a shaped duplex connection. All waits go
// through the scheduler cond, so a blocked reader or writer releases its
// run token and virtual time can advance to the segment arrivals and
// deadlines it is waiting for.
type pipe struct {
	clock *Clock
	acct  *Acct // network accounting, nil for pipes outside a network

	mu   sync.Mutex
	cond *Cond
	// segs is a head-indexed ring slice (like Clock.ready): pop advances
	// segHead and the backing array is reused once drained, instead of
	// re-slicing capacity away on every segment.
	segs     []seg
	segHead  int
	buffered int  // bytes queued and not yet read
	maxBuf   int  // receive-window bound for backpressure
	wclosed  bool // writer has closed; reader drains then sees EOF
	rclosed  bool // reader has closed; writes fail
	// rdWant, while a popFull caller is parked, is the byte count it
	// still needs; enqueueLocked skips the arrival wake until the queue
	// holds that much, so a threshold reader parks once per request
	// instead of once per arriving segment.
	rdWant int

	// sink, when set, replaces parked reads with inline delivery events
	// (see ReadSink). sinkArmed marks a pending delivery event;
	// sinkDone marks the terminal callback as delivered.
	sink      ReadSink
	sinkFn    func() // cached p.sinkEvent bound method (one closure, not one per arm)
	sinkArmed bool
	sinkDone  bool
}

func newPipe(clock *Clock, maxBuf int, acct *Acct) *pipe {
	if maxBuf <= 0 {
		maxBuf = 256 << 10
	}
	p := &pipe{clock: clock, acct: acct, maxBuf: maxBuf}
	p.cond = NewCond(clock, &p.mu)
	acct.registerPipe(p)
	return p
}

// deadlineVT decodes a conn deadline, mapping "none" to noDeadline.
func deadlineVT(t time.Time) time.Duration {
	if vt, ok := DeadlineVT(t); ok {
		return vt
	}
	return noDeadline
}

func vtExpired(c *Clock, vt time.Duration) bool {
	return vt != noDeadline && c.Now() >= vt
}

// push enqueues a shaped segment, parking while the receive window is
// full. It returns an error if either side has closed. Ownership of
// base transfers to the pipe on any outcome (errors recycle it).
func (p *pipe) push(data []byte, base *[]byte, pool *sync.Pool, arrival time.Duration, deadline time.Time) error {
	vt := deadlineVT(deadline)
	p.mu.Lock()
	defer p.mu.Unlock()
	for p.buffered+len(data) > p.maxBuf && !p.rclosed && !p.wclosed {
		if vtExpired(p.clock, vt) {
			putSegBuf(pool, base)
			return ErrTimeout
		}
		p.cond.WaitVT(vt)
	}
	if p.wclosed {
		putSegBuf(pool, base)
		return ErrClosed
	}
	if p.rclosed {
		putSegBuf(pool, base)
		return ErrReset
	}
	p.enqueueLocked(data, base, pool, arrival)
	return nil
}

// tryPush is push without parking, for inline event callbacks: ok is
// false (and ownership stays with the caller) when the receive window
// has no room. Closed pipes report their error with ok true — the
// segment is consumed (recycled) either way.
func (p *pipe) tryPush(data []byte, base *[]byte, pool *sync.Pool, arrival time.Duration) (ok bool, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.wclosed {
		putSegBuf(pool, base)
		return true, ErrClosed
	}
	if p.rclosed {
		putSegBuf(pool, base)
		return true, ErrReset
	}
	if p.buffered+len(data) > p.maxBuf {
		return false, nil
	}
	p.enqueueLocked(data, base, pool, arrival)
	return true, nil
}

// enqueueLocked appends a segment and schedules its consumption at the
// arrival instant: an inline delivery event in sink mode, otherwise a
// parked-reader wake-up (waking the reader at push time would only make
// it re-park until the data has propagated).
func (p *pipe) enqueueLocked(data []byte, base *[]byte, pool *sync.Pool, arrival time.Duration) {
	p.segs = append(p.segs, seg{data: data, base: base, pool: pool, at: arrival})
	p.buffered += len(data)
	p.acct.addSent(len(data))
	if p.sink != nil {
		p.armSinkLocked()
		return
	}
	if p.rdWant == 0 || p.buffered >= p.rdWant {
		p.cond.WakeAt(arrival)
	}
}

// setSink registers an inline consumer for this pipe's segments; any
// already-queued data (or a pending close) is delivered through it.
// Reads and sink mode are mutually exclusive from this point on.
func (p *pipe) setSink(fn ReadSink) {
	p.mu.Lock()
	p.sink = fn
	p.sinkFn = p.sinkEvent
	p.armSinkLocked()
	p.mu.Unlock()
}

// armSinkLocked schedules the next delivery event unless one is already
// armed: at the head segment's arrival instant, or immediately when the
// pipe has closed and only the terminal callback remains.
func (p *pipe) armSinkLocked() {
	if p.sink == nil || p.sinkArmed || p.sinkDone {
		return
	}
	at := p.clock.Now()
	if p.segHead < len(p.segs) {
		if first := p.segs[p.segHead].at; first > at {
			at = first
		}
	} else if !p.wclosed && !p.rclosed {
		return // nothing to deliver yet
	}
	p.sinkArmed = true
	p.clock.EventAt(at, p.sinkFn)
}

// sinkEvent delivers every arrived segment (and, once drained on a
// closed pipe, the terminal error) to the sink. Window accounting is
// identical to pop at the same instants, so writer backpressure —
// freeSpace, push parking — behaves exactly as it does for an eager
// parked reader.
func (p *pipe) sinkEvent() {
	p.mu.Lock()
	p.sinkArmed = false
	if p.sink == nil || p.sinkDone {
		p.mu.Unlock()
		return
	}
	now := p.clock.Now()
	var batchArr [8]seg
	batch := batchArr[:0]
	total := 0
	for p.segHead < len(p.segs) {
		s := p.segs[p.segHead]
		if s.at > now {
			break
		}
		batch = append(batch, s)
		total += len(s.data)
		p.segs[p.segHead] = seg{}
		p.segHead++
	}
	if p.segHead == len(p.segs) {
		p.segs = p.segs[:0]
		p.segHead = 0
	}
	var term error
	if p.rclosed {
		term = ErrClosed
	} else if p.wclosed && p.segHead == len(p.segs) {
		term = io.EOF
	}
	if total > 0 {
		p.buffered -= total
		p.acct.addDelivered(total)
	}
	if term != nil {
		p.sinkDone = true
	} else {
		p.armSinkLocked()
	}
	sink := p.sink
	p.mu.Unlock()
	if total > 0 {
		// Receive-window space was freed; unblock parked writers.
		p.cond.Broadcast()
	}
	for _, s := range batch {
		sink(s.data, s.base, s.pool, nil)
	}
	if term != nil {
		sink(nil, nil, nil, term)
	}
}

// pop reads up to len(buf) bytes that have "arrived" on the virtual
// clock, parking through propagation delay as needed. Unlike the retired
// wall-clock implementation it never returns (0, nil): it loops back to
// waiting until data, EOF, close or a deadline resolves the read. The
// one legitimate zero-byte read is a zero-length buf, which returns
// (0, nil) immediately per the io.Reader contract — it used to fall
// through the copy loop, leave the segment queued and return (0, nil)
// as if data had been consumed.
func (p *pipe) pop(buf []byte, deadline time.Time) (int, error) {
	if len(buf) == 0 {
		return 0, nil
	}
	vt := deadlineVT(deadline)
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.sink != nil {
		panic("netem: Read on a conn with an inline read sink")
	}
	for {
		if p.rclosed {
			return 0, ErrClosed
		}
		if p.segHead < len(p.segs) {
			now := p.clock.Now()
			if s := &p.segs[p.segHead]; s.at <= now {
				// Drain every segment that has already arrived, not just
				// the first: bulk readers hand in large buffers, and one
				// batched pop replaces a park/re-pop cycle per segment.
				total := 0
				for p.segHead < len(p.segs) && total < len(buf) {
					s := &p.segs[p.segHead]
					if s.at > now {
						break
					}
					n := copy(buf[total:], s.data)
					total += n
					if n == len(s.data) {
						putSegBuf(s.pool, s.base)
						p.segs[p.segHead] = seg{}
						p.segHead++
					} else {
						s.data = s.data[n:]
					}
				}
				if p.segHead == len(p.segs) {
					p.segs = p.segs[:0]
					p.segHead = 0
				}
				p.buffered -= total
				p.acct.addDelivered(total)
				p.cond.Broadcast()
				return total, nil
			}
			if vtExpired(p.clock, vt) {
				return 0, ErrTimeout
			}
			// Park until the segment's arrival or the deadline,
			// whichever is earlier; a broadcast (new segment, close)
			// re-evaluates.
			wake := p.segs[p.segHead].at
			if vt != noDeadline && vt < wake {
				wake = vt
			}
			p.cond.WaitVT(wake)
			continue
		}
		if p.wclosed {
			return 0, io.EOF
		}
		if vtExpired(p.clock, vt) {
			return 0, ErrTimeout
		}
		p.cond.WaitVT(vt)
	}
}

// popFull reads exactly len(buf) arrived bytes, unless the stream ends
// or the deadline expires first — then it returns what had arrived with
// io.EOF/ErrClosed/ErrTimeout. While parked it suppresses per-segment
// arrival wake-ups: the reader wakes at the arrival instant of the byte
// completing the request (or at close/deadline), which is exactly when
// an eager read loop would have consumed that byte. Window space is
// freed in request-sized steps rather than per segment, so a writer
// parked on the receive-window bound can unpark up to one request later
// than under an eager reader.
func (p *pipe) popFull(buf []byte, deadline time.Time) (int, error) {
	if len(buf) == 0 {
		return 0, nil
	}
	vt := deadlineVT(deadline)
	p.mu.Lock()
	defer func() {
		p.rdWant = 0
		p.mu.Unlock()
	}()
	if p.sink != nil {
		panic("netem: Read on a conn with an inline read sink")
	}
	total := 0
	for {
		if p.rclosed {
			return total, ErrClosed
		}
		now := p.clock.Now()
		drained := 0
		for p.segHead < len(p.segs) && total < len(buf) {
			s := &p.segs[p.segHead]
			if s.at > now {
				break
			}
			n := copy(buf[total:], s.data)
			total += n
			drained += n
			if n == len(s.data) {
				putSegBuf(s.pool, s.base)
				p.segs[p.segHead] = seg{}
				p.segHead++
			} else {
				s.data = s.data[n:]
			}
		}
		if p.segHead == len(p.segs) {
			p.segs = p.segs[:0]
			p.segHead = 0
		}
		if drained > 0 {
			p.buffered -= drained
			p.acct.addDelivered(drained)
			p.cond.Broadcast()
		}
		if total == len(buf) {
			return total, nil
		}
		if vtExpired(p.clock, vt) {
			return total, ErrTimeout
		}
		// Pick the park horizon: the instant the request's in-order
		// prefix has fully arrived if the queue already holds enough
		// bytes, the whole queue's arrival if the writer has closed
		// (drain, then EOF), else the deadline — with pushes waking us
		// early only once the queue can complete the request. Delivery
		// is in order but jitter can reorder raw arrivals, so the
		// horizon is the *maximum* arrival over the prefix — waiting on
		// the completing segment alone could pick an instant already in
		// the past while the head segment is still in flight.
		wake := vt
		need := len(buf) - total
		queued := 0
		var arr time.Duration
		for i := p.segHead; i < len(p.segs); i++ {
			queued += len(p.segs[i].data)
			if a := p.segs[i].at; a > arr {
				arr = a
			}
			if queued >= need {
				break
			}
		}
		if queued >= need {
			if vt == noDeadline || arr < vt {
				wake = arr
			}
		} else if p.wclosed {
			if p.segHead == len(p.segs) {
				return total, io.EOF
			}
			if vt == noDeadline || arr < vt {
				wake = arr
			}
		} else {
			p.rdWant = need
		}
		p.cond.WaitVT(wake)
		p.rdWant = 0
	}
}

// freeSpace reports how many more payload bytes push would accept
// without parking on the receive-window bound; 0 once either side has
// closed. The conn layer exposes it as the write-budget probe.
func (p *pipe) freeSpace() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.rclosed || p.wclosed {
		return 0
	}
	if free := p.maxBuf - p.buffered; free > 0 {
		return free
	}
	return 0
}

// readerClosed reports whether the reader side has closed (the pipe's
// buffered count is zero forever); the accounting registry prunes on it.
func (p *pipe) readerClosed() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.rclosed
}

// closeWrite marks the writer side closed; the reader drains then gets EOF.
func (p *pipe) closeWrite() {
	p.mu.Lock()
	p.wclosed = true
	p.armSinkLocked()
	p.mu.Unlock()
	p.cond.Broadcast()
}

// closeRead marks the reader side closed; pending data is dropped and
// subsequent writes fail with ErrReset.
func (p *pipe) closeRead() {
	p.mu.Lock()
	p.rclosed = true
	for i := p.segHead; i < len(p.segs); i++ {
		putSegBuf(p.segs[i].pool, p.segs[i].base)
	}
	p.segs = nil
	p.segHead = 0
	p.acct.addDropped(p.buffered)
	p.buffered = 0
	p.armSinkLocked()
	p.mu.Unlock()
	p.cond.Broadcast()
}
