package netem

import (
	"bytes"
	"io"
	"testing"
	"testing/quick"
	"time"

	"ptperf/internal/geo"
)

// testNetwork builds a two-host network with a fast clock for tests.
func testNetwork(t *testing.T) (*Network, *Host, *Host) {
	t.Helper()
	n := New(WithTimeScale(0.0005), WithSeed(7))
	a := n.MustAddHost(HostConfig{Name: "a", Location: geo.London})
	b := n.MustAddHost(HostConfig{Name: "b", Location: geo.Frankfurt})
	return n, a, b
}

func TestDialRefused(t *testing.T) {
	_, a, _ := testNetwork(t)
	if _, err := a.Dial("b:80"); err == nil {
		t.Fatal("expected connection refused")
	}
	if _, err := a.Dial("nohost:80"); err == nil {
		t.Fatal("expected no such host")
	}
	if _, err := a.Dial("garbage"); err == nil {
		t.Fatal("expected bad address")
	}
}

func TestRoundTripBytes(t *testing.T) {
	n, a, b := testNetwork(t)
	l, err := b.Listen(80)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	msg := bytes.Repeat([]byte("payload-"), 1000)
	n.Go(func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		buf, _ := io.ReadAll(c)
		c.Write(buf) // echo
		c.(*Conn).CloseWrite()
	})

	c, err := a.Dial("b:80")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write(msg); err != nil {
		t.Fatal(err)
	}
	c.(*Conn).CloseWrite()
	got, err := io.ReadAll(c)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("echo mismatch: got %d bytes want %d", len(got), len(msg))
	}
}

func TestLatencyAccounting(t *testing.T) {
	n, a, b := testNetwork(t)
	l, _ := b.Listen(80)
	defer l.Close()
	n.Go(func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		buf := make([]byte, 1)
		c.Read(buf)
		c.Write(buf)
	})

	start := n.Now()
	c, err := a.Dial("b:80")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	dialTime := n.Since(start)
	rtt := geo.RTT(geo.London, geo.Frankfurt)
	if dialTime < rtt {
		t.Fatalf("dial took %v virtual, want >= one RTT %v", dialTime, rtt)
	}

	start = n.Now()
	c.Write([]byte{1})
	buf := make([]byte, 1)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatal(err)
	}
	echo := n.Since(start)
	if echo < rtt {
		t.Fatalf("echo took %v virtual, want >= RTT %v", echo, rtt)
	}
	if echo > 40*rtt {
		t.Fatalf("echo took %v virtual, implausibly long vs RTT %v", echo, rtt)
	}
}

func TestBandwidthContention(t *testing.T) {
	// Two flows sharing one egress bucket should each see roughly half
	// the capacity (the guard-load mechanism).
	n := New(WithTimeScale(0.0005), WithSeed(3))
	src := n.MustAddHost(HostConfig{Name: "src", Location: geo.London, UplinkBps: 2 << 20})
	dst := n.MustAddHost(HostConfig{Name: "dst", Location: geo.London})
	l, _ := dst.Listen(80)
	defer l.Close()

	const payload = 512 << 10
	recv := func() time.Duration {
		c, err := l.Accept()
		if err != nil {
			return 0
		}
		defer c.Close()
		start := n.Now()
		io.Copy(io.Discard, c)
		return n.Since(start)
	}
	wg := NewWaitGroup(n.Clock())
	durs := make([]time.Duration, 2)
	for i := 0; i < 2; i++ {
		i := i
		wg.Add(1)
		n.Go(func() {
			defer wg.Done()
			durs[i] = recv()
		})
	}
	send := func() {
		c, err := src.Dial("dst:80")
		if err != nil {
			t.Error(err)
			return
		}
		c.Write(make([]byte, payload))
		c.Close()
	}
	sg := NewWaitGroup(n.Clock())
	for i := 0; i < 2; i++ {
		sg.Add(1)
		n.Go(func() { defer sg.Done(); send() })
	}
	sg.Wait()
	wg.Wait()

	// One 512 KiB flow alone takes 0.25 s virtual at 2 MB/s; two sharing
	// should each take close to 0.5 s.
	for i, d := range durs {
		if d < 300*time.Millisecond {
			t.Fatalf("flow %d finished in %v, too fast for contended link", i, d)
		}
	}
}

func TestUtilizationReducesRate(t *testing.T) {
	busy := NewBucket(1<<20, 0.75)
	idle := NewBucket(1<<20, 0)
	nb := busy.Reserve(0, 1<<20)
	ni := idle.Reserve(0, 1<<20)
	if nb <= ni*3 {
		t.Fatalf("75%% utilized link should be ~4x slower: busy=%v idle=%v", nb, ni)
	}
}

func TestDeadline(t *testing.T) {
	n, a, b := testNetwork(t)
	l, _ := b.Listen(80)
	defer l.Close()
	n.Go(func() {
		c, _ := l.Accept()
		if c != nil {
			// Never respond: park in a read that no data resolves.
			c.Read(make([]byte, 1))
			c.Close()
		}
	})
	c, err := a.Dial("b:80")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetReadDeadline(n.VirtualDeadline(20 * time.Millisecond))
	buf := make([]byte, 1)
	_, err = c.Read(buf)
	ne, ok := err.(interface{ Timeout() bool })
	if !ok || !ne.Timeout() {
		t.Fatalf("want timeout error, got %v", err)
	}
}

// TestDeadlineRejectsWallClock pins the runtime backstop behind the
// simlint wallclock rule: a wall-clock instant handed to a deadline
// setter (the time.Now().Add(d) idiom) decodes ~74 years before Epoch
// and must be rejected with a diagnosable error instead of being
// stored as an already-expired virtual deadline. A fixed 2026 date
// stands in for time.Now(), which is itself banned in this package.
func TestDeadlineRejectsWallClock(t *testing.T) {
	n, a, b := testNetwork(t)
	l, _ := b.Listen(80)
	defer l.Close()
	n.Go(func() {
		if c, _ := l.Accept(); c != nil {
			c.Read(make([]byte, 1))
			c.Close()
		}
	})
	c, err := a.Dial("b:80")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	wall := time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC).Add(5 * time.Second)
	for _, set := range []func(time.Time) error{c.SetDeadline, c.SetReadDeadline, c.SetWriteDeadline} {
		if err := set(wall); err == nil {
			t.Fatal("wall-clock deadline accepted; want rejection naming netem.Epoch")
		}
	}
	// The rejected deadline must not have been stored: a legitimate
	// virtual deadline set afterwards still governs the read.
	if err := c.SetReadDeadline(n.VirtualDeadline(20 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	_, err = c.Read(make([]byte, 1))
	ne, ok := err.(interface{ Timeout() bool })
	if !ok || !ne.Timeout() {
		t.Fatalf("want timeout error, got %v", err)
	}
	// Zero time (clear the deadline) stays legal.
	if err := c.SetReadDeadline(time.Time{}); err != nil {
		t.Fatal(err)
	}
}

func TestCloseSemantics(t *testing.T) {
	n, a, b := testNetwork(t)
	l, _ := b.Listen(80)
	defer l.Close()
	srv := NewChan[*Conn](n.Clock(), 2)
	n.Go(func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			srv.Send(c.(*Conn))
		}
	})
	c, err := a.Dial("b:80")
	if err != nil {
		t.Fatal(err)
	}
	s, _ := srv.Recv()
	c.Write([]byte("hi"))
	c.Close()
	buf := make([]byte, 16)
	nr, _ := io.ReadFull(s, buf[:2])
	if nr != 2 {
		t.Fatalf("peer should read buffered data after close, got %d", nr)
	}
	if _, err := s.Read(buf); err != io.EOF {
		t.Fatalf("want EOF after close, got %v", err)
	}
	if _, err := c.Write([]byte("x")); err == nil {
		t.Fatal("write on closed conn should fail")
	}
	// Abort drops everything.
	c2, err := a.Dial("b:80")
	if err != nil {
		t.Fatal(err)
	}
	s2, _ := srv.Recv()
	c2.(*Conn).Abort()
	if _, err := s2.Write(make([]byte, 1<<20)); err == nil {
		t.Fatal("write to aborted peer should eventually fail")
	}
}

func TestBucketMonotonic(t *testing.T) {
	b := NewBucket(1<<20, 0)
	f := func(sizes []uint16) bool {
		var prev time.Duration
		now := time.Duration(0)
		for _, s := range sizes {
			done := b.Reserve(now, int(s))
			if done < prev || done < now {
				return false
			}
			prev = done
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEphemeralPortsUnique(t *testing.T) {
	_, a, _ := testNetwork(t)
	seen := map[int]bool{}
	for i := 0; i < 100; i++ {
		p := a.ephemeral()
		if seen[p] {
			t.Fatalf("duplicate ephemeral port %d", p)
		}
		seen[p] = true
	}
}

func TestListenDuplicatePort(t *testing.T) {
	_, a, _ := testNetwork(t)
	if _, err := a.Listen(81); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Listen(81); err == nil {
		t.Fatal("duplicate listen should fail")
	}
}
