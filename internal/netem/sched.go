package netem

import (
	"container/heap"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// This file implements the discrete-event scheduler that is the time
// substrate of the simulation (see DESIGN.md). Virtual time does not
// track wall time at all: it only moves when every registered simulation
// goroutine is parked in a scheduler wait, at which point the clock
// jumps straight to the earliest pending timer and wakes its owner. A
// campaign therefore runs as fast as the CPU can execute it, and —
// because exactly one simulation goroutine executes at a time and all
// wake-ups are ordered deterministically — identical seeds produce
// bit-identical results.

// Epoch anchors the time.Time encoding of virtual deadlines: a virtual
// instant vt is encoded as Epoch.Add(vt). It is deliberately placed far
// in the future so that a stray wall-clock deadline (time.Now().Add(d))
// decodes as "already expired" and fails fast instead of hanging.
var Epoch = time.Date(2100, 1, 1, 0, 0, 0, 0, time.UTC)

// noDeadline marks waits without a timeout.
const noDeadline = time.Duration(-1)

// waiter is one parked simulation goroutine (or one not-yet-started
// goroutine queued by Go). Waiters are pooled: wake-up is a send on a
// reusable buffered channel rather than a close, and every structure
// holding a waiter (ready queue, timer heap, cond wait lists) drops its
// reference before the wake-up send, so the woken goroutine can recycle
// it.
type waiter struct {
	// ch receives the run-token hand-over; buffered so the dispatcher
	// never blocks.
	ch chan struct{}
	// at is the virtual wake-up time when timed.
	at    time.Duration
	timed bool
	// seq breaks timer ties deterministically (FIFO).
	seq uint64
	// woken marks a waiter already moved to the ready queue or fired.
	woken bool
	// heapIndex is the waiter's position in the timer heap, -1 when
	// not enqueued. Eager removal on wake keeps the heap from
	// accumulating stale entries (a bulk transfer parks millions of
	// times and most waits are resolved by broadcasts, not timers).
	heapIndex int
	// cond is the wait list holding this waiter, if any; a timer fire
	// removes the waiter from it eagerly.
	cond *Cond
	// timedOut reports, after wake-up, that the timer (not a
	// broadcast) fired. Written under the scheduler lock before the
	// wake-up send, read only after it.
	timedOut bool
	// fn, when non-nil, marks this timer entry as an inline event: when
	// it reaches the head of the timer heap the dispatcher runs fn on
	// its own stack instead of waking a goroutine. See Clock.EventAt.
	fn func()
}

// waiterPool recycles waiters; a campaign parks millions of times.
var waiterPool = sync.Pool{
	New: func() any { return &waiter{ch: make(chan struct{}, 1), heapIndex: -1} },
}

// release returns a woken waiter to the pool.
func (w *waiter) release() {
	w.timed = false
	w.woken = false
	w.timedOut = false
	w.cond = nil
	w.fn = nil
	w.heapIndex = -1
	waiterPool.Put(w)
}

// timerHeap orders waiters by (at, seq).
type timerHeap []*waiter

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h timerHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].heapIndex = i
	h[j].heapIndex = j
}
func (h *timerHeap) Push(x any) {
	w := x.(*waiter)
	w.heapIndex = len(*h)
	*h = append(*h, w)
}
func (h *timerHeap) Pop() any {
	old := *h
	n := len(old)
	w := old[n-1]
	old[n-1] = nil
	w.heapIndex = -1
	*h = old[:n-1]
	return w
}

// Clock is the discrete-event scheduler shared by one Network. The name
// is historical: it still answers Now, but it also owns the registry of
// simulation goroutines and the event queue that drives virtual time.
//
// The creating goroutine is implicitly registered as the driver; every
// other goroutine participating in the simulation must be spawned via
// Go. Exactly one registered goroutine executes at any moment; the rest
// are parked in scheduler waits (Sleep, Cond, Chan, Mutex, WaitGroup or
// the conn/pipe operations built on them).
type Clock struct {
	mu sync.Mutex
	// now mirrors the current virtual time; it is written only under mu
	// but read lock-free by Now (measurement code calls it constantly).
	now atomic.Int64
	seq uint64
	// active counts registered goroutines currently holding execution
	// rights (1 while the simulation runs, 0 while time advances).
	active int
	// registered counts live simulation goroutines, including the
	// creator.
	registered int
	// ready is the FIFO run queue of woken-but-not-yet-running
	// goroutines. It is a head-indexed ring slice: dispatch advances
	// readyHead instead of re-slicing, so a long campaign reuses one
	// backing array instead of forcing append to reallocate every time
	// the queue refills (the old ready[1:] idiom leaked capacity and
	// showed up as ~5% of all allocations in a contention sweep).
	ready     []*waiter
	readyHead int
	timers    timerHeap
}

// NewClock returns a fresh scheduler. The scale argument is accepted
// for compatibility with the retired wall-clock implementation and is
// ignored: the discrete-event clock always runs as fast as the CPU.
func NewClock(scale float64) *Clock {
	_ = scale
	return &Clock{active: 1, registered: 1}
}

// Scale reports 0: virtual time no longer has a wall-clock ratio.
func (c *Clock) Scale() float64 { return 0 }

// Now returns the current virtual time as an offset from clock start.
func (c *Clock) Now() time.Duration {
	return time.Duration(c.now.Load())
}

// Registered reports the number of live simulation goroutines (including
// the driver). The invariant suite samples it at quiescent points to
// detect goroutine leaks: a campaign that spawns per-transfer goroutines
// must see them exit once its conns are closed and drained.
func (c *Clock) Registered() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.registered
}

// nowLocked reads the virtual time with the scheduler lock held.
func (c *Clock) nowLocked() time.Duration { return time.Duration(c.now.Load()) }

// newWaiter fetches a pooled waiter; the scheduler lock must be held.
func (c *Clock) newWaiter() *waiter {
	c.seq++
	w := waiterPool.Get().(*waiter)
	w.seq = c.seq
	return w
}

// park releases the caller's run token and blocks until the dispatcher
// hands it back, then recycles the waiter and reports whether its timer
// fired. The scheduler lock must be held; park unlocks it.
func (c *Clock) park(w *waiter) (timedOut bool) {
	c.active--
	if c.active < 0 {
		c.mu.Unlock()
		panic("netem: scheduler wait from an unregistered goroutine — spawn simulation goroutines with Clock.Go")
	}
	c.dispatchLocked()
	c.mu.Unlock()
	<-w.ch
	timedOut = w.timedOut
	w.release()
	return timedOut
}

// readyLen reports the number of queued runnable goroutines.
func (c *Clock) readyLen() int { return len(c.ready) - c.readyHead }

// dispatchLocked hands the run token to the next goroutine: first the
// ready queue (work at the current virtual time), then the earliest
// timer (advancing the clock). Inline events (EventAt) encountered at
// the head of the timer heap are executed on the calling goroutine's
// stack — the scheduler lock is dropped around the callback and the
// loop continues, so a burst of data-plane events costs zero goroutine
// switches. Called with the scheduler lock held and active == 0, or as
// a no-op when another goroutine still runs.
func (c *Clock) dispatchLocked() {
	for c.active == 0 {
		if c.readyLen() > 0 {
			w := c.ready[c.readyHead]
			c.ready[c.readyHead] = nil
			c.readyHead++
			if c.readyHead == len(c.ready) {
				c.ready = c.ready[:0]
				c.readyHead = 0
			}
			c.active++
			w.ch <- struct{}{}
			return
		}
		if c.timers.Len() > 0 {
			w := heap.Pop(&c.timers).(*waiter)
			if w.at > c.nowLocked() {
				c.now.Store(int64(w.at))
			}
			if w.fn != nil {
				fn := w.fn
				w.release()
				// Run the event with the scheduler unlocked so it can
				// use Try* primitives, ready goroutines, or arm further
				// events. active is still 0: event callbacks are not
				// simulation goroutines and must never park (a park
				// panics as an unregistered-goroutine wait).
				c.mu.Unlock()
				fn()
				c.mu.Lock()
				continue
			}
			w.woken = true
			w.timedOut = true
			if w.cond != nil {
				w.cond.remove(w)
				w.cond = nil
			}
			c.active++
			w.ch <- struct{}{}
			return
		}
		if c.registered > 0 {
			panic(fmt.Sprintf(
				"netem: deadlock — all %d simulation goroutines are blocked with no pending timers at virtual t=%v",
				c.registered, c.nowLocked()))
		}
		return
	}
}

// readyLocked appends a waiter to the run queue, removing any pending
// timer entry. The scheduler lock must be held.
func (c *Clock) readyLocked(w *waiter) {
	if w.woken {
		return
	}
	w.woken = true
	if w.heapIndex >= 0 {
		heap.Remove(&c.timers, w.heapIndex)
	}
	c.ready = append(c.ready, w)
}

// Go spawns fn as a registered simulation goroutine. The child does not
// run immediately: it is queued and starts when the current goroutine
// next parks, which keeps execution order deterministic.
func (c *Clock) Go(fn func()) {
	c.mu.Lock()
	w := c.newWaiter()
	c.registered++
	c.readyLocked(w)
	c.mu.Unlock()
	//simlint:allow rawgo -- Clock.Go is the one place sim goroutines are minted; the waiter is registered under the scheduler lock above, before the OS goroutine starts.
	go func() {
		<-w.ch
		w.release()
		defer c.exit()
		fn()
	}()
}

// exit retires a goroutine spawned by Go.
func (c *Clock) exit() {
	c.mu.Lock()
	c.registered--
	c.active--
	c.dispatchLocked()
	c.mu.Unlock()
}

// Sleep pauses the calling goroutine for a virtual duration. No real
// time passes: the clock jumps when every other goroutine is parked.
func (c *Clock) Sleep(v time.Duration) {
	if v <= 0 {
		return
	}
	c.mu.Lock()
	c.sleepUntilLocked(c.nowLocked() + v)
}

// SleepUntil pauses until the virtual clock reaches vt.
func (c *Clock) SleepUntil(vt time.Duration) {
	c.mu.Lock()
	if vt <= c.nowLocked() {
		c.mu.Unlock()
		return
	}
	c.sleepUntilLocked(vt)
}

// sleepUntilLocked suspends the caller until virtual time vt; the
// scheduler lock must be held and is released.
func (c *Clock) sleepUntilLocked(vt time.Duration) {
	// Fast path: if nothing else can run before vt — no ready
	// goroutines, no earlier (or equal, which would win the seq
	// tie-break) timer or event — advance the clock in place and keep
	// running. Lockstep protocol chains hit this constantly; it saves
	// the full park/dispatch/goroutine-switch round trip.
	if c.active == 1 && c.readyLen() == 0 &&
		(c.timers.Len() == 0 || c.timers[0].at > vt) {
		c.now.Store(int64(vt))
		c.mu.Unlock()
		return
	}
	w := c.newWaiter()
	w.at = vt
	w.timed = true
	heap.Push(&c.timers, w)
	c.park(w)
}

// EventAt schedules fn to run when virtual time reaches vt (or at the
// current instant, if vt has already passed). The callback executes
// inline on whichever goroutine is dispatching at that moment — no
// goroutine is spawned or unparked for it — which makes it the cheap
// way to model pure data-plane events: segment deliveries, paced flush
// passes, SYN arrivals. Ordering is deterministic: events and timers
// share one heap ordered by (at, seq), so two events at the same
// instant fire in registration order.
//
// Contract: fn runs with no scheduler state held and must never park.
// Use the non-parking primitives (TrySend, Mutex.TryLock,
// Conn.TryWriteOwned, Clock.Go, EventAt) inside callbacks; any parking
// wait panics as an unregistered-goroutine wait.
func (c *Clock) EventAt(vt time.Duration, fn func()) {
	c.mu.Lock()
	w := c.newWaiter()
	if now := c.nowLocked(); vt < now {
		vt = now
	}
	w.at = vt
	w.timed = true
	w.fn = fn
	heap.Push(&c.timers, w)
	c.mu.Unlock()
}

// VirtualDeadline converts a virtual timeout (from now) into the
// time.Time encoding used by net.Conn deadlines.
func (c *Clock) VirtualDeadline(v time.Duration) time.Time {
	return Epoch.Add(c.Now() + v)
}

// DeadlineVT decodes a net.Conn deadline into a virtual instant.
// ok is false for the zero time (no deadline).
func DeadlineVT(t time.Time) (vt time.Duration, ok bool) {
	if t.IsZero() {
		return 0, false
	}
	return t.Sub(Epoch), true
}

// Expired reports whether an encoded deadline has passed on the virtual
// clock.
func (c *Clock) Expired(t time.Time) bool {
	vt, ok := DeadlineVT(t)
	return ok && c.Now() >= vt
}
