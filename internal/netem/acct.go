package netem

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
)

// This file is the link-layer accounting substrate the simulation-torture
// suite (internal/simtest) audits worlds with. Every network keeps an
// Acct that counts dials, flows and the bytes entering and leaving its
// pipes; a Snapshot taken at a quiescent point must satisfy byte
// conservation — everything written into the network was delivered,
// dropped at a reader close, or is still buffered in flight. The
// buffered term is summed independently from the live pipes, so the
// counters and the pipe state cross-check each other: any code path
// that loses or double-counts a segment breaks the equation.

// Acct aggregates one network's link-layer counters. All fields are
// updated from simulation goroutines; Snapshot is consistent when taken
// while the simulation is quiescent (every other simulation goroutine
// parked), which is how the invariant checkers use it.
type Acct struct {
	dials            atomic.Int64
	dialsRefused     atomic.Int64
	connsOpened      atomic.Int64
	connsClosed      atomic.Int64
	segmentsSent     atomic.Int64
	segmentsFiltered atomic.Int64
	bytesSent        atomic.Int64
	bytesDelivered   atomic.Int64
	bytesDropped     atomic.Int64

	// Relay-cell scheduler counters (maintained by internal/tor): every
	// cell accepted into a per-circuit output queue is later either
	// flushed to its link or dropped at circuit teardown.
	cellsQueued  atomic.Int64
	cellsFlushed atomic.Int64
	cellsDropped atomic.Int64

	mu    sync.Mutex
	pipes []*pipe
	conns []*Conn
}

// AcctSnapshot is a point-in-time copy of a network's accounting.
type AcctSnapshot struct {
	// Dials counts connection attempts that resolved an address and a
	// listener (i.e. reached the policy/establishment phase).
	Dials int64
	// DialsRefused counts dials refused by the installed policy.
	DialsRefused int64
	// ConnsOpened counts established conn endpoints (two per flow).
	ConnsOpened int64
	// ConnsClosed counts conn endpoints closed or aborted.
	ConnsClosed int64
	// SegmentsSent counts segments accepted into pipes.
	SegmentsSent int64
	// SegmentsFiltered counts policy FilterSegment consultations.
	SegmentsFiltered int64
	// BytesSent counts payload bytes accepted into pipes.
	BytesSent int64
	// BytesDelivered counts payload bytes read out of pipes.
	BytesDelivered int64
	// BytesDropped counts buffered bytes discarded by reader closes.
	BytesDropped int64
	// BytesBuffered sums the live pipes' in-flight bytes. It is computed
	// from the pipes themselves, not derived from the other counters —
	// that independence is what makes ConservationErr a real check.
	BytesBuffered int64
	// CellsQueued counts relay cells accepted into per-circuit output
	// queues (the tor relay scheduler's intake).
	CellsQueued int64
	// CellsFlushed counts queued cells written to their links.
	CellsFlushed int64
	// CellsDropped counts queued cells discarded at circuit teardown.
	CellsDropped int64
}

// nil-safe counter helpers: conns built outside a network carry no Acct.

func (a *Acct) addDial(refused bool) {
	if a == nil {
		return
	}
	a.dials.Add(1)
	if refused {
		a.dialsRefused.Add(1)
	}
}

func (a *Acct) addConnsOpened(n int64) {
	if a != nil {
		a.connsOpened.Add(n)
	}
}

func (a *Acct) addConnClosed() {
	if a != nil {
		a.connsClosed.Add(1)
	}
}

func (a *Acct) addSegmentFiltered() {
	if a != nil {
		a.segmentsFiltered.Add(1)
	}
}

func (a *Acct) addSent(n int) {
	if a != nil {
		a.segmentsSent.Add(1)
		a.bytesSent.Add(int64(n))
	}
}

func (a *Acct) addDelivered(n int) {
	if a != nil {
		a.bytesDelivered.Add(int64(n))
	}
}

func (a *Acct) addDropped(n int) {
	if a != nil && n > 0 {
		a.bytesDropped.Add(int64(n))
	}
}

// AddCellsQueued counts relay cells accepted into scheduler queues.
// Exported (with its Flushed/Dropped siblings) because the queues live
// in internal/tor while the conservation audit lives here.
func (a *Acct) AddCellsQueued(n int64) {
	if a != nil {
		a.cellsQueued.Add(n)
	}
}

// AddCellsFlushed counts queued relay cells written to their links.
func (a *Acct) AddCellsFlushed(n int64) {
	if a != nil {
		a.cellsFlushed.Add(n)
	}
}

// AddCellsDropped counts queued relay cells discarded at teardown.
func (a *Acct) AddCellsDropped(n int64) {
	if a != nil && n > 0 {
		a.cellsDropped.Add(n)
	}
}

// registerConn adds a conn to the leak-diagnostic registry. The
// registry self-prunes once closed conns dominate (same scheme as the
// censor's flow registry), so a long campaign holds O(live), not
// O(ever-created), conns.
func (a *Acct) registerConn(c *Conn) {
	if a == nil {
		return
	}
	a.mu.Lock()
	if len(a.conns) >= 64 && len(a.conns)%64 == 0 {
		live := a.conns[:0]
		for _, cn := range a.conns {
			if !cn.Closed() {
				live = append(live, cn)
			}
		}
		for i := len(live); i < len(a.conns); i++ {
			a.conns[i] = nil
		}
		a.conns = live
	}
	a.conns = append(a.conns, c)
	a.mu.Unlock()
}

// OpenConnAddrs lists the "local→remote" endpoints of every conn not
// yet closed, in creation order — the leak checkers' diagnostic for
// naming exactly which flows outlived a campaign.
func (a *Acct) OpenConnAddrs() []string {
	a.mu.Lock()
	conns := a.conns
	a.mu.Unlock()
	var out []string
	for _, c := range conns {
		if !c.Closed() {
			out = append(out, c.local.host+"→"+c.remote.host)
		}
	}
	return out
}

// AbortHostConns aborts every open conn with an endpoint on the named
// host — the connection-level blast radius of a machine crash or link
// cut. Conns are visited in creation order, so the teardown sequence is
// deterministic on the virtual clock. Returns the number aborted.
func (a *Acct) AbortHostConns(host string) int {
	a.mu.Lock()
	conns := append([]*Conn(nil), a.conns...)
	a.mu.Unlock()
	prefix := host + ":"
	n := 0
	for _, c := range conns {
		if c.Closed() {
			continue
		}
		if strings.HasPrefix(c.local.host, prefix) || strings.HasPrefix(c.remote.host, prefix) {
			c.Abort()
			n++
		}
	}
	return n
}

// registerPipe adds a pipe to the registry the buffered sum walks.
// Pipes whose reader has closed are pruned on the same cadence as the
// conn registry: their buffered count is zero and can never grow again,
// so dropping them changes no snapshot.
func (a *Acct) registerPipe(p *pipe) {
	if a == nil {
		return
	}
	a.mu.Lock()
	if len(a.pipes) >= 64 && len(a.pipes)%64 == 0 {
		live := a.pipes[:0]
		for _, lp := range a.pipes {
			if !lp.readerClosed() {
				live = append(live, lp)
			}
		}
		for i := len(live); i < len(a.pipes); i++ {
			a.pipes[i] = nil
		}
		a.pipes = live
	}
	a.pipes = append(a.pipes, p)
	a.mu.Unlock()
}

// Snapshot copies the counters and sums the live pipes' buffered bytes.
// Call it from the driver goroutine at a quiescent point (no other
// simulation goroutine running) for a consistent view.
func (a *Acct) Snapshot() AcctSnapshot {
	s := AcctSnapshot{
		Dials:            a.dials.Load(),
		DialsRefused:     a.dialsRefused.Load(),
		ConnsOpened:      a.connsOpened.Load(),
		ConnsClosed:      a.connsClosed.Load(),
		SegmentsSent:     a.segmentsSent.Load(),
		SegmentsFiltered: a.segmentsFiltered.Load(),
		BytesSent:        a.bytesSent.Load(),
		BytesDelivered:   a.bytesDelivered.Load(),
		BytesDropped:     a.bytesDropped.Load(),
		CellsQueued:      a.cellsQueued.Load(),
		CellsFlushed:     a.cellsFlushed.Load(),
		CellsDropped:     a.cellsDropped.Load(),
	}
	a.mu.Lock()
	pipes := a.pipes
	a.mu.Unlock()
	for _, p := range pipes {
		p.mu.Lock()
		s.BytesBuffered += int64(p.buffered)
		p.mu.Unlock()
	}
	return s
}

// OpenConns reports flows opened and not yet closed.
func (s AcctSnapshot) OpenConns() int64 { return s.ConnsOpened - s.ConnsClosed }

// Sub returns the per-counter delta s − prev for two snapshots of the
// same Acct, prev taken earlier. Every counter field is monotone, so a
// negative delta can only mean the snapshots were swapped or belong to
// different networks: Sub clamps such fields to zero (an interval
// series must never go negative) and reports how many fields it had to
// clamp — the caller treats a non-zero count as a bug, not as data.
// BytesBuffered is a gauge, not a counter: the delta carries s's value
// unchanged and it never counts toward regressions.
func (s AcctSnapshot) Sub(prev AcctSnapshot) (AcctSnapshot, int) {
	regressions := 0
	sub := func(cur, old int64) int64 {
		if cur < old {
			regressions++
			return 0
		}
		return cur - old
	}
	d := AcctSnapshot{
		Dials:            sub(s.Dials, prev.Dials),
		DialsRefused:     sub(s.DialsRefused, prev.DialsRefused),
		ConnsOpened:      sub(s.ConnsOpened, prev.ConnsOpened),
		ConnsClosed:      sub(s.ConnsClosed, prev.ConnsClosed),
		SegmentsSent:     sub(s.SegmentsSent, prev.SegmentsSent),
		SegmentsFiltered: sub(s.SegmentsFiltered, prev.SegmentsFiltered),
		BytesSent:        sub(s.BytesSent, prev.BytesSent),
		BytesDelivered:   sub(s.BytesDelivered, prev.BytesDelivered),
		BytesDropped:     sub(s.BytesDropped, prev.BytesDropped),
		BytesBuffered:    s.BytesBuffered,
		CellsQueued:      sub(s.CellsQueued, prev.CellsQueued),
		CellsFlushed:     sub(s.CellsFlushed, prev.CellsFlushed),
		CellsDropped:     sub(s.CellsDropped, prev.CellsDropped),
	}
	return d, regressions
}

// Add returns the element-wise sum of two snapshots' counters; the
// BytesBuffered gauge takes o's (the later interval's) value. It is
// Sub's inverse over a sample series: summing every interval delta
// reconstructs the final cumulative snapshot.
func (s AcctSnapshot) Add(o AcctSnapshot) AcctSnapshot {
	return AcctSnapshot{
		Dials:            s.Dials + o.Dials,
		DialsRefused:     s.DialsRefused + o.DialsRefused,
		ConnsOpened:      s.ConnsOpened + o.ConnsOpened,
		ConnsClosed:      s.ConnsClosed + o.ConnsClosed,
		SegmentsSent:     s.SegmentsSent + o.SegmentsSent,
		SegmentsFiltered: s.SegmentsFiltered + o.SegmentsFiltered,
		BytesSent:        s.BytesSent + o.BytesSent,
		BytesDelivered:   s.BytesDelivered + o.BytesDelivered,
		BytesDropped:     s.BytesDropped + o.BytesDropped,
		BytesBuffered:    o.BytesBuffered,
		CellsQueued:      s.CellsQueued + o.CellsQueued,
		CellsFlushed:     s.CellsFlushed + o.CellsFlushed,
		CellsDropped:     s.CellsDropped + o.CellsDropped,
	}
}

// ConservationErr checks the snapshot's byte- and flow-conservation
// equations, returning a descriptive error on the first violation.
func (s AcctSnapshot) ConservationErr() error {
	if got := s.BytesDelivered + s.BytesDropped + s.BytesBuffered; got != s.BytesSent {
		return fmt.Errorf("netem: byte conservation violated: sent=%d but delivered=%d + dropped=%d + buffered=%d = %d",
			s.BytesSent, s.BytesDelivered, s.BytesDropped, s.BytesBuffered, got)
	}
	if s.ConnsClosed > s.ConnsOpened {
		return fmt.Errorf("netem: flow accounting violated: closed=%d > opened=%d", s.ConnsClosed, s.ConnsOpened)
	}
	if s.DialsRefused > s.Dials {
		return fmt.Errorf("netem: dial accounting violated: refused=%d > dials=%d", s.DialsRefused, s.Dials)
	}
	if s.BytesSent < 0 || s.BytesDelivered < 0 || s.BytesDropped < 0 || s.BytesBuffered < 0 {
		return fmt.Errorf("netem: negative byte counter: %+v", s)
	}
	return nil
}

// CellConservationErr checks the relay-cell scheduler equation: at a
// drained point (no circuit holds queued cells) every cell that entered
// a per-circuit output queue must have been flushed to its link or
// dropped at teardown. Unlike ConservationErr this only holds once the
// queues are empty, so it is a separate check the invariant suite
// applies after the drain sleep.
func (s AcctSnapshot) CellConservationErr() error {
	if s.CellsQueued < 0 || s.CellsFlushed < 0 || s.CellsDropped < 0 {
		return fmt.Errorf("netem: negative cell counter: queued=%d flushed=%d dropped=%d",
			s.CellsQueued, s.CellsFlushed, s.CellsDropped)
	}
	if got := s.CellsFlushed + s.CellsDropped; got != s.CellsQueued {
		return fmt.Errorf("netem: cell conservation violated: queued=%d but flushed=%d + dropped=%d = %d",
			s.CellsQueued, s.CellsFlushed, s.CellsDropped, got)
	}
	return nil
}

// Acct returns the network's accounting.
func (n *Network) Acct() *Acct { return &n.acct }
