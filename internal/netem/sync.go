package netem

import (
	"container/heap"
	"sync"
	"sync/atomic"
	"time"
)

// Scheduler-aware synchronization primitives. Simulation goroutines must
// never block in plain channel operations, sync.Cond waits or contended
// mutexes that are held across virtual-time waits: the scheduler cannot
// see those blocks, so it would either stall or advance time while work
// is still pending. These types report their blocked/runnable
// transitions to the Clock instead.

// Cond is a condition variable whose Wait parks the goroutine in the
// scheduler, optionally bounded by a virtual-time deadline. Like
// sync.Cond, the caller must hold L around Wait and state changes;
// Broadcast may be called with or without L held (holding it avoids
// missed wake-ups, as usual).
type Cond struct {
	clock *Clock
	// L is the lock guarding the condition.
	L sync.Locker
	// waiters is guarded by the scheduler lock; nwait mirrors its
	// length so Broadcast can skip the scheduler lock when nobody
	// waits (the overwhelmingly common case on hot data paths).
	waiters []*waiter
	nwait   atomic.Int32
}

// NewCond returns a Cond parking on clock, guarded by l.
func NewCond(clock *Clock, l sync.Locker) *Cond {
	return &Cond{clock: clock, L: l}
}

// Wait parks until Broadcast. L must be held; it is released while
// parked and re-acquired before returning.
func (cd *Cond) Wait() { cd.WaitVT(noDeadline) }

// WaitDeadline parks until Broadcast or until the encoded deadline
// passes on the virtual clock. It returns true if the deadline fired. A
// zero deadline means no deadline.
func (cd *Cond) WaitDeadline(t time.Time) bool {
	if vt, ok := DeadlineVT(t); ok {
		return cd.WaitVT(vt)
	}
	return cd.WaitVT(noDeadline)
}

// WaitVT parks until Broadcast or virtual time vt (noDeadline for
// none), returning true on timeout. An already-passed deadline returns
// true immediately without releasing L.
func (cd *Cond) WaitVT(vt time.Duration) bool {
	c := cd.clock
	c.mu.Lock()
	if vt != noDeadline && vt <= c.nowLocked() {
		c.mu.Unlock()
		return true
	}
	// Fast path mirroring sleepUntilLocked: a deadline wait that no
	// other goroutine can beat (nothing ready, no earlier timer) is
	// just a clock advance — the wait "times out" in place, and the
	// caller's loop re-checks its condition. This is the hot pattern
	// of a reader waiting out a segment's propagation delay.
	if vt != noDeadline && c.active == 1 && c.readyLen() == 0 &&
		(c.timers.Len() == 0 || c.timers[0].at > vt) {
		c.now.Store(int64(vt))
		c.mu.Unlock()
		return true
	}
	w := c.newWaiter()
	if vt != noDeadline {
		w.at = vt
		w.timed = true
		heap.Push(&c.timers, w)
	}
	w.cond = cd
	cd.waiters = append(cd.waiters, w)
	cd.nwait.Store(int32(len(cd.waiters)))
	// Registering under the scheduler lock is what makes the wait
	// atomic with the condition check: a Broadcast needs the scheduler
	// lock, which we hold until the waiter is listed. L itself is
	// released *before* dispatching — the dispatch below may execute
	// inline events (Clock.EventAt) that need the very lock this waiter
	// guards, e.g. a flush callback pushing into the pipe a reader is
	// parked on.
	c.active--
	if c.active < 0 {
		c.mu.Unlock()
		panic("netem: Cond.Wait from an unregistered goroutine — spawn simulation goroutines with Clock.Go")
	}
	cd.L.Unlock()
	c.dispatchLocked()
	c.mu.Unlock()
	<-w.ch
	timedOut := w.timedOut
	w.release()
	cd.L.Lock()
	return timedOut
}

// remove drops a waiter from the wait list (timer fired before any
// broadcast). Called with the scheduler lock held; lists are short.
func (cd *Cond) remove(w *waiter) {
	for i, q := range cd.waiters {
		if q == w {
			cd.waiters = append(cd.waiters[:i], cd.waiters[i+1:]...)
			cd.nwait.Store(int32(len(cd.waiters)))
			return
		}
	}
}

// WakeAt ensures every current waiter wakes no later than virtual time
// vt without readying it immediately: its wake-up becomes a timer at vt
// (or stays earlier). Waiters woken this way observe a "timeout" from
// WaitVT, so WakeAt is only for loop-recheck waits that re-evaluate
// their condition on every wake — the pipe uses it so a reader parked on
// an empty pipe wakes exactly at a pushed segment's arrival time instead
// of waking at push time just to park again until arrival.
func (cd *Cond) WakeAt(vt time.Duration) {
	if cd.nwait.Load() == 0 {
		return
	}
	c := cd.clock
	c.mu.Lock()
	for _, w := range cd.waiters {
		if w.woken || (w.timed && w.at <= vt) {
			continue
		}
		w.at = vt
		if w.timed {
			heap.Fix(&c.timers, w.heapIndex)
		} else {
			w.timed = true
			heap.Push(&c.timers, w)
		}
	}
	c.mu.Unlock()
}

// Broadcast readies every current waiter. Woken goroutines run when the
// caller next parks, in wait order.
func (cd *Cond) Broadcast() {
	if cd.nwait.Load() == 0 {
		// No one is parked. A goroutine that is merely about to park
		// registers under the scheduler lock before releasing L, and
		// every waker observes that registration, so this unlocked
		// check cannot lose a wake-up.
		return
	}
	c := cd.clock
	c.mu.Lock()
	for i, w := range cd.waiters {
		w.cond = nil
		c.readyLocked(w)
		cd.waiters[i] = nil
	}
	cd.waiters = cd.waiters[:0]
	cd.nwait.Store(0)
	c.mu.Unlock()
}

// Mutex is a scheduler-aware mutual-exclusion lock. Use it (instead of
// sync.Mutex) whenever the critical section can park in a scheduler
// wait — e.g. write paths that block on shaped-connection backpressure —
// so that contending goroutines release their run token while queued.
type Mutex struct {
	clock  *Clock
	mu     sync.Mutex
	cond   *Cond
	locked bool
}

// NewMutex returns an unlocked Mutex parking on clock.
func NewMutex(clock *Clock) *Mutex {
	m := &Mutex{clock: clock}
	m.cond = NewCond(clock, &m.mu)
	return m
}

// Lock acquires the mutex, parking in the scheduler while contended.
func (m *Mutex) Lock() {
	m.mu.Lock()
	for m.locked {
		m.cond.Wait()
	}
	m.locked = true
	m.mu.Unlock()
}

// TryLock acquires the mutex without parking; false means contended.
// It is the form event callbacks must use: a callback runs on the
// dispatching goroutine and may not release a run token it doesn't
// hold.
func (m *Mutex) TryLock() bool {
	m.mu.Lock()
	if m.locked {
		m.mu.Unlock()
		return false
	}
	m.locked = true
	m.mu.Unlock()
	return true
}

// Unlock releases the mutex.
func (m *Mutex) Unlock() {
	m.mu.Lock()
	m.locked = false
	m.mu.Unlock()
	m.cond.Broadcast()
}

// WaitGroup is a scheduler-aware sync.WaitGroup replacement.
type WaitGroup struct {
	clock *Clock
	mu    sync.Mutex
	cond  *Cond
	n     int
}

// NewWaitGroup returns a WaitGroup parking on clock.
func NewWaitGroup(clock *Clock) *WaitGroup {
	wg := &WaitGroup{clock: clock}
	wg.cond = NewCond(clock, &wg.mu)
	return wg
}

// Add adds delta to the counter.
func (wg *WaitGroup) Add(delta int) {
	wg.mu.Lock()
	wg.n += delta
	done := wg.n <= 0
	wg.mu.Unlock()
	if done {
		wg.cond.Broadcast()
	}
}

// Done decrements the counter.
func (wg *WaitGroup) Done() { wg.Add(-1) }

// Wait parks until the counter reaches zero.
func (wg *WaitGroup) Wait() {
	wg.mu.Lock()
	for wg.n > 0 {
		wg.cond.Wait()
	}
	wg.mu.Unlock()
}

// Chan is a scheduler-aware FIFO queue standing in for Go channels in
// simulation code: sends and receives that would block park in the
// scheduler instead.
type Chan[T any] struct {
	clock  *Clock
	mu     sync.Mutex
	cond   *Cond
	buf    []T
	cap    int // <= 0 means unbounded
	closed bool
}

// NewChan returns a queue with the given capacity (<= 0: unbounded).
func NewChan[T any](clock *Clock, capacity int) *Chan[T] {
	ch := &Chan[T]{clock: clock, cap: capacity}
	ch.cond = NewCond(clock, &ch.mu)
	return ch
}

// Send enqueues v, parking while the queue is full. It returns false if
// the queue is (or becomes) closed.
func (ch *Chan[T]) Send(v T) bool {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	for ch.cap > 0 && len(ch.buf) >= ch.cap && !ch.closed {
		ch.cond.Wait()
	}
	if ch.closed {
		return false
	}
	ch.buf = append(ch.buf, v)
	ch.cond.Broadcast()
	return true
}

// TrySend enqueues v without parking; false means full or closed.
func (ch *Chan[T]) TrySend(v T) bool {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	if ch.closed || (ch.cap > 0 && len(ch.buf) >= ch.cap) {
		return false
	}
	ch.buf = append(ch.buf, v)
	ch.cond.Broadcast()
	return true
}

// Recv dequeues the next value, parking while empty. ok is false when
// the queue is closed and drained.
func (ch *Chan[T]) Recv() (v T, ok bool) {
	v, ok, _ = ch.recv(noDeadline)
	return v, ok
}

// RecvTimeout is Recv bounded by a virtual duration from now.
func (ch *Chan[T]) RecvTimeout(d time.Duration) (v T, ok bool, timedOut bool) {
	return ch.recv(ch.clock.Now() + d)
}

func (ch *Chan[T]) recv(vt time.Duration) (v T, ok bool, timedOut bool) {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	for len(ch.buf) == 0 {
		if ch.closed {
			return v, false, false
		}
		if ch.cond.WaitVT(vt) {
			return v, false, true
		}
	}
	v = ch.buf[0]
	ch.buf = ch.buf[1:]
	ch.cond.Broadcast()
	return v, true, false
}

// Len reports the queued element count.
func (ch *Chan[T]) Len() int {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	return len(ch.buf)
}

// Close marks the queue closed, waking parked senders and receivers.
// Queued values remain receivable.
func (ch *Chan[T]) Close() {
	ch.mu.Lock()
	ch.closed = true
	ch.mu.Unlock()
	ch.cond.Broadcast()
}
