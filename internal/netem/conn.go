package netem

import (
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// segmentSize is the shaping granularity. Large enough that a segment's
// transmission time on a typical link exceeds the scheduler's sleep
// resolution, small enough to pipeline multi-hop transfers.
const segmentSize = 16 << 10

// Addr is a virtual network address ("host:port" on network "vnet").
type Addr struct{ host string }

// Network returns the virtual network name.
func (Addr) Network() string { return "vnet" }

func (a Addr) String() string { return a.host }

// shape holds the per-direction shaping parameters of a conn.
type shape struct {
	egress  *Bucket       // sender host egress
	ingress *Bucket       // receiver host ingress
	delay   time.Duration // one-way propagation delay
	jitter  time.Duration // max uniform extra per segment
	loss    float64       // per-segment loss-event probability
	lossPen time.Duration // penalty charged per loss event (≈RTO)
}

// Conn is a shaped virtual connection implementing net.Conn.
type Conn struct {
	net           *Network
	local, remote Addr
	tx, rx        *pipe
	out           shape

	rngMu sync.Mutex
	rng   *rand.Rand

	wmu *Mutex // serializes writers; scheduler-aware (writers park)

	dlMu sync.Mutex
	rdl  time.Time
	wdl  time.Time

	closeOnce sync.Once
	closed    atomic.Bool
	// acctOnce counts the flow's closure exactly once across Close and
	// Abort (which deliberately bypasses closeOnce).
	acctOnce sync.Once
}

// newConnPair wires two conns back to back. aOut shapes a→b traffic and
// bOut shapes b→a traffic.
func newConnPair(n *Network, aAddr, bAddr Addr, aOut, bOut shape, seed int64) (*Conn, *Conn) {
	clock := n.clock
	acct := &n.acct
	// Both endpoints count: each closes independently, so ConnsOpened
	// and ConnsClosed balance per conn, not per pair.
	acct.addConnsOpened(2)
	ab := newPipe(clock, 0, acct)
	ba := newPipe(clock, 0, acct)
	a := &Conn{net: n, local: aAddr, remote: bAddr, tx: ab, rx: ba, out: aOut,
		rng: rand.New(rand.NewSource(seed)), wmu: NewMutex(clock)}
	b := &Conn{net: n, local: bAddr, remote: aAddr, tx: ba, rx: ab, out: bOut,
		rng: rand.New(rand.NewSource(seed + 1)), wmu: NewMutex(clock)}
	acct.registerConn(a)
	acct.registerConn(b)
	return a, b
}

// Read implements net.Conn.
func (c *Conn) Read(p []byte) (int, error) {
	c.dlMu.Lock()
	dl := c.rdl
	c.dlMu.Unlock()
	for {
		n, err := c.rx.pop(p, dl)
		if n > 0 || err != nil {
			return n, err
		}
		if len(p) == 0 {
			return 0, nil
		}
	}
}

// Write implements net.Conn. Data is chunked into segments; each segment
// reserves transmission time on the sender-egress and receiver-ingress
// buckets and is delivered after the propagation delay plus jitter and
// loss penalties. The writer does not park through its own
// serialization time — the bucket's free cursor carries the pacing into
// every subsequent segment's arrival, like a kernel send buffer
// absorbing small writes — so sender-side backpressure comes from the
// receive-window bound in push. Delivery timing is identical to a
// paced writer; only the (unobserved) instant at which Write returns
// moves earlier, and each elided park halves the event count on the
// simulation's hottest path.
func (c *Conn) Write(p []byte) (int, error) {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.dlMu.Lock()
	dl := c.wdl
	c.dlMu.Unlock()

	clock := c.tx.clock
	pol := c.policy()
	written := 0
	for len(p) > 0 {
		n := len(p)
		if n > segmentSize {
			n = segmentSize
		}
		var censored time.Duration
		var shaper *Bucket
		if pol != nil {
			c.acct().addSegmentFiltered()
			v := pol.FilterSegment(Flow{Src: c.local.host, Dst: c.remote.host}, n)
			if v.Action == Reset {
				c.Abort()
				return written, ErrReset
			}
			censored = v.Extra
			shaper = v.Shaper
		}
		data, base := getSegBuf(p[:n])

		now := clock.Now()
		done := c.out.egress.Reserve(now, n)
		done = c.out.ingress.Reserve(done, n)
		if shaper != nil {
			done = shaper.Reserve(done, n)
			censored += shaper.QueueDelay()
		}
		arrival := done + c.out.delay + c.extraDelay() + censored +
			c.out.egress.QueueDelay() + c.out.ingress.QueueDelay()
		if err := c.tx.push(data, base, arrival, dl); err != nil {
			return written, err
		}
		written += n
		p = p[n:]
	}
	return written, nil
}

// WriteBudget reports how many payload bytes a Write can currently
// accept without parking on receive-window backpressure, 0 once either
// end has closed. It is a snapshot, not a reservation: concurrent
// writers can consume the space between the probe and the write, in
// which case the write simply parks as usual. Schedulers that must not
// stall head-of-line (the tor relay cell scheduler's KIST-style
// budgeting) probe it instead of issuing blind blocking writes.
func (c *Conn) WriteBudget() int {
	if c.closed.Load() {
		return 0
	}
	return c.tx.freeSpace()
}

// policy returns the network's middlebox policy, or nil for conns built
// outside a network.
func (c *Conn) policy() Policy {
	if c.net == nil {
		return nil
	}
	return c.net.policy.get()
}

// acct returns the network's accounting, or nil for conns built outside
// a network.
func (c *Conn) acct() *Acct {
	if c.net == nil {
		return nil
	}
	return &c.net.acct
}

// extraDelay draws the per-segment jitter and loss penalty.
func (c *Conn) extraDelay() time.Duration {
	if c.out.jitter <= 0 && c.out.loss <= 0 {
		return 0 // wired-to-wired links: no draws, no lock
	}
	c.rngMu.Lock()
	defer c.rngMu.Unlock()
	var d time.Duration
	if c.out.jitter > 0 {
		d += time.Duration(c.rng.Int63n(int64(c.out.jitter)))
	}
	if c.out.loss > 0 && c.rng.Float64() < c.out.loss {
		d += c.out.lossPen
	}
	return d
}

// Close implements net.Conn.
func (c *Conn) Close() error {
	c.closeOnce.Do(func() {
		c.closed.Store(true)
		c.tx.closeWrite()
		c.rx.closeRead()
		c.acctOnce.Do(func() { c.acct().addConnClosed() })
	})
	return nil
}

// CloseWrite half-closes the sending direction, like TCP shutdown(WR).
func (c *Conn) CloseWrite() error {
	c.tx.closeWrite()
	return nil
}

// Abort tears the connection down as a mid-transfer failure: the peer's
// pending data is dropped and both directions error out. Failure-injection
// models (snowflake proxy churn, meek session budgets) use this.
func (c *Conn) Abort() {
	c.closed.Store(true)
	c.tx.closeWrite()
	c.tx.closeRead()
	c.rx.closeRead()
	c.acctOnce.Do(func() { c.acct().addConnClosed() })
}

// Closed reports whether Close or Abort has been called; policies use
// it to prune their flow registries.
func (c *Conn) Closed() bool { return c.closed.Load() }

// LocalAddr implements net.Conn.
func (c *Conn) LocalAddr() net.Addr { return c.local }

// RemoteAddr implements net.Conn.
func (c *Conn) RemoteAddr() net.Addr { return c.remote }

// SetDeadline implements net.Conn.
func (c *Conn) SetDeadline(t time.Time) error {
	c.dlMu.Lock()
	c.rdl, c.wdl = t, t
	c.dlMu.Unlock()
	return nil
}

// SetReadDeadline implements net.Conn.
func (c *Conn) SetReadDeadline(t time.Time) error {
	c.dlMu.Lock()
	c.rdl = t
	c.dlMu.Unlock()
	return nil
}

// SetWriteDeadline implements net.Conn.
func (c *Conn) SetWriteDeadline(t time.Time) error {
	c.dlMu.Lock()
	c.wdl = t
	c.dlMu.Unlock()
	return nil
}
