package netem

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// segmentSize is the shaping granularity. Large enough that a segment's
// transmission time on a typical link exceeds the scheduler's sleep
// resolution, small enough to pipeline multi-hop transfers.
const segmentSize = 16 << 10

// Addr is a virtual network address ("host:port" on network "vnet").
type Addr struct{ host string }

// Network returns the virtual network name.
func (Addr) Network() string { return "vnet" }

func (a Addr) String() string { return a.host }

// shape holds the per-direction shaping parameters of a conn.
type shape struct {
	egress  *Bucket       // sender host egress
	ingress *Bucket       // receiver host ingress
	delay   time.Duration // one-way propagation delay
	jitter  time.Duration // max uniform extra per segment
	loss    float64       // per-segment loss-event probability
	lossPen time.Duration // penalty charged per loss event (≈RTO)
}

// Conn is a shaped virtual connection implementing net.Conn.
type Conn struct {
	net           *Network
	local, remote Addr
	tx, rx        *pipe
	out           shape

	rngMu sync.Mutex
	rng   *rand.Rand

	wmu *Mutex // serializes writers; scheduler-aware (writers park)

	dlMu sync.Mutex
	rdl  time.Time
	wdl  time.Time

	closeOnce sync.Once
	closed    atomic.Bool
	// acctOnce counts the flow's closure exactly once across Close and
	// Abort (which deliberately bypasses closeOnce).
	acctOnce sync.Once
}

// newConnPair wires two conns back to back. aOut shapes a→b traffic and
// bOut shapes b→a traffic.
func newConnPair(n *Network, aAddr, bAddr Addr, aOut, bOut shape, seed int64) (*Conn, *Conn) {
	clock := n.clock
	acct := &n.acct
	// Both endpoints count: each closes independently, so ConnsOpened
	// and ConnsClosed balance per conn, not per pair.
	acct.addConnsOpened(2)
	ab := newPipe(clock, 0, acct)
	ba := newPipe(clock, 0, acct)
	a := &Conn{net: n, local: aAddr, remote: bAddr, tx: ab, rx: ba, out: aOut,
		rng: rand.New(rand.NewSource(seed)), wmu: NewMutex(clock)}
	b := &Conn{net: n, local: bAddr, remote: aAddr, tx: ba, rx: ab, out: bOut,
		rng: rand.New(rand.NewSource(seed + 1)), wmu: NewMutex(clock)}
	acct.registerConn(a)
	acct.registerConn(b)
	return a, b
}

// Read implements net.Conn.
func (c *Conn) Read(p []byte) (int, error) {
	c.dlMu.Lock()
	dl := c.rdl
	c.dlMu.Unlock()
	for {
		n, err := c.rx.pop(p, dl)
		if n > 0 || err != nil {
			return n, err
		}
		if len(p) == 0 {
			return 0, nil
		}
	}
}

// ReadFull reads exactly len(p) bytes, parking once until the byte
// completing the request arrives rather than waking per segment;
// n < len(p) only with a non-nil error (io.EOF on early end-of-stream,
// after draining what arrived). Protocol layers that know their record
// length (the PT record framing) use it to take bulk payloads off the
// per-segment wake-up path.
func (c *Conn) ReadFull(p []byte) (int, error) {
	c.dlMu.Lock()
	dl := c.rdl
	c.dlMu.Unlock()
	return c.rx.popFull(p, dl)
}

// SetReadSink replaces the conn's receive direction with inline
// delivery: each segment is handed to fn at its arrival instant on the
// clock's event dispatcher, instead of waking a goroutine parked in
// Read. Delivery and window timing are identical to an always-eager
// reader; only the goroutine switch per segment disappears. Once a sink
// is set, calling Read panics. See ReadSink for the callback contract.
func (c *Conn) SetReadSink(fn ReadSink) { c.rx.setSink(fn) }

// Write implements net.Conn. Data is chunked into segments; each segment
// reserves transmission time on the sender-egress and receiver-ingress
// buckets and is delivered after the propagation delay plus jitter and
// loss penalties. The writer does not park through its own
// serialization time — the bucket's free cursor carries the pacing into
// every subsequent segment's arrival, like a kernel send buffer
// absorbing small writes — so sender-side backpressure comes from the
// receive-window bound in push. Delivery timing is identical to a
// paced writer; only the (unobserved) instant at which Write returns
// moves earlier, and each elided park halves the event count on the
// simulation's hottest path.
func (c *Conn) Write(p []byte) (int, error) {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.dlMu.Lock()
	dl := c.wdl
	c.dlMu.Unlock()

	written := 0
	for len(p) > 0 {
		n := len(p)
		if n > segmentSize {
			n = segmentSize
		}
		data, base, pool := getSegBuf(p[:n])
		if _, err := c.writeSegment(data, base, pool, dl, true); err != nil {
			return written, err
		}
		written += n
		p = p[n:]
	}
	return written, nil
}

// WriteOwned is a zero-copy single-segment Write: ownership of data's
// backing array (base, recycled into pool when non-nil) transfers to
// the conn, which hands it through the pipe to the reader untouched.
// The payload must fit one segment. Like Write, it parks on
// receive-window backpressure.
func (c *Conn) WriteOwned(data []byte, base *[]byte, pool *sync.Pool) error {
	if len(data) > segmentSize {
		defer putSegBuf(pool, base)
		_, err := c.Write(data)
		return err
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.dlMu.Lock()
	dl := c.wdl
	c.dlMu.Unlock()
	_, err := c.writeSegment(data, base, pool, dl, true)
	return err
}

// TryWriteOwned is WriteOwned without parking, for inline event
// callbacks (Clock.EventAt): ok is false — and ownership stays with the
// caller — when the write would have parked (writer lock contended or
// receive window full). ok true means the segment was consumed, with
// err reporting a closed/reset conn exactly like Write.
func (c *Conn) TryWriteOwned(data []byte, base *[]byte, pool *sync.Pool) (ok bool, err error) {
	if len(data) > segmentSize {
		return false, nil
	}
	if !c.wmu.TryLock() {
		return false, nil
	}
	defer c.wmu.Unlock()
	return c.writeSegment(data, base, pool, time.Time{}, false)
}

// writeSegment shapes and delivers one owned segment: policy filtering,
// egress/ingress/shaper reservations, then the pipe push. wait=false is
// the non-parking form — it refuses (ok=false, ownership retained)
// instead of blocking, checking window space before booking bucket
// time so a refused segment leaves no shaping trace. The writer lock
// must be held.
func (c *Conn) writeSegment(data []byte, base *[]byte, pool *sync.Pool, dl time.Time, wait bool) (ok bool, err error) {
	n := len(data)
	if !wait && !c.closed.Load() && c.tx.freeSpace() < n {
		return false, nil
	}
	var censored time.Duration
	var shaper *Bucket
	if pol := c.policy(); pol != nil {
		c.acct().addSegmentFiltered()
		v := pol.FilterSegment(Flow{Src: c.local.host, Dst: c.remote.host}, n)
		if v.Action == Reset {
			putSegBuf(pool, base)
			c.Abort()
			return true, ErrReset
		}
		censored = v.Extra
		shaper = v.Shaper
	}
	clock := c.tx.clock
	now := clock.Now()
	done := c.out.egress.Reserve(now, n)
	done = c.out.ingress.Reserve(done, n)
	if shaper != nil {
		done = shaper.Reserve(done, n)
		censored += shaper.QueueDelay()
	}
	arrival := done + c.out.delay + c.extraDelay() + censored +
		c.out.egress.QueueDelay() + c.out.ingress.QueueDelay()
	if wait {
		return true, c.tx.push(data, base, pool, arrival, dl)
	}
	return c.tx.tryPush(data, base, pool, arrival)
}

// WriteBudget reports how many payload bytes a Write can currently
// accept without parking on receive-window backpressure, 0 once either
// end has closed. It is a snapshot, not a reservation: concurrent
// writers can consume the space between the probe and the write, in
// which case the write simply parks as usual. Schedulers that must not
// stall head-of-line (the tor relay cell scheduler's KIST-style
// budgeting) probe it instead of issuing blind blocking writes.
func (c *Conn) WriteBudget() int {
	if c.closed.Load() {
		return 0
	}
	return c.tx.freeSpace()
}

// policy returns the network's middlebox policy, or nil for conns built
// outside a network.
func (c *Conn) policy() Policy {
	if c.net == nil {
		return nil
	}
	return c.net.policy.get()
}

// acct returns the network's accounting, or nil for conns built outside
// a network.
func (c *Conn) acct() *Acct {
	if c.net == nil {
		return nil
	}
	return &c.net.acct
}

// extraDelay draws the per-segment jitter and loss penalty.
func (c *Conn) extraDelay() time.Duration {
	if c.out.jitter <= 0 && c.out.loss <= 0 {
		return 0 // wired-to-wired links: no draws, no lock
	}
	c.rngMu.Lock()
	defer c.rngMu.Unlock()
	var d time.Duration
	if c.out.jitter > 0 {
		d += time.Duration(c.rng.Int63n(int64(c.out.jitter)))
	}
	if c.out.loss > 0 && c.rng.Float64() < c.out.loss {
		d += c.out.lossPen
	}
	return d
}

// Close implements net.Conn.
func (c *Conn) Close() error {
	c.closeOnce.Do(func() {
		c.closed.Store(true)
		c.tx.closeWrite()
		c.rx.closeRead()
		c.acctOnce.Do(func() { c.acct().addConnClosed() })
	})
	return nil
}

// CloseWrite half-closes the sending direction, like TCP shutdown(WR).
func (c *Conn) CloseWrite() error {
	c.tx.closeWrite()
	return nil
}

// Abort tears the connection down as a mid-transfer failure: the peer's
// pending data is dropped and both directions error out. Failure-injection
// models (snowflake proxy churn, meek session budgets) use this.
func (c *Conn) Abort() {
	c.closed.Store(true)
	c.tx.closeWrite()
	c.tx.closeRead()
	c.rx.closeRead()
	c.acctOnce.Do(func() { c.acct().addConnClosed() })
}

// Closed reports whether Close or Abort has been called; policies use
// it to prune their flow registries.
func (c *Conn) Closed() bool { return c.closed.Load() }

// LocalAddr implements net.Conn.
func (c *Conn) LocalAddr() net.Addr { return c.local }

// RemoteAddr implements net.Conn.
func (c *Conn) RemoteAddr() net.Addr { return c.remote }

// deadlineHorizon bounds how far from Epoch an encoded deadline may
// sit and still be accepted as Epoch-relative. Virtual time starts at
// zero and campaigns run for simulated hours, so any legitimate
// deadline decodes to an offset of at most days; a wall-clock instant
// (time.Now().Add(d)) decodes to roughly minus seventy-four years and
// is rejected rather than silently stored as "already expired".
const deadlineHorizon = 10 * 365 * 24 * time.Hour

// checkDeadline is the runtime backstop behind the simlint wallclock
// rule: deadlines reaching a simulated conn must be Epoch-relative
// (Clock.VirtualDeadline), never wall-clock instants.
func checkDeadline(t time.Time) error {
	if t.IsZero() {
		return nil
	}
	if d := t.Sub(Epoch); d < -deadlineHorizon || d > deadlineHorizon {
		return fmt.Errorf("netem: deadline %v is %v from netem.Epoch and cannot be a virtual instant; encode deadlines with Clock.VirtualDeadline, not time.Now().Add", t.UTC(), d)
	}
	return nil
}

// SetDeadline implements net.Conn.
func (c *Conn) SetDeadline(t time.Time) error {
	if err := checkDeadline(t); err != nil {
		return err
	}
	c.dlMu.Lock()
	c.rdl, c.wdl = t, t
	c.dlMu.Unlock()
	return nil
}

// SetReadDeadline implements net.Conn.
func (c *Conn) SetReadDeadline(t time.Time) error {
	if err := checkDeadline(t); err != nil {
		return err
	}
	c.dlMu.Lock()
	c.rdl = t
	c.dlMu.Unlock()
	return nil
}

// SetWriteDeadline implements net.Conn.
func (c *Conn) SetWriteDeadline(t time.Time) error {
	if err := checkDeadline(t); err != nil {
		return err
	}
	c.dlMu.Lock()
	c.wdl = t
	c.dlMu.Unlock()
	return nil
}
