package testbed

import (
	"fmt"
	"time"

	"ptperf/internal/faults"
)

// This file is the relay-churn scenario family: deterministic fault
// plans that crash, flap and churn the volunteer fleet while the
// measured methods keep downloading. A plan must exist before its world
// is built (it rides Options.FaultSpec), so ChurnPlan is a pure
// function of the level and the fleet size — no World handle, no RNG:
// the schedule is byte-identical across runs and across -jobs values
// by construction.

// ChurnLevel is one infrastructure-failure-rate point of the family.
type ChurnLevel struct {
	// Name labels the level in reports ("none" is the fault-free
	// baseline).
	Name string
	// Period is the gap between consecutive scheduled failures; zero
	// means no failures at all.
	Period time.Duration
	// Downtime is how long each failure lasts before the relay
	// restarts, the link comes back, or the descriptor rejoins.
	Downtime time.Duration
}

// ChurnLevels is the canonical churn sweep: the fault-free baseline,
// a failure every virtual minute, and a failure every 20 virtual
// seconds — the last aggressive enough that most bulk downloads lose a
// relay mid-transfer.
var ChurnLevels = []ChurnLevel{
	{Name: "none"},
	{Name: "slow", Period: 60 * time.Second, Downtime: 30 * time.Second},
	{Name: "fast", Period: 20 * time.Second, Downtime: 10 * time.Second},
}

// ChurnLevelNames lists the family in sweep order.
func ChurnLevelNames() []string {
	out := make([]string, len(ChurnLevels))
	for i, lv := range ChurnLevels {
		out[i] = lv.Name
	}
	return out
}

// churnStart delays the first failure so clients can preheat circuits
// on healthy infrastructure; failures then land mid-measurement.
const churnStart = 30 * time.Second

// ChurnPlan compiles a level into a concrete fault schedule for a
// volunteer fleet of the given size (Options.Guards/Middles/Exits
// after defaulting). Failures rotate round-robin over four moves —
// crash a middle, crash an exit, flap a guard's link, churn a guard's
// descriptor — each hitting the next relay of its class, so no relay
// is re-failed before it recovered and every failure mode appears
// throughout the horizon. Crash and flap targets are volunteer relays
// only, which run on dedicated same-named hosts; PT bridge hosts are
// never touched, so the plan perturbs the Tor path, not the transport
// tunnel itself.
// ChurnPlanFor is ChurnPlan sized for the volunteer fleet the given
// Options will build (after defaulting), so callers need not repeat
// the default fleet dimensions.
func ChurnPlanFor(lv ChurnLevel, o Options, horizon time.Duration) faults.Plan {
	d := o.withDefaults()
	return ChurnPlan(lv, d.Guards, d.Middles, d.Exits, horizon)
}

func ChurnPlan(lv ChurnLevel, guards, middles, exits int, horizon time.Duration) faults.Plan {
	p := faults.Plan{Name: lv.Name}
	if lv.Period <= 0 || guards <= 0 || middles <= 0 || exits <= 0 {
		return p
	}
	var mi, ei, gi int
	k := 0
	for at := churnStart; at < horizon; at += lv.Period {
		var ev faults.Event
		switch k % 4 {
		case 0:
			ev = faults.Event{Kind: faults.KindCrash, Target: fmt.Sprintf("middle-%d", mi%middles)}
			mi++
		case 1:
			ev = faults.Event{Kind: faults.KindCrash, Target: fmt.Sprintf("exit-%d", ei%exits)}
			ei++
		case 2:
			ev = faults.Event{Kind: faults.KindFlap, Target: fmt.Sprintf("guard-%d", gi%guards)}
			gi++
		case 3:
			ev = faults.Event{Kind: faults.KindChurn, Target: fmt.Sprintf("guard-%d", gi%guards)}
			gi++
		}
		ev.At = at
		ev.Duration = lv.Downtime
		p.Events = append(p.Events, ev)
		k++
	}
	return p
}
