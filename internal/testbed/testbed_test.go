package testbed

import (
	"testing"
	"time"

	"ptperf/internal/fetch"
	"ptperf/internal/pt"
)

func smallWorld(t *testing.T, seed int64) *World {
	t.Helper()
	w, err := New(Options{
		Seed:      seed,
		ByteScale: 0.1,
		Guards:    2, Middles: 2, Exits: 2,
		TrancoN: 4, CBLN: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func fetchClient(w *World, d *Deployment, timeout time.Duration) *fetch.Client {
	return &fetch.Client{Net: w.Net, Dial: d.Dial, Timeout: timeout}
}

func TestVanillaTorFetch(t *testing.T) {
	w := smallWorld(t, 3)
	d := w.MustDeployment("tor")
	c := fetchClient(w, d, 120*time.Second)
	res := c.Get(w.Origin.Addr(), w.Tranco.Sites[0].Path, false)
	if !res.Complete() {
		t.Fatalf("vanilla tor fetch failed: %+v", res)
	}
	if res.TTFB <= 0 || res.Total < res.TTFB {
		t.Fatalf("bad timing: %+v", res)
	}
}

// TestEveryTransportFetches is the full-stack integration: one page
// through all 12 PTs and vanilla Tor.
func TestEveryTransportFetches(t *testing.T) {
	w := smallWorld(t, 4)
	names := append([]string{"tor"}, pt.Names()...)
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			d, err := w.Deployment(name)
			if err != nil {
				t.Fatal(err)
			}
			timeout := 240 * time.Second
			c := fetchClient(w, d, timeout)
			res := c.Get(w.Origin.Addr(), w.CBL.Sites[1].Path, false)
			if !res.Complete() {
				t.Fatalf("%s fetch failed: err=%v status=%d got=%d want=%d",
					name, res.Err, res.Status, res.BytesGot, res.BytesWanted)
			}
		})
	}
}

func TestSet1UsesBridgeAsGuard(t *testing.T) {
	w := smallWorld(t, 5)
	d := w.MustDeployment("obfs4")
	if err := d.Preheat(); err != nil {
		t.Fatal(err)
	}
	p := d.Path()
	if p.Guard == nil || p.Guard.Name != "obfs4-bridge-guard" {
		t.Fatalf("set-1 first hop should be the bridge guard, got %+v", p.Guard)
	}
}

func TestSet2UsesConsensusGuard(t *testing.T) {
	w := smallWorld(t, 6)
	d := w.MustDeployment("shadowsocks")
	if err := d.Preheat(); err != nil {
		t.Fatal(err)
	}
	p := d.Path()
	if p.Guard == nil {
		t.Fatal("no path")
	}
	if p.Guard.Name == "shadowsocks-server" {
		t.Fatal("set-2 guard must come from the consensus")
	}
}

func TestFreshCircuitChangesPath(t *testing.T) {
	w := smallWorld(t, 7)
	d := w.MustDeployment("tor")
	seen := map[string]bool{}
	for i := 0; i < 6; i++ {
		d.FreshCircuit()
		if err := d.Preheat(); err != nil {
			t.Fatal(err)
		}
		p := d.Path()
		seen[p.Middle.Name+"/"+p.Exit.Name] = true
	}
	if len(seen) < 2 {
		t.Fatal("fresh circuits never changed the path")
	}
}

func TestBrowserThroughPT(t *testing.T) {
	w := smallWorld(t, 8)
	d := w.MustDeployment("webtunnel")
	c := fetchClient(w, d, 240*time.Second)
	pr := c.Browse(w.Origin.Addr(), w.Tranco.Sites[2].Path, 6)
	if !pr.OK {
		t.Fatalf("browse through webtunnel failed: %+v", pr.Err)
	}
	if pr.SpeedIndex <= 0 || pr.SpeedIndex > pr.PageLoadTime {
		t.Fatalf("speed index %v vs PLT %v", pr.SpeedIndex, pr.PageLoadTime)
	}
}

func TestFileSizesScale(t *testing.T) {
	w := smallWorld(t, 9)
	sizes := w.FileSizes()
	if len(sizes) != 5 {
		t.Fatalf("want 5 sizes, got %d", len(sizes))
	}
	if sizes[0] != w.Bytes(5<<20) || sizes[4] != w.Bytes(100<<20) {
		t.Fatalf("sizes = %v", sizes)
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] <= sizes[i-1] {
			t.Fatal("sizes must increase")
		}
	}
}

func TestUnknownTransport(t *testing.T) {
	w := smallWorld(t, 10)
	if _, err := w.Deployment("nope"); err == nil {
		t.Fatal("unknown transport must error")
	}
}

func TestDeploymentCached(t *testing.T) {
	w := smallWorld(t, 11)
	a := w.MustDeployment("tor")
	b := w.MustDeployment("tor")
	if a != b {
		t.Fatal("deployments must be cached per world")
	}
}
