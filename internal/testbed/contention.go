package testbed

import (
	"fmt"
	"sync/atomic"
	"time"

	"ptperf/internal/fetch"
	"ptperf/internal/geo"
	"ptperf/internal/netem"
	"ptperf/internal/tor"
)

// This file is the relay-overload / guard-contention scenario family:
// N bulk competitors share the measurement path's guard relay, so what
// the measured client experiences depends on who else is queued at that
// guard — the relay-side congestion the cell scheduler makes visible.
// Like censor scenarios, everything is driven off the virtual clock
// (staggered starts, think-time gaps), so same-seed runs are
// byte-identical at any -jobs value.

// ContentionLevel is one competitor-load point of the family.
type ContentionLevel struct {
	// Name labels the level in reports ("idle" is the baseline).
	Name string
	// Competitors is the number of bulk clients sharing the guard.
	Competitors int
	// FileMB is each competitor's download size per iteration
	// (paper-scale MB, byte-scaled on use).
	FileMB int
	// Think is the idle gap between a competitor's downloads.
	Think time.Duration
	// Stagger spaces competitor starts on the virtual clock.
	Stagger time.Duration
}

// RampTime is how long after Start the last competitor has begun.
func (lv ContentionLevel) RampTime() time.Duration {
	return time.Duration(lv.Competitors)*lv.Stagger + time.Second
}

// ContentionLevels is the canonical guard-contention sweep, from the
// uncontended baseline to relay overload.
var ContentionLevels = []ContentionLevel{
	{Name: "idle", Competitors: 0, FileMB: 20, Think: 250 * time.Millisecond, Stagger: 500 * time.Millisecond},
	{Name: "light", Competitors: 2, FileMB: 20, Think: 250 * time.Millisecond, Stagger: 500 * time.Millisecond},
	{Name: "busy", Competitors: 4, FileMB: 20, Think: 250 * time.Millisecond, Stagger: 500 * time.Millisecond},
	{Name: "overload", Competitors: 8, FileMB: 20, Think: 250 * time.Millisecond, Stagger: 500 * time.Millisecond},
}

// ContentionLevelNames lists the family in sweep order.
func ContentionLevelNames() []string {
	out := make([]string, len(ContentionLevels))
	for i, lv := range ContentionLevels {
		out[i] = lv.Name
	}
	return out
}

// ContentionRig extends the shared-first-hop rig (§4.2.1's fixed
// circuit) with a competitor fleet: vanilla Tor clients pinned to the
// same guard, looping bulk downloads of the origin. The measured
// methods (tor, obfs4, webtunnel) ride the identical guard, so the
// only variable across levels is relay-side contention.
type ContentionRig struct {
	*FixedCircuitRig
	world       *World
	level       ContentionLevel
	competitors []*tor.Client
	stopped     atomic.Bool
	wg          *netem.WaitGroup
}

// contentionGuardShare is the contended guard's relayed-bandwidth share
// of its NIC rate. Like a real relay whose token-bucket BandwidthRate
// sits below its link speed, the cell scheduler — not the link — is the
// binding constraint, so overload shows up as measurable queueing delay
// in the relay instead of invisible pipe backlog upstream.
const contentionGuardShare = 0.5

// NewContentionRig builds the rig for one load level: a shared first
// hop whose scheduler budget is provisioned below its links, plus the
// competitor fleet.
func (w *World) NewContentionRig(lv ContentionLevel) (*ContentionRig, error) {
	host, err := w.newServerHost("contended-hop", w.Opts.InfraLocation, 0.1)
	if err != nil {
		return nil, err
	}
	relay, err := tor.StartRelay(tor.RelayConfig{
		Name:      host.Name() + "-guard",
		Host:      host,
		Directory: w.Dir,
		Flags:     tor.FlagGuard | tor.FlagFast,
		Bandwidth: host.Egress().Rate() * contentionGuardShare,
		Seed:      w.Opts.Seed + 998,
		Sched:     tor.SchedConfig{Policy: w.Opts.SchedPolicy},
	})
	if err != nil {
		return nil, err
	}
	w.registerRelay(relay)
	fixed, err := w.newSharedHopRig(host, relay)
	if err != nil {
		return nil, err
	}
	r := &ContentionRig{
		FixedCircuitRig: fixed,
		world:           w,
		level:           lv,
		wg:              netem.NewWaitGroup(w.Net.Clock()),
	}
	g := fixed.Relay.Descriptor()
	for i := 0; i < lv.Competitors; i++ {
		host, err := w.Net.AddHost(netem.HostConfig{
			Name:        fmt.Sprintf("competitor-%d", i),
			Location:    geo.Clients[i%len(geo.Clients)],
			UplinkBps:   50 << 20 * w.Opts.ByteScale,
			DownlinkBps: 50 << 20 * w.Opts.ByteScale,
		})
		if err != nil {
			return nil, err
		}
		cl, err := tor.NewClient(tor.ClientConfig{
			Host:      host,
			Directory: w.Dir,
			// Pinned guard, Tor-selected middle/exit: the competitors
			// converge on the measurement guard and fan out behind it.
			Guard:        g,
			Seed:         w.Opts.Seed*131 + int64(i),
			BuildTimeout: 120 * time.Second,
		})
		if err != nil {
			return nil, err
		}
		r.competitors = append(r.competitors, cl)
	}
	return r, nil
}

// Level returns the rig's load level.
func (r *ContentionRig) Level() ContentionLevel { return r.level }

// Start launches the competitor loops as simulation goroutines:
// staggered starts, then bulk download / think / repeat until Stop.
func (r *ContentionRig) Start() {
	clock := r.world.Net.Clock()
	size := r.world.Bytes(r.level.FileMB << 20)
	for i, cl := range r.competitors {
		i, cl := i, cl
		r.wg.Add(1)
		clock.Go(func() {
			defer r.wg.Done()
			clock.Sleep(time.Duration(i+1) * r.level.Stagger)
			c := &fetch.Client{Net: r.world.Net, Dial: cl.Dial, Timeout: 600 * time.Second}
			for !r.stopped.Load() {
				c.DownloadFile(r.world.Origin.Addr(), size)
				if r.stopped.Load() {
					return
				}
				clock.Sleep(r.level.Think)
			}
		})
	}
}

// Stop halts the competitor fleet: kills their circuits (a download in
// flight errors out) and waits for every loop to exit, so the world
// quiesces before its task returns.
func (r *ContentionRig) Stop() {
	r.stopped.Store(true)
	for _, cl := range r.competitors {
		cl.Close()
	}
	r.wg.Wait()
}

// GuardSched returns the shared guard's scheduler counters — the
// experiment's queueing-delay evidence.
func (r *ContentionRig) GuardSched() tor.SchedStats {
	return r.Relay.SchedStats()
}
