// Package testbed assembles complete measurement worlds: the virtual
// internet, a volunteer relay fleet, the web origin, and per-transport
// deployments wired according to the paper's three integration sets
// (§4.1). The harness package runs the paper's experiments on top of it.
//
// Worlds are shard-safe: a World owns every piece of mutable state it
// touches (network, clock, directory, RNGs, deployments), and this
// package's package-level variables are read-only tables. Independent
// Worlds may therefore be built and driven concurrently from different
// OS goroutines — the unit of parallelism of the internal/sim shard
// executor. The goroutine that calls New becomes the world's scheduler
// driver and must stay the one interacting with it (or hand off via
// the world's own simulation goroutines).
package testbed

import (
	"fmt"
	"math/rand"
	"net"
	"sort"
	"time"

	"ptperf/internal/censor"
	"ptperf/internal/faults"
	"ptperf/internal/geo"
	"ptperf/internal/netem"
	"ptperf/internal/tor"
	"ptperf/internal/web"
)

// Options configures a World.
type Options struct {
	// Seed makes the world deterministic.
	Seed int64
	// ByteScale scales every byte quantity — page and file sizes, link
	// rates, and transport byte caps — preserving durations while
	// letting the campaign move fewer real bytes. 1 is full fidelity.
	ByteScale float64
	// ClientLocation places the measurement client (default Toronto,
	// one of the paper's client cities).
	ClientLocation geo.Location
	// Medium is the client's access medium (§4.7).
	Medium geo.Medium
	// InfraLocation places PT servers and bridges (default Frankfurt).
	InfraLocation geo.Location
	// Guards, Middles, Exits size the volunteer relay fleet.
	Guards, Middles, Exits int
	// GuardUtilization is the [min,max] background load on volunteer
	// relays. The gap between this and BridgeUtilization reproduces the
	// paper's "PT bridges beat volunteer guards" finding (§4.2.1).
	GuardUtilization [2]float64
	// BridgeUtilization is the background load on PT bridges.
	BridgeUtilization float64
	// RelayBandwidth is the [min,max] volunteer link rate in bytes per
	// virtual second (before ByteScale).
	RelayBandwidth [2]float64
	// TrancoN and CBLN size the website catalogs.
	TrancoN, CBLN int
	// Scenario names a censor scenario from the internal/censor
	// registry ("clean", "throttle-surge", ...). Empty leaves the
	// network unpoliced — identical to the pre-censor worlds.
	Scenario string
	// ScenarioSpec attaches an in-memory scenario directly, bypassing
	// the registry; it takes precedence over Scenario. The
	// simulation-torture suite uses it so randomly generated scenarios
	// never leak into the global registry another world might list.
	ScenarioSpec *censor.Scenario
	// SchedPolicy selects the relay cell scheduler's pick rule for
	// every relay of the world (volunteers, shared-hop guards and PT
	// bridges alike). The zero value is tor.SchedEWMA; the contention
	// experiments build tor.SchedFIFO worlds as the pre-KIST baseline.
	SchedPolicy tor.SchedPolicy
	// FaultSpec attaches a deterministic fault-injection plan (relay
	// crashes, link flaps, directory churn) compiled onto the virtual
	// clock — the benign-failure counterpart of ScenarioSpec. Nil leaves
	// the infrastructure immortal, identical to pre-fault worlds.
	FaultSpec *faults.Plan
	// Retry is the circuit/stream retry policy applied to every Tor
	// client the world builds (measurement clients and PT-server-side
	// Tor alike). The zero value reproduces the historical behavior
	// byte-for-byte; churn worlds raise the budgets and add backoff.
	Retry tor.RetryPolicy
}

// WithDefaults returns the options with every zero field filled in —
// the fully determined input New actually builds from. The cache layer
// (internal/obs) digests defaulted options so two spellings of the
// same world share one cache entry.
func (o Options) WithDefaults() Options { return o.withDefaults() }

// withDefaults fills the zero Options with the standard campaign world.
func (o Options) withDefaults() Options {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.ByteScale <= 0 {
		o.ByteScale = 0.25
	}
	if o.ClientLocation == 0 && o.Medium == 0 {
		o.ClientLocation = geo.Toronto
	}
	if o.InfraLocation == 0 {
		o.InfraLocation = geo.Frankfurt
	}
	if o.Guards <= 0 {
		o.Guards = 4
	}
	if o.Middles <= 0 {
		o.Middles = 5
	}
	if o.Exits <= 0 {
		o.Exits = 5
	}
	if o.GuardUtilization == [2]float64{} {
		o.GuardUtilization = [2]float64{0.55, 0.8}
	}
	if o.BridgeUtilization == 0 {
		o.BridgeUtilization = 0.08
	}
	if o.RelayBandwidth == [2]float64{} {
		o.RelayBandwidth = [2]float64{6 << 20, 14 << 20}
	}
	if o.TrancoN <= 0 {
		o.TrancoN = 100
	}
	if o.CBLN <= 0 {
		o.CBLN = 100
	}
	return o
}

// relayLocations follows the real Tor network's EU/NA-heavy placement.
var relayLocations = []geo.Location{
	geo.Frankfurt, geo.Frankfurt, geo.London, geo.NewYork, geo.London,
	geo.Frankfurt, geo.NewYork, geo.Toronto, geo.London, geo.Frankfurt,
}

// World is one fully constructed measurement environment.
type World struct {
	Opts Options
	// Net is the virtual internet.
	Net *netem.Network
	// Dir is the Tor consensus.
	Dir *tor.Directory
	// Origin serves both catalogs and bulk files.
	Origin *web.Origin
	// Tranco and CBL are the two site populations.
	Tranco, CBL *web.Catalog
	// Client is the measurement client machine.
	Client *netem.Host
	// Censor is the attached adversary, nil when Options.Scenario is
	// empty.
	Censor *censor.Censor
	// Faults is the attached fault injector, nil when Options.FaultSpec
	// is nil.
	Faults *faults.Injector

	rng     *rand.Rand
	relays  []*tor.Relay
	deps    map[string]*Deployment
	nextSrv int
}

// New builds a world.
func New(opts Options) (*World, error) {
	o := opts.withDefaults()
	n := netem.New(netem.WithSeed(o.Seed))
	w := &World{
		Opts: o,
		Net:  n,
		Dir:  tor.NewDirectory(),
		rng:  rand.New(rand.NewSource(o.Seed * 31)),
		deps: make(map[string]*Deployment),
	}
	if o.ScenarioSpec != nil {
		// Censor rates are paper-scale figures; they shrink with the
		// world's byte quantities so a throttle that binds at full
		// fidelity still binds in a miniature campaign.
		w.Censor = censor.Attach(n, *o.ScenarioSpec, o.Seed, o.ByteScale)
	} else if o.Scenario != "" {
		sc, err := censor.Lookup(o.Scenario)
		if err != nil {
			return nil, err
		}
		w.Censor = censor.Attach(n, sc, o.Seed, o.ByteScale)
	}
	if o.FaultSpec != nil {
		// Events resolve targets at fire time, so attaching before the
		// fleet (and before lazily built deployments) is safe.
		w.Faults = faults.Attach(n, w.Dir, *o.FaultSpec)
	}

	var err error
	w.Client, err = n.AddHost(netem.HostConfig{
		Name:     "client",
		Location: o.ClientLocation,
		Medium:   o.Medium,
		// A fast residential/VPS link.
		UplinkBps:   100 << 20 * o.ByteScale,
		DownlinkBps: 100 << 20 * o.ByteScale,
	})
	if err != nil {
		return nil, err
	}

	// Volunteer relay fleet.
	mkRelay := func(kind string, i int, flags tor.Flag) error {
		bw := w.uniform(o.RelayBandwidth[0], o.RelayBandwidth[1]) * o.ByteScale
		util := w.uniform(o.GuardUtilization[0], o.GuardUtilization[1])
		host, err := n.AddHost(netem.HostConfig{
			Name:        fmt.Sprintf("%s-%d", kind, i),
			Location:    relayLocations[(i*3+len(kind))%len(relayLocations)],
			UplinkBps:   bw,
			DownlinkBps: bw,
			Utilization: util,
		})
		if err != nil {
			return err
		}
		r, err := tor.StartRelay(tor.RelayConfig{
			Name:      fmt.Sprintf("%s-%d", kind, i),
			Host:      host,
			Directory: w.Dir,
			Flags:     flags,
			Bandwidth: bw,
			Seed:      o.Seed + int64(i) + int64(len(kind))*1000,
			Sched:     tor.SchedConfig{Policy: o.SchedPolicy},
		})
		if err != nil {
			return err
		}
		w.registerRelay(r)
		return nil
	}
	for i := 0; i < o.Guards; i++ {
		if err := mkRelay("guard", i, tor.FlagGuard|tor.FlagFast); err != nil {
			return nil, err
		}
	}
	for i := 0; i < o.Middles; i++ {
		if err := mkRelay("middle", i, tor.FlagFast); err != nil {
			return nil, err
		}
	}
	for i := 0; i < o.Exits; i++ {
		if err := mkRelay("exit", i, tor.FlagExit|tor.FlagFast); err != nil {
			return nil, err
		}
	}

	// The web origin ("uncensored Internet").
	originHost, err := n.AddHost(netem.HostConfig{
		Name:        "origin",
		Location:    geo.NewYork,
		UplinkBps:   200 << 20 * o.ByteScale,
		DownlinkBps: 200 << 20 * o.ByteScale,
	})
	if err != nil {
		return nil, err
	}
	w.Tranco = web.GenerateCatalog(web.Tranco, o.TrancoN, o.Seed+100, o.ByteScale)
	w.CBL = web.GenerateCatalog(web.CBL, o.CBLN, o.Seed+200, o.ByteScale)
	w.Origin, err = web.StartOrigin(originHost, 80, w.Tranco, w.CBL)
	if err != nil {
		return nil, err
	}
	return w, nil
}

// registerRelay tracks a started relay and, when a fault injector is
// attached, makes it crashable by name.
func (w *World) registerRelay(r *tor.Relay) {
	w.relays = append(w.relays, r)
	if w.Faults != nil {
		w.Faults.RegisterRelay(r)
	}
}

// Relays lists every relay started in this world so far, in creation
// order — the volunteer fleet plus any shared-hop guards and PT-side
// relays deployments added later. The order is deterministic (relay
// creation is), which is what lets the metrics layer label per-relay
// series stably. Call from the world's driver or one of its simulation
// goroutines.
func (w *World) Relays() []*tor.Relay {
	return append([]*tor.Relay(nil), w.relays...)
}

// BuiltDeployments lists the deployments built so far, sorted by name —
// never building one. The metrics layer samples per-method recovery
// counters through it without perturbing which worlds build what.
func (w *World) BuiltDeployments() []*Deployment {
	names := make([]string, 0, len(w.deps))
	for name := range w.deps {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]*Deployment, 0, len(names))
	for _, name := range names {
		out = append(out, w.deps[name])
	}
	return out
}

// FaultStats reports what the fault injector actually did (zero when no
// plan is attached).
func (w *World) FaultStats() faults.Stats {
	if w.Faults == nil {
		return faults.Stats{}
	}
	return w.Faults.Stats()
}

// uniform draws from [lo, hi).
func (w *World) uniform(lo, hi float64) float64 {
	if hi <= lo {
		return lo
	}
	return lo + w.rng.Float64()*(hi-lo)
}

// ScaleQuantum byte-scales a protocol's per-message payload quantum
// (DNS response cap, IM message cap, ...) like any other byte quantity,
// but floors it so miniature campaigns do not multiply the protocol's
// message count far beyond the real system's. It returns the quantum
// plus the stretch factor the floor introduced; the caller must divide
// the protocol's message rate (or multiply its pacing delay) by that
// factor so the modeled throughput — and thus every measured duration —
// is preserved.
func (w *World) ScaleQuantum(real, floor int) (int, float64) {
	exact := float64(real) * w.Opts.ByteScale
	q := int(exact)
	if q < 1 {
		q = 1
	}
	if q >= floor || float64(floor) <= exact {
		return q, 1
	}
	return floor, float64(floor) / exact
}

// Bytes scales a full-fidelity byte quantity by the world's ByteScale.
func (w *World) Bytes(n int) int {
	v := int(float64(n) * w.Opts.ByteScale)
	if v < 1 {
		v = 1
	}
	return v
}

// FileSizes returns Figure 5's file sizes after byte scaling.
func (w *World) FileSizes() []int {
	out := make([]int, len(web.FileSizesMB))
	for i, mb := range web.FileSizesMB {
		out[i] = w.Bytes(mb << 20)
	}
	return out
}

// newServerHost allocates an infra host at the infra location with
// bridge-grade (low) utilization.
func (w *World) newServerHost(name string, loc geo.Location, util float64) (*netem.Host, error) {
	w.nextSrv++
	bw := 12 << 20 * w.Opts.ByteScale
	return w.Net.AddHost(netem.HostConfig{
		Name:        fmt.Sprintf("%s-%d", name, w.nextSrv),
		Location:    loc,
		UplinkBps:   bw,
		DownlinkBps: bw,
		Utilization: util,
	})
}

// NewTorClient builds a Tor client on the measurement host with an
// optional pinned path; the fixed-circuit experiments use it directly.
func (w *World) NewTorClient(guard, middle, exit *tor.Descriptor, dial tor.FirstHopDialer, seed int64) (*tor.Client, error) {
	return tor.NewClient(tor.ClientConfig{
		Host:         w.Client,
		Directory:    w.Dir,
		Guard:        guard,
		Middle:       middle,
		Exit:         exit,
		DialFirstHop: dial,
		Seed:         w.Opts.Seed*1000 + seed,
		BuildTimeout: 120 * time.Second,
		Retry:        w.Opts.Retry,
	})
}

// GuardRelayHost starts an extra host carrying both a published guard
// relay and (optionally) private PT bridges — the shared first hop of
// the paper's fixed-circuit experiments (§4.2.1, §5.2). It returns the
// host and the relay.
func (w *World) GuardRelayHost(name string, util float64) (*netem.Host, *tor.Relay, error) {
	host, err := w.newServerHost(name, w.Opts.InfraLocation, util)
	if err != nil {
		return nil, nil, err
	}
	r, err := tor.StartRelay(tor.RelayConfig{
		Name:      host.Name() + "-guard",
		Host:      host,
		Directory: w.Dir,
		Flags:     tor.FlagGuard | tor.FlagFast,
		Bandwidth: host.Egress().Rate(),
		Seed:      w.Opts.Seed + 999,
		Sched:     tor.SchedConfig{Policy: w.Opts.SchedPolicy},
	})
	if err != nil {
		return nil, nil, err
	}
	w.registerRelay(r)
	return host, r, nil
}

// Dialer adapts a deployment to the fetch.Dialer signature.
type Dialer = func(target string) (net.Conn, error)
