package testbed

import (
	"fmt"
	"net"
	"time"

	"ptperf/internal/netem"
	"ptperf/internal/pt"
	"ptperf/internal/pt/camoufler"
	"ptperf/internal/pt/cloak"
	"ptperf/internal/pt/dnstt"
	"ptperf/internal/pt/marionette"
	"ptperf/internal/pt/obfs4"
	"ptperf/internal/pt/psiphon"
	"ptperf/internal/pt/shadowsocks"
	"ptperf/internal/pt/stegotorus"
	"ptperf/internal/pt/webtunnel"
	"ptperf/internal/tor"
)

// FixedCircuitRig reproduces §4.2.1's controlled experiment: one host
// carries both a guard relay and private obfs4/webtunnel bridges that
// feed that same relay, so vanilla Tor and the PTs share an identical
// first hop; middle and exit are pinned per iteration.
type FixedCircuitRig struct {
	world *World
	// Relay is the shared first hop.
	Relay *tor.Relay

	obfs4Dialer     pt.Dialer
	webtunnelDialer pt.Dialer
	seq             int64
}

// NewFixedCircuitRig builds the shared-first-hop deployment.
func (w *World) NewFixedCircuitRig() (*FixedCircuitRig, error) {
	host, relay, err := w.GuardRelayHost("shared-hop", 0.1)
	if err != nil {
		return nil, err
	}
	return w.newSharedHopRig(host, relay)
}

// newSharedHopRig wires the obfs4/webtunnel bridges of a shared first
// hop onto an already-started guard relay (the fixed-circuit rig and
// the contention rig differ only in how that relay is provisioned).
func (w *World) newSharedHopRig(host *netem.Host, relay *tor.Relay) (*FixedCircuitRig, error) {
	feed := func(_ string, conn net.Conn) { relay.ServeConn(conn) }

	secret := []byte("rig-obfs4-secret")
	if _, err := obfs4.StartServer(host, 4430, obfs4.Config{Secret: secret, Seed: w.Opts.Seed + 41}, feed); err != nil {
		return nil, err
	}
	wtCfg := webtunnel.Config{SessionKey: []byte("rig-webtunnel-key"), SNI: "cdn.example", Seed: w.Opts.Seed + 42}
	if _, err := webtunnel.StartServer(host, 4431, wtCfg, feed); err != nil {
		return nil, err
	}
	return &FixedCircuitRig{
		world:           w,
		Relay:           relay,
		obfs4Dialer:     obfs4.NewDialer(w.Client, fmt.Sprintf("%s:%d", host.Name(), 4430), obfs4.Config{Secret: secret, Seed: w.Opts.Seed + 43}),
		webtunnelDialer: webtunnel.NewDialer(w.Client, fmt.Sprintf("%s:%d", host.Name(), 4431), wtCfg),
	}, nil
}

// Methods names the rig's three access methods in report order.
func (rig *FixedCircuitRig) Methods() []string { return []string{"tor", "obfs4", "webtunnel"} }

// Clients builds fresh, fully pinned clients (same guard/middle/exit)
// for the three methods. Passing nil middle/exit leaves Tor's default
// selection in place (the Figure 4 variant).
func (rig *FixedCircuitRig) Clients(middle, exit *tor.Descriptor) (map[string]*tor.Client, error) {
	g := rig.Relay.Descriptor()
	rig.seq += 10
	out := make(map[string]*tor.Client, 3)
	var err error
	if out["tor"], err = rig.world.NewTorClient(g, middle, exit, nil, 800+rig.seq); err != nil {
		return nil, err
	}
	if out["obfs4"], err = rig.world.NewTorClient(g, middle, exit, func(*tor.Descriptor) (net.Conn, error) {
		return rig.obfs4Dialer.Dial("")
	}, 801+rig.seq); err != nil {
		return nil, err
	}
	if out["webtunnel"], err = rig.world.NewTorClient(g, middle, exit, func(*tor.Descriptor) (net.Conn, error) {
		return rig.webtunnelDialer.Dial("")
	}, 802+rig.seq); err != nil {
		return nil, err
	}
	return out, nil
}

// PickPair draws a random middle/exit pair from the consensus.
func (rig *FixedCircuitRig) PickPair(i int) (*tor.Descriptor, *tor.Descriptor) {
	middles := rig.world.Dir.Relays()
	exits := rig.world.Dir.WithFlag(tor.FlagExit)
	m := middles[i%len(middles)]
	e := exits[(i/len(middles)+i)%len(exits)]
	if m.Name == e.Name {
		e = exits[(i+1)%len(exits)]
	}
	if m.Name == rig.Relay.Descriptor().Name {
		m = middles[(i+1)%len(middles)]
	}
	return m, e
}

// OverheadRig reproduces §5.2: the same fully pinned circuit accessed
// once via vanilla Tor and once via PT+Tor; the time difference isolates
// the transport's own overhead. The rig follows the paper's setup per
// integration set: inseparable PTs share the first-hop host with the
// guard; separable PTs run client and server in the same location.
type OverheadRig struct {
	// Name is the transport under test.
	Name string
	// TorDial accesses targets over the pinned circuit via vanilla Tor.
	TorDial func(target string) (net.Conn, error)
	// PTDial accesses the same pinned circuit via the transport.
	PTDial func(target string) (net.Conn, error)
}

// OverheadPTs lists the transports Figure 9 covers (meek, conjure and
// snowflake are excluded for the paper's own deployment-control
// reasons).
var OverheadPTs = []string{
	"obfs4", "dnstt", "webtunnel",
	"shadowsocks", "psiphon", "stegotorus", "camoufler",
	"cloak", "marionette",
}

// NewOverheadRig builds the rig for one transport.
func (w *World) NewOverheadRig(name string, seq int64) (*OverheadRig, error) {
	info, ok := pt.InfoFor(name)
	if !ok {
		return nil, fmt.Errorf("testbed: unknown transport %q", name)
	}
	middle, mok := w.Dir.Lookup("middle-0")
	exit, eok := w.Dir.Lookup("exit-0")
	if !mok || !eok {
		return nil, fmt.Errorf("testbed: consensus lacks middle-0/exit-0")
	}

	rig := &OverheadRig{Name: name}
	switch info.Set {
	case pt.Set1:
		// Shared host: guard relay + PT server.
		host, relay, err := w.GuardRelayHost("ovh-"+name, 0.1)
		if err != nil {
			return nil, err
		}
		feed := func(_ string, conn net.Conn) { relay.ServeConn(conn) }
		dialer, err := w.startPTServer(name, host, feed, seq)
		if err != nil {
			return nil, err
		}
		g := relay.Descriptor()
		vt, err := w.NewTorClient(g, middle, exit, nil, 900+seq)
		if err != nil {
			return nil, err
		}
		ptc, err := w.NewTorClient(g, middle, exit, func(*tor.Descriptor) (net.Conn, error) {
			return dialer.Dial("")
		}, 901+seq)
		if err != nil {
			return nil, err
		}
		rig.TorDial, rig.PTDial = vt.Dial, ptc.Dial

	case pt.Set2:
		// PT client and server in the client's own location, pinned
		// volunteer circuit.
		g, gok := w.Dir.Lookup("guard-0")
		if !gok {
			return nil, fmt.Errorf("testbed: consensus lacks guard-0")
		}
		srvHost, err := w.newServerHost("ovh-"+name, w.Opts.ClientLocation, 0.05)
		if err != nil {
			return nil, err
		}
		dialer, err := w.startPTServer(name, srvHost, pt.ForwardTo(srvHost), seq)
		if err != nil {
			return nil, err
		}
		vt, err := w.NewTorClient(g, middle, exit, nil, 902+seq)
		if err != nil {
			return nil, err
		}
		ptc, err := w.NewTorClient(g, middle, exit, func(gd *tor.Descriptor) (net.Conn, error) {
			return dialer.Dial(gd.Addr)
		}, 903+seq)
		if err != nil {
			return nil, err
		}
		rig.TorDial, rig.PTDial = vt.Dial, ptc.Dial

	case pt.Set3:
		g, gok := w.Dir.Lookup("guard-0")
		if !gok {
			return nil, fmt.Errorf("testbed: consensus lacks guard-0")
		}
		srvHost, err := w.newServerHost("ovh-"+name, w.Opts.ClientLocation, 0.05)
		if err != nil {
			return nil, err
		}
		serverTor, err := tor.NewClient(tor.ClientConfig{
			Host: srvHost, Directory: w.Dir,
			Guard: g, Middle: middle, Exit: exit,
			Seed: w.Opts.Seed*91 + seq, BuildTimeout: 120 * time.Second,
		})
		if err != nil {
			return nil, err
		}
		dialer, err := w.startPTServer(name, srvHost, pt.HandleWithDialer(w.Net.Clock(), serverTor.Dial), seq)
		if err != nil {
			return nil, err
		}
		vt, err := w.NewTorClient(g, middle, exit, nil, 904+seq)
		if err != nil {
			return nil, err
		}
		rig.TorDial = vt.Dial
		rig.PTDial = dialer.Dial
	}
	return rig, nil
}

// startPTServer launches the named transport's server on host with the
// given handler and returns the matching client dialer. Auxiliary
// infrastructure (resolver, IM provider) is co-located per §5.2's
// minimal-external-delay setup.
func (w *World) startPTServer(name string, host *netem.Host, handle pt.StreamHandler, seq int64) (pt.Dialer, error) {
	addr := func(port int) string { return fmt.Sprintf("%s:%d", host.Name(), port) }
	seed := w.Opts.Seed + seq*100
	switch name {
	case "obfs4":
		secret := []byte("ovh-obfs4")
		if _, err := obfs4.StartServer(host, 4440, obfs4.Config{Secret: secret, Seed: seed}, handle); err != nil {
			return nil, err
		}
		return obfs4.NewDialer(w.Client, addr(4440), obfs4.Config{Secret: secret, Seed: seed + 1}), nil
	case "webtunnel":
		cfg := webtunnel.Config{SessionKey: []byte("ovh-wt"), SNI: "cdn.example", Seed: seed}
		if _, err := webtunnel.StartServer(host, 4441, cfg, handle); err != nil {
			return nil, err
		}
		return webtunnel.NewDialer(w.Client, addr(4441), cfg), nil
	case "dnstt":
		cfg := dnstt.Config{Seed: seed}
		cfg.RespCap = w.Bytes(dnstt.DefaultRespCap)
		cfg.QueryCap = w.Bytes(dnstt.DefaultQueryCap)
		cfg.BudgetMedian = int64(w.Bytes(dnstt.DefaultBudgetMedian))
		srv, err := dnstt.StartServer(host, 4442, cfg, handle)
		if err != nil {
			return nil, err
		}
		resHost, err := w.newServerHost("ovh-resolver", w.Opts.ClientLocation, 0.1)
		if err != nil {
			return nil, err
		}
		res, err := dnstt.StartResolver(resHost, 443, cfg, srv.Addr())
		if err != nil {
			return nil, err
		}
		return dnstt.NewDialer(w.Client, res.Addr(), cfg), nil
	case "shadowsocks":
		cfg := shadowsocks.Config{PSK: []byte("ovh-ss"), Seed: seed}
		if _, err := shadowsocks.StartServer(host, 4443, cfg, handle); err != nil {
			return nil, err
		}
		return shadowsocks.NewDialer(w.Client, addr(4443), cfg), nil
	case "psiphon":
		cfg := psiphon.Config{HostKey: []byte("ovh-psi"), Seed: seed}
		if _, err := psiphon.StartServer(host, 4444, cfg, handle); err != nil {
			return nil, err
		}
		return psiphon.NewDialer(w.Client, addr(4444), cfg), nil
	case "stegotorus":
		cfg := stegotorus.Config{Seed: seed}
		if _, err := stegotorus.StartServer(host, 4445, cfg, handle); err != nil {
			return nil, err
		}
		return stegotorus.NewDialer(w.Client, addr(4445), cfg), nil
	case "camoufler":
		cfg := camoufler.Config{Seed: seed}
		cfg.MessageCap = w.Bytes(camoufler.DefaultMessageCap)
		imHost, err := w.newServerHost("ovh-im", w.Opts.ClientLocation, 0.1)
		if err != nil {
			return nil, err
		}
		im, err := camoufler.StartIMServer(imHost, 5222, cfg)
		if err != nil {
			return nil, err
		}
		proxy, err := camoufler.StartProxy(host, im.Addr(), fmt.Sprintf("ovh-acct-%d", seq), cfg, handle)
		if err != nil {
			return nil, err
		}
		return camoufler.NewDialer(w.Client, im.Addr(), fmt.Sprintf("ovh-acct-%d", seq), cfg, proxy), nil
	case "cloak":
		cfg := cloak.Config{UID: []byte("ovh-cloak"), RedirAddr: "bing.com", Seed: seed}
		if _, err := cloak.StartServer(host, 4446, cfg, handle); err != nil {
			return nil, err
		}
		return cloak.NewDialer(w.Client, addr(4446), cfg), nil
	case "marionette":
		model := marionette.FTPForScale(w.Opts.ByteScale)
		if _, err := marionette.StartServer(host, 4447, model, seed, handle); err != nil {
			return nil, err
		}
		return marionette.NewDialer(w.Client, addr(4447), model, seed+1)
	default:
		return nil, fmt.Errorf("testbed: no overhead recipe for %q", name)
	}
}
