package testbed

import (
	"fmt"
	"net"
	"time"

	"ptperf/internal/censor"
	"ptperf/internal/geo"
	"ptperf/internal/netem"
	"ptperf/internal/pt"
	"ptperf/internal/pt/camoufler"
	"ptperf/internal/pt/cloak"
	"ptperf/internal/pt/conjure"
	"ptperf/internal/pt/dnstt"
	"ptperf/internal/pt/marionette"
	"ptperf/internal/pt/meek"
	"ptperf/internal/pt/obfs4"
	"ptperf/internal/pt/psiphon"
	"ptperf/internal/pt/shadowsocks"
	"ptperf/internal/pt/snowflake"
	"ptperf/internal/pt/stegotorus"
	"ptperf/internal/pt/webtunnel"
	"ptperf/internal/tor"
)

// Deployment is one ready-to-measure access method: vanilla Tor or one
// of the twelve transports, wired per its integration set.
type Deployment struct {
	// Name is "tor" or the transport name.
	Name string
	// Info is the transport metadata (zero Info for vanilla Tor).
	Info pt.Info

	world *World
	// torClient is the client-side Tor (vanilla, sets 1 and 2).
	torClient *tor.Client
	// serverTor is the PT-server-side Tor client (set 3).
	serverTor *tor.Client
	// dialer is the PT client (nil for vanilla Tor).
	dialer pt.Dialer
	// bridgeGuard is the set-1 effective first hop descriptor.
	bridgeGuard *tor.Descriptor
	// snowflakeDep allows load-scenario control.
	snowflakeDep *snowflake.Deployment
}

// Dial opens an application stream to target through the deployment.
func (d *Deployment) Dial(target string) (net.Conn, error) {
	if d.Info.Set == pt.Set3 {
		return d.dialer.Dial(target)
	}
	return d.torClient.Dial(target)
}

// FreshCircuit discards circuit state so the next Dial measures a cold
// path (§5.2 accesses each website over a new circuit).
func (d *Deployment) FreshCircuit() {
	if d.torClient != nil {
		d.torClient.NewCircuit()
	}
	if d.serverTor != nil {
		d.serverTor.NewCircuit()
	}
}

// Preheat builds circuits ahead of measurement.
func (d *Deployment) Preheat() error {
	if d.torClient != nil {
		return d.torClient.Preheat()
	}
	if d.serverTor != nil {
		return d.serverTor.Preheat()
	}
	return nil
}

// Path exposes the current client circuit (vanilla, sets 1–2).
func (d *Deployment) Path() tor.Path {
	if d.torClient != nil {
		return d.torClient.Path()
	}
	if d.serverTor != nil {
		return d.serverTor.Path()
	}
	return tor.Path{}
}

// Snowflake returns the snowflake pool controller, if this deployment
// is snowflake.
func (d *Deployment) Snowflake() *snowflake.Deployment { return d.snowflakeDep }

// Recovery sums the recovery counters of every Tor client the
// deployment runs (client-side for vanilla and sets 1–2, PT-server-side
// for set 3) — the per-method recovery cost the churn experiment reports.
func (d *Deployment) Recovery() tor.RecoveryStats {
	var st tor.RecoveryStats
	if d.torClient != nil {
		st = st.Add(d.torClient.Recovery())
	}
	if d.serverTor != nil {
		st = st.Add(d.serverTor.Recovery())
	}
	return st
}

// Deployment returns (building on first use) the deployment for "tor"
// or a transport name.
func (w *World) Deployment(name string) (*Deployment, error) {
	if d, ok := w.deps[name]; ok {
		return d, nil
	}
	d, err := w.build(name)
	if err != nil {
		return nil, err
	}
	w.deps[name] = d
	return d, nil
}

// MustDeployment panics on error; topology setup errors are bugs.
func (w *World) MustDeployment(name string) *Deployment {
	d, err := w.Deployment(name)
	if err != nil {
		panic(err)
	}
	return d
}

func (w *World) build(name string) (*Deployment, error) {
	if name == "tor" {
		c, err := w.NewTorClient(nil, nil, nil, nil, 500)
		if err != nil {
			return nil, err
		}
		return &Deployment{Name: "tor", world: w, torClient: c}, nil
	}
	info, ok := pt.InfoFor(name)
	if !ok {
		return nil, fmt.Errorf("testbed: unknown transport %q", name)
	}
	d := &Deployment{Name: name, Info: info, world: w}
	var err error
	switch name {
	case "obfs4":
		err = w.buildSet1(d, func(host *HostPort, handle pt.StreamHandler) (pt.Dialer, error) {
			secret := []byte("obfs4-bridge-" + name)
			if _, err := obfs4.StartServer(host.Host, host.Port, obfs4.Config{Secret: secret, Seed: w.Opts.Seed + 11}, handle); err != nil {
				return nil, err
			}
			return obfs4.NewDialer(w.Client, host.Addr(), obfs4.Config{Secret: secret, Seed: w.Opts.Seed + 12}), nil
		})
	case "webtunnel":
		err = w.buildSet1(d, func(host *HostPort, handle pt.StreamHandler) (pt.Dialer, error) {
			key := []byte("webtunnel-session-key")
			cfg := webtunnel.Config{SessionKey: key, SNI: "static.example", Seed: w.Opts.Seed + 13}
			if _, err := webtunnel.StartServer(host.Host, host.Port, cfg, handle); err != nil {
				return nil, err
			}
			return webtunnel.NewDialer(w.Client, host.Addr(), cfg), nil
		})
	case "meek":
		err = w.buildSet1(d, func(host *HostPort, handle pt.StreamHandler) (pt.Dialer, error) {
			cfg := meek.Config{Seed: w.Opts.Seed + 14}
			cfg.SessionBudgetMedian = int64(w.Bytes(int(meek.DefaultSessionBudgetMedian)))
			cfg.BridgeRate = meek.DefaultBridgeRate * w.Opts.ByteScale
			bridge, err := meek.StartBridge(host.Host, host.Port, cfg, handle)
			if err != nil {
				return nil, err
			}
			// The CDN front: a large, busy edge in the infra city.
			frontHost, err := w.newServerHost("cdn-front", w.Opts.InfraLocation, 0.2)
			if err != nil {
				return nil, err
			}
			front, err := meek.StartFront(frontHost, 443, cfg, bridge.Addr())
			if err != nil {
				return nil, err
			}
			return meek.NewDialer(w.Client, front.Addr(), cfg), nil
		})
	case "conjure":
		err = w.buildSet1(d, func(host *HostPort, handle pt.StreamHandler) (pt.Dialer, error) {
			secret := []byte("conjure-station-secret")
			cfg := conjure.Config{Secret: secret, Seed: w.Opts.Seed + 15}
			bridge, err := conjure.StartBridge(host.Host, host.Port, cfg, handle)
			if err != nil {
				return nil, err
			}
			regHost, err := w.newServerHost("conjure-registrar", w.Opts.InfraLocation, 0.1)
			if err != nil {
				return nil, err
			}
			stationHost, err := w.newServerHost("conjure-station", w.Opts.InfraLocation, 0.1)
			if err != nil {
				return nil, err
			}
			inf, err := conjure.StartInfra(regHost, stationHost, 53001, 443, cfg, bridge.Addr())
			if err != nil {
				return nil, err
			}
			return conjure.NewDialer(w.Client, inf.RegistrarAddr(), inf.PhantomAddr(), cfg), nil
		})
	case "dnstt":
		err = w.buildSet1(d, func(host *HostPort, handle pt.StreamHandler) (pt.Dialer, error) {
			cfg := dnstt.Config{Seed: w.Opts.Seed + 16}
			// The response cap is floored so the poll count stays
			// realistic; the in-flight window shrinks by the same
			// factor, keeping the tunnel's inflight×cap/RTT throughput.
			respCap, stretch := w.ScaleQuantum(dnstt.DefaultRespCap, 128)
			cfg.RespCap = respCap
			cfg.Inflight = int(float64(dnstt.DefaultInflight)/stretch + 0.5)
			if cfg.Inflight < 1 {
				cfg.Inflight = 1
			}
			cfg.QueryCap = w.Bytes(dnstt.DefaultQueryCap)
			cfg.BudgetMedian = int64(w.Bytes(dnstt.DefaultBudgetMedian))
			srv, err := dnstt.StartServer(host.Host, host.Port, cfg, handle)
			if err != nil {
				return nil, err
			}
			// The public DoH resolver (e.g. OpenDNS) sits near the
			// client's region, moderately busy.
			resHost, err := w.newServerHost("doh-resolver", geo.London, 0.3)
			if err != nil {
				return nil, err
			}
			res, err := dnstt.StartResolver(resHost, 443, cfg, srv.Addr())
			if err != nil {
				return nil, err
			}
			return dnstt.NewDialer(w.Client, res.Addr(), cfg), nil
		})
	case "shadowsocks":
		err = w.buildSet2(d, func(host *HostPort) (pt.Dialer, error) {
			psk := []byte("shadowsocks-psk")
			cfg := shadowsocks.Config{PSK: psk, Seed: w.Opts.Seed + 17}
			if _, err := shadowsocks.StartServer(host.Host, host.Port, cfg, pt.ForwardTo(host.Host)); err != nil {
				return nil, err
			}
			return shadowsocks.NewDialer(w.Client, host.Addr(), cfg), nil
		})
	case "psiphon":
		err = w.buildSet2(d, func(host *HostPort) (pt.Dialer, error) {
			hk := []byte("psiphon-host-key")
			cfg := psiphon.Config{HostKey: hk, Seed: w.Opts.Seed + 18}
			if _, err := psiphon.StartServer(host.Host, host.Port, cfg, pt.ForwardTo(host.Host)); err != nil {
				return nil, err
			}
			return psiphon.NewDialer(w.Client, host.Addr(), cfg), nil
		})
	case "stegotorus":
		err = w.buildSet2(d, func(host *HostPort) (pt.Dialer, error) {
			cfg := stegotorus.Config{Seed: w.Opts.Seed + 19}
			if _, err := stegotorus.StartServer(host.Host, host.Port, cfg, pt.ForwardTo(host.Host)); err != nil {
				return nil, err
			}
			return stegotorus.NewDialer(w.Client, host.Addr(), cfg), nil
		})
	case "camoufler":
		err = w.buildSet2(d, func(host *HostPort) (pt.Dialer, error) {
			cfg := camoufler.Config{Seed: w.Opts.Seed + 20}
			// Floored like dnstt's response cap: larger messages at a
			// proportionally lower API rate keep the modeled
			// throughput while bounding the message count.
			msgCap, stretch := w.ScaleQuantum(camoufler.DefaultMessageCap, 1024)
			cfg.MessageCap = msgCap
			cfg.RatePerSec = camoufler.DefaultRatePerSec / stretch
			imHost, err := w.newServerHost("im-provider", geo.Frankfurt, 0.25)
			if err != nil {
				return nil, err
			}
			im, err := camoufler.StartIMServer(imHost, 5222, cfg)
			if err != nil {
				return nil, err
			}
			proxy, err := camoufler.StartProxy(host.Host, im.Addr(), "camoufler", cfg, pt.ForwardTo(host.Host))
			if err != nil {
				return nil, err
			}
			return camoufler.NewDialer(w.Client, im.Addr(), "camoufler", cfg, proxy), nil
		})
	case "snowflake":
		err = w.buildSet2(d, func(host *HostPort) (pt.Dialer, error) {
			bridge, err := snowflake.StartBridge(host.Host, host.Port, pt.ForwardTo(host.Host))
			if err != nil {
				return nil, err
			}
			brokerHost, err := w.newServerHost("snowflake-broker", w.Opts.InfraLocation, 0.2)
			if err != nil {
				return nil, err
			}
			cfg := snowflake.Config{Seed: w.Opts.Seed + 21}
			cfg.ProxyUplink = snowflake.DefaultProxyUplink * w.Opts.ByteScale
			dep, err := snowflake.Deploy(brokerHost, 443, cfg)
			if err != nil {
				return nil, err
			}
			d.snowflakeDep = dep
			if w.Censor != nil {
				// Scenarios with an endpoint-weather timeline (the
				// snowflake-surge collapse) drive the volunteer pool on
				// the virtual clock.
				w.Censor.BindLoad(func(p censor.LoadPhase) {
					dep.SetLoad(p.Util, p.Lifetime)
				})
			}
			return snowflake.NewDialer(w.Client, dep.BrokerAddr(), bridge.Addr()), nil
		})
	case "cloak":
		err = w.buildSet3(d, func(host *HostPort, handle pt.StreamHandler) (pt.Dialer, error) {
			uid := []byte("cloak-uid")
			cfg := cloak.Config{UID: uid, RedirAddr: "bing.com", Seed: w.Opts.Seed + 22}
			if _, err := cloak.StartServer(host.Host, host.Port, cfg, handle); err != nil {
				return nil, err
			}
			return cloak.NewDialer(w.Client, host.Addr(), cfg), nil
		})
	case "marionette":
		err = w.buildSet3(d, func(host *HostPort, handle pt.StreamHandler) (pt.Dialer, error) {
			model := marionette.FTPForScale(w.Opts.ByteScale)
			if _, err := marionette.StartServer(host.Host, host.Port, model, w.Opts.Seed+23, handle); err != nil {
				return nil, err
			}
			return marionette.NewDialer(w.Client, host.Addr(), model, w.Opts.Seed+24)
		})
	default:
		return nil, fmt.Errorf("testbed: transport %q has no deployment recipe", name)
	}
	if err != nil {
		return nil, err
	}
	return d, nil
}

// HostPort names a PT server endpoint during deployment.
type HostPort struct {
	// Host is the machine the PT server listens on.
	Host *netem.Host
	// Port is the listening port.
	Port int
}

// Addr renders "host:port".
func (hp *HostPort) Addr() string { return fmt.Sprintf("%s:%d", hp.Host.Name(), hp.Port) }

// ptServerPort is the conventional PT server port.
const ptServerPort = 443

// buildSet1 wires a set-1 transport: the PT server host also runs an
// unpublished guard relay; unwrapped PT streams feed the relay's OR
// protocol directly, and the client's Tor pins that bridge as guard.
func (w *World) buildSet1(d *Deployment, start func(*HostPort, pt.StreamHandler) (pt.Dialer, error)) error {
	bridgeHost, err := w.newServerHost(d.Name+"-bridge", w.Opts.InfraLocation, w.Opts.BridgeUtilization)
	if err != nil {
		return err
	}
	relay, err := tor.StartRelay(tor.RelayConfig{
		Name:        d.Name + "-bridge-guard",
		Host:        bridgeHost,
		Flags:       tor.FlagGuard | tor.FlagFast,
		Bandwidth:   bridgeHost.Egress().Rate(),
		Seed:        w.Opts.Seed + 700,
		Unpublished: true,
		Port:        9011,
		Sched:       tor.SchedConfig{Policy: w.Opts.SchedPolicy},
	})
	if err != nil {
		return err
	}
	w.registerRelay(relay)
	handle := func(_ string, conn net.Conn) { relay.ServeConn(conn) }
	dialer, err := start(&HostPort{Host: bridgeHost, Port: ptServerPort}, handle)
	if err != nil {
		return err
	}
	d.dialer = dialer
	d.bridgeGuard = relay.Descriptor()
	d.torClient, err = w.NewTorClient(relay.Descriptor(), nil, nil, func(*tor.Descriptor) (net.Conn, error) {
		return dialer.Dial("")
	}, 600+int64(len(d.Name)))
	return err
}

// buildSet2 wires a set-2 transport: the PT server splices to whichever
// guard the client's Tor names in the stream prologue.
func (w *World) buildSet2(d *Deployment, start func(*HostPort) (pt.Dialer, error)) error {
	srvHost, err := w.newServerHost(d.Name+"-server", w.Opts.InfraLocation, w.Opts.BridgeUtilization)
	if err != nil {
		return err
	}
	dialer, err := start(&HostPort{Host: srvHost, Port: ptServerPort})
	if err != nil {
		return err
	}
	d.dialer = dialer
	d.torClient, err = w.NewTorClient(nil, nil, nil, func(g *tor.Descriptor) (net.Conn, error) {
		return dialer.Dial(g.Addr)
	}, 610+int64(len(d.Name)))
	return err
}

// buildSet3 wires a set-3 transport: the PT server host runs a full Tor
// client; application streams arrive with their final destination.
func (w *World) buildSet3(d *Deployment, start func(*HostPort, pt.StreamHandler) (pt.Dialer, error)) error {
	srvHost, err := w.newServerHost(d.Name+"-server", w.Opts.InfraLocation, w.Opts.BridgeUtilization)
	if err != nil {
		return err
	}
	serverTor, err := tor.NewClient(tor.ClientConfig{
		Host:         srvHost,
		Directory:    w.Dir,
		Seed:         w.Opts.Seed*77 + int64(len(d.Name)),
		BuildTimeout: 120 * time.Second,
		Retry:        w.Opts.Retry,
	})
	if err != nil {
		return err
	}
	d.serverTor = serverTor
	dialer, err := start(&HostPort{Host: srvHost, Port: ptServerPort}, pt.HandleWithDialer(w.Net.Clock(), serverTor.Dial))
	if err != nil {
		return err
	}
	d.dialer = dialer
	return nil
}
