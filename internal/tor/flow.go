package tor

// Flow-control constants, following tor-spec §7: windows are counted in
// RELAY_DATA cells and replenished by SENDME cells.
const (
	// circWindowInit is the initial circuit-level package window.
	circWindowInit = 1000
	// circWindowInc is the cells acknowledged by one circuit SENDME.
	circWindowInc = 100
	// streamWindowInit is the initial stream-level package window.
	streamWindowInit = 500
	// streamWindowInc is the cells acknowledged by one stream SENDME.
	streamWindowInc = 50
)
