package tor

import (
	"fmt"
	"math/rand"
	"sync"

	"ptperf/internal/geo"
)

// Flag marks relay roles, mirroring consensus flags.
type Flag uint8

// Relay role flags.
const (
	// FlagGuard marks relays eligible as first hop.
	FlagGuard Flag = 1 << iota
	// FlagExit marks relays eligible as last hop.
	FlagExit
	// FlagFast marks relays eligible as middle hop (all relays here).
	FlagFast
)

// Has reports whether all bits in q are set.
func (f Flag) Has(q Flag) bool { return f&q == q }

// Descriptor describes one relay to clients.
type Descriptor struct {
	// Name is the relay nickname, unique in the directory.
	Name string
	// Addr is the relay's ORPort address "host:port".
	Addr string
	// Flags are the roles this relay may serve.
	Flags Flag
	// Bandwidth is the advertised capacity in bytes per virtual second,
	// used as the path-selection weight.
	Bandwidth float64
	// Location is the relay's city.
	Location geo.Location
}

// Directory is the in-process consensus: the set of running relays.
type Directory struct {
	mu     sync.RWMutex
	relays []*Descriptor
	byName map[string]*Descriptor
}

// NewDirectory returns an empty consensus.
func NewDirectory() *Directory {
	return &Directory{byName: make(map[string]*Descriptor)}
}

// Publish registers a relay descriptor.
func (d *Directory) Publish(desc *Descriptor) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, dup := d.byName[desc.Name]; dup {
		return fmt.Errorf("tor: duplicate relay %q", desc.Name)
	}
	d.byName[desc.Name] = desc
	d.relays = append(d.relays, desc)
	return nil
}

// Withdraw removes a relay from the consensus (a crash, or churn's
// "descriptor leaves the directory"). Clients holding the descriptor
// pointer — pinned guards, live circuits — keep working; only future
// consensus-driven selection stops seeing the relay. Returns false when
// the relay was not listed. Publishing the same descriptor again
// re-appends it, so a withdraw/rejoin cycle is deterministic but moves
// the relay to the end of the consensus order.
func (d *Directory) Withdraw(name string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.byName[name]; !ok {
		return false
	}
	delete(d.byName, name)
	for i, r := range d.relays {
		if r.Name == name {
			d.relays = append(d.relays[:i], d.relays[i+1:]...)
			break
		}
	}
	return true
}

// Lookup finds a relay by nickname.
func (d *Directory) Lookup(name string) (*Descriptor, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	desc, ok := d.byName[name]
	return desc, ok
}

// Relays returns a snapshot of all descriptors.
func (d *Directory) Relays() []*Descriptor {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return append([]*Descriptor(nil), d.relays...)
}

// WithFlag returns relays having all the given flags.
func (d *Directory) WithFlag(f Flag) []*Descriptor {
	d.mu.RLock()
	defer d.mu.RUnlock()
	var out []*Descriptor
	for _, r := range d.relays {
		if r.Flags.Has(f) {
			out = append(out, r)
		}
	}
	return out
}

// pickWeighted selects one descriptor with probability proportional to
// bandwidth, excluding any in skip.
func pickWeighted(rng *rand.Rand, cands []*Descriptor, skip ...*Descriptor) *Descriptor {
	var total float64
	excluded := func(c *Descriptor) bool {
		for _, s := range skip {
			if s != nil && s.Name == c.Name {
				return true
			}
		}
		return false
	}
	for _, c := range cands {
		if !excluded(c) {
			total += c.Bandwidth
		}
	}
	if total > 0 {
		x := rng.Float64() * total
		for _, c := range cands {
			if excluded(c) {
				continue
			}
			x -= c.Bandwidth
			if x <= 0 {
				return c
			}
		}
	}
	// Fallback for the cases the weighted draw cannot resolve: float
	// rounding can leave x > 0 after the loop, and an all-zero-bandwidth
	// candidate set never enters it. The old fallback returned the
	// *last* non-excluded candidate — order-dependent and blind to
	// weight; pick the largest remaining weight instead (first listed on
	// ties), which is deterministic and agrees with the draw's bias.
	return maxWeightPick(cands, excluded)
}

// maxWeightPick returns the non-excluded candidate with the largest
// bandwidth, first listed on ties; nil when every candidate is excluded.
func maxWeightPick(cands []*Descriptor, excluded func(*Descriptor) bool) *Descriptor {
	var best *Descriptor
	for _, c := range cands {
		if excluded(c) {
			continue
		}
		if best == nil || c.Bandwidth > best.Bandwidth {
			best = c
		}
	}
	return best
}

// Path is a guard-middle-exit relay triple.
type Path struct {
	// Guard is the first hop.
	Guard *Descriptor
	// Middle is the second hop.
	Middle *Descriptor
	// Exit is the last hop.
	Exit *Descriptor
}

// SelectPath draws a bandwidth-weighted path. Pinned entries (non-nil)
// are used as-is, mirroring the paper's fixed-circuit and fixed-guard
// experiments (§4.2.1, §5.2).
func (d *Directory) SelectPath(rng *rand.Rand, pinGuard, pinMiddle, pinExit *Descriptor) (Path, error) {
	guards := d.WithFlag(FlagGuard)
	exits := d.WithFlag(FlagExit)
	all := d.Relays()
	p := Path{Guard: pinGuard, Middle: pinMiddle, Exit: pinExit}
	if p.Guard == nil {
		p.Guard = pickWeighted(rng, guards, pinMiddle, pinExit)
	}
	if p.Exit == nil {
		p.Exit = pickWeighted(rng, exits, p.Guard, pinMiddle)
	}
	if p.Middle == nil {
		p.Middle = pickWeighted(rng, all, p.Guard, p.Exit)
	}
	if p.Guard == nil || p.Middle == nil || p.Exit == nil {
		return Path{}, fmt.Errorf("tor: not enough relays for a path (have %d)", len(all))
	}
	return p, nil
}
