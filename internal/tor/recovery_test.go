package tor

import (
	"testing"
	"time"
)

// TestRetryPolicyDefaults pins the zero-value contract: the zero policy
// must reproduce the historical hard-coded behavior (three build
// attempts, one stream re-attach), negative values disable retries, and
// positive values are taken literally.
func TestRetryPolicyDefaults(t *testing.T) {
	for _, tc := range []struct {
		policy        RetryPolicy
		stream, build int
	}{
		{RetryPolicy{}, 1, 2},
		{RetryPolicy{MaxStreamRetries: -1, MaxBuildRetries: -1}, 0, 0},
		{RetryPolicy{MaxStreamRetries: 3, MaxBuildRetries: 4}, 3, 4},
	} {
		if got := tc.policy.streamRetries(); got != tc.stream {
			t.Errorf("%+v: streamRetries = %d, want %d", tc.policy, got, tc.stream)
		}
		if got := tc.policy.buildRetries(); got != tc.build {
			t.Errorf("%+v: buildRetries = %d, want %d", tc.policy, got, tc.build)
		}
	}
}

// TestBackoffBounds checks the build backoff: BackoffBase·2^n plus a
// jitter in [0, BackoffBase), exponent capped, and — crucially for
// fault-free byte-equivalence — a zero base sleeps nothing.
func TestBackoffBounds(t *testing.T) {
	w := buildWorld(t, 1, 1, 1)
	c := newTestClient(t, w, func(cfg *ClientConfig) {
		cfg.Retry = RetryPolicy{BackoffBase: time.Second}
	})
	for n := 0; n < 10; n++ {
		eff := n
		if eff > 6 {
			eff = 6
		}
		lo := time.Second << eff
		hi := lo + time.Second
		if d := c.backoff(n); d < lo || d >= hi {
			t.Fatalf("backoff(%d) = %v outside [%v, %v)", n, d, lo, hi)
		}
	}
	def := newTestClient(t, w, nil)
	if d := def.backoff(3); d != 0 {
		t.Fatalf("zero-base backoff = %v, want 0", d)
	}
}

// TestGuardProbationExpires is the churn-resilience regression: a guard
// that failed (e.g. its link flapped) serves a finite probation and must
// come back into selection afterwards — the old behavior marked it bad
// forever, so one flap permanently shrank the guard set.
func TestGuardProbationExpires(t *testing.T) {
	w := buildWorld(t, 2, 1, 1)
	c := newTestClient(t, w, func(cfg *ClientConfig) {
		cfg.GuardProbation = 5 * time.Second
	})
	g1 := c.Guard()
	c.guardFailed(g1)
	if got := c.Recovery().GuardProbations; got != 1 {
		t.Fatalf("GuardProbations = %d, want 1", got)
	}
	// During the sentence every re-selection must avoid the failed guard.
	reselect := func() string {
		c.mu.Lock()
		c.guard = nil
		c.mu.Unlock()
		return c.Guard().Name
	}
	for i := 0; i < 20; i++ {
		if reselect() == g1.Name {
			t.Fatal("on-probation guard reselected")
		}
	}
	// One strike: the sentence is exactly the base period.
	w.net.Clock().Sleep(6 * time.Second)
	reused := false
	for i := 0; i < 200 && !reused; i++ {
		reused = reselect() == g1.Name
	}
	if !reused {
		t.Fatal("flapped guard never reused after its probation expired")
	}
}

// TestGuardProbationPermanent pins the opt-out: a negative probation
// restores mark-bad-forever (some experiments want that determinism).
func TestGuardProbationPermanent(t *testing.T) {
	w := buildWorld(t, 2, 1, 1)
	c := newTestClient(t, w, func(cfg *ClientConfig) {
		cfg.GuardProbation = -1
	})
	g1 := c.Guard()
	c.guardFailed(g1)
	w.net.Clock().Sleep(30 * time.Minute) // far beyond any finite sentence
	for i := 0; i < 50; i++ {
		c.mu.Lock()
		c.guard = nil
		c.mu.Unlock()
		if c.Guard().Name == g1.Name {
			t.Fatal("permanently failed guard reselected")
		}
	}
}

// TestInvoluntaryCircuitDeathCountsRebuild: a cached circuit that dies
// under the client (relay crash, link flap) — rather than being rotated
// via NewCircuit — must count its replacement as a rebuild, or churn
// recovery would be invisible in the counters.
func TestInvoluntaryCircuitDeathCountsRebuild(t *testing.T) {
	w := buildWorld(t, 1, 1, 1)
	c := newTestClient(t, w, nil)
	if err := c.Preheat(); err != nil {
		t.Fatal(err)
	}
	if got := c.Recovery().Rebuilds; got != 0 {
		t.Fatalf("first build counted as rebuild (%d)", got)
	}
	c.mu.Lock()
	circ := c.circ
	c.mu.Unlock()
	circ.close(nil) // the circuit dies from below; the client still caches it
	if err := c.Preheat(); err != nil {
		t.Fatal(err)
	}
	if got := c.Recovery().Rebuilds; got < 1 {
		t.Fatalf("Rebuilds = %d after involuntary circuit death, want >= 1", got)
	}
	// A voluntary rotation is not a rebuild.
	before := c.Recovery().Rebuilds
	c.NewCircuit()
	if err := c.Preheat(); err != nil {
		t.Fatal(err)
	}
	if got := c.Recovery().Rebuilds; got != before {
		t.Fatalf("voluntary NewCircuit moved Rebuilds %d → %d", before, got)
	}
}
