package tor

import (
	"io"
	"math"
	"math/rand"
	"testing"
	"time"

	"ptperf/internal/geo"
	"ptperf/internal/netem"
	"ptperf/internal/stats"
)

func TestEWMADecayHalflife(t *testing.T) {
	q := &circQueue{ewma: 8, ewmaAt: 0}
	q.decayTo(30*time.Second, 30*time.Second)
	if math.Abs(q.ewma-4) > 1e-9 {
		t.Fatalf("one half-life should halve the count: got %v", q.ewma)
	}
	q.decayTo(90*time.Second, 30*time.Second)
	if math.Abs(q.ewma-1) > 1e-9 {
		t.Fatalf("two more half-lives: got %v, want 1", q.ewma)
	}
	// Decay must be idempotent at a fixed instant (pickLocked ages both
	// comparands repeatedly within one pass).
	before := q.ewma
	q.decayTo(90*time.Second, 30*time.Second)
	if q.ewma != before {
		t.Fatalf("re-decay at the same instant changed the count: %v -> %v", before, q.ewma)
	}
}

func TestUniqueIDRetriesOnCollision(t *testing.T) {
	// The generator yields 4, 5, 6 → forced odd: 5, 5, 7. With 5 in
	// use, the draw must skip both collisions and land on 7.
	seq := []uint32{4, 5, 6}
	i := 0
	next := func() uint32 { v := seq[i]; i++; return v }
	used := func(id uint32) bool { return id == 5 }
	if got := uniqueID(next, used); got != 7 {
		t.Fatalf("uniqueID = %d, want 7 (skipping the in-use 5)", got)
	}
	if got := uniqueID(func() uint32 { return 8 }, func(uint32) bool { return false }); got != 9 {
		t.Fatalf("uniqueID must force the low bit: got %d, want 9", got)
	}
}

// TestDuplicateCreateRejected drives the raw OR protocol: a CREATE
// reusing a live circuit ID must be refused with a DESTROY, leaving the
// original circuit wired.
func TestDuplicateCreateRejected(t *testing.T) {
	n := netem.New(netem.WithSeed(3))
	relayHost := n.MustAddHost(netem.HostConfig{Name: "relay-0", Location: geo.Frankfurt})
	if _, err := StartRelay(RelayConfig{Name: "relay-0", Host: relayHost, Unpublished: true, Seed: 4}); err != nil {
		t.Fatal(err)
	}
	clientHost := n.MustAddHost(netem.HostConfig{Name: "client", Location: geo.Toronto})
	conn, err := clientHost.Dial("relay-0:9001")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	send := func(id uint32, seed int64) {
		hs, err := newHandshake(rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		create := &Cell{CircID: id, Cmd: CmdCreate}
		writeHandshake(&create.Payload, hs.public())
		if err := WriteCell(conn, create); err != nil {
			t.Fatal(err)
		}
	}
	var reply Cell
	send(9, 1)
	if err := ReadCell(conn, &reply); err != nil || reply.Cmd != CmdCreated || reply.CircID != 9 {
		t.Fatalf("first CREATE: got %v/%d, %v; want CREATED/9", reply.Cmd, reply.CircID, err)
	}
	send(9, 2)
	if err := ReadCell(conn, &reply); err != nil || reply.Cmd != CmdDestroy || reply.CircID != 9 {
		t.Fatalf("duplicate CREATE: got %v/%d, %v; want DESTROY/9", reply.Cmd, reply.CircID, err)
	}
	// A fresh ID on the same link must still work.
	send(11, 3)
	if err := ReadCell(conn, &reply); err != nil || reply.Cmd != CmdCreated || reply.CircID != 11 {
		t.Fatalf("post-duplicate CREATE: got %v/%d, %v; want CREATED/11", reply.Cmd, reply.CircID, err)
	}
}

// contendedDelays runs one bulk and one bursty client through the same
// scheduling-constrained guard and returns the guard's per-circuit
// records (bursty first) plus the network accounting at drain.
func contendedDelays(t *testing.T, policy SchedPolicy) (bursty, bulk CircuitSched, acct netem.AcctSnapshot) {
	t.Helper()
	n := netem.New(netem.WithSeed(7))
	clock := n.Clock()
	mk := func(name string, bps float64) *netem.Host {
		return n.MustAddHost(netem.HostConfig{Name: name, Location: geo.Frankfurt, UplinkBps: bps, DownlinkBps: bps})
	}
	dir := NewDirectory()
	relay := func(name string, host *netem.Host, flags Flag, sched SchedConfig) *Relay {
		r, err := StartRelay(RelayConfig{Name: name, Host: host, Directory: dir, Flags: flags, Seed: int64(len(name)), Sched: sched})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	// The guard's scheduler is the bottleneck: 4 cells per 10ms pass
	// (~205 KB/s) against fast links everywhere else, so the bulk
	// circuit's window piles up in the guard's queue, not in pipes.
	guard := relay("guard-0", mk("guard-0", 8<<20), FlagGuard|FlagFast, SchedConfig{Policy: policy, CellsPerPass: 4})
	relay("middle-0", mk("middle-0", 50<<20), FlagFast, SchedConfig{})
	relay("exit-0", mk("exit-0", 50<<20), FlagExit|FlagFast, SchedConfig{})

	web := mk("web", 50<<20)
	bulkLn, err := web.Listen(80)
	if err != nil {
		t.Fatal(err)
	}
	n.Go(func() {
		for {
			c, err := bulkLn.Accept()
			if err != nil {
				return
			}
			conn := c
			n.Go(func() {
				// Stream until the circuit dies: contention must outlast
				// every bursty ping, whichever policy is running.
				chunk := make([]byte, 32<<10)
				for {
					if _, err := conn.Write(chunk); err != nil {
						conn.Close()
						return
					}
				}
			})
		}
	})
	pingLn, err := web.Listen(81)
	if err != nil {
		t.Fatal(err)
	}
	n.Go(func() {
		for {
			c, err := pingLn.Accept()
			if err != nil {
				return
			}
			conn := c
			n.Go(func() {
				buf := make([]byte, 1)
				if _, err := io.ReadFull(conn, buf); err == nil {
					conn.Write(buf)
				}
				conn.Close()
			})
		}
	})

	g, _ := dir.Lookup("guard-0")
	m, _ := dir.Lookup("middle-0")
	e, _ := dir.Lookup("exit-0")
	client := func(name string, seed int64) *Client {
		c, err := NewClient(ClientConfig{
			Host: mk(name, 50<<20), Directory: dir,
			Guard: g, Middle: m, Exit: e, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	bulkC, burstyC := client("bulk-client", 1), client("bursty-client", 2)

	done := netem.NewChan[error](clock, 1)
	n.Go(func() {
		conn, err := bulkC.Dial("web:80")
		if err != nil {
			return
		}
		// Drains until the driver tears the circuit down at test end.
		io.Copy(io.Discard, conn)
		conn.Close()
	})
	n.Go(func() {
		// Let the bulk circuit ramp its backlog before sampling, then
		// ping through sustained contention.
		clock.Sleep(time.Second)
		for i := 0; i < 12; i++ {
			clock.Sleep(200 * time.Millisecond)
			conn, err := burstyC.Dial("web:81")
			if err != nil {
				done.Send(err)
				return
			}
			conn.Write([]byte{1})
			if _, err := io.ReadFull(conn, make([]byte, 1)); err != nil {
				conn.Close()
				done.Send(err)
				return
			}
			conn.Close()
		}
		done.Send(nil)
	})
	if err, _ := done.Recv(); err != nil {
		t.Fatal(err)
	}
	bulkC.Close()
	burstyC.Close()
	bulkLn.Close()
	pingLn.Close()
	clock.Sleep(10 * time.Second) // drain: teardowns observe their closes

	scheds := guard.CircuitScheds()
	if len(scheds) != 2 {
		t.Fatalf("guard saw %d circuits, want 2", len(scheds))
	}
	bursty, bulk = scheds[0], scheds[1]
	if bulk.Flushed < bursty.Flushed {
		bursty, bulk = bulk, bursty
	}
	return bursty, bulk, n.Acct().Snapshot()
}

func delayMedian(cs CircuitSched) float64 {
	xs := make([]float64, len(cs.Delays))
	for i, d := range cs.Delays {
		xs[i] = d.Seconds()
	}
	return stats.Median(xs)
}

// TestSchedulerFairnessEWMA pins the tentpole property: under guard
// contention the EWMA scheduler keeps the bursty circuit's queueing
// delay well below the bulk circuit's, and well below what the FIFO
// baseline inflicts on the same workload. It also audits per-circuit
// and network-wide cell conservation at drain.
func TestSchedulerFairnessEWMA(t *testing.T) {
	burstyE, bulkE, acctE := contendedDelays(t, SchedEWMA)
	burstyF, _, acctF := contendedDelays(t, SchedFIFO)

	for _, tc := range []struct {
		name string
		cs   CircuitSched
	}{{"ewma-bursty", burstyE}, {"ewma-bulk", bulkE}, {"fifo-bursty", burstyF}} {
		if tc.cs.Pending != 0 {
			t.Errorf("%s: %d cells still pending at drain", tc.name, tc.cs.Pending)
		}
		if tc.cs.Queued != tc.cs.Flushed+tc.cs.Dropped {
			t.Errorf("%s: cell conservation violated: queued=%d flushed=%d dropped=%d",
				tc.name, tc.cs.Queued, tc.cs.Flushed, tc.cs.Dropped)
		}
	}
	for name, acct := range map[string]netem.AcctSnapshot{"ewma": acctE, "fifo": acctF} {
		if err := acct.CellConservationErr(); err != nil {
			t.Errorf("%s world: %v", name, err)
		}
		if acct.CellsQueued == 0 {
			t.Errorf("%s world moved no cells through the scheduler", name)
		}
	}

	mBurstyE, mBulkE, mBurstyF := delayMedian(burstyE), delayMedian(bulkE), delayMedian(burstyF)
	t.Logf("median queueing delay: ewma bursty=%.4fs bulk=%.4fs; fifo bursty=%.4fs", mBurstyE, mBulkE, mBurstyF)
	if mBurstyE >= mBulkE {
		t.Errorf("EWMA fairness: bursty median %.4fs should undercut bulk median %.4fs", mBurstyE, mBulkE)
	}
	if mBurstyE >= mBurstyF/2 {
		t.Errorf("EWMA vs FIFO: bursty median %.4fs should be well below the FIFO baseline %.4fs", mBurstyE, mBurstyF)
	}
}

// TestSchedulerTransparentWhenUncontended checks that a single circuit
// with an ample budget suffers no material queueing: the scheduler must
// not tax the uncontended paper experiments.
func TestSchedulerTransparentWhenUncontended(t *testing.T) {
	w := buildWorld(t, 1, 1, 1)
	c := newTestClient(t, w, nil)
	conn, err := c.Dial(w.target)
	if err != nil {
		t.Fatal(err)
	}
	msg := make([]byte, 64<<10)
	errc := netem.NewChan[error](w.net.Clock(), 1)
	w.net.Go(func() {
		_, err := conn.Write(msg)
		errc.Send(err)
	})
	if _, err := io.ReadFull(conn, make([]byte, len(msg))); err != nil {
		t.Fatal(err)
	}
	if err, _ := errc.Recv(); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	c.Close()
	w.net.Clock().Sleep(5 * time.Second)

	for _, r := range w.relays {
		st := r.SchedStats()
		if st.Pending != 0 || st.Queued != st.Flushed+st.Dropped {
			t.Errorf("%s: cells unaccounted at drain: %+v", r.Descriptor().Name, st)
		}
		if st.Flushed > 0 && st.MeanDelay() > 20*time.Millisecond {
			t.Errorf("%s: uncontended mean queueing delay %v too high", r.Descriptor().Name, st.MeanDelay())
		}
	}
}
