// Package tor implements the Tor substrate of the PTPerf simulation: an
// onion-routing overlay with fixed-size cells, X25519 circuit handshakes,
// layered AES-CTR encryption with per-hop digests, guard/middle/exit
// relays, bandwidth-weighted path selection, window-based flow control
// and a SOCKS5-fronted client.
//
// The substrate intentionally mirrors the architecture of the real Tor
// protocol (tor-spec.txt) at the level that matters for performance
// measurement: per-hop round trips during circuit construction, per-cell
// framing overhead, layered crypto and windowed delivery. Identity
// authentication (certificates, consensus signatures) is out of scope and
// documented as such in DESIGN.md.
package tor

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Cell geometry, following tor-spec: fixed 512-byte cells.
const (
	// CellSize is the wire size of every cell.
	CellSize = 512
	// headerSize is circID (4 bytes) + command (1 byte).
	headerSize = 5
	// PayloadSize is the usable payload of a cell.
	PayloadSize = CellSize - headerSize

	// relayHeaderSize is relayCmd(1) + recognized(2) + streamID(2) +
	// digest(4) + length(2).
	relayHeaderSize = 11
	// MaxRelayData is the maximum data bytes carried by one RELAY_DATA.
	MaxRelayData = PayloadSize - relayHeaderSize
)

// Command is a link-level cell command.
type Command byte

// Link-level commands.
const (
	// CmdPadding is ignored by receivers.
	CmdPadding Command = 0
	// CmdCreate carries the client half of a circuit handshake.
	CmdCreate Command = 1
	// CmdCreated carries the relay half of a circuit handshake.
	CmdCreated Command = 2
	// CmdRelay carries an onion-encrypted relay payload.
	CmdRelay Command = 3
	// CmdDestroy tears down a circuit.
	CmdDestroy Command = 4
)

func (c Command) String() string {
	switch c {
	case CmdPadding:
		return "PADDING"
	case CmdCreate:
		return "CREATE"
	case CmdCreated:
		return "CREATED"
	case CmdRelay:
		return "RELAY"
	case CmdDestroy:
		return "DESTROY"
	default:
		return fmt.Sprintf("CMD(%d)", byte(c))
	}
}

// RelayCommand is the command of a relay cell after onion decryption.
type RelayCommand byte

// Relay commands.
const (
	// RelayBegin asks the exit to open a TCP connection.
	RelayBegin RelayCommand = 1
	// RelayData carries stream payload bytes.
	RelayData RelayCommand = 2
	// RelayEnd closes a stream.
	RelayEnd RelayCommand = 3
	// RelayConnected acknowledges RelayBegin.
	RelayConnected RelayCommand = 4
	// RelaySendme extends a flow-control window (streamID 0 ⇒ circuit).
	RelaySendme RelayCommand = 5
	// RelayExtend asks the current last hop to extend the circuit.
	RelayExtend RelayCommand = 6
	// RelayExtended reports a successful extension.
	RelayExtended RelayCommand = 7
	// RelayTruncated reports a failed extension or downstream teardown.
	RelayTruncated RelayCommand = 8
)

func (c RelayCommand) String() string {
	switch c {
	case RelayBegin:
		return "BEGIN"
	case RelayData:
		return "DATA"
	case RelayEnd:
		return "END"
	case RelayConnected:
		return "CONNECTED"
	case RelaySendme:
		return "SENDME"
	case RelayExtend:
		return "EXTEND"
	case RelayExtended:
		return "EXTENDED"
	case RelayTruncated:
		return "TRUNCATED"
	default:
		return fmt.Sprintf("RELAY(%d)", byte(c))
	}
}

// Cell is one fixed-size link cell.
type Cell struct {
	// CircID identifies the circuit on this link.
	CircID uint32
	// Cmd is the link command.
	Cmd Command
	// Payload is exactly PayloadSize bytes.
	Payload [PayloadSize]byte
}

// Encode writes the wire form of the cell.
func (c *Cell) Encode(buf []byte) []byte {
	if cap(buf) < CellSize {
		buf = make([]byte, CellSize)
	}
	buf = buf[:CellSize]
	binary.BigEndian.PutUint32(buf[0:4], c.CircID)
	buf[4] = byte(c.Cmd)
	copy(buf[headerSize:], c.Payload[:])
	return buf
}

// Decode parses a wire cell.
func (c *Cell) Decode(buf []byte) error {
	if len(buf) != CellSize {
		return fmt.Errorf("tor: cell must be %d bytes, got %d", CellSize, len(buf))
	}
	c.CircID = binary.BigEndian.Uint32(buf[0:4])
	c.Cmd = Command(buf[4])
	copy(c.Payload[:], buf[headerSize:])
	return nil
}

// WriteCell writes one cell to w. The encode buffer is pooled: a stack
// array here escapes through the io.Writer call and used to cost one
// 512-byte heap allocation per cell.
func WriteCell(w io.Writer, c *Cell) error {
	buf, base := getCellBuf()
	_, err := w.Write(c.Encode(buf[:0]))
	putCellBuf(base)
	return err
}

// ReadCell reads one cell from r.
func ReadCell(r io.Reader, c *Cell) error {
	buf, base := getCellBuf()
	_, err := io.ReadFull(r, buf)
	if err == nil {
		err = c.Decode(buf)
	}
	putCellBuf(base)
	return err
}

// Wire-buffer accessors for the zero-copy cell path: hot loops operate
// directly on pooled CellSize byte slices (cellBufPool) instead of
// round-tripping through the Cell struct, so a relayed cell's payload
// crosses a relay with exactly one in-copy and one out-copy (the pipe
// boundary) and no intermediate allocation.

// getCellBuf returns a pooled CellSize wire buffer and its backing
// array for putCellBuf / ownership handoff.
func getCellBuf() (buf []byte, base *[]byte) {
	base = cellBufPool.Get().(*[]byte)
	return (*base)[:CellSize], base
}

// wireCircID reads the circuit ID of a wire cell.
func wireCircID(buf []byte) uint32 { return binary.BigEndian.Uint32(buf[0:4]) }

// setWireHeader stamps the circuit ID and command of a wire cell.
func setWireHeader(buf []byte, id uint32, cmd Command) {
	binary.BigEndian.PutUint32(buf[0:4], id)
	buf[4] = byte(cmd)
}

// wirePayload returns the PayloadSize payload view of a wire cell.
func wirePayload(buf []byte) []byte { return buf[headerSize:CellSize] }

// readWire fills one wire cell from r.
func readWire(r io.Reader, buf []byte) error {
	_, err := io.ReadFull(r, buf)
	return err
}

// RelayCell is the decrypted interior of a CmdRelay cell.
type RelayCell struct {
	// Cmd is the relay command.
	Cmd RelayCommand
	// StreamID identifies the stream (0 for circuit-level commands).
	StreamID uint16
	// Data is the command payload (at most MaxRelayData bytes).
	Data []byte
}

// ErrRelayTooLong reports an oversized relay payload.
var ErrRelayTooLong = errors.New("tor: relay data exceeds cell capacity")

// marshalRelayInto builds the plaintext relay payload in p (a
// PayloadSize-byte slice) with a zero digest; the crypto layer fills
// the digest before encrypting. p is zeroed first: it is typically a
// recycled pooled buffer carrying stale bytes, and the padding (which
// both digest computations cover) must be deterministic.
func marshalRelayInto(p []byte, rc *RelayCell) error {
	if len(rc.Data) > MaxRelayData {
		return ErrRelayTooLong
	}
	for i := range p {
		p[i] = 0
	}
	p[0] = byte(rc.Cmd)
	// p[1:3] is "recognized", zero in plaintext.
	binary.BigEndian.PutUint16(p[3:5], rc.StreamID)
	// p[5:9] is the digest, filled by the crypto layer.
	binary.BigEndian.PutUint16(p[9:11], uint16(len(rc.Data)))
	copy(p[relayHeaderSize:], rc.Data)
	return nil
}

// marshalRelay is marshalRelayInto with a fresh payload array.
func marshalRelay(rc *RelayCell) ([PayloadSize]byte, error) {
	var p [PayloadSize]byte
	err := marshalRelayInto(p[:], rc)
	return p, err
}

// parseRelayView parses a decrypted relay payload; ok reports whether
// the recognized field is zero and the length is sane (digest checking
// is the crypto layer's job). Data is a view into p — valid only while
// p's buffer is; callers that retain it past the cell's lifetime (the
// client's circuit-build control queue) copy it first.
func parseRelayView(p []byte) (RelayCell, bool) {
	if p[1] != 0 || p[2] != 0 {
		return RelayCell{}, false
	}
	n := binary.BigEndian.Uint16(p[9:11])
	if int(n) > MaxRelayData {
		return RelayCell{}, false
	}
	rc := RelayCell{
		Cmd:      RelayCommand(p[0]),
		StreamID: binary.BigEndian.Uint16(p[3:5]),
		Data:     p[relayHeaderSize : relayHeaderSize+int(n)],
	}
	return rc, true
}

// parseRelay is parseRelayView with Data copied out of the payload.
func parseRelay(p *[PayloadSize]byte) (RelayCell, bool) {
	rc, ok := parseRelayView(p[:])
	if ok {
		rc.Data = append([]byte(nil), rc.Data...)
	}
	return rc, ok
}
