package tor

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net"
	"testing"
	"time"

	"ptperf/internal/geo"
	"ptperf/internal/netem"
	"ptperf/internal/socks"
)

// testWorld builds a small Tor network plus an echo server.
type testWorld struct {
	net    *netem.Network
	dir    *Directory
	client *netem.Host
	target string
	relays []*Relay
}

func buildWorld(t *testing.T, nGuard, nMiddle, nExit int) *testWorld {
	t.Helper()
	n := netem.New(netem.WithTimeScale(0.001), netem.WithSeed(11))
	dir := NewDirectory()
	w := &testWorld{net: n, dir: dir}

	locs := []geo.Location{geo.Frankfurt, geo.London, geo.NewYork}
	mk := func(kind string, i int, flags Flag) {
		host := n.MustAddHost(netem.HostConfig{
			Name:     fmt.Sprintf("%s-%d", kind, i),
			Location: locs[i%len(locs)],
			// Generous links so protocol tests are latency-bound.
			UplinkBps: 50 << 20, DownlinkBps: 50 << 20,
		})
		r, err := StartRelay(RelayConfig{
			Name: fmt.Sprintf("%s-%d", kind, i), Host: host,
			Directory: dir, Flags: flags, Seed: int64(i + 1),
		})
		if err != nil {
			t.Fatal(err)
		}
		w.relays = append(w.relays, r)
	}
	for i := 0; i < nGuard; i++ {
		mk("guard", i, FlagGuard|FlagFast)
	}
	for i := 0; i < nMiddle; i++ {
		mk("middle", i, FlagFast)
	}
	for i := 0; i < nExit; i++ {
		mk("exit", i, FlagExit|FlagFast)
	}

	w.client = n.MustAddHost(netem.HostConfig{Name: "client", Location: geo.Toronto})
	web := n.MustAddHost(netem.HostConfig{Name: "web", Location: geo.NewYork})
	ln, err := web.Listen(80)
	if err != nil {
		t.Fatal(err)
	}
	w.target = "web:80"
	n.Go(func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			conn := c
			n.Go(func() {
				defer conn.Close()
				io.Copy(conn, conn) // echo until client half-closes
			})
		}
	})
	t.Cleanup(func() { ln.Close() })
	return w
}

func newTestClient(t *testing.T, w *testWorld, mut func(*ClientConfig)) *Client {
	t.Helper()
	cfg := ClientConfig{Host: w.client, Directory: w.dir, Seed: 42}
	if mut != nil {
		mut(&cfg)
	}
	c, err := NewClient(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestThreeHopEcho(t *testing.T) {
	w := buildWorld(t, 2, 2, 2)
	c := newTestClient(t, w, nil)

	conn, err := c.Dial(w.target)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	msg := bytes.Repeat([]byte("tor-cell-data."), 300) // > several cells
	if _, err := conn.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(conn, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("echo corrupted through 3 hops")
	}

	p := c.Path()
	if p.Guard == nil || p.Middle == nil || p.Exit == nil {
		t.Fatal("path incomplete")
	}
	if !p.Guard.Flags.Has(FlagGuard) || !p.Exit.Flags.Has(FlagExit) {
		t.Fatal("path violates flags")
	}
	if p.Guard.Name == p.Middle.Name || p.Middle.Name == p.Exit.Name || p.Guard.Name == p.Exit.Name {
		t.Fatal("path repeats a relay")
	}
}

func TestLargeTransferFlowControl(t *testing.T) {
	w := buildWorld(t, 1, 1, 1)
	c := newTestClient(t, w, nil)
	conn, err := c.Dial(w.target)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// More data than a full circuit window (1000 cells ≈ 498 KB) to
	// force SENDME exchanges in both directions.
	payload := make([]byte, 700<<10)
	rnd := rand.New(rand.NewSource(5))
	rnd.Read(payload)

	errc := netem.NewChan[error](w.net.Clock(), 1)
	w.net.Go(func() {
		_, err := conn.Write(payload)
		errc.Send(err)
	})
	got := make([]byte, len(payload))
	if _, err := io.ReadFull(conn, got); err != nil {
		t.Fatal(err)
	}
	if err, _ := errc.Recv(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("large transfer corrupted")
	}
}

func TestGuardPersistence(t *testing.T) {
	w := buildWorld(t, 3, 2, 2)
	c := newTestClient(t, w, nil)
	g1 := c.Guard()
	for i := 0; i < 5; i++ {
		c.NewCircuit()
		if err := c.Preheat(); err != nil {
			t.Fatal(err)
		}
		if got := c.Path().Guard.Name; got != g1.Name {
			t.Fatalf("guard changed: %s -> %s", g1.Name, got)
		}
	}
}

func TestFixedCircuit(t *testing.T) {
	w := buildWorld(t, 2, 2, 2)
	g, _ := w.dir.Lookup("guard-0")
	m, _ := w.dir.Lookup("middle-1")
	e, _ := w.dir.Lookup("exit-0")
	c := newTestClient(t, w, func(cfg *ClientConfig) {
		cfg.Guard, cfg.Middle, cfg.Exit = g, m, e
	})
	for i := 0; i < 3; i++ {
		c.NewCircuit()
		if err := c.Preheat(); err != nil {
			t.Fatal(err)
		}
		p := c.Path()
		if p.Guard.Name != "guard-0" || p.Middle.Name != "middle-1" || p.Exit.Name != "exit-0" {
			t.Fatalf("pinned path not honored: %+v", p)
		}
	}
}

func TestStreamRefused(t *testing.T) {
	w := buildWorld(t, 1, 1, 1)
	c := newTestClient(t, w, nil)
	if _, err := c.Dial("nonexistent:80"); err == nil {
		t.Fatal("dialing a dead target should fail")
	}
}

func TestMultipleStreamsOneCircuit(t *testing.T) {
	w := buildWorld(t, 1, 1, 1)
	c := newTestClient(t, w, nil)
	if err := c.Preheat(); err != nil {
		t.Fatal(err)
	}
	p0 := c.Path()

	const streams = 4
	errs := netem.NewChan[error](w.net.Clock(), streams)
	for i := 0; i < streams; i++ {
		i := i
		w.net.Go(func() {
			conn, err := c.Dial(w.target)
			if err != nil {
				errs.Send(err)
				return
			}
			defer conn.Close()
			msg := []byte(fmt.Sprintf("stream-%d-payload", i))
			if _, err := conn.Write(msg); err != nil {
				errs.Send(err)
				return
			}
			got := make([]byte, len(msg))
			if _, err := io.ReadFull(conn, got); err != nil {
				errs.Send(err)
				return
			}
			if !bytes.Equal(got, msg) {
				errs.Send(fmt.Errorf("stream %d corrupted: %q", i, got))
				return
			}
			errs.Send(nil)
		})
	}
	for i := 0; i < streams; i++ {
		if err, _ := errs.Recv(); err != nil {
			t.Fatal(err)
		}
	}
	if c.Path() != p0 {
		t.Fatal("streams should share one circuit")
	}
}

func TestNewCircuitChangesRelays(t *testing.T) {
	w := buildWorld(t, 1, 4, 4)
	c := newTestClient(t, w, nil)
	seen := map[string]bool{}
	for i := 0; i < 8; i++ {
		c.NewCircuit()
		if err := c.Preheat(); err != nil {
			t.Fatal(err)
		}
		p := c.Path()
		seen[p.Middle.Name+"/"+p.Exit.Name] = true
	}
	if len(seen) < 2 {
		t.Fatal("circuit rotation never changed middle/exit")
	}
}

func TestSOCKSFrontend(t *testing.T) {
	w := buildWorld(t, 1, 1, 1)
	c := newTestClient(t, w, nil)
	addr, stop, err := c.ServeSOCKS(9050)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	conn, err := w.client.Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := socks.ClientHandshake(conn, w.target); err != nil {
		t.Fatal(err)
	}
	msg := []byte("through socks and tor")
	conn.Write(msg)
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(conn, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("socks roundtrip corrupted")
	}
}

func TestCircuitBuildLatencyOrdering(t *testing.T) {
	// A full 3-hop build must cost strictly more virtual time than a
	// single stream open on a built circuit.
	w := buildWorld(t, 1, 1, 1)
	c := newTestClient(t, w, nil)

	start := w.net.Now()
	if err := c.Preheat(); err != nil {
		t.Fatal(err)
	}
	buildTime := w.net.Since(start)

	start = w.net.Now()
	conn, err := c.Dial(w.target)
	if err != nil {
		t.Fatal(err)
	}
	dialTime := w.net.Since(start)
	conn.Close()

	if buildTime <= dialTime {
		t.Fatalf("build (%v) should exceed stream open (%v)", buildTime, dialTime)
	}
}

func TestDirectoryPathSelectionProperties(t *testing.T) {
	dir := NewDirectory()
	for i := 0; i < 9; i++ {
		flags := FlagFast
		if i%3 == 0 {
			flags |= FlagGuard
		}
		if i%3 == 1 {
			flags |= FlagExit
		}
		dir.Publish(&Descriptor{
			Name: fmt.Sprintf("r%d", i), Addr: fmt.Sprintf("r%d:9001", i),
			Flags: flags, Bandwidth: float64(1+i) * 1e6,
		})
	}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 200; i++ {
		p, err := dir.SelectPath(rng, nil, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !p.Guard.Flags.Has(FlagGuard) {
			t.Fatal("guard lacks Guard flag")
		}
		if !p.Exit.Flags.Has(FlagExit) {
			t.Fatal("exit lacks Exit flag")
		}
		if p.Guard.Name == p.Middle.Name || p.Middle.Name == p.Exit.Name || p.Guard.Name == p.Exit.Name {
			t.Fatal("path repeats a relay")
		}
	}
}

func TestDirectoryDuplicatePublish(t *testing.T) {
	dir := NewDirectory()
	d := &Descriptor{Name: "x", Addr: "x:1", Flags: FlagFast, Bandwidth: 1}
	if err := dir.Publish(d); err != nil {
		t.Fatal(err)
	}
	if err := dir.Publish(d); err == nil {
		t.Fatal("duplicate publish should fail")
	}
}

func TestBandwidthWeightedSelection(t *testing.T) {
	dir := NewDirectory()
	dir.Publish(&Descriptor{Name: "big", Addr: "big:1", Flags: FlagGuard | FlagFast, Bandwidth: 9e6})
	dir.Publish(&Descriptor{Name: "small", Addr: "small:1", Flags: FlagGuard | FlagFast, Bandwidth: 1e6})
	rng := rand.New(rand.NewSource(4))
	counts := map[string]int{}
	for i := 0; i < 2000; i++ {
		counts[pickWeighted(rng, dir.WithFlag(FlagGuard)).Name]++
	}
	if counts["big"] < 5*counts["small"] {
		t.Fatalf("weighting off: %v", counts)
	}
}

func TestStreamReadDeadline(t *testing.T) {
	w := buildWorld(t, 1, 1, 1)
	c := newTestClient(t, w, nil)
	conn, err := c.Dial(w.target)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetReadDeadline(w.net.VirtualDeadline(20 * time.Millisecond))
	buf := make([]byte, 1)
	_, err = conn.Read(buf)
	ne, ok := err.(net.Error)
	if !ok || !ne.Timeout() {
		t.Fatalf("want timeout, got %v", err)
	}
}
