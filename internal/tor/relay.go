package tor

import (
	"fmt"
	"math/rand"
	"net"
	"sort"
	"sync"

	"ptperf/internal/netem"
)

// DefaultORPort is the port relays listen on unless configured otherwise.
const DefaultORPort = 9001

// RelayConfig configures one relay process.
type RelayConfig struct {
	// Name is the unique nickname published to the directory.
	Name string
	// Host is the virtual machine the relay runs on. The host's link
	// capacity and background utilization model the relay's real load.
	Host *netem.Host
	// Directory receives the descriptor; required unless Unpublished.
	Directory *Directory
	// Flags are the relay's roles.
	Flags Flag
	// Bandwidth is the advertised selection weight in bytes per virtual
	// second. Zero defaults to the host's egress capacity.
	Bandwidth float64
	// Port overrides DefaultORPort.
	Port int
	// Seed makes handshake key generation deterministic.
	Seed int64
	// Unpublished relays (private bridges acting as guards for PT
	// servers) are reachable but never selected from the consensus.
	Unpublished bool
	// Sched tunes the relay cell scheduler (see SchedConfig); the zero
	// value selects EWMA priority with bandwidth-derived budgets.
	Sched SchedConfig
}

// Relay is a running onion router.
type Relay struct {
	cfg   RelayConfig
	desc  *Descriptor
	clock *netem.Clock

	rngMu sync.Mutex
	rng   *rand.Rand

	mu      sync.Mutex
	ln      *netem.Listener
	sched   *cellScheduler
	retired []*cellScheduler // schedulers of crashed incarnations (stats survive restarts)
	closed  bool
	crashed bool
}

// StartRelay launches a relay and publishes its descriptor.
func StartRelay(cfg RelayConfig) (*Relay, error) {
	if cfg.Host == nil {
		return nil, fmt.Errorf("tor: relay %q needs a host", cfg.Name)
	}
	if cfg.Port == 0 {
		cfg.Port = DefaultORPort
	}
	if cfg.Bandwidth <= 0 {
		cfg.Bandwidth = cfg.Host.Egress().Rate()
	}
	if cfg.Flags == 0 {
		cfg.Flags = FlagFast
	}
	ln, err := cfg.Host.Listen(cfg.Port)
	if err != nil {
		return nil, err
	}
	r := &Relay{
		cfg:   cfg,
		ln:    ln,
		clock: cfg.Host.Network().Clock(),
		rng:   rand.New(rand.NewSource(cfg.Seed*2654435761 + 17)),
		desc: &Descriptor{
			Name:      cfg.Name,
			Addr:      fmt.Sprintf("%s:%d", cfg.Host.Name(), cfg.Port),
			Flags:     cfg.Flags,
			Bandwidth: cfg.Bandwidth,
			Location:  cfg.Host.Location(),
		},
	}
	if !cfg.Unpublished {
		if cfg.Directory == nil {
			return nil, fmt.Errorf("tor: relay %q needs a directory (or Unpublished)", cfg.Name)
		}
		if err := cfg.Directory.Publish(r.desc); err != nil {
			ln.Close()
			return nil, err
		}
	}
	r.sched = newCellScheduler(r.clock, cfg.Host.Network().Acct(), cfg.Sched, cfg.Bandwidth)
	r.clock.Go(func() { r.acceptLoop(ln) })
	return r, nil
}

// Descriptor returns the relay's directory entry (also for unpublished
// bridges, where it is handed to clients out of band).
func (r *Relay) Descriptor() *Descriptor { return r.desc }

// Host returns the virtual machine the relay runs on.
func (r *Relay) Host() *netem.Host { return r.cfg.Host }

// Name returns the relay's directory nickname. Names are unique within
// a world, so the metrics layer uses them as series labels.
func (r *Relay) Name() string { return r.cfg.Name }

// scheduler returns the current incarnation's cell scheduler. Links
// bind it once at creation, so a restart's fresh scheduler never sees
// calls from links that belong to a crashed incarnation.
func (r *Relay) scheduler() *cellScheduler {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sched
}

// Close stops accepting connections and shuts the cell scheduler down
// (queued cells of live circuits are dropped; subsequent relay traffic
// through this relay fails).
func (r *Relay) Close() error {
	r.mu.Lock()
	r.closed = true
	ln, sched := r.ln, r.sched
	r.mu.Unlock()
	err := ln.Close()
	sched.stop()
	return err
}

// Crash models the relay process dying: the descriptor is withdrawn
// from the consensus, the listener closes, the scheduler drops every
// queued cell (Acct-counted), and every conn touching the relay's host
// is aborted — live links observe read errors and tear their circuits
// down exactly as they would for a real peer crash. Returns false if
// the relay was already crashed or closed.
func (r *Relay) Crash() bool {
	r.mu.Lock()
	if r.crashed || r.closed {
		r.mu.Unlock()
		return false
	}
	r.crashed = true
	ln, sched := r.ln, r.sched
	r.mu.Unlock()
	if !r.cfg.Unpublished && r.cfg.Directory != nil {
		r.cfg.Directory.Withdraw(r.cfg.Name)
	}
	ln.Close()
	sched.stop()
	r.cfg.Host.Network().AbortHostConns(r.cfg.Host.Name())
	return true
}

// Crashed reports whether the relay is currently crashed.
func (r *Relay) Crashed() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.crashed
}

// Restart brings a crashed relay back: a fresh listener on the same
// port, a fresh cell scheduler (the crashed one is retired but keeps
// its cumulative stats), and the same descriptor republished — pinned
// descriptor pointers held by clients stay valid across the cycle.
func (r *Relay) Restart() error {
	r.mu.Lock()
	if !r.crashed || r.closed {
		r.mu.Unlock()
		return fmt.Errorf("tor: relay %q is not crashed", r.cfg.Name)
	}
	r.mu.Unlock()
	ln, err := r.cfg.Host.Listen(r.cfg.Port)
	if err != nil {
		return err
	}
	sched := newCellScheduler(r.clock, r.cfg.Host.Network().Acct(), r.cfg.Sched, r.cfg.Bandwidth)
	r.mu.Lock()
	r.retired = append(r.retired, r.sched)
	r.ln = ln
	r.sched = sched
	r.crashed = false
	r.mu.Unlock()
	r.clock.Go(func() { r.acceptLoop(ln) })
	if !r.cfg.Unpublished && r.cfg.Directory != nil {
		if err := r.cfg.Directory.Publish(r.desc); err != nil {
			return err
		}
	}
	return nil
}

// acceptLoop serves one listener incarnation; it is handed the listener
// it owns so a crash/restart cycle can never cross-wire two loops.
func (r *Relay) acceptLoop(ln *netem.Listener) {
	for {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		conn := c
		r.clock.Go(func() { r.ServeConn(conn) })
	}
}

// ServeConn runs the OR protocol on one inbound link. It is exported so
// pluggable-transport servers can hand obfuscated connections directly to
// a co-located relay (integration set 1 of the paper, where the PT server
// is the guard).
func (r *Relay) ServeConn(conn net.Conn) {
	l := &link{relay: r, sched: r.scheduler(), conn: conn, wmu: netem.NewMutex(r.clock), circs: make(map[uint32]*relayCirc)}
	l.serve()
}

func (r *Relay) newHandshake() (*handshake, error) {
	r.rngMu.Lock()
	defer r.rngMu.Unlock()
	return newHandshake(r.rng)
}

// uniqueID draws candidate circuit IDs from next (forced non-zero via
// the low bit) until one passes the used check. Extracted so the
// collision retry is testable with a scripted generator.
func uniqueID(next func() uint32, used func(uint32) bool) uint32 {
	for {
		if id := next() | 1; !used(id) {
			return id
		}
	}
}

// randID draws a circuit ID not live on link l (the upstream link the
// EXTEND arrived on — the namespace this relay can see). The ID is
// spent in a CREATE on a freshly dialed downstream conn, which today
// carries only that one circuit; if downstream conns are ever
// multiplexed, the authoritative collision guard is the *receiving*
// relay's duplicate-CREATE rejection (handleCreate answers a live ID
// with DESTROY, and handleExtend maps any non-CREATED reply to
// RelayTruncated), so a clash degrades to a failed extension, never a
// cross-wired circuit.
func (r *Relay) randID(l *link) uint32 {
	return uniqueID(
		func() uint32 {
			r.rngMu.Lock()
			defer r.rngMu.Unlock()
			return r.rng.Uint32()
		},
		func(id uint32) bool { return l != nil && l.circuit(id) != nil },
	)
}

// link is one upstream connection carrying circuits.
type link struct {
	relay *Relay
	// sched is the scheduler incarnation the link was accepted under;
	// its queues are retired with it, so a restarted relay's scheduler
	// never receives cells from a pre-crash link.
	sched *cellScheduler
	conn  net.Conn

	// wmu serializes upstream cell writes; scheduler-aware because a
	// write can park on conn backpressure while other circuits contend.
	wmu *netem.Mutex

	// flusher is the slow-path scheduler writer queue, created lazily
	// (under the scheduler's mu) for links whose conn lacks the
	// non-parking zero-copy write path — PT stream tunnels fed through
	// ServeConn. See link.flushCell.
	flusher *netem.Chan[queuedCell]

	mu    sync.Mutex
	circs map[uint32]*relayCirc
}

// writeCell writes one control cell (CREATED, DESTROY) directly to the
// link. Relay cells go through the scheduler queues instead.
func (l *link) writeCell(c *Cell) error {
	buf, base := getCellBuf()
	err := l.writeWire(c.Encode(buf[:0]))
	putCellBuf(base)
	return err
}

// flushCell writes one scheduled cell without parking; the scheduler's
// mu is held. Fast links (netem conns) take the zero-copy owned write
// inline — cell framing stays atomic because every cell is a single
// segment serialized on the conn's own writer lock. Other conns get a
// lazily-spawned flusher goroutine that is allowed to park on real
// backpressure, fed through an unbounded scheduler-aware queue (bounded
// in practice by the circuits' flow-control windows). false means the
// link cannot accept the cell this pass (retry next interval); true
// means the cell was consumed — written, handed off, or dropped
// against a dead link, whose serve loop is already tearing its
// circuits down (the retired blocking scheduler ignored those write
// errors the same way).
func (l *link) flushCell(s *cellScheduler, cell queuedCell) bool {
	if fc, isFast := l.conn.(*netem.Conn); isFast {
		ok, _ := fc.TryWriteOwned(cell.buf, cell.base, &cellBufPool)
		return ok
	}
	if l.flusher == nil {
		f := netem.NewChan[queuedCell](s.clock, 0)
		l.flusher = f
		s.flushers = append(s.flushers, f)
		s.clock.Go(func() {
			for {
				c, ok := f.Recv()
				if !ok {
					return
				}
				l.writeWire(c.buf)
				putCellBuf(c.base)
			}
		})
	}
	if !l.flusher.TrySend(cell) {
		putCellBuf(cell.base)
	}
	return true
}

// writeWire writes wire-ready bytes under the link write lock.
func (l *link) writeWire(buf []byte) error {
	l.wmu.Lock()
	defer l.wmu.Unlock()
	_, err := l.conn.Write(buf)
	return err
}

// writeBudget probes the link conn's writable budget in bytes. Conns
// without a probe (PT stream tunnels fed via ServeConn) report def —
// effectively unlimited within one pass — and fall back to blocking
// writes when they do back up.
func (l *link) writeBudget(def int) int {
	if wb, ok := l.conn.(interface{ WriteBudget() int }); ok {
		return wb.WriteBudget()
	}
	return def
}

func (l *link) circuit(id uint32) *relayCirc {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.circs[id]
}

func (l *link) removeCircuit(id uint32) {
	l.mu.Lock()
	delete(l.circs, id)
	l.mu.Unlock()
}

// serve is the upstream read loop. It reads into a pooled wire buffer
// that is reused across cells except when a relay cell is forwarded
// downstream zero-copy, in which case ownership moves with the cell and
// the loop fetches a fresh buffer.
func (l *link) serve() {
	defer l.teardown()
	buf, base := getCellBuf()
	defer func() { putCellBuf(base) }()
	for {
		if err := readWire(l.conn, buf); err != nil {
			return
		}
		switch Command(buf[4]) {
		case CmdPadding:
			// ignored
		case CmdCreate:
			var cell Cell
			if err := cell.Decode(buf); err != nil {
				return
			}
			if err := l.handleCreate(&cell); err != nil {
				return
			}
		case CmdRelay:
			circ := l.circuit(wireCircID(buf))
			if circ == nil {
				continue
			}
			consumed, err := circ.handleRelayWire(buf, base)
			if consumed {
				buf, base = getCellBuf()
			}
			if err != nil {
				circ.destroy(true, false)
			}
		case CmdDestroy:
			if circ := l.circuit(wireCircID(buf)); circ != nil {
				circ.destroy(false, true)
			}
		}
	}
}

func (l *link) teardown() {
	l.mu.Lock()
	circs := make([]*relayCirc, 0, len(l.circs))
	for _, c := range l.circs {
		circs = append(circs, c)
	}
	// Deterministic teardown order (map iteration order must not leak
	// into the scheduler's wake-up sequence).
	sort.Slice(circs, func(i, j int) bool { return circs[i].id < circs[j].id })
	l.circs = map[uint32]*relayCirc{}
	l.mu.Unlock()
	for _, c := range circs {
		c.destroy(false, true)
	}
	l.conn.Close()
	// Retire the slow-path flusher with the link: every queue feeding it
	// was just retired, so closing here lets the goroutine drain and
	// exit instead of living until scheduler stop. Close is idempotent —
	// stop() may close it again via s.flushers.
	s := l.sched
	s.mu.Lock()
	f := l.flusher
	s.mu.Unlock()
	if f != nil {
		f.Close()
	}
}

func (l *link) handleCreate(cell *Cell) error {
	// A CREATE reusing a live circuit ID would cross-wire two circuits
	// (the map write below clobbers the old one while its goroutines
	// keep running). Refuse it with a DESTROY and leave the existing
	// circuit untouched.
	if l.circuit(cell.CircID) != nil {
		return l.writeCell(&Cell{CircID: cell.CircID, Cmd: CmdDestroy})
	}
	hs, err := l.relay.newHandshake()
	if err != nil {
		return err
	}
	hc, err := hs.complete(readHandshake(&cell.Payload))
	if err != nil {
		return err
	}
	clock := l.relay.clock
	circ := &relayCirc{
		link:       l,
		id:         cell.CircID,
		crypto:     hc,
		q:          l.sched.newQueue(l, cell.CircID),
		nextWMu:    netem.NewMutex(clock),
		bwdMu:      netem.NewMutex(clock),
		streams:    make(map[uint16]*exitStream),
		circPkgWin: circWindowInit,
		circDlvWin: circWindowInit,
	}
	circ.fcCond = netem.NewCond(clock, &circ.fcMu)
	l.mu.Lock()
	l.circs[cell.CircID] = circ
	l.mu.Unlock()

	reply := &Cell{CircID: cell.CircID, Cmd: CmdCreated}
	writeHandshake(&reply.Payload, hs.public())
	return l.writeCell(reply)
}

// relayCirc is this relay's view of one circuit.
type relayCirc struct {
	link   *link
	id     uint32
	crypto *hopCrypto
	// q is the circuit's output queue in the relay's cell scheduler;
	// every backward (toward-client) relay cell goes through it.
	q *circQueue

	mu      sync.Mutex
	next    net.Conn // downstream link, nil while last hop
	nextID  uint32
	nextWMu *netem.Mutex
	// bwdMu makes "apply backward crypto, then write upstream" atomic so
	// the client observes cells in CTR-stream order.
	bwdMu   *netem.Mutex
	streams map[uint16]*exitStream
	closed  bool
	// bwdStage reassembles downstream bytes into cells in backwardSink
	// when a segment boundary does not fall on a cell boundary. Only the
	// sink (serialized by the event dispatcher) touches it.
	bwdStage []byte

	// Backward (towards client) flow control.
	fcMu       sync.Mutex
	fcCond     *netem.Cond
	circPkgWin int
	// Forward delivery accounting for SENDME generation.
	circDlvWin int
}

// handleRelayWire processes one forward relay cell in its wire buffer.
// consumed reports that buffer ownership moved downstream (the
// zero-copy forward), in which case the caller must fetch a fresh
// buffer. Recognized cells are handled in place: rc.Data is a view
// into buf, safe because the serve goroutine does not reuse buf until
// handleRecognized returns (handlers that retain data — s.conn.Write,
// control replies — copy it synchronously).
func (c *relayCirc) handleRelayWire(buf []byte, base *[]byte) (consumed bool, err error) {
	p := wirePayload(buf)
	c.crypto.decryptForward(p)
	if rc, ok := parseRelayView(p); ok && c.crypto.checkForward(p) {
		return false, c.handleRecognized(rc)
	}
	// Not for us: forward downstream.
	c.mu.Lock()
	next, nextID := c.next, c.nextID
	c.mu.Unlock()
	if next == nil {
		return false, fmt.Errorf("tor: unrecognized relay cell at last hop")
	}
	setWireHeader(buf, nextID, CmdRelay)
	c.nextWMu.Lock()
	defer c.nextWMu.Unlock()
	if oc, ok := next.(*netem.Conn); ok {
		return true, oc.WriteOwned(buf, base, &cellBufPool)
	}
	_, werr := next.Write(buf)
	return false, werr
}

func (c *relayCirc) handleRecognized(rc RelayCell) error {
	switch rc.Cmd {
	case RelayExtend:
		return c.handleExtend(rc)
	case RelayBegin:
		return c.handleBegin(rc)
	case RelayData:
		return c.handleData(rc)
	case RelayEnd:
		c.closeStream(rc.StreamID, false)
		return nil
	case RelaySendme:
		c.handleSendme(rc.StreamID)
		return nil
	default:
		return fmt.Errorf("tor: unexpected relay command %v", rc.Cmd)
	}
}

// handleExtend dials the requested next relay and splices the circuit.
func (c *relayCirc) handleExtend(rc RelayCell) error {
	if len(rc.Data) < 1+HandshakeLen {
		return fmt.Errorf("tor: short EXTEND")
	}
	nameLen := int(rc.Data[0])
	if len(rc.Data) < 1+nameLen+HandshakeLen {
		return fmt.Errorf("tor: malformed EXTEND")
	}
	addr := string(rc.Data[1 : 1+nameLen])
	clientPub := rc.Data[1+nameLen : 1+nameLen+HandshakeLen]

	conn, err := c.link.relay.cfg.Host.Dial(addr)
	if err != nil {
		return c.sendBackwardControl(RelayTruncated, nil)
	}
	nextID := c.link.relay.randID(c.link)
	create := &Cell{CircID: nextID, Cmd: CmdCreate}
	writeHandshake(&create.Payload, clientPub)
	if err := WriteCell(conn, create); err != nil {
		conn.Close()
		return c.sendBackwardControl(RelayTruncated, nil)
	}
	var created Cell
	if err := ReadCell(conn, &created); err != nil || created.Cmd != CmdCreated {
		conn.Close()
		return c.sendBackwardControl(RelayTruncated, nil)
	}

	c.mu.Lock()
	c.next = conn
	c.nextID = nextID
	c.mu.Unlock()
	if oc, ok := conn.(*netem.Conn); ok {
		// Inline backward path: downstream cells are encrypted and
		// queued at their arrival instants on the clock's event
		// dispatcher, with no relay goroutine in the loop.
		oc.SetReadSink(c.backwardSink)
	} else {
		c.link.relay.clock.Go(func() { c.pumpBackward(conn) })
	}

	return c.sendBackwardControl(RelayExtended, readHandshake(&created.Payload))
}

// backwardSink is the inline form of pumpBackward, installed as the
// downstream conn's read sink once the circuit is spliced. It runs on
// the clock's event dispatcher and must never park: relay cells go
// through bwdMu — acquired with TryLock, since bwdMu is structurally
// uncontended here (its critical sections never park, and events only
// run while every sim goroutine is parked) and a parking Lock has no
// place in an event callback — straight into the scheduler queue, and
// teardown — which does park — is handed to a fresh goroutine.
func (c *relayCirc) backwardSink(data []byte, base *[]byte, pool *sync.Pool, err error) {
	if err != nil {
		c.link.relay.clock.Go(func() { c.destroy(true, false) })
		return
	}
	if len(c.bwdStage) == 0 && len(data) == CellSize {
		c.backwardCell(data, base, pool)
		return
	}
	// Partial or coalesced frames: stage bytes and re-slice into cells.
	c.bwdStage = append(c.bwdStage, data...)
	if base != nil && pool != nil {
		pool.Put(base)
	}
	for len(c.bwdStage) >= CellSize {
		buf, cb := getCellBuf()
		copy(buf, c.bwdStage[:CellSize])
		c.bwdStage = c.bwdStage[CellSize:]
		c.backwardCell(buf, cb, &cellBufPool)
	}
	if len(c.bwdStage) == 0 {
		c.bwdStage = nil
	}
}

// backwardCell processes one downstream wire cell, taking ownership of
// its buffer.
func (c *relayCirc) backwardCell(buf []byte, base *[]byte, pool *sync.Pool) {
	switch Command(buf[4]) {
	case CmdRelay:
		// Event context: parking is forbidden, so acquire bwdMu without
		// it. Contention is structurally impossible — every bwdMu
		// critical section is park-free, and events dispatch only while
		// all sim goroutines are parked — so a failed TryLock means that
		// invariant broke, not that we should wait.
		if !c.bwdMu.TryLock() {
			panic("tor: bwdMu contended in event context; backward event path must stay park-free")
		}
		c.crypto.encryptBackward(wirePayload(buf))
		setWireHeader(buf, c.id, CmdRelay)
		var err error
		if pool == &cellBufPool {
			// The buffer came out of the cell pool (a scheduler flush
			// upstream): hand it to our queue as-is.
			err = c.link.sched.enqueueWire(c.q, buf, base)
		} else {
			nb, nbase := getCellBuf()
			copy(nb, buf)
			if base != nil && pool != nil {
				pool.Put(base)
			}
			err = c.link.sched.enqueueWire(c.q, nb, nbase)
		}
		c.bwdMu.Unlock()
		if err != nil {
			c.link.relay.clock.Go(func() { c.destroy(false, true) })
		}
	case CmdDestroy:
		if base != nil && pool != nil {
			pool.Put(base)
		}
		c.link.relay.clock.Go(func() { c.destroy(true, false) })
	default:
		if base != nil && pool != nil {
			pool.Put(base)
		}
	}
}

// pumpBackward relays downstream→upstream cells, adding our onion
// layer. Cells are encrypted under bwdMu (fixing the CTR-stream order)
// and handed to the scheduler queue, which preserves per-circuit FIFO.
func (c *relayCirc) pumpBackward(conn net.Conn) {
	buf, base := getCellBuf()
	for {
		if err := readWire(conn, buf); err != nil {
			putCellBuf(base)
			c.destroy(true, false)
			return
		}
		switch Command(buf[4]) {
		case CmdRelay:
			c.bwdMu.Lock()
			c.crypto.encryptBackward(wirePayload(buf))
			setWireHeader(buf, c.id, CmdRelay)
			err := c.link.sched.enqueueWire(c.q, buf, base)
			c.bwdMu.Unlock()
			if err != nil {
				c.destroy(false, true)
				return
			}
			// The queue owns the old buffer now.
			buf, base = getCellBuf()
		case CmdDestroy:
			putCellBuf(base)
			c.destroy(true, false)
			return
		}
	}
}

// sendBackwardControl originates a backward relay cell at this hop.
func (c *relayCirc) sendBackwardControl(cmd RelayCommand, data []byte) error {
	return c.sendBackward(RelayCell{Cmd: cmd, StreamID: 0, Data: data})
}

func (c *relayCirc) sendBackward(rc RelayCell) error {
	buf, base := getCellBuf()
	p := wirePayload(buf)
	if err := marshalRelayInto(p, &rc); err != nil {
		putCellBuf(base)
		return err
	}
	// Seal, encrypt and enqueue atomically so digest counters and the
	// CTR stream stay in the order the client will observe; the
	// scheduler flushes each circuit's queue in enqueue order, so wire
	// order matches crypto order.
	c.bwdMu.Lock()
	defer c.bwdMu.Unlock()
	c.crypto.sealBackward(p)
	c.crypto.encryptBackward(p)
	setWireHeader(buf, c.id, CmdRelay)
	return c.link.sched.enqueueWire(c.q, buf, base)
}

// handleBegin opens the exit connection for a new stream.
func (c *relayCirc) handleBegin(rc RelayCell) error {
	target := string(rc.Data)
	conn, err := c.link.relay.cfg.Host.Dial(target)
	if err != nil {
		return c.sendBackward(RelayCell{Cmd: RelayEnd, StreamID: rc.StreamID})
	}
	s := &exitStream{
		circ:   c,
		id:     rc.StreamID,
		conn:   conn,
		pkgWin: streamWindowInit,
		dlvWin: streamWindowInit,
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		conn.Close()
		return nil
	}
	c.streams[rc.StreamID] = s
	c.mu.Unlock()
	if err := c.sendBackward(RelayCell{Cmd: RelayConnected, StreamID: rc.StreamID}); err != nil {
		return err
	}
	c.link.relay.clock.Go(s.pump)
	return nil
}

// handleData delivers forward stream data to the exit connection and
// generates deliver-window SENDMEs.
func (c *relayCirc) handleData(rc RelayCell) error {
	c.mu.Lock()
	s := c.streams[rc.StreamID]
	c.mu.Unlock()
	if s == nil {
		return nil
	}
	if _, err := s.conn.Write(rc.Data); err != nil {
		c.closeStream(rc.StreamID, true)
		return nil
	}
	// Circuit-level deliver window.
	c.fcMu.Lock()
	c.circDlvWin--
	sendCirc := false
	if c.circDlvWin <= circWindowInit-circWindowInc {
		c.circDlvWin += circWindowInc
		sendCirc = true
	}
	s.dlvWin--
	sendStream := false
	if s.dlvWin <= streamWindowInit-streamWindowInc {
		s.dlvWin += streamWindowInc
		sendStream = true
	}
	c.fcMu.Unlock()
	if sendCirc {
		if err := c.sendBackward(RelayCell{Cmd: RelaySendme}); err != nil {
			return err
		}
	}
	if sendStream {
		if err := c.sendBackward(RelayCell{Cmd: RelaySendme, StreamID: s.id}); err != nil {
			return err
		}
	}
	return nil
}

// handleSendme replenishes backward package windows.
func (c *relayCirc) handleSendme(streamID uint16) {
	c.fcMu.Lock()
	if streamID == 0 {
		c.circPkgWin += circWindowInc
	} else {
		c.mu.Lock()
		if s := c.streams[streamID]; s != nil {
			s.pkgWin += streamWindowInc
		}
		c.mu.Unlock()
	}
	c.fcCond.Broadcast()
	c.fcMu.Unlock()
}

func (c *relayCirc) closeStream(id uint16, notifyClient bool) {
	c.mu.Lock()
	s := c.streams[id]
	delete(c.streams, id)
	c.mu.Unlock()
	if s == nil {
		return
	}
	s.conn.Close()
	c.fcMu.Lock()
	s.closed = true
	c.fcCond.Broadcast()
	c.fcMu.Unlock()
	if notifyClient {
		c.sendBackward(RelayCell{Cmd: RelayEnd, StreamID: id})
	}
}

// destroy tears the circuit down; notifyUp sends DESTROY upstream,
// notifyDown sends DESTROY downstream.
func (c *relayCirc) destroy(notifyUp, notifyDown bool) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	next := c.next
	nextID := c.nextID
	streams := make([]*exitStream, 0, len(c.streams))
	for _, s := range c.streams {
		streams = append(streams, s)
	}
	sort.Slice(streams, func(i, j int) bool { return streams[i].id < streams[j].id })
	c.streams = map[uint16]*exitStream{}
	c.mu.Unlock()

	c.fcMu.Lock()
	c.fcCond.Broadcast()
	c.fcMu.Unlock()

	// Drop the circuit's queued cells (counted as dropped) before any
	// DESTROY goes out: a torn-down circuit's backlog must not outlive
	// it in the scheduler.
	c.link.sched.closeQueue(c.q)

	for _, s := range streams {
		s.conn.Close()
	}
	if next != nil {
		if notifyDown {
			c.nextWMu.Lock()
			WriteCell(next, &Cell{CircID: nextID, Cmd: CmdDestroy})
			c.nextWMu.Unlock()
		}
		next.Close()
	}
	if notifyUp {
		c.link.writeCell(&Cell{CircID: c.id, Cmd: CmdDestroy})
	}
	c.link.removeCircuit(c.id)
}

// exitStream pumps bytes from the destination back into the circuit.
type exitStream struct {
	circ *relayCirc
	id   uint16
	conn net.Conn

	// guarded by circ.fcMu
	pkgWin int
	dlvWin int
	closed bool
}

// pump reads from the destination and packages RELAY_DATA cells,
// blocking on circuit and stream package windows.
func (s *exitStream) pump() {
	buf := make([]byte, MaxRelayData)
	for {
		if !s.waitWindow() {
			return
		}
		n, err := s.conn.Read(buf)
		if n > 0 {
			s.circ.fcMu.Lock()
			s.circ.circPkgWin--
			s.pkgWin--
			s.circ.fcMu.Unlock()
			if serr := s.circ.sendBackward(RelayCell{Cmd: RelayData, StreamID: s.id, Data: buf[:n]}); serr != nil {
				return
			}
		}
		if err != nil {
			// closeStream (not a bare map delete) so the exit-side conn
			// to the target is closed too — leaving it open leaked one
			// flow per completed stream.
			s.circ.closeStream(s.id, true)
			return
		}
	}
}

// waitWindow blocks until both package windows are positive; it returns
// false when the stream or circuit has closed.
func (s *exitStream) waitWindow() bool {
	s.circ.fcMu.Lock()
	defer s.circ.fcMu.Unlock()
	for {
		if s.closed {
			return false
		}
		s.circ.mu.Lock()
		closed := s.circ.closed
		s.circ.mu.Unlock()
		if closed {
			return false
		}
		if s.circ.circPkgWin > 0 && s.pkgWin > 0 {
			return true
		}
		s.circ.fcCond.Wait()
	}
}

// encodeExtend builds the RELAY_EXTEND payload: len-prefixed next-hop
// address plus the client handshake.
func encodeExtend(addr string, pub []byte) []byte {
	out := make([]byte, 0, 1+len(addr)+len(pub))
	out = append(out, byte(len(addr)))
	out = append(out, addr...)
	out = append(out, pub...)
	return out
}
