package tor

import (
	"math/rand"
	"testing"
)

// TestPickWeightedZeroBandwidth pins the fallback regression: an
// all-zero-bandwidth candidate set used to be unselectable (nil), and
// the last-resort path returned the *last* non-excluded candidate,
// making the result depend on list order.
func TestPickWeightedZeroBandwidth(t *testing.T) {
	a := &Descriptor{Name: "a"}
	b := &Descriptor{Name: "b"}
	c := &Descriptor{Name: "c"}
	rng := rand.New(rand.NewSource(1))

	if got := pickWeighted(rng, []*Descriptor{a, b, c}); got != a {
		t.Fatalf("all-zero bandwidths: got %v, want the first candidate", got)
	}
	if got := pickWeighted(rng, []*Descriptor{a, b, c}, a); got != b {
		t.Fatalf("all-zero with exclusion: got %v, want the first non-excluded", got)
	}
	if got := pickWeighted(rng, []*Descriptor{a, b, c}, a, b, c); got != nil {
		t.Fatalf("everything excluded: got %v, want nil", got)
	}
}

// TestMaxWeightPick pins the fallback's contract directly: largest
// remaining weight wins, first listed on ties, independent of order.
func TestMaxWeightPick(t *testing.T) {
	mk := func(name string, bw float64) *Descriptor { return &Descriptor{Name: name, Bandwidth: bw} }
	none := func(*Descriptor) bool { return false }
	small, big, mid := mk("small", 3), mk("big", 9), mk("mid", 5)

	if got := maxWeightPick([]*Descriptor{small, big, mid}, none); got != big {
		t.Fatalf("got %v, want the largest weight", got)
	}
	if got := maxWeightPick([]*Descriptor{mid, big, small}, none); got != big {
		t.Fatalf("reordered: got %v, want the largest weight regardless of order", got)
	}
	big2 := mk("big2", 9)
	if got := maxWeightPick([]*Descriptor{small, big, big2}, none); got != big {
		t.Fatalf("tie: got %v, want the first-listed largest", got)
	}
	skipBig := func(d *Descriptor) bool { return d.Name == "big" }
	if got := maxWeightPick([]*Descriptor{small, big, mid}, skipBig); got != mid {
		t.Fatalf("with exclusion: got %v, want the largest non-excluded", got)
	}
	if got := maxWeightPick(nil, none); got != nil {
		t.Fatalf("empty candidates: got %v, want nil", got)
	}
}

// TestWithdrawRejoin pins the consensus-churn semantics: a withdrawn
// relay disappears from every selection view, a second withdraw is a
// no-op, and republishing the same descriptor re-appends it at the end
// of the consensus order.
func TestWithdrawRejoin(t *testing.T) {
	dir := NewDirectory()
	a := &Descriptor{Name: "a", Addr: "a:1", Flags: FlagGuard | FlagFast, Bandwidth: 1}
	b := &Descriptor{Name: "b", Addr: "b:1", Flags: FlagFast, Bandwidth: 1}
	if err := dir.Publish(a); err != nil {
		t.Fatal(err)
	}
	if err := dir.Publish(b); err != nil {
		t.Fatal(err)
	}
	if !dir.Withdraw("a") {
		t.Fatal("withdraw of a listed relay returned false")
	}
	if dir.Withdraw("a") {
		t.Fatal("second withdraw returned true")
	}
	if _, ok := dir.Lookup("a"); ok {
		t.Fatal("withdrawn relay still resolvable")
	}
	if got := len(dir.WithFlag(FlagGuard)); got != 0 {
		t.Fatalf("%d guards visible after withdrawing the only one", got)
	}
	if got := len(dir.Relays()); got != 1 {
		t.Fatalf("%d relays after withdraw, want 1", got)
	}
	if err := dir.Publish(a); err != nil {
		t.Fatalf("rejoin: %v", err)
	}
	rs := dir.Relays()
	if len(rs) != 2 || rs[len(rs)-1].Name != "a" {
		t.Fatalf("rejoined relay not appended: %v", rs)
	}
	if _, ok := dir.Lookup("a"); !ok {
		t.Fatal("rejoined relay not resolvable")
	}
}

// TestPickWeightedNeverExcluded: whatever the draw, the winner must
// respect the exclusion list (the fallback path included).
func TestPickWeightedNeverExcluded(t *testing.T) {
	cands := []*Descriptor{
		{Name: "x", Bandwidth: 1e-9},
		{Name: "y", Bandwidth: 1e16},
		{Name: "z", Bandwidth: 1},
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 2000; i++ {
		got := pickWeighted(rng, cands, cands[1])
		if got == nil {
			t.Fatal("candidates remain but pick returned nil")
		}
		if got.Name == "y" {
			t.Fatal("excluded candidate selected")
		}
	}
}
