package tor

import (
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"time"

	"ptperf/internal/netem"
)

// errStreamTimeout satisfies net.Error with Timeout() == true.
type streamTimeoutError struct{}

func (streamTimeoutError) Error() string   { return "tor: stream i/o timeout" }
func (streamTimeoutError) Timeout() bool   { return true }
func (streamTimeoutError) Temporary() bool { return true }

var errStreamTimeout = streamTimeoutError{}

// circuit is the client's view of one 3-hop circuit.
type circuit struct {
	client *Client
	conn   net.Conn
	path   Path
	id     uint32

	// sendMu makes "seal, onion-encrypt, write" atomic so hop digest
	// counters and CTR streams observe cells in wire order. It is
	// scheduler-aware because the write can park on conn backpressure.
	sendMu *netem.Mutex

	mu         sync.Mutex
	hops       []*hopCrypto
	streams    map[uint16]*Stream
	nextStream uint16
	closed     bool
	closeErr   error

	control *netem.Chan[RelayCell] // EXTENDED / TRUNCATED during build

	fcMu       sync.Mutex
	fcCond     *netem.Cond
	circPkgWin int // forward-data budget toward the exit
	circDlvWin int // backward-data accounting for SENDME generation
}

func newCircuit(client *Client, conn net.Conn, path Path) *circuit {
	circ := &circuit{
		client:     client,
		conn:       conn,
		path:       path,
		streams:    make(map[uint16]*Stream),
		control:    netem.NewChan[RelayCell](client.clock, 4),
		sendMu:     netem.NewMutex(client.clock),
		circPkgWin: circWindowInit,
		circDlvWin: circWindowInit,
	}
	circ.fcCond = netem.NewCond(client.clock, &circ.fcMu)
	return circ
}

func (circ *circuit) isClosed() bool {
	circ.mu.Lock()
	defer circ.mu.Unlock()
	return circ.closed
}

// build performs CREATE + 2×EXTEND.
func (circ *circuit) build() error {
	c := circ.client
	c.rngMu.Lock()
	circ.id = c.rng.Uint32() | 1
	hs, err := newHandshake(c.rng)
	c.rngMu.Unlock()
	if err != nil {
		return err
	}

	create := &Cell{CircID: circ.id, Cmd: CmdCreate}
	writeHandshake(&create.Payload, hs.public())
	if err := WriteCell(circ.conn, create); err != nil {
		return err
	}
	// The CREATED wait is bounded like every other build step: lossy
	// first hops (a camoufler message drop, a dying snowflake proxy)
	// can otherwise stall this read forever.
	circ.conn.SetReadDeadline(c.clock.VirtualDeadline(c.cfg.BuildTimeout))
	var created Cell
	if err := ReadCell(circ.conn, &created); err != nil {
		return fmt.Errorf("tor: waiting for CREATED: %w", err)
	}
	circ.conn.SetReadDeadline(time.Time{})
	if created.Cmd != CmdCreated || created.CircID != circ.id {
		return fmt.Errorf("tor: unexpected %v during create", created.Cmd)
	}
	hop, err := hs.complete(readHandshake(&created.Payload))
	if err != nil {
		return err
	}
	circ.mu.Lock()
	circ.hops = append(circ.hops, hop)
	circ.mu.Unlock()

	c.clock.Go(circ.readLoop)

	for _, next := range []*Descriptor{circ.path.Middle, circ.path.Exit} {
		if next == nil {
			return fmt.Errorf("tor: incomplete path")
		}
		if err := circ.extend(next); err != nil {
			return err
		}
	}
	return nil
}

// extend adds one hop via RELAY_EXTEND addressed to the current last hop.
func (circ *circuit) extend(next *Descriptor) error {
	c := circ.client
	c.rngMu.Lock()
	hs, err := newHandshake(c.rng)
	c.rngMu.Unlock()
	if err != nil {
		return err
	}
	circ.mu.Lock()
	last := len(circ.hops) - 1
	circ.mu.Unlock()

	rc := RelayCell{Cmd: RelayExtend, Data: encodeExtend(next.Addr, hs.public())}
	if err := circ.sendRelay(last, rc); err != nil {
		return err
	}
	reply, ok, timedOut := circ.control.RecvTimeout(c.cfg.BuildTimeout)
	if timedOut {
		circ.close(ErrBuildTimeout)
		return ErrBuildTimeout
	}
	if !ok {
		return circ.closeReason()
	}
	if reply.Cmd != RelayExtended || len(reply.Data) != HandshakeLen {
		return fmt.Errorf("tor: extension to %s failed (%v)", next.Name, reply.Cmd)
	}
	hop, err := hs.complete(reply.Data)
	if err != nil {
		return err
	}
	circ.mu.Lock()
	circ.hops = append(circ.hops, hop)
	circ.mu.Unlock()
	return nil
}

// sendRelay seals a relay cell for hop index h and onion-encrypts it
// outward before writing.
func (circ *circuit) sendRelay(h int, rc RelayCell) error {
	payload, err := marshalRelay(&rc)
	if err != nil {
		return err
	}
	circ.mu.Lock()
	if circ.closed {
		circ.mu.Unlock()
		return ErrCircuitClosed
	}
	hops := circ.hops[:h+1]
	circ.mu.Unlock()

	circ.sendMu.Lock()
	defer circ.sendMu.Unlock()
	hops[h].sealForward(&payload)
	for i := h; i >= 0; i-- {
		hops[i].encryptForward(&payload)
	}
	cell := &Cell{CircID: circ.id, Cmd: CmdRelay, Payload: payload}
	if err := WriteCell(circ.conn, cell); err != nil {
		circ.close(err)
		return ErrCircuitClosed
	}
	return nil
}

// readLoop demultiplexes backward cells.
func (circ *circuit) readLoop() {
	var cell Cell
	for {
		if err := ReadCell(circ.conn, &cell); err != nil {
			circ.close(err)
			return
		}
		switch cell.Cmd {
		case CmdRelay:
			if cell.CircID != circ.id {
				continue
			}
			hop, rc, ok := circ.peel(&cell.Payload)
			if !ok {
				circ.close(fmt.Errorf("tor: unrecognized backward cell"))
				return
			}
			circ.deliver(hop, rc)
		case CmdDestroy:
			circ.close(ErrCircuitClosed)
			return
		}
	}
}

// peel removes onion layers until a hop recognizes the cell.
func (circ *circuit) peel(p *[PayloadSize]byte) (int, RelayCell, bool) {
	circ.mu.Lock()
	hops := append([]*hopCrypto(nil), circ.hops...)
	circ.mu.Unlock()
	for i, hop := range hops {
		hop.decryptBackward(p)
		if rc, ok := parseRelay(p); ok && hop.checkBackward(p) {
			return i, rc, true
		}
	}
	return 0, RelayCell{}, false
}

// deliver routes one recognized backward cell.
func (circ *circuit) deliver(hop int, rc RelayCell) {
	switch rc.Cmd {
	case RelayExtended, RelayTruncated:
		circ.control.TrySend(rc)
	case RelayConnected:
		if s := circ.stream(rc.StreamID); s != nil {
			s.notifyConnected(nil)
		}
	case RelayData:
		circ.deliverData(rc)
	case RelayEnd:
		if s := circ.stream(rc.StreamID); s != nil {
			s.remoteClose()
			circ.forgetStream(rc.StreamID)
		} else {
			// END for a pending stream refuses the BEGIN.
			circ.mu.Lock()
			pending := circ.streams[rc.StreamID]
			circ.mu.Unlock()
			if pending != nil {
				pending.notifyConnected(ErrStreamRefused)
			}
		}
	case RelaySendme:
		circ.fcMu.Lock()
		if rc.StreamID == 0 {
			circ.circPkgWin += circWindowInc
		} else if s := circ.stream(rc.StreamID); s != nil {
			s.pkgWin += streamWindowInc
		}
		circ.fcCond.Broadcast()
		circ.fcMu.Unlock()
	}
}

// deliverData appends payload to the stream and generates SENDMEs.
func (circ *circuit) deliverData(rc RelayCell) {
	s := circ.stream(rc.StreamID)
	if s != nil {
		s.push(rc.Data)
	}
	exit := circ.lastHop()
	circ.fcMu.Lock()
	circ.circDlvWin--
	sendCirc := false
	if circ.circDlvWin <= circWindowInit-circWindowInc {
		circ.circDlvWin += circWindowInc
		sendCirc = true
	}
	sendStream := false
	if s != nil {
		s.dlvWin--
		if s.dlvWin <= streamWindowInit-streamWindowInc {
			s.dlvWin += streamWindowInc
			sendStream = true
		}
	}
	circ.fcMu.Unlock()
	if sendCirc {
		circ.sendRelay(exit, RelayCell{Cmd: RelaySendme})
	}
	if sendStream {
		circ.sendRelay(exit, RelayCell{Cmd: RelaySendme, StreamID: rc.StreamID})
	}
}

func (circ *circuit) lastHop() int {
	circ.mu.Lock()
	defer circ.mu.Unlock()
	return len(circ.hops) - 1
}

func (circ *circuit) stream(id uint16) *Stream {
	if id == 0 {
		return nil
	}
	circ.mu.Lock()
	defer circ.mu.Unlock()
	return circ.streams[id]
}

func (circ *circuit) forgetStream(id uint16) {
	circ.mu.Lock()
	delete(circ.streams, id)
	circ.mu.Unlock()
}

// openStream performs BEGIN/CONNECTED.
func (circ *circuit) openStream(target string) (*Stream, error) {
	circ.mu.Lock()
	if circ.closed {
		circ.mu.Unlock()
		return nil, ErrCircuitClosed
	}
	circ.nextStream++
	id := circ.nextStream
	s := newStream(circ, id, target)
	circ.streams[id] = s
	exit := len(circ.hops) - 1
	circ.mu.Unlock()

	if err := circ.sendRelay(exit, RelayCell{Cmd: RelayBegin, StreamID: id, Data: []byte(target)}); err != nil {
		circ.forgetStream(id)
		return nil, err
	}
	err, ok, timedOut := s.connected.RecvTimeout(circ.client.cfg.BuildTimeout)
	if timedOut || !ok {
		circ.forgetStream(id)
		return nil, ErrBuildTimeout
	}
	if err != nil {
		circ.forgetStream(id)
		return nil, err
	}
	return s, nil
}

func (circ *circuit) closeReason() error {
	circ.mu.Lock()
	defer circ.mu.Unlock()
	if circ.closeErr != nil {
		return circ.closeErr
	}
	return ErrCircuitClosed
}

// close tears the circuit down locally and releases all waiters.
func (circ *circuit) close(err error) {
	circ.mu.Lock()
	if circ.closed {
		circ.mu.Unlock()
		return
	}
	circ.closed = true
	circ.closeErr = err
	streams := make([]*Stream, 0, len(circ.streams))
	for _, s := range circ.streams {
		streams = append(streams, s)
	}
	// Deterministic teardown order: map iteration order must not leak
	// into the scheduler's wake-up sequence.
	sort.Slice(streams, func(i, j int) bool { return streams[i].id < streams[j].id })
	circ.streams = map[uint16]*Stream{}
	circ.mu.Unlock()

	for _, s := range streams {
		s.remoteClose()
		s.notifyConnected(ErrCircuitClosed)
	}
	circ.fcMu.Lock()
	circ.fcCond.Broadcast()
	circ.fcMu.Unlock()
	circ.control.Close()
	circ.conn.Close()
}

// waitPackage blocks until the circuit and stream package windows are
// positive; false means the circuit or stream died.
func (circ *circuit) waitPackage(s *Stream) bool {
	circ.fcMu.Lock()
	defer circ.fcMu.Unlock()
	for {
		if circ.isClosed() || s.isClosedLocal() {
			return false
		}
		if circ.circPkgWin > 0 && s.pkgWin > 0 {
			return true
		}
		circ.fcCond.Wait()
	}
}

// consumePackage spends one forward cell of window budget.
func (circ *circuit) consumePackage(s *Stream) {
	circ.fcMu.Lock()
	circ.circPkgWin--
	s.pkgWin--
	circ.fcMu.Unlock()
}

// Stream is an anonymized byte stream over a circuit. It implements
// net.Conn.
type Stream struct {
	circ   *circuit
	id     uint16
	target string

	connected *netem.Chan[error]

	mu           sync.Mutex
	cond         *netem.Cond
	buf          []byte
	remoteClosed bool
	localClosed  bool
	rdl          time.Time

	// guarded by circ.fcMu
	pkgWin int
	dlvWin int
}

func newStream(circ *circuit, id uint16, target string) *Stream {
	s := &Stream{
		circ:      circ,
		id:        id,
		target:    target,
		connected: netem.NewChan[error](circ.client.clock, 1),
		pkgWin:    streamWindowInit,
		dlvWin:    streamWindowInit,
	}
	s.cond = netem.NewCond(circ.client.clock, &s.mu)
	return s
}

func (s *Stream) notifyConnected(err error) {
	s.connected.TrySend(err)
}

// push appends inbound data (called from the circuit read loop).
func (s *Stream) push(data []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.localClosed {
		return
	}
	s.buf = append(s.buf, data...)
	s.cond.Broadcast()
}

// remoteClose marks end-of-stream from the exit.
func (s *Stream) remoteClose() {
	s.mu.Lock()
	s.remoteClosed = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

func (s *Stream) isClosedLocal() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.localClosed
}

// Read implements net.Conn.
func (s *Stream) Read(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.localClosed {
			return 0, ErrCircuitClosed
		}
		if len(s.buf) > 0 {
			n := copy(p, s.buf)
			s.buf = s.buf[n:]
			return n, nil
		}
		if s.remoteClosed {
			return 0, io.EOF
		}
		if s.circ.client.clock.Expired(s.rdl) {
			return 0, errStreamTimeout
		}
		s.cond.WaitDeadline(s.rdl)
	}
}

// Write implements net.Conn, packaging MaxRelayData-sized DATA cells
// under flow control.
func (s *Stream) Write(p []byte) (int, error) {
	exit := s.circ.lastHop()
	written := 0
	for len(p) > 0 {
		n := len(p)
		if n > MaxRelayData {
			n = MaxRelayData
		}
		if !s.circ.waitPackage(s) {
			return written, ErrCircuitClosed
		}
		s.circ.consumePackage(s)
		if err := s.circ.sendRelay(exit, RelayCell{Cmd: RelayData, StreamID: s.id, Data: p[:n]}); err != nil {
			return written, err
		}
		written += n
		p = p[n:]
	}
	return written, nil
}

// Close implements net.Conn, sending RELAY_END.
func (s *Stream) Close() error {
	s.mu.Lock()
	if s.localClosed {
		s.mu.Unlock()
		return nil
	}
	s.localClosed = true
	s.cond.Broadcast()
	s.mu.Unlock()

	s.circ.fcMu.Lock()
	s.circ.fcCond.Broadcast()
	s.circ.fcMu.Unlock()

	exit := s.circ.lastHop()
	s.circ.sendRelay(exit, RelayCell{Cmd: RelayEnd, StreamID: s.id})
	s.circ.forgetStream(s.id)
	return nil
}

// LocalAddr implements net.Conn.
func (s *Stream) LocalAddr() net.Addr { return streamAddr("tor-client") }

// RemoteAddr implements net.Conn.
func (s *Stream) RemoteAddr() net.Addr { return streamAddr(s.target) }

// SetDeadline implements net.Conn (read side only; writes are paced by
// flow control).
func (s *Stream) SetDeadline(t time.Time) error { return s.SetReadDeadline(t) }

// SetReadDeadline implements net.Conn.
func (s *Stream) SetReadDeadline(t time.Time) error {
	s.mu.Lock()
	s.rdl = t
	s.cond.Broadcast()
	s.mu.Unlock()
	return nil
}

// SetWriteDeadline implements net.Conn as a no-op.
func (s *Stream) SetWriteDeadline(time.Time) error { return nil }

type streamAddr string

func (streamAddr) Network() string  { return "tor" }
func (a streamAddr) String() string { return string(a) }
