package tor

import (
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"time"

	"ptperf/internal/netem"
)

// errStreamTimeout satisfies net.Error with Timeout() == true.
type streamTimeoutError struct{}

func (streamTimeoutError) Error() string   { return "tor: stream i/o timeout" }
func (streamTimeoutError) Timeout() bool   { return true }
func (streamTimeoutError) Temporary() bool { return true }

var errStreamTimeout = streamTimeoutError{}

// circuit is the client's view of one 3-hop circuit.
type circuit struct {
	client *Client
	conn   net.Conn
	path   Path
	id     uint32

	// sendMu makes "seal, onion-encrypt, write" atomic so hop digest
	// counters and CTR streams observe cells in wire order. It is
	// scheduler-aware because the write can park on conn backpressure.
	sendMu *netem.Mutex

	mu         sync.Mutex
	hops       []*hopCrypto
	streams    map[uint16]*Stream
	nextStream uint16
	closed     bool
	closeErr   error

	control *netem.Chan[RelayCell] // EXTENDED / TRUNCATED during build

	// rdStage reassembles backward bytes into cells in cellSink when a
	// segment boundary does not fall on a cell boundary. Only the sink
	// (serialized by the event dispatcher) touches it.
	rdStage []byte

	fcMu       sync.Mutex
	fcCond     *netem.Cond
	circPkgWin int // forward-data budget toward the exit
	circDlvWin int // backward-data accounting for SENDME generation
}

func newCircuit(client *Client, conn net.Conn, path Path) *circuit {
	circ := &circuit{
		client:     client,
		conn:       conn,
		path:       path,
		streams:    make(map[uint16]*Stream),
		control:    netem.NewChan[RelayCell](client.clock, 4),
		sendMu:     netem.NewMutex(client.clock),
		circPkgWin: circWindowInit,
		circDlvWin: circWindowInit,
	}
	circ.fcCond = netem.NewCond(client.clock, &circ.fcMu)
	return circ
}

func (circ *circuit) isClosed() bool {
	circ.mu.Lock()
	defer circ.mu.Unlock()
	return circ.closed
}

// build performs CREATE + 2×EXTEND.
func (circ *circuit) build() error {
	c := circ.client
	c.rngMu.Lock()
	circ.id = c.rng.Uint32() | 1
	hs, err := newHandshake(c.rng)
	c.rngMu.Unlock()
	if err != nil {
		return err
	}

	create := &Cell{CircID: circ.id, Cmd: CmdCreate}
	writeHandshake(&create.Payload, hs.public())
	if err := WriteCell(circ.conn, create); err != nil {
		return err
	}
	// The CREATED wait is bounded like every other build step: lossy
	// first hops (a camoufler message drop, a dying snowflake proxy)
	// can otherwise stall this read forever.
	circ.conn.SetReadDeadline(c.clock.VirtualDeadline(c.cfg.BuildTimeout))
	var created Cell
	if err := ReadCell(circ.conn, &created); err != nil {
		return fmt.Errorf("tor: waiting for CREATED: %w", err)
	}
	circ.conn.SetReadDeadline(time.Time{})
	if created.Cmd != CmdCreated || created.CircID != circ.id {
		return fmt.Errorf("tor: unexpected %v during create", created.Cmd)
	}
	hop, err := hs.complete(readHandshake(&created.Payload))
	if err != nil {
		return err
	}
	circ.mu.Lock()
	circ.hops = append(circ.hops, hop)
	circ.mu.Unlock()

	if oc, ok := circ.conn.(*netem.Conn); ok {
		// Vanilla-tor first hop: demultiplex backward cells inline at
		// their arrival instants instead of in a reader goroutine. PT
		// transports wrap the conn in a stream transform, so they keep
		// the goroutine read loop.
		oc.SetReadSink(circ.cellSink)
	} else {
		c.clock.Go(circ.readLoop)
	}

	for _, next := range []*Descriptor{circ.path.Middle, circ.path.Exit} {
		if next == nil {
			return fmt.Errorf("tor: incomplete path")
		}
		if err := circ.extend(next); err != nil {
			return err
		}
	}
	return nil
}

// extend adds one hop via RELAY_EXTEND addressed to the current last hop.
func (circ *circuit) extend(next *Descriptor) error {
	c := circ.client
	c.rngMu.Lock()
	hs, err := newHandshake(c.rng)
	c.rngMu.Unlock()
	if err != nil {
		return err
	}
	circ.mu.Lock()
	last := len(circ.hops) - 1
	circ.mu.Unlock()

	rc := RelayCell{Cmd: RelayExtend, Data: encodeExtend(next.Addr, hs.public())}
	if err := circ.sendRelay(last, rc); err != nil {
		return err
	}
	reply, ok, timedOut := circ.control.RecvTimeout(c.cfg.BuildTimeout)
	if timedOut {
		circ.close(ErrBuildTimeout)
		return ErrBuildTimeout
	}
	if !ok {
		return circ.closeReason()
	}
	if reply.Cmd != RelayExtended || len(reply.Data) != HandshakeLen {
		return fmt.Errorf("tor: extension to %s failed (%v)", next.Name, reply.Cmd)
	}
	hop, err := hs.complete(reply.Data)
	if err != nil {
		return err
	}
	circ.mu.Lock()
	circ.hops = append(circ.hops, hop)
	circ.mu.Unlock()
	return nil
}

// sendRelay seals a relay cell for hop index h and onion-encrypts it
// outward before writing.
func (circ *circuit) sendRelay(h int, rc RelayCell) error {
	buf, base := getCellBuf()
	p := wirePayload(buf)
	if err := marshalRelayInto(p, &rc); err != nil {
		putCellBuf(base)
		return err
	}
	circ.mu.Lock()
	if circ.closed {
		circ.mu.Unlock()
		putCellBuf(base)
		return ErrCircuitClosed
	}
	hops := circ.hops[:h+1]
	circ.mu.Unlock()

	circ.sendMu.Lock()
	defer circ.sendMu.Unlock()
	hops[h].sealForward(p)
	for i := h; i >= 0; i-- {
		hops[i].encryptForward(p)
	}
	setWireHeader(buf, circ.id, CmdRelay)
	var err error
	if oc, ok := circ.conn.(*netem.Conn); ok {
		// Zero-copy: the conn takes buffer ownership and recycles it.
		err = oc.WriteOwned(buf, base, &cellBufPool)
	} else {
		_, err = circ.conn.Write(buf)
		putCellBuf(base)
	}
	if err != nil {
		circ.close(err)
		return ErrCircuitClosed
	}
	return nil
}

// readLoop demultiplexes backward cells. One persistent wire buffer is
// reused for every cell: deliver's handlers either consume rc.Data
// synchronously (Stream.push copies) or copy it before retaining it
// (the build control queue).
func (circ *circuit) readLoop() {
	buf := make([]byte, CellSize)
	for {
		if err := readWire(circ.conn, buf); err != nil {
			circ.close(err)
			return
		}
		switch Command(buf[4]) {
		case CmdRelay:
			if wireCircID(buf) != circ.id {
				continue
			}
			hop, rc, ok := circ.peel(wirePayload(buf))
			if !ok {
				circ.close(fmt.Errorf("tor: unrecognized backward cell"))
				return
			}
			circ.deliver(hop, rc)
		case CmdDestroy:
			circ.close(ErrCircuitClosed)
			return
		}
	}
}

// cellSink is the inline form of readLoop, installed as the conn's read
// sink when the first hop is a bare netem.Conn. It runs on the clock's
// event dispatcher and must never park: every handler on this path is
// park-free (Stream.push appends, the control and connected queues use
// TrySend, close only broadcasts), and SENDME origination — which can
// park on sendMu or conn backpressure — goes through sendRelayAsync.
func (circ *circuit) cellSink(data []byte, base *[]byte, pool *sync.Pool, err error) {
	if err != nil {
		circ.close(err)
		return
	}
	if len(circ.rdStage) == 0 && len(data) == CellSize {
		circ.clientCell(data)
		if base != nil && pool != nil {
			pool.Put(base)
		}
		return
	}
	// Partial or coalesced frames: stage bytes and re-slice into cells.
	circ.rdStage = append(circ.rdStage, data...)
	if base != nil && pool != nil {
		pool.Put(base)
	}
	for len(circ.rdStage) >= CellSize {
		circ.clientCell(circ.rdStage[:CellSize])
		circ.rdStage = circ.rdStage[CellSize:]
	}
	if len(circ.rdStage) == 0 {
		circ.rdStage = nil
	}
}

// clientCell handles one backward wire cell in place; the caller keeps
// buffer ownership (deliver's handlers consume or copy Data
// synchronously, as in readLoop).
func (circ *circuit) clientCell(buf []byte) {
	switch Command(buf[4]) {
	case CmdRelay:
		if wireCircID(buf) != circ.id {
			return
		}
		hop, rc, ok := circ.peel(wirePayload(buf))
		if !ok {
			circ.close(fmt.Errorf("tor: unrecognized backward cell"))
			return
		}
		circ.deliver(hop, rc)
	case CmdDestroy:
		circ.close(ErrCircuitClosed)
	}
}

// peel removes onion layers until a hop recognizes the cell. The
// returned RelayCell's Data is a view into p.
func (circ *circuit) peel(p []byte) (int, RelayCell, bool) {
	// Snapshot the slice header; hops is append-only under mu, and a
	// concurrent append builds a fresh array rather than mutating this
	// one.
	circ.mu.Lock()
	hops := circ.hops
	circ.mu.Unlock()
	for i, hop := range hops {
		hop.decryptBackward(p)
		if rc, ok := parseRelayView(p); ok && hop.checkBackward(p) {
			return i, rc, true
		}
	}
	return 0, RelayCell{}, false
}

// deliver routes one recognized backward cell.
func (circ *circuit) deliver(hop int, rc RelayCell) {
	switch rc.Cmd {
	case RelayExtended, RelayTruncated:
		// The control queue outlives this cell's wire buffer; detach the
		// Data view before handing it over.
		rc.Data = append([]byte(nil), rc.Data...)
		circ.control.TrySend(rc)
	case RelayConnected:
		if s := circ.stream(rc.StreamID); s != nil {
			s.notifyConnected(nil)
		}
	case RelayData:
		circ.deliverData(rc)
	case RelayEnd:
		if s := circ.stream(rc.StreamID); s != nil {
			s.remoteClose()
			circ.forgetStream(rc.StreamID)
		} else {
			// END for a pending stream refuses the BEGIN.
			circ.mu.Lock()
			pending := circ.streams[rc.StreamID]
			circ.mu.Unlock()
			if pending != nil {
				pending.notifyConnected(ErrStreamRefused)
			}
		}
	case RelaySendme:
		circ.fcMu.Lock()
		if rc.StreamID == 0 {
			circ.circPkgWin += circWindowInc
		} else if s := circ.stream(rc.StreamID); s != nil {
			s.pkgWin += streamWindowInc
		}
		circ.fcCond.Broadcast()
		circ.fcMu.Unlock()
	}
}

// deliverData appends payload to the stream and generates SENDMEs.
func (circ *circuit) deliverData(rc RelayCell) {
	s := circ.stream(rc.StreamID)
	if s != nil {
		s.push(rc.Data)
	}
	exit := circ.lastHop()
	circ.fcMu.Lock()
	circ.circDlvWin--
	sendCirc := false
	if circ.circDlvWin <= circWindowInit-circWindowInc {
		circ.circDlvWin += circWindowInc
		sendCirc = true
	}
	sendStream := false
	if s != nil {
		s.dlvWin--
		if s.dlvWin <= streamWindowInit-streamWindowInc {
			s.dlvWin += streamWindowInc
			sendStream = true
		}
	}
	circ.fcMu.Unlock()
	if sendCirc {
		circ.sendRelayAsync(exit, RelayCell{Cmd: RelaySendme})
	}
	if sendStream {
		circ.sendRelayAsync(exit, RelayCell{Cmd: RelaySendme, StreamID: rc.StreamID})
	}
}

// sendRelayAsync originates rc from a dedicated goroutine. Handlers
// that may run inline on the event dispatcher use it because sendRelay
// can park (sendMu, conn backpressure); it is used in both read modes
// so cell ordering does not depend on which mode is active.
func (circ *circuit) sendRelayAsync(h int, rc RelayCell) {
	circ.client.clock.Go(func() { circ.sendRelay(h, rc) })
}

func (circ *circuit) lastHop() int {
	circ.mu.Lock()
	defer circ.mu.Unlock()
	return len(circ.hops) - 1
}

func (circ *circuit) stream(id uint16) *Stream {
	if id == 0 {
		return nil
	}
	circ.mu.Lock()
	defer circ.mu.Unlock()
	return circ.streams[id]
}

func (circ *circuit) forgetStream(id uint16) {
	circ.mu.Lock()
	delete(circ.streams, id)
	circ.mu.Unlock()
}

// openStream performs BEGIN/CONNECTED.
func (circ *circuit) openStream(target string) (*Stream, error) {
	circ.mu.Lock()
	if circ.closed {
		circ.mu.Unlock()
		return nil, ErrCircuitClosed
	}
	circ.nextStream++
	id := circ.nextStream
	s := newStream(circ, id, target)
	circ.streams[id] = s
	exit := len(circ.hops) - 1
	circ.mu.Unlock()

	if err := circ.sendRelay(exit, RelayCell{Cmd: RelayBegin, StreamID: id, Data: []byte(target)}); err != nil {
		circ.forgetStream(id)
		return nil, err
	}
	err, ok, timedOut := s.connected.RecvTimeout(circ.client.cfg.BuildTimeout)
	if timedOut || !ok {
		circ.forgetStream(id)
		return nil, ErrBuildTimeout
	}
	if err != nil {
		circ.forgetStream(id)
		return nil, err
	}
	return s, nil
}

func (circ *circuit) closeReason() error {
	circ.mu.Lock()
	defer circ.mu.Unlock()
	if circ.closeErr != nil {
		return circ.closeErr
	}
	return ErrCircuitClosed
}

// close tears the circuit down locally and releases all waiters.
func (circ *circuit) close(err error) {
	circ.mu.Lock()
	if circ.closed {
		circ.mu.Unlock()
		return
	}
	circ.closed = true
	circ.closeErr = err
	streams := make([]*Stream, 0, len(circ.streams))
	for _, s := range circ.streams {
		streams = append(streams, s)
	}
	// Deterministic teardown order: map iteration order must not leak
	// into the scheduler's wake-up sequence.
	sort.Slice(streams, func(i, j int) bool { return streams[i].id < streams[j].id })
	circ.streams = map[uint16]*Stream{}
	circ.mu.Unlock()

	for _, s := range streams {
		s.remoteClose()
		s.notifyConnected(ErrCircuitClosed)
	}
	circ.fcMu.Lock()
	circ.fcCond.Broadcast()
	circ.fcMu.Unlock()
	circ.control.Close()
	circ.conn.Close()
}

// waitPackage blocks until the circuit and stream package windows are
// positive; false means the circuit or stream died.
func (circ *circuit) waitPackage(s *Stream) bool {
	circ.fcMu.Lock()
	defer circ.fcMu.Unlock()
	for {
		if circ.isClosed() || s.isClosedLocal() {
			return false
		}
		if circ.circPkgWin > 0 && s.pkgWin > 0 {
			return true
		}
		circ.fcCond.Wait()
	}
}

// consumePackage spends one forward cell of window budget.
func (circ *circuit) consumePackage(s *Stream) {
	circ.fcMu.Lock()
	circ.circPkgWin--
	s.pkgWin--
	circ.fcMu.Unlock()
}

// Stream is an anonymized byte stream over a circuit. It implements
// net.Conn.
type Stream struct {
	circ   *circuit
	id     uint16
	target string

	connected *netem.Chan[error]

	mu   sync.Mutex
	cond *netem.Cond
	// buf[bufHead:] is the unread inbound data. The head index (rather
	// than re-slicing buf itself) keeps the slice anchored at its
	// allocation, so once the reader fully drains it the capacity is
	// reused — without it, push re-grows the buffer for every chunk of
	// a bulk download.
	buf          []byte
	bufHead      int
	remoteClosed bool
	localClosed  bool
	rdl          time.Time
	// rdWant, while a ReadFull caller is parked, is the total byte
	// count it needs; push skips the wake-up until the buffer reaches
	// it, so a bulk reader parks once per chunk instead of once per
	// arriving cell. Zero means any data wakes the reader (plain Read).
	rdWant int

	// guarded by circ.fcMu
	pkgWin int
	dlvWin int
}

func newStream(circ *circuit, id uint16, target string) *Stream {
	s := &Stream{
		circ:      circ,
		id:        id,
		target:    target,
		connected: netem.NewChan[error](circ.client.clock, 1),
		pkgWin:    streamWindowInit,
		dlvWin:    streamWindowInit,
	}
	s.cond = netem.NewCond(circ.client.clock, &s.mu)
	return s
}

func (s *Stream) notifyConnected(err error) {
	s.connected.TrySend(err)
}

// push appends inbound data (called from the circuit read loop).
func (s *Stream) push(data []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.localClosed {
		return
	}
	s.buf = append(s.buf, data...)
	if len(s.buf)-s.bufHead >= s.rdWant {
		s.cond.Broadcast()
	}
}

// consume moves up to len(p) buffered bytes into p, recycling the
// buffer's capacity once fully drained. Callers hold s.mu.
func (s *Stream) consume(p []byte) int {
	n := copy(p, s.buf[s.bufHead:])
	s.bufHead += n
	if s.bufHead == len(s.buf) {
		s.buf = s.buf[:0]
		s.bufHead = 0
	} else if s.bufHead >= 32<<10 {
		// A big threshold read usually leaves a sub-cell remainder;
		// move it to the front so the buffer never grows past one
		// chunk plus a few cells.
		m := copy(s.buf, s.buf[s.bufHead:])
		s.buf = s.buf[:m]
		s.bufHead = 0
	}
	return n
}

// remoteClose marks end-of-stream from the exit.
func (s *Stream) remoteClose() {
	s.mu.Lock()
	s.remoteClosed = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

func (s *Stream) isClosedLocal() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.localClosed
}

// Read implements net.Conn.
func (s *Stream) Read(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.localClosed {
			return 0, ErrCircuitClosed
		}
		if len(s.buf) > s.bufHead {
			return s.consume(p), nil
		}
		if s.remoteClosed {
			return 0, io.EOF
		}
		if s.circ.client.clock.Expired(s.rdl) {
			return 0, errStreamTimeout
		}
		s.cond.WaitDeadline(s.rdl)
	}
}

// ReadFull fills p completely before returning; n < len(p) only with a
// non-nil error (io.EOF on early end-of-stream, after draining what
// arrived). Unlike Read, the caller parks until len(p) bytes have
// accumulated — the wake-up happens at the arrival instant of the byte
// that completes the request, exactly when an eager Read loop would
// have consumed that byte, so end-to-end timing is unchanged while the
// per-cell wake-ups in between disappear. Bulk downloads (the fetch
// body copy) use it; header parsing and latency-sensitive reads keep
// the eager Read.
func (s *Stream) ReadFull(p []byte) (int, error) {
	s.mu.Lock()
	defer func() {
		s.rdWant = 0
		s.mu.Unlock()
	}()
	for {
		if s.localClosed {
			return 0, ErrCircuitClosed
		}
		if len(s.buf)-s.bufHead >= len(p) {
			return s.consume(p), nil
		}
		if s.remoteClosed {
			return s.consume(p), io.EOF
		}
		if s.circ.client.clock.Expired(s.rdl) {
			return s.consume(p), errStreamTimeout
		}
		s.rdWant = len(p)
		s.cond.WaitDeadline(s.rdl)
	}
}

// Write implements net.Conn, packaging MaxRelayData-sized DATA cells
// under flow control.
func (s *Stream) Write(p []byte) (int, error) {
	exit := s.circ.lastHop()
	written := 0
	for len(p) > 0 {
		n := len(p)
		if n > MaxRelayData {
			n = MaxRelayData
		}
		if !s.circ.waitPackage(s) {
			return written, ErrCircuitClosed
		}
		s.circ.consumePackage(s)
		if err := s.circ.sendRelay(exit, RelayCell{Cmd: RelayData, StreamID: s.id, Data: p[:n]}); err != nil {
			return written, err
		}
		written += n
		p = p[n:]
	}
	return written, nil
}

// Close implements net.Conn, sending RELAY_END.
func (s *Stream) Close() error {
	s.mu.Lock()
	if s.localClosed {
		s.mu.Unlock()
		return nil
	}
	s.localClosed = true
	s.cond.Broadcast()
	s.mu.Unlock()

	s.circ.fcMu.Lock()
	s.circ.fcCond.Broadcast()
	s.circ.fcMu.Unlock()

	exit := s.circ.lastHop()
	s.circ.sendRelay(exit, RelayCell{Cmd: RelayEnd, StreamID: s.id})
	s.circ.forgetStream(s.id)
	return nil
}

// LocalAddr implements net.Conn.
func (s *Stream) LocalAddr() net.Addr { return streamAddr("tor-client") }

// RemoteAddr implements net.Conn.
func (s *Stream) RemoteAddr() net.Addr { return streamAddr(s.target) }

// SetDeadline implements net.Conn (read side only; writes are paced by
// flow control).
func (s *Stream) SetDeadline(t time.Time) error { return s.SetReadDeadline(t) }

// SetReadDeadline implements net.Conn.
func (s *Stream) SetReadDeadline(t time.Time) error {
	s.mu.Lock()
	s.rdl = t
	s.cond.Broadcast()
	s.mu.Unlock()
	return nil
}

// SetWriteDeadline implements net.Conn as a no-op.
func (s *Stream) SetWriteDeadline(time.Time) error { return nil }

type streamAddr string

func (streamAddr) Network() string  { return "tor" }
func (a streamAddr) String() string { return string(a) }
