package tor

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCellEncodeDecodeRoundTrip(t *testing.T) {
	f := func(circID uint32, cmd byte, payload []byte) bool {
		var c Cell
		c.CircID = circID
		c.Cmd = Command(cmd)
		copy(c.Payload[:], payload)
		wire := c.Encode(nil)
		if len(wire) != CellSize {
			return false
		}
		var d Cell
		if err := d.Decode(wire); err != nil {
			return false
		}
		return d.CircID == c.CircID && d.Cmd == c.Cmd && d.Payload == c.Payload
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCellDecodeWrongSize(t *testing.T) {
	var c Cell
	if err := c.Decode(make([]byte, CellSize-1)); err == nil {
		t.Fatal("short buffer should fail")
	}
	if err := c.Decode(make([]byte, CellSize+1)); err == nil {
		t.Fatal("long buffer should fail")
	}
}

func TestRelayMarshalParseRoundTrip(t *testing.T) {
	f := func(cmd byte, streamID uint16, data []byte) bool {
		if len(data) > MaxRelayData {
			data = data[:MaxRelayData]
		}
		rc := RelayCell{Cmd: RelayCommand(cmd), StreamID: streamID, Data: data}
		p, err := marshalRelay(&rc)
		if err != nil {
			return false
		}
		got, ok := parseRelay(&p)
		if !ok {
			return false
		}
		return got.Cmd == rc.Cmd && got.StreamID == rc.StreamID && bytes.Equal(got.Data, rc.Data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRelayTooLong(t *testing.T) {
	rc := RelayCell{Cmd: RelayData, Data: make([]byte, MaxRelayData+1)}
	if _, err := marshalRelay(&rc); err != ErrRelayTooLong {
		t.Fatalf("want ErrRelayTooLong, got %v", err)
	}
}

func TestRelayParseRejectsRecognized(t *testing.T) {
	rc := RelayCell{Cmd: RelayData, Data: []byte("x")}
	p, _ := marshalRelay(&rc)
	p[1] = 1 // non-zero "recognized"
	if _, ok := parseRelay(&p); ok {
		t.Fatal("non-zero recognized must not parse")
	}
}

func TestHandshakeDerivesSharedKeys(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a, err := newHandshake(rng)
	if err != nil {
		t.Fatal(err)
	}
	b, err := newHandshake(rng)
	if err != nil {
		t.Fatal(err)
	}
	ka, err := a.complete(b.public())
	if err != nil {
		t.Fatal(err)
	}
	kb, err := b.complete(a.public())
	if err != nil {
		t.Fatal(err)
	}
	// Client encrypts forward; relay decrypts forward: same keystream.
	rc := RelayCell{Cmd: RelayData, StreamID: 7, Data: []byte("onion payload")}
	p, _ := marshalRelay(&rc)
	ka.sealForward(p[:])
	ka.encryptForward(p[:])
	kb.decryptForward(p[:])
	got, ok := parseRelay(&p)
	if !ok || !kb.checkForward(p[:]) {
		t.Fatal("relay should recognize the sealed cell")
	}
	if string(got.Data) != "onion payload" {
		t.Fatalf("data = %q", got.Data)
	}
}

func TestDigestCountersDetectReplay(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a, _ := newHandshake(rng)
	b, _ := newHandshake(rng)
	ka, _ := a.complete(b.public())
	kb, _ := b.complete(a.public())

	rc := RelayCell{Cmd: RelayData, StreamID: 1, Data: []byte("cell-1")}
	p1, _ := marshalRelay(&rc)
	ka.sealForward(p1[:])
	replay := p1 // plaintext copy before encryption
	if !kb.checkForward(p1[:]) {
		t.Fatal("first cell should verify")
	}
	// The same sealed payload replayed must fail: the counter moved on.
	if kb.checkForward(replay[:]) {
		t.Fatal("replayed cell must not verify")
	}
}

func TestOnionLayering(t *testing.T) {
	// Three hops: client encrypts exit→middle→guard; each hop peels one
	// layer; only the exit recognizes the cell.
	rng := rand.New(rand.NewSource(3))
	var client, relays []*hopCrypto
	for i := 0; i < 3; i++ {
		c, _ := newHandshake(rng)
		r, _ := newHandshake(rng)
		kc, err := c.complete(r.public())
		if err != nil {
			t.Fatal(err)
		}
		kr, err := r.complete(c.public())
		if err != nil {
			t.Fatal(err)
		}
		client = append(client, kc)
		relays = append(relays, kr)
	}
	rc := RelayCell{Cmd: RelayBegin, StreamID: 3, Data: []byte("web:80")}
	p, _ := marshalRelay(&rc)
	client[2].sealForward(p[:])
	for i := 2; i >= 0; i-- {
		client[i].encryptForward(p[:])
	}
	for i := 0; i < 2; i++ {
		relays[i].decryptForward(p[:])
		if got, ok := parseRelay(&p); ok && relays[i].checkForward(p[:]) {
			t.Fatalf("hop %d should not recognize cell %+v", i, got)
		}
	}
	relays[2].decryptForward(p[:])
	got, ok := parseRelay(&p)
	if !ok || !relays[2].checkForward(p[:]) {
		t.Fatal("exit must recognize the cell")
	}
	if string(got.Data) != "web:80" || got.Cmd != RelayBegin {
		t.Fatalf("got %+v", got)
	}
}

func TestEncodeExtendRoundTrip(t *testing.T) {
	pub := make([]byte, HandshakeLen)
	for i := range pub {
		pub[i] = byte(i)
	}
	data := encodeExtend("relay-9:9001", pub)
	nameLen := int(data[0])
	if got := string(data[1 : 1+nameLen]); got != "relay-9:9001" {
		t.Fatalf("addr = %q", got)
	}
	if !bytes.Equal(data[1+nameLen:], pub) {
		t.Fatal("handshake mismatch")
	}
}

func TestCommandStrings(t *testing.T) {
	if CmdRelay.String() != "RELAY" || RelayBegin.String() != "BEGIN" {
		t.Fatal("stringers broken")
	}
	if Command(200).String() == "" || RelayCommand(200).String() == "" {
		t.Fatal("unknown commands need strings")
	}
}
