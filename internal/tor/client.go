package tor

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"ptperf/internal/netem"
	"ptperf/internal/socks"
)

// Errors surfaced by the client.
var (
	// ErrCircuitClosed is returned for operations on a dead circuit.
	ErrCircuitClosed = errors.New("tor: circuit closed")
	// ErrBuildTimeout is returned when circuit construction stalls.
	ErrBuildTimeout = errors.New("tor: circuit build timeout")
	// ErrStreamRefused is returned when the exit cannot reach the target.
	ErrStreamRefused = errors.New("tor: stream refused by exit")
)

// FirstHopDialer opens the client's connection to the first hop. Vanilla
// Tor dials the guard's ORPort directly; pluggable transports substitute
// their obfuscated channel here — this is the paper's PT client plug-in
// point.
type FirstHopDialer func(guard *Descriptor) (net.Conn, error)

// RetryPolicy bounds the client's recovery machinery. The zero value
// reproduces the historical hard-coded behavior byte-for-byte on
// fault-free seeds: three circuit-build attempts, one stream re-attach,
// and no backoff sleeps (and, with BackoffBase zero, no RNG draws).
type RetryPolicy struct {
	// MaxStreamRetries is how many times a failed stream is re-attached
	// to a fresh circuit. 0 means the default (1); negative disables
	// re-attach entirely.
	MaxStreamRetries int
	// MaxBuildRetries is how many extra circuit-build attempts follow a
	// failed one. 0 means the default (2, i.e. three attempts total);
	// negative disables retries.
	MaxBuildRetries int
	// BackoffBase, when positive, sleeps BackoffBase·2^attempt plus a
	// seeded uniform jitter in [0, BackoffBase) between build attempts —
	// the modeled circuit-build-timeout backoff. Zero sleeps nothing and
	// draws nothing.
	BackoffBase time.Duration
}

func (p RetryPolicy) streamRetries() int {
	switch {
	case p.MaxStreamRetries < 0:
		return 0
	case p.MaxStreamRetries == 0:
		return 1
	}
	return p.MaxStreamRetries
}

func (p RetryPolicy) buildRetries() int {
	switch {
	case p.MaxBuildRetries < 0:
		return 0
	case p.MaxBuildRetries == 0:
		return 2
	}
	return p.MaxBuildRetries
}

// RecoveryStats are one client's cumulative recovery counters; the
// churn experiment and the fuzzer's cross-checks read them. ReAttaches
// can never exceed StreamFailures: every re-attach is a response to an
// observed stream failure.
type RecoveryStats struct {
	// Rebuilds counts circuit-build attempts made after a failed one.
	Rebuilds int64
	// BuildTimeouts counts builds that hit the circuit-build timeout.
	BuildTimeouts int64
	// StreamFailures counts stream opens that failed on a circuit.
	StreamFailures int64
	// ReAttaches counts streams re-attached to a fresh circuit.
	ReAttaches int64
	// Abandoned counts streams given up after exhausting retries (or
	// failing to get a replacement circuit).
	Abandoned int64
	// GuardProbations counts guard-failure probation sentences.
	GuardProbations int64
}

// Add returns the element-wise sum of two stat sets.
func (s RecoveryStats) Add(o RecoveryStats) RecoveryStats {
	return RecoveryStats{
		Rebuilds:        s.Rebuilds + o.Rebuilds,
		BuildTimeouts:   s.BuildTimeouts + o.BuildTimeouts,
		StreamFailures:  s.StreamFailures + o.StreamFailures,
		ReAttaches:      s.ReAttaches + o.ReAttaches,
		Abandoned:       s.Abandoned + o.Abandoned,
		GuardProbations: s.GuardProbations + o.GuardProbations,
	}
}

// Total sums the counters that indicate any recovery activity.
func (s RecoveryStats) Total() int64 {
	return s.Rebuilds + s.BuildTimeouts + s.StreamFailures + s.ReAttaches + s.Abandoned + s.GuardProbations
}

// recoveryCounters is the atomic backing store for RecoveryStats.
type recoveryCounters struct {
	rebuilds        atomic.Int64
	buildTimeouts   atomic.Int64
	streamFailures  atomic.Int64
	reAttaches      atomic.Int64
	abandoned       atomic.Int64
	guardProbations atomic.Int64
}

func (c *recoveryCounters) snapshot() RecoveryStats {
	return RecoveryStats{
		Rebuilds:        c.rebuilds.Load(),
		BuildTimeouts:   c.buildTimeouts.Load(),
		StreamFailures:  c.streamFailures.Load(),
		ReAttaches:      c.reAttaches.Load(),
		Abandoned:       c.abandoned.Load(),
		GuardProbations: c.guardProbations.Load(),
	}
}

// DefaultGuardProbation is how long a failed guard sits out of path
// selection before it is eligible again (doubling per consecutive
// strike, capped at 64×).
const DefaultGuardProbation = 10 * time.Minute

// ClientConfig configures a Tor client.
type ClientConfig struct {
	// Host is the machine the client runs on.
	Host *netem.Host
	// Directory provides the consensus for path selection.
	Directory *Directory
	// DialFirstHop overrides the vanilla direct dial to the guard.
	DialFirstHop FirstHopDialer
	// Guard pins the first hop (guard persistence, fixed-circuit
	// experiments, PT bridges). Nil selects one from the consensus and
	// keeps it for the client's lifetime.
	Guard *Descriptor
	// Middle and Exit pin the rest of the path when non-nil (§5.2's
	// LeaveStreamsUnattached+carml equivalent).
	Middle, Exit *Descriptor
	// Seed makes path selection and handshakes deterministic.
	Seed int64
	// BuildTimeout bounds circuit construction in virtual time; zero
	// means 60 virtual seconds.
	BuildTimeout time.Duration
	// Retry bounds build retries, stream re-attach and backoff; the
	// zero value preserves the historical defaults.
	Retry RetryPolicy
	// GuardProbation is the base sit-out period after a guard failure;
	// zero means DefaultGuardProbation, negative marks failed guards bad
	// forever (the pre-probation behavior).
	GuardProbation time.Duration
}

// guardProbation is one guard's decaying failure memory.
type guardProbation struct {
	// until is the virtual instant the sentence expires.
	until time.Duration
	// strikes counts recorded failures; the sentence doubles per strike.
	strikes int
}

// Client is a Tor client: it builds circuits and opens streams.
type Client struct {
	cfg   ClientConfig
	clock *netem.Clock

	rngMu sync.Mutex
	rng   *rand.Rand

	// retryRng feeds backoff jitter only. It is separate from rng so
	// enabling backoff cannot perturb path selection, and vice versa —
	// fault-free seeds stay byte-identical under the default policy.
	retryMu  sync.Mutex
	retryRng *rand.Rand

	rec recoveryCounters

	mu        sync.Mutex
	guard     *Descriptor
	probation map[string]*guardProbation
	circ      *circuit
}

// NewClient creates a client. It does not build a circuit until the
// first Dial (or an explicit Preheat).
func NewClient(cfg ClientConfig) (*Client, error) {
	if cfg.Host == nil {
		return nil, errors.New("tor: client needs a host")
	}
	if cfg.Directory == nil && (cfg.Guard == nil || cfg.Middle == nil || cfg.Exit == nil) {
		return nil, errors.New("tor: client needs a directory or a fully pinned path")
	}
	if cfg.BuildTimeout <= 0 {
		cfg.BuildTimeout = 60 * time.Second
	}
	if cfg.GuardProbation == 0 {
		cfg.GuardProbation = DefaultGuardProbation
	}
	c := &Client{
		cfg:       cfg,
		clock:     cfg.Host.Network().Clock(),
		rng:       rand.New(rand.NewSource(cfg.Seed*6364136223846793005 + 1442695040888963407)),
		retryRng:  rand.New(rand.NewSource(cfg.Seed*2862933555777941757 + 3037000493)),
		probation: make(map[string]*guardProbation),
		guard:     cfg.Guard,
	}
	return c, nil
}

// Recovery returns the client's cumulative recovery counters.
func (c *Client) Recovery() RecoveryStats { return c.rec.snapshot() }

// Guard returns the client's persistent guard, selecting one if needed.
func (c *Client) Guard() *Descriptor {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.guardLocked()
}

func (c *Client) guardLocked() *Descriptor {
	if c.guard == nil {
		now := c.clock.Now()
		c.rngMu.Lock()
		cands := c.cfg.Directory.WithFlag(FlagGuard)
		var skip []*Descriptor
		for _, g := range cands {
			if p := c.probation[g.Name]; p != nil && c.onProbation(p, now) {
				skip = append(skip, g)
			}
		}
		c.guard = pickWeighted(c.rng, cands, skip...)
		if c.guard == nil {
			// Every guard is on probation; retry across the full list like
			// a client whose guard context expired.
			c.guard = pickWeighted(c.rng, cands)
		}
		c.rngMu.Unlock()
	}
	return c.guard
}

// onProbation reports whether a sentence is still active at now. A
// negative GuardProbation makes every sentence permanent.
func (c *Client) onProbation(p *guardProbation, now time.Duration) bool {
	return c.cfg.GuardProbation < 0 || now < p.until
}

// guardFailed records a first-hop dial failure. An unpinned client
// abandons the unreachable guard and fails over to a different one on
// the next build attempt — the observable response to a censor blocking
// the guard's address (a pinned bridge has nowhere to fail over to).
// Failed guards are not marked bad forever: they serve a probation that
// doubles per consecutive strike (capped at 64× the base) and then
// expires, so a guard that merely flapped comes back into selection.
func (c *Client) guardFailed(g *Descriptor) {
	if c.cfg.Guard != nil || c.cfg.Directory == nil || g == nil {
		return
	}
	now := c.clock.Now()
	c.mu.Lock()
	if c.guard != nil && c.guard.Name == g.Name {
		c.guard = nil
	}
	p := c.probation[g.Name]
	if p == nil {
		p = &guardProbation{}
		c.probation[g.Name] = p
	}
	if p.strikes < 7 {
		p.strikes++
	}
	base := c.cfg.GuardProbation
	if base < 0 {
		base = DefaultGuardProbation // sentence length is moot: permanent
	}
	p.until = now + base<<(p.strikes-1)
	c.mu.Unlock()
	c.rec.guardProbations.Add(1)
}

// Preheat builds a circuit if none is alive, so that measurement code can
// exclude (or include) bootstrap cost explicitly.
func (c *Client) Preheat() error {
	_, err := c.circuitFor()
	return err
}

// NewCircuit discards the current circuit so the next Dial builds a fresh
// one (the paper accesses each website over a fresh circuit in §5.2, and
// MaxCircuitDirtiness-style reuse otherwise).
func (c *Client) NewCircuit() {
	c.mu.Lock()
	circ := c.circ
	c.circ = nil
	c.mu.Unlock()
	if circ != nil {
		circ.close(nil)
	}
}

// Close tears down the client's circuit.
func (c *Client) Close() error {
	c.NewCircuit()
	return nil
}

// Path returns the current circuit's path, or zero Path if none.
func (c *Client) Path() Path {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.circ == nil {
		return Path{}
	}
	return c.circ.path
}

// circuitFor returns a live circuit, building one if necessary.
func (c *Client) circuitFor() (*circuit, error) {
	c.mu.Lock()
	if c.circ != nil {
		if !c.circ.isClosed() {
			circ := c.circ
			c.mu.Unlock()
			return circ, nil
		}
		// The cached circuit died under us (relay crash, link flap,
		// scheduler drop) rather than being discarded via NewCircuit:
		// its replacement is a rebuild, not a first build.
		c.circ = nil
		c.mu.Unlock()
		c.rec.rebuilds.Add(1)
	} else {
		c.mu.Unlock()
	}

	// Like the real client, retry a failed build on a fresh circuit: a
	// lossy transport can eat a handshake cell, a snowflake volunteer
	// can die mid-build, and under fault injection the chosen relay may
	// just have crashed. Retries optionally back off exponentially with
	// seeded jitter (RetryPolicy.BackoffBase).
	var circ *circuit
	var err error
	attempts := 1 + c.cfg.Retry.buildRetries()
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			c.rec.rebuilds.Add(1)
			if d := c.backoff(attempt - 1); d > 0 {
				c.clock.Sleep(d)
			}
		}
		circ, err = c.buildCircuit()
		if err == nil {
			break
		}
		if errors.Is(err, ErrBuildTimeout) {
			c.rec.buildTimeouts.Add(1)
		}
	}
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	// Another goroutine may have raced us; prefer the existing one.
	if c.circ != nil && !c.circ.isClosed() {
		existing := c.circ
		c.mu.Unlock()
		circ.close(nil)
		return existing, nil
	}
	c.circ = circ
	c.mu.Unlock()
	return circ, nil
}

// buildCircuit constructs a fresh 3-hop circuit: CREATE to the guard,
// then two EXTENDs, each costing the appropriate chained round trips.
func (c *Client) buildCircuit() (*circuit, error) {
	guard := c.Guard()
	var path Path
	var err error
	if c.cfg.Directory != nil {
		c.rngMu.Lock()
		path, err = c.cfg.Directory.SelectPath(c.rng, guard, c.cfg.Middle, c.cfg.Exit)
		c.rngMu.Unlock()
		if err != nil {
			return nil, err
		}
	} else {
		path = Path{Guard: guard, Middle: c.cfg.Middle, Exit: c.cfg.Exit}
	}

	dial := c.cfg.DialFirstHop
	if dial == nil {
		dial = func(g *Descriptor) (net.Conn, error) { return c.cfg.Host.Dial(g.Addr) }
	}
	conn, err := dial(path.Guard)
	if err != nil {
		c.guardFailed(path.Guard)
		return nil, fmt.Errorf("tor: dial first hop: %w", err)
	}

	circ := newCircuit(c, conn, path)
	if err := circ.build(); err != nil {
		conn.Close()
		return nil, err
	}
	return circ, nil
}

// backoff computes the post-failure build sleep: BackoffBase·2^n plus a
// uniform jitter in [0, BackoffBase), drawn from the dedicated retry
// RNG. With BackoffBase zero nothing is slept and nothing is drawn.
func (c *Client) backoff(n int) time.Duration {
	base := c.cfg.Retry.BackoffBase
	if base <= 0 {
		return 0
	}
	if n > 6 {
		n = 6
	}
	c.retryMu.Lock()
	jitter := time.Duration(c.retryRng.Int63n(int64(base)))
	c.retryMu.Unlock()
	return base<<n + jitter
}

// Dial opens an anonymized stream to target ("host:port") through the
// client's circuit. A stream that fails because its circuit died is
// re-attached to a fresh circuit up to RetryPolicy.MaxStreamRetries
// times (Tor's stream re-attach; default one retry).
func (c *Client) Dial(target string) (net.Conn, error) {
	retries := c.cfg.Retry.streamRetries()
	for attempt := 0; ; attempt++ {
		circ, err := c.circuitFor()
		if err != nil {
			if attempt > 0 {
				// A re-attach that cannot even get a circuit abandons the
				// stream.
				c.rec.abandoned.Add(1)
			}
			return nil, err
		}
		s, err := circ.openStream(target)
		if err == nil {
			return s, nil
		}
		c.rec.streamFailures.Add(1)
		if !errors.Is(err, ErrCircuitClosed) {
			return nil, err
		}
		if attempt >= retries {
			c.rec.abandoned.Add(1)
			return nil, err
		}
		c.rec.reAttaches.Add(1)
		c.NewCircuit()
	}
}

// ServeSOCKS runs a SOCKS5 front end on the given port of the client's
// host, attaching each CONNECT to the circuit. It returns the listener
// address once listening; the accept loop runs until the listener closes.
func (c *Client) ServeSOCKS(port int) (net.Addr, func() error, error) {
	ln, err := c.cfg.Host.Listen(port)
	if err != nil {
		return nil, nil, err
	}
	c.clock.Go(func() {
		socks.Serve(c.clock, ln, func(target string, conn net.Conn) {
			up, err := c.Dial(target)
			if err != nil {
				conn.Close()
				return
			}
			proxyPair(c.clock, conn, up)
		})
	})
	return ln.Addr(), ln.Close, nil
}

// proxyPair splices two conns together and closes both when both
// directions finish.
func proxyPair(clock *netem.Clock, a, b net.Conn) {
	wg := netem.NewWaitGroup(clock)
	cp := func(dst, src net.Conn) {
		defer wg.Done()
		buf := make([]byte, 32<<10)
		for {
			n, err := src.Read(buf)
			if n > 0 {
				if _, werr := dst.Write(buf[:n]); werr != nil {
					break
				}
			}
			if err != nil {
				break
			}
		}
		if cw, ok := dst.(interface{ CloseWrite() error }); ok {
			cw.CloseWrite()
		} else {
			dst.Close()
		}
	}
	wg.Add(2)
	clock.Go(func() { cp(a, b) })
	clock.Go(func() { cp(b, a) })
	wg.Wait()
	a.Close()
	b.Close()
}
