package tor

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"ptperf/internal/netem"
	"ptperf/internal/socks"
)

// Errors surfaced by the client.
var (
	// ErrCircuitClosed is returned for operations on a dead circuit.
	ErrCircuitClosed = errors.New("tor: circuit closed")
	// ErrBuildTimeout is returned when circuit construction stalls.
	ErrBuildTimeout = errors.New("tor: circuit build timeout")
	// ErrStreamRefused is returned when the exit cannot reach the target.
	ErrStreamRefused = errors.New("tor: stream refused by exit")
)

// FirstHopDialer opens the client's connection to the first hop. Vanilla
// Tor dials the guard's ORPort directly; pluggable transports substitute
// their obfuscated channel here — this is the paper's PT client plug-in
// point.
type FirstHopDialer func(guard *Descriptor) (net.Conn, error)

// ClientConfig configures a Tor client.
type ClientConfig struct {
	// Host is the machine the client runs on.
	Host *netem.Host
	// Directory provides the consensus for path selection.
	Directory *Directory
	// DialFirstHop overrides the vanilla direct dial to the guard.
	DialFirstHop FirstHopDialer
	// Guard pins the first hop (guard persistence, fixed-circuit
	// experiments, PT bridges). Nil selects one from the consensus and
	// keeps it for the client's lifetime.
	Guard *Descriptor
	// Middle and Exit pin the rest of the path when non-nil (§5.2's
	// LeaveStreamsUnattached+carml equivalent).
	Middle, Exit *Descriptor
	// Seed makes path selection and handshakes deterministic.
	Seed int64
	// BuildTimeout bounds circuit construction in virtual time; zero
	// means 60 virtual seconds.
	BuildTimeout time.Duration
}

// Client is a Tor client: it builds circuits and opens streams.
type Client struct {
	cfg   ClientConfig
	clock *netem.Clock

	rngMu sync.Mutex
	rng   *rand.Rand

	mu        sync.Mutex
	guard     *Descriptor
	badGuards []*Descriptor
	circ      *circuit
}

// NewClient creates a client. It does not build a circuit until the
// first Dial (or an explicit Preheat).
func NewClient(cfg ClientConfig) (*Client, error) {
	if cfg.Host == nil {
		return nil, errors.New("tor: client needs a host")
	}
	if cfg.Directory == nil && (cfg.Guard == nil || cfg.Middle == nil || cfg.Exit == nil) {
		return nil, errors.New("tor: client needs a directory or a fully pinned path")
	}
	if cfg.BuildTimeout <= 0 {
		cfg.BuildTimeout = 60 * time.Second
	}
	c := &Client{
		cfg:   cfg,
		clock: cfg.Host.Network().Clock(),
		rng:   rand.New(rand.NewSource(cfg.Seed*6364136223846793005 + 1442695040888963407)),
		guard: cfg.Guard,
	}
	return c, nil
}

// Guard returns the client's persistent guard, selecting one if needed.
func (c *Client) Guard() *Descriptor {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.guardLocked()
}

func (c *Client) guardLocked() *Descriptor {
	if c.guard == nil {
		c.rngMu.Lock()
		cands := c.cfg.Directory.WithFlag(FlagGuard)
		c.guard = pickWeighted(c.rng, cands, c.badGuards...)
		if c.guard == nil {
			// Every guard has failed; retry across the full list like a
			// client whose guard context expired.
			c.guard = pickWeighted(c.rng, cands)
		}
		c.rngMu.Unlock()
	}
	return c.guard
}

// guardFailed records a first-hop dial failure. An unpinned client
// abandons the unreachable guard and fails over to a different one on
// the next build attempt — the observable response to a censor blocking
// the guard's address (a pinned bridge has nowhere to fail over to).
func (c *Client) guardFailed(g *Descriptor) {
	if c.cfg.Guard != nil || c.cfg.Directory == nil || g == nil {
		return
	}
	c.mu.Lock()
	if c.guard != nil && c.guard.Name == g.Name {
		c.guard = nil
	}
	for _, b := range c.badGuards {
		if b.Name == g.Name {
			c.mu.Unlock()
			return
		}
	}
	c.badGuards = append(c.badGuards, g)
	c.mu.Unlock()
}

// Preheat builds a circuit if none is alive, so that measurement code can
// exclude (or include) bootstrap cost explicitly.
func (c *Client) Preheat() error {
	_, err := c.circuitFor()
	return err
}

// NewCircuit discards the current circuit so the next Dial builds a fresh
// one (the paper accesses each website over a fresh circuit in §5.2, and
// MaxCircuitDirtiness-style reuse otherwise).
func (c *Client) NewCircuit() {
	c.mu.Lock()
	circ := c.circ
	c.circ = nil
	c.mu.Unlock()
	if circ != nil {
		circ.close(nil)
	}
}

// Close tears down the client's circuit.
func (c *Client) Close() error {
	c.NewCircuit()
	return nil
}

// Path returns the current circuit's path, or zero Path if none.
func (c *Client) Path() Path {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.circ == nil {
		return Path{}
	}
	return c.circ.path
}

// circuitFor returns a live circuit, building one if necessary.
func (c *Client) circuitFor() (*circuit, error) {
	c.mu.Lock()
	if c.circ != nil && !c.circ.isClosed() {
		circ := c.circ
		c.mu.Unlock()
		return circ, nil
	}
	c.mu.Unlock()

	// Like the real client, retry a failed build on a fresh circuit: a
	// lossy transport can eat a handshake cell, and a snowflake
	// volunteer can die mid-build.
	var circ *circuit
	var err error
	for attempt := 0; attempt < 3; attempt++ {
		circ, err = c.buildCircuit()
		if err == nil {
			break
		}
	}
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	// Another goroutine may have raced us; prefer the existing one.
	if c.circ != nil && !c.circ.isClosed() {
		existing := c.circ
		c.mu.Unlock()
		circ.close(nil)
		return existing, nil
	}
	c.circ = circ
	c.mu.Unlock()
	return circ, nil
}

// buildCircuit constructs a fresh 3-hop circuit: CREATE to the guard,
// then two EXTENDs, each costing the appropriate chained round trips.
func (c *Client) buildCircuit() (*circuit, error) {
	guard := c.Guard()
	var path Path
	var err error
	if c.cfg.Directory != nil {
		c.rngMu.Lock()
		path, err = c.cfg.Directory.SelectPath(c.rng, guard, c.cfg.Middle, c.cfg.Exit)
		c.rngMu.Unlock()
		if err != nil {
			return nil, err
		}
	} else {
		path = Path{Guard: guard, Middle: c.cfg.Middle, Exit: c.cfg.Exit}
	}

	dial := c.cfg.DialFirstHop
	if dial == nil {
		dial = func(g *Descriptor) (net.Conn, error) { return c.cfg.Host.Dial(g.Addr) }
	}
	conn, err := dial(path.Guard)
	if err != nil {
		c.guardFailed(path.Guard)
		return nil, fmt.Errorf("tor: dial first hop: %w", err)
	}

	circ := newCircuit(c, conn, path)
	if err := circ.build(); err != nil {
		conn.Close()
		return nil, err
	}
	return circ, nil
}

// Dial opens an anonymized stream to target ("host:port") through the
// client's circuit.
func (c *Client) Dial(target string) (net.Conn, error) {
	circ, err := c.circuitFor()
	if err != nil {
		return nil, err
	}
	s, err := circ.openStream(target)
	if err != nil {
		// One retry on a fresh circuit, like Tor's stream re-attach.
		if errors.Is(err, ErrCircuitClosed) {
			c.NewCircuit()
			circ, err = c.circuitFor()
			if err != nil {
				return nil, err
			}
			return circ.openStream(target)
		}
		return nil, err
	}
	return s, nil
}

// ServeSOCKS runs a SOCKS5 front end on the given port of the client's
// host, attaching each CONNECT to the circuit. It returns the listener
// address once listening; the accept loop runs until the listener closes.
func (c *Client) ServeSOCKS(port int) (net.Addr, func() error, error) {
	ln, err := c.cfg.Host.Listen(port)
	if err != nil {
		return nil, nil, err
	}
	c.clock.Go(func() {
		socks.Serve(c.clock, ln, func(target string, conn net.Conn) {
			up, err := c.Dial(target)
			if err != nil {
				conn.Close()
				return
			}
			proxyPair(c.clock, conn, up)
		})
	})
	return ln.Addr(), ln.Close, nil
}

// proxyPair splices two conns together and closes both when both
// directions finish.
func proxyPair(clock *netem.Clock, a, b net.Conn) {
	wg := netem.NewWaitGroup(clock)
	cp := func(dst, src net.Conn) {
		defer wg.Done()
		buf := make([]byte, 32<<10)
		for {
			n, err := src.Read(buf)
			if n > 0 {
				if _, werr := dst.Write(buf[:n]); werr != nil {
					break
				}
			}
			if err != nil {
				break
			}
		}
		if cw, ok := dst.(interface{ CloseWrite() error }); ok {
			cw.CloseWrite()
		} else {
			dst.Close()
		}
	}
	wg.Add(2)
	clock.Go(func() { cp(a, b) })
	clock.Go(func() { cp(b, a) })
	wg.Wait()
	a.Close()
	b.Close()
}
