package tor

import (
	"math"
	"sync"
	"time"

	"ptperf/internal/netem"
)

// This file implements the relay cell scheduler: per-circuit output
// queues for the backward (toward-client) direction, flushed by
// budgeted passes. Before it, relays forwarded cells
// first-come-first-served with a blocking write per cell, so relay-side
// contention — what a client measures through a guard depends on who
// else is queued there — was invisible in every report.
//
// The design follows KIST (Jansen & Traudt, "Never Been KIST"):
//
//   - Priority: each circuit carries an exponentially-decayed cell
//     count (tor's CircuitPriorityHalflife EWMA). Every pass picks the
//     circuit with the lowest decayed count, so bursty, quiet circuits
//     preempt bulk ones. SchedFIFO retains the oldest-cell-first
//     baseline for comparison experiments.
//   - Write budgeting: a pass flushes at most CellsPerPass cells
//     (derived from the relay's advertised bandwidth — KIST's global
//     write limit) and consults the downstream link's writable budget
//     (netem.Conn.WriteBudget — KIST's kernel-informed socket limit)
//     instead of issuing blind blocking writes, so one backlogged link
//     cannot head-of-line-block every other circuit of the relay.
//
// Flush passes are inline clock events (netem.Clock.EventAt), not a
// goroutine: enqueue arms at most one timer per relay per Interval
// (the armed flag batches arms across circuits), and the pass runs on
// whichever goroutine is dispatching when the timer fires, writing
// cells with the non-parking zero-copy Conn.TryWriteOwned. A link that
// cannot take the write this pass is skipped — KIST semantics — and
// retried next Interval. Links without the fast path (PT stream
// tunnels fed through ServeConn) get a lazily-spawned per-link flusher
// goroutine that is allowed to park on backpressure; handoff to it is
// an unbounded scheduler-aware queue, bounded in practice by the
// circuits' flow-control windows. Everything runs on the virtual
// clock, events and timers share one deterministically-ordered heap,
// and no wall-clock state exists — so same-seed runs stay
// byte-identical and -jobs N equivalence survives.

// SchedPolicy selects how the scheduler picks the next circuit.
type SchedPolicy int

const (
	// SchedEWMA picks the circuit with the lowest exponentially-decayed
	// recent cell count (tor's CircuitPriorityHalflife): interactive
	// circuits preempt bulk ones. This is the default.
	SchedEWMA SchedPolicy = iota
	// SchedFIFO picks the oldest queued cell across circuits — the
	// pre-KIST first-come-first-served baseline the contention
	// experiments compare against.
	SchedFIFO
)

func (p SchedPolicy) String() string {
	if p == SchedFIFO {
		return "fifo"
	}
	return "ewma"
}

// SchedConfig tunes a relay's cell scheduler; zero values select the
// defaults noted per field.
type SchedConfig struct {
	// Policy is the circuit pick rule (default SchedEWMA).
	Policy SchedPolicy
	// Interval is the scheduling pass cadence on the virtual clock
	// (default 10ms, KIST's sched run interval).
	Interval time.Duration
	// Halflife is the EWMA decay half-life (default 30s, tor's
	// CircuitPriorityHalflife consensus default).
	Halflife time.Duration
	// CellsPerPass caps how many cells one pass flushes across all
	// circuits; 0 derives it from the relay's Bandwidth so the
	// scheduler sustains the advertised rate:
	// ceil(Bandwidth×Interval/CellSize), floored at 4.
	CellsPerPass int
}

const (
	defaultSchedInterval = 10 * time.Millisecond
	defaultSchedHalflife = 30 * time.Second
	minCellsPerPass      = 4
	// schedDelaySampleCap bounds the per-circuit queueing-delay sample
	// buffer (fairness tests take medians over it; bulk circuits would
	// otherwise accumulate one sample per cell forever).
	schedDelaySampleCap = 1 << 12
)

func (c SchedConfig) withDefaults(bandwidth float64) SchedConfig {
	if c.Interval <= 0 {
		c.Interval = defaultSchedInterval
	}
	if c.Halflife <= 0 {
		c.Halflife = defaultSchedHalflife
	}
	if c.CellsPerPass <= 0 {
		perPass := int(math.Ceil(bandwidth * c.Interval.Seconds() / CellSize))
		if perPass < minCellsPerPass {
			perPass = minCellsPerPass
		}
		c.CellsPerPass = perPass
	}
	return c
}

// cellBufPool recycles wire buffers: backward cells are the
// simulation's hottest relay path, and a fresh 512-byte allocation per
// cell would churn the heap (same remedy as netem's segBufPool).
var cellBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, CellSize)
		return &b
	},
}

func putCellBuf(base *[]byte) { cellBufPool.Put(base) }

// queuedCell is one wire-ready cell awaiting flush. base retains the
// pooled backing array; buf is its encoded view.
type queuedCell struct {
	buf  []byte
	base *[]byte
	// at is the enqueue instant; flush time minus at is the cell's
	// queueing delay.
	at time.Duration
	// seq is the scheduler-wide enqueue sequence (FIFO pick order).
	seq uint64
}

// circQueue is one circuit's output queue plus its scheduling state.
// All fields are guarded by the owning cellScheduler's mu.
type circQueue struct {
	link *link
	id   uint32

	// cells is a head-indexed ring slice: flushes advance head and the
	// backing array is reused once drained, instead of re-slicing
	// capacity away cell by cell.
	cells  []queuedCell
	head   int
	closed bool

	// EWMA cell count, decayed with the configured half-life.
	ewma   float64
	ewmaAt time.Duration

	// Accounting for the conservation invariant and the experiments.
	queued   int64
	flushed  int64
	dropped  int64
	delaySum time.Duration
	delays   []time.Duration
}

// decayTo ages the EWMA to virtual time now.
func (q *circQueue) decayTo(now, halflife time.Duration) {
	if now <= q.ewmaAt {
		return
	}
	if q.ewma > 0 {
		q.ewma *= math.Exp2(-float64(now-q.ewmaAt) / float64(halflife))
		if q.ewma < 1e-9 {
			q.ewma = 0
		}
	}
	q.ewmaAt = now
}

// cellScheduler is one relay's scheduler: the registry of circuit
// queues and the flush events draining them.
type cellScheduler struct {
	clock *netem.Clock
	acct  *netem.Acct
	cfg   SchedConfig

	mu sync.Mutex
	// active holds queues that may still receive cells, in creation
	// order (deterministic pick iteration); done retains closed queues
	// for the stats accessors.
	active  []*circQueue
	done    []*circQueue
	pending int
	enqSeq  uint64
	passes  int64
	closed  bool

	// armed marks a pending flush event; enqueues while armed add no
	// timer, so the relay arms at most one event per Interval however
	// many circuits feed it. nextPass is the earliest instant the next
	// pass may run (pass pacing models the relayed-bandwidth rate).
	armed    bool
	nextPass time.Duration
	flushFn  func() // cached s.flushEvent bound method

	// flushers lists the slow-link writer queues in creation order
	// (deterministic stop); see link.flusher.
	flushers []*netem.Chan[queuedCell]
}

func newCellScheduler(clock *netem.Clock, acct *netem.Acct, cfg SchedConfig, bandwidth float64) *cellScheduler {
	s := &cellScheduler{clock: clock, acct: acct, cfg: cfg.withDefaults(bandwidth)}
	s.flushFn = s.flushEvent // one closure, not one per arm
	return s
}

// newQueue registers a fresh circuit queue.
func (s *cellScheduler) newQueue(l *link, id uint32) *circQueue {
	q := &circQueue{link: l, id: id}
	s.mu.Lock()
	if s.closed {
		q.closed = true
		s.mu.Unlock()
		return q
	}
	s.active = append(s.active, q)
	s.mu.Unlock()
	return q
}

// enqueueWire accepts one wire-ready cell into q, taking ownership of
// its pooled buffer (recycled on error). It never parks — relay
// backpressure is the flow-control windows' job — and fails only once
// the circuit (or the relay) has been torn down.
func (s *cellScheduler) enqueueWire(q *circQueue, buf []byte, base *[]byte) error {
	s.mu.Lock()
	if s.closed || q.closed {
		s.mu.Unlock()
		putCellBuf(base)
		return ErrCircuitClosed
	}
	s.enqSeq++
	q.cells = append(q.cells, queuedCell{buf: buf, base: base, at: s.clock.Now(), seq: s.enqSeq})
	q.queued++
	s.pending++
	s.acct.AddCellsQueued(1)
	s.armLocked()
	s.mu.Unlock()
	return nil
}

// armLocked schedules the next flush event unless one is already armed:
// immediately when the pass cadence allows, at the pace boundary
// otherwise. A cell arriving after a quiet stretch is still flushed at
// once (its pass runs immediately; only the next one is paced) — the
// same cadence contract the retired scheduler goroutine kept.
func (s *cellScheduler) armLocked() {
	if s.armed || s.closed || s.pending == 0 {
		return
	}
	s.armed = true
	at := s.clock.Now()
	if at < s.nextPass {
		at = s.nextPass
	}
	s.clock.EventAt(at, s.flushFn)
}

// flushEvent is the inline flush pass, run on the dispatching goroutine
// when the armed timer fires. It must never park: writes go through
// link.flushCell.
func (s *cellScheduler) flushEvent() {
	s.mu.Lock()
	s.armed = false
	if s.closed || s.pending == 0 {
		// The pending cells were dropped by a teardown between arm and
		// fire; nothing to do.
		s.mu.Unlock()
		return
	}
	now := s.clock.Now()
	s.flushPassLocked()
	s.nextPass = now + s.cfg.Interval
	// Cells the pass could not flush (budget exhausted, unwritable
	// links) re-arm for the next interval.
	s.armLocked()
	s.mu.Unlock()
}

// retireQueueLocked marks q closed, drops its pending cells (counted,
// buffers recycled) and moves it to the stats archive. The scheduler
// lock must be held; the caller removes q from (or resets) s.active.
func (s *cellScheduler) retireQueueLocked(q *circQueue) {
	q.closed = true
	for i := q.head; i < len(q.cells); i++ {
		putCellBuf(q.cells[i].base)
	}
	n := len(q.cells) - q.head
	q.cells = nil
	q.head = 0
	q.dropped += int64(n)
	s.pending -= n
	s.acct.AddCellsDropped(int64(n))
	s.done = append(s.done, q)
}

// closeQueue retires one circuit's queue at teardown.
func (s *cellScheduler) closeQueue(q *circQueue) {
	s.mu.Lock()
	if q.closed {
		s.mu.Unlock()
		return
	}
	for i, a := range s.active {
		if a == q {
			s.active = append(s.active[:i], s.active[i+1:]...)
			break
		}
	}
	s.retireQueueLocked(q)
	s.mu.Unlock()
}

// stop shuts the scheduler down, retiring every queue and closing the
// slow-link flushers (each drains its handed-off cells, then exits —
// the leak invariants sample goroutine counts at quiescent points).
func (s *cellScheduler) stop() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	for _, q := range s.active {
		s.retireQueueLocked(q)
	}
	s.active = nil
	fls := s.flushers
	s.flushers = nil
	s.mu.Unlock()
	for _, f := range fls {
		f.Close()
	}
}

// flushPassLocked flushes up to CellsPerPass cells, re-picking the
// best circuit before every cell. Called and returns with s.mu held.
// No write in the pass parks: fast links take the inline zero-copy
// path, slow links a flusher handoff, and a link whose window is full
// is excluded for the rest of the pass (it re-arms for the next one).
func (s *cellScheduler) flushPassLocked() {
	s.passes++
	// linkBudget caches each link's writable budget for this pass; it
	// is only ever indexed by a picked queue's link, never iterated, so
	// map order cannot leak into scheduling.
	linkBudget := make(map[*link]int)
	for budget := s.cfg.CellsPerPass; budget > 0; {
		q := s.pickLocked(linkBudget)
		if q == nil {
			return
		}
		l := q.link
		cell := q.cells[q.head]
		if !l.flushCell(s, cell) {
			// The link cannot take this write right now (writer lock
			// contended or receive window full between the budget probe
			// and the write): spend its pass budget so other links'
			// circuits still flush, and retry next interval.
			linkBudget[l] = 0
			continue
		}
		q.cells[q.head] = queuedCell{}
		q.head++
		if q.head == len(q.cells) {
			q.cells = q.cells[:0]
			q.head = 0
		}
		s.pending--
		now := s.clock.Now()
		q.decayTo(now, s.cfg.Halflife)
		q.ewma++
		delay := now - cell.at
		q.flushed++
		q.delaySum += delay
		if len(q.delays) < schedDelaySampleCap {
			q.delays = append(q.delays, delay)
		}
		linkBudget[l] -= len(cell.buf)
		s.acct.AddCellsFlushed(1)
		budget--
	}
}

// pickLocked returns the best flushable queue under the pass's link
// budgets, or nil when none is writable.
func (s *cellScheduler) pickLocked(linkBudget map[*link]int) *circQueue {
	var best *circQueue
	now := s.clock.Now()
	for _, q := range s.active {
		if q.head == len(q.cells) {
			continue
		}
		lb, ok := linkBudget[q.link]
		if !ok {
			lb = q.link.writeBudget(s.cfg.CellsPerPass * CellSize)
			linkBudget[q.link] = lb
		}
		if lb < CellSize {
			continue
		}
		if best == nil {
			best = q
			continue
		}
		if s.cfg.Policy == SchedFIFO {
			if q.cells[q.head].seq < best.cells[best.head].seq {
				best = q
			}
			continue
		}
		q.decayTo(now, s.cfg.Halflife)
		best.decayTo(now, s.cfg.Halflife)
		if q.ewma < best.ewma || (q.ewma == best.ewma && q.cells[q.head].seq < best.cells[best.head].seq) {
			best = q
		}
	}
	return best
}

// SchedStats aggregates one relay's scheduler counters.
type SchedStats struct {
	// Queued / Flushed / Dropped count cells entering queues, written
	// to links, and discarded at teardown. At a drained point
	// Queued == Flushed + Dropped.
	Queued, Flushed, Dropped int64
	// Pending counts cells currently sitting in queues.
	Pending int64
	// DelaySum accumulates the queueing delay of every flushed cell.
	DelaySum time.Duration
	// Passes counts scheduling passes run.
	Passes int64
}

// MeanDelay is the mean queueing delay per flushed cell.
func (st SchedStats) MeanDelay() time.Duration {
	if st.Flushed == 0 {
		return 0
	}
	return st.DelaySum / time.Duration(st.Flushed)
}

// CircuitSched is one circuit's scheduler record.
type CircuitSched struct {
	// CircID is the circuit's ID on its upstream link.
	CircID uint32
	// Queued / Flushed / Dropped are the circuit's cell counts.
	Queued, Flushed, Dropped int64
	// Pending counts cells still in the queue.
	Pending int64
	// DelaySum accumulates flushed cells' queueing delays.
	DelaySum time.Duration
	// Delays holds the first schedDelaySampleCap per-cell queueing
	// delays, for medians.
	Delays []time.Duration
}

// schedulers lists every scheduler incarnation, oldest first — crashed
// incarnations keep their counters, so stats are cumulative across
// crash/restart cycles.
func (r *Relay) schedulers() []*cellScheduler {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*cellScheduler, 0, len(r.retired)+1)
	out = append(out, r.retired...)
	return append(out, r.sched)
}

// SchedStats returns the relay scheduler's aggregate counters,
// cumulative across restarts.
func (r *Relay) SchedStats() SchedStats {
	var st SchedStats
	for _, s := range r.schedulers() {
		s.mu.Lock()
		st.Passes += s.passes
		st.Pending += int64(s.pending)
		for _, qs := range [][]*circQueue{s.active, s.done} {
			for _, q := range qs {
				st.Queued += q.queued
				st.Flushed += q.flushed
				st.Dropped += q.dropped
				st.DelaySum += q.delaySum
			}
		}
		s.mu.Unlock()
	}
	return st
}

// CircuitScheds returns per-circuit scheduler records: retired
// circuits first (in teardown order), then live ones (in creation
// order). The order is deterministic but does not identify circuits —
// consumers match records by their counters (the contention fairness
// tests split bursty from bulk by Flushed).
func (r *Relay) CircuitScheds() []CircuitSched {
	var out []CircuitSched
	for _, s := range r.schedulers() {
		s.mu.Lock()
		for _, qs := range [][]*circQueue{s.done, s.active} {
			for _, q := range qs {
				out = append(out, CircuitSched{
					CircID:   q.id,
					Queued:   q.queued,
					Flushed:  q.flushed,
					Dropped:  q.dropped,
					Pending:  int64(len(q.cells) - q.head),
					DelaySum: q.delaySum,
					Delays:   append([]time.Duration(nil), q.delays...),
				})
			}
		}
		s.mu.Unlock()
	}
	return out
}
