package tor

import (
	"math"
	"sync"
	"time"

	"ptperf/internal/netem"
)

// This file implements the relay cell scheduler: per-circuit output
// queues for the backward (toward-client) direction, flushed by one
// scheduler goroutine per relay. Before it, relays forwarded cells
// first-come-first-served with a blocking write per cell, so relay-side
// contention — what a client measures through a guard depends on who
// else is queued there — was invisible in every report.
//
// The design follows KIST (Jansen & Traudt, "Never Been KIST"):
//
//   - Priority: each circuit carries an exponentially-decayed cell
//     count (tor's CircuitPriorityHalflife EWMA). Every pass picks the
//     circuit with the lowest decayed count, so bursty, quiet circuits
//     preempt bulk ones. SchedFIFO retains the oldest-cell-first
//     baseline for comparison experiments.
//   - Write budgeting: a pass flushes at most CellsPerPass cells
//     (derived from the relay's advertised bandwidth — KIST's global
//     write limit) and consults the downstream link's writable budget
//     (netem.Conn.WriteBudget — KIST's kernel-informed socket limit)
//     instead of issuing blind blocking writes, so one backlogged link
//     cannot head-of-line-block every other circuit of the relay.
//
// Everything runs on the virtual clock: the scheduler goroutine parks
// on a scheduler-aware cond while idle, and polls on Interval only
// while cells are pending — same-seed runs stay byte-identical and
// -jobs N equivalence survives, because no wall-clock state exists.

// SchedPolicy selects how the scheduler picks the next circuit.
type SchedPolicy int

const (
	// SchedEWMA picks the circuit with the lowest exponentially-decayed
	// recent cell count (tor's CircuitPriorityHalflife): interactive
	// circuits preempt bulk ones. This is the default.
	SchedEWMA SchedPolicy = iota
	// SchedFIFO picks the oldest queued cell across circuits — the
	// pre-KIST first-come-first-served baseline the contention
	// experiments compare against.
	SchedFIFO
)

func (p SchedPolicy) String() string {
	if p == SchedFIFO {
		return "fifo"
	}
	return "ewma"
}

// SchedConfig tunes a relay's cell scheduler; zero values select the
// defaults noted per field.
type SchedConfig struct {
	// Policy is the circuit pick rule (default SchedEWMA).
	Policy SchedPolicy
	// Interval is the scheduling pass cadence on the virtual clock
	// (default 10ms, KIST's sched run interval).
	Interval time.Duration
	// Halflife is the EWMA decay half-life (default 30s, tor's
	// CircuitPriorityHalflife consensus default).
	Halflife time.Duration
	// CellsPerPass caps how many cells one pass flushes across all
	// circuits; 0 derives it from the relay's Bandwidth so the
	// scheduler sustains the advertised rate:
	// ceil(Bandwidth×Interval/CellSize), floored at 4.
	CellsPerPass int
}

const (
	defaultSchedInterval = 10 * time.Millisecond
	defaultSchedHalflife = 30 * time.Second
	minCellsPerPass      = 4
	// schedDelaySampleCap bounds the per-circuit queueing-delay sample
	// buffer (fairness tests take medians over it; bulk circuits would
	// otherwise accumulate one sample per cell forever).
	schedDelaySampleCap = 1 << 12
)

func (c SchedConfig) withDefaults(bandwidth float64) SchedConfig {
	if c.Interval <= 0 {
		c.Interval = defaultSchedInterval
	}
	if c.Halflife <= 0 {
		c.Halflife = defaultSchedHalflife
	}
	if c.CellsPerPass <= 0 {
		perPass := int(math.Ceil(bandwidth * c.Interval.Seconds() / CellSize))
		if perPass < minCellsPerPass {
			perPass = minCellsPerPass
		}
		c.CellsPerPass = perPass
	}
	return c
}

// cellBufPool recycles wire buffers: backward cells are the
// simulation's hottest relay path, and a fresh 512-byte allocation per
// cell would churn the heap (same remedy as netem's segBufPool).
var cellBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, CellSize)
		return &b
	},
}

func putCellBuf(base *[]byte) { cellBufPool.Put(base) }

// queuedCell is one wire-ready cell awaiting flush. base retains the
// pooled backing array; buf is its encoded view.
type queuedCell struct {
	buf  []byte
	base *[]byte
	// at is the enqueue instant; flush time minus at is the cell's
	// queueing delay.
	at time.Duration
	// seq is the scheduler-wide enqueue sequence (FIFO pick order).
	seq uint64
}

// circQueue is one circuit's output queue plus its scheduling state.
// All fields are guarded by the owning cellScheduler's mu.
type circQueue struct {
	link *link
	id   uint32

	cells  []queuedCell
	closed bool

	// EWMA cell count, decayed with the configured half-life.
	ewma   float64
	ewmaAt time.Duration

	// Accounting for the conservation invariant and the experiments.
	queued   int64
	flushed  int64
	dropped  int64
	delaySum time.Duration
	delays   []time.Duration
}

// decayTo ages the EWMA to virtual time now.
func (q *circQueue) decayTo(now, halflife time.Duration) {
	if now <= q.ewmaAt {
		return
	}
	if q.ewma > 0 {
		q.ewma *= math.Exp2(-float64(now-q.ewmaAt) / float64(halflife))
		if q.ewma < 1e-9 {
			q.ewma = 0
		}
	}
	q.ewmaAt = now
}

// cellScheduler is one relay's scheduler: the registry of circuit
// queues and the goroutine flushing them.
type cellScheduler struct {
	clock *netem.Clock
	acct  *netem.Acct
	cfg   SchedConfig

	mu   sync.Mutex
	cond *netem.Cond
	// active holds queues that may still receive cells, in creation
	// order (deterministic pick iteration); done retains closed queues
	// for the stats accessors.
	active  []*circQueue
	done    []*circQueue
	pending int
	enqSeq  uint64
	passes  int64
	closed  bool
}

func newCellScheduler(clock *netem.Clock, acct *netem.Acct, cfg SchedConfig, bandwidth float64) *cellScheduler {
	s := &cellScheduler{clock: clock, acct: acct, cfg: cfg.withDefaults(bandwidth)}
	s.cond = netem.NewCond(clock, &s.mu)
	return s
}

// newQueue registers a fresh circuit queue.
func (s *cellScheduler) newQueue(l *link, id uint32) *circQueue {
	q := &circQueue{link: l, id: id}
	s.mu.Lock()
	if s.closed {
		q.closed = true
		s.mu.Unlock()
		return q
	}
	s.active = append(s.active, q)
	s.mu.Unlock()
	return q
}

// enqueue accepts one wire-ready cell into q. It never parks — relay
// backpressure is the flow-control windows' job — and fails only once
// the circuit (or the relay) has been torn down.
func (s *cellScheduler) enqueue(q *circQueue, c *Cell) error {
	base := cellBufPool.Get().(*[]byte)
	buf := c.Encode((*base)[:0])
	s.mu.Lock()
	if s.closed || q.closed {
		s.mu.Unlock()
		putCellBuf(base)
		return ErrCircuitClosed
	}
	s.enqSeq++
	q.cells = append(q.cells, queuedCell{buf: buf, base: base, at: s.clock.Now(), seq: s.enqSeq})
	q.queued++
	s.pending++
	s.acct.AddCellsQueued(1)
	s.mu.Unlock()
	s.cond.Broadcast()
	return nil
}

// retireQueueLocked marks q closed, drops its pending cells (counted,
// buffers recycled) and moves it to the stats archive. The scheduler
// lock must be held; the caller removes q from (or resets) s.active.
func (s *cellScheduler) retireQueueLocked(q *circQueue) {
	q.closed = true
	for i := range q.cells {
		putCellBuf(q.cells[i].base)
	}
	n := len(q.cells)
	q.cells = nil
	q.dropped += int64(n)
	s.pending -= n
	s.acct.AddCellsDropped(int64(n))
	s.done = append(s.done, q)
}

// closeQueue retires one circuit's queue at teardown.
func (s *cellScheduler) closeQueue(q *circQueue) {
	s.mu.Lock()
	if q.closed {
		s.mu.Unlock()
		return
	}
	for i, a := range s.active {
		if a == q {
			s.active = append(s.active[:i], s.active[i+1:]...)
			break
		}
	}
	s.retireQueueLocked(q)
	s.mu.Unlock()
}

// stop shuts the scheduler down, retiring every queue.
func (s *cellScheduler) stop() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	for _, q := range s.active {
		s.retireQueueLocked(q)
	}
	s.active = nil
	s.mu.Unlock()
	s.cond.Broadcast()
}

// run is the scheduler goroutine: park while idle, and otherwise run
// budgeted passes at most once per Interval — the cadence is enforced
// even when a queue drains between passes, because the per-pass budget
// only models the relay's relayed-bandwidth rate if passes cannot run
// back-to-back. A cell arriving after a quiet stretch is still flushed
// immediately (its pass runs at once; only the next one is paced).
func (s *cellScheduler) run() {
	s.mu.Lock()
	lastPass := -s.cfg.Interval
	for {
		for !s.closed && s.pending == 0 {
			s.cond.Wait()
		}
		if s.closed {
			s.mu.Unlock()
			return
		}
		if next := lastPass + s.cfg.Interval; s.clock.Now() < next {
			// The interval since the previous pass has not elapsed:
			// sleep it off (this poll also stands in for KIST's
			// kernel writability notifications) and re-check — the
			// pending cells may have been dropped by a teardown.
			s.mu.Unlock()
			s.clock.SleepUntil(next)
			s.mu.Lock()
			continue
		}
		lastPass = s.clock.Now()
		s.flushPassLocked()
	}
}

// flushPassLocked flushes up to CellsPerPass cells, re-picking the
// best circuit before every cell. Called and returns with s.mu held;
// the lock is released around each link write (which can still park on
// a race for the probed budget, and must not hold s.mu if it does).
func (s *cellScheduler) flushPassLocked() {
	s.passes++
	// linkBudget caches each link's writable budget for this pass; it
	// is only ever indexed by a picked queue's link, never iterated, so
	// map order cannot leak into scheduling.
	linkBudget := make(map[*link]int)
	for budget := s.cfg.CellsPerPass; budget > 0; budget-- {
		q := s.pickLocked(linkBudget)
		if q == nil {
			return
		}
		cell := q.cells[0]
		q.cells = q.cells[1:]
		s.pending--
		now := s.clock.Now()
		q.decayTo(now, s.cfg.Halflife)
		q.ewma++
		delay := now - cell.at
		q.flushed++
		q.delaySum += delay
		if len(q.delays) < schedDelaySampleCap {
			q.delays = append(q.delays, delay)
		}
		linkBudget[q.link] -= len(cell.buf)
		l := q.link
		s.mu.Unlock()
		// A write error means the link died; its serve loop is already
		// tearing the circuits down, which will drop their queues.
		l.writeWire(cell.buf)
		putCellBuf(cell.base)
		s.mu.Lock()
		s.acct.AddCellsFlushed(1)
	}
}

// pickLocked returns the best flushable queue under the pass's link
// budgets, or nil when none is writable.
func (s *cellScheduler) pickLocked(linkBudget map[*link]int) *circQueue {
	var best *circQueue
	now := s.clock.Now()
	for _, q := range s.active {
		if len(q.cells) == 0 {
			continue
		}
		lb, ok := linkBudget[q.link]
		if !ok {
			lb = q.link.writeBudget(s.cfg.CellsPerPass * CellSize)
			linkBudget[q.link] = lb
		}
		if lb < CellSize {
			continue
		}
		if best == nil {
			best = q
			continue
		}
		if s.cfg.Policy == SchedFIFO {
			if q.cells[0].seq < best.cells[0].seq {
				best = q
			}
			continue
		}
		q.decayTo(now, s.cfg.Halflife)
		best.decayTo(now, s.cfg.Halflife)
		if q.ewma < best.ewma || (q.ewma == best.ewma && q.cells[0].seq < best.cells[0].seq) {
			best = q
		}
	}
	return best
}

// SchedStats aggregates one relay's scheduler counters.
type SchedStats struct {
	// Queued / Flushed / Dropped count cells entering queues, written
	// to links, and discarded at teardown. At a drained point
	// Queued == Flushed + Dropped.
	Queued, Flushed, Dropped int64
	// Pending counts cells currently sitting in queues.
	Pending int64
	// DelaySum accumulates the queueing delay of every flushed cell.
	DelaySum time.Duration
	// Passes counts scheduling passes run.
	Passes int64
}

// MeanDelay is the mean queueing delay per flushed cell.
func (st SchedStats) MeanDelay() time.Duration {
	if st.Flushed == 0 {
		return 0
	}
	return st.DelaySum / time.Duration(st.Flushed)
}

// CircuitSched is one circuit's scheduler record.
type CircuitSched struct {
	// CircID is the circuit's ID on its upstream link.
	CircID uint32
	// Queued / Flushed / Dropped are the circuit's cell counts.
	Queued, Flushed, Dropped int64
	// Pending counts cells still in the queue.
	Pending int64
	// DelaySum accumulates flushed cells' queueing delays.
	DelaySum time.Duration
	// Delays holds the first schedDelaySampleCap per-cell queueing
	// delays, for medians.
	Delays []time.Duration
}

// schedulers lists every scheduler incarnation, oldest first — crashed
// incarnations keep their counters, so stats are cumulative across
// crash/restart cycles.
func (r *Relay) schedulers() []*cellScheduler {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*cellScheduler, 0, len(r.retired)+1)
	out = append(out, r.retired...)
	return append(out, r.sched)
}

// SchedStats returns the relay scheduler's aggregate counters,
// cumulative across restarts.
func (r *Relay) SchedStats() SchedStats {
	var st SchedStats
	for _, s := range r.schedulers() {
		s.mu.Lock()
		st.Passes += s.passes
		st.Pending += int64(s.pending)
		for _, qs := range [][]*circQueue{s.active, s.done} {
			for _, q := range qs {
				st.Queued += q.queued
				st.Flushed += q.flushed
				st.Dropped += q.dropped
				st.DelaySum += q.delaySum
			}
		}
		s.mu.Unlock()
	}
	return st
}

// CircuitScheds returns per-circuit scheduler records: retired
// circuits first (in teardown order), then live ones (in creation
// order). The order is deterministic but does not identify circuits —
// consumers match records by their counters (the contention fairness
// tests split bursty from bulk by Flushed).
func (r *Relay) CircuitScheds() []CircuitSched {
	var out []CircuitSched
	for _, s := range r.schedulers() {
		s.mu.Lock()
		for _, qs := range [][]*circQueue{s.done, s.active} {
			for _, q := range qs {
				out = append(out, CircuitSched{
					CircID:   q.id,
					Queued:   q.queued,
					Flushed:  q.flushed,
					Dropped:  q.dropped,
					Pending:  int64(len(q.cells)),
					DelaySum: q.delaySum,
					Delays:   append([]time.Duration(nil), q.delays...),
				})
			}
		}
		s.mu.Unlock()
	}
	return out
}
