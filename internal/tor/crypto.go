package tor

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/ecdh"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
)

// HandshakeLen is the size of each half of the circuit handshake: an
// X25519 public key.
const HandshakeLen = 32

// hopCrypto holds one hop's share of the onion encryption: AES-CTR
// streams in both directions plus per-direction digest keys and counters.
//
// Relay-cell digests use keyed SipHash-1-3 rather than an HMAC: the
// digest's simulation role is recognition and integrity (a corrupted or
// replayed cell must be rejected deterministically), not cryptographic
// strength, and the virtual-time results never depend on real CPU cost
// — while a per-cell HMAC-SHA256 was the largest single CPU sink of a
// contention sweep (~25%). The keys still come from the handshake's
// HKDF expansion, so digests differ per hop, per direction and per
// circuit exactly as before.
//
// Concurrency: each direction of one instance is driven by exactly one
// goroutine or inline event stream — forward by whoever originates/
// checks forward cells (the client under sendMu, a relay's serve loop),
// backward by the symmetric single reader/sealer. That is what makes
// the shared digest scratch buffer below safe to reuse per call.
type hopCrypto struct {
	fwd, bwd cipher.Stream
	// digest keys authenticate relay cells addressed to this hop.
	fwdK0, fwdK1   uint64
	bwdK0, bwdK1   uint64
	fwdCtr, bwdCtr uint64
	// dig assembles counter || payload-with-zero-digest for hashing.
	dig [digestMsgLen]byte
}

// deriveHop expands a shared secret into a hop's key material using an
// HKDF-style SHA-256 counter expansion.
func deriveHop(secret []byte) (*hopCrypto, error) {
	expand := func(n int) []byte {
		out := make([]byte, 0, n)
		var ctr byte
		for len(out) < n {
			h := sha256.New()
			h.Write(secret)
			h.Write([]byte{ctr})
			out = append(out, h.Sum(nil)...)
			ctr++
		}
		return out[:n]
	}
	km := expand(16 + 16 + 16 + 16 + 32 + 32)
	kf, ivf := km[0:16], km[16:32]
	kb, ivb := km[32:48], km[48:64]
	df, db := km[64:96], km[96:128]

	bf, err := aes.NewCipher(kf)
	if err != nil {
		return nil, err
	}
	bb, err := aes.NewCipher(kb)
	if err != nil {
		return nil, err
	}
	return &hopCrypto{
		fwd:   cipher.NewCTR(bf, ivf),
		bwd:   cipher.NewCTR(bb, ivb),
		fwdK0: binary.LittleEndian.Uint64(df[0:8]),
		fwdK1: binary.LittleEndian.Uint64(df[8:16]),
		bwdK0: binary.LittleEndian.Uint64(db[0:8]),
		bwdK1: binary.LittleEndian.Uint64(db[8:16]),
	}, nil
}

// digestMsgLen is the length of the digested message: the 8-byte cell
// counter plus the payload with the 4-byte digest field zeroed.
const digestMsgLen = 8 + PayloadSize

// relayDigest computes the 4-byte digest for the n-th recognized relay
// cell in one direction: SipHash-1-3(key, counter || payload-with-zero-
// digest) truncated. The message is assembled in the hop's scratch
// buffer, so no allocation per cell.
func relayDigest(k0, k1 uint64, scratch *[digestMsgLen]byte, counter uint64, p []byte) [4]byte {
	binary.BigEndian.PutUint64(scratch[0:8], counter)
	copy(scratch[8:13], p[:5])
	scratch[13], scratch[14], scratch[15], scratch[16] = 0, 0, 0, 0
	copy(scratch[17:], p[9:])
	s := siphash13(k0, k1, scratch[:])
	var out [4]byte
	binary.BigEndian.PutUint32(out[:], uint32(s))
	return out
}

// siphash13 is SipHash-1-3 (the reduced-round SipHash variant used by
// the Go runtime's and Rust hashbrown's keyed hashes), a keyed 64-bit
// hash. The SipRounds are written out straight-line: a round closure
// costs an indirect call per invocation (~70 per cell digest), which
// profiling showed tripled the hash's cost.
func siphash13(k0, k1 uint64, data []byte) uint64 {
	v0 := k0 ^ 0x736f6d6570736575
	v1 := k1 ^ 0x646f72616e646f6d
	v2 := k0 ^ 0x6c7967656e657261
	v3 := k1 ^ 0x7465646279746573
	n := len(data)
	for ; len(data) >= 8; data = data[8:] {
		m := binary.LittleEndian.Uint64(data)
		v3 ^= m
		// 1× SipRound (SipHash-1-3 compression)
		v0 += v1
		v1 = v1<<13 | v1>>51
		v1 ^= v0
		v0 = v0<<32 | v0>>32
		v2 += v3
		v3 = v3<<16 | v3>>48
		v3 ^= v2
		v0 += v3
		v3 = v3<<21 | v3>>43
		v3 ^= v0
		v2 += v1
		v1 = v1<<17 | v1>>47
		v1 ^= v2
		v2 = v2<<32 | v2>>32
		v0 ^= m
	}
	var last uint64
	for i := len(data) - 1; i >= 0; i-- {
		last = last<<8 | uint64(data[i])
	}
	last |= uint64(n&0xff) << 56
	v3 ^= last
	// 1× SipRound (SipHash-1-3 compression)
	v0 += v1
	v1 = v1<<13 | v1>>51
	v1 ^= v0
	v0 = v0<<32 | v0>>32
	v2 += v3
	v3 = v3<<16 | v3>>48
	v3 ^= v2
	v0 += v3
	v3 = v3<<21 | v3>>43
	v3 ^= v0
	v2 += v1
	v1 = v1<<17 | v1>>47
	v1 ^= v2
	v2 = v2<<32 | v2>>32
	v0 ^= last
	v2 ^= 0xff
	// 3× SipRound finalization
	for i := 0; i < 3; i++ {
		v0 += v1
		v1 = v1<<13 | v1>>51
		v1 ^= v0
		v0 = v0<<32 | v0>>32
		v2 += v3
		v3 = v3<<16 | v3>>48
		v3 ^= v2
		v0 += v3
		v3 = v3<<21 | v3>>43
		v3 ^= v0
		v2 += v1
		v1 = v1<<17 | v1>>47
		v1 ^= v2
		v2 = v2<<32 | v2>>32
	}
	return v0 ^ v1 ^ v2 ^ v3
}

// fwdDigest / bwdDigest compute the current-counter digest with the
// per-direction key.
func (h *hopCrypto) fwdDigest(p []byte) [4]byte {
	return relayDigest(h.fwdK0, h.fwdK1, &h.dig, h.fwdCtr, p)
}

func (h *hopCrypto) bwdDigest(p []byte) [4]byte {
	return relayDigest(h.bwdK0, h.bwdK1, &h.dig, h.bwdCtr, p)
}

// sealForward marks a plaintext relay payload with this hop's digest and
// advances the forward counter. Called by the party that *originates*
// cells toward this hop (the client). p is the PayloadSize-byte payload.
func (h *hopCrypto) sealForward(p []byte) {
	d := h.fwdDigest(p)
	copy(p[5:9], d[:])
	h.fwdCtr++
}

// checkForward verifies an arrived forward cell's digest at the hop.
func (h *hopCrypto) checkForward(p []byte) bool {
	want := h.fwdDigest(p)
	if want != [4]byte(p[5:9]) {
		return false
	}
	h.fwdCtr++
	return true
}

// sealBackward marks a payload originated by this hop toward the client.
func (h *hopCrypto) sealBackward(p []byte) {
	d := h.bwdDigest(p)
	copy(p[5:9], d[:])
	h.bwdCtr++
}

// checkBackward verifies a backward cell's digest at the client.
func (h *hopCrypto) checkBackward(p []byte) bool {
	want := h.bwdDigest(p)
	if want != [4]byte(p[5:9]) {
		return false
	}
	h.bwdCtr++
	return true
}

// encryptForward applies this hop's forward stream cipher in place.
func (h *hopCrypto) encryptForward(p []byte) { h.fwd.XORKeyStream(p, p) }

// decryptForward is identical for CTR mode; named for readability.
func (h *hopCrypto) decryptForward(p []byte) { h.fwd.XORKeyStream(p, p) }

// encryptBackward applies this hop's backward stream cipher in place.
func (h *hopCrypto) encryptBackward(p []byte) { h.bwd.XORKeyStream(p, p) }

// decryptBackward is identical for CTR mode; named for readability.
func (h *hopCrypto) decryptBackward(p []byte) { h.bwd.XORKeyStream(p, p) }

// handshake is the X25519 exchange used by CREATE/CREATED and
// EXTEND/EXTENDED. The simulation authenticates neither side (see package
// comment); the exchange costs the same round trips as ntor.
type handshake struct {
	priv *ecdh.PrivateKey
}

// newHandshake generates the initiator or responder keypair from a
// deterministic stream seeded by the caller.
func newHandshake(rng *rand.Rand) (*handshake, error) {
	seed := make([]byte, 32)
	for i := range seed {
		seed[i] = byte(rng.Intn(256))
	}
	priv, err := ecdh.X25519().NewPrivateKey(clampX25519(seed))
	if err != nil {
		return nil, fmt.Errorf("tor: handshake keygen: %w", err)
	}
	return &handshake{priv: priv}, nil
}

// clampX25519 applies the RFC 7748 scalar clamping so arbitrary seeds are
// valid private keys.
func clampX25519(seed []byte) []byte {
	s := append([]byte(nil), seed...)
	s[0] &= 248
	s[31] &= 127
	s[31] |= 64
	return s
}

// public returns the 32-byte public key for the wire.
func (hs *handshake) public() []byte { return hs.priv.PublicKey().Bytes() }

// complete derives the hop keys from the peer's public key.
func (hs *handshake) complete(peerPub []byte) (*hopCrypto, error) {
	if len(peerPub) != HandshakeLen {
		return nil, errors.New("tor: bad handshake length")
	}
	pub, err := ecdh.X25519().NewPublicKey(peerPub)
	if err != nil {
		return nil, fmt.Errorf("tor: bad peer key: %w", err)
	}
	secret, err := hs.priv.ECDH(pub)
	if err != nil {
		return nil, fmt.Errorf("tor: ecdh: %w", err)
	}
	return deriveHop(secret)
}

// readHandshake extracts the handshake public key from a cell payload.
func readHandshake(p *[PayloadSize]byte) []byte {
	return append([]byte(nil), p[:HandshakeLen]...)
}

// writeHandshake places a handshake public key into a cell payload.
func writeHandshake(p *[PayloadSize]byte, pub []byte) {
	copy(p[:HandshakeLen], pub)
}

// randFill fills b from the rng; used for cover padding.
func randFill(rng *rand.Rand, b []byte) {
	for i := range b {
		b[i] = byte(rng.Intn(256))
	}
}
