package tor

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/ecdh"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
)

// HandshakeLen is the size of each half of the circuit handshake: an
// X25519 public key.
const HandshakeLen = 32

// hopCrypto holds one hop's share of the onion encryption: AES-CTR
// streams in both directions plus per-direction digest keys and counters.
type hopCrypto struct {
	fwd, bwd cipher.Stream
	// digest keys authenticate relay cells addressed to this hop.
	fwdMAC, bwdMAC []byte
	fwdCtr, bwdCtr uint64
}

// deriveHop expands a shared secret into a hop's key material using an
// HKDF-style SHA-256 counter expansion.
func deriveHop(secret []byte) (*hopCrypto, error) {
	expand := func(n int) []byte {
		out := make([]byte, 0, n)
		var ctr byte
		for len(out) < n {
			h := sha256.New()
			h.Write(secret)
			h.Write([]byte{ctr})
			out = append(out, h.Sum(nil)...)
			ctr++
		}
		return out[:n]
	}
	km := expand(16 + 16 + 16 + 16 + 32 + 32)
	kf, ivf := km[0:16], km[16:32]
	kb, ivb := km[32:48], km[48:64]
	df, db := km[64:96], km[96:128]

	bf, err := aes.NewCipher(kf)
	if err != nil {
		return nil, err
	}
	bb, err := aes.NewCipher(kb)
	if err != nil {
		return nil, err
	}
	return &hopCrypto{
		fwd:    cipher.NewCTR(bf, ivf),
		bwd:    cipher.NewCTR(bb, ivb),
		fwdMAC: df,
		bwdMAC: db,
	}, nil
}

// relayDigest computes the 4-byte digest for the n-th recognized relay
// cell in one direction: HMAC-SHA256(key, counter || payload-with-zero-
// digest) truncated.
func relayDigest(key []byte, counter uint64, payload *[PayloadSize]byte) [4]byte {
	var zeroed [PayloadSize]byte
	copy(zeroed[:], payload[:])
	zeroed[5], zeroed[6], zeroed[7], zeroed[8] = 0, 0, 0, 0
	mac := hmac.New(sha256.New, key)
	var ctr [8]byte
	binary.BigEndian.PutUint64(ctr[:], counter)
	mac.Write(ctr[:])
	mac.Write(zeroed[:])
	var out [4]byte
	copy(out[:], mac.Sum(nil))
	return out
}

// sealForward marks a plaintext relay payload with this hop's digest and
// advances the forward counter. Called by the party that *originates*
// cells toward this hop (the client).
func (h *hopCrypto) sealForward(p *[PayloadSize]byte) {
	d := relayDigest(h.fwdMAC, h.fwdCtr, p)
	copy(p[5:9], d[:])
	h.fwdCtr++
}

// checkForward verifies an arrived forward cell's digest at the hop.
func (h *hopCrypto) checkForward(p *[PayloadSize]byte) bool {
	want := relayDigest(h.fwdMAC, h.fwdCtr, p)
	if !hmac.Equal(want[:], p[5:9]) {
		return false
	}
	h.fwdCtr++
	return true
}

// sealBackward marks a payload originated by this hop toward the client.
func (h *hopCrypto) sealBackward(p *[PayloadSize]byte) {
	d := relayDigest(h.bwdMAC, h.bwdCtr, p)
	copy(p[5:9], d[:])
	h.bwdCtr++
}

// checkBackward verifies a backward cell's digest at the client.
func (h *hopCrypto) checkBackward(p *[PayloadSize]byte) bool {
	want := relayDigest(h.bwdMAC, h.bwdCtr, p)
	if !hmac.Equal(want[:], p[5:9]) {
		return false
	}
	h.bwdCtr++
	return true
}

// encryptForward applies this hop's forward stream cipher in place.
func (h *hopCrypto) encryptForward(p *[PayloadSize]byte) { h.fwd.XORKeyStream(p[:], p[:]) }

// decryptForward is identical for CTR mode; named for readability.
func (h *hopCrypto) decryptForward(p *[PayloadSize]byte) { h.fwd.XORKeyStream(p[:], p[:]) }

// encryptBackward applies this hop's backward stream cipher in place.
func (h *hopCrypto) encryptBackward(p *[PayloadSize]byte) { h.bwd.XORKeyStream(p[:], p[:]) }

// decryptBackward is identical for CTR mode; named for readability.
func (h *hopCrypto) decryptBackward(p *[PayloadSize]byte) { h.bwd.XORKeyStream(p[:], p[:]) }

// handshake is the X25519 exchange used by CREATE/CREATED and
// EXTEND/EXTENDED. The simulation authenticates neither side (see package
// comment); the exchange costs the same round trips as ntor.
type handshake struct {
	priv *ecdh.PrivateKey
}

// newHandshake generates the initiator or responder keypair from a
// deterministic stream seeded by the caller.
func newHandshake(rng *rand.Rand) (*handshake, error) {
	seed := make([]byte, 32)
	for i := range seed {
		seed[i] = byte(rng.Intn(256))
	}
	priv, err := ecdh.X25519().NewPrivateKey(clampX25519(seed))
	if err != nil {
		return nil, fmt.Errorf("tor: handshake keygen: %w", err)
	}
	return &handshake{priv: priv}, nil
}

// clampX25519 applies the RFC 7748 scalar clamping so arbitrary seeds are
// valid private keys.
func clampX25519(seed []byte) []byte {
	s := append([]byte(nil), seed...)
	s[0] &= 248
	s[31] &= 127
	s[31] |= 64
	return s
}

// public returns the 32-byte public key for the wire.
func (hs *handshake) public() []byte { return hs.priv.PublicKey().Bytes() }

// complete derives the hop keys from the peer's public key.
func (hs *handshake) complete(peerPub []byte) (*hopCrypto, error) {
	if len(peerPub) != HandshakeLen {
		return nil, errors.New("tor: bad handshake length")
	}
	pub, err := ecdh.X25519().NewPublicKey(peerPub)
	if err != nil {
		return nil, fmt.Errorf("tor: bad peer key: %w", err)
	}
	secret, err := hs.priv.ECDH(pub)
	if err != nil {
		return nil, fmt.Errorf("tor: ecdh: %w", err)
	}
	return deriveHop(secret)
}

// readHandshake extracts the handshake public key from a cell payload.
func readHandshake(p *[PayloadSize]byte) []byte {
	return append([]byte(nil), p[:HandshakeLen]...)
}

// writeHandshake places a handshake public key into a cell payload.
func writeHandshake(p *[PayloadSize]byte, pub []byte) {
	copy(p[:HandshakeLen], pub)
}

// randFill fills b from the rng; used for cover padding.
func randFill(rng *rand.Rand, b []byte) {
	for i := range b {
		b[i] = byte(rng.Intn(256))
	}
}
