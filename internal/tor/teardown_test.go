package tor

import (
	"io"
	"testing"
	"time"

	"ptperf/internal/geo"
	"ptperf/internal/netem"
)

func TestStreamEOFOnServerClose(t *testing.T) {
	w := buildWorld(t, 1, 1, 1)
	c := newTestClient(t, w, nil)
	conn, err := c.Dial(w.target)
	if err != nil {
		t.Fatal(err)
	}
	// The echo server closes when we half-close; we should see EOF,
	// not a hang or a non-EOF error.
	conn.Write([]byte("x"))
	buf := make([]byte, 1)
	if _, err := io.ReadFull(conn, buf); err != nil {
		t.Fatal(err)
	}
	conn.(*Stream).Close()
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("read after local close must fail")
	}
}

func TestCircuitSurvivesStreamChurn(t *testing.T) {
	w := buildWorld(t, 1, 1, 1)
	c := newTestClient(t, w, nil)
	if err := c.Preheat(); err != nil {
		t.Fatal(err)
	}
	p := c.Path()
	for i := 0; i < 20; i++ {
		conn, err := c.Dial(w.target)
		if err != nil {
			t.Fatalf("stream %d: %v", i, err)
		}
		conn.Write([]byte("ping"))
		buf := make([]byte, 4)
		if _, err := io.ReadFull(conn, buf); err != nil {
			t.Fatalf("stream %d read: %v", i, err)
		}
		conn.Close()
	}
	if c.Path() != p {
		t.Fatal("stream churn must not rebuild the circuit")
	}
}

func TestDialAfterGuardDeath(t *testing.T) {
	w := buildWorld(t, 2, 2, 2)
	c := newTestClient(t, w, nil)
	if err := c.Preheat(); err != nil {
		t.Fatal(err)
	}
	// Kill the current circuit from below by closing the client's view.
	c.NewCircuit()
	conn, err := c.Dial(w.target)
	if err != nil {
		t.Fatalf("dial after teardown: %v", err)
	}
	conn.Close()
}

func TestBuildTimeoutOnDeadGuard(t *testing.T) {
	w := buildWorld(t, 1, 1, 1)
	dead := &Descriptor{Name: "dead", Addr: "nosuchhost:9001", Flags: FlagGuard | FlagFast, Bandwidth: 1e6}
	c := newTestClient(t, w, func(cfg *ClientConfig) {
		cfg.Guard = dead
		cfg.BuildTimeout = 2 * time.Second
	})
	if err := c.Preheat(); err == nil {
		t.Fatal("building through a dead guard must fail")
	}
}

// TestMidTransferRelayCrashTearsDown crashes the middle relay while a
// bulk transfer is in flight and audits the blast radius: the stream
// must fail (not hang), the cell-scheduler accounting must balance with
// the crash's queue drops counted as Dropped, and no goroutine or conn
// may outlive the teardown. The middle's uplink is throttled so its
// scheduler still holds queued backward cells when the crash fires.
func TestMidTransferRelayCrashTearsDown(t *testing.T) {
	n := netem.New(netem.WithTimeScale(0.001), netem.WithSeed(11))
	dir := NewDirectory()
	mkRelay := func(name string, flags Flag, uplink float64) *Relay {
		host := n.MustAddHost(netem.HostConfig{
			Name: name, Location: geo.Frankfurt,
			UplinkBps: uplink, DownlinkBps: 50 << 20,
		})
		r, err := StartRelay(RelayConfig{Name: name, Host: host, Directory: dir, Flags: flags, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	mkRelay("guard-0", FlagGuard|FlagFast, 50<<20)
	mid := mkRelay("middle-0", FlagFast, 100<<10) // bottleneck: backward cells queue here
	mkRelay("exit-0", FlagExit|FlagFast, 50<<20)

	clientHost := n.MustAddHost(netem.HostConfig{Name: "client", Location: geo.Toronto})
	web := n.MustAddHost(netem.HostConfig{Name: "web", Location: geo.NewYork})
	ln, err := web.Listen(80)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	n.Go(func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			conn := c
			n.Go(func() { defer conn.Close(); io.Copy(conn, conn) })
		}
	})

	c, err := NewClient(ClientConfig{Host: clientHost, Directory: dir, Seed: 42, BuildTimeout: 20 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Preheat(); err != nil {
		t.Fatal(err)
	}
	n.Clock().Sleep(time.Second) // settle bootstrap
	before := n.Clock().Registered()

	conn, err := c.Dial("web:80")
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 300<<10)
	n.Go(func() { conn.Write(payload) })
	// Read a little so the echo is moving and the bottleneck queue fills.
	if _, err := io.ReadFull(conn, make([]byte, 16<<10)); err != nil {
		t.Fatal(err)
	}

	if !mid.Crash() {
		t.Fatal("crash refused")
	}
	if _, err := io.ReadFull(conn, make([]byte, len(payload)-(16<<10))); err == nil {
		t.Fatal("transfer survived a mid-path relay crash")
	}
	conn.Close()
	c.Close()
	n.Clock().Sleep(time.Second) // let the teardown cascade settle

	snap := n.Acct().Snapshot()
	if err := snap.CellConservationErr(); err != nil {
		t.Fatal(err)
	}
	if snap.CellsDropped == 0 {
		t.Fatal("mid-transfer crash dropped no queued cells")
	}
	for _, addr := range n.Acct().OpenConnAddrs() {
		t.Errorf("conn %s still open after crash teardown", addr)
	}
	if after := n.Clock().Registered(); after > before {
		t.Fatalf("goroutines grew across crash teardown: %d → %d", before, after)
	}
}

func TestWindowsNeverGoNegativeUnderLoad(t *testing.T) {
	// Hammer one circuit with interleaved writes from several streams
	// and verify flow-control book-keeping stays sane (no deadlock, all
	// data arrives).
	w := buildWorld(t, 1, 1, 1)
	// A generous build timeout: under -race the detector's real-time
	// overhead inflates virtual time at this small scale.
	c := newTestClient(t, w, func(cfg *ClientConfig) { cfg.BuildTimeout = 20 * time.Minute })
	if err := c.Preheat(); err != nil {
		t.Fatal(err)
	}
	done := netem.NewChan[error](w.net.Clock(), 3)
	for i := 0; i < 3; i++ {
		w.net.Go(func() {
			conn, err := c.Dial(w.target)
			if err != nil {
				done.Send(err)
				return
			}
			defer conn.Close()
			payload := make([]byte, 200<<10)
			w.net.Go(func() { conn.Write(payload) })
			_, err = io.ReadFull(conn, make([]byte, len(payload)))
			done.Send(err)
		})
	}
	for i := 0; i < 3; i++ {
		if err, _ := done.Recv(); err != nil {
			t.Fatal(err)
		}
	}
}
