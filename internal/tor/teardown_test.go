package tor

import (
	"io"
	"testing"
	"time"

	"ptperf/internal/netem"
)

func TestStreamEOFOnServerClose(t *testing.T) {
	w := buildWorld(t, 1, 1, 1)
	c := newTestClient(t, w, nil)
	conn, err := c.Dial(w.target)
	if err != nil {
		t.Fatal(err)
	}
	// The echo server closes when we half-close; we should see EOF,
	// not a hang or a non-EOF error.
	conn.Write([]byte("x"))
	buf := make([]byte, 1)
	if _, err := io.ReadFull(conn, buf); err != nil {
		t.Fatal(err)
	}
	conn.(*Stream).Close()
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("read after local close must fail")
	}
}

func TestCircuitSurvivesStreamChurn(t *testing.T) {
	w := buildWorld(t, 1, 1, 1)
	c := newTestClient(t, w, nil)
	if err := c.Preheat(); err != nil {
		t.Fatal(err)
	}
	p := c.Path()
	for i := 0; i < 20; i++ {
		conn, err := c.Dial(w.target)
		if err != nil {
			t.Fatalf("stream %d: %v", i, err)
		}
		conn.Write([]byte("ping"))
		buf := make([]byte, 4)
		if _, err := io.ReadFull(conn, buf); err != nil {
			t.Fatalf("stream %d read: %v", i, err)
		}
		conn.Close()
	}
	if c.Path() != p {
		t.Fatal("stream churn must not rebuild the circuit")
	}
}

func TestDialAfterGuardDeath(t *testing.T) {
	w := buildWorld(t, 2, 2, 2)
	c := newTestClient(t, w, nil)
	if err := c.Preheat(); err != nil {
		t.Fatal(err)
	}
	// Kill the current circuit from below by closing the client's view.
	c.NewCircuit()
	conn, err := c.Dial(w.target)
	if err != nil {
		t.Fatalf("dial after teardown: %v", err)
	}
	conn.Close()
}

func TestBuildTimeoutOnDeadGuard(t *testing.T) {
	w := buildWorld(t, 1, 1, 1)
	dead := &Descriptor{Name: "dead", Addr: "nosuchhost:9001", Flags: FlagGuard | FlagFast, Bandwidth: 1e6}
	c := newTestClient(t, w, func(cfg *ClientConfig) {
		cfg.Guard = dead
		cfg.BuildTimeout = 2 * time.Second
	})
	if err := c.Preheat(); err == nil {
		t.Fatal("building through a dead guard must fail")
	}
}

func TestWindowsNeverGoNegativeUnderLoad(t *testing.T) {
	// Hammer one circuit with interleaved writes from several streams
	// and verify flow-control book-keeping stays sane (no deadlock, all
	// data arrives).
	w := buildWorld(t, 1, 1, 1)
	// A generous build timeout: under -race the detector's real-time
	// overhead inflates virtual time at this small scale.
	c := newTestClient(t, w, func(cfg *ClientConfig) { cfg.BuildTimeout = 20 * time.Minute })
	if err := c.Preheat(); err != nil {
		t.Fatal(err)
	}
	done := netem.NewChan[error](w.net.Clock(), 3)
	for i := 0; i < 3; i++ {
		w.net.Go(func() {
			conn, err := c.Dial(w.target)
			if err != nil {
				done.Send(err)
				return
			}
			defer conn.Close()
			payload := make([]byte, 200<<10)
			w.net.Go(func() { conn.Write(payload) })
			_, err = io.ReadFull(conn, make([]byte, len(payload)))
			done.Send(err)
		})
	}
	for i := 0; i < 3; i++ {
		if err, _ := done.Recv(); err != nil {
			t.Fatal(err)
		}
	}
}
