// Package faults injects benign infrastructure failure into a virtual
// world: scheduled relay crashes and restarts, link flaps, and bridge
// churn (descriptors leaving and rejoining the directory). It is the
// counterpart to internal/censor — that package models an adversary
// manipulating traffic it can see; this one models the network simply
// breaking, which on the live Tor network is the common case.
//
// Determinism: a Plan is compiled onto the virtual clock at Attach time,
// one parked goroutine per event (netem.Clock.SleepUntil), exactly like
// the censor's scenario cutovers. Event targets are resolved by name at
// *fire* time, not attach time, so rigs built lazily after Attach (the
// testbed's per-deployment bridges) are still hit, and an event naming a
// target that never appears counts as Skipped instead of failing the
// world. Every state change an event makes — conn aborts, scheduler
// drops, directory edits — happens through the same scheduler-aware
// primitives the rest of the simulation uses, so same-seed runs remain
// byte-identical and -jobs 1 ≡ -jobs N equivalence survives.
package faults

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ptperf/internal/netem"
	"ptperf/internal/tor"
)

// Kind is the failure mode of one event.
type Kind int

const (
	// KindCrash kills a relay process: descriptor withdrawn, listener
	// closed, queued cells dropped (Acct-counted), every conn touching
	// the relay's host aborted. A positive Duration restarts the relay
	// after that long; zero leaves it down for good.
	KindCrash Kind = iota
	// KindFlap takes a host's access link down for Duration: live conns
	// touching the host are aborted and new dials fail until the link
	// comes back. Zero Duration leaves the link down.
	KindFlap
	// KindChurn withdraws a relay's descriptor from the directory for
	// Duration, then republishes it — the relay itself keeps running, so
	// existing circuits survive; only consensus-driven selection stops
	// seeing it. Zero Duration means it never rejoins.
	KindChurn
)

func (k Kind) String() string {
	switch k {
	case KindCrash:
		return "crash"
	case KindFlap:
		return "flap"
	case KindChurn:
		return "churn"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Event schedules one failure.
type Event struct {
	// Kind is the failure mode.
	Kind Kind
	// Target names the relay (crash/churn) or host (flap) hit. The
	// testbed's volunteer relays run on hosts named after them, so relay
	// names work for all three kinds there.
	Target string
	// At is the virtual instant the failure starts.
	At time.Duration
	// Duration is how long the failure lasts (restart / link-up /
	// rejoin after this long); zero makes it permanent.
	Duration time.Duration
}

// Plan is a named, deterministic fault schedule.
type Plan struct {
	// Name labels the plan in reports.
	Name string
	// Events are the scheduled failures; order carries no meaning (each
	// event is armed independently at its own instant).
	Events []Event
}

// Empty reports whether the plan schedules nothing.
func (p *Plan) Empty() bool { return p == nil || len(p.Events) == 0 }

// Stats counts what an injector actually did. Events scheduled past the
// end of a campaign never fire and are not counted anywhere.
type Stats struct {
	// Crashes / Restarts count relay kills and recoveries.
	Crashes, Restarts int64
	// FlapsDown / FlapsUp count link-down and link-up transitions.
	FlapsDown, FlapsUp int64
	// Withdrawn / Rejoined count directory churn transitions.
	Withdrawn, Rejoined int64
	// Skipped counts events whose target could not be resolved (or that
	// found their target already in the failed state).
	Skipped int64
}

// Total is the number of state transitions the injector performed.
func (s Stats) Total() int64 {
	return s.Crashes + s.Restarts + s.FlapsDown + s.FlapsUp + s.Withdrawn + s.Rejoined
}

// Injector executes one plan against a world. Create it with Attach;
// register crashable relays with RegisterRelay as they start.
type Injector struct {
	net   *netem.Network
	dir   *tor.Directory
	clock *netem.Clock
	plan  Plan

	mu      sync.Mutex
	relays  map[string]*tor.Relay
	flapped map[string]*netem.Host

	crashes, restarts   atomic.Int64
	flapsDown, flapsUp  atomic.Int64
	withdrawn, rejoined atomic.Int64
	skipped             atomic.Int64
}

// Attach compiles the plan onto the network's virtual clock and returns
// the injector. Each event is armed as one parked goroutine; nothing
// fires before its instant, and a world that ends earlier simply never
// observes it.
func Attach(n *netem.Network, dir *tor.Directory, plan Plan) *Injector {
	inj := &Injector{
		net:     n,
		dir:     dir,
		clock:   n.Clock(),
		plan:    plan,
		relays:  make(map[string]*tor.Relay),
		flapped: make(map[string]*netem.Host),
	}
	for _, ev := range plan.Events {
		ev := ev
		n.Go(func() {
			inj.clock.SleepUntil(ev.At)
			inj.fire(ev)
		})
	}
	return inj
}

// Plan returns the attached plan.
func (inj *Injector) Plan() Plan { return inj.plan }

// RegisterRelay makes a relay crashable by name. Safe to call after
// Attach — targets resolve at fire time.
func (inj *Injector) RegisterRelay(r *tor.Relay) {
	inj.mu.Lock()
	inj.relays[r.Descriptor().Name] = r
	inj.mu.Unlock()
}

func (inj *Injector) relay(name string) *tor.Relay {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.relays[name]
}

// fire executes one event at its instant (and its recovery half after
// Duration, on the same goroutine).
func (inj *Injector) fire(ev Event) {
	switch ev.Kind {
	case KindCrash:
		r := inj.relay(ev.Target)
		if r == nil || !r.Crash() {
			inj.skipped.Add(1)
			return
		}
		inj.crashes.Add(1)
		if ev.Duration > 0 {
			inj.clock.Sleep(ev.Duration)
			if r.Restart() == nil {
				inj.restarts.Add(1)
			} else {
				inj.skipped.Add(1)
			}
		}
	case KindFlap:
		h := inj.net.Host(ev.Target)
		if h == nil || h.LinkDown() {
			inj.skipped.Add(1)
			return
		}
		inj.mu.Lock()
		inj.flapped[ev.Target] = h
		inj.mu.Unlock()
		h.SetLinkDown(true)
		inj.net.AbortHostConns(ev.Target)
		inj.flapsDown.Add(1)
		if ev.Duration > 0 {
			inj.clock.Sleep(ev.Duration)
			h.SetLinkDown(false)
			inj.flapsUp.Add(1)
		}
	case KindChurn:
		desc, ok := inj.dir.Lookup(ev.Target)
		if !ok || !inj.dir.Withdraw(ev.Target) {
			inj.skipped.Add(1)
			return
		}
		inj.withdrawn.Add(1)
		if ev.Duration > 0 {
			inj.clock.Sleep(ev.Duration)
			if inj.dir.Publish(desc) == nil {
				inj.rejoined.Add(1)
			} else {
				inj.skipped.Add(1)
			}
		}
	default:
		inj.skipped.Add(1)
	}
}

// Stats snapshots the injector's transition counters.
func (inj *Injector) Stats() Stats {
	return Stats{
		Crashes:   inj.crashes.Load(),
		Restarts:  inj.restarts.Load(),
		FlapsDown: inj.flapsDown.Load(),
		FlapsUp:   inj.flapsUp.Load(),
		Withdrawn: inj.withdrawn.Load(),
		Rejoined:  inj.rejoined.Load(),
		Skipped:   inj.skipped.Load(),
	}
}

// DownHosts lists, sorted, the hosts that are failed *right now*:
// registered relays still crashed plus flapped hosts whose link is
// still down. The fuzzer's "no flow survives its host's final crash"
// invariant audits open conns against this set at campaign end.
func (inj *Injector) DownHosts() []string {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	set := make(map[string]bool)
	for _, r := range inj.relays {
		if r.Crashed() {
			set[r.Host().Name()] = true
		}
	}
	for name, h := range inj.flapped {
		if h.LinkDown() {
			set[name] = true
		}
	}
	out := make([]string, 0, len(set))
	for name := range set {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
