package faults

import (
	"testing"
	"time"

	"ptperf/internal/geo"
	"ptperf/internal/netem"
	"ptperf/internal/tor"
)

// testWorld is a two-relay world (guard-0, exit-0 on same-named hosts,
// like the testbed's volunteer fleet) plus a client host to dial from.
func testWorld(t *testing.T) (*netem.Network, *tor.Directory, *netem.Host, map[string]*tor.Relay) {
	t.Helper()
	n := netem.New(netem.WithTimeScale(0.001), netem.WithSeed(9))
	dir := tor.NewDirectory()
	relays := map[string]*tor.Relay{}
	mk := func(name string, flags tor.Flag, loc geo.Location) {
		h := n.MustAddHost(netem.HostConfig{Name: name, Location: loc})
		r, err := tor.StartRelay(tor.RelayConfig{Name: name, Host: h, Directory: dir, Flags: flags, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		relays[name] = r
	}
	mk("guard-0", tor.FlagGuard|tor.FlagFast, geo.Frankfurt)
	mk("exit-0", tor.FlagExit|tor.FlagFast, geo.London)
	client := n.MustAddHost(netem.HostConfig{Name: "client", Location: geo.Toronto})
	return n, dir, client, relays
}

func TestCrashRestartCycle(t *testing.T) {
	n, dir, client, relays := testWorld(t)
	inj := Attach(n, dir, Plan{Name: "t", Events: []Event{
		{Kind: KindCrash, Target: "guard-0", At: 1 * time.Second, Duration: 2 * time.Second},
	}})
	inj.RegisterRelay(relays["guard-0"])

	conn, err := client.Dial("guard-0:9001")
	if err != nil {
		t.Fatal(err)
	}
	n.Clock().Sleep(1500 * time.Millisecond) // crash has fired, restart pending

	if _, ok := dir.Lookup("guard-0"); ok {
		t.Fatal("crashed relay still in the consensus")
	}
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Fatal("conn to the crashed relay survived")
	}
	if _, err := client.Dial("guard-0:9001"); err == nil {
		t.Fatal("dial to the crashed relay succeeded")
	}
	if !relays["guard-0"].Crashed() {
		t.Fatal("relay does not report crashed")
	}
	if got := inj.DownHosts(); len(got) != 1 || got[0] != "guard-0" {
		t.Fatalf("DownHosts = %v, want [guard-0]", got)
	}

	n.Clock().Sleep(2 * time.Second) // restart has fired
	if _, ok := dir.Lookup("guard-0"); !ok {
		t.Fatal("restarted relay missing from the consensus")
	}
	c2, err := client.Dial("guard-0:9001")
	if err != nil {
		t.Fatalf("dial after restart: %v", err)
	}
	c2.Close()
	if got := inj.DownHosts(); len(got) != 0 {
		t.Fatalf("DownHosts after restart = %v, want empty", got)
	}
	st := inj.Stats()
	if st.Crashes != 1 || st.Restarts != 1 || st.Skipped != 0 {
		t.Fatalf("stats = %+v, want 1 crash, 1 restart", st)
	}
}

func TestPermanentCrashStaysDown(t *testing.T) {
	n, dir, client, relays := testWorld(t)
	inj := Attach(n, dir, Plan{Events: []Event{
		{Kind: KindCrash, Target: "exit-0", At: 1 * time.Second}, // zero Duration: for good
	}})
	inj.RegisterRelay(relays["exit-0"])

	n.Clock().Sleep(5 * time.Second)
	if _, err := client.Dial("exit-0:9001"); err == nil {
		t.Fatal("dial to a permanently crashed relay succeeded")
	}
	if got := inj.DownHosts(); len(got) != 1 || got[0] != "exit-0" {
		t.Fatalf("DownHosts = %v, want [exit-0]", got)
	}
	st := inj.Stats()
	if st.Crashes != 1 || st.Restarts != 0 {
		t.Fatalf("stats = %+v, want 1 crash, 0 restarts", st)
	}
}

func TestFlapBlocksDialsThenRecovers(t *testing.T) {
	n, dir, client, _ := testWorld(t)
	inj := Attach(n, dir, Plan{Events: []Event{
		{Kind: KindFlap, Target: "exit-0", At: 1 * time.Second, Duration: 2 * time.Second},
	}})

	conn, err := client.Dial("exit-0:9001")
	if err != nil {
		t.Fatal(err)
	}
	n.Clock().Sleep(1500 * time.Millisecond) // link is down

	snap := n.Acct().Snapshot()
	if _, err := client.Dial("exit-0:9001"); err == nil {
		t.Fatal("dial to a flapped host succeeded")
	}
	// Link-down dial failures resolve before accounting, like no-such-host:
	// the censor's blocked-dial cross-check depends on this.
	post := n.Acct().Snapshot()
	if post.Dials != snap.Dials || post.DialsRefused != snap.DialsRefused {
		t.Fatalf("link-down dial moved accounting: dials %d→%d refused %d→%d",
			snap.Dials, post.Dials, snap.DialsRefused, post.DialsRefused)
	}
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Fatal("pre-flap conn survived the injector's abort")
	}
	if got := inj.DownHosts(); len(got) != 1 || got[0] != "exit-0" {
		t.Fatalf("DownHosts = %v, want [exit-0]", got)
	}

	n.Clock().Sleep(2 * time.Second) // link back up
	c2, err := client.Dial("exit-0:9001")
	if err != nil {
		t.Fatalf("dial after link-up: %v", err)
	}
	c2.Close()
	if got := inj.DownHosts(); len(got) != 0 {
		t.Fatalf("DownHosts after link-up = %v, want empty", got)
	}
	st := inj.Stats()
	if st.FlapsDown != 1 || st.FlapsUp != 1 {
		t.Fatalf("stats = %+v, want 1 flap down, 1 up", st)
	}
}

func TestChurnWithdrawsOnlyTheDescriptor(t *testing.T) {
	n, dir, client, _ := testWorld(t)
	inj := Attach(n, dir, Plan{Events: []Event{
		{Kind: KindChurn, Target: "guard-0", At: 1 * time.Second, Duration: 2 * time.Second},
	}})

	n.Clock().Sleep(1500 * time.Millisecond) // withdrawn
	if _, ok := dir.Lookup("guard-0"); ok {
		t.Fatal("churned relay still in the consensus")
	}
	// The relay itself keeps running: only consensus selection is blind.
	conn, err := client.Dial("guard-0:9001")
	if err != nil {
		t.Fatalf("dial to a churned (but running) relay: %v", err)
	}
	conn.Close()
	if got := inj.DownHosts(); len(got) != 0 {
		t.Fatalf("churn must not mark hosts down, got %v", got)
	}

	n.Clock().Sleep(2 * time.Second) // rejoined
	if _, ok := dir.Lookup("guard-0"); !ok {
		t.Fatal("churned relay never rejoined the consensus")
	}
	st := inj.Stats()
	if st.Withdrawn != 1 || st.Rejoined != 1 {
		t.Fatalf("stats = %+v, want 1 withdrawn, 1 rejoined", st)
	}
}

func TestUnresolvableTargetsAreSkipped(t *testing.T) {
	n, dir, _, _ := testWorld(t)
	inj := Attach(n, dir, Plan{Events: []Event{
		{Kind: KindCrash, Target: "ghost", At: 500 * time.Millisecond},
		{Kind: KindFlap, Target: "ghost", At: 500 * time.Millisecond},
		{Kind: KindChurn, Target: "ghost", At: 500 * time.Millisecond},
	}})
	n.Clock().Sleep(2 * time.Second)
	st := inj.Stats()
	if st.Skipped != 3 || st.Total() != 0 {
		t.Fatalf("stats = %+v, want 3 skipped and no transitions", st)
	}
}

func TestEmptyPlan(t *testing.T) {
	var p *Plan
	if !p.Empty() {
		t.Fatal("nil plan must be empty")
	}
	if !(&Plan{Name: "x"}).Empty() {
		t.Fatal("event-less plan must be empty")
	}
	if (&Plan{Events: []Event{{Kind: KindCrash}}}).Empty() {
		t.Fatal("plan with events must not be empty")
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{KindCrash: "crash", KindFlap: "flap", KindChurn: "churn", Kind(9): "Kind(9)"} {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}
