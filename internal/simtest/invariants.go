package simtest

import (
	"fmt"
	"strings"

	"ptperf/internal/censor"
	"ptperf/internal/stats"
)

// This file is the invariant suite: every checker is a cross-cutting
// property that must hold for EVERY world, whatever transports,
// interference and topology it drew. A violation is a bug in the
// simulation substrate (or a deliberately injected fault), never an
// acceptable outcome of an adversarial scenario — scenarios are allowed
// to fail every page load, but they are not allowed to lose bytes,
// miscount interference, leak goroutines, or render differently on a
// second identical run.

// leakTolerance absorbs benign cross-sample wobble in the steady-state
// leak checks: timer-driven endpoint churn (the snowflake volunteer
// pool replaces proxies on exponential lifetimes) can catch the two
// quiescent samples at slightly different pool states.
const (
	leakGoroutineTolerance = 4
	leakConnTolerance      = 8
)

// invariant is one named cross-cutting property of a world outcome.
type invariant struct {
	name  string
	check func(*Outcome) error
}

// invariants lists the suite in the order violations are reported.
// Determinism (same seed ⇒ byte-identical report) is checked by
// Check itself, which needs two outcomes.
var invariants = []invariant{
	{"scenario-bounds", checkScenarioBounds},
	{"report-shape", checkReportShape},
	{"clock-monotonic", checkClockMonotonic},
	{"byte-conservation", checkByteConservation},
	{"cell-conservation", checkCellConservation},
	{"censor-accounting", checkCensorAccounting},
	{"recovery-accounting", checkRecoveryAccounting},
	{"fault-survivors", checkFaultSurvivors},
	{"no-leaks", checkNoLeaks},
	{"timeline-conservation", checkTimelineConservation},
}

// checkScenarioBounds re-validates the world's generated scenario
// against the paper-scale envelope: the generator and the shrinker must
// never emit a rule outside it.
func checkScenarioBounds(o *Outcome) error {
	return censor.PaperBounds().Validate(o.Spec.Scenario)
}

// checkReportShape is the sanity oracle over the measured data: counts
// consistent with the campaign size, times within [0, timeout], box
// statistics ordered, ok/failed counts consistent with the campaign
// size.
func checkReportShape(o *Outcome) error {
	// Methods holds the main pass only (the steady-state pass discards
	// its results): Sites sites from each of the two catalogs, Repeats
	// accesses each.
	want := 2 * o.Spec.Sites * o.Spec.Repeats
	for _, name := range o.orderedMethods() {
		m, ok := o.Methods[name]
		if !ok {
			return fmt.Errorf("method %s missing from results", name)
		}
		if len(m.Times) != want {
			return fmt.Errorf("%s: %d measurements, want %d", name, len(m.Times), want)
		}
		if m.OK < 0 || m.Failed < 0 || m.OK+m.Failed != len(m.Times) {
			return fmt.Errorf("%s: ok=%d + failed=%d inconsistent with %d measurements", name, m.OK, m.Failed, len(m.Times))
		}
		for _, t := range m.Times {
			if t < 0 || t > pageTimeout.Seconds() {
				return fmt.Errorf("%s: access time %.3fs outside [0, %.0fs]", name, t, pageTimeout.Seconds())
			}
		}
		box := stats.Summarize(m.Times)
		if !(box.Min <= box.Q1 && box.Q1 <= box.Median && box.Median <= box.Q3 && box.Q3 <= box.Max) {
			return fmt.Errorf("%s: box statistics unordered: %+v", name, box)
		}
	}
	return nil
}

// checkClockMonotonic surfaces any backwards virtual-time observation
// made while measuring; the final elapsed time must also be positive
// (a campaign that consumed no virtual time measured nothing).
func checkClockMonotonic(o *Outcome) error {
	if o.ClockErr != nil {
		return o.ClockErr
	}
	if o.Elapsed <= 0 {
		return fmt.Errorf("campaign consumed no virtual time (elapsed %v)", o.Elapsed)
	}
	return nil
}

// checkByteConservation audits the netem accounting equation: every
// byte written into the network was delivered, dropped at a reader
// close, or is still buffered (summed independently from the live
// pipes).
func checkByteConservation(o *Outcome) error {
	if err := o.Acct.ConservationErr(); err != nil {
		return err
	}
	if o.Acct.SegmentsSent == 0 || o.Acct.BytesSent == 0 {
		return fmt.Errorf("campaign moved no bytes (%d segments)", o.Acct.SegmentsSent)
	}
	return nil
}

// checkCellConservation audits the relay cell scheduler: the final
// snapshot is taken after the drain sleep, when every circuit has been
// parked and torn down, so each cell that entered a per-circuit output
// queue must have been flushed to its link or dropped at teardown —
// none may linger in (or vanish from) a queue. Delivered bytes alone
// don't imply scheduled cells (PT handshakes and broker traffic can
// move bytes while every circuit dies before its first relay cell),
// but a *successful page access* cannot happen without backward DATA
// cells through the relays — so any OK access requires cells.
func checkCellConservation(o *Outcome) error {
	if err := o.Acct.CellConservationErr(); err != nil {
		return err
	}
	anyOK := false
	//simlint:allow maprange -- existence scan: ORs one boolean over the values, which commutes.
	for _, m := range o.Methods {
		if m.OK > 0 {
			anyOK = true
			break
		}
	}
	if anyOK && o.Acct.CellsQueued == 0 {
		return fmt.Errorf("campaign completed accesses but no relay cells were scheduled")
	}
	return nil
}

// checkCensorAccounting cross-checks the censor's interference counters
// against the link layer's: the censor cannot have throttled, reset or
// lost more segments than the network consulted it on, and every
// refused dial must be one the network actually refused.
func checkCensorAccounting(o *Outcome) error {
	st, a := o.Censor, o.Acct
	if int64(st.ThrottledSegments) > a.SegmentsFiltered {
		return fmt.Errorf("censor throttled %d segments but only %d were filtered", st.ThrottledSegments, a.SegmentsFiltered)
	}
	if int64(st.Resets) > a.SegmentsFiltered {
		return fmt.Errorf("censor reset %d segments but only %d were filtered", st.Resets, a.SegmentsFiltered)
	}
	// Each loss rule can charge at most one event per filtered segment;
	// with no loss rules the only correct count is zero.
	lossRules := 0
	for _, ev := range o.Spec.Scenario.Events {
		if ev.Rule.Loss > 0 {
			lossRules++
		}
	}
	if int64(st.LossEvents) > a.SegmentsFiltered*int64(lossRules) {
		return fmt.Errorf("censor counted %d loss events over %d filtered segments (%d loss rules)",
			st.LossEvents, a.SegmentsFiltered, lossRules)
	}
	if int64(st.BlockedDials) != a.DialsRefused {
		return fmt.Errorf("censor blocked %d dials but the network refused %d", st.BlockedDials, a.DialsRefused)
	}
	if int64(st.FlowsCut) > a.ConnsOpened {
		return fmt.Errorf("censor cut %d flows but only %d conn endpoints ever opened", st.FlowsCut, a.ConnsOpened)
	}
	for _, n := range []int{st.BlockedDials, st.FlowsCut, st.Resets, st.LossEvents, st.ThrottledSegments} {
		if n < 0 {
			return fmt.Errorf("negative censor counter: %+v", st)
		}
	}
	return nil
}

// checkRecoveryAccounting cross-checks every method's recovery
// counters: each counter must be non-negative, and a client can never
// have re-attached more streams than it saw fail — every re-attach is
// the response to one observed stream failure.
func checkRecoveryAccounting(o *Outcome) error {
	for _, name := range o.orderedMethods() {
		r := o.Recovery[name]
		// A slice, not a map: with several negative counters the error
		// must name the same one on every run.
		for _, c := range []struct {
			label string
			n     int64
		}{
			{"rebuilds", r.Rebuilds}, {"build-timeouts", r.BuildTimeouts},
			{"stream-failures", r.StreamFailures}, {"re-attaches", r.ReAttaches},
			{"abandoned", r.Abandoned}, {"guard-probations", r.GuardProbations},
		} {
			if c.n < 0 {
				return fmt.Errorf("%s: negative recovery counter %s=%d", name, c.label, c.n)
			}
		}
		if r.ReAttaches > r.StreamFailures {
			return fmt.Errorf("%s: %d stream re-attaches exceed %d observed stream failures", name, r.ReAttaches, r.StreamFailures)
		}
	}
	return nil
}

// checkFaultSurvivors audits the fault injector's blast radius: at the
// final quiescent point, no conn endpoint may still be open on a host
// that is down (a permanently crashed relay, a link still flapped
// down). The injector aborts every conn touching the host when the
// fault fires, and dials to or from a down host must fail — a survivor
// means some path dodged both, i.e. a flow outlived its host.
func checkFaultSurvivors(o *Outcome) error {
	if len(o.DownHosts) == 0 {
		return nil
	}
	down := make(map[string]bool, len(o.DownHosts))
	for _, h := range o.DownHosts {
		down[h] = true
	}
	host := func(endpoint string) string {
		if i := strings.LastIndex(endpoint, ":"); i >= 0 {
			return endpoint[:i]
		}
		return endpoint
	}
	for _, addr := range o.OpenConnAddrs {
		local, remote, ok := strings.Cut(addr, "→")
		if !ok {
			return fmt.Errorf("unparseable open-conn endpoint %q", addr)
		}
		if down[host(local)] || down[host(remote)] {
			return fmt.Errorf("conn %s still open although host(s) down: %v", addr, o.DownHosts)
		}
	}
	return nil
}

// checkNoLeaks compares the two quiescent samples: the steady-state
// second pass must not have grown the world's goroutine or open-conn
// population beyond churn tolerance — growth there means some per-access
// resource survives its access.
func checkNoLeaks(o *Outcome) error {
	if d := o.Registered[1] - o.Registered[0]; d > leakGoroutineTolerance {
		return fmt.Errorf("goroutine leak: %d registered after steady-state pass vs %d after campaign (+%d > %d)",
			o.Registered[1], o.Registered[0], d, leakGoroutineTolerance)
	}
	if d := o.OpenConns[1] - o.OpenConns[0]; d > leakConnTolerance {
		return fmt.Errorf("conn leak: %d open endpoints after steady-state pass vs %d after campaign (+%d > %d)",
			o.OpenConns[1], o.OpenConns[0], d, leakConnTolerance)
	}
	return nil
}

// checkTimelineConservation audits the observability layer against the
// accounting it samples: the recorder closed at the same quiescent
// instant the final Acct snapshot was taken, so re-summing the
// timeline's interval deltas must reconstruct every monotone counter of
// that snapshot exactly — a mismatch means the sampler lost or invented
// a delta. Clamp regressions mean a counter surface moved backwards
// mid-campaign, which monotone counters never may.
func checkTimelineConservation(o *Outcome) error {
	tl := o.Timeline
	if tl == nil {
		return fmt.Errorf("world ran without a metric timeline")
	}
	if tl.Regressions != 0 {
		return fmt.Errorf("%d clamped counter regressions while sampling", tl.Regressions)
	}
	got, want := tl.AcctTotals(), o.Acct
	// BytesBuffered is a gauge: the totals carry the last sampled value,
	// which is the final snapshot's by construction; comparing the whole
	// struct therefore covers it too.
	if got != want {
		return fmt.Errorf("timeline totals diverge from final snapshot:\n  totals   %+v\n  snapshot %+v", got, want)
	}
	return nil
}

// Check is the fuzzer's per-world verdict: build and run the world,
// apply every invariant, and — only if those pass — run the world a
// second time and require a byte-identical report (same-seed
// determinism, which also subsumes wall-clock reads: real time cannot
// repeat). The returned error carries the violated invariant's name.
func Check(spec Spec) error {
	_, err := checkSpec(spec)
	return err
}

// checkSpec implements Check and additionally returns the first run's
// canonical report (Fuzz hashes it into the run digest).
func checkSpec(spec Spec) (string, error) {
	a, err := Run(spec)
	if err != nil {
		return "", fmt.Errorf("invariant world-build: %w", err)
	}
	for _, inv := range invariants {
		if err := inv.check(a); err != nil {
			return a.Report, fmt.Errorf("invariant %s: %s: %w", inv.name, spec.ID(), err)
		}
	}
	b, err := Run(spec)
	if err != nil {
		return a.Report, fmt.Errorf("invariant world-build (second run): %w", err)
	}
	if a.Report != b.Report {
		return a.Report, fmt.Errorf("invariant determinism: %s: same seed produced different reports:\n--- first ---\n%s--- second ---\n%s",
			spec.ID(), a.Report, b.Report)
	}
	return a.Report, nil
}
