package simtest

import (
	"fmt"
	"runtime/debug"
)

// The shrinker: given a world that violates an invariant, find a
// smaller world that still violates one. Reductions are tried in
// decreasing order of how much world they remove — bisect the
// transport subset, drop scenario rules (and the phase timeline), drop
// fault events, halve sites and repeats — and every accepted reduction
// restarts the scan, so shrinking converges to a local minimum: a world
// where no single reduction still fails. The shrunken spec remains
// expressible as a repro line because every reduction only trims
// Transports, EventIdx (with Scenario.Events in lockstep), Phases,
// FaultIdx (with Faults in lockstep), Sites or Repeats — the generated
// world's other draws are untouched.

// defaultShrinkBudget bounds the total number of candidate worlds a
// shrink may run; each candidate costs up to two world simulations.
const defaultShrinkBudget = 48

// reductions enumerates the next shrink candidates of a spec, largest
// first. Every candidate is normalized so shrunken specs stay
// canonically comparable to their repro-line round trips.
func reductions(s Spec) []Spec {
	var out []Spec
	// Bisect the transport subset.
	if n := len(s.Transports); n > 1 {
		lo, hi := s.clone(), s.clone()
		lo.Transports = append([]string(nil), s.Transports[:n/2]...)
		hi.Transports = append([]string(nil), s.Transports[n/2:]...)
		out = append(out, lo, hi)
	}
	// Drop one scenario rule at a time.
	for i := range s.Scenario.Events {
		c := s.clone()
		c.Scenario.Events = append(c.Scenario.Events[:i:i], s.Scenario.Events[i+1:]...)
		c.EventIdx = append(c.EventIdx[:i:i], s.EventIdx[i+1:]...)
		out = append(out, c)
	}
	// Drop the endpoint-weather timeline.
	if len(s.Scenario.Phases) > 0 {
		c := s.clone()
		c.Scenario.Phases = nil
		out = append(out, c)
	}
	// Drop one fault event at a time.
	for i := range s.Faults {
		c := s.clone()
		c.Faults = append(c.Faults[:i:i], s.Faults[i+1:]...)
		c.FaultIdx = append(c.FaultIdx[:i:i], s.FaultIdx[i+1:]...)
		out = append(out, c)
	}
	// Halve the campaign.
	if s.Sites > 1 {
		c := s.clone()
		c.Sites = s.Sites / 2
		out = append(out, c)
	}
	if s.Repeats > 1 {
		c := s.clone()
		c.Repeats = s.Repeats / 2
		out = append(out, c)
	}
	for i := range out {
		out[i].normalize()
	}
	return out
}

// clone deep-copies the spec's mutable slices so reductions never alias.
func (s Spec) clone() Spec {
	c := s
	c.Transports = append([]string(nil), s.Transports...)
	c.Scenario.Events = append(c.Scenario.Events[:0:0], s.Scenario.Events...)
	c.Scenario.Phases = append(c.Scenario.Phases[:0:0], s.Scenario.Phases...)
	c.EventIdx = append([]int(nil), s.EventIdx...)
	c.Faults = append(c.Faults[:0:0], s.Faults...)
	c.FaultIdx = append([]int(nil), s.FaultIdx...)
	return c
}

// checkRecover is Check with driver-goroutine panics converted to
// errors, so a world that panics while being shrunk yields a failing
// trial instead of killing the fuzz process before any repro line is
// written. (Panics on simulation goroutines a world spawns still crash
// the process, as they do everywhere in the simulation.)
func checkRecover(spec Spec) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("invariant world-panic: %s: %v\n%s", spec.ID(), p, debug.Stack())
		}
	}()
	return Check(spec)
}

// Shrink minimizes a failing spec. It re-derives the caller's observed
// failure (so the final error matches the final world) and returns the
// smallest failing spec found within the budget together with its
// failure; trials counts the candidate worlds actually run. If the
// failure does not reproduce, failure is nil and the caller must not
// treat min as a reproduction. budget <= 0 means the default.
func Shrink(spec Spec, budget int) (min Spec, failure error, trials int) {
	if budget <= 0 {
		budget = defaultShrinkBudget
	}
	cur := spec.clone()
	curErr := checkRecover(cur)
	if curErr == nil {
		return cur, nil, 1
	}
	trials = 1
	for {
		improved := false
		for _, cand := range reductions(cur) {
			if trials >= budget {
				return cur, curErr, trials
			}
			trials++
			if err := checkRecover(cand); err != nil {
				cur, curErr = cand, err
				improved = true
				break
			}
		}
		if !improved {
			return cur, curErr, trials
		}
	}
}

// FailureReport renders a shrink result for humans: the minimal world,
// its repro line, and the invariant it violates.
func FailureReport(orig Spec, origErr error, min Spec, minErr error, trials int) string {
	return fmt.Sprintf(
		"FAIL %s\n  original failure: %v\n  shrunk after %d trials to %s\n  shrunk failure: %v\n  repro: %s\n",
		orig.ID(), origErr, trials, min.ID(), minErr, min.Repro())
}
