package simtest

import (
	"path/filepath"
	"strings"
	"testing"

	"ptperf/internal/censor"
)

// TestFuzzSmoke is the bounded in-tree torture run: a handful of
// randomized worlds through the full invariant suite. `ptperf fuzz`
// scales the same machinery to hundreds of worlds.
func TestFuzzSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-world test")
	}
	res := Fuzz(Config{N: 6, Seed: 2})
	if len(res.Failures) != 0 {
		for _, f := range res.Failures {
			t.Errorf("%s: %v", f.Spec.ID(), f.Err)
		}
	}
	if res.Worlds != 6 || res.Digest == "" {
		t.Fatalf("result incomplete: %+v", res)
	}
}

// TestFuzzJobsEquivalence holds the fuzzer to the contract it enforces:
// the run digest — a hash over every world's canonical report — must be
// identical at any parallelism, and across repeated runs.
func TestFuzzJobsEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-world test")
	}
	seq := Fuzz(Config{N: 4, Seed: 3, Jobs: 1})
	par := Fuzz(Config{N: 4, Seed: 3, Jobs: 4})
	if seq.Digest != par.Digest {
		t.Fatalf("jobs=1 digest %s != jobs=4 digest %s", seq.Digest, par.Digest)
	}
	if len(seq.Failures)+len(par.Failures) != 0 {
		t.Fatalf("fuzz failures: %+v / %+v", seq.Failures, par.Failures)
	}
}

// TestInjectedFaultCaughtAndShrunk proves the suite catches a
// miscounting censor: a counter mutation behind the test hook must trip
// the censor-accounting invariant and shrink to a world of at most two
// transports and two scenario rules.
func TestInjectedFaultCaughtAndShrunk(t *testing.T) {
	censor.SetStatsFault(func(s *censor.Stats) { s.ThrottledSegments += 1 << 40 })
	defer censor.SetStatsFault(nil)

	spec := Generate(11, 0)
	err := Check(spec)
	if err == nil {
		t.Fatal("injected censor counter fault not caught")
	}
	if !strings.Contains(err.Error(), "censor-accounting") {
		t.Fatalf("fault caught by the wrong invariant: %v", err)
	}

	min, minErr, trials := Shrink(spec, 0)
	if minErr == nil {
		t.Fatal("shrunken world no longer fails")
	}
	if len(min.Transports) > 2 {
		t.Errorf("shrunken world keeps %d transports, want <= 2", len(min.Transports))
	}
	if len(min.Scenario.Events) > 2 {
		t.Errorf("shrunken world keeps %d rules, want <= 2", len(min.Scenario.Events))
	}
	if trials < 2 {
		t.Errorf("shrink ran only %d trials", trials)
	}
	// The minimal world's repro line must reproduce the failure.
	replay, err := ParseRepro(min.Repro())
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(replay); err == nil {
		t.Fatal("repro line of the shrunken world does not reproduce the failure")
	}
}

// TestCorpusSeeds replays every committed regression seed: worlds whose
// invariant violations were fixed must stay fixed. Runs under -race in
// CI.
func TestCorpusSeeds(t *testing.T) {
	specs, err := LoadCorpusFile(filepath.Join("testdata", "corpus", "seeds.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) < 5 {
		t.Fatalf("corpus holds %d seeds, want >= 5", len(specs))
	}
	for _, spec := range specs {
		spec := spec
		t.Run(spec.ID(), func(t *testing.T) {
			if err := Check(spec); err != nil {
				t.Errorf("regression: %v", err)
			}
		})
	}
}
