package simtest

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"ptperf/internal/faults"
)

// TestGenerateDeterministic pins the generator contract: equal
// (root, index) pairs produce identical specs, different indices
// different worlds.
func TestGenerateDeterministic(t *testing.T) {
	a := Generate(7, 3)
	b := Generate(7, 3)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same (root, index) generated different specs:\n%+v\nvs\n%+v", a, b)
	}
	c := Generate(7, 4)
	if reflect.DeepEqual(a.Transports, c.Transports) && reflect.DeepEqual(a.Scenario, c.Scenario) &&
		a.Sites == c.Sites && a.Repeats == c.Repeats && a.Location == c.Location {
		t.Fatal("neighbouring indices generated identical worlds")
	}
}

// TestGenerateDiversity guards the generator against collapsing: across
// a modest index range it must exercise multiple transports, scenario
// rule kinds, locations and the wireless medium.
func TestGenerateDiversity(t *testing.T) {
	transports := map[string]bool{}
	locations := map[string]bool{}
	var wireless, phases, blocks, multi int
	for i := int64(0); i < 64; i++ {
		s := Generate(1, i)
		for _, tr := range s.Transports {
			transports[tr] = true
		}
		locations[s.Location.String()] = true
		if s.Medium != 0 {
			wireless++
		}
		if len(s.Scenario.Phases) > 0 {
			phases++
		}
		for _, ev := range s.Scenario.Events {
			if ev.Rule.Block {
				blocks++
			}
		}
		if len(s.Transports) > 1 {
			multi++
		}
	}
	if len(transports) < 10 {
		t.Errorf("64 worlds used only %d transports", len(transports))
	}
	if len(locations) < 3 {
		t.Errorf("64 worlds used only %d client locations", len(locations))
	}
	for name, n := range map[string]int{"wireless": wireless, "phases": phases, "blocks": blocks, "multi-transport": multi} {
		if n == 0 {
			t.Errorf("64 worlds produced no %s case", name)
		}
	}
}

// TestGenerateFaultDiversity guards the fault-plan draws: across a
// modest index range roughly half the worlds must carry faults, all
// three fault kinds must appear, some events must be permanent
// (Duration 0) and some recovering, and every target must name a
// volunteer relay inside the world's own fleet.
func TestGenerateFaultDiversity(t *testing.T) {
	kinds := map[faults.Kind]int{}
	var faulted, faultFree, permanent, recovering int
	for i := int64(0); i < 64; i++ {
		s := Generate(1, i)
		if len(s.Faults) == 0 {
			faultFree++
			continue
		}
		faulted++
		if len(s.FaultIdx) != len(s.Faults) {
			t.Fatalf("world %d: FaultIdx (%d) out of lockstep with Faults (%d)", i, len(s.FaultIdx), len(s.Faults))
		}
		valid := map[string]bool{}
		for g := 0; g < s.Guards; g++ {
			valid[fmt.Sprintf("guard-%d", g)] = true
		}
		for m := 0; m < s.Middles; m++ {
			valid[fmt.Sprintf("middle-%d", m)] = true
		}
		for e := 0; e < s.Exits; e++ {
			valid[fmt.Sprintf("exit-%d", e)] = true
		}
		for _, ev := range s.Faults {
			kinds[ev.Kind]++
			if !valid[ev.Target] {
				t.Errorf("world %d: fault targets %q outside the %d/%d/%d fleet", i, ev.Target, s.Guards, s.Middles, s.Exits)
			}
			if ev.At < 5*time.Second {
				t.Errorf("world %d: fault fires at %v, before the campaign warms up", i, ev.At)
			}
			if ev.Duration == 0 {
				permanent++
			} else {
				recovering++
			}
		}
	}
	if faulted < 10 || faultFree < 10 {
		t.Errorf("64 worlds split %d faulted / %d fault-free; want both ≥ 10", faulted, faultFree)
	}
	for _, k := range []faults.Kind{faults.KindCrash, faults.KindFlap, faults.KindChurn} {
		if kinds[k] == 0 {
			t.Errorf("64 worlds drew no %v fault", k)
		}
	}
	if permanent == 0 || recovering == 0 {
		t.Errorf("64 worlds drew %d permanent and %d recovering faults; want both", permanent, recovering)
	}
}

// TestReproRoundTrip checks the repro-line codec over generated and
// shrunken specs.
func TestReproRoundTrip(t *testing.T) {
	for i := int64(0); i < 16; i++ {
		s := Generate(5, i)
		got, err := ParseRepro(s.Repro())
		if err != nil {
			t.Fatalf("world %d: %v", i, err)
		}
		if !reflect.DeepEqual(s, got) {
			t.Fatalf("world %d did not round-trip:\n%+v\nvs\n%+v\nline: %s", i, s, got, s.Repro())
		}
	}

	// A hand-shrunk spec: transport subset, dropped events, halved
	// campaign.
	s := Generate(5, 1)
	for len(s.Scenario.Events) < 2 {
		s = Generate(5, s.Index+100)
	}
	shrunk := s.clone()
	shrunk.Transports = shrunk.Transports[:1]
	shrunk.Scenario.Events = shrunk.Scenario.Events[1:]
	shrunk.EventIdx = shrunk.EventIdx[1:]
	shrunk.Scenario.Phases = nil
	shrunk.Sites, shrunk.Repeats = 1, 1
	shrunk.normalize()
	got, err := ParseRepro(shrunk.Repro())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(shrunk, got) {
		t.Fatalf("shrunken spec did not round-trip:\n%+v\nvs\n%+v\nline: %s", shrunk, got, shrunk.Repro())
	}

	// A fault-shrunk spec: drop the first of several fault events and
	// the surviving subset must still round-trip.
	var f Spec
	for i := int64(0); ; i++ {
		f = Generate(5, i)
		if len(f.Faults) >= 2 {
			break
		}
		if i > 500 {
			t.Fatal("no world with ≥2 fault events in 500 draws")
		}
	}
	fs := f.clone()
	fs.Faults = fs.Faults[1:]
	fs.FaultIdx = fs.FaultIdx[1:]
	fs.normalize()
	got, err = ParseRepro(fs.Repro())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fs, got) {
		t.Fatalf("fault-shrunk spec did not round-trip:\n%+v\nvs\n%+v\nline: %s", fs, got, fs.Repro())
	}
}

// TestParseReproRejects covers malformed and stale lines.
func TestParseReproRejects(t *testing.T) {
	base := Generate(5, 0)
	for _, line := range []string{
		"",
		"bogus root=1 index=0",
		"simtest-v1 index=0",
		"simtest-v1 root=1",
		"simtest-v1 root=x index=0",
		base.Repro() + " sites=0",
		"simtest-v1 root=5 index=0 events=99",
		"simtest-v1 root=5 index=0 faults=99",
		"simtest-v1 root=5 index=0 transports=",
		"simtest-v1 root=5 index=0 transports=meeek",
	} {
		if _, err := ParseRepro(line); err == nil {
			t.Errorf("accepted %q", line)
		}
	}
}

// TestReadCorpus checks comment/blank handling and line attribution.
func TestReadCorpus(t *testing.T) {
	in := "# comment\n\n" + Generate(5, 0).Repro() + "\n" + Generate(5, 1).Repro() + "\n"
	specs, err := ReadCorpus(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 {
		t.Fatalf("parsed %d specs, want 2", len(specs))
	}
	if _, err := ReadCorpus(strings.NewReader("simtest-v1 bad\n")); err == nil || !strings.Contains(err.Error(), "corpus line 1") {
		t.Errorf("bad corpus error = %v, want line attribution", err)
	}
}

// TestReductionsShrinkEveryAxis checks the candidate enumeration trims
// each dimension and never aliases the parent spec.
func TestReductionsShrinkEveryAxis(t *testing.T) {
	var s Spec
	for i := int64(0); ; i++ {
		s = Generate(1, i)
		if len(s.Transports) >= 2 && len(s.Scenario.Events) >= 2 && len(s.Faults) >= 1 && s.Sites == 2 && s.Repeats == 2 {
			break
		}
		if i > 500 {
			t.Fatal("no suitably large world in 500 draws")
		}
	}
	cands := reductions(s)
	var transports, events, flts, sites, repeats bool
	for _, c := range cands {
		if len(c.Transports) < len(s.Transports) {
			transports = true
		}
		if len(c.Scenario.Events) < len(s.Scenario.Events) {
			events = true
			if len(c.EventIdx) != len(c.Scenario.Events) {
				t.Fatalf("EventIdx (%d) out of lockstep with Events (%d)", len(c.EventIdx), len(c.Scenario.Events))
			}
		}
		if len(c.Faults) < len(s.Faults) {
			flts = true
			if len(c.FaultIdx) != len(c.Faults) {
				t.Fatalf("FaultIdx (%d) out of lockstep with Faults (%d)", len(c.FaultIdx), len(c.Faults))
			}
		}
		if c.Sites < s.Sites {
			sites = true
		}
		if c.Repeats < s.Repeats {
			repeats = true
		}
	}
	if !transports || !events || !flts || !sites || !repeats {
		t.Fatalf("reductions missed an axis: transports=%v events=%v faults=%v sites=%v repeats=%v", transports, events, flts, sites, repeats)
	}
	// Mutating a candidate must not touch the parent.
	before := len(s.Scenario.Events)
	cands[0].Scenario.Events = nil
	if len(s.Scenario.Events) != before {
		t.Fatal("reduction aliases the parent spec's events")
	}
}
