package simtest

import (
	"reflect"
	"strings"
	"testing"
)

// TestGenerateDeterministic pins the generator contract: equal
// (root, index) pairs produce identical specs, different indices
// different worlds.
func TestGenerateDeterministic(t *testing.T) {
	a := Generate(7, 3)
	b := Generate(7, 3)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same (root, index) generated different specs:\n%+v\nvs\n%+v", a, b)
	}
	c := Generate(7, 4)
	if reflect.DeepEqual(a.Transports, c.Transports) && reflect.DeepEqual(a.Scenario, c.Scenario) &&
		a.Sites == c.Sites && a.Repeats == c.Repeats && a.Location == c.Location {
		t.Fatal("neighbouring indices generated identical worlds")
	}
}

// TestGenerateDiversity guards the generator against collapsing: across
// a modest index range it must exercise multiple transports, scenario
// rule kinds, locations and the wireless medium.
func TestGenerateDiversity(t *testing.T) {
	transports := map[string]bool{}
	locations := map[string]bool{}
	var wireless, phases, blocks, multi int
	for i := int64(0); i < 64; i++ {
		s := Generate(1, i)
		for _, tr := range s.Transports {
			transports[tr] = true
		}
		locations[s.Location.String()] = true
		if s.Medium != 0 {
			wireless++
		}
		if len(s.Scenario.Phases) > 0 {
			phases++
		}
		for _, ev := range s.Scenario.Events {
			if ev.Rule.Block {
				blocks++
			}
		}
		if len(s.Transports) > 1 {
			multi++
		}
	}
	if len(transports) < 10 {
		t.Errorf("64 worlds used only %d transports", len(transports))
	}
	if len(locations) < 3 {
		t.Errorf("64 worlds used only %d client locations", len(locations))
	}
	for name, n := range map[string]int{"wireless": wireless, "phases": phases, "blocks": blocks, "multi-transport": multi} {
		if n == 0 {
			t.Errorf("64 worlds produced no %s case", name)
		}
	}
}

// TestReproRoundTrip checks the repro-line codec over generated and
// shrunken specs.
func TestReproRoundTrip(t *testing.T) {
	for i := int64(0); i < 16; i++ {
		s := Generate(5, i)
		got, err := ParseRepro(s.Repro())
		if err != nil {
			t.Fatalf("world %d: %v", i, err)
		}
		if !reflect.DeepEqual(s, got) {
			t.Fatalf("world %d did not round-trip:\n%+v\nvs\n%+v\nline: %s", i, s, got, s.Repro())
		}
	}

	// A hand-shrunk spec: transport subset, dropped events, halved
	// campaign.
	s := Generate(5, 1)
	for len(s.Scenario.Events) < 2 {
		s = Generate(5, s.Index+100)
	}
	shrunk := s.clone()
	shrunk.Transports = shrunk.Transports[:1]
	shrunk.Scenario.Events = shrunk.Scenario.Events[1:]
	shrunk.EventIdx = shrunk.EventIdx[1:]
	shrunk.Scenario.Phases = nil
	shrunk.Sites, shrunk.Repeats = 1, 1
	shrunk.normalize()
	got, err := ParseRepro(shrunk.Repro())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(shrunk, got) {
		t.Fatalf("shrunken spec did not round-trip:\n%+v\nvs\n%+v\nline: %s", shrunk, got, shrunk.Repro())
	}
}

// TestParseReproRejects covers malformed and stale lines.
func TestParseReproRejects(t *testing.T) {
	base := Generate(5, 0)
	for _, line := range []string{
		"",
		"bogus root=1 index=0",
		"simtest-v1 index=0",
		"simtest-v1 root=1",
		"simtest-v1 root=x index=0",
		base.Repro() + " sites=0",
		"simtest-v1 root=5 index=0 events=99",
		"simtest-v1 root=5 index=0 transports=",
		"simtest-v1 root=5 index=0 transports=meeek",
	} {
		if _, err := ParseRepro(line); err == nil {
			t.Errorf("accepted %q", line)
		}
	}
}

// TestReadCorpus checks comment/blank handling and line attribution.
func TestReadCorpus(t *testing.T) {
	in := "# comment\n\n" + Generate(5, 0).Repro() + "\n" + Generate(5, 1).Repro() + "\n"
	specs, err := ReadCorpus(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 {
		t.Fatalf("parsed %d specs, want 2", len(specs))
	}
	if _, err := ReadCorpus(strings.NewReader("simtest-v1 bad\n")); err == nil || !strings.Contains(err.Error(), "corpus line 1") {
		t.Errorf("bad corpus error = %v, want line attribution", err)
	}
}

// TestReductionsShrinkEveryAxis checks the candidate enumeration trims
// each dimension and never aliases the parent spec.
func TestReductionsShrinkEveryAxis(t *testing.T) {
	var s Spec
	for i := int64(0); ; i++ {
		s = Generate(1, i)
		if len(s.Transports) >= 2 && len(s.Scenario.Events) >= 2 && s.Sites == 2 && s.Repeats == 2 {
			break
		}
		if i > 500 {
			t.Fatal("no suitably large world in 500 draws")
		}
	}
	cands := reductions(s)
	var transports, events, sites, repeats bool
	for _, c := range cands {
		if len(c.Transports) < len(s.Transports) {
			transports = true
		}
		if len(c.Scenario.Events) < len(s.Scenario.Events) {
			events = true
			if len(c.EventIdx) != len(c.Scenario.Events) {
				t.Fatalf("EventIdx (%d) out of lockstep with Events (%d)", len(c.EventIdx), len(c.Scenario.Events))
			}
		}
		if c.Sites < s.Sites {
			sites = true
		}
		if c.Repeats < s.Repeats {
			repeats = true
		}
	}
	if !transports || !events || !sites || !repeats {
		t.Fatalf("reductions missed an axis: transports=%v events=%v sites=%v repeats=%v", transports, events, sites, repeats)
	}
	// Mutating a candidate must not touch the parent.
	before := len(s.Scenario.Events)
	cands[0].Scenario.Events = nil
	if len(s.Scenario.Events) != before {
		t.Fatal("reduction aliases the parent spec's events")
	}
}
