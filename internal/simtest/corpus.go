package simtest

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"ptperf/internal/pt"
)

// The repro-line codec. A failing (possibly shrunken) world serializes
// to one line:
//
//	simtest-v1 root=1 index=42 transports=obfs4,tor events=0,2 phases=1 faults=0,1 sites=1 repeats=1
//
// Decoding regenerates the world from (root, index) — the generator is
// deterministic — and then applies the shrink overrides: the exact
// transport subset, the surviving generated-event indices, whether the
// phase timeline is kept, the surviving fault-event indices, and the
// campaign size. Lines from failed fuzz
// runs are committed to testdata/corpus/seeds.txt and replayed forever
// by TestCorpusSeeds.
//
// The format is tied to the generator: if Generate's draws change, a
// line's indices select different events and the corpus must be
// regenerated (the version tag exists so that is an explicit event, not
// silent drift).

// reproTag versions the repro-line format and the generator draws it
// indexes into.
const reproTag = "simtest-v1"

// Repro serializes the spec as a one-line reproduction seed.
func (s Spec) Repro() string {
	events := make([]string, len(s.EventIdx))
	for i, e := range s.EventIdx {
		events[i] = strconv.Itoa(e)
	}
	flts := make([]string, len(s.FaultIdx))
	for i, f := range s.FaultIdx {
		flts[i] = strconv.Itoa(f)
	}
	phases := 0
	if len(s.Scenario.Phases) > 0 {
		phases = 1
	}
	return fmt.Sprintf("%s root=%d index=%d transports=%s events=%s phases=%d faults=%s sites=%d repeats=%d",
		reproTag, s.Root, s.Index, strings.Join(s.Transports, ","),
		strings.Join(events, ","), phases, strings.Join(flts, ","), s.Sites, s.Repeats)
}

// ParseRepro decodes a repro line back into a runnable spec.
func ParseRepro(line string) (Spec, error) {
	fields := strings.Fields(line)
	if len(fields) == 0 || fields[0] != reproTag {
		return Spec{}, fmt.Errorf("simtest: repro line must start with %q: %q", reproTag, line)
	}
	kv := map[string]string{}
	for _, f := range fields[1:] {
		k, v, ok := strings.Cut(f, "=")
		if !ok {
			return Spec{}, fmt.Errorf("simtest: bad repro field %q", f)
		}
		kv[k] = v
	}
	num := func(key string) (int64, error) {
		v, ok := kv[key]
		if !ok {
			return 0, fmt.Errorf("simtest: repro line missing %s=", key)
		}
		return strconv.ParseInt(v, 10, 64)
	}
	root, err := num("root")
	if err != nil {
		return Spec{}, err
	}
	index, err := num("index")
	if err != nil {
		return Spec{}, err
	}

	s := Generate(root, index)

	if v, ok := kv["transports"]; ok {
		s.Transports = nil
		if v != "" {
			s.Transports = strings.Split(v, ",")
		}
		if len(s.Transports) == 0 {
			return Spec{}, fmt.Errorf("simtest: repro line has no transports")
		}
		// A typo'd or renamed transport would otherwise replay as an
		// all-timeout world that always passes — a corpus line that
		// exercises nothing. Fail loudly instead, like the events
		// index check below.
		valid := map[string]bool{"tor": true}
		for _, name := range pt.Names() {
			valid[name] = true
		}
		for _, tr := range s.Transports {
			if !valid[tr] {
				return Spec{}, fmt.Errorf("simtest: repro transport %q not in the catalog (stale corpus line?)", tr)
			}
		}
	}
	if v, ok := kv["events"]; ok {
		gen := s.Scenario.Events
		s.Scenario.Events = nil
		s.EventIdx = nil
		if v != "" {
			for _, f := range strings.Split(v, ",") {
				i, err := strconv.Atoi(f)
				if err != nil || i < 0 || i >= len(gen) {
					return Spec{}, fmt.Errorf("simtest: repro event index %q outside the %d generated events (stale corpus line?)", f, len(gen))
				}
				s.Scenario.Events = append(s.Scenario.Events, gen[i])
				s.EventIdx = append(s.EventIdx, i)
			}
		}
	}
	if v, ok := kv["phases"]; ok && v == "0" {
		s.Scenario.Phases = nil
	}
	// faults= selects surviving generated fault events by index. A line
	// WITHOUT the key predates fault injection and replays fault-free —
	// exactly the world its failure was fixed on (Repro always emits the
	// key, so only legacy corpus lines take this path).
	if v, ok := kv["faults"]; ok {
		gen := s.Faults
		s.Faults = nil
		s.FaultIdx = nil
		if v != "" {
			for _, f := range strings.Split(v, ",") {
				i, err := strconv.Atoi(f)
				if err != nil || i < 0 || i >= len(gen) {
					return Spec{}, fmt.Errorf("simtest: repro fault index %q outside the %d generated fault events (stale corpus line?)", f, len(gen))
				}
				s.Faults = append(s.Faults, gen[i])
				s.FaultIdx = append(s.FaultIdx, i)
			}
		}
	} else {
		s.Faults = nil
		s.FaultIdx = nil
	}
	if _, ok := kv["sites"]; ok {
		n, err := num("sites")
		if err != nil || n < 1 {
			return Spec{}, fmt.Errorf("simtest: bad sites in repro line")
		}
		s.Sites = int(n)
	}
	if _, ok := kv["repeats"]; ok {
		n, err := num("repeats")
		if err != nil || n < 1 {
			return Spec{}, fmt.Errorf("simtest: bad repeats in repro line")
		}
		s.Repeats = int(n)
	}
	s.normalize()
	return s, nil
}

// ReadCorpus parses a corpus stream: one repro line per non-blank,
// non-comment line.
func ReadCorpus(r io.Reader) ([]Spec, error) {
	var out []Spec
	sc := bufio.NewScanner(r)
	ln := 0
	for sc.Scan() {
		ln++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		spec, err := ParseRepro(line)
		if err != nil {
			return nil, fmt.Errorf("corpus line %d: %w", ln, err)
		}
		out = append(out, spec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// LoadCorpusFile reads a corpus file from disk.
func LoadCorpusFile(path string) ([]Spec, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCorpus(f)
}
