// Package simtest is the simulation-torture subsystem: a property-based
// fuzzer that generates randomized measurement worlds — a random
// transport subset, a random composed censor scenario, random topology
// knobs — and runs each one under a suite of cross-cutting invariant
// checkers (same-seed determinism, byte conservation across netem
// pipes, censor counter accounting, virtual-clock monotonicity, leak
// steady-state, report-shape sanity). It is the FoundationDB-style
// answer to a question every PR otherwise hand-waves: the determinism
// and accounting contracts hold not just on the ~30 fixed worlds the
// unit tests pin, but across thousands of points of the
// {transport} × {scenario} × {topology} space.
//
// On a failure the fuzzer shrinks the world — bisect the transport
// subset, drop scenario rules, halve sites and repeats — to a minimal
// reproduction, and emits a one-line repro seed. Repro lines of past
// failures are committed to testdata/corpus and replayed by
// TestCorpusSeeds, so every fixed bug stays fixed.
//
// Entry points: Generate derives a world spec from a seeded splitmix64
// stream, Check runs one spec under the full invariant suite, Fuzz
// drives N specs across the shard executor, and `ptperf fuzz` is the
// CLI face.
package simtest

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"ptperf/internal/censor"
	"ptperf/internal/faults"
	"ptperf/internal/fetch"
	"ptperf/internal/geo"
	"ptperf/internal/netem"
	"ptperf/internal/obs"
	"ptperf/internal/pt"
	"ptperf/internal/sim"
	"ptperf/internal/stats"
	"ptperf/internal/testbed"
	"ptperf/internal/tor"
)

// pageTimeout mirrors the harness's 120 s page timeout; a failed access
// is recorded as this duration, like the paper's campaigns did.
const pageTimeout = 120 * time.Second

// drainTime is the virtual settle time after parking a campaign:
// in-flight segments arrive, loss penalties resolve, per-conn
// goroutines observe their closes and exit, and the polling tunnels'
// idle-session reapers (120 s staleness, checked on a 120 s cadence, so
// worst-case ~240 s after the last poll) cut abandoned sessions.
// Virtual seconds are nearly free: the clock jumps straight across
// quiet stretches.
const drainTime = 300 * time.Second

// streamWorld is the seed-stream id simtest draws worlds from; it is
// far from the harness's experiment streams so a fuzz run never
// accidentally rebuilds a unit-test world.
const streamWorld = 9000

// Spec is one generated world: everything a fuzz case needs to rebuild
// it exactly. A Spec is a pure function of (Root, Index) until the
// shrinker trims Transports, Scenario events, Faults, Sites or Repeats
// — those overrides are what the repro line records.
type Spec struct {
	// Root is the fuzz run's root seed; Index the world's position in
	// the run. Together they derive every random draw below.
	Root, Index int64
	// Transports is the measured method subset ("tor" plus PT names).
	Transports []string
	// Scenario is the composed censor scenario the world runs under.
	Scenario censor.Scenario
	// EventIdx maps Scenario.Events back to the generated scenario's
	// event indices (repro-line provenance across shrinks).
	EventIdx []int
	// Faults is the world's fault-injection plan (relay crashes, link
	// flaps, directory churn against the volunteer fleet); empty leaves
	// the infrastructure immortal. FaultIdx maps the events back to the
	// generated plan's indices (repro-line provenance across shrinks).
	Faults   []faults.Event
	FaultIdx []int
	// Sites is the number of sites measured per catalog; Repeats the
	// accesses per site.
	Sites, Repeats int
	// ByteScale is the world's byte-quantity scale.
	ByteScale float64
	// Location is the client city; Medium its access medium.
	Location geo.Location
	// Medium is the client's access medium (wired or wireless).
	Medium geo.Medium
	// Guards, Middles, Exits size the volunteer relay fleet.
	Guards, Middles, Exits int
}

// Seed derives the world seed for this spec's testbed; shrinking leaves
// it untouched so a shrunken world keeps the original's topology draws.
func (s Spec) Seed() int64 {
	return sim.DeriveSeed(s.Root, streamWorld, s.Index, 2)
}

// ID is the spec's short human-readable identity in logs.
func (s Spec) ID() string {
	return fmt.Sprintf("world %d/%#x (%d transports, %d rules, %d faults, %d sites × %d)",
		s.Index, uint64(s.Root), len(s.Transports), len(s.Scenario.Events), len(s.Faults), s.Sites, s.Repeats)
}

// normalize maps empty slices to nil so specs compare canonically
// (reflect.DeepEqual in tests) however they were produced — generated,
// shrunk, or decoded from a repro line.
func (s *Spec) normalize() {
	if len(s.Transports) == 0 {
		s.Transports = nil
	}
	if len(s.Scenario.Events) == 0 {
		s.Scenario.Events = nil
	}
	if len(s.Scenario.Phases) == 0 {
		s.Scenario.Phases = nil
	}
	if len(s.EventIdx) == 0 {
		s.EventIdx = nil
	}
	if len(s.Faults) == 0 {
		s.Faults = nil
	}
	if len(s.FaultIdx) == 0 {
		s.FaultIdx = nil
	}
}

// Generate derives world Index of a fuzz run rooted at seed root. Equal
// (root, index) pairs always generate the identical spec; neighbouring
// indices draw from independent splitmix64 streams.
func Generate(root, index int64) Spec {
	rng := rand.New(rand.NewSource(sim.DeriveSeed(root, streamWorld, index, 0)))
	s := Spec{Root: root, Index: index}

	// Random transport subset: 1–3 methods from tor plus the catalog.
	all := append([]string{"tor"}, pt.Names()...)
	n := 1 + rng.Intn(3)
	for _, k := range rng.Perm(len(all))[:n] {
		s.Transports = append(s.Transports, all[k])
	}
	sort.Strings(s.Transports)

	// Random composed scenario within paper-scale bounds.
	s.Scenario = censor.RandomScenario(sim.DeriveSeed(root, streamWorld, index, 1), censor.PaperBounds())
	s.EventIdx = make([]int, len(s.Scenario.Events))
	for i := range s.EventIdx {
		s.EventIdx[i] = i
	}

	// Random topology knobs.
	s.Sites = 1 + rng.Intn(2)
	s.Repeats = 1 + rng.Intn(2)
	s.ByteScale = 0.04 + rng.Float64()*0.04
	s.Location = geo.Clients[rng.Intn(len(geo.Clients))]
	if rng.Intn(4) == 0 {
		s.Medium = geo.Wireless
	}
	s.Guards = 2 + rng.Intn(3)
	s.Middles = 2 + rng.Intn(3)
	s.Exits = 2 + rng.Intn(3)

	// Random fault plan against the volunteer fleet, from its own seed
	// stream so adding fault injection never perturbed the draws above
	// (old corpus lines still rebuild their exact worlds). Roughly half
	// the worlds stay fault-free — the substrate must hold with and
	// without infrastructure failure.
	frng := rand.New(rand.NewSource(sim.DeriveSeed(root, streamWorld, index, 3)))
	if frng.Intn(2) == 0 {
		n := 1 + frng.Intn(4)
		for i := 0; i < n; i++ {
			ev := faults.Event{
				Kind: faults.Kind(frng.Intn(3)),
				At:   5*time.Second + time.Duration(frng.Int63n(int64(395*time.Second))),
			}
			// Targets are volunteer relays only: they run on dedicated
			// same-named hosts, so a relay crash is a host crash and the
			// fault-survivor invariant stays exact.
			switch frng.Intn(3) {
			case 0:
				ev.Target = fmt.Sprintf("guard-%d", frng.Intn(s.Guards))
			case 1:
				ev.Target = fmt.Sprintf("middle-%d", frng.Intn(s.Middles))
			case 2:
				ev.Target = fmt.Sprintf("exit-%d", frng.Intn(s.Exits))
			}
			// A quarter of the failures are permanent (no restart, no
			// link-up, no rejoin); the rest recover after 5–65 s.
			if frng.Intn(4) > 0 {
				ev.Duration = 5*time.Second + time.Duration(frng.Int63n(int64(60*time.Second)))
			}
			s.Faults = append(s.Faults, ev)
			s.FaultIdx = append(s.FaultIdx, i)
		}
	}
	s.normalize()
	return s
}

// methodResult is one transport's raw outcomes in one world.
type methodResult struct {
	Name   string
	Times  []float64 // one entry per site access, timeouts included
	OK     int
	Failed int
}

// Outcome is everything one world run exposes to the invariant
// checkers: the canonical report (the determinism comparand), the raw
// per-method data, the censor and netem accounting, and the leak
// samples taken at the two quiescent points.
type Outcome struct {
	Spec    Spec
	Report  string
	Methods map[string]*methodResult
	Censor  censor.Stats
	Acct    netem.AcctSnapshot
	// Recovery holds each method's client-side recovery counters at
	// campaign end (always populated, zero when nothing failed).
	Recovery map[string]tor.RecoveryStats
	// Faults counts the fault injector's transitions; DownHosts lists
	// hosts still failed at the final quiescent point; OpenConnAddrs the
	// conn endpoints still open there (the fault-survivor comparand).
	Faults        faults.Stats
	DownHosts     []string
	OpenConnAddrs []string
	// Timeline is the world's metric timeline, sampled every virtual
	// second from build to the final quiescent point. Its totals must
	// reconstruct Acct (the timeline-conservation invariant).
	Timeline *obs.Timeline
	// Elapsed is the world's final virtual time.
	Elapsed time.Duration
	// Registered and OpenConns sample live goroutines / conn endpoints
	// after the main campaign drain [0] and after the steady-state
	// second pass drain [1]: growth between them is a per-campaign leak.
	Registered [2]int
	OpenConns  [2]int64
	// ClockErr records a virtual-clock monotonicity violation observed
	// while measuring.
	ClockErr error
}

// Run builds the spec's world and executes its measurement campaign on
// the calling goroutine (which becomes the world's scheduler driver,
// per the sim task contract). The returned error covers world
// construction only; invariant verdicts live in the Outcome.
func Run(spec Spec) (*Outcome, error) {
	sc := spec.Scenario
	var fp *faults.Plan
	if len(spec.Faults) > 0 {
		fp = &faults.Plan{Name: "fuzz", Events: spec.Faults}
	}
	w, err := testbed.New(testbed.Options{
		Seed:           spec.Seed(),
		ByteScale:      spec.ByteScale,
		ClientLocation: spec.Location,
		Medium:         spec.Medium,
		Guards:         spec.Guards,
		Middles:        spec.Middles,
		Exits:          spec.Exits,
		TrancoN:        spec.Sites,
		CBLN:           spec.Sites,
		ScenarioSpec:   &sc,
		FaultSpec:      fp,
	})
	if err != nil {
		return nil, fmt.Errorf("simtest: build %s: %w", spec.ID(), err)
	}
	out := &Outcome{Spec: spec}
	clock := w.Net.Clock()

	// The metric recorder samples every fuzzed world: its sampler is one
	// more simulation goroutine, so simtest continuously proves that
	// observability itself preserves determinism (the recorder runs in
	// both runs of the determinism invariant and in both leak samples,
	// so it cancels out of those comparisons).
	rec := obs.AttachWorld(w, obs.DefaultInterval)

	out.Methods = measure(w, spec, spec.Repeats, &out.ClockErr)
	park(w, spec)
	clock.Sleep(drainTime)
	out.Registered[0] = clock.Registered()
	out.OpenConns[0] = w.Net.Acct().Snapshot().OpenConns()

	// Steady-state second pass: one access per method. A campaign that
	// leaks goroutines or flows per access grows between the two
	// samples; the world's standing infrastructure (relay accept loops,
	// parked tunnels, proxy pools) is present in both and cancels out.
	measure(w, spec, 1, &out.ClockErr)
	park(w, spec)
	clock.Sleep(drainTime)
	out.Registered[1] = clock.Registered()
	out.Acct = w.Net.Acct().Snapshot()
	out.OpenConns[1] = out.Acct.OpenConns()
	// Close at the final quiescent point: no virtual time passes between
	// the Acct snapshot above and the recorder's final sample, so the
	// timeline's totals must reconstruct out.Acct exactly.
	out.Timeline = rec.Close()

	if w.Censor != nil {
		out.Censor = w.Censor.Stats()
	}
	// The fault-survivor comparands, sampled at the same quiescent point
	// as the final accounting snapshot above.
	out.OpenConnAddrs = w.Net.Acct().OpenConnAddrs()
	if w.Faults != nil {
		out.Faults = w.Faults.Stats()
		out.DownHosts = w.Faults.DownHosts()
	}
	out.Recovery = make(map[string]tor.RecoveryStats, len(spec.Transports))
	for _, name := range spec.Transports {
		if d, err := w.Deployment(name); err == nil {
			out.Recovery[name] = d.Recovery()
		} else {
			out.Recovery[name] = tor.RecoveryStats{}
		}
	}
	out.Elapsed = clock.Now()
	out.Report = render(out)
	return out, nil
}

// measure runs one access pass: every transport fetches every site
// `repeats` times, transports in parallel as simulation goroutines on
// the world's scheduler (deterministic interleaving at virtual-time
// waits). Results are keyed by method; a monotonicity violation is
// written to clockErr.
func measure(w *testbed.World, spec Spec, repeats int, clockErr *error) map[string]*methodResult {
	clock := w.Net.Clock()
	type site struct{ path string }
	var sites []site
	for i := 0; i < spec.Sites && i < len(w.Tranco.Sites); i++ {
		sites = append(sites, site{w.Tranco.Sites[i].Path})
	}
	for i := 0; i < spec.Sites && i < len(w.CBL.Sites); i++ {
		sites = append(sites, site{w.CBL.Sites[i].Path})
	}

	// Exactly one simulation goroutine runs at a time, so a plain mutex
	// never blocks here; it only orders the map writes (same pattern as
	// the harness's forEachMethodN).
	out := make(map[string]*methodResult, len(spec.Transports))
	var mu sync.Mutex
	wg := netem.NewWaitGroup(clock)
	for _, name := range spec.Transports {
		name := name
		wg.Add(1)
		clock.Go(func() {
			defer wg.Done()
			res := &methodResult{Name: name}
			last := clock.Now()
			record := func(sec float64, ok bool) {
				res.Times = append(res.Times, sec)
				if ok {
					res.OK++
				} else {
					res.Failed++
				}
				if now := clock.Now(); now < last {
					mu.Lock()
					if *clockErr == nil {
						*clockErr = fmt.Errorf("virtual clock moved backwards: %v after %v", now, last)
					}
					mu.Unlock()
				} else {
					last = now
				}
			}
			d, err := w.Deployment(name)
			if err != nil {
				// A deployment that cannot build records every access
				// as a timeout — the campaign shape stays intact.
				for i := 0; i < len(sites)*repeats; i++ {
					record(pageTimeout.Seconds(), false)
				}
				mu.Lock()
				out[name] = res
				mu.Unlock()
				return
			}
			// A failed preheat is not fatal: under blocking scenarios
			// the accesses themselves record the failure.
			_ = d.Preheat()
			c := &fetch.Client{Net: w.Net, Dial: d.Dial, Timeout: pageTimeout}
			for _, st := range sites {
				for rep := 0; rep < repeats; rep++ {
					got := c.Get(w.Origin.Addr(), st.path, false)
					if got.Err != nil || !got.Complete() {
						record(pageTimeout.Seconds(), false)
						continue
					}
					record(got.Total.Seconds(), true)
				}
			}
			mu.Lock()
			out[name] = res
			mu.Unlock()
		})
	}
	wg.Wait()
	return out
}

// park discards every deployment's circuit state so polling tunnels
// stop generating events and per-circuit goroutines can exit.
func park(w *testbed.World, spec Spec) {
	for _, name := range spec.Transports {
		if d, err := w.Deployment(name); err == nil {
			d.FreshCircuit()
		}
	}
}

// render produces the canonical report: a deterministic, byte-stable
// text rendering of everything the world measured. Two runs of the same
// spec must render identically — this string is the determinism
// invariant's comparand.
func render(o *Outcome) string {
	var b strings.Builder
	fmt.Fprintf(&b, "simtest %s scenario=%s elapsed=%v\n", o.Spec.ID(), o.Spec.Scenario.Name, o.Elapsed)
	for _, name := range o.orderedMethods() {
		m := o.Methods[name]
		box := stats.Summarize(m.Times)
		fmt.Fprintf(&b, "  %-12s ok=%d failed=%d min=%.4f med=%.4f max=%.4f", name, m.OK, m.Failed, box.Min, box.Median, box.Max)
		for _, t := range m.Times {
			fmt.Fprintf(&b, " %.6f", t)
		}
		b.WriteByte('\n')
	}
	st := o.Censor
	fmt.Fprintf(&b, "  censor blocked=%d cut=%d resets=%d loss=%d throttled=%d\n",
		st.BlockedDials, st.FlowsCut, st.Resets, st.LossEvents, st.ThrottledSegments)
	a := o.Acct
	fmt.Fprintf(&b, "  acct dials=%d refused=%d conns=%d/%d segs=%d filtered=%d bytes=%d/%d/%d/%d cells=%d/%d/%d\n",
		a.Dials, a.DialsRefused, a.ConnsOpened, a.ConnsClosed, a.SegmentsSent, a.SegmentsFiltered,
		a.BytesSent, a.BytesDelivered, a.BytesDropped, a.BytesBuffered,
		a.CellsQueued, a.CellsFlushed, a.CellsDropped)
	// Recovery and fault lines are emitted for every world — fault-free
	// ones included — so the report shape is uniform and the counters are
	// part of the determinism comparand.
	for _, name := range o.orderedMethods() {
		r := o.Recovery[name]
		fmt.Fprintf(&b, "  recovery %-12s rebuilds=%d timeouts=%d streamfails=%d reattach=%d abandoned=%d probation=%d\n",
			name, r.Rebuilds, r.BuildTimeouts, r.StreamFailures, r.ReAttaches, r.Abandoned, r.GuardProbations)
	}
	fs := o.Faults
	fmt.Fprintf(&b, "  faults crashes=%d restarts=%d flapsdown=%d flapsup=%d withdrawn=%d rejoined=%d skipped=%d down=%s\n",
		fs.Crashes, fs.Restarts, fs.FlapsDown, fs.FlapsUp, fs.Withdrawn, fs.Rejoined, fs.Skipped,
		strings.Join(o.DownHosts, ","))
	// The timeline line folds the metric layer into the determinism
	// comparand: sample count, clamp regressions and the Prometheus
	// rendering's digest must all be a pure function of the spec.
	if tl := o.Timeline; tl != nil {
		fmt.Fprintf(&b, "  timeline samples=%d regressions=%d digest=%s\n",
			len(tl.Samples), tl.Regressions, tl.Digest())
	}
	return b.String()
}

// orderedMethods returns the spec's transports sorted (map-iteration
// independence for the canonical report).
func (o *Outcome) orderedMethods() []string {
	out := append([]string(nil), o.Spec.Transports...)
	sort.Strings(out)
	return out
}
