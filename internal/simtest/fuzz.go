package simtest

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"

	"ptperf/internal/sim"
)

// Config sizes a fuzz run.
type Config struct {
	// N is the number of worlds to generate and torture.
	N int
	// Seed is the run's root seed; world i is Generate(Seed, i).
	Seed int64
	// Jobs bounds how many worlds run concurrently on the shard
	// executor (0 = all cores). The result is byte-identical for any
	// value — the fuzzer itself is held to the determinism contract it
	// checks.
	Jobs int
	// Out receives progress lines and failure reports (nil = silent).
	Out io.Writer
	// ShrinkBudget bounds candidate worlds per failure shrink
	// (0 = default).
	ShrinkBudget int
}

// Failure is one world that violated an invariant, with its shrunken
// minimal reproduction.
type Failure struct {
	// Spec is the originally generated failing world; Err its failure.
	Spec Spec
	Err  error
	// Min is the smallest failing world the shrinker found; MinErr its
	// failure; Trials the worlds the shrink ran.
	Min    Spec
	MinErr error
	Trials int
}

// Result summarizes a fuzz run.
type Result struct {
	// Worlds is the number of worlds checked.
	Worlds int
	// Failures holds every invariant violation, shrunken.
	Failures []Failure
	// Digest fingerprints the run: a hash over every world's canonical
	// report in index order. Two runs with the same (Seed, N) must
	// produce equal digests at any Jobs value.
	Digest string
}

// Fuzz generates cfg.N worlds from cfg.Seed and runs each under the
// invariant suite, up to cfg.Jobs concurrently. Failures are shrunk
// sequentially after all worlds join (shrinking runs worlds of its
// own). The returned result is a pure function of (Seed, N).
func Fuzz(cfg Config) Result {
	out := cfg.Out
	if out == nil {
		out = io.Discard
	}
	type verdict struct {
		report string
		err    error
	}
	exec := sim.NewExecutor(cfg.Jobs)
	specs := make([]Spec, cfg.N)
	futs := make([]*sim.Future[verdict], cfg.N)
	for i := 0; i < cfg.N; i++ {
		specs[i] = Generate(cfg.Seed, int64(i))
		spec := specs[i]
		futs[i] = sim.Submit(exec, func() (verdict, error) {
			report, err := checkSpec(spec)
			return verdict{report: report, err: err}, nil
		})
	}

	res := Result{Worlds: cfg.N}
	digest := sha256.New()
	step := cfg.N / 10
	if step < 1 {
		step = 1
	}
	for i, f := range futs {
		v, err := f.Wait()
		if err != nil {
			// A panic on the task goroutine: treat as a failed world.
			v = verdict{err: fmt.Errorf("world task: %w", err)}
		}
		fmt.Fprintf(digest, "world %d\n%s", i, v.report)
		if v.err != nil {
			res.Failures = append(res.Failures, Failure{Spec: specs[i], Err: v.err})
			fmt.Fprintf(out, "FAIL %s: %v\n", specs[i].ID(), v.err)
		} else if (i+1)%step == 0 || i == cfg.N-1 {
			fmt.Fprintf(out, "ok   %d/%d worlds\n", i+1, cfg.N)
		}
	}

	for i := range res.Failures {
		f := &res.Failures[i]
		f.Min, f.MinErr, f.Trials = Shrink(f.Spec, cfg.ShrinkBudget)
		if f.MinErr == nil {
			// The failure did not reproduce on a fresh re-run (flaky
			// harness state or an executor-level panic): say so loudly
			// rather than emit a repro line that replays green.
			fmt.Fprintf(out, "FAIL %s\n  original failure: %v\n  DID NOT REPRODUCE under shrink — no repro seed\n", f.Spec.ID(), f.Err)
			continue
		}
		fmt.Fprint(out, FailureReport(f.Spec, f.Err, f.Min, f.MinErr, f.Trials))
	}
	res.Digest = hex.EncodeToString(digest.Sum(nil))
	return res
}
