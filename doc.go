// Package ptperf is the root of the PTPerf reproduction: a simulated
// re-implementation of "PTPerf: On the Performance Evaluation of Tor
// Pluggable Transports" (IMC '23). See README.md for the architecture
// and cmd/ptperf for the experiment runner; the per-artifact benchmarks
// live in bench_test.go.
//
// Time in the simulation is virtual and discrete-event: internal/netem
// keeps a min-heap of pending virtual timers and advances the clock
// only when every simulation goroutine is parked, so campaigns run at
// CPU speed and identical seeds produce bit-identical reports. The old
// TimeScale knob (real seconds slept per virtual second) is retired —
// there is nothing left to tune. See DESIGN.md for the scheduler
// architecture and the rules simulation code must follow. Those rules
// are enforced statically: tools/simlint, a go vet tool run by CI's
// lint job, rejects wall-clock reads, unseeded randomness, raw go
// statements in simulation packages, unsorted map iteration in render
// code, and parking calls reachable from inline event callbacks
// (DESIGN.md "Static enforcement of the determinism contract").
//
// Campaigns are additionally sharded across worlds (internal/sim): each
// sweep scenario cell, experiment world and client location is an
// independent world task with its own virtual clock and splitmix64-
// derived seed stream, and up to -jobs of them (default: all cores) run
// on real OS parallelism. Reports are assembled in canonical order
// after join, so "-jobs 1" and "-jobs N" render byte-identical bytes —
// parallelism only buys wall-clock time. See DESIGN.md's "Parallel
// execution" section.
//
// Beyond the paper's artifacts, internal/censor adds a programmable
// adversary on the virtual paths: named scenarios (throttle-surge,
// lossy-path, bridge-block, snowflake-surge, rst-injection,
// evening-congestion, origin-throttle) apply time-windowed
// throttling, loss, connection resets and endpoint blocking, and the
// harness's "sweep" experiment crosses them with every transport
// against the clean baseline. Run "ptperf -list" for scenario ids and
// "ptperf -exp sweep" for the matrix; see DESIGN.md's "Censor &
// scenario layer" for the interception architecture and determinism
// rules.
//
// Relays schedule, they don't just forward: internal/tor's cell
// scheduler gives every circuit a per-circuit output queue, picks the
// quietest circuit by a decaying cell count (tor's
// CircuitPriorityHalflife EWMA), and budgets each flush pass by the
// relay's bandwidth and the downstream link's writable window
// (KIST-style, via netem.Conn.WriteBudget) — so relay-side contention
// is modeled and measurable instead of invisible. The guard-contention
// scenario family (testbed.ContentionLevels) shares the measurement
// guard with N bulk competitors, and "ptperf -exp contention" crosses
// {tor,obfs4,webtunnel} × {competitor load}, reporting queueing delay
// and download/TTFB boxes vs the uncontended baseline plus a FIFO
// (pre-KIST) comparison cell. See DESIGN.md's "Relay scheduling &
// contention".
//
// Infrastructure also simply breaks: internal/faults injects scheduled
// relay crashes and restarts, link flaps, and directory churn into any
// world (testbed.Options.FaultSpec), all compiled onto the virtual
// clock so fault worlds stay deterministic. The Tor client recovers
// like the real one — bounded circuit-build retries with exponential
// jittered backoff (tor.RetryPolicy), stream re-attach, guard
// probation that decays instead of marking flapped guards bad forever,
// and resumable bulk downloads (?from= offsets) — and every recovery
// action is counted (tor.RecoveryStats). "ptperf -exp churn" crosses
// {tor,obfs4,webtunnel,snowflake} with relay-churn rates against the
// fault-free baseline. See DESIGN.md's "Failure & recovery".
//
// The contracts above are enforced at scale by internal/simtest, the
// simulation-torture subsystem: "ptperf fuzz -n N -seed S" generates N
// randomized worlds (random transport subsets, composed censor
// scenarios within paper-scale bounds, random topologies) and holds
// each to cross-cutting invariants — same-seed byte-identical reports,
// -jobs-independent digests, byte conservation across netem pipes,
// censor counter accounting, virtual-clock monotonicity, and no leaked
// flows or goroutines after teardown. Failures shrink to a minimal
// world with a one-line repro seed; fixed seeds are committed to
// internal/simtest/testdata/corpus and replayed by TestCorpusSeeds.
// See DESIGN.md's "Simulation torture & invariants".
package ptperf
