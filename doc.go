// Package ptperf is the root of the PTPerf reproduction: a simulated
// re-implementation of "PTPerf: On the Performance Evaluation of Tor
// Pluggable Transports" (IMC '23). See README.md for the architecture
// and cmd/ptperf for the experiment runner; the per-artifact benchmarks
// live in bench_test.go.
package ptperf
