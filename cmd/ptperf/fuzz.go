package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"ptperf/internal/simtest"
)

// runFuzz implements `ptperf fuzz`: the simulation-torture CLI. It
// generates -n randomized worlds from -seed, tortures each under the
// invariant suite on up to -jobs OS threads, shrinks any failure to a
// minimal world, and prints its one-line repro seed. A failing run
// exits 1; commit the repro line to
// internal/simtest/testdata/corpus/seeds.txt once the cause is fixed.
func runFuzz(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ptperf fuzz", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		n        = fs.Int("n", 100, "number of randomized worlds to torture")
		seed     = fs.Int64("seed", 1, "root seed; world i is derived from (seed, i)")
		jobs     = fs.Int("jobs", 0, "worlds checked concurrently (0 = all cores); the verdict is identical for any value")
		budget   = fs.Int("shrink-budget", 0, "max candidate worlds per failure shrink (0 = default)")
		reproOut = fs.String("repro-out", "", "write failing repro lines to this file (CI uploads it as an artifact)")
		replay   = fs.String("replay", "", "replay a repro line (quote the whole line) or a corpus file path instead of generating worlds")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	if *replay != "" {
		return runReplay(*replay, stdout, stderr)
	}
	if *n < 1 {
		fmt.Fprintln(stderr, "ptperf fuzz: -n must be >= 1")
		return 2
	}

	fmt.Fprintf(stdout, "fuzz: %d worlds from seed %d\n", *n, *seed)
	res := simtest.Fuzz(simtest.Config{
		N:            *n,
		Seed:         *seed,
		Jobs:         *jobs,
		Out:          stdout,
		ShrinkBudget: *budget,
	})
	if len(res.Failures) == 0 {
		fmt.Fprintf(stdout, "fuzz: %d worlds, all invariants hold (digest %s)\n", res.Worlds, res.Digest[:16])
		return 0
	}

	if *reproOut != "" {
		f, err := os.Create(*reproOut)
		if err != nil {
			fmt.Fprintf(stderr, "ptperf fuzz: %v\n", err)
		} else {
			for _, fail := range res.Failures {
				if fail.MinErr == nil {
					// Not a reproduction — record the fact, never a
					// line that would replay green from the corpus.
					fmt.Fprintf(f, "# %s: failure did not reproduce under shrink: %v\n", fail.Spec.ID(), fail.Err)
					continue
				}
				fmt.Fprintln(f, fail.Min.Repro())
			}
			f.Close()
			fmt.Fprintf(stdout, "fuzz: repro seeds written to %s\n", *reproOut)
		}
	}
	fmt.Fprintf(stderr, "ptperf fuzz: %d of %d worlds violated invariants\n", len(res.Failures), res.Worlds)
	return 1
}

// runReplay re-runs one repro line, or every line of a corpus file.
func runReplay(arg string, stdout, stderr io.Writer) int {
	var specs []simtest.Spec
	if st, err := os.Stat(arg); err == nil && !st.IsDir() {
		specs, err = simtest.LoadCorpusFile(arg)
		if err != nil {
			fmt.Fprintf(stderr, "ptperf fuzz: %v\n", err)
			return 2
		}
	} else {
		spec, err := simtest.ParseRepro(arg)
		if err != nil {
			fmt.Fprintf(stderr, "ptperf fuzz: %v\n", err)
			return 2
		}
		specs = []simtest.Spec{spec}
	}
	code := 0
	for _, spec := range specs {
		if err := simtest.Check(spec); err != nil {
			fmt.Fprintf(stdout, "FAIL %s\n  %v\n", spec.ID(), err)
			code = 1
		} else {
			fmt.Fprintf(stdout, "ok   %s\n", spec.ID())
		}
	}
	return code
}
