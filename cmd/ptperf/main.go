// Command ptperf runs the PTPerf reproduction experiments: it builds the
// simulated measurement world (Tor substrate, twelve pluggable
// transports, web origin) and regenerates the paper's tables and
// figures.
//
// Usage:
//
//	ptperf -list
//	ptperf -exp fig2a
//	ptperf -exp all -sites 50 -repeats 5
//
// Beyond the paper's artifacts, the censor layer (internal/censor)
// runs campaigns under programmable network interference:
//
//	ptperf -exp scenario:throttle-surge          one scenario, all transports
//	ptperf -exp sweep                            {transports} × {scenarios}
//	ptperf -exp fig5 -scenario lossy-path        any artifact under a scenario
//
// Campaigns are sharded by world (internal/sim): independent simulated
// worlds — sweep cells, experiment worlds, client locations — run
// concurrently on up to -jobs OS threads (default: all cores). Each
// world keeps its own single-token virtual clock, so reports are
// byte-identical for any -jobs value; -jobs 1 reproduces fully
// sequential execution.
//
// Scenario names come from the internal/censor registry (clean,
// throttle-surge, lossy-path, bridge-block, snowflake-surge,
// rst-injection, evening-congestion, origin-throttle); -list prints
// them with descriptions.
//
// Reported durations are virtual seconds, directly comparable to the
// paper's wall-clock measurements (see DESIGN.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"ptperf/internal/censor"
	"ptperf/internal/harness"
	"ptperf/internal/web"
)

func main() {
	var (
		list      = flag.Bool("list", false, "list experiments and exit")
		exp       = flag.String("exp", "all", "experiment id to run (see -list), or 'all'")
		seed      = flag.Int64("seed", 1, "campaign seed")
		sites     = flag.Int("sites", 12, "sites measured per catalog (Tranco and CBL)")
		repeats   = flag.Int("repeats", 2, "accesses per site (the paper uses 5)")
		attempts  = flag.Int("attempts", 2, "download attempts per file size")
		sizes     = flag.String("sizes", "", "comma-separated file sizes in MB (default 5,10,20,50,100)")
		timeScale = flag.Float64("timescale", 0, "deprecated no-op: the discrete-event clock always runs at CPU speed")
		byteScale = flag.Float64("bytescale", 0.125, "byte-quantity scale (sizes, rates and caps together)")
		pts       = flag.String("transports", "", "comma-separated methods (default: tor plus all 12 PTs)")
		scenario  = flag.String("scenario", "", "censor scenario every experiment world is built under (see -list; default: no interference)")
		jobs      = flag.Int("jobs", 0, "independent simulated worlds run concurrently (0 = all cores); reports are byte-identical for any value")
		seq       = flag.Bool("sequential", false, "measure transports one at a time within each world")
		plotFlag  = flag.Bool("plot", true, "render ASCII box plots and ECDF curves under the tables")
	)
	flag.Parse()

	if *list {
		fmt.Println("Experiments (paper artifact — description):")
		for _, e := range harness.Experiments() {
			fmt.Printf("  %-24s %-14s %s\n", e.ID, e.Artifact, e.Title)
		}
		fmt.Println("\nCensor scenarios (for -scenario and the sweep):")
		for _, name := range censor.Names() {
			sc, _ := censor.Lookup(name)
			fmt.Printf("  %-24s %s\n", name, sc.Description)
		}
		return
	}

	if *scenario != "" {
		if _, err := censor.Lookup(*scenario); err != nil {
			fatalf("%v", err)
		}
	}

	_ = *timeScale // retired knob, accepted for compatibility

	cfg := harness.Config{
		Seed:         *seed,
		ByteScale:    *byteScale,
		Sites:        *sites,
		Repeats:      *repeats,
		FileAttempts: *attempts,
		Scenario:     *scenario,
		Jobs:         *jobs,
		Sequential:   *seq,
		Plot:         *plotFlag,
	}
	if *sizes != "" {
		for _, s := range strings.Split(*sizes, ",") {
			mb, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || mb <= 0 {
				fatalf("bad -sizes entry %q", s)
			}
			cfg.FileSizesMB = append(cfg.FileSizesMB, mb)
		}
	} else {
		cfg.FileSizesMB = web.FileSizesMB
	}
	if *pts != "" {
		for _, p := range strings.Split(*pts, ",") {
			cfg.Transports = append(cfg.Transports, strings.TrimSpace(p))
		}
	}

	r := harness.New(cfg, os.Stdout)
	if err := r.Run(*exp); err != nil {
		fatalf("%v", err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ptperf: "+format+"\n", args...)
	os.Exit(1)
}
