// Command ptperf runs the PTPerf reproduction experiments: it builds the
// simulated measurement world (Tor substrate, twelve pluggable
// transports, web origin) and regenerates the paper's tables and
// figures.
//
// Usage:
//
//	ptperf -list
//	ptperf -exp fig2a
//	ptperf -exp all -sites 50 -repeats 5
//
// Beyond the paper's artifacts, the censor layer (internal/censor)
// runs campaigns under programmable network interference:
//
//	ptperf -exp scenario:throttle-surge          one scenario, all transports
//	ptperf -exp sweep                            {transports} × {scenarios}
//	ptperf -exp fig5 -scenario lossy-path        any artifact under a scenario
//
// The relay cell scheduler (internal/tor: EWMA circuit priority with
// KIST-style write budgeting) makes relay-side contention measurable;
// the guard-contention experiment crosses the shared-guard methods with
// the relay-overload scenario family and a FIFO baseline cell:
//
//	ptperf -exp contention                       {tor,obfs4,webtunnel} × {idle,light,busy,overload}
//
// The fault-injection subsystem (internal/faults) schedules relay
// crashes/restarts, link flaps and directory churn on the virtual
// clock; the Tor client recovers with bounded retries, backoff, guard
// probation and resumable downloads, and the churn experiment measures
// the cost:
//
//	ptperf -exp churn                            {tor,obfs4,webtunnel,snowflake} × {none,slow,fast churn}
//
// The simulation-torture subsystem (internal/simtest) fuzzes the whole
// substrate: randomized worlds — random transport subsets, composed
// censor scenarios, topology draws — each run under cross-cutting
// invariants (same-seed determinism, byte conservation, censor counter
// accounting, leak steady-state, report shape), with failures shrunk to
// a one-line repro seed:
//
//	ptperf fuzz -n 100 -seed 1                   torture 100 random worlds
//	ptperf fuzz -n 25 -jobs 4 -repro-out f.txt   bounded CI smoke
//
// The observability layer (internal/obs) samples every world's counter
// surfaces on its virtual clock into per-cell metric timelines, exports
// them as Prometheus text and a self-contained HTML report, streams
// live cell progress, and memoizes cell results content-addressed by
// their full input digest, so unchanged cells are never recomputed:
//
//	ptperf -exp sweep -report report.html        HTML report with sparkline timelines
//	ptperf -exp all -metrics-dir out/            Prometheus text exposition
//	ptperf -exp sweep -cache -progress           incremental rerun + live cell status
//
// Campaigns are sharded by world (internal/sim): independent simulated
// worlds — sweep cells, experiment worlds, client locations, fuzz
// worlds — run concurrently on up to -jobs OS threads (default: all
// cores). Each world keeps its own single-token virtual clock, so
// reports are byte-identical for any -jobs value; -jobs 1 reproduces
// fully sequential execution.
//
// Scenario names come from the internal/censor registry (clean,
// throttle-surge, lossy-path, bridge-block, snowflake-surge,
// rst-injection, evening-congestion, origin-throttle); -list prints
// them with descriptions.
//
// Reported durations are virtual seconds, directly comparable to the
// paper's wall-clock measurements (see DESIGN.md).
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"ptperf/internal/censor"
	"ptperf/internal/harness"
	"ptperf/internal/web"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: it parses args, dispatches the fuzz
// subcommand, and runs experiments, returning the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) > 0 && args[0] == "fuzz" {
		return runFuzz(args[1:], stdout, stderr)
	}

	fs := flag.NewFlagSet("ptperf", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		list      = fs.Bool("list", false, "list experiments and exit")
		exp       = fs.String("exp", "all", "experiment id to run (see -list), or 'all'")
		seed      = fs.Int64("seed", 1, "campaign seed")
		sites     = fs.Int("sites", 12, "sites measured per catalog (Tranco and CBL)")
		repeats   = fs.Int("repeats", 2, "accesses per site (the paper uses 5)")
		attempts  = fs.Int("attempts", 2, "download attempts per file size")
		sizes     = fs.String("sizes", "", "comma-separated file sizes in MB (default 5,10,20,50,100)")
		timeScale = fs.Float64("timescale", 0, "deprecated no-op: the discrete-event clock always runs at CPU speed")
		byteScale = fs.Float64("bytescale", 0.125, "byte-quantity scale (sizes, rates and caps together)")
		pts       = fs.String("transports", "", "comma-separated methods (default: tor plus all 12 PTs)")
		scenario  = fs.String("scenario", "", "censor scenario every experiment world is built under (see -list; default: no interference)")
		jobs      = fs.Int("jobs", 0, "independent simulated worlds run concurrently (0 = all cores); reports are byte-identical for any value")
		seq       = fs.Bool("sequential", false, "measure transports one at a time within each world")
		plotFlag  = fs.Bool("plot", true, "render ASCII box plots and ECDF curves under the tables")

		metricsDir = fs.String("metrics-dir", "", "write per-cell metric timelines as Prometheus text exposition to DIR/metrics.prom (enables virtual-time sampling)")
		report     = fs.String("report", "", "write a self-contained HTML campaign report to FILE (enables virtual-time sampling)")
		histFile   = fs.String("bench-history", "BENCH_history.jsonl", "benchmark-history JSONL rendered as the report's perf trajectory (missing file: section omitted)")
		cache      = fs.Bool("cache", false, "reuse content-addressed cell results from -cache-dir; unchanged cells are not recomputed")
		cacheDir   = fs.String("cache-dir", ".ptperfcache", "directory of the content-addressed result cache")
		progress   = fs.Bool("progress", false, "stream live per-cell progress lines to stderr")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	if *list {
		fmt.Fprintln(stdout, "Experiments (paper artifact — description):")
		for _, e := range harness.Experiments() {
			fmt.Fprintf(stdout, "  %-24s %-14s %s\n", e.ID, e.Artifact, e.Title)
		}
		fmt.Fprintln(stdout, "\nCensor scenarios (for -scenario and the sweep):")
		for _, name := range censor.Names() {
			sc, _ := censor.Lookup(name)
			fmt.Fprintf(stdout, "  %-24s %s\n", name, sc.Description)
		}
		return 0
	}

	if *scenario != "" {
		if _, err := censor.Lookup(*scenario); err != nil {
			fmt.Fprintf(stderr, "ptperf: %v\n", err)
			return 1
		}
	}

	_ = *timeScale // retired knob, accepted for compatibility

	cfg := harness.Config{
		Seed:         *seed,
		ByteScale:    *byteScale,
		Sites:        *sites,
		Repeats:      *repeats,
		FileAttempts: *attempts,
		Scenario:     *scenario,
		Jobs:         *jobs,
		Sequential:   *seq,
		Plot:         *plotFlag,
	}
	if *sizes != "" {
		for _, s := range strings.Split(*sizes, ",") {
			mb, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || mb <= 0 {
				fmt.Fprintf(stderr, "ptperf: bad -sizes entry %q\n", s)
				return 1
			}
			cfg.FileSizesMB = append(cfg.FileSizesMB, mb)
		}
	} else {
		cfg.FileSizesMB = web.FileSizesMB
	}
	if *pts != "" {
		for _, p := range strings.Split(*pts, ",") {
			cfg.Transports = append(cfg.Transports, strings.TrimSpace(p))
		}
	}

	if *metricsDir != "" || *report != "" {
		cfg.MetricsInterval = harness.DefaultMetricsInterval
	}
	if *progress {
		cfg.Progress = stderr
	}

	r := harness.New(cfg, stdout)
	if *cache {
		if err := r.EnableCache(*cacheDir); err != nil {
			fmt.Fprintf(stderr, "ptperf: %v\n", err)
			return 1
		}
	}
	if err := r.Run(*exp); err != nil {
		fmt.Fprintf(stderr, "ptperf: %v\n", err)
		return 1
	}
	if err := r.WriteArtifacts(*metricsDir, *report, *histFile); err != nil {
		fmt.Fprintf(stderr, "ptperf: %v\n", err)
		return 1
	}
	if *cache {
		st := r.CacheStats()
		fmt.Fprintf(stderr, "ptperf: cache hits=%d misses=%d stores=%d\n", st.Hits, st.Misses, st.Stores)
	}
	return 0
}
