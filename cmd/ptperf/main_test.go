package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestUnknownExperimentListsRegistry pins the CLI contract: a typo'd
// -exp fails with the experiment registry in the error, so the user
// never needs a second invocation to find the right id.
func TestUnknownExperimentListsRegistry(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-exp", "fig99"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	msg := errb.String()
	if !strings.Contains(msg, `unknown experiment "fig99"`) {
		t.Errorf("error does not name the bad experiment: %q", msg)
	}
	for _, id := range []string{"fig2a", "fig5", "table1", "sweep", "scenario:throttle-surge"} {
		if !strings.Contains(msg, id) {
			t.Errorf("error does not list experiment %q: %q", id, msg)
		}
	}
}

// TestUnknownScenarioListsRegistry does the same for -scenario.
func TestUnknownScenarioListsRegistry(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-exp", "fig2a", "-scenario", "weathergeddon"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	msg := errb.String()
	if !strings.Contains(msg, `unknown scenario "weathergeddon"`) {
		t.Errorf("error does not name the bad scenario: %q", msg)
	}
	for _, name := range []string{"clean", "throttle-surge", "lossy-path", "bridge-block"} {
		if !strings.Contains(msg, name) {
			t.Errorf("error does not list scenario %q: %q", name, msg)
		}
	}
}

// TestTimescaleStaysParseOnlyNoOp: the retired -timescale flag must
// parse (old scripts keep working) and change nothing.
func TestTimescaleStaysParseOnlyNoOp(t *testing.T) {
	var a, b, errb bytes.Buffer
	if code := run([]string{"-timescale", "0.25", "-list"}, &a, &errb); code != 0 {
		t.Fatalf("-timescale rejected: exit %d, stderr %q", code, errb.String())
	}
	if code := run([]string{"-list"}, &b, &errb); code != 0 {
		t.Fatalf("-list failed: exit %d", code)
	}
	if a.String() != b.String() {
		t.Error("-timescale changed the -list output")
	}
}

// TestListShowsExperimentsAndScenarios pins the -list shape both other
// tests' registry errors point users at.
func TestListShowsExperimentsAndScenarios(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("exit code = %d", code)
	}
	for _, want := range []string{"fig2a", "Figure 2a", "snowflake-surge", "Censor scenarios"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("-list output missing %q", want)
		}
	}
}

// TestHelpExitsZero: -h is a request, not an error, for both the main
// command and the fuzz subcommand.
func TestHelpExitsZero(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-h"}, &out, &errb); code != 0 {
		t.Errorf("ptperf -h exit = %d, want 0", code)
	}
	if code := run([]string{"fuzz", "-h"}, &out, &errb); code != 0 {
		t.Errorf("ptperf fuzz -h exit = %d, want 0", code)
	}
}

// TestBadSizesRejected covers the -sizes parse error path.
func TestBadSizesRejected(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-sizes", "5,potato"}, &out, &errb); code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "bad -sizes") {
		t.Errorf("stderr = %q", errb.String())
	}
}

// TestFuzzSubcommandSmoke runs a two-world torture through the real CLI
// path, plus a single-line replay.
func TestFuzzSubcommandSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-world test")
	}
	var out, errb bytes.Buffer
	if code := run([]string{"fuzz", "-n", "2", "-seed", "2"}, &out, &errb); code != 0 {
		t.Fatalf("fuzz exit %d\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "all invariants hold") {
		t.Errorf("fuzz output missing verdict: %q", out.String())
	}

	out.Reset()
	errb.Reset()
	line := "simtest-v1 root=2 index=0"
	if code := run([]string{"fuzz", "-replay", line}, &out, &errb); code != 0 {
		t.Fatalf("replay exit %d\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}

	out.Reset()
	errb.Reset()
	if code := run([]string{"fuzz", "-replay", "simtest-nonsense"}, &out, &errb); code != 2 {
		t.Fatalf("bad replay line: exit %d, want 2", code)
	}
}

// obsArgs is a cheap single-cell campaign for the observability CLI
// tests.
func obsArgs(extra ...string) []string {
	args := []string{
		"-exp", "fig4", "-sites", "3", "-repeats", "1", "-sizes", "5",
		"-bytescale", "0.06", "-transports", "tor,obfs4,snowflake",
	}
	return append(args, extra...)
}

// TestObservabilityArtifacts drives -report and -metrics-dir through
// the real CLI path and checks both files land with the expected shape.
func TestObservabilityArtifacts(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a campaign world")
	}
	dir := t.TempDir()
	report := filepath.Join(dir, "report.html")
	metrics := filepath.Join(dir, "metrics") // must be created by the run
	var out, errb bytes.Buffer
	code := run(obsArgs("-report", report, "-metrics-dir", metrics), &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d\nstderr: %s", code, errb.String())
	}
	html, err := os.ReadFile(report)
	if err != nil {
		t.Fatalf("report not written: %v", err)
	}
	for _, want := range []string{"PTPerf campaign report", "<svg", "fig4"} {
		if !strings.Contains(string(html), want) {
			t.Errorf("report lacks %q", want)
		}
	}
	prom, err := os.ReadFile(filepath.Join(metrics, "metrics.prom"))
	if err != nil {
		t.Fatalf("metrics.prom not written: %v", err)
	}
	if !strings.Contains(string(prom), `ptperf_bytes_delivered_total{cell="fig4"}`) {
		t.Errorf("metrics.prom lacks the fig4 counter:\n%s", prom)
	}
}

// TestCacheFlagIncremental reruns the same campaign against one cache
// dir: the second run must answer entirely from cache and print the
// same report.
func TestCacheFlagIncremental(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a campaign world")
	}
	cacheDir := filepath.Join(t.TempDir(), "cache")
	invoke := func() (string, string) {
		var out, errb bytes.Buffer
		if code := run(obsArgs("-cache", "-cache-dir", cacheDir, "-progress"), &out, &errb); code != 0 {
			t.Fatalf("exit %d\nstderr: %s", code, errb.String())
		}
		return out.String(), errb.String()
	}
	out1, err1 := invoke()
	if !strings.Contains(err1, "misses=1") {
		t.Errorf("cold run stderr lacks the miss count: %q", err1)
	}
	out2, err2 := invoke()
	if !strings.Contains(err2, "cache hits=1 misses=0 stores=0") {
		t.Errorf("warm run stderr = %q, want an all-hit summary", err2)
	}
	if !strings.Contains(err2, "cached") {
		t.Errorf("warm run progress stream never flagged the cached cell: %q", err2)
	}
	if out1 != out2 {
		t.Errorf("cached rerun printed a different report:\n--- cold ---\n%s\n--- warm ---\n%s", out1, out2)
	}
}

// TestCacheDirErrorExits covers the -cache-dir failure path: a path
// already occupied by a regular file cannot become a cache directory.
func TestCacheDirErrorExits(t *testing.T) {
	file := filepath.Join(t.TempDir(), "occupied")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if code := run(obsArgs("-cache", "-cache-dir", file), &out, &errb); code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if errb.Len() == 0 {
		t.Error("no error printed for an unusable cache dir")
	}
}
