package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestUnknownExperimentListsRegistry pins the CLI contract: a typo'd
// -exp fails with the experiment registry in the error, so the user
// never needs a second invocation to find the right id.
func TestUnknownExperimentListsRegistry(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-exp", "fig99"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	msg := errb.String()
	if !strings.Contains(msg, `unknown experiment "fig99"`) {
		t.Errorf("error does not name the bad experiment: %q", msg)
	}
	for _, id := range []string{"fig2a", "fig5", "table1", "sweep", "scenario:throttle-surge"} {
		if !strings.Contains(msg, id) {
			t.Errorf("error does not list experiment %q: %q", id, msg)
		}
	}
}

// TestUnknownScenarioListsRegistry does the same for -scenario.
func TestUnknownScenarioListsRegistry(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-exp", "fig2a", "-scenario", "weathergeddon"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	msg := errb.String()
	if !strings.Contains(msg, `unknown scenario "weathergeddon"`) {
		t.Errorf("error does not name the bad scenario: %q", msg)
	}
	for _, name := range []string{"clean", "throttle-surge", "lossy-path", "bridge-block"} {
		if !strings.Contains(msg, name) {
			t.Errorf("error does not list scenario %q: %q", name, msg)
		}
	}
}

// TestTimescaleStaysParseOnlyNoOp: the retired -timescale flag must
// parse (old scripts keep working) and change nothing.
func TestTimescaleStaysParseOnlyNoOp(t *testing.T) {
	var a, b, errb bytes.Buffer
	if code := run([]string{"-timescale", "0.25", "-list"}, &a, &errb); code != 0 {
		t.Fatalf("-timescale rejected: exit %d, stderr %q", code, errb.String())
	}
	if code := run([]string{"-list"}, &b, &errb); code != 0 {
		t.Fatalf("-list failed: exit %d", code)
	}
	if a.String() != b.String() {
		t.Error("-timescale changed the -list output")
	}
}

// TestListShowsExperimentsAndScenarios pins the -list shape both other
// tests' registry errors point users at.
func TestListShowsExperimentsAndScenarios(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("exit code = %d", code)
	}
	for _, want := range []string{"fig2a", "Figure 2a", "snowflake-surge", "Censor scenarios"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("-list output missing %q", want)
		}
	}
}

// TestHelpExitsZero: -h is a request, not an error, for both the main
// command and the fuzz subcommand.
func TestHelpExitsZero(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-h"}, &out, &errb); code != 0 {
		t.Errorf("ptperf -h exit = %d, want 0", code)
	}
	if code := run([]string{"fuzz", "-h"}, &out, &errb); code != 0 {
		t.Errorf("ptperf fuzz -h exit = %d, want 0", code)
	}
}

// TestBadSizesRejected covers the -sizes parse error path.
func TestBadSizesRejected(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-sizes", "5,potato"}, &out, &errb); code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "bad -sizes") {
		t.Errorf("stderr = %q", errb.String())
	}
}

// TestFuzzSubcommandSmoke runs a two-world torture through the real CLI
// path, plus a single-line replay.
func TestFuzzSubcommandSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-world test")
	}
	var out, errb bytes.Buffer
	if code := run([]string{"fuzz", "-n", "2", "-seed", "2"}, &out, &errb); code != 0 {
		t.Fatalf("fuzz exit %d\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "all invariants hold") {
		t.Errorf("fuzz output missing verdict: %q", out.String())
	}

	out.Reset()
	errb.Reset()
	line := "simtest-v1 root=2 index=0"
	if code := run([]string{"fuzz", "-replay", line}, &out, &errb); code != 0 {
		t.Fatalf("replay exit %d\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}

	out.Reset()
	errb.Reset()
	if code := run([]string{"fuzz", "-replay", "simtest-nonsense"}, &out, &errb); code != 2 {
		t.Fatalf("bad replay line: exit %d, want 2", code)
	}
}
