module ptperf

go 1.22
