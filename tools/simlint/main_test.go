package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles the simlint binary once per test run.
func buildTool(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "simlint")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building simlint: %v\n%s", err, out)
	}
	return bin
}

// runIn runs a command in dir with the workspace disabled (the
// violations module must resolve against its own go.mod) and returns
// combined output and the exit code.
func runIn(t *testing.T, dir string, name string, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(name, args...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "GOWORK=off")
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	err := cmd.Run()
	code := 0
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("%s %v: %v\n%s", name, args, err, buf.String())
		}
		code = ee.ExitCode()
	}
	return buf.String(), code
}

// violationClasses are the analyzer tags each seeded violation must
// produce.
var violationClasses = []string{
	"[wallclock]", "[seededrand]", "[rawgo]", "[maprange]", "[noparkinevent]",
}

// TestSeededViolationsVetTool proves the real `go vet -vettool` path
// catches one seeded violation of every class and exits nonzero.
func TestSeededViolationsVetTool(t *testing.T) {
	bin := buildTool(t)
	out, code := runIn(t, "testdata/violations", "go", "vet", "-vettool="+bin, "./...")
	if code == 0 {
		t.Fatalf("go vet -vettool exited 0 on the seeded violations:\n%s", out)
	}
	for _, tag := range violationClasses {
		if !strings.Contains(out, tag) {
			t.Errorf("seeded %s violation not reported; output:\n%s", tag, out)
		}
	}
}

// TestSeededViolationsStandalone proves the standalone audit mode
// reports the same classes.
func TestSeededViolationsStandalone(t *testing.T) {
	bin := buildTool(t)
	out, code := runIn(t, "testdata/violations", bin, "./...")
	if code != 2 {
		t.Fatalf("standalone simlint exit = %d, want 2; output:\n%s", code, out)
	}
	for _, tag := range violationClasses {
		if !strings.Contains(out, tag) {
			t.Errorf("seeded %s violation not reported; output:\n%s", tag, out)
		}
	}
}

// TestVetProtocolHandshake pins the two driver-protocol queries go vet
// issues before any analysis.
func TestVetProtocolHandshake(t *testing.T) {
	bin := buildTool(t)
	out, code := runIn(t, ".", bin, "-V=full")
	if code != 0 || !strings.Contains(out, "version") || !strings.Contains(out, "buildID=") {
		t.Fatalf("-V=full handshake = %q (exit %d), want a version line with a buildID", out, code)
	}
	out, code = runIn(t, ".", bin, "-flags")
	if code != 0 || strings.TrimSpace(out) != "[]" {
		t.Fatalf("-flags handshake = %q (exit %d), want []", out, code)
	}
}
