package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseDirectives runs collectDirectives over one synthetic source.
func parseDirectives(t *testing.T, pkgPath, src string) ([]directive, []Diagnostic) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	known := map[string]bool{"wallclock": true, "noparkinevent": true}
	return collectDirectives(fset, []*ast.File{f}, known, pkgPath)
}

func TestDirectiveParsing(t *testing.T) {
	cases := []struct {
		name    string
		pkg     string
		comment string
		// wantDir is true when the directive should be honored;
		// otherwise wantErr is a substring of the error diagnostic.
		wantDir bool
		wantErr string
	}{
		{name: "well-formed", pkg: "m/a",
			comment: "//simlint:allow wallclock -- operator-facing timing", wantDir: true},
		{name: "empty reason", pkg: "m/a",
			comment: "//simlint:allow wallclock --", wantErr: "malformed simlint directive"},
		{name: "missing separator", pkg: "m/a",
			comment: "//simlint:allow wallclock because reasons", wantErr: "malformed simlint directive"},
		{name: "unknown analyzer", pkg: "m/a",
			comment: "//simlint:allow nosuch -- reason", wantErr: `unknown analyzer "nosuch"`},
		{name: "unknown verb", pkg: "m/a",
			comment: "//simlint:forbid wallclock -- reason", wantErr: "unknown simlint directive"},
		{name: "nopark banned in netem", pkg: "m/internal/netem",
			comment: "//simlint:allow noparkinevent -- reason", wantErr: "may not be suppressed"},
		{name: "nopark banned in tor", pkg: "m/internal/tor",
			comment: "//simlint:allow noparkinevent -- reason", wantErr: "may not be suppressed"},
		{name: "nopark banned in netem test variant", pkg: "m/internal/netem [m/internal/netem.test]",
			comment: "//simlint:allow noparkinevent -- reason", wantErr: "may not be suppressed"},
		{name: "nopark allowed elsewhere", pkg: "m/internal/app",
			comment: "//simlint:allow noparkinevent -- reason", wantDir: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			src := "package p\n\n" + tc.comment + "\nfunc f() {}\n"
			dirs, diags := parseDirectives(t, tc.pkg, src)
			if tc.wantDir {
				if len(dirs) != 1 || len(diags) != 0 {
					t.Fatalf("want 1 directive, 0 diagnostics; got %d, %v", len(dirs), diags)
				}
				return
			}
			if len(dirs) != 0 {
				t.Fatalf("directive honored, want rejection: %+v", dirs)
			}
			if len(diags) != 1 || !strings.Contains(diags[0].Message, tc.wantErr) {
				t.Fatalf("want one diagnostic containing %q, got %v", tc.wantErr, diags)
			}
			if diags[0].Analyzer != "directive" {
				t.Fatalf("directive errors must come from the unsuppressible %q analyzer, got %q", "directive", diags[0].Analyzer)
			}
		})
	}
}

// TestSuppressionWindow pins the directive's coverage: its own line and
// the line immediately below, same file, same analyzer.
func TestSuppressionWindow(t *testing.T) {
	dirs := []directive{{analyzer: "wallclock", file: "x.go", line: 10}}
	diag := func(file string, line int, analyzer string) Diagnostic {
		return Diagnostic{Pos: token.Position{Filename: file, Line: line}, Analyzer: analyzer}
	}
	for _, tc := range []struct {
		d    Diagnostic
		want bool
	}{
		{diag("x.go", 10, "wallclock"), true},
		{diag("x.go", 11, "wallclock"), true},
		{diag("x.go", 12, "wallclock"), false},
		{diag("x.go", 9, "wallclock"), false},
		{diag("y.go", 10, "wallclock"), false},
		{diag("x.go", 10, "rawgo"), false},
	} {
		if got := suppressed(dirs, tc.d); got != tc.want {
			t.Errorf("suppressed(%s:%d [%s]) = %v, want %v",
				tc.d.Pos.Filename, tc.d.Pos.Line, tc.d.Analyzer, got, tc.want)
		}
	}
}
